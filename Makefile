# Tier-1 gate and developer targets. `make check` is what CI (and the
# next PR) should run: build + tests + vet + race on the concurrent
# packages.

GO ?= go

.PHONY: all build test race vet bench chaos check staticcheck

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detect the packages with real concurrency: the serving engine
# (including its chaos suite), the core controller it hammers, the
# assistant/listener layer, the fault-tolerance layers (channel
# health, pair recomputation, fault injection), the DSP layer now
# that it holds the shared FFT plan cache and scratch pools, and the
# streaming-ingest session manager (concurrent push/evict).
race:
	$(GO) test -race ./internal/serve ./internal/pool ./internal/core ./internal/va ./internal/metrics ./internal/mic ./internal/srp ./internal/faultinject ./internal/dsp ./internal/trace ./internal/stream ./internal/cluster

# Static analysis beyond go vet. staticcheck is not vendored; this
# target expects it on PATH (CI installs it with `go install`). Keep it
# out of `check` so the tier-1 gate stays dependency-free locally.
staticcheck:
	staticcheck ./...

vet:
	$(GO) vet ./...

# Fault-injection chaos suite, run twice under the race detector:
# exactly-once delivery and fail-closed decisions while the injector
# corrupts frames, drops channels, stalls stages and induces panics,
# plus streaming-session isolation (a stalled session must not starve
# pushes or eviction for other sessions), plus federation isolation
# (dead, black-hole and slow-drip peers must fail fast with typed
# errors and leave locally-owned tenants' latency and error rate
# untouched).
chaos:
	$(GO) test -race -count=2 -run 'Chaos|Breaker|Panic|FaultInject' ./internal/serve ./internal/stream
	$(GO) test -race -count=2 ./internal/faultinject
	$(GO) test -race -count=2 -run 'Chaos' ./internal/cluster

# Benchmarks, machine-readable: serving-layer throughput (worker
# sweep), the paper's §IV-B15 pipeline-stage timings, and the DSP
# engine micro-benchmarks. Output is echoed to the terminal and teed
# through cmd/benchjson, which APPENDS one JSON record per result to
# $(BENCH_JSON) — successive runs accumulate, so the file holds the
# perf trajectory (grep by "tag"). Override the tag per run:
#   make bench BENCH_TAG=pr8
# The EngineThroughput pattern also matches EngineThroughputTraced, so
# every bench run records the traced-vs-untraced serving delta (the
# tracing overhead budget is ≤5%). PipelineStages includes the
# streaming-cascade per-chunk stages, StreamEndToEnd records the
# streaming-vs-batch decision cost on identical audio, and
# ForwardOverhead records the federation tax (local vs peer-forwarded
# decision over loopback TCP).
BENCH_JSON ?= BENCH_pr7.json
BENCH_TAG  ?= pr7

bench:
	$(GO) test -run xxx -bench 'BenchmarkEngineThroughput|BenchmarkRuntime|BenchmarkPipelineStages|BenchmarkStreamEndToEnd' -benchmem -benchtime 50x . \
		| $(GO) run ./cmd/benchjson -tag $(BENCH_TAG) -append -out $(BENCH_JSON)
	$(GO) test -run xxx -bench 'BenchmarkRFFT|BenchmarkFFTPlan|BenchmarkBluestein|BenchmarkSTFT|BenchmarkWelchPSD|BenchmarkGCCAllPairs|BenchmarkGCCPHATBand' -benchmem ./internal/dsp ./internal/srp \
		| $(GO) run ./cmd/benchjson -tag $(BENCH_TAG) -append -out $(BENCH_JSON)
	$(GO) test -run xxx -bench 'BenchmarkForwardOverhead' -benchmem -benchtime 50x ./internal/cluster \
		| $(GO) run ./cmd/benchjson -tag $(BENCH_TAG) -append -out $(BENCH_JSON)

check: build vet test race
