# Tier-1 gate and developer targets. `make check` is what CI (and the
# next PR) should run: build + tests + vet + race on the concurrent
# packages.

GO ?= go

.PHONY: all build test race vet bench check

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detect the packages with real concurrency: the serving engine,
# the core controller it hammers, and the assistant/listener layer.
race:
	$(GO) test -race ./internal/serve ./internal/core ./internal/va ./internal/metrics

vet:
	$(GO) vet ./...

# Serving-layer throughput baseline (worker sweep) plus the paper's
# §IV-B15 pipeline-stage timings.
bench:
	$(GO) test -run xxx -bench 'BenchmarkEngineThroughput|BenchmarkRuntime' -benchtime 50x .

check: build vet test race
