# Tier-1 gate and developer targets. `make check` is what CI (and the
# next PR) should run: build + tests + vet + race on the concurrent
# packages.

GO ?= go

.PHONY: all build test race vet bench bench-compare alloc-regression chaos check staticcheck

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detect the packages with real concurrency: the serving engine
# (including its chaos suite and the fan-out fused decision), the core
# controller it hammers, the assistant/listener layer, the
# fault-tolerance layers (channel health, pair recomputation, fault
# injection), the DSP layer now that it holds the shared FFT plan
# cache and scratch pools, the streaming-ingest session manager
# (concurrent push/evict plus speaker tracking), the multi-array
# fusion vote the fan-out feeds, and the versioned model registry
# (atomic hot-swap/rollback/shadow under concurrent readers).
race:
	$(GO) test -race ./internal/serve ./internal/pool ./internal/core ./internal/va ./internal/metrics ./internal/mic ./internal/srp ./internal/faultinject ./internal/dsp ./internal/trace ./internal/stream ./internal/cluster ./internal/fusion ./internal/registry

# Static analysis beyond go vet. staticcheck is not vendored; this
# target expects it on PATH (CI installs it with `go install`). Keep it
# out of `check` so the tier-1 gate stays dependency-free locally.
staticcheck:
	staticcheck ./...

vet:
	$(GO) vet ./...

# Fault-injection chaos suite, run twice under the race detector:
# exactly-once delivery and fail-closed decisions while the injector
# corrupts frames, drops channels, stalls stages and induces panics —
# on both the sequential worker and the batch collector (a mid-batch
# panic fails the whole batch closed) — plus streaming-session
# isolation (a stalled session must not starve pushes or eviction for
# other sessions), plus federation isolation (dead, black-hole and
# slow-drip peers must fail fast with typed errors and leave
# locally-owned tenants' latency and error rate untouched). The stream
# pattern also covers the evicted-session push race and the
# at-capacity single-sweep contention tests added with speaker
# tracking. The registry line storms promote/rollback against live
# decision traffic: every resolved model set must stay complete and
# coherent mid-swap.
chaos:
	$(GO) test -race -count=2 -run 'Chaos|Breaker|Panic|FaultInject' ./internal/serve ./internal/stream
	$(GO) test -race -count=2 ./internal/faultinject
	$(GO) test -race -count=2 -run 'Chaos' ./internal/cluster
	$(GO) test -race -count=2 -run 'HotSwap' ./internal/registry ./internal/core

# Benchmarks, machine-readable: serving-layer throughput (worker
# sweep), the paper's §IV-B15 pipeline-stage timings, and the DSP
# engine micro-benchmarks. Output is echoed to the terminal and teed
# through cmd/benchjson, which APPENDS one JSON record per result to
# $(BENCH_JSON) — successive runs accumulate, so the file holds the
# perf trajectory (grep by "tag"). Override the tag per run:
#   make bench BENCH_TAG=pr8
# The EngineThroughput pattern also matches EngineThroughputTraced, so
# every bench run records the traced-vs-untraced serving delta (the
# tracing overhead budget is ≤5%). PipelineStages includes the
# streaming-cascade per-chunk stages, StreamEndToEnd records the
# streaming-vs-batch decision cost on identical audio, and
# ForwardOverhead records the federation tax (local vs peer-forwarded
# decision over loopback TCP).
BENCH_JSON ?= BENCH_pr10.json
BENCH_TAG  ?= pr10

bench:
	$(GO) test -run xxx -bench 'BenchmarkEngineThroughput|BenchmarkRuntime|BenchmarkPipelineStages|BenchmarkStreamEndToEnd' -benchmem -benchtime 50x . \
		| $(GO) run ./cmd/benchjson -tag $(BENCH_TAG) -append -out $(BENCH_JSON)
	$(GO) test -run xxx -bench 'BenchmarkRFFT|BenchmarkFFTPlan|BenchmarkBluestein|BenchmarkSTFT|BenchmarkWelchPSD|BenchmarkGCCAllPairs|BenchmarkGCCPHATBand' -benchmem ./internal/dsp ./internal/srp \
		| $(GO) run ./cmd/benchjson -tag $(BENCH_TAG) -append -out $(BENCH_JSON)
	$(GO) test -run xxx -bench 'BenchmarkForwardOverhead' -benchmem -benchtime 50x ./internal/cluster \
		| $(GO) run ./cmd/benchjson -tag $(BENCH_TAG) -append -out $(BENCH_JSON)
	$(GO) test -run xxx -bench 'BenchmarkDecideFused' -benchmem -benchtime 50x ./internal/serve \
		| $(GO) run ./cmd/benchjson -tag $(BENCH_TAG) -append -out $(BENCH_JSON)

# Per-benchmark delta table between two recorded tags, e.g.
#   make bench-compare BENCH_COMPARE=pr8-pre,pr8
# Negative ns/op deltas are improvements; within one tag the last
# appended record per benchmark wins.
BENCH_COMPARE ?= pr8-pre,pr8

bench-compare:
	$(GO) run ./cmd/benchjson -compare $(BENCH_COMPARE) -out $(BENCH_JSON)

# Allocation-regression gate: the AllocsPerRun pins that hold the
# steady-state serving path at zero allocations — the whole
# ProcessWake (session shortcut, full orientation path, batched path)
# plus the per-layer workspaces it is built from. -count=2 repeats
# each pin so a warm-up-dependent regression cannot hide behind test
# caching.
alloc-regression:
	$(GO) test -count=2 -run 'AllocFree|Allocs|ZeroAlloc' ./internal/core ./internal/features ./internal/ml ./internal/srp ./internal/dsp ./internal/stream ./internal/trace ./internal/va

check: build vet test race
