# Tier-1 gate and developer targets. `make check` is what CI (and the
# next PR) should run: build + tests + vet + race on the concurrent
# packages.

GO ?= go

.PHONY: all build test race vet bench chaos check

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detect the packages with real concurrency: the serving engine
# (including its chaos suite), the core controller it hammers, the
# assistant/listener layer, and the fault-tolerance layers (channel
# health, pair recomputation, fault injection).
race:
	$(GO) test -race ./internal/serve ./internal/core ./internal/va ./internal/metrics ./internal/mic ./internal/srp ./internal/faultinject

vet:
	$(GO) vet ./...

# Fault-injection chaos suite, run twice under the race detector:
# exactly-once delivery and fail-closed decisions while the injector
# corrupts frames, drops channels, stalls stages and induces panics.
chaos:
	$(GO) test -race -count=2 -run 'Chaos|Breaker|Panic|FaultInject' ./internal/serve
	$(GO) test -race -count=2 ./internal/faultinject

# Serving-layer throughput baseline (worker sweep) plus the paper's
# §IV-B15 pipeline-stage timings.
bench:
	$(GO) test -run xxx -bench 'BenchmarkEngineThroughput|BenchmarkRuntime' -benchtime 50x .

check: build vet test race
