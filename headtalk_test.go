package headtalk

import (
	"context"
	"math/rand/v2"
	"testing"

	"headtalk/internal/dataset"
)

func TestPublicSurfaceBasics(t *testing.T) {
	if DeviceD1().Channels() != 7 || DeviceD2().Channels() != 6 || DeviceD3().Channels() != 4 {
		t.Error("device channel counts wrong")
	}
	if LabRoom().Name != "lab" || HomeRoom().Name != "home" {
		t.Error("room names wrong")
	}
	rng := rand.New(rand.NewPCG(1, 2))
	buf := SynthesizeWakeWord(WordComputer, DefaultVoice(), 16000, rng)
	if buf.Duration() < 0.2 {
		t.Error("synthesized word too short")
	}
	v := RandomVoice(rng)
	if v.BasePitch == 0 {
		t.Error("random voice not drawn")
	}
	cfg := DefaultFeatureConfig(13, 48000)
	if cfg.MaxLag != 13 {
		t.Error("feature config wrong")
	}
}

func TestEnrollValidation(t *testing.T) {
	// Fast path: orientation only with a single repetition.
	if testing.Short() {
		t.Skip("enrollment is slow")
	}
	enr, err := Enroll(EnrollmentOptions{
		Seed:            3,
		OrientationReps: 1,
		SkipLiveness:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if enr.Orientation == nil {
		t.Fatal("no orientation model")
	}
	if enr.Liveness != nil {
		t.Error("liveness trained despite SkipLiveness")
	}

	sys, err := NewSystem(Config{Orientation: enr.Orientation})
	if err != nil {
		t.Fatal(err)
	}
	sys.SetMode(ModeHeadTalk)

	gen := NewGenerator(900)
	facing, err := dataset.CaptureRecording(gen, Condition{AngleDeg: 0, Distance: 1})
	if err != nil {
		t.Fatal(err)
	}
	d, err := sys.ProcessWake(context.Background(), facing)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Accepted {
		t.Errorf("facing capture rejected: %+v", d)
	}
	sys.EndSession()

	away, err := dataset.CaptureRecording(gen, Condition{AngleDeg: 180, Distance: 1})
	if err != nil {
		t.Fatal(err)
	}
	d, err = sys.ProcessWake(context.Background(), away)
	if err != nil {
		t.Fatal(err)
	}
	if d.Accepted {
		t.Errorf("180° capture accepted: %+v", d)
	}
}

func TestSpotterAndAssistantWiring(t *testing.T) {
	spotter, err := NewSpotter(WordComputer, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(Config{})
	if err != nil {
		t.Fatal(err)
	}
	assistant, err := NewAssistant("demo", spotter, sys)
	if err != nil {
		t.Fatal(err)
	}
	if assistant.System() != sys {
		t.Error("assistant not wired to system")
	}
}
