package headtalk

// Tests for the multi-tenant facade surface: NewPool/TenantConfig and
// the consolidated error taxonomy (sentinels matched with errors.Is,
// typed errors with errors.As).

import (
	"context"
	"errors"
	"math/rand/v2"
	"strings"
	"testing"
)

func facadeRecording(seed uint64) *Recording {
	rng := rand.New(rand.NewPCG(seed, 7))
	rec := &Recording{SampleRate: 48000, Channels: make([][]float64, 4)}
	for c := range rec.Channels {
		rec.Channels[c] = make([]float64, 4800)
		for i := range rec.Channels[c] {
			rec.Channels[c][i] = 0.2 * rng.NormFloat64()
		}
	}
	return rec
}

func TestPoolFacade(t *testing.T) {
	p := NewPool(PoolConfig{})
	t.Cleanup(func() { _ = p.Close() })
	for _, id := range []string{"lab", "home"} {
		sys, err := NewSystem(Config{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.AddTenant(TenantConfig{ID: id, System: sys, Workers: 2, QueueSize: 8}); err != nil {
			t.Fatal(err)
		}
	}
	d, err := p.Decide(context.Background(), "lab", facadeRecording(1))
	if err != nil || !d.Accepted {
		t.Fatalf("pool decide = %+v, %v", d, err)
	}
	if _, err := p.Decide(context.Background(), "ghost", facadeRecording(2)); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("unknown tenant = %v, want ErrUnknownTenant", err)
	}
	sys, _ := NewSystem(Config{})
	if _, err := p.AddTenant(TenantConfig{ID: "lab", System: sys}); !errors.Is(err, ErrTenantExists) {
		t.Fatalf("duplicate tenant = %v, want ErrTenantExists", err)
	}
	var ph PoolHealth = p.HealthSnapshot()
	if !ph.Healthy || ph.TenantCount != 2 {
		t.Fatalf("pool health %+v", ph)
	}
	var eh EngineHealth = ph.Tenants["home"]
	if !eh.Healthy {
		t.Fatalf("tenant health %+v", eh)
	}
	if err := p.RemoveTenant(context.Background(), "home"); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Decide(context.Background(), "lab", facadeRecording(3)); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("closed pool = %v, want ErrPoolClosed", err)
	}
}

// TestErrorTaxonomy pins the facade's error contract: each re-exported
// error matches its producing layer through errors.Is/As, so callers
// can depend on package headtalk alone.
func TestErrorTaxonomy(t *testing.T) {
	sys, err := NewSystem(Config{})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(EngineConfig{System: sys, Workers: 1, QueueSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = eng.Close() })

	// ErrBadInput: a 2 ms capture is far below the hardening minimum.
	short := &Recording{SampleRate: 48000, Channels: [][]float64{make([]float64, 100), make([]float64, 100)}}
	_, err = eng.Decide(context.Background(), short)
	var bad *ErrBadInput
	if !errors.As(err, &bad) {
		t.Fatalf("short capture err = %v, want *ErrBadInput in chain", err)
	}
	if ok2, _ := AsBadInput(err); ok2 == nil {
		t.Fatalf("AsBadInput missed %v", err)
	}

	// ErrMalformedWAV: typed decode failures from ReadWAV surface
	// through the same taxonomy.
	if _, werr := ReadWAV(strings.NewReader("not a wav")); werr == nil {
		t.Fatal("garbage WAV decoded")
	} else {
		var mw *ErrMalformedWAV
		if !errors.As(werr, &mw) {
			t.Fatalf("wav err = %v, want *ErrMalformedWAV", werr)
		}
	}

	// ErrBreakerOpen: force the breaker and observe the fast reject.
	eng.TripBreaker()
	if _, berr := eng.Decide(context.Background(), facadeRecording(9)); !errors.Is(berr, ErrBreakerOpen) {
		t.Fatalf("tripped engine err = %v, want ErrBreakerOpen", berr)
	}
	eng.ResetBreaker()

	// ErrEngineClosed after Close.
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if _, cerr := eng.Submit(context.Background(), ServeRequest{Recording: facadeRecording(10)}); !errors.Is(cerr, ErrEngineClosed) {
		t.Fatalf("closed engine err = %v, want ErrEngineClosed", cerr)
	}

	// ErrPipelinePanic is a type; IsPanic must recognize a wrapped one.
	pe := &ErrPipelinePanic{Value: "boom"}
	if !IsPanic(pe) || IsPanic(ErrQueueFull) {
		t.Fatal("IsPanic misclassifies")
	}
}
