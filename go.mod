module headtalk

go 1.24
