package headtalk

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"headtalk/internal/audio"
	"headtalk/internal/dataset"
	"headtalk/internal/liveness"
	"headtalk/internal/orientation"
	"headtalk/internal/registry"
)

// EnrollmentOptions controls Enroll, the convenience that trains both
// HeadTalk gates from synthetic data. Zero values select the paper's
// defaults (lab room, device D2, "Computer").
type EnrollmentOptions struct {
	Seed uint64
	// Room, Device and Word select the enrollment environment.
	Room, Device, Word string
	// OrientationReps is the number of enrollment repetitions per
	// (angle, distance); the default 2 yields ~30 samples per class,
	// which Fig. 11 shows is already past the accuracy knee.
	OrientationReps int
	// LivenessPairs is the number of live/replayed utterance pairs
	// for the liveness detector (default 36).
	LivenessPairs int
	// FingerprintCaptures is the number of live multi-channel captures
	// the array-fingerprint gate enrolls from (default 6, minimum 2).
	FingerprintCaptures int
	// SkipLiveness trains only the orientation gate (and skips the
	// array fingerprint, which is the other half of the liveness
	// ensemble).
	SkipLiveness bool
	// Progress, when non-nil, receives progress lines.
	Progress io.Writer
}

// Enrollment is the result of Enroll.
type Enrollment struct {
	Orientation *OrientationModel
	Liveness    *LivenessDetector
	// ArrayFingerprint is the enrolled array-signature liveness gate
	// (the second model of the fused ensemble); nil when liveness
	// enrollment was skipped.
	ArrayFingerprint *ArrayFingerprint
}

// Enroll generates a synthetic enrollment corpus and trains the
// orientation model (and, unless skipped, the liveness detector and
// the array fingerprint).
// This is the "first day of setup" flow: the paper's user speaks the
// wake word at marked angles; here the simulator does.
func Enroll(opts EnrollmentOptions) (*Enrollment, error) {
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.OrientationReps <= 0 {
		opts.OrientationReps = 2
	}
	if opts.LivenessPairs <= 0 {
		opts.LivenessPairs = 36
	}
	if opts.FingerprintCaptures <= 0 {
		opts.FingerprintCaptures = 6
	}
	if opts.FingerprintCaptures < 2 {
		opts.FingerprintCaptures = 2
	}
	progress := func(format string, args ...any) {
		if opts.Progress != nil {
			fmt.Fprintf(opts.Progress, format+"\n", args...)
		}
	}

	gen := dataset.NewGenerator(opts.Seed)
	def := orientation.Definition4

	// Orientation enrollment: Definition-4 angles at the three
	// distances.
	angles := append(append([]float64{}, def.Facing...), def.NonFacing...)
	var x [][]float64
	var y []int
	total := len(angles) * len(dataset.Distances) * opts.OrientationReps
	progress("enrolling orientation model: %d utterances...", total)
	done := 0
	for _, a := range angles {
		for _, dist := range dataset.Distances {
			for rep := 1; rep <= opts.OrientationReps; rep++ {
				s, err := gen.Generate(dataset.Condition{
					Room: opts.Room, Device: opts.Device, Word: opts.Word,
					Distance: dist, AngleDeg: a, Rep: rep,
				})
				if err != nil {
					return nil, fmt.Errorf("headtalk: enrollment capture: %w", err)
				}
				label, _ := def.Label(a)
				x = append(x, s.Features)
				y = append(y, label)
				done++
				if done%20 == 0 {
					progress("  orientation: %d/%d", done, total)
				}
			}
		}
	}
	model, err := orientation.Train(x, y, orientation.ModelConfig{Seed: opts.Seed})
	if err != nil {
		return nil, fmt.Errorf("headtalk: training orientation model: %w", err)
	}
	out := &Enrollment{Orientation: model}
	if opts.SkipLiveness {
		return out, nil
	}

	// Liveness enrollment: paired live/replayed captures across
	// distances and replay devices.
	genWav := dataset.NewGenerator(opts.Seed + 1)
	genWav.KeepWaveforms = true
	profiles := []string{"Sony SRS-X5", "Samsung Galaxy S21 Ultra", "Smart TV"}
	var waveforms [][]float64
	var labels []int
	progress("enrolling liveness detector: %d utterance pairs...", opts.LivenessPairs)
	for i := 0; i < opts.LivenessPairs; i++ {
		dist := dataset.Distances[i%len(dataset.Distances)]
		base := dataset.Condition{
			Room: opts.Room, Device: opts.Device, Word: opts.Word,
			Distance: dist, AngleDeg: 0, Rep: i + 1,
		}
		human, err := genWav.Generate(base)
		if err != nil {
			return nil, fmt.Errorf("headtalk: liveness enrollment: %w", err)
		}
		replayCond := base
		replayCond.Replay = profiles[i%len(profiles)]
		replayed, err := genWav.Generate(replayCond)
		if err != nil {
			return nil, fmt.Errorf("headtalk: liveness enrollment: %w", err)
		}
		waveforms = append(waveforms, human.Waveform, replayed.Waveform)
		labels = append(labels, liveness.LabelHuman, liveness.LabelSpoof)
		if (i+1)%10 == 0 {
			progress("  liveness: %d/%d pairs", i+1, opts.LivenessPairs)
		}
	}
	det := liveness.NewDetector(opts.Seed)
	if err := det.Train(waveforms, dataset.SampleWaveformRate, labels); err != nil {
		return nil, fmt.Errorf("headtalk: training liveness detector: %w", err)
	}
	out.Liveness = det

	// Array-fingerprint enrollment: the long-term spectral signature of
	// this array at this placement, learned from live multi-channel
	// captures (varying distance and repetition so the per-band
	// tolerances reflect real utterance-to-utterance spread).
	genCap := dataset.NewGenerator(opts.Seed + 2)
	progress("enrolling array fingerprint: %d captures...", opts.FingerprintCaptures)
	var caps []*audio.Recording
	for i := 0; i < opts.FingerprintCaptures; i++ {
		rec, err := dataset.CaptureRecording(genCap, dataset.Condition{
			Room: opts.Room, Device: opts.Device, Word: opts.Word,
			Distance: dataset.Distances[i%len(dataset.Distances)],
			AngleDeg: 0, Rep: i + 1,
		})
		if err != nil {
			return nil, fmt.Errorf("headtalk: fingerprint enrollment: %w", err)
		}
		caps = append(caps, rec)
	}
	fp, err := liveness.TrainArrayFingerprint(caps, liveness.FingerprintConfig{})
	if err != nil {
		return nil, fmt.Errorf("headtalk: training array fingerprint: %w", err)
	}
	out.ArrayFingerprint = fp
	return out, nil
}

// Registry seeds a versioned model registry with the enrollment's
// trained gates (each installed as the active version 1..n) — the
// bridge from the one-shot enrollment flow to the registry-managed
// lifecycle.
func (e *Enrollment) Registry(cfg RegistryConfig) (*Registry, error) {
	reg := registry.New(cfg)
	if e.Orientation != nil {
		if _, err := reg.Install(registry.KindOrientation, e.Orientation); err != nil {
			return nil, fmt.Errorf("headtalk: installing orientation model: %w", err)
		}
	}
	if e.Liveness != nil {
		if _, err := reg.Install(registry.KindLiveness, e.Liveness); err != nil {
			return nil, fmt.Errorf("headtalk: installing liveness model: %w", err)
		}
	}
	if e.ArrayFingerprint != nil {
		if _, err := reg.Install(registry.KindArrayFingerprint, e.ArrayFingerprint); err != nil {
			return nil, fmt.Errorf("headtalk: installing array fingerprint: %w", err)
		}
	}
	return reg, nil
}

// SaveTo persists the enrollment into dir: orientation.json plus, when
// the liveness gates were trained, liveness.json and fingerprint.json.
// Every file is a registry model envelope — the same checksummed,
// byte-stable serialization cluster snapshots and the model registry
// use — written atomically (temp file + fsync + rename), so a crash
// mid-save can never leave a torn model on disk.
func (e *Enrollment) SaveTo(dir string) error {
	if e.Orientation == nil {
		return fmt.Errorf("headtalk: enrollment has no orientation model")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("headtalk: creating %s: %w", dir, err)
	}
	save := func(name string, kind registry.Kind, write func(io.Writer) error) error {
		var buf bytes.Buffer
		if err := write(&buf); err != nil {
			return fmt.Errorf("headtalk: serializing %s: %w", name, err)
		}
		env := registry.Seal(kind, 0, bytes.TrimSpace(buf.Bytes()))
		if err := registry.WriteEnvelopeFile(filepath.Join(dir, name), env); err != nil {
			return fmt.Errorf("headtalk: writing %s: %w", name, err)
		}
		return nil
	}
	if err := save("orientation.json", registry.KindOrientation, e.Orientation.Save); err != nil {
		return err
	}
	if e.Liveness != nil {
		if err := save("liveness.json", registry.KindLiveness, e.Liveness.Save); err != nil {
			return err
		}
	}
	if e.ArrayFingerprint != nil {
		if err := save("fingerprint.json", registry.KindArrayFingerprint, e.ArrayFingerprint.Save); err != nil {
			return err
		}
	}
	return nil
}

// readModelDoc loads one enrollment model file and returns the raw
// model document. Envelope files (SaveTo's format) are
// checksum-verified and unwrapped; pre-envelope files — the raw model
// JSON older versions wrote — pass through unchanged, so existing
// enrollment directories keep loading.
func readModelDoc(path string, kind registry.Kind) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var probe struct {
		Kind     string `json:"kind"`
		Checksum string `json:"checksum"`
	}
	if json.Unmarshal(data, &probe) == nil && probe.Kind != "" && probe.Checksum != "" {
		var env registry.Envelope
		if err := json.Unmarshal(data, &env); err != nil {
			return nil, fmt.Errorf("%w: %s: %v", registry.ErrModelCorrupt, filepath.Base(path), err)
		}
		if env.Kind != string(kind) {
			return nil, fmt.Errorf("%w: %s holds a %q model, want %q", registry.ErrModelCorrupt, filepath.Base(path), env.Kind, kind)
		}
		return env.Open()
	}
	// Legacy layout: the file is the bare model document.
	return data, nil
}

// LoadEnrollment restores an enrollment saved with SaveTo (either the
// current envelope format or the legacy bare-JSON layout). A missing
// liveness.json or fingerprint.json leaves that gate nil
// (orientation-only deployments are valid). Damage surfaces as typed
// errors: ErrModelCorrupt / ErrModelVersion for envelope-level
// problems, the model loaders' sentinels for blob-level ones.
func LoadEnrollment(dir string) (*Enrollment, error) {
	doc, err := readModelDoc(filepath.Join(dir, "orientation.json"), registry.KindOrientation)
	if err != nil {
		return nil, fmt.Errorf("headtalk: loading orientation model: %w", err)
	}
	model, err := orientation.Load(bytes.NewReader(doc))
	if err != nil {
		return nil, err
	}
	out := &Enrollment{Orientation: model}

	doc, err = readModelDoc(filepath.Join(dir, "liveness.json"), registry.KindLiveness)
	switch {
	case err == nil:
		det, err := liveness.Load(bytes.NewReader(doc))
		if err != nil {
			return nil, err
		}
		out.Liveness = det
	case os.IsNotExist(err):
	default:
		return nil, fmt.Errorf("headtalk: loading liveness model: %w", err)
	}

	doc, err = readModelDoc(filepath.Join(dir, "fingerprint.json"), registry.KindArrayFingerprint)
	switch {
	case err == nil:
		fp, err := liveness.LoadFingerprint(bytes.NewReader(doc))
		if err != nil {
			return nil, err
		}
		out.ArrayFingerprint = fp
	case os.IsNotExist(err):
	default:
		return nil, fmt.Errorf("headtalk: loading array fingerprint: %w", err)
	}
	return out, nil
}

// writeModel writes one model file atomically: the document is
// serialized to memory, written to a temp file in the target
// directory, fsynced, and renamed over the destination (with a
// directory fsync so the rename itself is durable). A crash at any
// point leaves either the old complete file or the new complete file —
// never a truncated model.
func writeModel(path string, save func(io.Writer) error) error {
	var buf bytes.Buffer
	if err := save(&buf); err != nil {
		return fmt.Errorf("headtalk: serializing %s: %w", path, err)
	}
	if err := registry.AtomicWriteFile(path, buf.Bytes()); err != nil {
		return fmt.Errorf("headtalk: writing %s: %w", path, err)
	}
	return nil
}
