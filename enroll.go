package headtalk

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"headtalk/internal/dataset"
	"headtalk/internal/liveness"
	"headtalk/internal/orientation"
)

// EnrollmentOptions controls Enroll, the convenience that trains both
// HeadTalk gates from synthetic data. Zero values select the paper's
// defaults (lab room, device D2, "Computer").
type EnrollmentOptions struct {
	Seed uint64
	// Room, Device and Word select the enrollment environment.
	Room, Device, Word string
	// OrientationReps is the number of enrollment repetitions per
	// (angle, distance); the default 2 yields ~30 samples per class,
	// which Fig. 11 shows is already past the accuracy knee.
	OrientationReps int
	// LivenessPairs is the number of live/replayed utterance pairs
	// for the liveness detector (default 36).
	LivenessPairs int
	// SkipLiveness trains only the orientation gate.
	SkipLiveness bool
	// Progress, when non-nil, receives progress lines.
	Progress io.Writer
}

// Enrollment is the result of Enroll.
type Enrollment struct {
	Orientation *OrientationModel
	Liveness    *LivenessDetector
}

// Enroll generates a synthetic enrollment corpus and trains the
// orientation model (and, unless skipped, the liveness detector).
// This is the "first day of setup" flow: the paper's user speaks the
// wake word at marked angles; here the simulator does.
func Enroll(opts EnrollmentOptions) (*Enrollment, error) {
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.OrientationReps <= 0 {
		opts.OrientationReps = 2
	}
	if opts.LivenessPairs <= 0 {
		opts.LivenessPairs = 36
	}
	progress := func(format string, args ...any) {
		if opts.Progress != nil {
			fmt.Fprintf(opts.Progress, format+"\n", args...)
		}
	}

	gen := dataset.NewGenerator(opts.Seed)
	def := orientation.Definition4

	// Orientation enrollment: Definition-4 angles at the three
	// distances.
	angles := append(append([]float64{}, def.Facing...), def.NonFacing...)
	var x [][]float64
	var y []int
	total := len(angles) * len(dataset.Distances) * opts.OrientationReps
	progress("enrolling orientation model: %d utterances...", total)
	done := 0
	for _, a := range angles {
		for _, dist := range dataset.Distances {
			for rep := 1; rep <= opts.OrientationReps; rep++ {
				s, err := gen.Generate(dataset.Condition{
					Room: opts.Room, Device: opts.Device, Word: opts.Word,
					Distance: dist, AngleDeg: a, Rep: rep,
				})
				if err != nil {
					return nil, fmt.Errorf("headtalk: enrollment capture: %w", err)
				}
				label, _ := def.Label(a)
				x = append(x, s.Features)
				y = append(y, label)
				done++
				if done%20 == 0 {
					progress("  orientation: %d/%d", done, total)
				}
			}
		}
	}
	model, err := orientation.Train(x, y, orientation.ModelConfig{Seed: opts.Seed})
	if err != nil {
		return nil, fmt.Errorf("headtalk: training orientation model: %w", err)
	}
	out := &Enrollment{Orientation: model}
	if opts.SkipLiveness {
		return out, nil
	}

	// Liveness enrollment: paired live/replayed captures across
	// distances and replay devices.
	genWav := dataset.NewGenerator(opts.Seed + 1)
	genWav.KeepWaveforms = true
	profiles := []string{"Sony SRS-X5", "Samsung Galaxy S21 Ultra", "Smart TV"}
	var waveforms [][]float64
	var labels []int
	progress("enrolling liveness detector: %d utterance pairs...", opts.LivenessPairs)
	for i := 0; i < opts.LivenessPairs; i++ {
		dist := dataset.Distances[i%len(dataset.Distances)]
		base := dataset.Condition{
			Room: opts.Room, Device: opts.Device, Word: opts.Word,
			Distance: dist, AngleDeg: 0, Rep: i + 1,
		}
		human, err := genWav.Generate(base)
		if err != nil {
			return nil, fmt.Errorf("headtalk: liveness enrollment: %w", err)
		}
		replayCond := base
		replayCond.Replay = profiles[i%len(profiles)]
		replayed, err := genWav.Generate(replayCond)
		if err != nil {
			return nil, fmt.Errorf("headtalk: liveness enrollment: %w", err)
		}
		waveforms = append(waveforms, human.Waveform, replayed.Waveform)
		labels = append(labels, liveness.LabelHuman, liveness.LabelSpoof)
		if (i+1)%10 == 0 {
			progress("  liveness: %d/%d pairs", i+1, opts.LivenessPairs)
		}
	}
	det := liveness.NewDetector(opts.Seed)
	if err := det.Train(waveforms, dataset.SampleWaveformRate, labels); err != nil {
		return nil, fmt.Errorf("headtalk: training liveness detector: %w", err)
	}
	out.Liveness = det
	return out, nil
}

// SaveTo persists the enrollment into dir (orientation.json plus, when
// the liveness gate was trained, liveness.json), so a deployment
// enrolls once and loads on every boot.
func (e *Enrollment) SaveTo(dir string) error {
	if e.Orientation == nil {
		return fmt.Errorf("headtalk: enrollment has no orientation model")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("headtalk: creating %s: %w", dir, err)
	}
	if err := writeModel(filepath.Join(dir, "orientation.json"), e.Orientation.Save); err != nil {
		return err
	}
	if e.Liveness != nil {
		if err := writeModel(filepath.Join(dir, "liveness.json"), e.Liveness.Save); err != nil {
			return err
		}
	}
	return nil
}

// LoadEnrollment restores an enrollment saved with SaveTo. A missing
// liveness.json leaves the liveness gate nil (orientation-only
// deployments are valid).
func LoadEnrollment(dir string) (*Enrollment, error) {
	of, err := os.Open(filepath.Join(dir, "orientation.json"))
	if err != nil {
		return nil, fmt.Errorf("headtalk: opening orientation model: %w", err)
	}
	defer of.Close()
	model, err := orientation.Load(of)
	if err != nil {
		return nil, err
	}
	out := &Enrollment{Orientation: model}

	lf, err := os.Open(filepath.Join(dir, "liveness.json"))
	if err != nil {
		if os.IsNotExist(err) {
			return out, nil
		}
		return nil, fmt.Errorf("headtalk: opening liveness model: %w", err)
	}
	defer lf.Close()
	det, err := liveness.Load(lf)
	if err != nil {
		return nil, err
	}
	out.Liveness = det
	return out, nil
}

// writeModel writes one model file atomically enough for this purpose
// (write then close; partial files fail to parse on load).
func writeModel(path string, save func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("headtalk: creating %s: %w", path, err)
	}
	if err := save(f); err != nil {
		f.Close()
		return fmt.Errorf("headtalk: writing %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("headtalk: closing %s: %w", path, err)
	}
	return nil
}
