package main

import (
	"strings"
	"testing"
)

// TestFusedRequestRoundTrip drives a v4 two-array request end to end:
// both captures decide, the response is a single "fused" line carrying
// the room decision plus the per-array breakdown.
func TestFusedRequestRoundTrip(t *testing.T) {
	d := testDaemon(t, "normal")
	resps := runStream(t, d,
		`{"v":4,"id":"f","arrays":[{"id":"near","condition":{"Distance":1}},{"id":"far","condition":{"Distance":3.5}}]}`+"\n")
	m := byID(resps)
	r, ok := m["f"]
	if !ok {
		t.Fatalf("no response: %+v", resps)
	}
	if r.Type != "fused" || r.Accepted == nil || !*r.Accepted {
		t.Fatalf("fused response %+v", r)
	}
	// Normal mode: the per-array policy outcome carries through.
	if r.ReasonSlug != "normal_mode" {
		t.Errorf("reason %q", r.ReasonSlug)
	}
	if len(r.Arrays) != 2 {
		t.Fatalf("%d array line items, want 2", len(r.Arrays))
	}
	seen := map[string]bool{}
	for _, a := range r.Arrays {
		seen[a.ID] = true
		if a.Error != "" || a.Accepted == nil || !*a.Accepted {
			t.Errorf("array %s: %+v", a.ID, a)
		}
	}
	if !seen["near"] || !seen["far"] {
		t.Errorf("array ids %v", seen)
	}
}

// TestFusedRequestBadArray: a fused request whose array spec cannot be
// resolved fails as one typed error naming the array.
func TestFusedRequestBadArray(t *testing.T) {
	d := testDaemon(t, "normal")
	resps := runStream(t, d,
		`{"v":4,"id":"bad","arrays":[{"id":"x","wav":"/nonexistent.wav"}]}`+"\n"+
			`{"v":4,"id":"empty","arrays":[{"id":"y"}]}`+"\n")
	m := byID(resps)
	if r := m["bad"]; r.Type != "error" || r.ErrorKind != "wav" || !strings.Contains(r.Error, "array x") {
		t.Fatalf("bad wav response %+v", r)
	}
	if r := m["empty"]; r.Type != "error" || r.ErrorKind != "request" {
		t.Fatalf("empty spec response %+v", r)
	}
}
