// Command headtalkd is the HeadTalk decision daemon: the first
// end-to-end "service" shape for this repo. It reads newline-delimited
// JSON decision requests — each naming a WAV file or a synthetic
// condition spec — on stdin or a TCP listener, runs them through the
// multi-tenant serving pool (internal/pool), and streams JSON
// decisions plus periodic metrics summaries back.
//
// Usage:
//
//	headtalkd [-listen addr] [-workers N] [-queue N] [-mode M]
//	          [-batch N] [-batch-gather D]
//	          [-tenants spec] [-deadline D] [-metrics-every D]
//	          [-no-enroll] [-ensemble] [-seed N] [-trace] [-trace-capacity N]
//	          [-slow-threshold D] [-debug-addr addr]
//
// With -batch N (N > 1) each tenant's workers gather up to N queued
// requests (waiting at most -batch-gather after the first) and run
// them through the batched DSP path: one cache-friendly forward-FFT +
// PHAT-whitening sweep over the shared plan instead of per-request
// passes. Batch occupancy is observable as the serve.batch.size
// histogram and serve.batch.occupancy gauge, summarized under
// "batches" in metrics lines.
//
// With -tenants the daemon hosts several isolated device profiles at
// once, each with its own trained system, queue, circuit breaker and
// metrics. The spec is a comma-separated list of id:DEVICE@ROOM
// entries (device D1|D2|D3, room lab|home; both optional):
//
//	headtalkd -tenants lab:D1@lab,home:D3@home
//
// Requests name their tenant with a "tenant" field; without one they
// go to the first configured tenant. Without -tenants the daemon runs
// a single anonymous tenant and behaves exactly like earlier versions.
//
// Request lines (protocol version 2; "v" may be omitted and then
// means 1 — version 1 requests are still accepted unchanged):
//
//	{"v":1,"id":"1","wav":"/path/to/utterance.wav"}
//	{"id":"2","condition":{"AngleDeg":180,"Distance":3}}
//	{"id":"3","tenant":"home","condition":{"Replay":"Smart TV"}}
//	{"id":"4","mode":"normal"}            (control: switch privacy mode)
//	{"id":"5","health":true}              (control: tenant health snapshot)
//	{"id":"6","trace":true}               (control: toggle store-wide tracing)
//	{"id":"7","condition":{},"trace":true}  (force + inline one trace)
//
// Protocol version 2 adds continuous-listening ingest: instead of
// shipping a whole utterance, clients push chunked multichannel sample
// frames into a named per-connection session. The daemon runs the
// early-exit cascade (energy floor, online wake-word spotting) on every
// chunk and only a spotted candidate reaches the full decision
// pipeline; the response reports how far each chunk got:
//
//	{"v":2,"id":"8","session":"kitchen","frames":[[...ch0...],[...ch1...],...]}
//	{"v":2,"id":"9","session":"kitchen","end_session":true}
//
// Frames are 48 kHz samples, one inner array per microphone channel
// (the tenant's array geometry dictates the channel count; 4 without a
// device spec). "frames" and "end_session" on a v1 request are
// rejected with error_kind "unsupported_version".
//
// Protocol version 4 adds multi-array fused decisions: several arrays'
// captures of the same utterance run the pipeline and the per-array
// posteriors are fused (health-weighted) into one room-level
// accept/reject:
//
//	{"v":4,"id":"10","arrays":[{"id":"near","condition":{"Distance":1}},
//	                           {"id":"far","condition":{"Distance":4}}]}
//
// The "fused" response line carries the room decision plus a per-array
// breakdown (accepted, reason_slug, facing/live scores, errors).
//
// Protocol version 5 adds model-lifecycle control verbs against each
// tenant's versioned model registry:
//
//	{"v":5,"id":"11","model_status":true}
//	{"v":5,"id":"12","promote":{"kind":"orientation","version":4}}
//	{"v":5,"id":"13","rollback":"orientation"}
//
// model_status answers a "models" line listing every model family's
// versions (lifecycle state, checksum, active/shadow/previous) plus
// the orientation drift detector's state. promote atomically hot-swaps
// the named version to active without draining in-flight decisions;
// rollback reactivates the previously active version byte-for-byte.
// With -ensemble the daemon requires the fused liveness ensemble:
// decisions must clear both the spectral liveness gate and the
// enrolled array-fingerprint gate, and reject fail-closed when either
// model is missing.
//
// Control requests honor "tenant" too: mode, health, trace, frames,
// end_session and the model verbs all act on the named tenant only.
//
// With -debug-addr set, an HTTP listener additionally serves
// net/http/pprof under /debug/pprof/, Prometheus text exposition at
// /metrics (with a tenant label when -tenants is set), retained traces
// at /debug/traces[/slow] (?tenant= selects a store), and a health
// probe at /healthz aggregating every tenant.
//
// Response lines (order may differ from request order under load; use
// ids to correlate):
//
//	{"type":"decision","id":"1","accepted":true,"reason":"accepted",...}
//	{"type":"stream","id":"8","session":"kitchen","status":"no_wake","spot_score":0.41}
//	{"type":"stream","id":"8","session":"kitchen","status":"decided","accepted":true,...}
//	{"type":"error","id":"9","error":"serve: submission queue full","error_kind":"backpressure"}
//	{"type":"health","id":"5","health":{"state":"running","healthy":true,...}}
//	{"type":"metrics","counters":{...},"gauges":{...},"latencies":{...}}
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"headtalk"
	"headtalk/internal/audio"
	"headtalk/internal/cluster"
	"headtalk/internal/core"
	"headtalk/internal/dataset"
	"headtalk/internal/features"
	"headtalk/internal/fusion"
	"headtalk/internal/metrics"
	"headtalk/internal/mic"
	"headtalk/internal/pool"
	"headtalk/internal/serve"
	"headtalk/internal/speech"
	"headtalk/internal/stream"
	"headtalk/internal/trace"
	"headtalk/internal/va"
)

func main() {
	var (
		listen       = flag.String("listen", "", "TCP listen address (empty: serve stdin/stdout)")
		workers      = flag.Int("workers", 0, "per-tenant engine worker count (0: NumCPU)")
		queueSize    = flag.Int("queue", 64, "per-tenant bounded submission queue size")
		maxBatch     = flag.Int("batch", 0, "requests per DSP batch (<=1: per-request serving)")
		batchGather  = flag.Duration("batch-gather", 0, "how long a worker waits to fill a batch after the first request (0: 2ms)")
		mode         = flag.String("mode", "headtalk", "initial privacy mode: normal|mute|headtalk")
		tenants      = flag.String("tenants", "", "comma-separated tenant specs id:DEVICE@ROOM (empty: one anonymous tenant)")
		deadline     = flag.Duration("deadline", 0, "per-request deadline (0: none)")
		metricsEvery = flag.Duration("metrics-every", 30*time.Second, "metrics summary interval (0: disable)")
		noEnroll     = flag.Bool("no-enroll", false, "skip gate training (headtalk mode then rejects everything)")
		ensemble     = flag.Bool("ensemble", false, "require the fused liveness ensemble (spectral + array fingerprint; fail-closed when either model is missing)")
		seed         = flag.Uint64("seed", 7, "enrollment + synthesis seed")
		orientReps   = flag.Int("orientation-reps", 2, "enrollment repetitions per angle/distance")
		livePairs    = flag.Int("liveness-pairs", 36, "live/replay training pairs for the liveness gate")
		breakerN     = flag.Int("breaker-threshold", 0, "consecutive pipeline failures that trip the circuit breaker (0: default 8, negative: disable)")
		breakerWait  = flag.Duration("breaker-cooldown", 0, "reject-fast period before a half-open probe (0: default 5s)")
		traceOn      = flag.Bool("trace", false, "record per-decision stage traces from the start (also toggleable per connection)")
		traceCap     = flag.Int("trace-capacity", trace.DefaultCapacity, "per-tenant recent-trace ring capacity")
		slowThresh   = flag.Duration("slow-threshold", trace.DefaultSlowThreshold, "decisions at least this slow are always retained (negative: disable)")
		debugAddr    = flag.String("debug-addr", "", "opt-in HTTP listener for pprof, Prometheus metrics and recent traces (empty: off)")
		nodeID       = flag.String("node-id", "", "federation node id (empty: standalone daemon)")
		peersFlag    = flag.String("peers", "", "comma-separated federation peers id=host:port")
		peerListen   = flag.String("peer-listen", "", "TCP listen address for node-to-node traffic (required with -node-id and peers)")
		forwardTO    = flag.Duration("forward-timeout", 0, "end-to-end deadline for one forwarded request (0: 2s)")
		jsonPeerWire = flag.Bool("json-peer-wire", false, "pin node-to-node forwards to NDJSON (no binary frame negotiation)")
		drainTO      = flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown bound for draining in-flight decisions")
	)
	flag.Parse()

	specs, err := parseTenantSpecs(*tenants)
	if err != nil {
		log.Fatalf("headtalkd: %v", err)
	}
	peers, err := parsePeers(*peersFlag)
	if err != nil {
		log.Fatalf("headtalkd: %v", err)
	}
	if *nodeID == "" && len(peers) > 0 {
		log.Fatalf("headtalkd: -peers requires -node-id")
	}
	if *nodeID != "" && len(peers) > 0 && *peerListen == "" {
		log.Fatalf("headtalkd: federating with peers requires -peer-listen")
	}
	if *peerListen != "" && *nodeID == "" {
		log.Fatalf("headtalkd: -peer-listen requires -node-id")
	}
	d, err := newDaemon(daemonOptions{
		Workers:           *workers,
		QueueSize:         *queueSize,
		MaxBatch:          *maxBatch,
		GatherDelay:       *batchGather,
		Mode:              *mode,
		Tenants:           specs,
		Deadline:          *deadline,
		MetricsEvery:      *metricsEvery,
		Enroll:            !*noEnroll,
		Ensemble:          *ensemble,
		Seed:              *seed,
		OrientReps:        *orientReps,
		LivePairs:         *livePairs,
		BreakerThreshold:  *breakerN,
		BreakerCooldown:   *breakerWait,
		Trace:             *traceOn,
		TraceCapacity:     *traceCap,
		SlowThreshold:     *slowThresh,
		Progress:          os.Stderr,
		NodeID:            *nodeID,
		Peers:             peers,
		ForwardTimeout:    *forwardTO,
		DisableBinaryWire: *jsonPeerWire,
		DrainTimeout:      *drainTO,
	})
	if err != nil {
		log.Fatalf("headtalkd: %v", err)
	}
	defer d.Close()

	// SIGINT/SIGTERM: stop accepting, leave the federation, drain
	// in-flight decisions bounded by -drain-timeout, emit one final
	// metrics line, exit 0.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sigc
		fmt.Fprintf(os.Stderr, "headtalkd: %v: draining (bound %v)\n", s, *drainTO)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTO)
		defer cancel()
		if err := d.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "headtalkd: drain: %v\n", err)
		}
		final, _ := json.Marshal(metricsResponse(d.snapshot()))
		fmt.Println(string(final))
		os.Exit(0)
	}()

	if *peerListen != "" {
		pln, err := net.Listen("tcp", *peerListen)
		if err != nil {
			log.Fatalf("headtalkd: peer listener: %v", err)
		}
		d.registerListener(pln)
		fmt.Fprintf(os.Stderr, "headtalkd: node %s peer wire on %s (%d peers)\n", *nodeID, pln.Addr(), len(peers))
		d.node.ServeLoop(pln)
	}

	if *debugAddr != "" {
		ln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			log.Fatalf("headtalkd: debug listener: %v", err)
		}
		fmt.Fprintf(os.Stderr, "headtalkd: debug HTTP on %s (/debug/pprof/, /metrics, /debug/traces)\n", ln.Addr())
		go func() {
			if err := http.Serve(ln, d.debugMux()); err != nil {
				log.Printf("headtalkd: debug listener: %v", err)
			}
		}()
	}

	if *listen == "" {
		if err := d.ServeStream(os.Stdin, os.Stdout); err != nil {
			log.Fatalf("headtalkd: %v", err)
		}
		return
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("headtalkd: %v", err)
	}
	fmt.Fprintf(os.Stderr, "headtalkd: listening on %s (%d tenants: %s; queue %d)\n",
		ln.Addr(), d.pool.Len(), strings.Join(d.pool.Tenants(), ","), *queueSize)
	d.ServeListener(ln)
}

// parsePeers parses the -peers flag: comma-separated id=host:port
// entries.
func parsePeers(s string) (map[string]string, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	peers := map[string]string{}
	for _, entry := range strings.Split(s, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		i := strings.IndexByte(entry, '=')
		if i <= 0 || i == len(entry)-1 {
			return nil, fmt.Errorf("peer %q: want id=host:port", entry)
		}
		id, addr := entry[:i], entry[i+1:]
		if _, dup := peers[id]; dup {
			return nil, fmt.Errorf("duplicate peer id %q", id)
		}
		peers[id] = addr
	}
	return peers, nil
}

// tenantSpec names one hosted device profile.
type tenantSpec struct {
	ID     string
	Device string // "D1", "D2", "D3"; empty: D2 (the paper's default)
	Room   string // "lab" or "home"; empty: lab
}

// parseTenantSpecs parses the -tenants flag: comma-separated
// id[:DEVICE[@ROOM]] entries.
func parseTenantSpecs(s string) ([]tenantSpec, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var specs []tenantSpec
	seen := map[string]bool{}
	for _, entry := range strings.Split(s, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		spec := tenantSpec{ID: entry}
		if i := strings.IndexByte(entry, ':'); i >= 0 {
			spec.ID, spec.Device = entry[:i], entry[i+1:]
			if j := strings.IndexByte(spec.Device, '@'); j >= 0 {
				spec.Device, spec.Room = spec.Device[:j], spec.Device[j+1:]
			}
		}
		if spec.ID == "" {
			return nil, fmt.Errorf("tenant spec %q has no id", entry)
		}
		if seen[spec.ID] {
			return nil, fmt.Errorf("duplicate tenant id %q", spec.ID)
		}
		seen[spec.ID] = true
		if spec.Device != "" {
			if _, err := mic.DeviceByID(spec.Device); err != nil {
				return nil, fmt.Errorf("tenant %q: %w", spec.ID, err)
			}
		}
		switch spec.Room {
		case "", "lab", "home":
		default:
			return nil, fmt.Errorf("tenant %q: unknown room %q (want lab|home)", spec.ID, spec.Room)
		}
		specs = append(specs, spec)
	}
	return specs, nil
}

// daemonOptions assembles a daemon.
type daemonOptions struct {
	Workers   int
	QueueSize int
	// MaxBatch > 1 turns on the per-tenant batch collector: workers
	// gather up to MaxBatch queued requests (waiting at most
	// GatherDelay after the first) and run them through the batched
	// DSP path. See serve.Config.MaxBatch.
	MaxBatch    int
	GatherDelay time.Duration
	Mode        string
	// Tenants lists the hosted device profiles. Empty hosts one
	// anonymous tenant (single-tenant mode: responses and metrics keep
	// their historical, label-free shape).
	Tenants          []tenantSpec
	Deadline     time.Duration
	MetricsEvery time.Duration
	Enroll       bool
	// Ensemble arms the fused liveness ensemble on every tenant's
	// registry: a decision must clear BOTH the spectral gate and the
	// array-fingerprint gate, and is rejected fail-closed when either
	// model is missing.
	Ensemble         bool
	Seed             uint64
	OrientReps       int
	LivePairs        int
	BreakerThreshold int
	BreakerCooldown  time.Duration
	Trace            bool
	TraceCapacity    int
	SlowThreshold    time.Duration
	Progress         io.Writer

	// NodeID joins this daemon to a federation: tenants are partitioned
	// across nodes on a consistent-hash ring, only owned tenants are
	// enrolled and hosted here, and requests for everyone else's are
	// forwarded to the owning peer. Empty runs the classic standalone
	// daemon.
	NodeID string
	// Peers maps peer node IDs to their peer-listener addresses.
	Peers map[string]string
	// ForwardTimeout bounds one forwarded request end to end (0: the
	// cluster default, 2s).
	ForwardTimeout time.Duration
	// DisableBinaryWire pins node-to-node forwards to NDJSON: this
	// node neither sends binary peer frames nor invites peers to.
	DisableBinaryWire bool
	// DrainTimeout bounds graceful shutdown's pool drain (0: 10s).
	DrainTimeout time.Duration
}

// defaultTenantID names the single tenant hosted when -tenants is not
// set.
const defaultTenantID = "default"

// protocolVersion is the newest NDJSON protocol this daemon speaks.
// Requests may carry "v"; absent means version 1. Every version from 1
// through protocolVersion is accepted; anything else is rejected with
// error_kind "unsupported_version".
const protocolVersion = 5

// minStreamVersion gates the continuous-ingest request fields: frames
// and end_session require at least protocol version 2.
const minStreamVersion = 2

// minClusterVersion gates the federation request fields: snapshot,
// restore, join and leave require at least protocol version 3.
const minClusterVersion = 3

// minFusedVersion gates multi-array fused decisions: the arrays
// request field requires at least protocol version 4.
const minFusedVersion = 4

// minRegistryVersion gates the model-lifecycle control verbs:
// model_status, promote and rollback require at least protocol
// version 5.
const minRegistryVersion = 5

// defaultSessionID names the streaming session used when a frames or
// end_session request carries no "session" field.
const defaultSessionID = "default"

// daemon owns the serving pool (one tenant per hosted device profile)
// and the synth generator shared by every connection.
type daemon struct {
	pool *pool.Pool
	// defaultID routes requests that name no tenant.
	defaultID string
	// multiTenant selects the multi-tenant response/metrics shape:
	// tenant echoes on responses, tenant.<id>. metric prefixes and
	// tenant-labeled Prometheus exposition. Single-tenant daemons keep
	// the historical flat shape.
	multiTenant bool
	specs       map[string]tenantSpec
	opts        daemonOptions

	// node federates this daemon with its peers (nil: standalone). Its
	// registry is merged into metrics lines under the cluster.* names.
	node *cluster.Node
	// spotter is shared by every tenant's streaming sessions, including
	// tenants restored from snapshots later.
	spotter *va.Spotter

	// genMu serializes the synthetic-condition generator, which is not
	// safe for concurrent use; WAV requests bypass it entirely.
	genMu sync.Mutex
	gen   *dataset.Generator

	// lnMu guards listeners, registered by the serving entry points so
	// Shutdown can stop accepting.
	lnMu      sync.Mutex
	listeners []net.Listener
	shutdown  sync.Once
	draining  atomic.Bool
}

func parseMode(s string) (core.Mode, error) {
	switch s {
	case "normal":
		return core.ModeNormal, nil
	case "mute":
		return core.ModeMute, nil
	case "headtalk":
		return core.ModeHeadTalk, nil
	default:
		return 0, fmt.Errorf("unknown mode %q (want normal|mute|headtalk)", s)
	}
}

func newDaemon(opts daemonOptions) (*daemon, error) {
	m, err := parseMode(opts.Mode)
	if err != nil {
		return nil, err
	}
	specs := opts.Tenants
	multiTenant := len(specs) > 0
	if !multiTenant {
		specs = []tenantSpec{{ID: defaultTenantID}}
	}

	d := &daemon{
		pool:        pool.New(pool.Config{}),
		defaultID:   specs[0].ID,
		multiTenant: multiTenant,
		specs:       make(map[string]tenantSpec, len(specs)),
		opts:        opts,
		gen:         dataset.NewGenerator(opts.Seed),
	}

	// One wake-word spotter serves every tenant's streaming sessions:
	// after construction its templates are read-only, and each session
	// spots through its own OnlineSpotter state.
	spotter, err := va.NewSpotter(speech.WordComputer, 4, opts.Seed)
	if err != nil {
		_ = d.pool.Close()
		return nil, fmt.Errorf("building wake spotter: %w", err)
	}
	d.spotter = spotter

	if opts.NodeID != "" {
		node, err := cluster.NewNode(cluster.Config{
			NodeID:            opts.NodeID,
			Pool:              d.pool,
			Peers:             opts.Peers,
			Metrics:           metrics.NewRegistry(),
			ForwardTimeout:    opts.ForwardTimeout,
			DisableBinaryWire: opts.DisableBinaryWire,
			TenantBuilder:     d.restoredTenantConfig,
			Profile: func(tenantID string) (string, string) {
				spec := d.specs[tenantID]
				return spec.Device, spec.Room
			},
		})
		if err != nil {
			_ = d.pool.Close()
			return nil, err
		}
		d.node = node
		// Ownership filter: enroll and host only the tenants the ring
		// assigns to this node; the rest are served by forwarding.
		var owned []tenantSpec
		for _, spec := range specs {
			if node.Owns(spec.ID) {
				owned = append(owned, spec)
			} else if opts.Progress != nil {
				fmt.Fprintf(opts.Progress, "headtalkd: tenant %q owned by node %s; serving by forwarding\n", spec.ID, node.Owner(spec.ID))
			}
		}
		specs = owned
		d.defaultID = ""
		if len(specs) > 0 {
			d.defaultID = specs[0].ID
		}
	}

	// Gate training is per (device, room): tenants sharing an
	// environment share one enrollment run instead of re-simulating it.
	// Each tenant still gets its OWN model registry seeded from the
	// shared enrollment — lifecycle state (versions, shadow, adaptation,
	// drift) is per-tenant, the trained weights are not.
	enrollments := map[string]*headtalk.Enrollment{}
	for _, spec := range specs {
		cfg := headtalk.Config{}
		tenantMetrics := metrics.NewRegistry()
		var models *headtalk.Registry
		if opts.Enroll {
			key := spec.Device + "|" + spec.Room
			enr, ok := enrollments[key]
			if !ok {
				enr, err = headtalk.Enroll(headtalk.EnrollmentOptions{
					Seed:            opts.Seed,
					Room:            spec.Room,
					Device:          spec.Device,
					OrientationReps: opts.OrientReps,
					LivenessPairs:   opts.LivePairs,
					Progress:        opts.Progress,
				})
				if err != nil {
					_ = d.pool.Close()
					return nil, fmt.Errorf("enrolling gates for tenant %q: %w", spec.ID, err)
				}
				enrollments[key] = enr
			}
			models, err = enr.Registry(headtalk.RegistryConfig{
				Metrics:      tenantMetrics,
				EnsembleMode: opts.Ensemble,
			})
			if err != nil {
				_ = d.pool.Close()
				return nil, fmt.Errorf("seeding model registry for tenant %q: %w", spec.ID, err)
			}
			cfg.Models = models
		}
		streamChannels := 4
		if spec.Device != "" {
			// Match the feature geometry (GCC lag window) to the
			// tenant's array so decision-time extraction agrees with the
			// enrolled model.
			array, aerr := mic.DeviceByID(spec.Device)
			if aerr != nil {
				_ = d.pool.Close()
				return nil, fmt.Errorf("tenant %q: %w", spec.ID, aerr)
			}
			cfg.Features = features.DefaultConfig(array.MaxDelaySamples(48000, 340), 48000)
			// Streamed frames must match the array geometry too.
			streamChannels = array.Channels()
		}
		cfg.Metrics = tenantMetrics
		sys, serr := headtalk.NewSystem(cfg)
		if serr != nil {
			_ = d.pool.Close()
			return nil, serr
		}
		sys.SetMode(m)
		_, terr := d.pool.AddTenant(pool.TenantConfig{
			ID:               spec.ID,
			System:           sys,
			Models:           models,
			Workers:          opts.Workers,
			QueueSize:        opts.QueueSize,
			MaxBatch:         opts.MaxBatch,
			GatherDelay:      opts.GatherDelay,
			Metrics:          tenantMetrics,
			BreakerThreshold: opts.BreakerThreshold,
			BreakerCooldown:  opts.BreakerCooldown,
			TraceCapacity:    opts.TraceCapacity,
			SlowThreshold:    opts.SlowThreshold,
			TraceEnabled:     opts.Trace,
			// The continuous-ingest front end: every tenant accepts v2
			// frames pushes. The stream manager reuses the tenant's
			// registry, so its session gauges and early-exit counters
			// surface in metrics lines and Prometheus exposition. The
			// default tracker attributes every spotted candidate to a
			// speaker by TDoA signature; spotted/decided stream lines
			// echo the attribution.
			Streaming: &stream.Config{
				SampleRate: 48000,
				Channels:   streamChannels,
				Spotter:    spotter,
				Speakers:   &stream.TrackerConfig{},
			},
		})
		if terr != nil {
			_ = d.pool.Close()
			return nil, terr
		}
		d.specs[spec.ID] = spec
	}
	if d.node != nil {
		d.node.Start()
	}
	return d, nil
}

// restoredTenantConfig assembles the serving stack for a tenant
// activated from a snapshot envelope: same workers, queue, breaker,
// tracing and streaming front end a locally-enrolled tenant gets. The
// streamed channel count follows the envelope's recorded device.
func (d *daemon) restoredTenantConfig(env *cluster.Envelope, sys *core.System, registry *metrics.Registry) pool.TenantConfig {
	streamChannels := 4
	if device, _, err := env.Profile(); err == nil && device != "" {
		if array, aerr := mic.DeviceByID(device); aerr == nil {
			streamChannels = array.Channels()
		}
	}
	return pool.TenantConfig{
		ID:               env.TenantID,
		System:           sys,
		Workers:          d.opts.Workers,
		QueueSize:        d.opts.QueueSize,
		MaxBatch:         d.opts.MaxBatch,
		GatherDelay:      d.opts.GatherDelay,
		Metrics:          registry,
		BreakerThreshold: d.opts.BreakerThreshold,
		BreakerCooldown:  d.opts.BreakerCooldown,
		TraceCapacity:    d.opts.TraceCapacity,
		SlowThreshold:    d.opts.SlowThreshold,
		TraceEnabled:     d.opts.Trace,
		Streaming: &stream.Config{
			SampleRate: 48000,
			Channels:   streamChannels,
			Spotter:    d.spotter,
			Speakers:   &stream.TrackerConfig{},
		},
	}
}

// restoreEnvelope rebuilds and activates a tenant from a snapshot with
// restore-then-activate semantics, with or without a federation node.
func (d *daemon) restoreEnvelope(ctx context.Context, env *cluster.Envelope) error {
	if d.node != nil {
		return d.node.Restore(ctx, env)
	}
	reg := metrics.NewRegistry()
	sys, models, err := cluster.BuildSystemWithModels(env, reg)
	if err != nil {
		return err
	}
	tcfg := d.restoredTenantConfig(env, sys, reg)
	// Registry-managed captures restore registry-managed, so the v5
	// model verbs keep working on the restored tenant.
	tcfg.Models = models
	_, err = d.pool.ReplaceTenant(ctx, tcfg)
	return err
}

// registerListener records a listener so Shutdown can stop accepting.
func (d *daemon) registerListener(ln net.Listener) {
	d.lnMu.Lock()
	d.listeners = append(d.listeners, ln)
	d.lnMu.Unlock()
}

// Close drains every tenant, finishing in-flight decisions.
func (d *daemon) Close() error { return d.Shutdown(context.Background()) }

// Shutdown is the graceful exit path: stop accepting new connections,
// leave the federation (peers see probes fail and reroute), then drain
// every tenant's queue bounded by ctx. In-flight decisions finish;
// late submissions fail with typed closed/draining errors. Idempotent.
func (d *daemon) Shutdown(ctx context.Context) error {
	var err error
	d.shutdown.Do(func() {
		d.draining.Store(true)
		d.lnMu.Lock()
		for _, ln := range d.listeners {
			_ = ln.Close()
		}
		d.lnMu.Unlock()
		if d.node != nil {
			_ = d.node.Close()
		}
		err = d.pool.Drain(ctx)
	})
	return err
}

// tenant resolves a request's tenant field ("" routes to the default).
func (d *daemon) tenant(id string) (*pool.Tenant, error) {
	if id == "" {
		id = d.defaultID
	}
	t, ok := d.pool.Tenant(id)
	if !ok {
		return nil, fmt.Errorf("%w: %q", pool.ErrUnknownTenant, id)
	}
	return t, nil
}

// snapshot merges the tenants' metrics for the NDJSON metrics line:
// flat names in single-tenant mode (the historical shape), a
// tenant.<id>.-prefixed merge when hosting several.
func (d *daemon) snapshot() metrics.Snapshot {
	var s metrics.Snapshot
	if !d.multiTenant {
		if t, ok := d.pool.Tenant(d.defaultID); ok {
			s = t.Metrics().Snapshot()
		}
	} else {
		s = d.pool.Snapshot()
	}
	if d.node != nil {
		// Fold the federation instrumentation in under its own cluster.*
		// names (ring membership, remap count, per-peer forward health).
		cs := d.node.Metrics().Snapshot()
		if s.Counters == nil && (len(cs.Counters) > 0 || len(cs.Gauges) > 0 || len(cs.Histograms) > 0) {
			s = metrics.Snapshot{
				Counters:   map[string]uint64{},
				Gauges:     map[string]int64{},
				Histograms: map[string]metrics.HistogramSnapshot{},
			}
		}
		for k, v := range cs.Counters {
			s.Counters[k] = v
		}
		for k, v := range cs.Gauges {
			s.Gauges[k] = v
		}
		for k, v := range cs.Histograms {
			s.Histograms[k] = v
		}
	}
	return s
}

// request is one NDJSON input line.
type request struct {
	// V is the protocol version; nil or 1 selects today's protocol.
	V *int `json:"v,omitempty"`
	// Tenant routes the request inside the pool; empty uses the daemon's
	// default tenant. Applies to decision and control requests alike.
	Tenant string `json:"tenant,omitempty"`
	ID     string `json:"id"`
	// WAV names a multi-channel utterance file on disk.
	WAV string `json:"wav,omitempty"`
	// Condition synthesizes the utterance instead (zero values pick the
	// tenant's device/room, falling back to the paper's defaults: lab
	// room, device D2, "Computer", facing).
	Condition *dataset.Condition `json:"condition,omitempty"`
	// Mode, when set, is a control request switching the tenant's
	// privacy mode.
	Mode string `json:"mode,omitempty"`
	// Health, when true, is a control request for the tenant's health
	// snapshot (breaker state, queue depth, panic counts).
	Health bool `json:"health,omitempty"`
	// Trace has two meanings. Alone ({"trace":true}) it is a control
	// request toggling the tenant's store-wide tracing. Alongside a
	// wav/condition it forces a trace for that one decision (even with
	// the store off) and inlines the stage table in the response.
	Trace *bool `json:"trace,omitempty"`
	// Frames pushes one chunk of 48 kHz multichannel samples (one inner
	// array per microphone channel) into the tenant's streaming session
	// named by Session. Requires protocol version 2.
	Frames [][]float64 `json:"frames,omitempty"`
	// Session names the streaming session Frames and EndSession act on;
	// empty uses "default". Sessions are scoped per tenant.
	Session string `json:"session,omitempty"`
	// EndSession closes the named streaming session, releasing its ring
	// buffer. Requires protocol version 2.
	EndSession bool `json:"end_session,omitempty"`

	// Snapshot captures the tenant's versioned, checksummed state
	// envelope (models, thresholds, profile) — served locally or fetched
	// from the owning peer. Requires protocol version 3.
	Snapshot bool `json:"snapshot,omitempty"`
	// Restore activates the envelope's tenant on THIS node
	// (restore-then-activate: a failed restore leaves any existing
	// tenant serving). Requires protocol version 3.
	Restore *cluster.Envelope `json:"restore,omitempty"`
	// Join adds (or re-addresses) a federation peer; Leave removes one.
	// Both require protocol version 3 and a federated daemon.
	Join  *joinSpec `json:"join,omitempty"`
	Leave string    `json:"leave,omitempty"`

	// Arrays requests a multi-array fused decision: every array's
	// capture of the same utterance runs the tenant's pipeline and the
	// per-array posteriors are fused (health-weighted) into one
	// room-level accept/reject. Requires protocol version 4.
	Arrays []arraySpec `json:"arrays,omitempty"`

	// ModelStatus, when true, reports the tenant's model registry:
	// per-kind versions with lifecycle states and checksums, plus the
	// drift detector's state. Requires protocol version 5.
	ModelStatus bool `json:"model_status,omitempty"`
	// Promote hot-swaps the named version of a model kind to active
	// (atomic, no drain). Requires protocol version 5.
	Promote *promoteSpec `json:"promote,omitempty"`
	// Rollback names a model kind whose previously active version is
	// reactivated, byte-for-byte. Requires protocol version 5.
	Rollback string `json:"rollback,omitempty"`
}

// promoteSpec is the body of a v5 promote request.
type promoteSpec struct {
	// Kind is the model family: orientation | liveness | fingerprint.
	Kind string `json:"kind"`
	// Version is the registry version number to activate.
	Version uint64 `json:"version"`
}

// joinSpec is the body of a v3 join request.
type joinSpec struct {
	Node string `json:"node"`
	Addr string `json:"addr"`
}

// arraySpec is one array's capture inside a v4 fused request. Exactly
// one of WAV or Condition must be set (matching single-array requests).
type arraySpec struct {
	// ID names the array in the fused response ("kitchen", ...).
	ID string `json:"id,omitempty"`
	// WAV names a multi-channel utterance file on disk.
	WAV string `json:"wav,omitempty"`
	// Condition synthesizes the capture (zero values default to the
	// tenant's device/room).
	Condition *dataset.Condition `json:"condition,omitempty"`
	// Weight overrides the health-derived fusion weight when > 0.
	Weight float64 `json:"weight,omitempty"`
}

// response is one NDJSON output line.
type response struct {
	Type string `json:"type"` // decision | stream | ok | error | health | metrics
	ID   string `json:"id,omitempty"`
	// Tenant echoes which tenant served the line (multi-tenant daemons
	// only; single-tenant responses stay flat).
	Tenant      string   `json:"tenant,omitempty"`
	Accepted    *bool    `json:"accepted,omitempty"`
	Reason      string   `json:"reason,omitempty"`
	ReasonSlug  string   `json:"reason_slug,omitempty"`
	LiveScore   *float64 `json:"live_score,omitempty"`
	FacingScore *float64 `json:"facing_score,omitempty"`
	QueueWaitUS int64    `json:"queue_wait_us,omitempty"`
	TotalUS     int64    `json:"total_us,omitempty"`
	Mode        string   `json:"mode,omitempty"`
	Error       string   `json:"error,omitempty"`
	// ErrorKind classifies error lines so clients can branch without
	// parsing error strings: parse | oversized | unsupported_version |
	// unknown_tenant | request | wav | mode | bad_input | session_limit |
	// panic | breaker_open | backpressure | closed | deadline | pipeline.
	ErrorKind string `json:"error_kind,omitempty"`

	// Session and Status report what one v2 frames push accomplished:
	// how far the chunk got through the early-exit cascade (buffered,
	// silent, no_wake, spotted, decided). SpotScore carries the best
	// wake-word window score once the spotter has a full window; Ended
	// acknowledges an end_session request.
	Session   string   `json:"session,omitempty"`
	Status    string   `json:"status,omitempty"`
	SpotScore *float64 `json:"spot_score,omitempty"`
	Ended     *bool    `json:"ended,omitempty"`
	// Speaker attributes a spotted/decided chunk to a tracked speaker
	// (TDoA-signature clustering across utterances).
	Speaker *speakerEcho `json:"speaker,omitempty"`

	// Arrays carries the per-array breakdown of a v4 fused decision;
	// BestArray names the used array with the strongest facing margin
	// and ArraysUsed/ArraysDropped count how many contributed evidence.
	Arrays        []arrayResult `json:"arrays,omitempty"`
	BestArray     string        `json:"best_array,omitempty"`
	ArraysUsed    int           `json:"arrays_used,omitempty"`
	ArraysDropped int           `json:"arrays_dropped,omitempty"`

	// Forwarded marks a line served by another federation node on the
	// requester's behalf.
	Forwarded bool `json:"forwarded,omitempty"`
	// Envelope answers a v3 snapshot request.
	Envelope *cluster.Envelope `json:"envelope,omitempty"`

	// Models answers a v5 model_status request: every model family's
	// versions with lifecycle states and checksums. Drift rides along
	// with the orientation drift detector's state.
	Models []headtalk.ModelKindStatus `json:"models,omitempty"`
	Drift  *headtalk.DriftState       `json:"drift,omitempty"`
	// Kind and Version echo what a promote/rollback acted on.
	Kind    string `json:"kind,omitempty"`
	Version uint64 `json:"version,omitempty"`

	// TraceEnabled acknowledges a {"trace":...} control request.
	TraceEnabled *bool `json:"trace_enabled,omitempty"`
	// TraceID names the retained trace for a decision served while
	// tracing is on; fetch it later from the debug listener.
	TraceID string `json:"trace_id,omitempty"`
	// Trace inlines the full stage breakdown when the request forced a
	// per-decision trace with "trace":true.
	Trace *trace.Trace `json:"trace,omitempty"`

	Health *healthInfo `json:"health,omitempty"`

	Counters  map[string]uint64         `json:"counters,omitempty"`
	Gauges    map[string]int64          `json:"gauges,omitempty"`
	Latencies map[string]latencySummary `json:"latencies,omitempty"`
	// Batches summarizes the serve.batch.size histograms (requests per
	// dispatched batch — counts, not latencies) when batching is on.
	Batches map[string]batchSummary `json:"batches,omitempty"`
}

// speakerEcho is the per-speaker attribution on a stream line: the
// tracker-assigned identity, how many utterances it has produced, and
// its cross-utterance mean facing margin (zero until an orientation
// gate has run for this speaker).
type speakerEcho struct {
	ID         string  `json:"id"`
	Utterances int     `json:"utterances"`
	MeanFacing float64 `json:"mean_facing"`
}

// arrayResult is one array's line item inside a fused response.
type arrayResult struct {
	ID          string   `json:"id"`
	Accepted    *bool    `json:"accepted,omitempty"`
	ReasonSlug  string   `json:"reason_slug,omitempty"`
	LiveScore   *float64 `json:"live_score,omitempty"`
	FacingScore *float64 `json:"facing_score,omitempty"`
	Error       string   `json:"error,omitempty"`
}

// healthInfo is the body of a health line: one tenant's serving
// fitness plus its privacy mode.
type healthInfo struct {
	Tenant              string `json:"tenant,omitempty"`
	State               string `json:"state"`
	Healthy             bool   `json:"healthy"`
	Mode                string `json:"mode"`
	Workers             int    `json:"workers"`
	QueueDepth          int    `json:"queue_depth"`
	QueueCapacity       int    `json:"queue_capacity"`
	Breaker             string `json:"breaker"`
	ConsecutiveFailures int    `json:"consecutive_failures"`
	Panics              uint64 `json:"panics"`
	Submitted           uint64 `json:"submitted"`
	Completed           uint64 `json:"completed"`
	BreakerRejected     uint64 `json:"breaker_rejected"`
}

// tenantHealth snapshots one tenant into a health body.
func (d *daemon) tenantHealth(t *pool.Tenant) *healthInfo {
	h := t.Health()
	info := &healthInfo{
		State:               h.State,
		Healthy:             h.Healthy,
		Mode:                t.System().Mode().String(),
		Workers:             h.Workers,
		QueueDepth:          h.QueueDepth,
		QueueCapacity:       h.QueueCapacity,
		Breaker:             h.Breaker,
		ConsecutiveFailures: h.ConsecutiveFailures,
		Panics:              h.Panics,
		Submitted:           h.Submitted,
		Completed:           h.Completed,
		BreakerRejected:     h.BreakerRejected,
	}
	if d.multiTenant {
		info.Tenant = t.ID()
	}
	return info
}

// healthResponse snapshots one tenant into a health line.
func (d *daemon) healthResponse(t *pool.Tenant, id string) response {
	return response{
		Type:   "health",
		ID:     id,
		Tenant: d.echoTenant(t),
		Health: d.tenantHealth(t),
	}
}

// echoTenant returns the tenant id for response echoing (multi-tenant
// daemons only).
func (d *daemon) echoTenant(t *pool.Tenant) string {
	if d.multiTenant {
		return t.ID()
	}
	return ""
}

// errorKind classifies a serving-path error for the error_kind field.
func errorKind(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, pool.ErrUnknownTenant), errors.Is(err, pool.ErrNoRoute):
		return "unknown_tenant"
	case errors.Is(err, serve.ErrQueueFull):
		return "backpressure"
	case errors.Is(err, serve.ErrClosed), errors.Is(err, serve.ErrNotStarted),
		errors.Is(err, pool.ErrPoolClosed), errors.Is(err, stream.ErrClosed):
		return "closed"
	case errors.Is(err, serve.ErrBreakerOpen):
		return "breaker_open"
	case errors.Is(err, stream.ErrSessionLimit):
		return "session_limit"
	case errors.Is(err, stream.ErrBadFrame):
		return "bad_input"
	case errors.Is(err, serve.ErrNoStream):
		return "request"
	case errors.Is(err, cluster.ErrPeerUnavailable):
		return "peer_unavailable"
	case errors.Is(err, cluster.ErrSnapshotVersion), errors.Is(err, cluster.ErrSnapshotChecksum), errors.Is(err, cluster.ErrSnapshotCorrupt):
		return "snapshot"
	case errors.Is(err, headtalk.ErrModelVersion), errors.Is(err, headtalk.ErrModelCorrupt):
		return "model"
	case serve.IsPanic(err):
		return "panic"
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return "deadline"
	}
	// A forwarded request the owning peer rejected surfaces the peer's
	// own error_kind verbatim.
	var remote *cluster.RemoteError
	if errors.As(err, &remote) && remote.Kind != "" {
		return remote.Kind
	}
	if _, ok := audio.AsBadInput(err); ok {
		return "bad_input"
	}
	return "pipeline"
}

// latencySummary renders one histogram for the metrics line.
type latencySummary struct {
	Count  uint64 `json:"count"`
	MeanUS int64  `json:"mean_us"`
	P50US  int64  `json:"p50_us"`
	P90US  int64  `json:"p90_us"`
	P99US  int64  `json:"p99_us"`
	MaxUS  int64  `json:"max_us"`
}

// batchSummary renders one serve.batch.size histogram: how full
// dispatched batches ran, in requests rather than seconds.
type batchSummary struct {
	// Batches is how many batches were dispatched; Requests how many
	// requests rode them (Requests/Batches = mean occupancy).
	Batches  uint64  `json:"batches"`
	Requests uint64  `json:"requests"`
	Mean     float64 `json:"mean"`
	P50      float64 `json:"p50"`
	Max      float64 `json:"max"`
}

// isBatchSizeMetric spots the serve.batch.size histogram under any
// tenant prefix; its samples are batch occupancies, not durations.
func isBatchSizeMetric(name string) bool {
	return strings.HasSuffix(name, "serve.batch.size")
}

func metricsResponse(s metrics.Snapshot) response {
	resp := response{
		Type:      "metrics",
		Counters:  s.Counters,
		Gauges:    s.Gauges,
		Latencies: make(map[string]latencySummary, len(s.Histograms)),
	}
	us := func(sec float64) int64 { return int64(sec * 1e6) }
	for name, h := range s.Histograms {
		if isBatchSizeMetric(name) {
			if resp.Batches == nil {
				resp.Batches = map[string]batchSummary{}
			}
			resp.Batches[name] = batchSummary{
				Batches:  h.Count,
				Requests: uint64(h.Sum),
				Mean:     h.Mean(),
				P50:      h.Quantile(0.5),
				Max:      h.Max,
			}
			continue
		}
		resp.Latencies[name] = latencySummary{
			Count:  h.Count,
			MeanUS: us(h.Mean()),
			P50US:  us(h.Quantile(0.5)),
			P90US:  us(h.Quantile(0.9)),
			P99US:  us(h.Quantile(0.99)),
			MaxUS:  us(h.Max),
		}
	}
	return resp
}

// lineWriter serializes NDJSON writes from workers, the reader loop
// and the metrics ticker.
type lineWriter struct {
	mu sync.Mutex
	w  *bufio.Writer
}

func (lw *lineWriter) write(resp response) {
	data, err := json.Marshal(resp)
	if err != nil {
		data = []byte(fmt.Sprintf(`{"type":"error","error":%q}`, err.Error()))
	}
	lw.mu.Lock()
	defer lw.mu.Unlock()
	lw.w.Write(data)
	lw.w.WriteByte('\n')
	lw.w.Flush()
}

// loadRecording resolves a request into a microphone-array recording.
// kind classifies any failure for the error_kind field: "request" for
// malformed request shapes, "wav" for unreadable or unparsable WAV
// paths, "condition" for synthesis failures. Synthetic conditions
// default their device and room to the serving tenant's spec, so a
// D1 tenant's captures come off a D1 array unless the request says
// otherwise.
func (d *daemon) loadRecording(req request, spec tenantSpec) (rec *audio.Recording, kind string, err error) {
	switch {
	case req.WAV != "" && req.Condition != nil:
		return nil, "request", fmt.Errorf("request has both wav and condition")
	case req.WAV != "":
		f, err := os.Open(req.WAV)
		if err != nil {
			return nil, "wav", err
		}
		defer f.Close()
		rec, err = audio.ReadWAV(f)
		if err != nil {
			return nil, "wav", err
		}
		return rec, "", nil
	case req.Condition != nil:
		cond := *req.Condition
		if cond.Device == "" {
			cond.Device = spec.Device
		}
		if cond.Room == "" {
			cond.Room = spec.Room
		}
		d.genMu.Lock()
		defer d.genMu.Unlock()
		rec, err = dataset.CaptureRecording(d.gen, cond)
		if err != nil {
			return nil, "condition", err
		}
		return rec, "", nil
	default:
		return nil, "request", fmt.Errorf("request needs wav or condition")
	}
}

// handle dispatches one request line; decision responses are written
// asynchronously from engine workers.
func (d *daemon) handle(req request, lw *lineWriter, inflight *sync.WaitGroup) {
	v := 1
	if req.V != nil {
		v = *req.V
	}
	if v < 1 || v > protocolVersion {
		lw.write(response{
			Type:      "error",
			ID:        req.ID,
			Error:     fmt.Sprintf("unsupported protocol version %d (supported: 1..%d)", v, protocolVersion),
			ErrorKind: "unsupported_version",
		})
		return
	}
	if (req.Frames != nil || req.EndSession) && v < minStreamVersion {
		lw.write(response{
			Type:      "error",
			ID:        req.ID,
			Error:     fmt.Sprintf("frames/end_session require protocol version %d (request is version %d)", minStreamVersion, v),
			ErrorKind: "unsupported_version",
		})
		return
	}
	if len(req.Arrays) > 0 && v < minFusedVersion {
		lw.write(response{
			Type:      "error",
			ID:        req.ID,
			Error:     fmt.Sprintf("arrays require protocol version %d (request is version %d)", minFusedVersion, v),
			ErrorKind: "unsupported_version",
		})
		return
	}
	if (req.ModelStatus || req.Promote != nil || req.Rollback != "") && v < minRegistryVersion {
		lw.write(response{
			Type:      "error",
			ID:        req.ID,
			Error:     fmt.Sprintf("model_status/promote/rollback require protocol version %d (request is version %d)", minRegistryVersion, v),
			ErrorKind: "unsupported_version",
		})
		return
	}
	if (req.Snapshot || req.Restore != nil || req.Join != nil || req.Leave != "") && v < minClusterVersion {
		lw.write(response{
			Type:      "error",
			ID:        req.ID,
			Error:     fmt.Sprintf("snapshot/restore/join/leave require protocol version %d (request is version %d)", minClusterVersion, v),
			ErrorKind: "unsupported_version",
		})
		return
	}
	if req.Restore != nil || req.Join != nil || req.Leave != "" {
		d.handleCluster(req, lw)
		return
	}
	t, err := d.tenant(req.Tenant)
	if err != nil {
		// A federated daemon serves non-hosted tenants by forwarding to
		// the ring owner; control verbs stay node-local.
		if d.node != nil && errors.Is(err, pool.ErrUnknownTenant) && req.Tenant != "" {
			d.handleForward(req, lw, inflight)
			return
		}
		lw.write(response{Type: "error", ID: req.ID, Error: err.Error(), ErrorKind: errorKind(err)})
		return
	}
	echo := d.echoTenant(t)
	if req.Health {
		lw.write(d.healthResponse(t, req.ID))
		return
	}
	if req.Snapshot {
		spec := d.specs[t.ID()]
		env, err := cluster.CaptureTenant(t, spec.Device, spec.Room)
		if err != nil {
			lw.write(response{Type: "error", ID: req.ID, Tenant: echo, Error: err.Error(), ErrorKind: errorKind(err)})
			return
		}
		lw.write(response{Type: "snapshot", ID: req.ID, Tenant: echo, Envelope: env})
		return
	}
	if req.ModelStatus || req.Promote != nil || req.Rollback != "" {
		d.handleModels(req, t, lw)
		return
	}
	if req.Frames != nil || req.EndSession {
		d.handleStream(req, t, lw)
		return
	}
	if len(req.Arrays) > 0 {
		d.handleFused(req, t, lw)
		return
	}
	if req.Trace != nil && req.WAV == "" && req.Condition == nil && req.Mode == "" {
		// Bare {"trace":...} is a control request: flip the tenant's
		// store-wide tracing for every subsequent decision.
		t.Traces().SetEnabled(*req.Trace)
		enabled := t.Traces().Enabled()
		lw.write(response{Type: "ok", ID: req.ID, Tenant: echo, TraceEnabled: &enabled})
		return
	}
	if req.Mode != "" {
		m, err := parseMode(req.Mode)
		if err != nil {
			lw.write(response{Type: "error", ID: req.ID, Tenant: echo, Error: err.Error(), ErrorKind: "mode"})
			return
		}
		t.System().SetMode(m)
		lw.write(response{Type: "ok", ID: req.ID, Tenant: echo, Mode: m.String()})
		return
	}
	rec, kind, err := d.loadRecording(req, d.specs[t.ID()])
	if err != nil {
		lw.write(response{Type: "error", ID: req.ID, Tenant: echo, Error: err.Error(), ErrorKind: kind})
		return
	}
	ctx := context.Background()
	var cancel context.CancelFunc = func() {}
	if d.opts.Deadline > 0 {
		ctx, cancel = context.WithTimeout(ctx, d.opts.Deadline)
	}
	forceTrace := req.Trace != nil && *req.Trace
	if forceTrace {
		ctx = trace.NewContext(ctx, t.Traces().NewRecorder())
	}
	inflight.Add(1)
	_, err = t.Engine().Submit(ctx, serve.Request{
		ID:        req.ID,
		Recording: rec,
		Callback: func(res serve.Result) {
			defer inflight.Done()
			defer cancel()
			if res.Err != nil {
				resp := response{Type: "error", ID: res.ID, Tenant: echo, Error: res.Err.Error(), ErrorKind: errorKind(res.Err), TraceID: res.TraceID}
				if forceTrace {
					resp.Trace = res.Trace
				}
				// Fail-closed paths still carry a typed reject reason
				// (bad_input, panic, unhealthy) — surface it so clients
				// see the decision the error produced.
				if res.Decision.Reason != "" {
					resp.ReasonSlug = res.Decision.Reason.Slug()
				}
				lw.write(resp)
				return
			}
			dec := res.Decision
			resp := response{
				Type:        "decision",
				ID:          res.ID,
				Tenant:      echo,
				Accepted:    &dec.Accepted,
				Reason:      string(dec.Reason),
				ReasonSlug:  dec.Reason.Slug(),
				QueueWaitUS: res.QueueWait.Microseconds(),
				TotalUS:     res.Total.Microseconds(),
				TraceID:     res.TraceID,
			}
			if dec.LiveRan {
				resp.LiveScore = &dec.LiveScore
			}
			if dec.FacingRan {
				resp.FacingScore = &dec.FacingScore
			}
			if forceTrace {
				resp.Trace = res.Trace
			}
			lw.write(resp)
		},
	})
	if err != nil {
		// Submission rejected (backpressure or shutdown): the callback
		// will never fire.
		inflight.Done()
		cancel()
		lw.write(response{Type: "error", ID: req.ID, Tenant: echo, Error: err.Error(), ErrorKind: errorKind(err)})
	}
}

// handleFused serves a protocol-v4 multi-array decision: every array's
// capture is resolved like a single-array request, the tenant's engine
// decides each through its normal serving path, and the fused
// room-level outcome plus the per-array breakdown is written as one
// "fused" line. Pushes run synchronously — the per-array decisions ride
// the engine's blocking Decide path concurrently.
func (d *daemon) handleFused(req request, t *pool.Tenant, lw *lineWriter) {
	echo := d.echoTenant(t)
	spec := d.specs[t.ID()]
	inputs := make([]serve.ArrayInput, len(req.Arrays))
	for i, a := range req.Arrays {
		id := a.ID
		if id == "" {
			id = fmt.Sprintf("array-%d", i)
		}
		rec, kind, err := d.loadRecording(request{WAV: a.WAV, Condition: a.Condition}, spec)
		if err != nil {
			lw.write(response{Type: "error", ID: req.ID, Tenant: echo, Error: fmt.Sprintf("array %s: %v", id, err), ErrorKind: kind})
			return
		}
		inputs[i] = serve.ArrayInput{ArrayID: id, Recording: rec, Weight: a.Weight}
	}
	ctx := context.Background()
	var cancel context.CancelFunc = func() {}
	if d.opts.Deadline > 0 {
		ctx, cancel = context.WithTimeout(ctx, d.opts.Deadline)
	}
	defer cancel()
	room, reports, err := t.Engine().DecideFused(ctx, inputs, fusion.Config{})
	if err != nil {
		lw.write(response{Type: "error", ID: req.ID, Tenant: echo, Error: err.Error(), ErrorKind: errorKind(err)})
		return
	}
	resp := response{
		Type:          "fused",
		ID:            req.ID,
		Tenant:        echo,
		Accepted:      &room.Accepted,
		Reason:        string(room.Reason),
		ReasonSlug:    room.Reason.Slug(),
		BestArray:     room.BestArray,
		ArraysUsed:    room.ArraysUsed,
		ArraysDropped: room.ArraysDropped,
	}
	if room.LiveRan {
		resp.LiveScore = &room.FusedLive
	}
	if room.FacingRan {
		resp.FacingScore = &room.FusedFacing
	}
	resp.Arrays = make([]arrayResult, len(reports))
	for i := range reports {
		r := &reports[i]
		ar := arrayResult{ID: r.ArrayID}
		if r.Err != nil {
			ar.Error = r.Err.Error()
		} else {
			acc := r.Decision.Accepted
			ar.Accepted = &acc
			ar.ReasonSlug = r.Decision.Reason.Slug()
			if r.Decision.LiveRan {
				ls := r.Decision.LiveScore
				ar.LiveScore = &ls
			}
			if r.Decision.FacingRan {
				fs := r.Decision.FacingScore
				ar.FacingScore = &fs
			}
		}
		resp.Arrays[i] = ar
	}
	lw.write(resp)
}

// handleStream serves protocol-v2 frames and end_session requests.
// Pushes run synchronously: the early-exit cascade answers most chunks
// in microseconds, and a spotted candidate rides the engine's normal
// submission path (queue, breaker, tracing) before the response line is
// written.
func (d *daemon) handleStream(req request, t *pool.Tenant, lw *lineWriter) {
	echo := d.echoTenant(t)
	sid := req.Session
	if sid == "" {
		sid = defaultSessionID
	}
	if req.EndSession {
		ended, err := t.Engine().EndSession(sid)
		if err != nil {
			lw.write(response{Type: "error", ID: req.ID, Tenant: echo, Session: sid, Error: err.Error(), ErrorKind: errorKind(err)})
			return
		}
		lw.write(response{Type: "stream", ID: req.ID, Tenant: echo, Session: sid, Ended: &ended})
		return
	}

	ctx := context.Background()
	var cancel context.CancelFunc = func() {}
	if d.opts.Deadline > 0 {
		ctx, cancel = context.WithTimeout(ctx, d.opts.Deadline)
	}
	defer cancel()
	res, err := t.Engine().PushFrames(ctx, sid, req.Frames)
	if err != nil {
		lw.write(response{Type: "error", ID: req.ID, Tenant: echo, Session: sid, Error: err.Error(), ErrorKind: errorKind(err)})
		return
	}
	if res.Err != nil {
		// The chunk was spotted but the decision pipeline failed
		// (backpressure, breaker, pipeline error): surface it as a typed
		// error so clients can retry or back off.
		lw.write(response{Type: "error", ID: req.ID, Tenant: echo, Session: sid, Status: res.Status.String(), Error: res.Err.Error(), ErrorKind: errorKind(res.Err)})
		return
	}
	resp := response{Type: "stream", ID: req.ID, Tenant: echo, Session: sid, Status: res.Status.String()}
	switch res.Status {
	case stream.StatusNoWake, stream.StatusSpotted, stream.StatusDecided:
		score := res.SpotScore
		resp.SpotScore = &score
	}
	if spk := res.Speaker; spk != nil {
		resp.Speaker = &speakerEcho{ID: spk.ID, Utterances: spk.Utterances, MeanFacing: spk.MeanFacing}
	}
	if dec := res.Decision; dec != nil {
		resp.Accepted = &dec.Accepted
		resp.Reason = string(dec.Reason)
		resp.ReasonSlug = dec.Reason.Slug()
	}
	lw.write(resp)
}

// echoID returns a tenant id for response echoing on paths with no
// local *pool.Tenant (forwards, restores). Federated daemons always
// echo — tenant identity is what routing is about.
func (d *daemon) echoID(id string) string {
	if d.multiTenant || d.node != nil {
		return id
	}
	return ""
}

// handleModels serves the v5 model-lifecycle control verbs against the
// tenant's model registry: model_status (per-kind versions, lifecycle
// states, checksums, drift), promote (atomic hot-swap, no drain) and
// rollback (reactivate the previous version byte-for-byte). Like mode
// and health they act on node-local state and are never forwarded.
func (d *daemon) handleModels(req request, t *pool.Tenant, lw *lineWriter) {
	echo := d.echoTenant(t)
	reg := t.Models()
	if reg == nil {
		lw.write(response{
			Type:      "error",
			ID:        req.ID,
			Tenant:    echo,
			Error:     "tenant has no model registry (daemon started with -no-enroll?)",
			ErrorKind: "request",
		})
		return
	}
	switch {
	case req.ModelStatus:
		drift := reg.DriftState()
		lw.write(response{
			Type:   "models",
			ID:     req.ID,
			Tenant: echo,
			Models: reg.Status(),
			Drift:  &drift,
		})
	case req.Promote != nil:
		kind := headtalk.ModelKind(req.Promote.Kind)
		switch kind {
		case headtalk.KindOrientation, headtalk.KindLiveness, headtalk.KindArrayFingerprint:
		default:
			lw.write(response{Type: "error", ID: req.ID, Tenant: echo, Error: fmt.Sprintf("unknown model kind %q (want orientation|liveness|fingerprint)", req.Promote.Kind), ErrorKind: "request"})
			return
		}
		if err := reg.Promote(kind, req.Promote.Version); err != nil {
			lw.write(response{Type: "error", ID: req.ID, Tenant: echo, Error: err.Error(), ErrorKind: "request"})
			return
		}
		lw.write(response{Type: "ok", ID: req.ID, Tenant: echo, Kind: string(kind), Version: req.Promote.Version})
	case req.Rollback != "":
		kind := headtalk.ModelKind(req.Rollback)
		switch kind {
		case headtalk.KindOrientation, headtalk.KindLiveness, headtalk.KindArrayFingerprint:
		default:
			lw.write(response{Type: "error", ID: req.ID, Tenant: echo, Error: fmt.Sprintf("unknown model kind %q (want orientation|liveness|fingerprint)", req.Rollback), ErrorKind: "request"})
			return
		}
		restored, err := reg.Rollback(kind)
		if err != nil {
			lw.write(response{Type: "error", ID: req.ID, Tenant: echo, Error: err.Error(), ErrorKind: "request"})
			return
		}
		lw.write(response{Type: "ok", ID: req.ID, Tenant: echo, Kind: string(kind), Version: restored})
	}
}

// handleCluster serves the v3 federation control verbs: restore (this
// node), join and leave (membership).
func (d *daemon) handleCluster(req request, lw *lineWriter) {
	switch {
	case req.Restore != nil:
		ctx := context.Background()
		var cancel context.CancelFunc = func() {}
		if d.opts.Deadline > 0 {
			ctx, cancel = context.WithTimeout(ctx, d.opts.Deadline)
		}
		defer cancel()
		if err := d.restoreEnvelope(ctx, req.Restore); err != nil {
			lw.write(response{Type: "error", ID: req.ID, Tenant: d.echoID(req.Restore.TenantID), Error: err.Error(), ErrorKind: errorKind(err)})
			return
		}
		lw.write(response{Type: "ok", ID: req.ID, Tenant: d.echoID(req.Restore.TenantID)})
	case req.Join != nil:
		if d.node == nil {
			lw.write(response{Type: "error", ID: req.ID, Error: "this daemon is not part of a federation (start with -node-id)", ErrorKind: "request"})
			return
		}
		if err := d.node.Join(req.Join.Node, req.Join.Addr); err != nil {
			lw.write(response{Type: "error", ID: req.ID, Error: err.Error(), ErrorKind: "request"})
			return
		}
		lw.write(response{Type: "ok", ID: req.ID})
	case req.Leave != "":
		if d.node == nil {
			lw.write(response{Type: "error", ID: req.ID, Error: "this daemon is not part of a federation (start with -node-id)", ErrorKind: "request"})
			return
		}
		if err := d.node.Leave(req.Leave); err != nil {
			lw.write(response{Type: "error", ID: req.ID, Error: err.Error(), ErrorKind: "request"})
			return
		}
		lw.write(response{Type: "ok", ID: req.ID})
	}
}

// handleForward serves a request for a tenant this node does not host
// by forwarding it to the ring owner. Forwards run on their own
// goroutines — never on pool workers — so a slow or dead peer can only
// ever stall its own caller, not local serving capacity. Control verbs
// (mode, health, trace) are deliberately not forwarded: they act on
// node-local state, so clients must address the owning node directly.
func (d *daemon) handleForward(req request, lw *lineWriter, inflight *sync.WaitGroup) {
	tid := req.Tenant
	echo := d.echoID(tid)
	if req.Health || req.Mode != "" || req.ModelStatus || req.Promote != nil || req.Rollback != "" ||
		(req.Trace != nil && req.WAV == "" && req.Condition == nil) {
		lw.write(response{
			Type:      "error",
			ID:        req.ID,
			Tenant:    echo,
			Error:     fmt.Sprintf("tenant %q is owned by node %s; control requests are not forwarded", tid, d.node.Owner(tid)),
			ErrorKind: "request",
		})
		return
	}
	// The recording is resolved locally (WAV paths and synth conditions
	// are this node's resources) before the samples cross the wire.
	var rec *audio.Recording
	if !req.Snapshot && req.Frames == nil && !req.EndSession {
		var kind string
		var err error
		rec, kind, err = d.loadRecording(req, tenantSpec{})
		if err != nil {
			lw.write(response{Type: "error", ID: req.ID, Tenant: echo, Error: err.Error(), ErrorKind: kind})
			return
		}
	}
	inflight.Add(1)
	go func() {
		defer inflight.Done()
		ctx := context.Background()
		var cancel context.CancelFunc = func() {}
		if d.opts.Deadline > 0 {
			ctx, cancel = context.WithTimeout(ctx, d.opts.Deadline)
		}
		defer cancel()
		sid := req.Session
		if sid == "" {
			sid = defaultSessionID
		}
		switch {
		case req.Snapshot:
			env, _, err := d.node.Snapshot(ctx, tid)
			if err != nil {
				lw.write(response{Type: "error", ID: req.ID, Tenant: echo, Error: err.Error(), ErrorKind: errorKind(err), Forwarded: true})
				return
			}
			lw.write(response{Type: "snapshot", ID: req.ID, Tenant: echo, Envelope: env, Forwarded: true})
		case req.EndSession:
			ended, _, err := d.node.EndSession(ctx, tid, sid)
			if err != nil {
				lw.write(response{Type: "error", ID: req.ID, Tenant: echo, Session: sid, Error: err.Error(), ErrorKind: errorKind(err), Forwarded: true})
				return
			}
			lw.write(response{Type: "stream", ID: req.ID, Tenant: echo, Session: sid, Ended: &ended, Forwarded: true})
		case req.Frames != nil:
			res, _, err := d.node.PushFrames(ctx, tid, sid, req.Frames)
			if err != nil {
				lw.write(response{Type: "error", ID: req.ID, Tenant: echo, Session: sid, Error: err.Error(), ErrorKind: errorKind(err), Forwarded: true})
				return
			}
			resp := response{Type: "stream", ID: req.ID, Tenant: echo, Session: sid, Status: res.Status.String(), Forwarded: true}
			switch res.Status {
			case stream.StatusNoWake, stream.StatusSpotted, stream.StatusDecided:
				score := res.SpotScore
				resp.SpotScore = &score
			}
			if dec := res.Decision; dec != nil {
				resp.Accepted = &dec.Accepted
				resp.Reason = string(dec.Reason)
				resp.ReasonSlug = dec.Reason.Slug()
			}
			lw.write(resp)
		default:
			start := time.Now()
			dec, _, err := d.node.Decide(ctx, tid, rec)
			if err != nil {
				lw.write(response{Type: "error", ID: req.ID, Tenant: echo, Error: err.Error(), ErrorKind: errorKind(err), Forwarded: true})
				return
			}
			resp := response{
				Type:       "decision",
				ID:         req.ID,
				Tenant:     echo,
				Accepted:   &dec.Accepted,
				Reason:     string(dec.Reason),
				ReasonSlug: dec.Reason.Slug(),
				TotalUS:    time.Since(start).Microseconds(),
				Forwarded:  true,
			}
			if dec.LiveRan {
				resp.LiveScore = &dec.LiveScore
			}
			if dec.FacingRan {
				resp.FacingScore = &dec.FacingScore
			}
			lw.write(resp)
		}
	}()
}

// ServeStream serves NDJSON requests from r, writing responses to w,
// until EOF. It waits for in-flight decisions before returning.
func (d *daemon) ServeStream(r io.Reader, w io.Writer) error {
	lw := &lineWriter{w: bufio.NewWriter(w)}
	var inflight sync.WaitGroup

	stopMetrics := make(chan struct{})
	var tickerDone sync.WaitGroup
	if d.opts.MetricsEvery > 0 {
		tickerDone.Add(1)
		go func() {
			defer tickerDone.Done()
			t := time.NewTicker(d.opts.MetricsEvery)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					lw.write(metricsResponse(d.snapshot()))
				case <-stopMetrics:
					return
				}
			}
		}()
	}

	// A bufio.Scanner would die with ErrTooLong on the first oversized
	// line — one hostile request killing the whole connection (and, on
	// stdin, the daemon). readBoundedLine discards past-limit lines so
	// the stream reports them and keeps serving.
	br := bufio.NewReaderSize(r, 64*1024)
	var readErr error
	for {
		line, err := readBoundedLine(br, maxRequestLine)
		if err == io.EOF {
			break
		}
		if err == errLineTooLong {
			lw.write(response{
				Type:      "error",
				Error:     fmt.Sprintf("request line exceeds %d bytes; dropped", maxRequestLine),
				ErrorKind: "oversized",
			})
			continue
		}
		if err != nil {
			readErr = err
			break
		}
		if len(line) == 0 {
			continue
		}
		var req request
		if err := json.Unmarshal(line, &req); err != nil {
			lw.write(response{Type: "error", Error: fmt.Sprintf("bad request: %v", err), ErrorKind: "parse"})
			continue
		}
		d.handle(req, lw, &inflight)
	}
	inflight.Wait()
	close(stopMetrics)
	tickerDone.Wait()
	// A final summary so batch (stdin) runs always end with the tallies.
	if d.opts.MetricsEvery > 0 {
		lw.write(metricsResponse(d.snapshot()))
	}
	return readErr
}

// maxRequestLine bounds one NDJSON request line. Requests are paths,
// condition specs and control verbs — 4 MiB is already generous.
const maxRequestLine = 4 * 1024 * 1024

// errLineTooLong reports a line that exceeded maxRequestLine; the
// whole line has been consumed from the reader when it is returned.
var errLineTooLong = errors.New("request line too long")

// readBoundedLine reads one newline-terminated line of at most max
// bytes (newline excluded, trailing \r trimmed). A longer line is
// consumed to its end and reported as errLineTooLong, leaving the
// reader positioned at the next line. io.EOF is returned only with no
// pending bytes.
func readBoundedLine(br *bufio.Reader, max int) ([]byte, error) {
	var (
		buf       []byte
		oversized bool
	)
	for {
		frag, err := br.ReadSlice('\n')
		if !oversized {
			if len(buf)+len(frag) > max+1 { // +1: the newline itself
				oversized = true
				buf = nil
			} else {
				buf = append(buf, frag...)
			}
		}
		switch err {
		case bufio.ErrBufferFull:
			continue
		case nil, io.EOF:
			if oversized {
				return nil, errLineTooLong
			}
			if err == io.EOF && len(buf) == 0 {
				return nil, io.EOF
			}
			buf = bytes.TrimSuffix(buf, []byte("\n"))
			buf = bytes.TrimSuffix(buf, []byte("\r"))
			return buf, nil
		default:
			return nil, err
		}
	}
}

// debugMux builds the opt-in debug HTTP handler: pprof, Prometheus
// metrics, recent/slow traces and a health probe. It is deliberately
// not mounted on the default mux — the daemon exposes it only when
// -debug-addr is set.
func (d *daemon) debugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if d.multiTenant {
			// One scrape, one TYPE header per metric, a tenant label on
			// every sample.
			_ = metrics.WritePrometheusGrouped(w, "tenant", d.pool.TenantSnapshots())
			return
		}
		_ = d.snapshot().WritePrometheus(w)
	})
	// traceStore resolves the optional ?tenant= selector, answering 404
	// for unknown tenants.
	traceStore := func(w http.ResponseWriter, r *http.Request) *trace.Store {
		t, err := d.tenant(r.URL.Query().Get("tenant"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return nil
		}
		return t.Traces()
	}
	writeTraces := func(w http.ResponseWriter, st *trace.Store, traces []*trace.Trace) {
		droppedRecent, droppedSlow := st.Dropped()
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{
			"enabled":        st.Enabled(),
			"dropped_recent": droppedRecent,
			"dropped_slow":   droppedSlow,
			"traces":         traces,
		})
	}
	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, r *http.Request) {
		if st := traceStore(w, r); st != nil {
			writeTraces(w, st, st.Recent(parseLimit(r)))
		}
	})
	mux.HandleFunc("/debug/traces/slow", func(w http.ResponseWriter, r *http.Request) {
		if st := traceStore(w, r); st != nil {
			writeTraces(w, st, st.Slow(parseLimit(r)))
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		ph := d.pool.HealthSnapshot()
		w.Header().Set("Content-Type", "application/json")
		if !ph.Healthy {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		tenants := make(map[string]*healthInfo, ph.TenantCount)
		for id := range ph.Tenants {
			if t, ok := d.pool.Tenant(id); ok {
				tenants[id] = d.tenantHealth(t)
			}
		}
		_ = json.NewEncoder(w).Encode(map[string]any{
			"healthy": ph.Healthy,
			"tenants": tenants,
		})
	})
	return mux
}

// parseLimit reads an optional ?limit=N query (0: all).
func parseLimit(r *http.Request) int {
	var n int
	fmt.Sscanf(r.URL.Query().Get("limit"), "%d", &n)
	if n < 0 {
		n = 0
	}
	return n
}

// ServeListener accepts TCP connections until the listener closes
// (or Shutdown closes it), one NDJSON stream per connection.
func (d *daemon) ServeListener(ln net.Listener) {
	d.registerListener(ln)
	for {
		conn, err := ln.Accept()
		if err != nil {
			if !d.draining.Load() {
				log.Printf("headtalkd: accept: %v", err)
			}
			return
		}
		go func() {
			defer conn.Close()
			if err := d.ServeStream(conn, conn); err != nil {
				log.Printf("headtalkd: %s: %v", conn.RemoteAddr(), err)
			}
		}()
	}
}
