package main

import (
	"context"
	"math/rand/v2"
	"strings"
	"testing"

	"headtalk"
	"headtalk/internal/audio"
	"headtalk/internal/features"
	"headtalk/internal/orientation"
	"headtalk/internal/pool"
)

// cheapRegistry trains a tiny orientation model on synthetic coherent
// vs incoherent 4-channel noise and seeds a registry with two versions
// (v1 installed, v2 promoted over it), so promote/rollback verbs have
// real history to move across.
func cheapRegistry(t *testing.T) *headtalk.Registry {
	t.Helper()
	rec := func(facing bool, seed uint64) *audio.Recording {
		rng := rand.New(rand.NewPCG(seed, 99))
		n := 24000
		r := audio.NewRecording(48000, 4, n)
		if facing {
			src := make([]float64, n+8)
			for i := range src {
				src[i] = rng.NormFloat64()
			}
			for c := 0; c < 4; c++ {
				copy(r.Channels[c], src[c:c+n])
				for i := range r.Channels[c] {
					r.Channels[c][i] += 0.1 * rng.NormFloat64()
				}
			}
		} else {
			for c := 0; c < 4; c++ {
				for i := range r.Channels[c] {
					r.Channels[c][i] = rng.NormFloat64()
				}
			}
		}
		return r
	}
	featCfg := features.DefaultConfig(13, 48000)
	train := func(seedBase uint64) *orientation.Model {
		var x [][]float64
		var y []int
		for i := 0; i < 14; i++ {
			facing := i%2 == 1
			f, err := features.Extract(rec(facing, seedBase+uint64(i)), featCfg)
			if err != nil {
				t.Fatal(err)
			}
			x = append(x, f)
			label := orientation.LabelNonFacing
			if facing {
				label = orientation.LabelFacing
			}
			y = append(y, label)
		}
		m, err := orientation.Train(x, y, orientation.ModelConfig{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	reg, err := (&headtalk.Enrollment{Orientation: train(0)}).Registry(headtalk.RegistryConfig{})
	if err != nil {
		t.Fatal(err)
	}
	v2, err := reg.AddModel(headtalk.KindOrientation, train(100))
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Promote(headtalk.KindOrientation, v2); err != nil {
		t.Fatal(err)
	}
	return reg
}

// withRegistry swaps the daemon's default tenant for one carrying a
// versioned model registry (test daemons skip enrollment, so they
// normally have none).
func withRegistry(t *testing.T, d *daemon, reg *headtalk.Registry) {
	t.Helper()
	tn, ok := d.pool.Tenant(defaultTenantID)
	if !ok {
		t.Fatal("default tenant missing")
	}
	if _, err := d.pool.ReplaceTenant(context.Background(), pool.TenantConfig{
		ID:        defaultTenantID,
		System:    tn.System(),
		Models:    reg,
		Workers:   2,
		QueueSize: 16,
	}); err != nil {
		t.Fatal(err)
	}
}

// TestModelVerbsNoRegistry: the v5 verbs on a registry-less tenant are
// typed request errors, not crashes.
func TestModelVerbsNoRegistry(t *testing.T) {
	d := testDaemon(t, "normal")
	resps := runStream(t, d,
		`{"v":5,"id":"st","model_status":true}`+"\n"+
			`{"v":5,"id":"pr","promote":{"kind":"orientation","version":1}}`+"\n"+
			`{"v":5,"id":"rb","rollback":"orientation"}`+"\n")
	m := byID(resps)
	for _, id := range []string{"st", "pr", "rb"} {
		r := m[id]
		if r.Type != "error" || r.ErrorKind != "request" {
			t.Fatalf("%s on registry-less tenant = %+v, want request error", id, r)
		}
	}
}

// TestModelVerbsLifecycle drives the full v5 control surface against a
// real registry: status shows the promoted version, rollback restores
// the prior one, promote moves forward again, and bad kinds/versions
// are typed errors.
func TestModelVerbsLifecycle(t *testing.T) {
	d := testDaemon(t, "normal")
	withRegistry(t, d, cheapRegistry(t))

	resps := runStream(t, d,
		`{"v":5,"id":"st1","model_status":true}`+"\n"+
			`{"v":5,"id":"rb1","rollback":"orientation"}`+"\n"+
			`{"v":5,"id":"st2","model_status":true}`+"\n"+
			`{"v":5,"id":"pr1","promote":{"kind":"orientation","version":2}}`+"\n"+
			`{"v":5,"id":"badkind","promote":{"kind":"telepathy","version":1}}`+"\n"+
			`{"v":5,"id":"badver","promote":{"kind":"orientation","version":42}}`+"\n"+
			`{"v":5,"id":"rbdry","rollback":"liveness"}`+"\n")
	m := byID(resps)

	st1 := m["st1"]
	if st1.Type != "models" || st1.Drift == nil {
		t.Fatalf("model_status = %+v", st1)
	}
	var orient *headtalk.ModelKindStatus
	for i := range st1.Models {
		if string(st1.Models[i].Kind) == "orientation" {
			orient = &st1.Models[i]
		}
	}
	if orient == nil || orient.Active != 2 || orient.Previous != 1 {
		t.Fatalf("orientation status %+v, want active=2 previous=1", orient)
	}
	if len(orient.Versions) < 2 {
		t.Fatalf("status lists %d versions, want both", len(orient.Versions))
	}

	// Rollback restores v1 and echoes the restored number.
	if r := m["rb1"]; r.Type != "ok" || r.Kind != "orientation" || r.Version != 1 {
		t.Fatalf("rollback = %+v, want ok kind=orientation version=1", r)
	}
	st2 := m["st2"]
	for i := range st2.Models {
		if string(st2.Models[i].Kind) == "orientation" && st2.Models[i].Active != 1 {
			t.Fatalf("post-rollback active %d, want 1", st2.Models[i].Active)
		}
	}

	// Promote moves forward to v2 again.
	if r := m["pr1"]; r.Type != "ok" || r.Kind != "orientation" || r.Version != 2 {
		t.Fatalf("promote = %+v", r)
	}

	// Typed failures: unknown kind, unknown version, rollback with no
	// history for that kind.
	for _, id := range []string{"badkind", "badver", "rbdry"} {
		if r := m[id]; r.Type != "error" || r.ErrorKind != "request" {
			t.Fatalf("%s = %+v, want request error", id, r)
		}
	}
}

// TestModelVerbsNotForwardable: the model lifecycle verbs act on the
// node that received them; addressing a peer-owned tenant is a typed
// rejection naming the owner, never a silent forward.
func TestModelVerbsNotForwardable(t *testing.T) {
	a, _, _, tenantB := newFederation(t)
	resps := runStream(t, a,
		`{"v":5,"id":"st","tenant":"`+tenantB+`","model_status":true}`+"\n"+
			`{"v":5,"id":"rb","tenant":"`+tenantB+`","rollback":"orientation"}`+"\n")
	m := byID(resps)
	for _, id := range []string{"st", "rb"} {
		r := m[id]
		if r.Type != "error" || r.ErrorKind != "request" || !strings.Contains(r.Error, "not forwarded") {
			t.Fatalf("%s against peer-owned tenant = %+v, want node-local rejection", id, r)
		}
	}
}
