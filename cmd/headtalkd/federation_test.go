package main

// End-to-end federation tests: two real daemons joined over loopback
// TCP peer listeners, exercising ownership-filtered hosting, forwarded
// decisions, the v3 snapshot/restore migration flow, membership verbs
// and graceful shutdown with dead-peer error surfacing.

import (
	"context"
	"net"
	"strconv"
	"strings"
	"testing"
	"time"

	"headtalk/internal/pool"
)

// findRingTenant returns a tenant id the shared ring assigns to owner.
// Daemons build their ring with the cluster default of 64 virtual
// nodes, so probing an identically-shaped ring here predicts their
// ownership split exactly.
func findRingTenant(t *testing.T, nodes []string, owner string) string {
	t.Helper()
	ring := pool.BuildRing(nodes, 64)
	for i := 0; i < 100000; i++ {
		id := "tenant-" + strconv.Itoa(i)
		if ring.Route(id) == owner {
			return id
		}
	}
	t.Fatalf("no tenant id hashes to node %q", owner)
	return ""
}

// newFederation starts daemons "a" and "b" peered with each other, both
// configured with the same tenant list; the ring decides who hosts
// what. Returns the daemons plus one tenant owned by each.
func newFederation(t *testing.T) (a, b *daemon, tenantA, tenantB string) {
	t.Helper()
	nodes := []string{"a", "b"}
	tenantA = findRingTenant(t, nodes, "a")
	tenantB = findRingTenant(t, nodes, "b")

	lnA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lnB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	specs := []tenantSpec{{ID: tenantA}, {ID: tenantB}}
	build := func(id string, peers map[string]string) *daemon {
		d, err := newDaemon(daemonOptions{
			Workers:      2,
			QueueSize:    16,
			Mode:         "normal",
			Tenants:      specs,
			MetricsEvery: time.Hour,
			Enroll:       false,
			Seed:         7,
			NodeID:       id,
			Peers:        peers,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = d.Close() })
		return d
	}
	a = build("a", map[string]string{"b": lnB.Addr().String()})
	b = build("b", map[string]string{"a": lnA.Addr().String()})
	a.node.ServeLoop(lnA)
	b.node.ServeLoop(lnB)
	return a, b, tenantA, tenantB
}

// TestFederationOwnershipFilter: each daemon enrolls and hosts only the
// tenants the ring assigns to it, never its peer's.
func TestFederationOwnershipFilter(t *testing.T) {
	a, b, tenantA, tenantB := newFederation(t)
	if _, ok := a.pool.Tenant(tenantA); !ok {
		t.Fatalf("daemon a does not host its own tenant %q", tenantA)
	}
	if _, ok := a.pool.Tenant(tenantB); ok {
		t.Fatalf("daemon a hosts %q, which the ring owns to b", tenantB)
	}
	if _, ok := b.pool.Tenant(tenantB); !ok {
		t.Fatalf("daemon b does not host its own tenant %q", tenantB)
	}
	if _, ok := b.pool.Tenant(tenantA); ok {
		t.Fatalf("daemon b hosts %q, which the ring owns to a", tenantA)
	}
}

// TestFederationForwardedDecision: a decision for a peer-owned tenant
// is served by forwarding and marked forwarded:true; locally-owned
// tenants are served in place. Control verbs are never forwarded.
func TestFederationForwardedDecision(t *testing.T) {
	a, _, tenantA, tenantB := newFederation(t)
	resps := runStream(t, a,
		`{"id":"local","tenant":"`+tenantA+`","condition":{}}`+"\n"+
			`{"id":"remote","tenant":"`+tenantB+`","condition":{}}`+"\n"+
			`{"id":"ctl","tenant":"`+tenantB+`","health":true}`+"\n")
	m := byID(resps)
	if r := m["local"]; r.Type != "decision" || r.Forwarded || r.Tenant != tenantA || r.Accepted == nil || !*r.Accepted {
		t.Fatalf("local decision %+v", r)
	}
	if r := m["remote"]; r.Type != "decision" || !r.Forwarded || r.Tenant != tenantB || r.Accepted == nil || !*r.Accepted {
		t.Fatalf("forwarded decision %+v", r)
	}
	r := m["ctl"]
	if r.Type != "error" || r.ErrorKind != "request" || !strings.Contains(r.Error, "owned by node b") {
		t.Fatalf("forwarded control verb %+v, want a node-local rejection naming the owner", r)
	}
}

// TestFederationSnapshotRestoreMigration: snapshot a peer-owned tenant
// through the forwarding path, restore it locally, and watch the same
// tenant id flip from forwarded to locally-served.
func TestFederationSnapshotRestoreMigration(t *testing.T) {
	a, _, _, tenantB := newFederation(t)
	m := byID(runStream(t, a, `{"v":3,"id":"snap","tenant":"`+tenantB+`","snapshot":true}`+"\n"))
	r := m["snap"]
	if r.Type != "snapshot" || !r.Forwarded || r.Envelope == nil {
		t.Fatalf("forwarded snapshot %+v", r)
	}
	env := r.Envelope
	if env.TenantID != tenantB {
		t.Fatalf("envelope tenant %q, want %q", env.TenantID, tenantB)
	}
	if err := env.Verify(); err != nil {
		t.Fatalf("forwarded envelope fails verification: %v", err)
	}

	m = byID(runStream(t, a,
		mustJSON(t, request{V: v(3), ID: "restore", Restore: env})+"\n"+
			`{"id":"after","tenant":"`+tenantB+`","condition":{}}`+"\n"))
	if r := m["restore"]; r.Type != "ok" || r.Tenant != tenantB {
		t.Fatalf("restore response %+v", r)
	}
	if r := m["after"]; r.Type != "decision" || r.Forwarded || r.Tenant != tenantB || r.Accepted == nil || !*r.Accepted {
		t.Fatalf("post-restore decision %+v, want locally served", r)
	}
}

// TestFederationJoinLeaveVerbs: v3 membership verbs work on a federated
// daemon and are rejected on a standalone one; v2 requests may not use
// them at all.
func TestFederationJoinLeaveVerbs(t *testing.T) {
	a, _, _, _ := newFederation(t)
	m := byID(runStream(t, a,
		`{"v":3,"id":"j","join":{"node":"c","addr":"127.0.0.1:1"}}`+"\n"+
			`{"v":3,"id":"l","leave":"c"}`+"\n"+
			`{"v":2,"id":"old","leave":"b"}`+"\n"))
	if r := m["j"]; r.Type != "ok" {
		t.Fatalf("join response %+v", r)
	}
	if r := m["l"]; r.Type != "ok" {
		t.Fatalf("leave response %+v", r)
	}
	if r := m["old"]; r.Type != "error" || r.ErrorKind != "unsupported_version" {
		t.Fatalf("v2 leave response %+v, want the v3 gate", r)
	}

	standalone := testDaemon(t, "normal")
	m = byID(runStream(t, standalone, `{"v":3,"id":"j","join":{"node":"c","addr":"127.0.0.1:1"}}`+"\n"))
	if r := m["j"]; r.Type != "error" || r.ErrorKind != "request" || !strings.Contains(r.Error, "-node-id") {
		t.Fatalf("standalone join response %+v", r)
	}
}

// TestFederationDeadPeerSurfacesTyped: once a peer shuts down, requests
// for its tenants fail with error_kind peer_unavailable instead of
// hanging — and the surviving daemon's local tenants keep serving.
func TestFederationDeadPeerSurfacesTyped(t *testing.T) {
	a, b, tenantA, tenantB := newFederation(t)
	if err := b.Shutdown(context.Background()); err != nil {
		t.Fatalf("peer shutdown: %v", err)
	}
	resps := runStream(t, a,
		`{"id":"dead","tenant":"`+tenantB+`","condition":{}}`+"\n"+
			`{"id":"alive","tenant":"`+tenantA+`","condition":{}}`+"\n")
	m := byID(resps)
	r := m["dead"]
	if r.Type != "error" || r.ErrorKind != "peer_unavailable" || !r.Forwarded {
		t.Fatalf("dead-peer response %+v, want forwarded peer_unavailable error", r)
	}
	if r := m["alive"]; r.Type != "decision" || r.Accepted == nil || !*r.Accepted {
		t.Fatalf("local decision after peer death %+v", r)
	}
}

// TestGracefulShutdown: Shutdown stops the TCP listener, drains the
// pool within the ctx bound, and is idempotent.
func TestGracefulShutdown(t *testing.T) {
	d := testDaemon(t, "normal")
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go d.ServeListener(ln)

	// The listener serves before shutdown...
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := d.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// ...and refuses connections after.
	if conn, err := net.DialTimeout("tcp", ln.Addr().String(), 200*time.Millisecond); err == nil {
		conn.Close()
		t.Fatal("listener still accepting after Shutdown")
	}
	// Idempotent: a second shutdown (and Close) are no-ops.
	if err := d.Shutdown(context.Background()); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("close after shutdown: %v", err)
	}
	// Drained pool rejects late work with a typed closed error.
	if _, err := d.tenant(""); err == nil {
		t.Fatal("default tenant still resolvable after drain")
	} else if !strings.Contains(err.Error(), "unknown tenant") {
		// Drain removes tenants; resolution fails as unknown.
		t.Fatalf("post-drain tenant error %v", err)
	}
}
