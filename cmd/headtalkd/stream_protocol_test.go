package main

import (
	"encoding/json"
	"math/rand/v2"
	"strings"
	"testing"
	"time"

	"headtalk/internal/speech"
)

func v(n int) *int { return &n }

// mustJSON marshals one request line.
func mustJSON(t *testing.T, req request) string {
	t.Helper()
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// wakeChunks synthesizes the wake word at 48 kHz with leading/trailing
// silence, replicates it across channels and slices it into 100 ms
// frames chunks.
func wakeChunks(t *testing.T, channels int) [][][]float64 {
	t.Helper()
	rng := rand.New(rand.NewPCG(42, 0x5b07734))
	buf := speech.Synthesize(speech.WordComputer, speech.RandomVoice(rng), 48000, rng)
	pad := make([]float64, 9600)
	mono := append(append(append([]float64(nil), pad...), buf.Samples...), pad...)
	const chunk = 4800
	var chunks [][][]float64
	for start := 0; start < len(mono); start += chunk {
		end := start + chunk
		if end > len(mono) {
			end = len(mono)
		}
		frame := make([][]float64, channels)
		for c := range frame {
			frame[c] = mono[start:end]
		}
		chunks = append(chunks, frame)
	}
	return chunks
}

// TestStreamProtocolVersionGate: frames/end_session need v>=2, unknown
// versions are rejected outright, and v2 still accepts the classic
// request shapes.
func TestStreamProtocolVersionGate(t *testing.T) {
	d := testDaemon(t, "normal")
	silent := [][]float64{make([]float64, 480), make([]float64, 480), make([]float64, 480), make([]float64, 480)}
	resps := runStream(t, d,
		mustJSON(t, request{ID: "f-nov", Frames: silent})+"\n"+
			mustJSON(t, request{V: v(1), ID: "f-v1", Frames: silent})+"\n"+
			mustJSON(t, request{V: v(1), ID: "e-v1", EndSession: true})+"\n"+
			`{"v":3,"id":"a-v3","arrays":[{"condition":{}}]}`+"\n"+
			`{"v":6,"id":"v6","condition":{}}`+"\n"+
			`{"v":4,"id":"m-v4","model_status":true}`+"\n"+
			`{"v":5,"id":"ok5","condition":{}}`+"\n"+
			`{"v":4,"id":"ok4","condition":{}}`+"\n"+
			`{"v":3,"id":"ok3","condition":{}}`+"\n"+
			`{"v":2,"id":"ok2","condition":{}}`+"\n"+
			`{"v":1,"id":"ok1","condition":{}}`+"\n")
	m := byID(resps)
	for _, id := range []string{"f-nov", "f-v1", "e-v1", "a-v3", "v6", "m-v4"} {
		r := m[id]
		if r.Type != "error" || r.ErrorKind != "unsupported_version" {
			t.Fatalf("response %q = %+v, want unsupported_version error", id, r)
		}
	}
	for _, id := range []string{"ok5", "ok4", "ok3", "ok2", "ok1"} {
		r := m[id]
		if r.Type != "decision" || r.Accepted == nil || !*r.Accepted {
			t.Fatalf("response %q = %+v, want accepted decision", id, r)
		}
	}
}

// TestStreamFramesEndToEnd drives a chunked wake-word feed through the
// NDJSON v2 protocol: most chunks exit the cascade early, exactly one
// reaches the decision pipeline, end_session tears a session down, and
// the final metrics line carries the session gauge.
func TestStreamFramesEndToEnd(t *testing.T) {
	d := testDaemon(t, "normal")
	var b strings.Builder
	chunks := wakeChunks(t, 4)
	for i, frame := range chunks {
		b.WriteString(mustJSON(t, request{V: v(2), ID: "p", Session: "kitchen", Frames: frame}))
		b.WriteByte('\n')
		_ = i
	}
	// A second, throwaway session proves end_session releases state.
	b.WriteString(mustJSON(t, request{V: v(2), ID: "s2", Session: "scratch", Frames: chunks[0]}))
	b.WriteByte('\n')
	b.WriteString(mustJSON(t, request{V: v(2), ID: "end", Session: "scratch", EndSession: true}))
	b.WriteByte('\n')

	resps := runStream(t, d, b.String())
	statuses := map[string]int{}
	var decided *response
	for i := range resps {
		r := resps[i]
		if r.Type == "error" {
			t.Fatalf("error line: %+v", r)
		}
		if r.Session == "kitchen" {
			statuses[r.Status]++
			if r.Status == "decided" && decided == nil {
				decided = &resps[i]
			}
		}
	}
	if decided == nil {
		t.Fatalf("no chunk decided; statuses %v", statuses)
	}
	if decided.Accepted == nil || !*decided.Accepted || decided.ReasonSlug != "normal_mode" {
		t.Fatalf("streamed decision %+v", decided)
	}
	if decided.SpotScore == nil || *decided.SpotScore <= 0 {
		t.Fatalf("decided line without spot score: %+v", decided)
	}
	// The candidate was attributed to a tracked speaker and the
	// attribution rode back on the decided line.
	if decided.Speaker == nil || decided.Speaker.ID == "" || decided.Speaker.Utterances < 1 {
		t.Fatalf("decided line without speaker attribution: %+v", decided)
	}
	if statuses["decided"] != 1 {
		t.Fatalf("decided %d times, want 1 (statuses %v)", statuses["decided"], statuses)
	}
	if statuses["silent"]+statuses["no_wake"]+statuses["buffered"] == 0 {
		t.Fatalf("no early exits: %v", statuses)
	}
	// end_session acknowledged.
	ended := byID(resps)["end"]
	if ended.Type != "stream" || ended.Ended == nil || !*ended.Ended {
		t.Fatalf("end_session response %+v", ended)
	}

	// The final metrics line carries the session gauge (single-tenant:
	// flat names) and the acceptance invariant: the whole feed produced
	// exactly one engine submission.
	last := resps[len(resps)-1]
	if last.Type != "metrics" {
		t.Fatalf("last line type %q, want metrics", last.Type)
	}
	if got := last.Gauges["stream.sessions.active"]; got != 1 {
		t.Fatalf("stream.sessions.active=%d, want 1 (kitchen open, scratch ended)", got)
	}
	if got := last.Counters["serve.submitted.total"]; got != 1 {
		t.Fatalf("serve.submitted.total=%d, want 1 (early exits must skip the pipeline)", got)
	}
	if got := last.Counters["stream.candidates"]; got != 1 {
		t.Fatalf("stream.candidates=%d, want 1", got)
	}
	if got := last.Counters["stream.speakers.created"]; got != 1 {
		t.Fatalf("stream.speakers.created=%d, want 1 (one candidate, one track)", got)
	}
}

// TestStreamBadFrames: a chunk with the wrong channel count is a typed
// bad_input error and the stream keeps serving.
func TestStreamBadFrames(t *testing.T) {
	d := testDaemon(t, "normal")
	ragged := [][]float64{make([]float64, 480), make([]float64, 100)}
	resps := runStream(t, d,
		mustJSON(t, request{V: v(2), ID: "bad", Session: "s", Frames: ragged})+"\n"+
			`{"id":"after","condition":{}}`+"\n")
	m := byID(resps)
	if r := m["bad"]; r.Type != "error" || r.ErrorKind != "bad_input" {
		t.Fatalf("ragged frames response %+v, want bad_input error", r)
	}
	if r := m["after"]; r.Type != "decision" || r.Accepted == nil || !*r.Accepted {
		t.Fatalf("request after bad frames %+v, want decision", r)
	}
}

// TestStreamMultiTenantSessionGauges: each tenant's sessions are scoped
// and surface under that tenant's metric prefix in the merged summary.
func TestStreamMultiTenantSessionGauges(t *testing.T) {
	d, err := newDaemon(daemonOptions{
		Workers:      2,
		QueueSize:    16,
		Mode:         "normal",
		Tenants:      []tenantSpec{{ID: "a"}, {ID: "b"}},
		MetricsEvery: time.Hour,
		Enroll:       false,
		Seed:         7,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = d.Close() })

	silent := [][]float64{make([]float64, 480), make([]float64, 480), make([]float64, 480), make([]float64, 480)}
	resps := runStream(t, d,
		mustJSON(t, request{V: v(2), ID: "pa", Tenant: "a", Session: "room", Frames: silent})+"\n"+
			mustJSON(t, request{V: v(2), ID: "pb", Tenant: "b", Session: "room", Frames: silent})+"\n")
	m := byID(resps)
	if r := m["pa"]; r.Type != "stream" || r.Tenant != "a" {
		t.Fatalf("tenant a push %+v", r)
	}
	if r := m["pb"]; r.Type != "stream" || r.Tenant != "b" {
		t.Fatalf("tenant b push %+v", r)
	}
	last := resps[len(resps)-1]
	if last.Type != "metrics" {
		t.Fatalf("last line type %q, want metrics", last.Type)
	}
	for _, id := range []string{"a", "b"} {
		if got := last.Gauges["tenant."+id+".stream.sessions.active"]; got != 1 {
			t.Fatalf("tenant.%s.stream.sessions.active=%d, want 1 (gauges %v)", id, got, last.Gauges)
		}
	}
}
