package main

// Tests for the multi-tenant daemon surface: the -tenants spec, tenant
// routing on NDJSON requests, protocol versioning, per-tenant controls
// and the tenant-labeled debug endpoints.

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func testMultiDaemon(t *testing.T, mode string) *daemon {
	t.Helper()
	d, err := newDaemon(daemonOptions{
		Workers:      2,
		QueueSize:    16,
		Mode:         mode,
		Tenants:      []tenantSpec{{ID: "lab", Device: "D1", Room: "lab"}, {ID: "home", Device: "D3", Room: "home"}},
		MetricsEvery: time.Hour,
		Enroll:       false,
		Seed:         7,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = d.Close() })
	return d
}

func TestParseTenantSpecs(t *testing.T) {
	specs, err := parseTenantSpecs("lab:D1@lab, home:D3@home ,plain")
	if err != nil {
		t.Fatal(err)
	}
	want := []tenantSpec{{"lab", "D1", "lab"}, {"home", "D3", "home"}, {"plain", "", ""}}
	if len(specs) != len(want) {
		t.Fatalf("specs %+v", specs)
	}
	for i := range want {
		if specs[i] != want[i] {
			t.Fatalf("spec[%d] = %+v, want %+v", i, specs[i], want[i])
		}
	}
	if got, err := parseTenantSpecs(""); err != nil || got != nil {
		t.Fatalf("empty flag = %+v, %v", got, err)
	}
	for _, bad := range []string{"a,a", ":D1", "x:D9", "x:D1@attic"} {
		if _, err := parseTenantSpecs(bad); err == nil {
			t.Fatalf("spec %q should fail", bad)
		}
	}
}

func TestTenantRoutingAndEcho(t *testing.T) {
	d := testMultiDaemon(t, "normal")
	resps := runStream(t, d,
		`{"id":"1","tenant":"lab","condition":{}}`+"\n"+
			`{"id":"2","tenant":"home","condition":{}}`+"\n"+
			`{"id":"3","condition":{}}`+"\n"+ // no tenant: default (first spec)
			`{"id":"4","tenant":"ghost","condition":{}}`+"\n")
	m := byID(resps)
	if r := m["1"]; r.Type != "decision" || r.Tenant != "lab" || r.Accepted == nil || !*r.Accepted {
		t.Fatalf("lab response %+v", r)
	}
	if r := m["2"]; r.Type != "decision" || r.Tenant != "home" {
		t.Fatalf("home response %+v", r)
	}
	if r := m["3"]; r.Type != "decision" || r.Tenant != "lab" {
		t.Fatalf("default-tenant response %+v, want routed to first spec", r)
	}
	if r := m["4"]; r.Type != "error" || r.ErrorKind != "unknown_tenant" {
		t.Fatalf("unknown-tenant response %+v", r)
	}
}

func TestProtocolVersionGate(t *testing.T) {
	d := testDaemon(t, "normal")
	resps := runStream(t, d,
		`{"v":1,"id":"ok","condition":{}}`+"\n"+
			`{"v":2,"id":"ok2","condition":{}}`+"\n"+
			`{"v":3,"id":"ok3","condition":{}}`+"\n"+
			`{"v":4,"id":"ok4","condition":{}}`+"\n"+
			`{"v":5,"id":"ok5","condition":{}}`+"\n"+
			`{"v":6,"id":"future","condition":{}}`+"\n"+
			`{"v":0,"id":"zero","health":true}`+"\n")
	m := byID(resps)
	for _, id := range []string{"ok", "ok2", "ok3", "ok4", "ok5"} {
		if r := m[id]; r.Type != "decision" || r.Accepted == nil || !*r.Accepted {
			t.Fatalf("%s response %+v", id, r)
		}
	}
	for _, id := range []string{"future", "zero"} {
		r := m[id]
		if r.Type != "error" || r.ErrorKind != "unsupported_version" {
			t.Fatalf("%s response %+v, want unsupported_version error", id, r)
		}
		if !strings.Contains(r.Error, "supported: 1..5") {
			t.Fatalf("%s error message %q should name the supported versions", id, r.Error)
		}
	}
}

// TestPerTenantModeIsolation: a mode control on one tenant must not
// change another tenant's decisions.
func TestPerTenantModeIsolation(t *testing.T) {
	d := testMultiDaemon(t, "normal")
	resps := runStream(t, d,
		`{"id":"m","tenant":"lab","mode":"mute"}`+"\n"+
			`{"id":"l","tenant":"lab","condition":{}}`+"\n"+
			`{"id":"h","tenant":"home","condition":{}}`+"\n")
	m := byID(resps)
	if r := m["m"]; r.Type != "ok" || r.Mode != "mute" || r.Tenant != "lab" {
		t.Fatalf("mode control response %+v", r)
	}
	if r := m["l"]; r.Accepted == nil || *r.Accepted || r.ReasonSlug != "muted" {
		t.Fatalf("muted tenant decision %+v", r)
	}
	if r := m["h"]; r.Accepted == nil || !*r.Accepted {
		t.Fatalf("unmuted tenant decision %+v — lab's mute leaked into home", r)
	}
}

// TestPerTenantHealthAndMetricsLine: health controls answer for the
// named tenant, and the stream's metrics summary carries tenant.<id>.
// prefixes in multi-tenant mode.
func TestPerTenantHealthAndMetricsLine(t *testing.T) {
	d := testMultiDaemon(t, "normal")
	resps := runStream(t, d,
		`{"id":"1","tenant":"lab","condition":{}}`+"\n"+
			`{"id":"2","tenant":"lab","condition":{}}`+"\n"+
			`{"id":"3","tenant":"home","condition":{}}`+"\n"+
			`{"id":"hh","tenant":"home","health":true}`+"\n")
	m := byID(resps)
	r := m["hh"]
	if r.Type != "health" || r.Health == nil || r.Health.Tenant != "home" {
		t.Fatalf("health response %+v", r)
	}
	// Decision responses are asynchronous, so Completed may still lag
	// here; exact counts are asserted on the final metrics line below.
	if !r.Health.Healthy || r.Health.Submitted != 1 {
		t.Fatalf("home health %+v, want healthy with 1 submitted", r.Health)
	}
	last := resps[len(resps)-1]
	if last.Type != "metrics" {
		t.Fatalf("last line type %q, want metrics", last.Type)
	}
	if last.Counters["tenant.lab.serve.completed.total"] != 2 ||
		last.Counters["tenant.home.serve.completed.total"] != 1 {
		t.Fatalf("multi-tenant metrics counters %v", last.Counters)
	}
	if _, flat := last.Counters["serve.completed.total"]; flat {
		t.Fatalf("multi-tenant metrics line leaked flat counter names: %v", last.Counters)
	}
}

// TestMultiTenantDebugMux: /metrics grows a tenant label, /debug/traces
// honors ?tenant=, and /healthz aggregates every tenant.
func TestMultiTenantDebugMux(t *testing.T) {
	d := testMultiDaemon(t, "normal")
	runStream(t, d,
		`{"id":"on","tenant":"home","trace":true}`+"\n"+
			`{"id":"1","tenant":"home","condition":{}}`+"\n"+
			`{"id":"2","tenant":"lab","condition":{}}`+"\n")
	srv := httptest.NewServer(d.debugMux())
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		`serve_completed_total{tenant="lab"} 1`,
		`serve_completed_total{tenant="home"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
	if strings.Count(body, "# TYPE serve_completed_total counter") != 1 {
		t.Fatalf("/metrics repeats the TYPE header:\n%s", body)
	}

	var dump struct {
		Enabled bool              `json:"enabled"`
		Traces  []json.RawMessage `json:"traces"`
	}
	code, body = get("/debug/traces?tenant=home")
	if code != http.StatusOK {
		t.Fatalf("/debug/traces?tenant=home status %d", code)
	}
	if err := json.Unmarshal([]byte(body), &dump); err != nil {
		t.Fatal(err)
	}
	if !dump.Enabled || len(dump.Traces) != 1 {
		t.Fatalf("home trace dump %s", body)
	}
	code, body = get("/debug/traces?tenant=lab")
	if code != http.StatusOK {
		t.Fatalf("/debug/traces?tenant=lab status %d", code)
	}
	dump.Traces = nil
	if err := json.Unmarshal([]byte(body), &dump); err != nil {
		t.Fatal(err)
	}
	if dump.Enabled || len(dump.Traces) != 0 {
		t.Fatalf("lab trace dump %s — home's tracing toggle leaked", body)
	}
	if code, _ = get("/debug/traces?tenant=ghost"); code != http.StatusNotFound {
		t.Fatalf("/debug/traces?tenant=ghost status %d, want 404", code)
	}

	code, body = get("/healthz")
	if code != http.StatusOK || !strings.Contains(body, `"healthy":true`) {
		t.Fatalf("/healthz status %d body %s", code, body)
	}
	for _, want := range []string{`"lab"`, `"home"`} {
		if !strings.Contains(body, want) {
			t.Fatalf("/healthz missing tenant %s: %s", want, body)
		}
	}

	// Trip one tenant's breaker: the aggregate probe must degrade.
	tn, err := d.tenant("home")
	if err != nil {
		t.Fatal(err)
	}
	tn.Engine().TripBreaker()
	if code, body = get("/healthz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/healthz with open breaker status %d body %s", code, body)
	}
}
