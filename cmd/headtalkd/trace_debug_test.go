package main

// Tests for the PR-4 daemon surface: the oversized-line fix (satellite
// 4), the {"trace":...} control and per-request forced traces, and the
// -debug-addr HTTP mux (pprof, Prometheus metrics, trace dumps).

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestOversizedLineBetweenValidRequests is the satellite regression:
// an NDJSON line past the 4 MiB cap must produce one typed
// error_kind:"oversized" response and leave the stream serving — the
// old bufio.Scanner died with ErrTooLong, taking the connection (and
// on stdin, the daemon) with it.
func TestOversizedLineBetweenValidRequests(t *testing.T) {
	d := testDaemon(t, "normal")
	huge := `{"id":"big","wav":"` + strings.Repeat("A", maxRequestLine+1024) + `"}`
	resps := runStream(t, d,
		`{"id":"before","condition":{}}`+"\n"+
			huge+"\n"+
			`{"id":"after","condition":{}}`+"\n")
	m := byID(resps)
	for _, id := range []string{"before", "after"} {
		r := m[id]
		if r.Type != "decision" || r.Accepted == nil || !*r.Accepted {
			t.Fatalf("%q response %+v, want accept — stream did not survive the oversized line", id, r)
		}
	}
	oversized := 0
	for _, r := range resps {
		if r.Type == "error" && r.ErrorKind == "oversized" {
			oversized++
			if !strings.Contains(r.Error, "exceeds") {
				t.Fatalf("oversized error message %q", r.Error)
			}
		}
	}
	if oversized != 1 {
		t.Fatalf("%d oversized errors, want 1: %+v", oversized, resps)
	}
}

// TestOversizedFinalLineWithoutNewline: an oversized line that hits
// EOF before its newline still reports once and ends the stream
// cleanly.
func TestOversizedFinalLineWithoutNewline(t *testing.T) {
	d := testDaemon(t, "normal")
	resps := runStream(t, d,
		`{"id":"ok","condition":{}}`+"\n"+strings.Repeat("B", maxRequestLine+512))
	m := byID(resps)
	if r := m["ok"]; r.Type != "decision" {
		t.Fatalf("valid request response %+v", r)
	}
	oversized := 0
	for _, r := range resps {
		if r.ErrorKind == "oversized" {
			oversized++
		}
	}
	if oversized != 1 {
		t.Fatalf("%d oversized errors, want 1", oversized)
	}
}

// TestTraceControlToggle: bare {"trace":true} flips store-wide tracing
// on — decisions after it carry a trace_id, decisions before it don't.
func TestTraceControlToggle(t *testing.T) {
	d := testDaemon(t, "normal")
	resps := runStream(t, d,
		`{"id":"cold","condition":{}}`+"\n"+
			`{"id":"on","trace":true}`+"\n"+
			`{"id":"hot","condition":{}}`+"\n"+
			`{"id":"off","trace":false}`+"\n"+
			`{"id":"cold2","condition":{}}`+"\n")
	m := byID(resps)
	if r := m["on"]; r.Type != "ok" || r.TraceEnabled == nil || !*r.TraceEnabled {
		t.Fatalf("trace-on control response %+v", r)
	}
	if r := m["off"]; r.Type != "ok" || r.TraceEnabled == nil || *r.TraceEnabled {
		t.Fatalf("trace-off control response %+v", r)
	}
	if r := m["cold"]; r.TraceID != "" {
		t.Fatalf("pre-toggle decision carries trace %+v", r)
	}
	if r := m["hot"]; r.TraceID == "" {
		t.Fatalf("post-toggle decision carries no trace_id: %+v", r)
	}
	if r := m["cold2"]; r.TraceID != "" {
		t.Fatalf("post-disable decision carries trace %+v", r)
	}
	tn, _ := d.tenant("")
	if got := tn.Traces().Recent(0); len(got) != 1 {
		t.Fatalf("store holds %d traces, want only the toggled-on decision", len(got))
	}
}

// TestPerRequestForcedTrace: "trace":true on a decision request
// inlines the full stage breakdown even with the store switch off.
func TestPerRequestForcedTrace(t *testing.T) {
	d := testDaemon(t, "normal")
	m := byID(runStream(t, d, `{"id":"f","condition":{},"trace":true}`+"\n"))
	r := m["f"]
	if r.Type != "decision" || r.TraceID == "" || r.Trace == nil {
		t.Fatalf("forced-trace response %+v, want inline trace", r)
	}
	// The JSON round trip drops the unexported span slots, so assert
	// the stage detail on the retained store copy.
	tn, _ := d.tenant("")
	got := tn.Traces().Recent(0)
	if len(got) != 1 || got[0].ID != r.TraceID {
		t.Fatalf("forced trace not retained in store: %+v", got)
	}
	if len(got[0].Spans()) == 0 || got[0].Total <= 0 {
		t.Fatalf("retained trace empty: %+v", got[0])
	}
}

// TestDebugMux exercises the -debug-addr HTTP surface via httptest:
// Prometheus metrics, trace dumps, health probe and pprof index.
func TestDebugMux(t *testing.T) {
	d := testDaemon(t, "normal")
	runStream(t, d,
		`{"id":"on","trace":true}`+"\n"+
			`{"id":"1","condition":{}}`+"\n")
	srv := httptest.NewServer(d.debugMux())
	defer srv.Close()

	get := func(path string) (int, string, http.Header) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body), resp.Header
	}

	code, body, hdr := get("/metrics")
	if code != http.StatusOK || !strings.Contains(hdr.Get("Content-Type"), "version=0.0.4") {
		t.Fatalf("/metrics status %d content-type %q", code, hdr.Get("Content-Type"))
	}
	for _, want := range []string{
		"# TYPE serve_completed_total counter",
		"# TYPE serve_decision_latency histogram",
		`serve_decision_latency_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}

	code, body, _ = get("/debug/traces")
	if code != http.StatusOK {
		t.Fatalf("/debug/traces status %d", code)
	}
	var dump struct {
		Enabled bool              `json:"enabled"`
		Traces  []json.RawMessage `json:"traces"`
	}
	if err := json.Unmarshal([]byte(body), &dump); err != nil {
		t.Fatalf("/debug/traces not JSON: %v\n%s", err, body)
	}
	if !dump.Enabled || len(dump.Traces) != 1 {
		t.Fatalf("/debug/traces body %s", body)
	}
	if !strings.Contains(body, `"spans"`) || !strings.Contains(body, `"queue_wait"`) {
		t.Fatalf("trace dump missing span detail:\n%s", body)
	}

	if code, _, _ = get("/debug/traces/slow"); code != http.StatusOK {
		t.Fatalf("/debug/traces/slow status %d", code)
	}

	code, body, _ = get("/healthz")
	if code != http.StatusOK || !strings.Contains(body, `"healthy":true`) {
		t.Fatalf("/healthz status %d body %s", code, body)
	}

	if code, body, _ = get("/debug/pprof/"); code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ status %d", code)
	}
}
