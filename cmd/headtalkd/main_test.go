package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"headtalk/internal/audio"
)

// testDaemon builds a daemon with no gate training (normal mode: fast,
// always accepts) unless mode overrides.
func testDaemon(t *testing.T, mode string) *daemon {
	t.Helper()
	d, err := newDaemon(daemonOptions{
		Workers:      2,
		QueueSize:    16,
		Mode:         mode,
		MetricsEvery: time.Hour, // only the final summary fires in tests
		Enroll:       false,
		Seed:         7,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = d.Close() })
	return d
}

// runStream round-trips NDJSON request lines through ServeStream and
// decodes every response line.
func runStream(t *testing.T, d *daemon, input string) []response {
	t.Helper()
	var out bytes.Buffer
	if err := d.ServeStream(strings.NewReader(input), &out); err != nil {
		t.Fatal(err)
	}
	var resps []response
	sc := bufio.NewScanner(&out)
	for sc.Scan() {
		var r response
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("bad response line %q: %v", sc.Text(), err)
		}
		resps = append(resps, r)
	}
	return resps
}

// byID indexes decision/error/ok responses (metrics lines have none).
func byID(resps []response) map[string]response {
	m := make(map[string]response)
	for _, r := range resps {
		if r.ID != "" {
			m[r.ID] = r
		}
	}
	return m
}

func TestRoundTripConditionRequest(t *testing.T) {
	d := testDaemon(t, "normal")
	resps := runStream(t, d,
		`{"id":"a","condition":{"AngleDeg":0}}`+"\n"+
			`{"id":"b","condition":{"AngleDeg":180,"Replay":"Smart TV"}}`+"\n")
	m := byID(resps)
	for _, id := range []string{"a", "b"} {
		r, ok := m[id]
		if !ok {
			t.Fatalf("no response for %q: %+v", id, resps)
		}
		if r.Type != "decision" || r.Accepted == nil || !*r.Accepted || r.ReasonSlug != "normal_mode" {
			t.Fatalf("response %q = %+v", id, r)
		}
	}
	// The stream ends with a metrics summary covering both decisions.
	last := resps[len(resps)-1]
	if last.Type != "metrics" {
		t.Fatalf("last line type %q, want metrics", last.Type)
	}
	if last.Counters["serve.completed.total"] != 2 || last.Counters["headtalk.decisions.total"] != 2 {
		t.Fatalf("metrics counters %v", last.Counters)
	}
	if last.Latencies["serve.decision.latency"].Count != 2 {
		t.Fatalf("latency summary %+v", last.Latencies)
	}
}

func TestRoundTripWAVRequest(t *testing.T) {
	d := testDaemon(t, "normal")
	// Write a short 2-channel noise WAV to disk.
	rng := rand.New(rand.NewPCG(3, 9))
	rec := audio.NewRecording(48000, 2, 4800)
	for c := range rec.Channels {
		for i := range rec.Channels[c] {
			rec.Channels[c][i] = 0.2 * rng.NormFloat64()
		}
	}
	path := filepath.Join(t.TempDir(), "wake.wav")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := audio.WriteWAV(f, rec); err != nil {
		t.Fatal(err)
	}
	f.Close()

	reqs, _ := json.Marshal(request{ID: "w", WAV: path})
	m := byID(runStream(t, d, string(reqs)+"\n"))
	r := m["w"]
	if r.Type != "decision" || r.Accepted == nil || !*r.Accepted {
		t.Fatalf("wav response %+v", r)
	}
}

func TestModeControlAndRejection(t *testing.T) {
	d := testDaemon(t, "normal")
	resps := runStream(t, d,
		`{"id":"1","condition":{}}`+"\n"+
			`{"id":"m","mode":"mute"}`+"\n"+
			`{"id":"2","condition":{}}`+"\n")
	m := byID(resps)
	if m["m"].Type != "ok" || m["m"].Mode != "mute" {
		t.Fatalf("mode control response %+v", m["m"])
	}
	if r := m["2"]; r.Accepted == nil || *r.Accepted || r.ReasonSlug != "muted" {
		t.Fatalf("post-mute decision %+v", r)
	}
}

func TestBadRequestLines(t *testing.T) {
	d := testDaemon(t, "normal")
	resps := runStream(t, d,
		"{not json}\n"+
			`{"id":"x"}`+"\n"+
			`{"id":"y","mode":"sideways"}`+"\n"+
			`{"id":"z","wav":"/nonexistent.wav"}`+"\n")
	errors := 0
	for _, r := range resps {
		if r.Type == "error" {
			errors++
		}
	}
	if errors != 4 {
		t.Fatalf("%d error responses, want 4: %+v", errors, resps)
	}
}

// TestErrorKindsOnBadLines pins the error_kind classification for the
// two satellite bug classes — malformed NDJSON and unreadable WAV
// paths — plus the other structured request failures.
func TestErrorKindsOnBadLines(t *testing.T) {
	d := testDaemon(t, "normal")
	resps := runStream(t, d,
		"{not json}\n"+
			`{"id":"x"}`+"\n"+
			`{"id":"y","mode":"sideways"}`+"\n"+
			`{"id":"z","wav":"/nonexistent.wav"}`+"\n")
	kinds := map[string]string{}
	for _, r := range resps {
		if r.Type == "error" {
			kinds[r.ID] = r.ErrorKind
			if r.Error == "" {
				t.Fatalf("error line without message: %+v", r)
			}
		}
	}
	want := map[string]string{
		"":  "parse",   // malformed NDJSON has no id to echo
		"x": "request", // neither wav nor condition
		"y": "mode",
		"z": "wav",
	}
	for id, kind := range want {
		if kinds[id] != kind {
			t.Fatalf("error_kind[%q] = %q, want %q (all: %v)", id, kinds[id], kind, kinds)
		}
	}
}

// TestBadInputWAVFailsClosed runs a readable but malformed capture
// (2 ms — far below the input-hardening minimum) through the full
// daemon path: the decision must surface as a typed bad_input error
// line, never an accept.
func TestBadInputWAVFailsClosed(t *testing.T) {
	d := testDaemon(t, "normal")
	rng := rand.New(rand.NewPCG(5, 9))
	rec := audio.NewRecording(48000, 2, 100)
	for c := range rec.Channels {
		for i := range rec.Channels[c] {
			rec.Channels[c][i] = 0.2 * rng.NormFloat64()
		}
	}
	path := filepath.Join(t.TempDir(), "truncated.wav")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := audio.WriteWAV(f, rec); err != nil {
		t.Fatal(err)
	}
	f.Close()

	m := byID(runStream(t, d, `{"id":"s","wav":"`+path+`"}`+"\n"))
	r := m["s"]
	if r.Type != "error" || r.ErrorKind != "bad_input" {
		t.Fatalf("truncated-wav response %+v, want bad_input error", r)
	}
	if r.ReasonSlug != "bad_input" {
		t.Fatalf("reason_slug = %q, want bad_input (fail-closed reject)", r.ReasonSlug)
	}
	if r.Accepted != nil && *r.Accepted {
		t.Fatal("malformed capture was accepted")
	}
}

// TestHealthLine exercises the {"health":true} control request.
func TestHealthLine(t *testing.T) {
	d := testDaemon(t, "headtalk")
	resps := runStream(t, d,
		`{"id":"d1","condition":{}}`+"\n"+
			`{"id":"h","health":true}`+"\n")
	m := byID(resps)
	r := m["h"]
	if r.Type != "health" || r.Health == nil {
		t.Fatalf("health response %+v", r)
	}
	h := r.Health
	if h.State != "running" || !h.Healthy || h.Breaker != "closed" {
		t.Fatalf("health body %+v, want running/healthy/closed", h)
	}
	if h.Mode != "headtalk" || h.Workers != 2 || h.QueueCapacity != 16 {
		t.Fatalf("health body %+v", h)
	}
}

func TestHeadTalkModeWithoutModelsRejects(t *testing.T) {
	d := testDaemon(t, "headtalk")
	m := byID(runStream(t, d, `{"id":"h","condition":{}}`+"\n"))
	r := m["h"]
	if r.Type != "decision" || r.Accepted == nil || *r.Accepted || r.ReasonSlug != "no_orientation" {
		t.Fatalf("headtalk-without-models response %+v", r)
	}
}

// TestServeTCP exercises the listener path end to end over a real
// socket.
func TestServeTCP(t *testing.T) {
	d := testDaemon(t, "normal")
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go d.ServeListener(ln)
	defer ln.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte(`{"id":"tcp-1","condition":{}}` + "\n")); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	var r response
	if err := json.NewDecoder(bufio.NewReader(conn)).Decode(&r); err != nil {
		t.Fatal(err)
	}
	if r.Type != "decision" || r.ID != "tcp-1" || r.Accepted == nil || !*r.Accepted {
		t.Fatalf("tcp response %+v", r)
	}
}

// TestBatchedDaemonMetrics: with -batch the daemon serves through the
// batch collector, and metrics lines summarize batch occupancy under
// "batches" (counts) instead of mis-rendering it as a latency.
func TestBatchedDaemonMetrics(t *testing.T) {
	d, err := newDaemon(daemonOptions{
		Workers:      2,
		QueueSize:    16,
		MaxBatch:     4,
		Mode:         "normal",
		MetricsEvery: time.Hour,
		Enroll:       false,
		Seed:         7,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = d.Close() })

	var input strings.Builder
	for i := 0; i < 6; i++ {
		fmt.Fprintf(&input, `{"id":"b%d","condition":{}}`+"\n", i)
	}
	resps := runStream(t, d, input.String())
	m := byID(resps)
	for i := 0; i < 6; i++ {
		r := m[fmt.Sprintf("b%d", i)]
		if r.Type != "decision" || r.Accepted == nil || !*r.Accepted {
			t.Fatalf("batched response %d = %+v", i, r)
		}
	}
	last := resps[len(resps)-1]
	if last.Type != "metrics" {
		t.Fatalf("last line type %q, want metrics", last.Type)
	}
	bs, ok := last.Batches["serve.batch.size"]
	if !ok {
		t.Fatalf("metrics line has no batch summary: %+v", last.Batches)
	}
	if bs.Requests != 6 || bs.Batches == 0 || bs.Batches > 6 {
		t.Fatalf("batch summary %+v, want 6 requests over 1..6 batches", bs)
	}
	if _, leaked := last.Latencies["serve.batch.size"]; leaked {
		t.Fatal("batch.size also rendered as a latency")
	}
}
