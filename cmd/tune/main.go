// Command tune is a development utility that sweeps SVM
// hyperparameters and simulator fidelity settings on the Table III
// cell to calibrate the reproduction. It is not part of the paper's
// experiment suite.
package main

import (
	"flag"
	"fmt"
	"os"

	"headtalk/internal/dataset"
	"headtalk/internal/features"
	"headtalk/internal/orientation"
)

func main() {
	var (
		seed = flag.Uint64("seed", 42, "corpus seed")
		reps = flag.Int("reps", 3, "repetitions per angle")
	)
	flag.Parse()

	windows := []int{16384, 32768}
	var conds []dataset.Condition
	for sess := 1; sess <= 2; sess++ {
		for _, dist := range []float64{1, 3, 5} {
			for _, a := range dataset.AnglesWithBorderline {
				for rep := 1; rep <= *reps; rep++ {
					conds = append(conds, dataset.Condition{Session: sess, Distance: dist, AngleDeg: a, Rep: rep})
				}
			}
		}
	}
	for _, window := range windows {
		gen := dataset.NewGenerator(*seed)
		win := window
		gen.FeatureConfigFn = func(cfg features.Config) features.Config {
			cfg.AnalysisWindow = win
			return cfg
		}
		fmt.Fprintf(os.Stderr, "window=%d: generating %d samples...\n", window, len(conds))
		var train, test []*dataset.Sample
		for i, c := range conds {
			s, err := gen.Generate(c)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if c.Session == 1 {
				train = append(train, s)
			} else {
				test = append(test, s)
			}
			if (i+1)%100 == 0 {
				fmt.Fprintf(os.Stderr, "  %d/%d\n", i+1, len(conds))
			}
		}

		label := func(samples []*dataset.Sample) (x [][]float64, y []int) {
			for _, s := range samples {
				if l, ok := orientation.Definition4.Label(s.Cond.AngleDeg); ok {
					x = append(x, s.Features)
					y = append(y, l)
				}
			}
			return
		}
		trX, trY := label(train)
		teX, teY := label(test)
		d := float64(len(trX[0]))
		fmt.Printf("window=%d train=%d test=%d dims=%g\n", window, len(trX), len(teX), d)

		for _, c := range []float64{1, 10, 100} {
			for _, gscale := range []float64{0.25, 0.5, 1, 2, 4} {
				m, err := orientation.Train(trX, trY, orientation.ModelConfig{C: c, Gamma: gscale / d, Seed: 1})
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				met, err := m.Evaluate(teX, teY)
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				fmt.Printf("  C=%-4g gamma=%.2g/d: acc=%.2f%% f1=%.2f%%\n", c, gscale, 100*met.Accuracy(), 100*met.F1())
			}
		}
	}
}
