// Command datagen writes synthetic HeadTalk corpora to disk as 16-bit
// PCM WAV files plus a manifest.tsv describing each capture, mirroring
// the layout a physical data collection would produce.
//
// Usage:
//
//	datagen -out dir [-dataset 1|2|3|4|5|6|7|8|spoof] [-full] [-seed N] [-limit N]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"headtalk/internal/audio"
	"headtalk/internal/dataset"
)

func main() {
	var (
		out   = flag.String("out", "", "output directory (required)")
		which = flag.String("dataset", "1", "dataset to generate: 1..8 or 'spoof'")
		full  = flag.Bool("full", false, "paper-scale counts")
		seed  = flag.Uint64("seed", 42, "generation seed")
		limit = flag.Int("limit", 0, "cap the number of files (0 = all)")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "datagen: -out is required")
		os.Exit(2)
	}

	scale := dataset.ScaleSmall
	if *full {
		scale = dataset.ScalePaper
	}
	conds, err := condsFor(*which, scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *limit > 0 && len(conds) > *limit {
		conds = conds[:*limit]
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	gen := dataset.NewGenerator(*seed)
	manifest, err := os.Create(filepath.Join(*out, "manifest.tsv"))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer manifest.Close()
	fmt.Fprintln(manifest, "file\troom\tdevice\tword\tsession\tlocation\tangle\trep\tsource\tuser")

	for i, c := range conds {
		rec, err := dataset.CaptureRecording(gen, c)
		if err != nil {
			fmt.Fprintf(os.Stderr, "datagen: capture %d: %v\n", i, err)
			os.Exit(1)
		}
		name := fmt.Sprintf("%05d.wav", i)
		f, err := os.Create(filepath.Join(*out, name))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := audio.WriteWAV(f, rec); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "datagen: writing %s: %v\n", name, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		source := "human"
		if c.Replay != "" {
			source = "replay:" + c.Replay
		}
		session := c.Session
		if session == 0 {
			session = 1
		}
		rep := c.Rep
		if rep == 0 {
			rep = 1
		}
		fmt.Fprintf(manifest, "%s\t%s\t%s\t%s\t%d\t%s\t%g\t%d\t%s\t%d\n",
			name, orDefault(c.Room, "lab"), orDefault(c.Device, "D2"), orDefault(c.Word, "Computer"),
			session, c.Location(), c.AngleDeg, rep, source, c.UserID)
		if (i+1)%50 == 0 {
			fmt.Fprintf(os.Stderr, "datagen: %d/%d\n", i+1, len(conds))
		}
	}
	fmt.Printf("wrote %d captures to %s\n", len(conds), *out)
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}

func condsFor(which string, scale dataset.Scale) ([]dataset.Condition, error) {
	switch strings.ToLower(which) {
	case "1":
		return dataset.Dataset1(scale), nil
	case "2":
		return dataset.Dataset2(scale), nil
	case "3":
		return dataset.Dataset3(scale), nil
	case "4":
		return dataset.Dataset4(scale), nil
	case "5":
		return dataset.Dataset5(scale), nil
	case "6":
		return dataset.Dataset6(scale), nil
	case "7":
		return dataset.Dataset7(scale), nil
	case "8":
		return dataset.Dataset8(scale), nil
	case "spoof":
		return dataset.SpoofCorpus(scale), nil
	default:
		return nil, fmt.Errorf("datagen: unknown dataset %q (want 1..8 or spoof)", which)
	}
}
