// Command headtalk runs an end-to-end interactive demonstration of the
// HeadTalk privacy control: it enrolls the two gates on synthetic
// data, then plays a scripted smart-home scenario (owner facing, owner
// turned away, TV replay, phone replay attack) through each privacy
// mode and reports what would have been uploaded to the cloud.
//
// Usage:
//
//	headtalk [-seed N] [-angles list] [-distance m] [-trace]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"headtalk"
	"headtalk/internal/dataset"
)

func main() {
	var (
		seed      = flag.Uint64("seed", 7, "simulation seed")
		anglesCS  = flag.String("angles", "0,30,90,180", "head angles (degrees) to demonstrate")
		distance  = flag.Float64("distance", 3, "speaker distance in meters")
		showTrace = flag.Bool("trace", false, "print a per-stage latency table for each decision (paper §IV-B15)")
	)
	flag.Parse()

	angles, err := parseAngles(*anglesCS)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	fmt.Println("HeadTalk demo — enrolling on synthetic data (this takes ~30 s)...")
	enr, err := headtalk.Enroll(headtalk.EnrollmentOptions{Seed: *seed, Progress: os.Stderr})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	sys, err := headtalk.NewSystem(headtalk.Config{
		Liveness:    enr.Liveness,
		Orientation: enr.Orientation,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	sys.SetMode(headtalk.ModeHeadTalk)

	gen := headtalk.NewGenerator(*seed + 100)

	type scenario struct {
		label string
		cond  headtalk.Condition
	}
	var scenarios []scenario
	for _, a := range angles {
		scenarios = append(scenarios, scenario{
			label: fmt.Sprintf("owner speaks at %+.0f°", a),
			cond:  headtalk.Condition{Distance: *distance, AngleDeg: a},
		})
	}
	scenarios = append(scenarios,
		scenario{"smart TV says the wake word", headtalk.Condition{Distance: *distance, AngleDeg: 0, Replay: "Smart TV", Rep: 2}},
		scenario{"attacker replays via phone", headtalk.Condition{Distance: *distance, AngleDeg: 0, Replay: "Samsung Galaxy S21 Ultra", Rep: 3}},
	)

	fmt.Printf("\n%-36s  %-8s  %-10s  %-9s  %s\n", "scenario", "live?", "facing?", "accepted", "reason")
	fmt.Println(strings.Repeat("-", 92))
	for i, sc := range scenarios {
		rec, err := captureFor(gen, sc.cond)
		if err != nil {
			fmt.Fprintf(os.Stderr, "simulating %q: %v\n", sc.label, err)
			os.Exit(1)
		}
		ctx := context.Background()
		var rt *headtalk.TraceRecorder
		if *showTrace {
			rt = headtalk.NewTraceRecorder(fmt.Sprintf("demo-%d", i+1))
			ctx = headtalk.WithTrace(ctx, rt)
		}
		d, err := sys.ProcessWake(ctx, rec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "processing %q: %v\n", sc.label, err)
			os.Exit(1)
		}
		sys.EndSession() // score each scenario independently
		fmt.Printf("%-36s  %-8s  %-10s  %-9v  %s\n",
			sc.label, yesNo(d.LiveRan, d.LiveScore >= 0.5),
			yesNo(d.FacingRan, d.FacingScore >= 0), d.Accepted, d.Reason)
		if rt != nil {
			ft := rt.Finish()
			fmt.Printf("\n  stage latency breakdown (%s):\n", ft.ID)
			ft.WriteTable(indentWriter{os.Stdout})
			fmt.Println()
		}
	}

	fmt.Println("\nIn Normal mode every one of these would have been uploaded;")
	fmt.Println("in Mute mode none — HeadTalk keeps the assistant usable while")
	fmt.Println("blocking replays and side-speech.")
}

// captureFor renders a wake-word capture for a condition and returns a
// fresh Recording built from its preprocessed channels. The demo
// re-simulates at the raw-recording level so the System runs its own
// preprocessing, exactly as it would on device audio.
func captureFor(gen *headtalk.Generator, c headtalk.Condition) (*headtalk.Recording, error) {
	return dataset.CaptureRecording(gen, c)
}

// indentWriter prefixes each written chunk with four spaces so the
// stage table nests under its scenario row. WriteTable emits one Write
// per line, which is all this needs to handle.
type indentWriter struct{ w *os.File }

func (iw indentWriter) Write(p []byte) (int, error) {
	if _, err := iw.w.WriteString("    "); err != nil {
		return 0, err
	}
	return iw.w.Write(p)
}

func yesNo(ran, v bool) string {
	if !ran {
		return "-"
	}
	if v {
		return "yes"
	}
	return "no"
}

func parseAngles(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("invalid angle %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}
