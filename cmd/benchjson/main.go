// Command benchjson converts `go test -bench` output into
// machine-readable JSON Lines so benchmark runs can be committed and
// diffed across PRs (see BENCH_pr3.json and the README's benchmarking
// section).
//
// It reads benchmark output on stdin, echoes it unchanged to stdout
// (so it tees transparently into a pipeline), and appends one JSON
// record per benchmark result line to the -out file:
//
//	go test -run xxx -bench . -benchmem ./... | benchjson -tag pr4 -out BENCH_pr4.json
//
// Records carry the benchmark name (CPU-count suffix stripped), the
// enclosing package, iterations, ns/op, -benchmem's B/op and allocs/op
// when present, and any custom b.ReportMetric units.
//
// With -compare tagA,tagB it instead reads the -out file and prints a
// per-benchmark delta table between the two tags (ns/op and allocs/op,
// negative deltas are improvements), using the last record per
// (pkg, name, tag) so re-runs supersede earlier appends:
//
//	benchjson -compare pr8-pre,pr8 -out BENCH_pr8.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"
)

type record struct {
	Tag         string             `json:"tag,omitempty"`
	Pkg         string             `json:"pkg,omitempty"`
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	out := flag.String("out", "", "JSON Lines output file (required)")
	tag := flag.String("tag", "", "tag stored on every record (e.g. pr3, pr3-baseline)")
	appendOut := flag.Bool("append", false, "append to -out instead of truncating")
	compare := flag.String("compare", "", "tagA,tagB: diff two tags in the -out file instead of recording")
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -out is required")
		os.Exit(2)
	}
	if *compare != "" {
		if err := runCompare(*out, *compare); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		return
	}

	mode := os.O_CREATE | os.O_WRONLY
	if *appendOut {
		mode |= os.O_APPEND
	} else {
		mode |= os.O_TRUNC
	}
	f, err := os.OpenFile(*out, mode, 0o644)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	enc := json.NewEncoder(f)

	var pkg string
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		rec, ok := parseBenchLine(line)
		if !ok {
			continue
		}
		rec.Tag = *tag
		rec.Pkg = pkg
		if err := enc.Encode(rec); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// parseBenchLine parses one `BenchmarkName-8  N  12.3 ns/op  ...` line.
func parseBenchLine(line string) (record, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return record{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return record{}, false
	}
	rec := record{Name: stripCPUSuffix(fields[0]), Iterations: iters}
	sawNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return record{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			rec.NsPerOp = val
			sawNs = true
		case "B/op":
			v := val
			rec.BytesPerOp = &v
		case "allocs/op":
			v := val
			rec.AllocsPerOp = &v
		default:
			if rec.Metrics == nil {
				rec.Metrics = map[string]float64{}
			}
			rec.Metrics[unit] = val
		}
	}
	return rec, sawNs
}

// runCompare prints a per-benchmark delta table between two tags in a
// JSON Lines record file. Within one (pkg, name, tag) the last record
// wins, so an appended re-run supersedes earlier results.
func runCompare(path, spec string) error {
	tagA, tagB, ok := strings.Cut(spec, ",")
	if !ok || tagA == "" || tagB == "" {
		return fmt.Errorf("-compare wants tagA,tagB, got %q", spec)
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()

	type key struct{ pkg, name string }
	byTag := map[string]map[key]record{tagA: {}, tagB: {}}
	var order []key
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var rec record
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			return fmt.Errorf("parsing %s: %v", path, err)
		}
		m, want := byTag[rec.Tag]
		if !want {
			continue
		}
		k := key{rec.Pkg, rec.Name}
		if _, seen := m[k]; !seen {
			if _, other := byTag[otherTag(rec.Tag, tagA, tagB)][k]; !other {
				order = append(order, k)
			}
		}
		m[k] = rec
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(byTag[tagA]) == 0 {
		return fmt.Errorf("no records tagged %q in %s", tagA, path)
	}
	if len(byTag[tagB]) == 0 {
		return fmt.Errorf("no records tagged %q in %s", tagB, path)
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
	fmt.Fprintf(w, "benchmark\t%s ns/op\t%s ns/op\tdelta\tallocs %s\tallocs %s\n", tagA, tagB, tagA, tagB)
	for _, k := range order {
		a, okA := byTag[tagA][k]
		b, okB := byTag[tagB][k]
		name := strings.TrimPrefix(k.name, "Benchmark")
		switch {
		case okA && okB:
			fmt.Fprintf(w, "%s\t%.0f\t%.0f\t%+.1f%%\t%s\t%s\n",
				name, a.NsPerOp, b.NsPerOp, 100*(b.NsPerOp-a.NsPerOp)/a.NsPerOp,
				allocStr(a.AllocsPerOp), allocStr(b.AllocsPerOp))
		case okA:
			fmt.Fprintf(w, "%s\t%.0f\t-\t(only in %s)\t%s\t-\n", name, a.NsPerOp, tagA, allocStr(a.AllocsPerOp))
		default:
			fmt.Fprintf(w, "%s\t-\t%.0f\t(only in %s)\t-\t%s\n", name, b.NsPerOp, tagB, allocStr(b.AllocsPerOp))
		}
	}
	return w.Flush()
}

func otherTag(tag, a, b string) string {
	if tag == a {
		return b
	}
	return a
}

func allocStr(v *float64) string {
	if v == nil {
		return "-"
	}
	return strconv.FormatFloat(*v, 'f', -1, 64)
}

// stripCPUSuffix removes the trailing -GOMAXPROCS from a benchmark
// name (Benchmark names themselves never end in -<digits>).
func stripCPUSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
