// Package headtalk is the public API of the HeadTalk reproduction: a
// speaker-orientation-aware privacy control for voice assistants
// (Zhang, Sabir & Das, DSN 2023).
//
// A HeadTalk System gates wake words behind two acoustic checks run on
// the assistant's own microphone array:
//
//  1. Liveness — was the sound produced by a live human rather than
//     replayed through a loudspeaker? (spectral high-band analysis via
//     a small convolutional network)
//  2. Orientation — was the human facing the device when speaking?
//     (SRP-PHAT / GCC-PHAT reverberation features plus speech
//     directivity features, classified by an RBF SVM)
//
// Because this reproduction has no physical microphone arrays, the
// package also exposes the full acoustic simulation stack used to
// generate training and evaluation data: a formant speech synthesizer,
// frequency-banded source directivity, an image-source room simulator
// and models of the paper's three prototype devices. See DESIGN.md for
// the substitution inventory.
//
// # Quickstart
//
//	sys, err := headtalk.NewSystem(headtalk.Config{
//		Liveness:    livenessDetector,
//		Orientation: orientationModel,
//	})
//	sys.SetMode(headtalk.ModeHeadTalk)
//	decision, err := sys.ProcessWake(ctx, recording)
//	if decision.Accepted { /* forward audio to the cloud */ }
//
// See examples/quickstart for a complete runnable program that
// synthesizes its own enrollment data.
package headtalk

import (
	"context"
	"io"
	"math/rand/v2"
	"time"

	"headtalk/internal/audio"
	"headtalk/internal/cluster"
	"headtalk/internal/core"
	"headtalk/internal/dataset"
	"headtalk/internal/features"
	"headtalk/internal/fusion"
	"headtalk/internal/liveness"
	"headtalk/internal/metrics"
	"headtalk/internal/mic"
	"headtalk/internal/orientation"
	"headtalk/internal/pool"
	"headtalk/internal/registry"
	"headtalk/internal/room"
	"headtalk/internal/serve"
	"headtalk/internal/speech"
	"headtalk/internal/stream"
	"headtalk/internal/trace"
	"headtalk/internal/va"
)

// Core system types.
type (
	// System is the HeadTalk privacy controller (mode state machine +
	// liveness and orientation gates).
	System = core.System
	// Config assembles a System.
	Config = core.Config
	// Mode is the privacy mode (Normal / Mute / HeadTalk).
	Mode = core.Mode
	// Decision is the outcome of processing one wake word.
	Decision = core.Decision
	// Reason explains a Decision.
	Reason = core.Reason
)

// Privacy modes (paper Fig. 1).
const (
	ModeNormal   = core.ModeNormal
	ModeMute     = core.ModeMute
	ModeHeadTalk = core.ModeHeadTalk
)

// NewSystem validates cfg and returns a controller in Normal mode.
func NewSystem(cfg Config) (*System, error) { return core.NewSystem(cfg) }

// Serving layer: the concurrent decision engine and its
// instrumentation (see internal/serve and internal/metrics).
type (
	// Engine is a pool of decision workers over one System, with a
	// bounded submission queue and explicit backpressure.
	Engine = serve.Engine
	// EngineConfig sizes an Engine (workers, queue, metrics).
	EngineConfig = serve.Config
	// ServeRequest is one decision submission.
	ServeRequest = serve.Request
	// ServeResult is the outcome of a served submission.
	ServeResult = serve.Result
	// Preprocessor is per-goroutine DSP state for the band-pass stage.
	Preprocessor = core.Preprocessor
	// MetricsRegistry collects counters, gauges and latency
	// histograms; share one between Config.Metrics and
	// EngineConfig.Metrics to scrape the whole pipeline at once.
	MetricsRegistry = metrics.Registry
	// MetricsSnapshot is a point-in-time scrape of a registry.
	MetricsSnapshot = metrics.Snapshot
	// StreamConfig attaches a continuous-listening ingest front end to
	// an engine (EngineConfig.Streaming): per-session ring buffers,
	// incremental STFT and online wake-word spotting with early-exit
	// gating ahead of the full pipeline (see internal/stream).
	StreamConfig = stream.Config
	// StreamManager owns an engine's streaming sessions (Engine.Streams).
	StreamManager = stream.Manager
	// StreamPushResult reports how far one pushed chunk got through the
	// early-exit cascade (Engine.PushFrames).
	StreamPushResult = stream.PushResult
	// SpeakerTrackerConfig enables cross-utterance speaker tracking on
	// a stream manager (StreamConfig.Speakers): spotted candidates are
	// clustered into speaker tracks by TDoA signature, carrying
	// orientation history and facing state across utterances.
	SpeakerTrackerConfig = stream.TrackerConfig
	// SpeakerInfo is the tracked-speaker snapshot attached to spotted
	// and decided push results.
	SpeakerInfo = stream.SpeakerInfo
)

// Multi-array decision fusion (see internal/fusion): several arrays
// hear the same utterance and each reports a signed orientation margin
// and live score; fusing them health-weighted into one room-level
// accept/reject beats any single array. Engine.DecideFused and
// Pool.DecideFused serve the fused path.
type (
	// FusionArrayInput is one array's capture for Engine.DecideFused.
	FusionArrayInput = serve.ArrayInput
	// FusionArrayReport is one array's per-decision contribution.
	FusionArrayReport = fusion.ArrayReport
	// FusionConfig tunes the fusion vote thresholds.
	FusionConfig = fusion.Config
	// RoomDecision is the fused room-level outcome.
	RoomDecision = fusion.RoomDecision
	// ArrayHealth is a per-channel health assessment (mic.AssessHealth);
	// FusionHealthWeight turns one into a fusion vote weight.
	ArrayHealth = mic.ArrayHealth
)

// Fuse combines per-array reports into one room-level decision,
// failing closed when no trustworthy evidence survives.
func Fuse(reports []FusionArrayReport, cfg FusionConfig) RoomDecision {
	return fusion.Fuse(reports, cfg)
}

// FusionHealthWeight converts an explicit mic.AssessHealth result into
// a fusion vote weight (the healthy-channel fraction).
func FusionHealthWeight(h ArrayHealth) float64 { return fusion.HealthWeight(h) }

// Error taxonomy. Every failure the serving stack reports is either a
// sentinel (match with errors.Is) or a typed error carrying detail
// (match with errors.As); see the README's error table for the full
// map. Sentinels:
var (
	// ErrQueueFull is the engine's backpressure signal: the bounded
	// submission queue is at capacity. errors.Is(err, ErrQueueFull).
	ErrQueueFull = serve.ErrQueueFull
	// ErrEngineClosed is returned once an engine drains or closes.
	ErrEngineClosed = serve.ErrClosed
	// ErrBreakerOpen marks decisions rejected fast while an engine's
	// circuit breaker is open after repeated pipeline failures.
	ErrBreakerOpen = serve.ErrBreakerOpen
	// ErrUnknownTenant is a pool routing failure: the named tenant is
	// not (or no longer) hosted. The returned error wraps this sentinel
	// with the tenant ID; match with errors.Is.
	ErrUnknownTenant = pool.ErrUnknownTenant
	// ErrTenantExists rejects AddTenant calls reusing a live ID.
	ErrTenantExists = pool.ErrTenantExists
	// ErrPoolClosed is returned by pool operations after Drain/Close.
	ErrPoolClosed = pool.ErrPoolClosed
	// ErrNoRoute reports an anonymous request the pool could not place:
	// hash fallback is off or no tenants are hosted.
	ErrNoRoute = pool.ErrNoRoute
	// ErrNoStream rejects streaming calls on an engine built without
	// EngineConfig.Streaming.
	ErrNoStream = serve.ErrNoStream
	// ErrStreamSessionLimit rejects new streaming sessions while a
	// manager is at MaxSessions with no idle session to evict.
	ErrStreamSessionLimit = stream.ErrSessionLimit
	// ErrBadFrame rejects a malformed streamed chunk (wrong channel
	// count, ragged or non-finite samples, longer than the window).
	ErrBadFrame = stream.ErrBadFrame
)

// Typed errors: match with errors.As and branch on their fields.
type (
	// ErrBadInput is the input-hardening reject (too short, too long,
	// non-finite or clipped samples); its Reason field classifies the
	// fault. Use AsBadInput or errors.As.
	ErrBadInput = audio.ErrBadInput
	// ErrMalformedWAV reports an undecodable WAV stream; its Reason
	// field names the structural fault.
	ErrMalformedWAV = audio.ErrMalformedWAV
	// ErrPipelinePanic carries a recovered decision-pipeline panic
	// (value + stack). The submission fails closed; the worker
	// survives. Use IsPanic or errors.As.
	ErrPipelinePanic = serve.ErrPipelinePanic
)

// IsPanic reports whether err chains to an *ErrPipelinePanic.
func IsPanic(err error) bool { return serve.IsPanic(err) }

// AsBadInput unwraps err to an *ErrBadInput if one is in its chain.
func AsBadInput(err error) (*ErrBadInput, bool) { return audio.AsBadInput(err) }

// NewEngine validates cfg and returns a decision engine; call Start
// before submitting and Close (or Drain) to finish in-flight work.
func NewEngine(cfg EngineConfig) (*Engine, error) { return serve.NewEngine(cfg) }

// Multi-tenant serving (see internal/pool): one process hosting many
// named (System, Engine) pairs — per-device or per-room profiles —
// each with its own queue, circuit breaker, metrics registry and trace
// store, behind a single routing API. One tenant's saturation or open
// breaker never rejects another tenant's requests.
type (
	// Pool is the sharded multi-tenant serving pool.
	Pool = pool.Pool
	// PoolConfig sizes a Pool (shard count, anonymous-traffic hash
	// fallback).
	PoolConfig = pool.Config
	// PoolTenant is one hosted (System, Engine) pair.
	PoolTenant = pool.Tenant
	// TenantConfig assembles one tenant for Pool.AddTenant.
	TenantConfig = pool.TenantConfig
	// PoolHealth aggregates every tenant's serving fitness.
	PoolHealth = pool.Health
	// EngineHealth is one engine's serving fitness (also the per-tenant
	// entry inside PoolHealth).
	EngineHealth = serve.Health
)

// NewPool returns an empty multi-tenant serving pool; add tenants with
// AddTenant and route with Decide/Submit.
func NewPool(cfg PoolConfig) *Pool { return pool.New(cfg) }

// Federated multi-node serving (see internal/cluster): tenants are
// partitioned across nodes on a consistent-hash ring; each node serves
// its own tenants locally and forwards everyone else's to the owning
// peer with deadlines, retries, one hedged attempt and a per-peer
// circuit breaker. Dead peers are probed out of the ring; tenants move
// between nodes as versioned, checksummed snapshot envelopes.
type (
	// ClusterNode federates one serving pool with its peers.
	ClusterNode = cluster.Node
	// ClusterConfig assembles a ClusterNode (identity, peers, timeouts,
	// retry/hedge policy, breaker sizing).
	ClusterConfig = cluster.Config
	// ClusterEnvelope is one tenant's portable serving state: versioned,
	// checksummed, safe to store and replay into Restore.
	ClusterEnvelope = cluster.Envelope
	// ClusterPeerStatus reports one peer's membership view.
	ClusterPeerStatus = cluster.PeerStatus
	// ClusterPeerHealth is the probe-driven peer lifecycle state.
	ClusterPeerHealth = cluster.PeerHealth
	// ClusterRemoteError is a failure the owning peer reported: the wire
	// worked, the operation did not. Its Kind mirrors the daemon's
	// error_kind taxonomy. Never retried, never trips the breaker.
	ClusterRemoteError = cluster.RemoteError
)

// Peer lifecycle states (alive → suspect → down).
const (
	PeerAlive   = cluster.PeerAlive
	PeerSuspect = cluster.PeerSuspect
	PeerDown    = cluster.PeerDown
)

// ClusterSnapshotVersion is the newest snapshot envelope format.
const ClusterSnapshotVersion = cluster.SnapshotVersion

var (
	// ErrPeerUnavailable marks a forward that could not reach a live
	// owner (dead peer, open breaker, exhausted retries, no candidates).
	// The tenant's owner may recover; the caller should back off.
	ErrPeerUnavailable = cluster.ErrPeerUnavailable
	// ErrSnapshotVersion rejects an envelope from a newer format.
	ErrSnapshotVersion = cluster.ErrSnapshotVersion
	// ErrSnapshotChecksum rejects an envelope whose payload does not
	// match its recorded checksum.
	ErrSnapshotChecksum = cluster.ErrSnapshotChecksum
)

// NewClusterNode validates cfg and returns a federation node over the
// given pool; call Start to begin peer health probing and Close to
// leave the ring.
func NewClusterNode(cfg ClusterConfig) (*ClusterNode, error) { return cluster.NewNode(cfg) }

// CaptureTenant snapshots one hosted tenant into a portable envelope
// (models, thresholds, mode, device/room profile).
func CaptureTenant(t *PoolTenant, device, room string) (*ClusterEnvelope, error) {
	return cluster.CaptureTenant(t, device, room)
}

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// Per-decision tracing (see internal/trace): stage-by-stage latency
// breakdowns of individual decisions, off by default and free when off.
type (
	// Trace is one decision's ordered stage spans plus its outcome.
	Trace = trace.Trace
	// TraceRecorder accumulates spans for one decision; attach it to a
	// context with WithTrace. All methods are no-ops on nil.
	TraceRecorder = trace.Recorder
	// TraceStore retains recent and slow finished traces in fixed-size
	// rings; pass one as EngineConfig.Traces for engine auto-tracing.
	TraceStore = trace.Store
)

// NewTraceStore returns a trace store holding up to capacity recent
// traces (0: default 256) and always retaining decisions at least
// slowThreshold slow (0: default 250ms, negative: disabled).
func NewTraceStore(capacity int, slowThreshold time.Duration) *TraceStore {
	return trace.NewStore(capacity, slowThreshold)
}

// NewTraceRecorder returns a recorder for a single decision.
func NewTraceRecorder(id string) *TraceRecorder { return trace.NewRecorder(id) }

// WithTrace attaches a recorder to ctx; System.ProcessWake and
// Engine submissions record stage spans into it.
func WithTrace(ctx context.Context, r *TraceRecorder) context.Context {
	return trace.NewContext(ctx, r)
}

// TraceFrom extracts the recorder carried by ctx, or nil.
func TraceFrom(ctx context.Context) *TraceRecorder { return trace.FromContext(ctx) }

// Audio types.
type (
	// Recording is a multi-channel microphone-array capture.
	Recording = audio.Recording
	// Buffer is a mono signal at a known sample rate.
	Buffer = audio.Buffer
)

// NewRecording returns a zeroed recording with the given channel count
// and per-channel length.
func NewRecording(sampleRate float64, channels, n int) *Recording {
	return audio.NewRecording(sampleRate, channels, n)
}

// ReadWAV decodes a 16-bit PCM (multi-channel) WAV stream. It is
// hardened against hostile input: bounded allocation, no panics, and
// typed *ErrMalformedWAV failures.
func ReadWAV(r io.Reader) (*Recording, error) { return audio.ReadWAV(r) }

// WriteWAV encodes a recording as 16-bit PCM WAV.
func WriteWAV(w io.Writer, rec *Recording) error { return audio.WriteWAV(w, rec) }

// Liveness detection.
type (
	// LivenessDetector distinguishes live humans from mechanical
	// speakers.
	LivenessDetector = liveness.Detector
	// ArrayFingerprint is the per-array spectral-signature liveness
	// gate: the long-term coloration the enrolled microphone array
	// imprints on everything it captures. Replayed audio crosses an
	// extra electro-acoustic chain and deviates from the signature.
	ArrayFingerprint = liveness.ArrayFingerprint
	// FingerprintConfig tunes array-fingerprint enrollment.
	FingerprintConfig = liveness.FingerprintConfig
	// LivenessEnsemble fuses the spectral detector and the array
	// fingerprint into one fail-closed liveness gate.
	LivenessEnsemble = liveness.Ensemble
	// LivenessEnsembleResult is one fused liveness check.
	LivenessEnsembleResult = liveness.EnsembleResult
)

// NewLivenessDetector returns an untrained detector seeded for
// reproducibility.
func NewLivenessDetector(seed uint64) *LivenessDetector {
	return liveness.NewDetector(seed)
}

// TrainArrayFingerprint learns an array's spectral signature from live
// enrollment captures (at least two, all from the same array).
func TrainArrayFingerprint(recs []*Recording, cfg FingerprintConfig) (*ArrayFingerprint, error) {
	return liveness.TrainArrayFingerprint(recs, cfg)
}

// Versioned model management (see internal/registry): an immutable,
// per-tenant model store with atomic hot-swap and rollback, shadow
// evaluation of candidate versions, online adaptation from accepted
// decisions, and drift detection. Attach one as Config.Models — the
// System resolves all of its gates through the registry with a single
// atomic load per decision, so promote/rollback never expose a torn
// model set and never require draining the serving engine.
type (
	// Registry is the versioned model store (implements ModelProvider).
	Registry = registry.Registry
	// RegistryConfig tunes a Registry (metrics, retention, adaptation,
	// drift detection, ensemble arming).
	RegistryConfig = registry.Config
	// ModelSet is one immutable view of every model a decision needs.
	ModelSet = registry.ModelSet
	// ModelProvider resolves the current ModelSet (Config.Models).
	ModelProvider = registry.Provider
	// StaticModels is the zero-machinery provider: one fixed ModelSet.
	StaticModels = registry.Static
	// ModelKind names a managed model family.
	ModelKind = registry.Kind
	// ModelState is a version's lifecycle position
	// (candidate → shadow → active → archived).
	ModelState = registry.State
	// ModelEnvelope is one sealed, checksummed model document — the
	// serialization enrollment artifacts and registries share.
	ModelEnvelope = registry.Envelope
	// ModelKindStatus summarizes one family's versions and lifecycle.
	ModelKindStatus = registry.KindStatus
	// ModelVersionInfo is one version's metadata.
	ModelVersionInfo = registry.VersionInfo
	// AdaptConfig tunes online adaptation from accepted decisions.
	AdaptConfig = registry.AdaptConfig
	// DriftConfig tunes the score-distribution drift detector.
	DriftConfig = registry.DriftConfig
	// DriftState is the drift detector's observable state.
	DriftState = registry.DriftState
)

// Managed model families.
const (
	KindOrientation      = registry.KindOrientation
	KindLiveness         = registry.KindLiveness
	KindArrayFingerprint = registry.KindArrayFingerprint
)

// Model version lifecycle states.
const (
	ModelStateCandidate = registry.StateCandidate
	ModelStateShadow    = registry.StateShadow
	ModelStateActive    = registry.StateActive
	ModelStateArchived  = registry.StateArchived
)

var (
	// ErrModelVersion rejects a model envelope from an unsupported
	// format version.
	ErrModelVersion = registry.ErrModelVersion
	// ErrModelCorrupt rejects a model envelope whose payload fails its
	// checksum or cannot decode.
	ErrModelCorrupt = registry.ErrModelCorrupt
)

// NewRegistry returns an empty versioned model registry.
func NewRegistry(cfg RegistryConfig) *Registry { return registry.New(cfg) }

// NewStaticModels wraps a fixed model set in a provider — the
// compatibility bridge for configurations that do not need versioning.
func NewStaticModels(set ModelSet) *StaticModels { return registry.NewStatic(set) }

// Orientation detection.
type (
	// OrientationModel classifies facing vs non-facing utterances.
	OrientationModel = orientation.Model
	// OrientationConfig parameterizes model training.
	OrientationConfig = orientation.ModelConfig
	// FacingDefinition is a Table III facing/non-facing arc
	// assignment.
	FacingDefinition = orientation.Definition
	// FeatureConfig controls orientation feature extraction.
	FeatureConfig = features.Config
)

// Orientation labels.
const (
	LabelNonFacing = orientation.LabelNonFacing
	LabelFacing    = orientation.LabelFacing
)

// Definition4 is the paper's winning facing/non-facing definition,
// used by default throughout.
var Definition4 = orientation.Definition4

// TrainOrientationModel fits the facing/non-facing SVM on feature
// vectors and labels.
func TrainOrientationModel(x [][]float64, y []int, cfg OrientationConfig) (*OrientationModel, error) {
	return orientation.Train(x, y, cfg)
}

// ExtractOrientationFeatures computes the paper's §III-B3 feature
// vector from a preprocessed multi-channel recording.
func ExtractOrientationFeatures(rec *Recording, cfg FeatureConfig) ([]float64, error) {
	return features.Extract(rec, cfg)
}

// DefaultFeatureConfig returns the feature configuration for a GCC lag
// window (±13 samples for the D2 array at 48 kHz).
func DefaultFeatureConfig(maxLag int, sampleRate float64) FeatureConfig {
	return features.DefaultConfig(maxLag, sampleRate)
}

// Simulation and synthetic data.
type (
	// Condition fully specifies one synthetic capture (room, device,
	// wake word, geometry, noise, replay source, ...).
	Condition = dataset.Condition
	// Sample is a generated capture: features plus optional waveform.
	Sample = dataset.Sample
	// Generator renders Conditions into Samples deterministically.
	Generator = dataset.Generator
	// Array is a prototype device's microphone array.
	Array = mic.Array
	// VoiceProfile is a synthetic speaker voice.
	VoiceProfile = speech.VoiceProfile
	// WakeWord is a scripted utterance.
	WakeWord = speech.WakeWord
	// Room is a shoebox room model.
	Room = room.Room
)

// NewGenerator returns a deterministic synthetic-corpus generator.
func NewGenerator(seed uint64) *Generator { return dataset.NewGenerator(seed) }

// Prototype devices (paper Table I).
func DeviceD1() *Array { return mic.DeviceD1() }
func DeviceD2() *Array { return mic.DeviceD2() }
func DeviceD3() *Array { return mic.DeviceD3() }

// Rooms from the paper's two environments.
func LabRoom() Room  { return room.LabRoom() }
func HomeRoom() Room { return room.HomeRoom() }

// The paper's wake words.
var (
	WordComputer     = speech.WordComputer
	WordAmazon       = speech.WordAmazon
	WordHeyAssistant = speech.WordHeyAssistant
)

// SynthesizeWakeWord renders a wake word with the given voice at
// sample rate fs.
func SynthesizeWakeWord(word WakeWord, voice VoiceProfile, fs float64, rng *rand.Rand) *Buffer {
	return speech.Synthesize(word, voice, fs, rng)
}

// DefaultVoice returns a neutral adult voice; RandomVoice draws a
// plausible speaker.
func DefaultVoice() VoiceProfile              { return speech.DefaultVoice() }
func RandomVoice(rng *rand.Rand) VoiceProfile { return speech.RandomVoice(rng) }

// Voice assistant simulation.
type (
	// Assistant wires a wake-word spotter to a HeadTalk controller and
	// logs cloud uploads.
	Assistant = va.Assistant
	// Spotter is a template-matching wake-word detector.
	Spotter = va.Spotter
	// Response is the assistant's reaction to audio.
	Response = va.Response
	// Listener turns a continuous audio stream into gated wake events.
	Listener = va.Listener
	// ListenerConfig sizes a Listener.
	ListenerConfig = va.ListenerConfig
	// Decider is the decision backend an Assistant routes wake words
	// through — a System directly, or an Engine to share its worker
	// pool (Assistant.UseDecider).
	Decider = va.Decider
)

// NewSpotter builds a wake-word spotter from synthesized templates.
func NewSpotter(word WakeWord, numTemplates int, seed uint64) (*Spotter, error) {
	return va.NewSpotter(word, numTemplates, seed)
}

// NewAssistant wires a spotter and a HeadTalk system into a simulated
// voice assistant.
func NewAssistant(name string, spotter *Spotter, sys *System) (*Assistant, error) {
	return va.NewAssistant(name, spotter, sys, nil)
}

// NewListener attaches a streaming wake-word listener to an assistant:
// feed it fixed-size capture frames and it returns gated wake events.
func NewListener(assistant *Assistant, cfg ListenerConfig) (*Listener, error) {
	return va.NewListener(assistant, cfg)
}
