package headtalk

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"headtalk/internal/audio"
	"headtalk/internal/features"
	"headtalk/internal/liveness"
	"headtalk/internal/orientation"
	"headtalk/internal/registry"
)

// cheapEnrollment builds an Enrollment without the slow Enroll flow:
// the orientation model trains on synthetic multi-channel noise whose
// inter-channel coherence differs by class, and the array fingerprint
// enrolls on four such captures. Liveness stays nil (orientation-only
// deployments are valid per LoadEnrollment).
func cheapEnrollment(t *testing.T) *Enrollment {
	t.Helper()
	rec := func(facing bool, seed uint64) *audio.Recording {
		rng := rand.New(rand.NewPCG(seed, 99))
		n := 24000
		r := audio.NewRecording(48000, 4, n)
		if facing {
			src := make([]float64, n+8)
			for i := range src {
				src[i] = rng.NormFloat64()
			}
			for c := 0; c < 4; c++ {
				copy(r.Channels[c], src[c:c+n])
				for i := range r.Channels[c] {
					r.Channels[c][i] += 0.1 * rng.NormFloat64()
				}
			}
		} else {
			for c := 0; c < 4; c++ {
				for i := range r.Channels[c] {
					r.Channels[c][i] = rng.NormFloat64()
				}
			}
		}
		return r
	}
	featCfg := features.DefaultConfig(13, 48000)
	var x [][]float64
	var y []int
	for i := 0; i < 14; i++ {
		facing := i%2 == 1
		f, err := features.Extract(rec(facing, uint64(i)), featCfg)
		if err != nil {
			t.Fatal(err)
		}
		x = append(x, f)
		label := orientation.LabelNonFacing
		if facing {
			label = orientation.LabelFacing
		}
		y = append(y, label)
	}
	m, err := orientation.Train(x, y, orientation.ModelConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var caps []*audio.Recording
	for i := 0; i < 4; i++ {
		caps = append(caps, rec(i%2 == 0, uint64(200+i)))
	}
	fp, err := liveness.TrainArrayFingerprint(caps, liveness.FingerprintConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return &Enrollment{Orientation: m, ArrayFingerprint: fp}
}

func TestSaveToWritesVerifiedEnvelopes(t *testing.T) {
	enr := cheapEnrollment(t)
	dir := t.TempDir()
	if err := enr.SaveTo(dir); err != nil {
		t.Fatal(err)
	}

	// Every file on disk is a sealed registry envelope of the right
	// kind — not a bare model document.
	for name, kind := range map[string]registry.Kind{
		"orientation.json": registry.KindOrientation,
		"fingerprint.json": registry.KindArrayFingerprint,
	} {
		env, err := registry.ReadEnvelopeFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if env.Kind != string(kind) {
			t.Fatalf("%s sealed as %q, want %q", name, env.Kind, kind)
		}
		if _, err := env.Open(); err != nil {
			t.Fatalf("%s failed integrity check straight off disk: %v", name, err)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "liveness.json")); !os.IsNotExist(err) {
		t.Fatal("liveness.json written despite no trained detector")
	}

	loaded, err := LoadEnrollment(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Liveness != nil {
		t.Fatal("liveness materialized from nothing")
	}
	// Round-tripped models serialize byte-identically to the originals.
	var a, b bytes.Buffer
	if err := enr.Orientation.Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := loaded.Orientation.Save(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("orientation model changed across save/load")
	}
	a.Reset()
	b.Reset()
	if err := enr.ArrayFingerprint.Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := loaded.ArrayFingerprint.Save(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("array fingerprint changed across save/load")
	}
}

func TestLoadEnrollmentLegacyBareFormat(t *testing.T) {
	// Pre-envelope enrollment directories hold the bare model JSON.
	// They must keep loading unchanged.
	enr := cheapEnrollment(t)
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := enr.Orientation.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "orientation.json"), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadEnrollment(dir)
	if err != nil {
		t.Fatalf("legacy bare-format directory failed to load: %v", err)
	}
	if loaded.Orientation == nil || loaded.ArrayFingerprint != nil || loaded.Liveness != nil {
		t.Fatalf("legacy load shape wrong: %+v", loaded)
	}
}

func TestLoadEnrollmentTypedErrors(t *testing.T) {
	enr := cheapEnrollment(t)
	dir := t.TempDir()
	if err := enr.SaveTo(dir); err != nil {
		t.Fatal(err)
	}
	orientPath := filepath.Join(dir, "orientation.json")
	pristine, err := os.ReadFile(orientPath)
	if err != nil {
		t.Fatal(err)
	}

	// Payload tampering → ErrModelCorrupt.
	var env registry.Envelope
	if err := json.Unmarshal(pristine, &env); err != nil {
		t.Fatal(err)
	}
	tampered := bytes.Replace(pristine, env.Payload[:20], append([]byte(nil), bytes.ToUpper(env.Payload[:20])...), 1)
	if bytes.Equal(tampered, pristine) {
		t.Fatal("tamper did not change the file")
	}
	if err := os.WriteFile(orientPath, tampered, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadEnrollment(dir); !errors.Is(err, registry.ErrModelCorrupt) {
		t.Fatalf("tampered payload: %v, want ErrModelCorrupt", err)
	}

	// Future envelope format version → ErrModelVersion.
	skewed := bytes.Replace(pristine,
		[]byte(fmt.Sprintf(`"version":%d`, registry.EnvelopeVersion)),
		[]byte(`"version":99`), 1)
	if bytes.Equal(skewed, pristine) {
		t.Fatal("version skew did not change the file")
	}
	if err := os.WriteFile(orientPath, skewed, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadEnrollment(dir); !errors.Is(err, registry.ErrModelVersion) {
		t.Fatalf("future envelope version: %v, want ErrModelVersion", err)
	}

	// A file holding the wrong model family → ErrModelCorrupt.
	fpBytes, err := os.ReadFile(filepath.Join(dir, "fingerprint.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(orientPath, fpBytes, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadEnrollment(dir); !errors.Is(err, registry.ErrModelCorrupt) {
		t.Fatalf("kind mismatch: %v, want ErrModelCorrupt", err)
	}
}

// TestWriteModelCrashSafety pins writeModel's atomicity contract: a
// save that dies mid-serialization leaves the previous complete file
// untouched and no temp litter; a successful save replaces the file
// whole. (The temp-file + fsync + rename discipline itself lives in
// registry.AtomicWriteFile, whose no-litter behavior registry's own
// tests pin — this guards the enrollment-side wiring.)
func TestWriteModelCrashSafety(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.json")
	old := []byte(`{"generation":"old"}`)
	if err := os.WriteFile(path, old, 0o644); err != nil {
		t.Fatal(err)
	}

	// Simulated crash: the serializer writes half a document, then dies.
	boom := errors.New("power cut")
	err := writeModel(path, func(w io.Writer) error {
		if _, err := w.Write([]byte(`{"generation":"ne`)); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("writeModel swallowed the failure: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, old) {
		t.Fatalf("failed save touched the destination: %q", got)
	}
	assertNoTempLitter(t, dir)

	// A good save lands the complete new document.
	fresh := []byte(`{"generation":"new"}`)
	if err := writeModel(path, func(w io.Writer) error {
		_, err := w.Write(fresh)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	got, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, fresh) {
		t.Fatalf("successful save wrote %q", got)
	}
	assertNoTempLitter(t, dir)
}

func assertNoTempLitter(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("temp litter left behind: %s", e.Name())
		}
	}
}

func TestEnrollmentRegistrySeedsActiveVersions(t *testing.T) {
	enr := cheapEnrollment(t)
	reg, err := enr.Registry(RegistryConfig{})
	if err != nil {
		t.Fatal(err)
	}
	vers := reg.ActiveVersions()
	if vers[KindOrientation] == 0 || vers[KindArrayFingerprint] == 0 {
		t.Fatalf("enrollment gates not active in the registry: %v", vers)
	}
	if _, ok := vers[KindLiveness]; ok {
		t.Fatal("untrained liveness gate installed")
	}
	set := reg.ModelSet()
	if set.Orientation == nil || set.ArrayFingerprint == nil {
		t.Fatal("registry set missing enrollment gates")
	}
}
