// Enrollment: how much training does HeadTalk need, and how does it
// age? This example sweeps the per-class enrollment size (the paper's
// Fig. 11 finding: ~20 samples/class suffice), then simulates a
// month-old room and shows confidence-filtered incremental learning
// recovering the lost accuracy (Fig. 15).
package main

import (
	"fmt"
	"log"

	"headtalk"
	"headtalk/internal/dataset"
	"headtalk/internal/orientation"
)

func main() {
	log.SetFlags(0)
	gen := headtalk.NewGenerator(47)

	// Build an enrollment pool (session 1) and a held-out test set
	// (session 2).
	fmt.Println("synthesizing enrollment pool and test set...")
	pool := collect(gen, 1, dataset.TemporalNow, 4)
	test := collect(gen, 2, dataset.TemporalNow, 2)
	testX, testY := split(test)

	fmt.Println("\nper-class enrollment size vs accuracy:")
	var model *headtalk.OrientationModel
	for _, n := range []int{5, 10, 20, 40} {
		x, y := balanced(pool, n)
		m, err := headtalk.TrainOrientationModel(x, y, headtalk.OrientationConfig{Seed: 47})
		if err != nil {
			log.Fatalf("train (n=%d): %v", n, err)
		}
		metrics, err := m.Evaluate(testX, testY)
		if err != nil {
			log.Fatalf("evaluate: %v", err)
		}
		fmt.Printf("  %3d samples/class -> accuracy %.1f%%  F1 %.1f%%\n",
			n, 100*metrics.Accuracy(), 100*metrics.F1())
		model = m
	}

	// A month later the room has changed: accuracy drops, then
	// recovers as the model absorbs its own confident predictions.
	fmt.Println("\na month later (furniture moved, voice drifted):")
	aged := collect(gen, 1, dataset.TemporalMonth, 3)
	agedX, agedY := split(aged)
	metrics, err := model.Evaluate(agedX, agedY)
	if err != nil {
		log.Fatalf("evaluate aged: %v", err)
	}
	fmt.Printf("  cold accuracy: %.1f%%\n", 100*metrics.Accuracy())

	absorbed, err := model.IncrementalUpdate(agedX[:len(agedX)/2], 0.8)
	if err != nil {
		log.Fatalf("incremental update: %v", err)
	}
	metrics, err = model.Evaluate(agedX[len(agedX)/2:], agedY[len(agedY)/2:])
	if err != nil {
		log.Fatalf("evaluate after update: %v", err)
	}
	fmt.Printf("  after absorbing %d confident samples: %.1f%%\n", absorbed, 100*metrics.Accuracy())
}

// labeledSample pairs features with a Definition-4 label.
type labeledSample struct {
	features []float64
	label    int
}

// collect gathers Definition-4-labeled captures for one session.
func collect(gen *headtalk.Generator, session int, temporal dataset.Temporal, reps int) []labeledSample {
	def := orientation.Definition4
	angles := append(append([]float64{}, def.Facing...), def.NonFacing...)
	var out []labeledSample
	for _, a := range angles {
		for _, dist := range dataset.Distances {
			for rep := 1; rep <= reps; rep++ {
				s, err := gen.Generate(headtalk.Condition{
					Session: session, Distance: dist, AngleDeg: a, Rep: rep, Temporal: temporal,
				})
				if err != nil {
					log.Fatalf("generate: %v", err)
				}
				label, _ := def.Label(a)
				out = append(out, labeledSample{s.Features, label})
			}
		}
	}
	return out
}

func split(samples []labeledSample) ([][]float64, []int) {
	x := make([][]float64, len(samples))
	y := make([]int, len(samples))
	for i, s := range samples {
		x[i] = s.features
		y[i] = s.label
	}
	return x, y
}

// balanced takes the first n samples of each class from the pool.
func balanced(pool []labeledSample, n int) ([][]float64, []int) {
	var x [][]float64
	var y []int
	counts := map[int]int{}
	for _, s := range pool {
		if counts[s.label] >= n {
			continue
		}
		counts[s.label]++
		x = append(x, s.features)
		y = append(y, s.label)
	}
	return x, y
}
