// Replay attack: an adversary records the owner's wake word and
// replays it through three different loudspeakers from the best
// possible position (facing the device at 1 m). The liveness gate
// rejects the replays that a stock voice assistant — and even a pure
// orientation check — would accept.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"headtalk"
	"headtalk/internal/dataset"
)

func main() {
	log.SetFlags(0)

	fmt.Println("enrolling HeadTalk...")
	enr, err := headtalk.Enroll(headtalk.EnrollmentOptions{Seed: 23, Progress: os.Stderr})
	if err != nil {
		log.Fatalf("enroll: %v", err)
	}
	sys, err := headtalk.NewSystem(headtalk.Config{
		Liveness:    enr.Liveness,
		Orientation: enr.Orientation,
	})
	if err != nil {
		log.Fatalf("new system: %v", err)
	}
	sys.SetMode(headtalk.ModeHeadTalk)

	gen := headtalk.NewGenerator(555)
	attacks := []string{"Sony SRS-X5", "Samsung Galaxy S21 Ultra", "Smart TV"}
	const trialsPer = 5

	fmt.Printf("\n%-28s  %-9s  %-9s\n", "replay device", "accepted", "blocked")
	accepted, blocked := 0, 0
	for _, dev := range attacks {
		devAccepted := 0
		for trial := 1; trial <= trialsPer; trial++ {
			rec, err := dataset.CaptureRecording(gen, headtalk.Condition{
				Distance: 1, AngleDeg: 0, Replay: dev, Rep: trial,
			})
			if err != nil {
				log.Fatalf("simulate attack: %v", err)
			}
			d, err := sys.ProcessWake(context.Background(), rec)
			if err != nil {
				log.Fatalf("process attack: %v", err)
			}
			sys.EndSession()
			if d.Accepted {
				devAccepted++
				accepted++
			} else {
				blocked++
			}
		}
		fmt.Printf("%-28s  %d/%d        %d/%d\n", dev, devAccepted, trialsPer, trialsPer-devAccepted, trialsPer)
	}

	// Control: the owner can still get in.
	ownerOK := 0
	const ownerTrials = 5
	for trial := 1; trial <= ownerTrials; trial++ {
		rec, err := dataset.CaptureRecording(gen, headtalk.Condition{
			Distance: 1, AngleDeg: 0, Rep: 100 + trial,
		})
		if err != nil {
			log.Fatalf("simulate owner: %v", err)
		}
		d, err := sys.ProcessWake(context.Background(), rec)
		if err != nil {
			log.Fatalf("process owner: %v", err)
		}
		sys.EndSession()
		if d.Accepted {
			ownerOK++
		}
	}

	fmt.Printf("\nreplay attacks blocked: %d/%d\n", blocked, accepted+blocked)
	fmt.Printf("owner (live, facing) accepted: %d/%d\n", ownerOK, ownerTrials)
}
