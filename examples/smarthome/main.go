// Smart home: a full assistant (wake-word spotter + HeadTalk core)
// lives through an evening of household audio — the owner asking for
// music while facing it, side conversation mentioning the wake word,
// and a TV saying it outright. The cloud-upload log shows what each
// privacy mode would have shipped off-device.
package main

import (
	"fmt"
	"log"
	"os"

	"headtalk"
	"headtalk/internal/dataset"
)

type event struct {
	label  string
	source string
	cond   headtalk.Condition
}

func main() {
	log.SetFlags(0)

	fmt.Println("enrolling HeadTalk and building the wake-word spotter...")
	enr, err := headtalk.Enroll(headtalk.EnrollmentOptions{Seed: 31, Progress: os.Stderr})
	if err != nil {
		log.Fatalf("enroll: %v", err)
	}
	spotter, err := headtalk.NewSpotter(headtalk.WordComputer, 4, 31)
	if err != nil {
		log.Fatalf("spotter: %v", err)
	}

	evening := []event{
		{"owner: 'Computer, play jazz' (facing, 2 m)", "owner",
			headtalk.Condition{Distance: 1, AngleDeg: 0, Rep: 1}},
		{"owner mentions 'computer' mid-chat (90° away)", "owner-chat",
			headtalk.Condition{Distance: 3, AngleDeg: 90, Rep: 2}},
		{"owner on the sofa, back turned (180°)", "owner-chat",
			headtalk.Condition{Distance: 3, AngleDeg: 180, Rep: 3}},
		{"TV character says 'computer'", "tv",
			headtalk.Condition{Distance: 3, AngleDeg: 0, Replay: "Smart TV", Rep: 4}},
		{"owner again, facing (follow-up)", "owner",
			headtalk.Condition{Distance: 1, AngleDeg: 0, Rep: 5}},
	}

	for _, mode := range []headtalk.Mode{headtalk.ModeNormal, headtalk.ModeHeadTalk} {
		sys, err := headtalk.NewSystem(headtalk.Config{
			Liveness:    enr.Liveness,
			Orientation: enr.Orientation,
		})
		if err != nil {
			log.Fatalf("new system: %v", err)
		}
		assistant, err := headtalk.NewAssistant("living-room", spotter, sys)
		if err != nil {
			log.Fatalf("assistant: %v", err)
		}
		sys.SetMode(mode)

		fmt.Printf("\n--- evening in %s mode ---\n", mode)
		gen := headtalk.NewGenerator(777) // same audio for both modes
		for _, ev := range evening {
			rec, err := dataset.CaptureRecording(gen, ev.cond)
			if err != nil {
				log.Fatalf("simulate %q: %v", ev.label, err)
			}
			resp, err := assistant.Hear(rec, ev.source)
			if err != nil {
				log.Fatalf("hear %q: %v", ev.label, err)
			}
			sys.EndSession()
			status := "ignored (no wake word heard)"
			if resp.WakeDetected {
				if resp.Uploaded {
					status = "UPLOADED to cloud — \"" + resp.Speech + "\""
				} else {
					status = "blocked — \"" + resp.Speech + "\""
				}
			}
			fmt.Printf("  %-46s %s\n", ev.label, status)
		}
		fmt.Printf("  uploads by source: %v\n", assistant.UploadsBySource())
	}
}
