// Quickstart: enroll HeadTalk on synthetic data, switch the system
// into HeadTalk mode and watch it accept a facing wake word while
// rejecting a turned-away one and a loudspeaker replay.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"headtalk"
	"headtalk/internal/dataset"
)

func main() {
	log.SetFlags(0)

	// 1. Enroll: synthesize the "first day of setup" corpus and train
	// both gates (orientation SVM + liveness conv-net).
	fmt.Println("enrolling (synthesizing training utterances)...")
	enr, err := headtalk.Enroll(headtalk.EnrollmentOptions{Seed: 11, Progress: os.Stderr})
	if err != nil {
		log.Fatalf("enroll: %v", err)
	}

	// 2. Build the privacy controller and enter HeadTalk mode.
	sys, err := headtalk.NewSystem(headtalk.Config{
		Liveness:    enr.Liveness,
		Orientation: enr.Orientation,
	})
	if err != nil {
		log.Fatalf("new system: %v", err)
	}
	sys.SetMode(headtalk.ModeHeadTalk)

	// 3. Simulate three wake-word events from the living room.
	gen := headtalk.NewGenerator(99)
	events := []struct {
		label string
		cond  headtalk.Condition
	}{
		{"owner facing the device (0°)", headtalk.Condition{AngleDeg: 0}},
		{"owner facing away (180°)", headtalk.Condition{AngleDeg: 180}},
		{"TV replaying the wake word", headtalk.Condition{AngleDeg: 0, Replay: "Smart TV"}},
	}
	for _, ev := range events {
		rec, err := dataset.CaptureRecording(gen, ev.cond)
		if err != nil {
			log.Fatalf("simulate %q: %v", ev.label, err)
		}
		decision, err := sys.ProcessWake(context.Background(), rec)
		if err != nil {
			log.Fatalf("process %q: %v", ev.label, err)
		}
		sys.EndSession() // evaluate each event independently
		fmt.Printf("%-32s -> accepted=%-5v (%s)\n", ev.label, decision.Accepted, decision.Reason)
	}
}
