// Benchmarks: one per paper table/figure (regenerating the experiment
// at the tiny corpus scale; run cmd/experiments for the full-size
// tables), plus unit benchmarks for the pipeline stages including the
// paper's §IV-B15 runtime measurements.
package headtalk

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"runtime"
	"sync"
	"testing"
	"time"

	"headtalk/internal/audio"
	"headtalk/internal/core"
	"headtalk/internal/dataset"
	"headtalk/internal/dsp"
	"headtalk/internal/eval"
	"headtalk/internal/features"
	"headtalk/internal/liveness"
	"headtalk/internal/mic"
	"headtalk/internal/ml"
	"headtalk/internal/orientation"
	"headtalk/internal/registry"
	"headtalk/internal/room"
	"headtalk/internal/speech"
	"headtalk/internal/srp"
	"headtalk/internal/stream"
	"headtalk/internal/va"
)

// benchRunner is shared across experiment benchmarks so corpus
// generation is amortized through the runner's sample cache.
var (
	benchRunnerOnce sync.Once
	benchRunnerInst *eval.Runner
)

func benchRunner() *eval.Runner {
	benchRunnerOnce.Do(func() {
		benchRunnerInst = eval.NewRunner(eval.Options{Seed: 42, Scale: dataset.ScaleTiny})
	})
	return benchRunnerInst
}

// benchExperiment reruns a registered experiment per iteration. The
// first iteration includes corpus generation; later iterations measure
// the training/evaluation work on cached samples.
func benchExperiment(b *testing.B, name string) {
	b.Helper()
	e, err := eval.Lookup(name)
	if err != nil {
		b.Fatal(err)
	}
	r := benchRunner()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(r); err != nil {
			b.Fatal(err)
		}
	}
}

// --- one benchmark per paper table/figure ---

func BenchmarkFig3Spectra(b *testing.B)          { benchExperiment(b, "fig3") }
func BenchmarkFig6GCCSRPCurves(b *testing.B)     { benchExperiment(b, "fig6") }
func BenchmarkLivenessEER(b *testing.B)          { benchExperiment(b, "liveness") }
func BenchmarkTable3Definitions(b *testing.B)    { benchExperiment(b, "definitions") }
func BenchmarkFig10PerAngle(b *testing.B)        { benchExperiment(b, "perangle") }
func BenchmarkClassifierComparison(b *testing.B) { benchExperiment(b, "classifiers") }
func BenchmarkFig11TrainingSize(b *testing.B)    { benchExperiment(b, "trainsize") }
func BenchmarkDistance(b *testing.B)             { benchExperiment(b, "distance") }
func BenchmarkFig12WakeWords(b *testing.B)       { benchExperiment(b, "wakewords") }
func BenchmarkFig13Devices(b *testing.B)         { benchExperiment(b, "devices") }
func BenchmarkFig14Environments(b *testing.B)    { benchExperiment(b, "environments") }
func BenchmarkTable4MicCount(b *testing.B)       { benchExperiment(b, "miccount") }
func BenchmarkPlacement(b *testing.B)            { benchExperiment(b, "placement") }
func BenchmarkCrossEnvironment(b *testing.B)     { benchExperiment(b, "crossenv") }
func BenchmarkFig15Temporal(b *testing.B)        { benchExperiment(b, "temporal") }
func BenchmarkAmbientNoise(b *testing.B)         { benchExperiment(b, "noise") }
func BenchmarkSitting(b *testing.B)              { benchExperiment(b, "sitting") }
func BenchmarkLoudness(b *testing.B)             { benchExperiment(b, "loudness") }
func BenchmarkSurroundingObjects(b *testing.B)   { benchExperiment(b, "objects") }
func BenchmarkFig16CrossUser(b *testing.B)       { benchExperiment(b, "crossuser") }
func BenchmarkDoVBaseline(b *testing.B)          { benchExperiment(b, "dov") }
func BenchmarkUserStudy(b *testing.B)            { benchExperiment(b, "userstudy") }

// --- ablation benchmarks (DESIGN.md design-choice index) ---

func BenchmarkAblationPHATWeighting(b *testing.B) { benchExperiment(b, "ablation-phat") }
func BenchmarkAblationFeatureGroups(b *testing.B) { benchExperiment(b, "ablation-features") }

// --- extension experiments ---

func BenchmarkExtMovingSpeaker(b *testing.B)      { benchExperiment(b, "moving") }
func BenchmarkExtDeviceSelection(b *testing.B)    { benchExperiment(b, "deviceselect") }
func BenchmarkExtOverlappingTalkers(b *testing.B) { benchExperiment(b, "overlap") }
func BenchmarkExtTrajectories(b *testing.B)       { benchExperiment(b, "trajectory") }
func BenchmarkExtArrayFusion(b *testing.B)        { benchExperiment(b, "fusion") }
func BenchmarkExtLivenessEnsemble(b *testing.B)   { benchExperiment(b, "ensemble") }

// BenchmarkAblationSimImageOrder measures capture cost at image orders
// 1 and 2 (the simulator-fidelity tradeoff DESIGN.md calls out).
func BenchmarkAblationSimImageOrder(b *testing.B) {
	for _, order := range []int{1, 2} {
		b.Run(map[int]string{1: "order1", 2: "order2"}[order], func(b *testing.B) {
			gen := dataset.NewGenerator(1)
			gen.ImageOrder = order
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := gen.Generate(dataset.Condition{AngleDeg: 0, Rep: i + 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- pipeline-stage benchmarks (§IV-B15 runtime) ---

// benchCapture renders one capture for the unit benchmarks.
func benchCapture(b *testing.B) *audio.Recording {
	b.Helper()
	gen := dataset.NewGenerator(77)
	rec, err := dataset.CaptureRecording(gen, dataset.Condition{})
	if err != nil {
		b.Fatal(err)
	}
	return rec
}

func BenchmarkSynthesizeWakeWord(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 2))
	voice := speech.DefaultVoice()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		speech.Synthesize(speech.WordComputer, voice, 48000, rng)
	}
}

func BenchmarkCaptureSimulation(b *testing.B) {
	gen := dataset.NewGenerator(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dataset.CaptureRecording(gen, dataset.Condition{Rep: i + 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGenerateSample(b *testing.B) {
	gen := dataset.NewGenerator(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gen.Generate(dataset.Condition{Rep: i + 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRuntimeOrientation measures the on-device orientation path
// the paper times at 136 ms on a PC: feature extraction plus SVM
// prediction on a preprocessed 4-channel capture.
func BenchmarkRuntimeOrientation(b *testing.B) {
	rec := benchCapture(b)
	cfg := features.DefaultConfig(13, 48000)
	// A small trained model (content irrelevant to the timing).
	var x [][]float64
	var y []int
	gen := dataset.NewGenerator(5)
	for i := 0; i < 10; i++ {
		angle := 0.0
		label := orientation.LabelFacing
		if i%2 == 0 {
			angle = 180
			label = orientation.LabelNonFacing
		}
		s, err := gen.Generate(dataset.Condition{AngleDeg: angle, Rep: i + 1})
		if err != nil {
			b.Fatal(err)
		}
		x = append(x, s.Features)
		y = append(y, label)
	}
	model, err := orientation.Train(x, y, orientation.ModelConfig{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		feats, err := features.Extract(rec, cfg)
		if err != nil {
			b.Fatal(err)
		}
		model.Predict(feats)
	}
}

// BenchmarkRuntimeLiveness measures the liveness path the paper times
// at 42 ms on a PC: filterbank frontend plus network forward pass on
// one mono utterance.
func BenchmarkRuntimeLiveness(b *testing.B) {
	rng := rand.New(rand.NewPCG(6, 7))
	det := liveness.NewDetector(1)
	det.Config().Epochs = 2
	var waveforms [][]float64
	var labels []int
	for i := 0; i < 8; i++ {
		buf := speech.Synthesize(speech.WordComputer, speech.RandomVoice(rng), 16000, rng)
		waveforms = append(waveforms, buf.Samples)
		labels = append(labels, i%2)
	}
	if err := det.Train(waveforms, 16000, labels); err != nil {
		b.Fatal(err)
	}
	probe := waveforms[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := det.Score(probe, 16000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRuntimeShadowScoring measures the serving-path tax of
// shadow evaluation: the full wake decision with and without a
// candidate model scoring every request alongside the active one. The
// registry's budget is <10% added p50 latency, which holds because the
// shadow reuses the active gate's feature vector — its marginal cost
// is one extra SVM prediction, not a second extraction.
func BenchmarkRuntimeShadowScoring(b *testing.B) {
	rec := benchCapture(b)
	featCfg := features.DefaultConfig(13, 48000)
	train := func(genSeed uint64) *orientation.Model {
		var x [][]float64
		var y []int
		gen := dataset.NewGenerator(genSeed)
		for i := 0; i < 10; i++ {
			angle := 0.0
			label := orientation.LabelFacing
			if i%2 == 0 {
				angle = 180
				label = orientation.LabelNonFacing
			}
			s, err := gen.Generate(dataset.Condition{AngleDeg: angle, Rep: i + 1})
			if err != nil {
				b.Fatal(err)
			}
			x = append(x, s.Features)
			y = append(y, label)
		}
		model, err := orientation.Train(x, y, orientation.ModelConfig{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		return model
	}
	active, shadow := train(8), train(9)
	for _, tc := range []struct {
		name   string
		shadow *orientation.Model
	}{
		{"noshadow", nil},
		{"shadow", shadow},
	} {
		b.Run(tc.name, func(b *testing.B) {
			sys, err := core.NewSystem(core.Config{
				SessionTimeout: time.Minute,
				Features:       featCfg,
				Models: registry.NewStatic(registry.ModelSet{
					Orientation: active,
					Shadow:      tc.shadow,
				}),
			})
			if err != nil {
				b.Fatal(err)
			}
			sys.SetMode(core.ModeHeadTalk)
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Close the session so every iteration takes the full
				// orientation (and shadow) path, not the session shortcut.
				sys.EndSession()
				if _, err := sys.ProcessWake(ctx, rec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkPreprocessBandpass(b *testing.B) {
	rec := benchCapture(b)
	bp, err := dsp.NewButterworthBandPass(5, 100, 16000, 48000)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, ch := range rec.Channels {
			bp.Apply(ch)
		}
	}
}

func BenchmarkGCCPHATPair(b *testing.B) {
	rec := benchCapture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := srp.GCCPHATBand(rec.Channels[0], rec.Channels[1], 13, 48000, 100, 8000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOrientationFeatureVector(b *testing.B) {
	rec := benchCapture(b)
	cfg := features.DefaultConfig(13, 48000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := features.Extract(rec, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSVMTrain200(b *testing.B) {
	rng := rand.New(rand.NewPCG(8, 9))
	var x [][]float64
	var y []int
	for i := 0; i < 200; i++ {
		cls := i % 2
		base := -1.0
		if cls == 1 {
			base = 1
		}
		row := make([]float64, 50)
		for j := range row {
			row[j] = base + rng.NormFloat64()
		}
		x = append(x, row)
		y = append(y, cls)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		svm := ml.NewSVM(10, ml.RBFKernel{Gamma: 0.02})
		svm.Seed = uint64(i + 1)
		if err := svm.Fit(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSteeredPowerMap(b *testing.B) {
	rec := benchCapture(b)
	array := mic.DeviceD2()
	positions := array.Place(room.LabRoom().Dims.Scale(0.5))
	pairs, err := srp.AllPairs(rec.Channels, srp.PairOptions{MaxLag: 13, PHAT: true, SampleRate: 48000, BandLo: 100, BandHi: 8000})
	if err != nil {
		b.Fatal(err)
	}
	selPos := positions[:4]
	azimuths := make([]float64, 72)
	for i := range azimuths {
		azimuths[i] = float64(i*5) - 180
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srp.SteeredPowerMap(selPos, pairs, 13, 48000, 340, azimuths)
	}
}

// BenchmarkPipelineStages times each DSP-bound serving-pipeline stage
// in isolation on one synthesized capture — the per-stage breakdown of
// the paper's §IV-B15 runtime table, and the trajectory benchmark for
// the planned-FFT engine (every stage below funnels into dsp plans).
func BenchmarkPipelineStages(b *testing.B) {
	rec := benchCapture(b)
	mono := rec.Mono()
	spotter, err := va.NewSpotter(speech.WordComputer, 4, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("spotter", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			spotter.Detect(mono, rec.SampleRate)
		}
	})
	b.Run("liveness-frontend", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := liveness.Frames(mono, rec.SampleRate); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("gcc-allpairs", func(b *testing.B) {
		opt := srp.PairOptions{MaxLag: 13, PHAT: true, SampleRate: 48000, BandLo: 100, BandHi: 8000}
		for i := 0; i < b.N; i++ {
			if _, err := srp.AllPairs(rec.Channels, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("welch-psd", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := dsp.WelchPSD(mono, 1024); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("features", func(b *testing.B) {
		cfg := features.DefaultConfig(13, 48000)
		for i := 0; i < b.N; i++ {
			if _, err := features.Extract(rec, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	// Streaming variants: the per-chunk cost of the continuous-listening
	// cascade. "stream-ingest" is the silence fast path (validate, ring
	// write, energy exit); "stream-spot" adds decimation, fingerprinting
	// and online template scoring on an audible chunk. Both are 10 ms
	// chunks, so audio_s/s is the real-time factor per session.
	newStreamManager := func(b *testing.B) *stream.Manager {
		m, err := stream.NewManager(stream.Config{
			SampleRate:   48000,
			Channels:     4,
			Spotter:      spotter,
			JanitorEvery: -1,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(m.Close)
		return m
	}
	streamChunk := func(amp float64) [][]float64 {
		rng := rand.New(rand.NewPCG(9, 9))
		chunk := make([][]float64, 4)
		for c := range chunk {
			chunk[c] = make([]float64, 480)
			for i := range chunk[c] {
				chunk[c][i] = amp * rng.NormFloat64()
			}
		}
		return chunk
	}
	for _, bc := range []struct {
		name string
		amp  float64
	}{{"stream-ingest", 0}, {"stream-spot", 0.2}} {
		b.Run(bc.name, func(b *testing.B) {
			m := newStreamManager(b)
			chunk := streamChunk(bc.amp)
			ctx := context.Background()
			// Warm-up push: session creation (ring allocation) is
			// one-time, not steady-state cost.
			if _, err := m.Push(ctx, "bench", chunk); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.Push(ctx, "bench", chunk); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(0.01*float64(b.N)/b.Elapsed().Seconds(), "audio_s/s")
		})
	}
}

// streamBenchFeed returns a padded wake-word utterance at 48 kHz
// replicated across 4 channels, plus the same samples as a Recording
// for the batch baseline.
func streamBenchFeed() ([][]float64, *Recording) {
	rng := rand.New(rand.NewPCG(42, 0x5b07734))
	buf := speech.Synthesize(speech.WordComputer, speech.RandomVoice(rng), 48000, rng)
	pad := make([]float64, 9600)
	mono := append(append(append([]float64(nil), pad...), buf.Samples...), pad...)
	feed := make([][]float64, 4)
	rec := audio.NewRecording(48000, 4, len(mono))
	for c := range feed {
		feed[c] = mono
		copy(rec.Channels[c], mono)
	}
	return feed, rec
}

// BenchmarkStreamEndToEnd compares continuous-listening ingest against
// the batch path on the same trained system and the same wake-word
// audio: "streaming" pushes 10 ms chunks through the early-exit cascade
// until the spotted candidate's bounded window is decided; "batch" runs
// the full recording through the pipeline in one call. audio_s/s is
// audio seconds processed per wall second.
func BenchmarkStreamEndToEnd(b *testing.B) {
	engineBenchSetup()
	if engineBenchErr != nil {
		b.Fatal(engineBenchErr)
	}
	feed, rec := streamBenchFeed()
	spotter, err := va.NewSpotter(speech.WordComputer, 4, 1)
	if err != nil {
		b.Fatal(err)
	}
	feedSeconds := float64(len(feed[0])) / 48000

	b.Run("streaming", func(b *testing.B) {
		eng, err := NewEngine(EngineConfig{
			System:  engineBenchSys,
			Workers: 2,
			Streaming: &stream.Config{
				SampleRate:   48000,
				Channels:     4,
				Spotter:      spotter,
				JanitorEvery: -1,
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := eng.Start(); err != nil {
			b.Fatal(err)
		}
		defer eng.Close()
		chunk := make([][]float64, 4)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sid := fmt.Sprintf("s%d", i)
			decided := false
			for start := 0; start < len(feed[0]) && !decided; start += 480 {
				end := start + 480
				if end > len(feed[0]) {
					end = len(feed[0])
				}
				for c := range chunk {
					chunk[c] = feed[c][start:end]
				}
				res, err := eng.PushFrames(context.Background(), sid, chunk)
				if err != nil {
					b.Fatal(err)
				}
				decided = res.Status == stream.StatusDecided
			}
			if !decided {
				b.Fatal("feed ended without a decision")
			}
			if _, err := eng.EndSession(sid); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(feedSeconds*float64(b.N)/b.Elapsed().Seconds(), "audio_s/s")
	})

	b.Run("batch", func(b *testing.B) {
		eng, err := NewEngine(EngineConfig{System: engineBenchSys, Workers: 2})
		if err != nil {
			b.Fatal(err)
		}
		if err := eng.Start(); err != nil {
			b.Fatal(err)
		}
		defer eng.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Decide(context.Background(), rec); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(feedSeconds*float64(b.N)/b.Elapsed().Seconds(), "audio_s/s")
	})
}

// --- serving-layer benchmarks ---

// engineBenchState shares the trained system and the fixed wake-word
// batch across worker-count sweeps so each sub-benchmark measures only
// serving throughput.
var (
	engineBenchOnce  sync.Once
	engineBenchSys   *System
	engineBenchModel *orientation.Model
	engineBenchBatch []*Recording
	engineBenchErr   error
)

func engineBenchSetup() {
	engineBenchOnce.Do(func() {
		gen := dataset.NewGenerator(21)
		var x [][]float64
		var y []int
		for i := 0; i < 10; i++ {
			angle := 0.0
			label := orientation.LabelFacing
			if i%2 == 0 {
				angle = 180
				label = orientation.LabelNonFacing
			}
			s, err := gen.Generate(dataset.Condition{AngleDeg: angle, Rep: i + 1})
			if err != nil {
				engineBenchErr = err
				return
			}
			x = append(x, s.Features)
			y = append(y, label)
		}
		model, err := orientation.Train(x, y, orientation.ModelConfig{Seed: 1})
		if err != nil {
			engineBenchErr = err
			return
		}
		engineBenchModel = model
		sys, err := NewSystem(Config{Orientation: model})
		if err != nil {
			engineBenchErr = err
			return
		}
		sys.SetMode(ModeHeadTalk)
		engineBenchSys = sys
		// Fixed batch of synthesized wake words, facing and not.
		for i := 0; i < 8; i++ {
			rec, err := dataset.CaptureRecording(gen, dataset.Condition{
				AngleDeg: float64((i % 2) * 180),
				Rep:      100 + i,
			})
			if err != nil {
				engineBenchErr = err
				return
			}
			engineBenchBatch = append(engineBenchBatch, rec)
		}
	})
}

// BenchmarkEngineThroughput sweeps the serving engine's worker count
// over a fixed batch of synthesized wake words, reporting
// decisions/sec — the serving-layer perf baseline. Decisions/sec
// should improve monotonically from 1 to 4 workers on a multi-core
// machine (each worker owns its DSP state, so the pipeline has no
// shared locks on the hot path).
func BenchmarkEngineThroughput(b *testing.B) {
	benchEngineThroughput(b, false)
}

// BenchmarkEngineThroughputTraced is the same sweep with a trace store
// enabled, so `make bench` records the traced-vs-untraced delta. The
// tracing acceptance bound is ≤5% throughput overhead.
func BenchmarkEngineThroughputTraced(b *testing.B) {
	benchEngineThroughput(b, true)
}

func benchEngineThroughput(b *testing.B, traced bool) {
	engineBenchSetup()
	if engineBenchErr != nil {
		b.Fatal(engineBenchErr)
	}
	counts := []int{1, 2, 4}
	if n := runtime.NumCPU(); n > 4 {
		counts = append(counts, n)
	}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := EngineConfig{
				System:    engineBenchSys,
				Workers:   workers,
				QueueSize: 4 * workers,
			}
			if traced {
				cfg.Traces = NewTraceStore(0, 0)
				cfg.Traces.SetEnabled(true)
			}
			eng, err := NewEngine(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if err := eng.Start(); err != nil {
				b.Fatal(err)
			}
			var wg sync.WaitGroup
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rec := engineBenchBatch[i%len(engineBenchBatch)]
				wg.Add(1)
				for {
					_, err := eng.Submit(context.Background(), ServeRequest{
						Recording: rec,
						Callback:  func(ServeResult) { wg.Done() },
					})
					if err == nil {
						break
					}
					if errors.Is(err, ErrQueueFull) {
						runtime.Gosched() // backpressure: retry
						continue
					}
					b.Fatal(err)
				}
			}
			wg.Wait()
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "decisions/s")
			if err := eng.Close(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkEngineThroughputBatched sweeps the batch collector's size
// (off = the per-request worker, then MaxBatch 1/4/8) at a fixed
// worker count, reporting decisions/sec. The system disables the
// facing-session shortcut (negative SessionTimeout) so every decision
// runs the full orientation path — the DSP work the batched
// forward-FFT sweep amortizes; with the shortcut on, steady state
// skips the DSP entirely and batching has nothing to batch. batch=1
// measures the collector's bookkeeping against the off baseline (the
// latency-overhead acceptance bound is 10%).
func BenchmarkEngineThroughputBatched(b *testing.B) {
	engineBenchSetup()
	if engineBenchErr != nil {
		b.Fatal(engineBenchErr)
	}
	sys, err := NewSystem(Config{Orientation: engineBenchModel, SessionTimeout: -1})
	if err != nil {
		b.Fatal(err)
	}
	sys.SetMode(ModeHeadTalk)
	const workers = 4
	for _, maxBatch := range []int{0, 1, 4, 8} {
		name := fmt.Sprintf("batch=%d", maxBatch)
		if maxBatch == 0 {
			name = "batch=off"
		}
		b.Run(name, func(b *testing.B) {
			eng, err := NewEngine(EngineConfig{
				System:    sys,
				Workers:   workers,
				QueueSize: 64,
				MaxBatch:  maxBatch,
			})
			if err != nil {
				b.Fatal(err)
			}
			if err := eng.Start(); err != nil {
				b.Fatal(err)
			}
			var wg sync.WaitGroup
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rec := engineBenchBatch[i%len(engineBenchBatch)]
				wg.Add(1)
				for {
					_, err := eng.Submit(context.Background(), ServeRequest{
						Recording: rec,
						Callback:  func(ServeResult) { wg.Done() },
					})
					if err == nil {
						break
					}
					if errors.Is(err, ErrQueueFull) {
						runtime.Gosched() // backpressure: retry
						continue
					}
					b.Fatal(err)
				}
			}
			wg.Wait()
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "decisions/s")
			if err := eng.Close(); err != nil {
				b.Fatal(err)
			}
		})
	}
}
