package serve

// Tests for engine-level tracing: store-driven auto-tracing on
// Submit/Decide, queue-wait/pickup spans, per-request forced tracing,
// and the guarantee that untraced requests carry no trace.

import (
	"context"
	"testing"

	"headtalk/internal/core"
	"headtalk/internal/trace"
)

// newTracedEngine builds a started Normal-mode engine with a trace
// store attached.
func newTracedEngine(t *testing.T, enabled bool) (*Engine, *trace.Store) {
	t.Helper()
	sys, err := core.NewSystem(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	store := trace.NewStore(16, trace.DefaultSlowThreshold)
	store.SetEnabled(enabled)
	eng, err := NewEngine(Config{System: sys, Workers: 1, QueueSize: 8, Traces: store})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = eng.Close() })
	return eng, store
}

func TestEngineAutoTracing(t *testing.T) {
	eng, store := newTracedEngine(t, true)
	ch, err := eng.Submit(context.Background(), Request{ID: "a", Recording: testRecording(1)})
	if err != nil {
		t.Fatal(err)
	}
	res := <-ch
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.TraceID == "" || res.Trace == nil {
		t.Fatalf("result carries no trace: %+v", res)
	}
	tr := res.Trace
	if _, ok := tr.Span(trace.StageQueueWait); !ok {
		t.Fatalf("queue_wait span missing: %+v", tr.Spans())
	}
	if _, ok := tr.Span(trace.StagePickup); !ok {
		t.Fatalf("pickup span missing: %+v", tr.Spans())
	}
	if _, ok := tr.Span(trace.StageValidate); !ok {
		t.Fatalf("validate span missing: %+v", tr.Spans())
	}
	if tr.Reason != "normal_mode" || !tr.Accepted {
		t.Fatalf("trace outcome %+v", tr)
	}
	recent := store.Recent(0)
	if len(recent) != 1 || recent[0].ID != res.TraceID {
		t.Fatalf("store recent %+v, want the served trace", recent)
	}
}

func TestEngineTracingOffByDefault(t *testing.T) {
	eng, store := newTracedEngine(t, false)
	ch, err := eng.Submit(context.Background(), Request{ID: "b", Recording: testRecording(2)})
	if err != nil {
		t.Fatal(err)
	}
	res := <-ch
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.TraceID != "" || res.Trace != nil {
		t.Fatalf("tracing-off result carries a trace: %+v", res)
	}
	if got := store.Recent(0); len(got) != 0 {
		t.Fatalf("store filled while disabled: %+v", got)
	}
}

// TestEngineForcedPerRequestTrace: a caller-supplied recorder is
// honored (and retained) even while the store switch is off.
func TestEngineForcedPerRequestTrace(t *testing.T) {
	eng, store := newTracedEngine(t, false)
	r := store.NewRecorder()
	ctx := trace.NewContext(context.Background(), r)
	ch, err := eng.Submit(ctx, Request{ID: "c", Recording: testRecording(3)})
	if err != nil {
		t.Fatal(err)
	}
	res := <-ch
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.TraceID != r.ID() || res.Trace == nil {
		t.Fatalf("forced trace not delivered: %+v", res)
	}
	recent := store.Recent(0)
	if len(recent) != 1 || recent[0].ID != r.ID() {
		t.Fatalf("forced trace not retained: %+v", recent)
	}
}

func TestDecideTraced(t *testing.T) {
	eng, store := newTracedEngine(t, true)
	if _, err := eng.Decide(context.Background(), testRecording(4)); err != nil {
		t.Fatal(err)
	}
	recent := store.Recent(0)
	if len(recent) != 1 {
		t.Fatalf("Decide left %d traces, want 1", len(recent))
	}
	if _, ok := recent[0].Span(trace.StageQueueWait); !ok {
		t.Fatalf("queue_wait span missing: %+v", recent[0].Spans())
	}
}
