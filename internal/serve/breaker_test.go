package serve

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"headtalk/internal/audio"
	"headtalk/internal/core"
	"headtalk/internal/metrics"
)

// fakeClock is a mutable time source for breaker cooldown tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func TestBreakerTripsAtThreshold(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(3, time.Second, clk.Now, nil)
	for i := 0; i < 2; i++ {
		if ok, _ := b.Allow(); !ok {
			t.Fatalf("breaker closed prematurely after %d failures", i)
		}
		b.Record(false, false)
	}
	if s, n := b.Snapshot(); s != BreakerClosed || n != 2 {
		t.Fatalf("state = %s/%d, want closed/2", s, n)
	}
	if ok, _ := b.Allow(); !ok {
		t.Fatal("third request should still be allowed")
	}
	b.Record(false, false)
	if s, _ := b.Snapshot(); s != BreakerOpen {
		t.Fatalf("state after threshold = %s, want open", s)
	}
	if ok, _ := b.Allow(); ok {
		t.Fatal("open breaker must reject")
	}
}

func TestBreakerSuccessResetsStreak(t *testing.T) {
	b := NewBreaker(2, time.Second, newFakeClock().Now, nil)
	b.Record(false, false)
	b.Record(true, false) // success resets the streak
	b.Record(false, false)
	if s, n := b.Snapshot(); s != BreakerClosed || n != 1 {
		t.Fatalf("state = %s/%d after non-consecutive failures, want closed/1", s, n)
	}
	b.Record(false, false)
	if s, _ := b.Snapshot(); s != BreakerOpen {
		t.Fatal("two consecutive failures should trip threshold-2 breaker")
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(1, time.Second, clk.Now, nil)
	b.Record(false, false)
	if s, _ := b.Snapshot(); s != BreakerOpen {
		t.Fatal("threshold-1 breaker should open on first failure")
	}
	if ok, _ := b.Allow(); ok {
		t.Fatal("breaker must reject before cooldown")
	}
	clk.Advance(time.Second)
	ok, probe := b.Allow()
	if !ok || !probe {
		t.Fatalf("after cooldown allow = (%v, %v), want probe", ok, probe)
	}
	// While the probe is in flight everything else is rejected.
	if ok, _ := b.Allow(); ok {
		t.Fatal("half-open breaker must admit only the probe")
	}
	// Probe failure re-opens for another cooldown.
	b.Record(false, true)
	if s, _ := b.Snapshot(); s != BreakerOpen {
		t.Fatal("failed probe should re-open the breaker")
	}
	if ok, _ := b.Allow(); ok {
		t.Fatal("re-opened breaker must reject until the next cooldown")
	}
	clk.Advance(time.Second)
	if ok, probe := b.Allow(); !ok || !probe {
		t.Fatal("second cooldown should admit a new probe")
	}
	b.Record(true, true)
	if s, n := b.Snapshot(); s != BreakerClosed || n != 0 {
		t.Fatalf("after successful probe state = %s/%d, want closed/0", s, n)
	}
}

func TestBreakerLateResultWhileOpenIgnored(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(1, time.Minute, clk.Now, nil)
	okA, probeA := b.Allow() // in-flight non-probe task
	if !okA || probeA {
		t.Fatal("first allow should be a plain admit")
	}
	b.Record(false, false) // trips the breaker
	// The earlier task finishes successfully while the breaker is open;
	// only a probe may close it.
	b.Record(true, false)
	if s, _ := b.Snapshot(); s != BreakerOpen {
		t.Fatal("late non-probe success must not close an open breaker")
	}
}

func TestBreakerDisabled(t *testing.T) {
	b := NewBreaker(-1, time.Second, newFakeClock().Now, nil)
	for i := 0; i < 100; i++ {
		b.Record(false, false)
	}
	if ok, probe := b.Allow(); !ok || probe {
		t.Fatal("disabled breaker must always admit")
	}
	if s, n := b.Snapshot(); s != BreakerClosed || n != 0 {
		t.Fatalf("disabled breaker snapshot = %s/%d", s, n)
	}
}

func TestBreakerStateStrings(t *testing.T) {
	cases := map[BreakerState]string{
		BreakerClosed: "closed", BreakerOpen: "open",
		BreakerHalfOpen: "half_open", BreakerState(7): "unknown",
	}
	for s, want := range cases {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
}

// TestWorkerPanicIsolation: an induced pipeline panic costs exactly one
// submission — delivered as a fail-closed reject carrying
// *ErrPipelinePanic — and the worker keeps serving.
func TestWorkerPanicIsolation(t *testing.T) {
	reg := metrics.NewRegistry()
	sys, err := core.NewSystem(core.Config{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	var panicNext atomic.Bool
	eng, err := NewEngine(Config{
		System: sys, Workers: 1, QueueSize: 8, Metrics: reg,
		BreakerThreshold: -1, // isolate panic handling from the breaker
		FaultHook: func(rec *audio.Recording) *audio.Recording {
			if panicNext.Load() {
				panic("injected: simulated DSP crash")
			}
			return rec
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = eng.Close() })

	panicNext.Store(true)
	d, err := eng.Decide(context.Background(), testRecording(40))
	if !IsPanic(err) {
		t.Fatalf("err = %v, want *ErrPipelinePanic", err)
	}
	var pe *ErrPipelinePanic
	errors.As(err, &pe)
	if pe.Value != "injected: simulated DSP crash" || !strings.Contains(pe.Stack, "runPipeline") {
		t.Fatalf("panic detail = %+v", pe.Value)
	}
	if d.Accepted || d.Reason != core.ReasonPanic {
		t.Fatalf("panic decision %+v must fail closed with ReasonPanic", d)
	}

	// The same worker must survive and serve the next request.
	panicNext.Store(false)
	d, err = eng.Decide(context.Background(), testRecording(41))
	if err != nil || !d.Accepted {
		t.Fatalf("post-panic decision %+v, err %v", d, err)
	}
	h := eng.HealthSnapshot()
	if h.Panics != 1 || !h.Healthy {
		t.Fatalf("health after recovery = %+v", h)
	}
}

// TestEngineBreakerTripAndRecover drives the breaker end to end through
// the engine: repeated induced panics trip it, open rejects are
// fail-closed ReasonUnhealthy without running the pipeline, and after
// cooldown a successful probe restores service.
func TestEngineBreakerTripAndRecover(t *testing.T) {
	reg := metrics.NewRegistry()
	sys, err := core.NewSystem(core.Config{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	clk := newFakeClock()
	var failing atomic.Bool
	eng, err := NewEngine(Config{
		System: sys, Workers: 1, QueueSize: 8, Metrics: reg,
		BreakerThreshold: 3, BreakerCooldown: 10 * time.Second, Clock: clk.Now,
		FaultHook: func(rec *audio.Recording) *audio.Recording {
			if failing.Load() {
				panic("injected: persistent fault")
			}
			return rec
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = eng.Close() })

	failing.Store(true)
	for i := 0; i < 3; i++ {
		if _, err := eng.Decide(context.Background(), testRecording(50+uint64(i))); !IsPanic(err) {
			t.Fatalf("decision %d err = %v, want panic", i, err)
		}
	}
	h := eng.HealthSnapshot()
	if h.Breaker != "open" || h.Healthy {
		t.Fatalf("health after trip = %+v, want open breaker", h)
	}

	// Open: reject fast, fail closed, pipeline untouched.
	d, err := eng.Decide(context.Background(), testRecording(60))
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open-breaker err = %v, want ErrBreakerOpen", err)
	}
	if d.Accepted || d.Reason != core.ReasonUnhealthy {
		t.Fatalf("open-breaker decision %+v must fail closed", d)
	}

	// Cooldown elapses and the fault clears: the half-open probe
	// succeeds and service resumes.
	failing.Store(false)
	clk.Advance(10 * time.Second)
	d, err = eng.Decide(context.Background(), testRecording(61))
	if err != nil || !d.Accepted {
		t.Fatalf("probe decision %+v, err %v", d, err)
	}
	h = eng.HealthSnapshot()
	if h.Breaker != "closed" || !h.Healthy || h.BreakerRejected == 0 {
		t.Fatalf("health after recovery = %+v", h)
	}
	d, err = eng.Decide(context.Background(), testRecording(62))
	if err != nil || !d.Accepted {
		t.Fatalf("post-recovery decision %+v, err %v", d, err)
	}
}

// TestBadInputDoesNotTripBreaker: a flood of malformed requests is a
// client problem, not engine ill-health — the breaker must stay closed
// so well-formed requests keep being served.
func TestBadInputDoesNotTripBreaker(t *testing.T) {
	reg := metrics.NewRegistry()
	sys, err := core.NewSystem(core.Config{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(Config{
		System: sys, Workers: 1, QueueSize: 8, Metrics: reg,
		BreakerThreshold: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = eng.Close() })

	for i := 0; i < 6; i++ {
		bad := audio.NewRecording(48000, 2, 0) // empty channels: BadEmpty
		d, err := eng.Decide(context.Background(), bad)
		if err == nil || d.Accepted {
			t.Fatalf("malformed request %d: decision %+v, err %v", i, d, err)
		}
		if _, ok := audio.AsBadInput(err); !ok {
			t.Fatalf("err %v should chain to ErrBadInput", err)
		}
	}
	h := eng.HealthSnapshot()
	if h.Breaker != "closed" || !h.Healthy {
		t.Fatalf("health after bad-input flood = %+v, want closed breaker", h)
	}
	if d, err := eng.Decide(context.Background(), testRecording(70)); err != nil || !d.Accepted {
		t.Fatalf("well-formed decision %+v, err %v", d, err)
	}
}

func TestHealthSnapshotLifecycle(t *testing.T) {
	sys, err := core.NewSystem(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(Config{System: sys, Workers: 2, QueueSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	if h := eng.HealthSnapshot(); h.State != "new" || h.Healthy {
		t.Fatalf("pre-start health = %+v", h)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	h := eng.HealthSnapshot()
	if h.State != "running" || !h.Healthy || h.Workers != 2 || h.QueueCapacity != 4 {
		t.Fatalf("running health = %+v", h)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if h := eng.HealthSnapshot(); h.State != "closed" || h.Healthy {
		t.Fatalf("post-close health = %+v", h)
	}
}
