package serve

import (
	"context"
	"errors"

	"headtalk/internal/audio"
	"headtalk/internal/core"
	"headtalk/internal/stream"
	"headtalk/internal/trace"
)

// ErrNoStream is returned by the streaming methods of an engine built
// without Config.Streaming.
var ErrNoStream = errors.New("serve: streaming not configured")

// buildStreams attaches the continuous-listening front end configured
// by cfg.Streaming. The manager's Decide is wired into this engine's
// queue — a spotted candidate becomes an ordinary engine decision, so
// it obeys the same backpressure, breaker and tracing as batch
// requests — and its Metrics and Clock default to the engine's own.
func (e *Engine) buildStreams() error {
	sc := *e.cfg.Streaming // copy: never mutate the caller's config
	if sc.Metrics == nil {
		sc.Metrics = e.cfg.Metrics
	}
	if sc.Clock == nil {
		sc.Clock = e.cfg.Clock
	}
	sc.Decide = e.streamDecide
	m, err := stream.NewManager(sc)
	if err != nil {
		return err
	}
	e.streams = m
	return nil
}

// streamDecide runs a spotted candidate window through the engine,
// first recording the streaming-side ingest and spot spans on the
// request's trace so a streamed decision's timeline starts at frame
// ingest, not at enqueue.
func (e *Engine) streamDecide(ctx context.Context, rec *audio.Recording, spans stream.SpanDurations) (core.Decision, error) {
	ctx = e.maybeTrace(ctx)
	tr := trace.FromContext(ctx)
	tr.Observe(trace.StageIngest, spans.Ingest)
	tr.Observe(trace.StageSpot, spans.Spot)
	return e.Decide(ctx, rec)
}

// Streams returns the engine's streaming session manager (nil when
// streaming is not configured).
func (e *Engine) Streams() *stream.Manager { return e.streams }

// PushFrames feeds one multichannel chunk into the named streaming
// session (created on first push) and runs the early-exit cascade: a
// chunk that fails validation, the energy floor or the wake-word
// spotter never enters the decision queue. Only a spotted candidate
// window reaches the pipeline, as a regular engine decision whose
// outcome rides back on the PushResult.
func (e *Engine) PushFrames(ctx context.Context, sessionID string, frame [][]float64) (stream.PushResult, error) {
	if e.streams == nil {
		return stream.PushResult{}, ErrNoStream
	}
	return e.streams.Push(ctx, sessionID, frame)
}

// EndSession removes one streaming session, reporting whether it
// existed. It errors only when streaming is not configured.
func (e *Engine) EndSession(sessionID string) (bool, error) {
	if e.streams == nil {
		return false, ErrNoStream
	}
	return e.streams.End(sessionID), nil
}

// closeStreams shuts the streaming front end down (idempotent,
// nil-safe). Called from Drain before waiting on workers so no new
// streamed candidates can chase a closing queue.
func (e *Engine) closeStreams() {
	if e.streams != nil {
		e.streams.Close()
	}
}
