// Package serve turns the HeadTalk pipeline into a concurrent
// decision-serving engine: a pool of workers — each owning its own
// preprocessing state so the DSP hot path never contends on a lock —
// fed by a bounded submission queue with explicit backpressure and
// per-request deadlines. It is the layer a production deployment puts
// between the network (or capture loops) and core.System, where
// throughput, tail latency and graceful degradation are managed.
//
// Lifecycle: NewEngine → Start → {Submit | Decide}* → Drain/Close.
// Once a submission is accepted into the queue it is delivered exactly
// once — either a decision or the request's deadline error — even
// across Close. New submissions after Drain/Close fail with ErrClosed;
// submissions while the queue is full fail fast with ErrQueueFull so
// callers can shed load instead of piling up.
package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"headtalk/internal/audio"
	"headtalk/internal/core"
	"headtalk/internal/metrics"
	"headtalk/internal/stream"
	"headtalk/internal/trace"
)

// Sentinel errors returned by Submit/Decide.
var (
	// ErrQueueFull is the backpressure signal: the bounded submission
	// queue is at capacity. Callers should shed or retry with backoff.
	ErrQueueFull = errors.New("serve: submission queue full")
	// ErrClosed is returned once Drain or Close has begun.
	ErrClosed = errors.New("serve: engine closed")
	// ErrNotStarted is returned when submitting before Start.
	ErrNotStarted = errors.New("serve: engine not started")
	// ErrBreakerOpen is carried by Results while the circuit breaker
	// rejects fast: the pipeline has failed repeatedly and is assumed
	// unhealthy, so decisions fail closed without running it.
	ErrBreakerOpen = errors.New("serve: circuit breaker open, rejecting fast")
)

// ErrPipelinePanic is the typed error a Result carries when the
// decision pipeline panicked. The worker recovers the panic, rebuilds
// its preprocessing state and keeps serving — a panic costs one
// submission (delivered as a fail-closed reject), never a worker.
type ErrPipelinePanic struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack captured at recovery.
	Stack string
}

// Error implements error.
func (e *ErrPipelinePanic) Error() string {
	return fmt.Sprintf("serve: pipeline panic: %v", e.Value)
}

// IsPanic reports whether err chains to an *ErrPipelinePanic.
func IsPanic(err error) bool {
	var pe *ErrPipelinePanic
	return errors.As(err, &pe)
}

// Config assembles an Engine.
type Config struct {
	// System is the HeadTalk controller decisions run against
	// (required).
	System *core.System
	// Workers is the worker-pool size (default runtime.NumCPU()).
	Workers int
	// QueueSize bounds the submission queue (default 64). When full,
	// Submit fails with ErrQueueFull; Decide blocks for space until
	// its context expires.
	QueueSize int
	// MaxBatch, when > 1, turns each worker into a batch collector:
	// after dequeuing one request the worker gathers up to MaxBatch-1
	// more (waiting at most GatherDelay), then runs the whole batch
	// through the core pipeline's batched DSP schedule
	// (core.System.ProcessWakeBatchWith), which forward-transforms and
	// whitens every item's channels in one sweep over a shared FFT
	// plan. Per-request semantics — deadlines, breaker admission,
	// tracing, exactly-once delivery — are unchanged; batching only
	// reschedules the DSP. Values <= 1 disable batching (default).
	MaxBatch int
	// GatherDelay bounds how long a batching worker waits for its batch
	// to fill after the first request arrives (default 2ms when
	// MaxBatch > 1). It is the extra tail latency the first request of
	// an under-full batch pays for the batched sweep; under load the
	// batch fills from the queue without waiting.
	GatherDelay time.Duration
	// Metrics receives engine instrumentation (queue depth/wait,
	// decision latency, accept/reject/expired counts). Nil creates a
	// private registry; pass the same registry given to core.Config
	// to get engine and per-gate metrics in one place.
	Metrics *metrics.Registry
	// BreakerThreshold is the consecutive pipeline-failure count
	// (errors and panics; not bad input, deadline expiries or
	// backpressure) that trips the circuit breaker into reject-fast
	// (default 8; negative disables the breaker).
	BreakerThreshold int
	// BreakerCooldown is how long the tripped breaker rejects fast
	// before letting one half-open probe through (default 5 s).
	BreakerCooldown time.Duration
	// Clock abstracts time for the breaker's cooldown (tests inject a
	// fake); nil uses time.Now.
	Clock func() time.Time
	// FaultHook, when non-nil, intercepts every recording just before
	// the pipeline runs and may return a replacement. It exists for
	// fault injection (internal/faultinject): chaos tests use it to
	// model corrupted frames, dropped channels, slow stages and induced
	// panics. A panic inside the hook is recovered exactly like a
	// pipeline panic. Leave nil in production.
	FaultHook func(*audio.Recording) *audio.Recording
	// Traces, when non-nil, retains per-decision stage traces. While
	// the store's switch is enabled, every Submit/Decide whose context
	// does not already carry a trace.Recorder gets one; finished traces
	// land in the store's rings, and Results carry the trace. A
	// caller-supplied recorder in the context (per-request tracing) is
	// honored and stored regardless of the switch. Nil disables tracing
	// entirely — the hot path then performs no clock reads or
	// allocations for it.
	Traces *trace.Store
	// Streaming, when non-nil, attaches a continuous-listening ingest
	// front end (internal/stream): per-session ring buffers fed by
	// PushFrames, an online wake-word spotter, and an early-exit
	// cascade that only enqueues spotted candidate windows as engine
	// decisions. The manager's Decide is wired to this engine (any
	// caller-set Decide is overridden); its Metrics and Clock default
	// to the engine's. Drain/Close also close the session manager.
	Streaming *stream.Config
}

// Request is one decision to serve.
type Request struct {
	// ID is echoed back on the Result for correlation.
	ID string
	// Recording is the wake-word utterance from the microphone array.
	Recording *audio.Recording
	// Callback, when non-nil, receives the Result from the worker
	// goroutine instead of a channel delivery. Callbacks must be
	// quick or hand off; they run on the worker.
	Callback func(Result)
}

// Result is the outcome of one served request.
type Result struct {
	ID       string
	Decision core.Decision
	// Err is non-nil when the pipeline failed or the request's
	// deadline expired while it was still queued.
	Err error
	// QueueWait is the time spent in the submission queue.
	QueueWait time.Duration
	// Total is queue wait plus pipeline time.
	Total time.Duration
	// TraceID and Trace carry the decision's stage trace when tracing
	// was active for this request (Config.Traces enabled, or a
	// recorder supplied via the submission context). The Trace is
	// finished and must not be mutated.
	TraceID string
	Trace   *trace.Trace
}

// task is a queued request with its delivery plumbing.
type task struct {
	req      Request
	ctx      context.Context
	enqueued time.Time
	out      chan Result // buffered(1); nil when req.Callback is set
}

// engine lifecycle states.
const (
	stateNew = iota
	stateRunning
	stateClosed // draining or drained; no new submissions
)

// Engine is a concurrent decision-serving engine. All methods are
// safe for concurrent use.
type Engine struct {
	cfg     Config
	queue   chan *task
	wg      sync.WaitGroup
	breaker *Breaker
	streams *stream.Manager

	// mu guards state. Submitters hold it shared (RLock) while
	// sending so close(queue) — taken under the exclusive lock —
	// can never race a send.
	mu    sync.RWMutex
	state int

	ins engineInstruments
}

// engineInstruments caches metric handles for the hot path.
type engineInstruments struct {
	submitted    *metrics.Counter
	completed    *metrics.Counter
	queueFull    *metrics.Counter
	closed       *metrics.Counter
	expired      *metrics.Counter
	failed       *metrics.Counter
	panics       *metrics.Counter
	breakerFast  *metrics.Counter
	queueDepth   *metrics.Gauge
	workers      *metrics.Gauge
	breakerState *metrics.Gauge
	queueWait    *metrics.Histogram
	decisionLat  *metrics.Histogram
	batchSize    *metrics.Histogram
	batchFill    *metrics.Gauge
}

// batchSizeBounds buckets the serve.batch.size histogram by gathered
// batch size (counts, not seconds).
var batchSizeBounds = []float64{1, 2, 4, 8, 16, 32}

// NewEngine validates cfg and returns an engine; call Start before
// submitting.
func NewEngine(cfg Config) (*Engine, error) {
	if cfg.System == nil {
		return nil, fmt.Errorf("serve: engine needs a core.System")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.NumCPU()
	}
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = 64
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	if cfg.BreakerThreshold == 0 {
		cfg.BreakerThreshold = 8
	}
	if cfg.BreakerCooldown == 0 {
		cfg.BreakerCooldown = 5 * time.Second
	}
	if cfg.MaxBatch > 1 && cfg.GatherDelay <= 0 {
		cfg.GatherDelay = 2 * time.Millisecond
	}
	r := cfg.Metrics
	e := &Engine{
		cfg:   cfg,
		state: stateNew,
		ins: engineInstruments{
			submitted:    r.Counter("serve.submitted.total"),
			completed:    r.Counter("serve.completed.total"),
			queueFull:    r.Counter("serve.rejected.queue_full"),
			closed:       r.Counter("serve.rejected.closed"),
			expired:      r.Counter("serve.expired.deadline"),
			failed:       r.Counter("serve.failed.pipeline"),
			panics:       r.Counter("serve.worker.panics.total"),
			breakerFast:  r.Counter("serve.breaker.rejected"),
			queueDepth:   r.Gauge("serve.queue.depth"),
			workers:      r.Gauge("serve.workers"),
			breakerState: r.Gauge("serve.breaker.state"),
			queueWait:    r.Histogram("serve.queue.wait", nil),
			decisionLat:  r.Histogram("serve.decision.latency", nil),
		},
	}
	if cfg.MaxBatch > 1 {
		// Registered only when batching is on, so a per-request engine's
		// metric surface (and every scrape of it) is unchanged.
		e.ins.batchSize = r.Histogram("serve.batch.size", batchSizeBounds)
		e.ins.batchFill = r.Gauge("serve.batch.occupancy")
	}
	e.breaker = NewBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown, cfg.Clock, e.ins.breakerState)
	if cfg.Streaming != nil {
		if err := e.buildStreams(); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// Metrics returns the engine's registry (its own or the shared one
// from Config).
func (e *Engine) Metrics() *metrics.Registry { return e.cfg.Metrics }

// Snapshot scrapes the engine's metrics registry.
func (e *Engine) Snapshot() metrics.Snapshot { return e.cfg.Metrics.Snapshot() }

// Workers returns the configured pool size.
func (e *Engine) Workers() int { return e.cfg.Workers }

// Start launches the worker pool. It errors if the engine was already
// started or closed.
func (e *Engine) Start() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	switch e.state {
	case stateRunning:
		return fmt.Errorf("serve: engine already started")
	case stateClosed:
		return ErrClosed
	}
	e.queue = make(chan *task, e.cfg.QueueSize)
	e.state = stateRunning
	e.ins.workers.Set(int64(e.cfg.Workers))
	for i := 0; i < e.cfg.Workers; i++ {
		e.wg.Add(1)
		go e.worker()
	}
	return nil
}

// worker drains the queue with its own preprocessing state until the
// queue is closed by Drain/Close. Panics anywhere in the pipeline are
// recovered per task: the submission is delivered as a fail-closed
// reject carrying *ErrPipelinePanic, the preprocessor is rebuilt (its
// biquad state may be mid-update), and the worker keeps serving.
func (e *Engine) worker() {
	defer e.wg.Done()
	p := e.cfg.System.NewPreprocessor()
	if e.cfg.MaxBatch > 1 {
		e.batchWorker(p)
		return
	}
	for t := range e.queue {
		e.ins.queueDepth.Add(-1)
		wait := time.Since(t.enqueued)
		e.ins.queueWait.ObserveDuration(wait)
		tr := trace.FromContext(t.ctx)
		tr.Observe(trace.StageQueueWait, wait)
		pickup := tr.Begin()
		res := Result{ID: t.req.ID, QueueWait: wait}
		switch {
		case t.ctx.Err() != nil:
			// The deadline lapsed while the request sat in the queue;
			// don't burn pipeline time on a decision nobody waits for.
			res.Err = t.ctx.Err()
			e.ins.expired.Inc()
			tr.SetOutcome("", false, "expired")
		default:
			allowed, probe := e.breaker.Allow()
			if !allowed {
				// Breaker open: fail closed without touching the
				// pipeline.
				res.Decision = core.Decision{Accepted: false, Reason: core.ReasonUnhealthy}
				res.Err = ErrBreakerOpen
				e.ins.breakerFast.Inc()
				tr.SetOutcome("", false, core.ReasonUnhealthy.Slug())
				break
			}
			tr.End(trace.StagePickup, pickup)
			start := time.Now()
			d, err, panicked := e.runPipeline(t.ctx, p, t.req.Recording)
			res.Decision = d
			res.Err = err
			res.Total = wait + time.Since(start)
			e.ins.decisionLat.ObserveDuration(res.Total)
			if err != nil {
				e.ins.failed.Inc()
			}
			if panicked {
				// The panic may have interrupted the biquad cascade
				// mid-update; a fresh clone is cheap insurance.
				p = e.cfg.System.NewPreprocessor()
				tr.SetOutcome("", false, core.ReasonPanic.Slug())
			}
			e.breaker.Record(!breakerFailure(err), probe)
		}
		e.deliver(t, res)
	}
}

// deliver finishes a task's trace and hands its Result to the caller —
// callback or buffered channel — exactly once.
func (e *Engine) deliver(t *task, res Result) {
	if tr := trace.FromContext(t.ctx); tr != nil {
		ft := tr.Finish()
		res.TraceID = ft.ID
		res.Trace = ft
		e.cfg.Traces.Add(ft) // nil-safe: stores only when a store exists
	}
	e.ins.completed.Inc()
	if t.req.Callback != nil {
		t.req.Callback(res)
	} else {
		t.out <- res // buffered(1): never blocks, delivered once
	}
}

// runPipeline executes one decision with panic isolation. A recovered
// panic returns a fail-closed reject (ReasonPanic) and a typed
// *ErrPipelinePanic carrying the panic value and stack.
func (e *Engine) runPipeline(ctx context.Context, p *core.Preprocessor, rec *audio.Recording) (d core.Decision, err error, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			d = core.Decision{Accepted: false, Reason: core.ReasonPanic}
			err = &ErrPipelinePanic{Value: r, Stack: string(debug.Stack())}
			panicked = true
			e.ins.panics.Inc()
		}
	}()
	if e.cfg.FaultHook != nil {
		rec = e.cfg.FaultHook(rec)
	}
	d, err = e.cfg.System.ProcessWakeWith(ctx, p, rec)
	return d, err, false
}

// breakerFailure reports whether a pipeline error indicates engine
// ill-health. Per-request input problems (typed bad-input rejections)
// don't count: a flood of malformed requests must not take the engine
// away from well-formed ones.
func breakerFailure(err error) bool {
	if err == nil {
		return false
	}
	if _, ok := audio.AsBadInput(err); ok {
		return false
	}
	return true
}

// Health is a point-in-time snapshot of the engine's serving fitness,
// suitable for a daemon's health endpoint or log line.
type Health struct {
	// State is the lifecycle state: "new", "running" or "closed".
	State string
	// Workers is the configured pool size.
	Workers int
	// QueueDepth and QueueCapacity describe the submission queue.
	QueueDepth    int
	QueueCapacity int
	// Breaker is the circuit-breaker position ("closed", "open",
	// "half_open") and ConsecutiveFailures its current failure streak.
	Breaker             string
	ConsecutiveFailures int
	// Counters since Start.
	Panics          uint64
	Submitted       uint64
	Completed       uint64
	BreakerRejected uint64
	// Healthy is true when the engine is running and the breaker is
	// closed — i.e. new submissions are being served normally.
	Healthy bool
}

// HealthSnapshot reports the engine's current serving fitness.
func (e *Engine) HealthSnapshot() Health {
	e.mu.RLock()
	state := e.state
	var depth int
	if e.queue != nil {
		depth = len(e.queue)
	}
	e.mu.RUnlock()
	bs, streak := e.breaker.Snapshot()
	h := Health{
		Workers:             e.cfg.Workers,
		QueueDepth:          depth,
		QueueCapacity:       e.cfg.QueueSize,
		Breaker:             bs.String(),
		ConsecutiveFailures: streak,
		Panics:              e.ins.panics.Value(),
		Submitted:           e.ins.submitted.Value(),
		Completed:           e.ins.completed.Value(),
		BreakerRejected:     e.ins.breakerFast.Value(),
	}
	switch state {
	case stateNew:
		h.State = "new"
	case stateRunning:
		h.State = "running"
	default:
		h.State = "closed"
	}
	h.Healthy = state == stateRunning && bs == BreakerClosed
	return h
}

// maybeTrace wraps ctx with a store-issued recorder when automatic
// tracing is on and the caller did not already supply one. With
// tracing off (nil store or switch off) this is two cheap checks and
// no allocation, keeping the untraced submit path unchanged.
func (e *Engine) maybeTrace(ctx context.Context) context.Context {
	if !e.cfg.Traces.Enabled() || trace.FromContext(ctx) != nil {
		return ctx
	}
	return trace.NewContext(ctx, e.cfg.Traces.NewRecorder())
}

// Traces returns the engine's trace store (nil when tracing is not
// configured).
func (e *Engine) Traces() *trace.Store { return e.cfg.Traces }

// enqueue places a task on the queue. block selects Decide semantics
// (wait for space until ctx expires) versus Submit semantics (fail
// fast with ErrQueueFull).
func (e *Engine) enqueue(t *task, block bool) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	switch e.state {
	case stateNew:
		return ErrNotStarted
	case stateClosed:
		e.ins.closed.Inc()
		return ErrClosed
	}
	// Count the slot before sending so the depth gauge never dips
	// negative when a worker dequeues immediately.
	e.ins.queueDepth.Add(1)
	if block {
		select {
		case e.queue <- t:
		case <-t.ctx.Done():
			e.ins.queueDepth.Add(-1)
			return t.ctx.Err()
		}
	} else {
		select {
		case e.queue <- t:
		default:
			e.ins.queueDepth.Add(-1)
			e.ins.queueFull.Inc()
			return ErrQueueFull
		}
	}
	e.ins.submitted.Inc()
	return nil
}

// Submit enqueues a request asynchronously. With no Callback the
// returned channel receives exactly one Result; with a Callback the
// channel is nil and the callback fires instead. Submit never blocks:
// a full queue returns ErrQueueFull immediately (backpressure), a
// drained/closed engine returns ErrClosed. ctx bounds the request's
// time in queue: if it expires before a worker picks the request up,
// the Result carries ctx's error and the pipeline is skipped.
func (e *Engine) Submit(ctx context.Context, req Request) (<-chan Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if req.Recording == nil {
		return nil, fmt.Errorf("serve: request %q has no recording", req.ID)
	}
	t := &task{req: req, ctx: e.maybeTrace(ctx), enqueued: time.Now()}
	if req.Callback == nil {
		t.out = make(chan Result, 1)
	}
	if err := e.enqueue(t, false); err != nil {
		return nil, err
	}
	return t.out, nil
}

// Decide is the blocking API: it enqueues (waiting for queue space if
// necessary), then waits for the decision. ctx bounds the whole wait.
func (e *Engine) Decide(ctx context.Context, rec *audio.Recording) (core.Decision, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if rec == nil {
		return core.Decision{}, fmt.Errorf("serve: nil recording")
	}
	t := &task{
		req:      Request{Recording: rec},
		ctx:      e.maybeTrace(ctx),
		enqueued: time.Now(),
		out:      make(chan Result, 1),
	}
	if err := e.enqueue(t, true); err != nil {
		return core.Decision{}, err
	}
	select {
	case res := <-t.out:
		return res.Decision, res.Err
	case <-ctx.Done():
		// The worker will still process and deliver into the buffered
		// channel; the caller just stopped waiting.
		return core.Decision{}, ctx.Err()
	}
}

// ProcessWake adapts the engine to the same shape as
// core.System.ProcessWake (and va.Decider), serving the decision
// through the worker pool.
func (e *Engine) ProcessWake(ctx context.Context, rec *audio.Recording) (core.Decision, error) {
	return e.Decide(ctx, rec)
}

// TripBreaker forces the circuit breaker open, as if the failure
// threshold had just been crossed: every subsequent decision fails
// closed with ErrBreakerOpen until the cooldown admits a half-open
// probe (or ResetBreaker is called). It is an operational control — a
// pool or daemon uses it to put one tenant into reject-fast
// maintenance without touching the others. No-op when the breaker is
// disabled.
func (e *Engine) TripBreaker() { e.breaker.ForceOpen() }

// ResetBreaker closes the circuit breaker and clears its failure
// streak, immediately restoring normal serving. No-op when the breaker
// is disabled.
func (e *Engine) ResetBreaker() { e.breaker.ForceClose() }

// Drain stops accepting new submissions and waits for every queued
// and in-flight request to finish, bounded by ctx. Already-accepted
// requests are still delivered exactly once. Drain is idempotent;
// concurrent calls all wait for completion.
func (e *Engine) Drain(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	e.mu.Lock()
	switch e.state {
	case stateNew:
		e.state = stateClosed
		e.mu.Unlock()
		e.closeStreams()
		return nil
	case stateRunning:
		e.state = stateClosed
		close(e.queue) // safe: submitters hold mu.RLock while sending
	}
	e.mu.Unlock()
	e.closeStreams()

	done := make(chan struct{})
	go func() {
		e.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain interrupted with work in flight: %w", ctx.Err())
	}
}

// Close drains with no deadline: it finishes all in-flight work and
// releases the workers. Safe to call more than once.
func (e *Engine) Close() error { return e.Drain(context.Background()) }
