// Package serve turns the HeadTalk pipeline into a concurrent
// decision-serving engine: a pool of workers — each owning its own
// preprocessing state so the DSP hot path never contends on a lock —
// fed by a bounded submission queue with explicit backpressure and
// per-request deadlines. It is the layer a production deployment puts
// between the network (or capture loops) and core.System, where
// throughput, tail latency and graceful degradation are managed.
//
// Lifecycle: NewEngine → Start → {Submit | Decide}* → Drain/Close.
// Once a submission is accepted into the queue it is delivered exactly
// once — either a decision or the request's deadline error — even
// across Close. New submissions after Drain/Close fail with ErrClosed;
// submissions while the queue is full fail fast with ErrQueueFull so
// callers can shed load instead of piling up.
package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"headtalk/internal/audio"
	"headtalk/internal/core"
	"headtalk/internal/metrics"
)

// Sentinel errors returned by Submit/Decide.
var (
	// ErrQueueFull is the backpressure signal: the bounded submission
	// queue is at capacity. Callers should shed or retry with backoff.
	ErrQueueFull = errors.New("serve: submission queue full")
	// ErrClosed is returned once Drain or Close has begun.
	ErrClosed = errors.New("serve: engine closed")
	// ErrNotStarted is returned when submitting before Start.
	ErrNotStarted = errors.New("serve: engine not started")
)

// Config assembles an Engine.
type Config struct {
	// System is the HeadTalk controller decisions run against
	// (required).
	System *core.System
	// Workers is the worker-pool size (default runtime.NumCPU()).
	Workers int
	// QueueSize bounds the submission queue (default 64). When full,
	// Submit fails with ErrQueueFull; Decide blocks for space until
	// its context expires.
	QueueSize int
	// Metrics receives engine instrumentation (queue depth/wait,
	// decision latency, accept/reject/expired counts). Nil creates a
	// private registry; pass the same registry given to core.Config
	// to get engine and per-gate metrics in one place.
	Metrics *metrics.Registry
}

// Request is one decision to serve.
type Request struct {
	// ID is echoed back on the Result for correlation.
	ID string
	// Recording is the wake-word utterance from the microphone array.
	Recording *audio.Recording
	// Callback, when non-nil, receives the Result from the worker
	// goroutine instead of a channel delivery. Callbacks must be
	// quick or hand off; they run on the worker.
	Callback func(Result)
}

// Result is the outcome of one served request.
type Result struct {
	ID       string
	Decision core.Decision
	// Err is non-nil when the pipeline failed or the request's
	// deadline expired while it was still queued.
	Err error
	// QueueWait is the time spent in the submission queue.
	QueueWait time.Duration
	// Total is queue wait plus pipeline time.
	Total time.Duration
}

// task is a queued request with its delivery plumbing.
type task struct {
	req      Request
	ctx      context.Context
	enqueued time.Time
	out      chan Result // buffered(1); nil when req.Callback is set
}

// engine lifecycle states.
const (
	stateNew = iota
	stateRunning
	stateClosed // draining or drained; no new submissions
)

// Engine is a concurrent decision-serving engine. All methods are
// safe for concurrent use.
type Engine struct {
	cfg   Config
	queue chan *task
	wg    sync.WaitGroup

	// mu guards state. Submitters hold it shared (RLock) while
	// sending so close(queue) — taken under the exclusive lock —
	// can never race a send.
	mu    sync.RWMutex
	state int

	ins engineInstruments
}

// engineInstruments caches metric handles for the hot path.
type engineInstruments struct {
	submitted   *metrics.Counter
	completed   *metrics.Counter
	queueFull   *metrics.Counter
	closed      *metrics.Counter
	expired     *metrics.Counter
	failed      *metrics.Counter
	queueDepth  *metrics.Gauge
	workers     *metrics.Gauge
	queueWait   *metrics.Histogram
	decisionLat *metrics.Histogram
}

// NewEngine validates cfg and returns an engine; call Start before
// submitting.
func NewEngine(cfg Config) (*Engine, error) {
	if cfg.System == nil {
		return nil, fmt.Errorf("serve: engine needs a core.System")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.NumCPU()
	}
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = 64
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	r := cfg.Metrics
	e := &Engine{
		cfg:   cfg,
		state: stateNew,
		ins: engineInstruments{
			submitted:   r.Counter("serve.submitted.total"),
			completed:   r.Counter("serve.completed.total"),
			queueFull:   r.Counter("serve.rejected.queue_full"),
			closed:      r.Counter("serve.rejected.closed"),
			expired:     r.Counter("serve.expired.deadline"),
			failed:      r.Counter("serve.failed.pipeline"),
			queueDepth:  r.Gauge("serve.queue.depth"),
			workers:     r.Gauge("serve.workers"),
			queueWait:   r.Histogram("serve.queue.wait", nil),
			decisionLat: r.Histogram("serve.decision.latency", nil),
		},
	}
	return e, nil
}

// Metrics returns the engine's registry (its own or the shared one
// from Config).
func (e *Engine) Metrics() *metrics.Registry { return e.cfg.Metrics }

// Snapshot scrapes the engine's metrics registry.
func (e *Engine) Snapshot() metrics.Snapshot { return e.cfg.Metrics.Snapshot() }

// Workers returns the configured pool size.
func (e *Engine) Workers() int { return e.cfg.Workers }

// Start launches the worker pool. It errors if the engine was already
// started or closed.
func (e *Engine) Start() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	switch e.state {
	case stateRunning:
		return fmt.Errorf("serve: engine already started")
	case stateClosed:
		return ErrClosed
	}
	e.queue = make(chan *task, e.cfg.QueueSize)
	e.state = stateRunning
	e.ins.workers.Set(int64(e.cfg.Workers))
	for i := 0; i < e.cfg.Workers; i++ {
		e.wg.Add(1)
		go e.worker()
	}
	return nil
}

// worker drains the queue with its own preprocessing state until the
// queue is closed by Drain/Close.
func (e *Engine) worker() {
	defer e.wg.Done()
	p := e.cfg.System.NewPreprocessor()
	for t := range e.queue {
		e.ins.queueDepth.Add(-1)
		wait := time.Since(t.enqueued)
		e.ins.queueWait.ObserveDuration(wait)
		res := Result{ID: t.req.ID, QueueWait: wait}
		if err := t.ctx.Err(); err != nil {
			// The deadline lapsed while the request sat in the queue;
			// don't burn pipeline time on a decision nobody waits for.
			res.Err = err
			e.ins.expired.Inc()
		} else {
			start := time.Now()
			d, err := e.cfg.System.ProcessWakeWith(p, t.req.Recording)
			res.Decision = d
			res.Err = err
			res.Total = wait + time.Since(start)
			e.ins.decisionLat.ObserveDuration(res.Total)
			if err != nil {
				e.ins.failed.Inc()
			}
		}
		e.ins.completed.Inc()
		if t.req.Callback != nil {
			t.req.Callback(res)
		} else {
			t.out <- res // buffered(1): never blocks, delivered once
		}
	}
}

// enqueue places a task on the queue. block selects Decide semantics
// (wait for space until ctx expires) versus Submit semantics (fail
// fast with ErrQueueFull).
func (e *Engine) enqueue(t *task, block bool) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	switch e.state {
	case stateNew:
		return ErrNotStarted
	case stateClosed:
		e.ins.closed.Inc()
		return ErrClosed
	}
	// Count the slot before sending so the depth gauge never dips
	// negative when a worker dequeues immediately.
	e.ins.queueDepth.Add(1)
	if block {
		select {
		case e.queue <- t:
		case <-t.ctx.Done():
			e.ins.queueDepth.Add(-1)
			return t.ctx.Err()
		}
	} else {
		select {
		case e.queue <- t:
		default:
			e.ins.queueDepth.Add(-1)
			e.ins.queueFull.Inc()
			return ErrQueueFull
		}
	}
	e.ins.submitted.Inc()
	return nil
}

// Submit enqueues a request asynchronously. With no Callback the
// returned channel receives exactly one Result; with a Callback the
// channel is nil and the callback fires instead. Submit never blocks:
// a full queue returns ErrQueueFull immediately (backpressure), a
// drained/closed engine returns ErrClosed. ctx bounds the request's
// time in queue: if it expires before a worker picks the request up,
// the Result carries ctx's error and the pipeline is skipped.
func (e *Engine) Submit(ctx context.Context, req Request) (<-chan Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if req.Recording == nil {
		return nil, fmt.Errorf("serve: request %q has no recording", req.ID)
	}
	t := &task{req: req, ctx: ctx, enqueued: time.Now()}
	if req.Callback == nil {
		t.out = make(chan Result, 1)
	}
	if err := e.enqueue(t, false); err != nil {
		return nil, err
	}
	return t.out, nil
}

// Decide is the blocking API: it enqueues (waiting for queue space if
// necessary), then waits for the decision. ctx bounds the whole wait.
func (e *Engine) Decide(ctx context.Context, rec *audio.Recording) (core.Decision, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if rec == nil {
		return core.Decision{}, fmt.Errorf("serve: nil recording")
	}
	t := &task{
		req:      Request{Recording: rec},
		ctx:      ctx,
		enqueued: time.Now(),
		out:      make(chan Result, 1),
	}
	if err := e.enqueue(t, true); err != nil {
		return core.Decision{}, err
	}
	select {
	case res := <-t.out:
		return res.Decision, res.Err
	case <-ctx.Done():
		// The worker will still process and deliver into the buffered
		// channel; the caller just stopped waiting.
		return core.Decision{}, ctx.Err()
	}
}

// ProcessWake adapts the engine to the same shape as
// core.System.ProcessWake (and va.Decider), serving the decision
// through the worker pool.
func (e *Engine) ProcessWake(rec *audio.Recording) (core.Decision, error) {
	return e.Decide(context.Background(), rec)
}

// Drain stops accepting new submissions and waits for every queued
// and in-flight request to finish, bounded by ctx. Already-accepted
// requests are still delivered exactly once. Drain is idempotent;
// concurrent calls all wait for completion.
func (e *Engine) Drain(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	e.mu.Lock()
	switch e.state {
	case stateNew:
		e.state = stateClosed
		e.mu.Unlock()
		return nil
	case stateRunning:
		e.state = stateClosed
		close(e.queue) // safe: submitters hold mu.RLock while sending
	}
	e.mu.Unlock()

	done := make(chan struct{})
	go func() {
		e.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain interrupted with work in flight: %w", ctx.Err())
	}
}

// Close drains with no deadline: it finishes all in-flight work and
// releases the workers. Safe to call more than once.
func (e *Engine) Close() error { return e.Drain(context.Background()) }
