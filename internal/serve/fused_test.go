package serve

import (
	"context"
	"testing"

	"headtalk/internal/core"
	"headtalk/internal/fusion"
	"headtalk/internal/metrics"
)

func TestDecideFusedRoundTrip(t *testing.T) {
	reg := metrics.NewRegistry()
	eng, _ := newTestEngine(t, 2, 8, reg)

	room, reports, err := eng.DecideFused(context.Background(), []ArrayInput{
		{ArrayID: "kitchen", Recording: testRecording(1)},
		{ArrayID: "livingroom", Recording: testRecording(2)},
	}, fusion.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Normal mode accepts without gates; the policy outcome is
	// room-level.
	if !room.Accepted || room.Reason != core.ReasonNormalMode {
		t.Fatalf("fused: %+v", room)
	}
	if len(reports) != 2 {
		t.Fatalf("%d reports, want 2", len(reports))
	}
	for _, r := range reports {
		if r.Err != nil {
			t.Errorf("array %s: %v", r.ArrayID, r.Err)
		}
		if r.Channels != 4 {
			t.Errorf("array %s: %d channels recorded", r.ArrayID, r.Channels)
		}
	}
	if got := reg.Counter("serve.fused.total").Value(); got != 1 {
		t.Errorf("serve.fused.total = %d", got)
	}
	if got := reg.Counter("serve.fused.accepted").Value(); got != 1 {
		t.Errorf("serve.fused.accepted = %d", got)
	}
}

func TestDecideFusedPartialFailure(t *testing.T) {
	eng, _ := newTestEngine(t, 2, 8, nil)

	// One array has no recording: its report carries the error, the
	// other array still decides, and the room-level call succeeds.
	room, reports, err := eng.DecideFused(context.Background(), []ArrayInput{
		{ArrayID: "ok", Recording: testRecording(3)},
		{ArrayID: "broken"},
	}, fusion.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !room.Accepted {
		t.Fatalf("fused: %+v", room)
	}
	if reports[1].Err == nil {
		t.Error("missing-recording array should carry an error")
	}

	if _, _, err := eng.DecideFused(context.Background(), nil, fusion.Config{}); err == nil {
		t.Error("fused decision over zero arrays should fail")
	}
}
