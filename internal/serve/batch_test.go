package serve

// Tests for the batch collector (Config.MaxBatch): gathered dispatch
// through the core pipeline's batched DSP schedule with unchanged
// per-request semantics — exactly-once delivery, deadlines, breaker
// admission, tracing and fail-closed panic isolation.

import (
	"context"
	"sync"
	"testing"
	"time"

	"headtalk/internal/core"
	"headtalk/internal/faultinject"
	"headtalk/internal/metrics"
	"headtalk/internal/trace"
)

// newBatchEngine builds a started engine with the batch collector on.
func newBatchEngine(t *testing.T, mode core.Mode, workers, maxBatch int) (*Engine, *metrics.Registry) {
	t.Helper()
	reg := metrics.NewRegistry()
	sys, err := core.NewSystem(core.Config{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	sys.SetMode(mode)
	eng, err := NewEngine(Config{
		System: sys, Workers: workers, QueueSize: 64, Metrics: reg,
		MaxBatch: maxBatch, GatherDelay: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = eng.Close() })
	return eng, reg
}

// A batching engine serves a burst with exactly-once delivery and
// accounts every request in the serve.batch.size histogram.
func TestBatchEngineServesBurst(t *testing.T) {
	eng, reg := newBatchEngine(t, core.ModeNormal, 1, 4)

	const n = 24
	var (
		mu        sync.Mutex
		delivered = map[string]Result{}
	)
	done := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		id := string(rune('a' + i))
		_, err := eng.Submit(context.Background(), Request{
			ID:        id,
			Recording: testRecording(uint64(i)),
			Callback: func(res Result) {
				mu.Lock()
				if _, dup := delivered[res.ID]; dup {
					t.Errorf("result for %s delivered twice", res.ID)
				}
				delivered[res.ID] = res
				mu.Unlock()
				done <- struct{}{}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatalf("delivery stalled at %d of %d", i, n)
		}
	}
	for id, res := range delivered {
		if res.Err != nil || !res.Decision.Accepted || res.Decision.Reason != core.ReasonNormalMode {
			t.Fatalf("%s: %+v", id, res)
		}
		if res.Total < res.QueueWait {
			t.Fatalf("%s: total %v < queue wait %v", id, res.Total, res.QueueWait)
		}
	}

	snap := reg.Snapshot()
	h := snap.Histograms["serve.batch.size"]
	if h.Count == 0 {
		t.Fatal("serve.batch.size never observed")
	}
	if int(h.Sum) != n {
		t.Fatalf("batch sizes sum to %.0f requests, want %d", h.Sum, n)
	}
	if snap.Counters["serve.completed.total"] != n {
		t.Fatalf("completed %d, want %d", snap.Counters["serve.completed.total"], n)
	}
}

// A lone request must not wait out the gather deadline forever: the
// timer dispatches an under-full batch.
func TestBatchSingleRequestDispatches(t *testing.T) {
	eng, reg := newBatchEngine(t, core.ModeHeadTalk, 1, 8)
	d, err := eng.Decide(context.Background(), testRecording(7))
	if err != nil {
		t.Fatal(err)
	}
	if d.Accepted || d.Reason != core.ReasonNoOrientation {
		t.Fatalf("decision %+v", d)
	}
	h := reg.Snapshot().Histograms["serve.batch.size"]
	if h.Count != 1 || h.Sum != 1 {
		t.Fatalf("batch.size count=%d sum=%.0f, want a single 1-item batch", h.Count, h.Sum)
	}
}

// Batched requests carry the batch_gather span between pickup and the
// pipeline stages when traced.
func TestBatchTraceGatherSpan(t *testing.T) {
	sys, err := core.NewSystem(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	store := trace.NewStore(16, trace.DefaultSlowThreshold)
	store.SetEnabled(true)
	eng, err := NewEngine(Config{
		System: sys, Workers: 1, QueueSize: 8, Traces: store,
		MaxBatch: 4, GatherDelay: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = eng.Close() })

	ch, err := eng.Submit(context.Background(), Request{ID: "g", Recording: testRecording(3)})
	if err != nil {
		t.Fatal(err)
	}
	res := <-ch
	if res.Err != nil || res.Trace == nil {
		t.Fatalf("result %+v", res)
	}
	if _, ok := res.Trace.Span(trace.StageBatchGather); !ok {
		t.Fatalf("batch_gather span missing: %+v", res.Trace.Spans())
	}
	for _, st := range []trace.Stage{trace.StageQueueWait, trace.StagePickup, trace.StageValidate} {
		if _, ok := res.Trace.Span(st); !ok {
			t.Fatalf("%s span missing: %+v", st, res.Trace.Spans())
		}
	}
}

// A request whose deadline lapses during the gather is delivered with
// its context error and never enters the pipeline.
func TestBatchExpiredInGather(t *testing.T) {
	eng, _ := newBatchEngine(t, core.ModeNormal, 1, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // expired before any worker can pick it up
	ch, err := eng.Submit(ctx, Request{ID: "x", Recording: testRecording(5)})
	if err != nil {
		t.Fatal(err)
	}
	res := <-ch
	if res.Err != context.Canceled {
		t.Fatalf("expired result %+v", res)
	}
}

// Chaos: a panic inside a batched pipeline run fails every request of
// that batch closed with ErrPipelinePanic; the worker rebuilds its
// preprocessor and keeps serving, and service recovers when the storm
// passes.
func TestChaosBatchPanicFailsClosed(t *testing.T) {
	inj := faultinject.New(faultinject.Config{PanicEvery: 3})
	reg := metrics.NewRegistry()
	sys, err := core.NewSystem(core.Config{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	sys.SetMode(core.ModeHeadTalk)
	eng, err := NewEngine(Config{
		System: sys, Workers: 2, QueueSize: 64, Metrics: reg,
		BreakerThreshold: -1,
		MaxBatch:         4, GatherDelay: time.Millisecond,
		FaultHook: inj.Hook(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = eng.Close() })

	const n = 40
	var (
		mu        sync.Mutex
		delivered = map[string]Result{}
	)
	done := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		id := string(rune('A' + i))
		_, err := eng.Submit(context.Background(), Request{
			ID:        id,
			Recording: testRecording(uint64(100 + i)),
			Callback: func(res Result) {
				mu.Lock()
				if _, dup := delivered[res.ID]; dup {
					t.Errorf("result for %s delivered twice", res.ID)
				}
				delivered[res.ID] = res
				mu.Unlock()
				done <- struct{}{}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Fatalf("delivery stalled at %d of %d", i, n)
		}
	}

	var panicked int
	for id, res := range delivered {
		if res.Decision.Accepted {
			t.Fatalf("FAIL-CLOSED VIOLATION: %s accepted under faults: %+v", id, res.Decision)
		}
		switch {
		case IsPanic(res.Err):
			if res.Decision.Reason != core.ReasonPanic {
				t.Fatalf("%s: panic result carries reason %q", id, res.Decision.Reason)
			}
			panicked++
		case res.Err == nil && res.Decision.Reason == core.ReasonNoOrientation:
		default:
			t.Fatalf("%s: unexpected outcome %+v", id, res)
		}
	}
	// Every induced panic fails its whole batch, so panic results must
	// cover at least the induced count.
	if stats := inj.Stats(); uint64(panicked) < stats.Panics || stats.Panics == 0 {
		t.Fatalf("panic results %d, induced %d", panicked, stats.Panics)
	}

	inj.SetEnabled(false)
	d, err := eng.Decide(context.Background(), testRecording(999))
	if err != nil || d.Reason != core.ReasonNoOrientation {
		t.Fatalf("post-chaos decision %+v, err %v", d, err)
	}
	if h := eng.HealthSnapshot(); !h.Healthy {
		t.Fatalf("post-chaos health %+v", h)
	}
}
