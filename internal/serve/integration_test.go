package serve

// Integration: a streaming va.Assistant routed through the engine, so
// wake-word decisions from listener-style front-ends share the serving
// worker pool.

import (
	"math/rand/v2"
	"testing"

	"headtalk/internal/audio"
	"headtalk/internal/core"
	"headtalk/internal/speech"
	"headtalk/internal/va"
)

func newRNG() *rand.Rand { return rand.New(rand.NewPCG(500, 1)) }

func TestEngineBacksAssistant(t *testing.T) {
	spotter, err := va.NewSpotter(speech.WordComputer, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.NewSystem(core.Config{SampleRate: 16000, BandpassHigh: 7500})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(Config{System: sys, Workers: 2, QueueSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	assistant, err := va.NewAssistant("served", spotter, sys, nil)
	if err != nil {
		t.Fatal(err)
	}
	assistant.UseDecider(eng)

	// Synthesize a genuine wake word; the decision must flow through
	// the engine's pool (visible in its metrics).
	rec := synthWord(t)
	resp, err := assistant.Hear(rec, "owner")
	if err != nil {
		t.Fatal(err)
	}
	if !resp.WakeDetected || !resp.Uploaded {
		t.Fatalf("served response %+v", resp)
	}
	if got := eng.Snapshot().Counters["serve.completed.total"]; got != 1 {
		t.Fatalf("engine served %d decisions, want 1", got)
	}
}

func synthWord(t *testing.T) *audio.Recording {
	t.Helper()
	rng := newRNG()
	voice := speech.RandomVoice(rng)
	buf := speech.Synthesize(speech.WordComputer, voice, 16000, rng)
	rec := audio.NewRecording(16000, 1, len(buf.Samples))
	copy(rec.Channels[0], buf.Samples)
	return rec
}
