package serve

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"
	"testing"
	"time"

	"headtalk/internal/audio"
	"headtalk/internal/core"
	"headtalk/internal/metrics"
)

// testRecording returns a short 4-channel noise burst — enough to run
// the preprocessing stage without training any gate model.
func testRecording(seed uint64) *audio.Recording {
	rng := rand.New(rand.NewPCG(seed, 7))
	rec := audio.NewRecording(48000, 4, 4800)
	for c := range rec.Channels {
		for i := range rec.Channels[c] {
			rec.Channels[c][i] = rng.NormFloat64()
		}
	}
	return rec
}

// newTestEngine builds a started engine over a fresh System (Normal
// mode: decisions are fast and always accepted).
func newTestEngine(t *testing.T, workers, queueSize int, reg *metrics.Registry) (*Engine, *core.System) {
	t.Helper()
	sys, err := core.NewSystem(core.Config{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(Config{System: sys, Workers: workers, QueueSize: queueSize, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = eng.Close() })
	return eng, sys
}

func TestEngineValidation(t *testing.T) {
	if _, err := NewEngine(Config{}); err == nil {
		t.Fatal("engine without a system should fail")
	}
	sys, err := core.NewSystem(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(Config{System: sys})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Submit(context.Background(), Request{Recording: testRecording(1)}); !errors.Is(err, ErrNotStarted) {
		t.Fatalf("submit before Start = %v, want ErrNotStarted", err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err == nil {
		t.Fatal("double Start should fail")
	}
	if _, err := eng.Submit(context.Background(), Request{}); err == nil {
		t.Fatal("submit without recording should fail")
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Start after Close = %v, want ErrClosed", err)
	}
}

func TestDecideRoundTrip(t *testing.T) {
	eng, _ := newTestEngine(t, 2, 8, nil)
	d, err := eng.Decide(context.Background(), testRecording(2))
	if err != nil {
		t.Fatal(err)
	}
	if !d.Accepted || d.Reason != core.ReasonNormalMode {
		t.Fatalf("decision %+v", d)
	}
}

func TestSubmitAsyncChannel(t *testing.T) {
	eng, _ := newTestEngine(t, 2, 8, nil)
	ch, err := eng.Submit(context.Background(), Request{ID: "req-7", Recording: testRecording(3)})
	if err != nil {
		t.Fatal(err)
	}
	res := <-ch
	if res.ID != "req-7" || res.Err != nil || !res.Decision.Accepted {
		t.Fatalf("result %+v", res)
	}
	if res.Total < res.QueueWait {
		t.Fatalf("total %v < queue wait %v", res.Total, res.QueueWait)
	}
}

func TestSubmitCallback(t *testing.T) {
	eng, _ := newTestEngine(t, 1, 8, nil)
	got := make(chan Result, 1)
	ch, err := eng.Submit(context.Background(), Request{
		ID:        "cb",
		Recording: testRecording(4),
		Callback:  func(r Result) { got <- r },
	})
	if err != nil {
		t.Fatal(err)
	}
	if ch != nil {
		t.Fatal("callback submissions should not also return a channel")
	}
	res := <-got
	if res.ID != "cb" || !res.Decision.Accepted {
		t.Fatalf("callback result %+v", res)
	}
}

// stallWorkers blocks every worker of eng inside a callback until the
// returned release func is called; it returns once all workers are
// confirmed stalled.
func stallWorkers(t *testing.T, eng *Engine, workers int) (release func()) {
	t.Helper()
	entered := make(chan struct{}, workers)
	gate := make(chan struct{})
	for i := 0; i < workers; i++ {
		_, err := eng.Submit(context.Background(), Request{
			ID:        fmt.Sprintf("stall-%d", i),
			Recording: testRecording(100 + uint64(i)),
			Callback: func(Result) {
				entered <- struct{}{}
				<-gate
			},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < workers; i++ {
		select {
		case <-entered:
		case <-time.After(5 * time.Second):
			t.Fatal("workers did not stall")
		}
	}
	var once sync.Once
	return func() { once.Do(func() { close(gate) }) }
}

func TestQueueFullBackpressure(t *testing.T) {
	eng, _ := newTestEngine(t, 1, 2, nil)
	release := stallWorkers(t, eng, 1)
	defer release()

	// Fill the queue behind the stalled worker.
	var chans []<-chan Result
	for i := 0; ; i++ {
		ch, err := eng.Submit(context.Background(), Request{ID: fmt.Sprintf("q-%d", i), Recording: testRecording(200 + uint64(i))})
		if errors.Is(err, ErrQueueFull) {
			if i < 2 {
				t.Fatalf("queue full after only %d submissions (size 2)", i)
			}
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, ch)
		if i > 10 {
			t.Fatal("queue never filled")
		}
	}
	if eng.Metrics().Snapshot().Counters["serve.rejected.queue_full"] == 0 {
		t.Fatal("queue-full rejection not counted")
	}
	// Backpressure clears once the worker resumes: every accepted
	// submission still completes.
	release()
	for i, ch := range chans {
		select {
		case res := <-ch:
			if res.Err != nil {
				t.Fatalf("queued submission %d failed: %v", i, res.Err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("queued submission %d never delivered", i)
		}
	}
}

func TestDeadlineExpiresInQueue(t *testing.T) {
	eng, _ := newTestEngine(t, 1, 4, nil)
	release := stallWorkers(t, eng, 1)

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	ch, err := eng.Submit(ctx, Request{ID: "late", Recording: testRecording(5)})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let the deadline lapse while queued
	release()
	res := <-ch
	if !errors.Is(res.Err, context.DeadlineExceeded) {
		t.Fatalf("expired request err = %v, want DeadlineExceeded", res.Err)
	}
	if res.Decision.Accepted {
		t.Fatal("expired request must not carry an accepted decision")
	}
	if eng.Metrics().Snapshot().Counters["serve.expired.deadline"] != 1 {
		t.Fatal("deadline expiry not counted")
	}
}

func TestDecideBlocksForQueueSpace(t *testing.T) {
	eng, _ := newTestEngine(t, 1, 1, nil)
	release := stallWorkers(t, eng, 1)

	// Occupy the single queue slot.
	if _, err := eng.Submit(context.Background(), Request{ID: "filler", Recording: testRecording(6)}); err != nil {
		t.Fatal(err)
	}
	// Submit fails fast; Decide with a short deadline blocks then
	// reports the deadline, not ErrQueueFull.
	if _, err := eng.Submit(context.Background(), Request{ID: "x", Recording: testRecording(7)}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("submit on full queue = %v, want ErrQueueFull", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := eng.Decide(ctx, testRecording(8)); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("blocked Decide = %v, want DeadlineExceeded", err)
	}
	release()
}

// TestDrainDeliversExactlyOnce proves the lifecycle guarantee: every
// submission accepted before Close is delivered exactly once, and
// submissions after Close are rejected with ErrClosed.
func TestDrainDeliversExactlyOnce(t *testing.T) {
	eng, _ := newTestEngine(t, 4, 64, nil)

	const n = 48
	var mu sync.Mutex
	delivered := make(map[string]int)
	accepted := 0
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("r-%d", i)
		_, err := eng.Submit(context.Background(), Request{
			ID:        id,
			Recording: testRecording(300 + uint64(i)),
			Callback: func(r Result) {
				mu.Lock()
				delivered[r.ID]++
				mu.Unlock()
			},
		})
		if errors.Is(err, ErrQueueFull) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		accepted++
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Submit(context.Background(), Request{ID: "post", Recording: testRecording(9)}); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after Close = %v, want ErrClosed", err)
	}
	if _, err := eng.Decide(context.Background(), testRecording(10)); !errors.Is(err, ErrClosed) {
		t.Fatalf("decide after Close = %v, want ErrClosed", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(delivered) != accepted {
		t.Fatalf("delivered %d distinct results, accepted %d submissions", len(delivered), accepted)
	}
	for id, count := range delivered {
		if count != 1 {
			t.Fatalf("request %s delivered %d times", id, count)
		}
	}
	// Second Close is a no-op.
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDrainTimeout(t *testing.T) {
	eng, _ := newTestEngine(t, 1, 4, nil)
	release := stallWorkers(t, eng, 1)
	defer release()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := eng.Drain(ctx); err == nil {
		t.Fatal("drain with a stalled worker should report the deadline")
	}
	release()
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestEngineMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	eng, _ := newTestEngine(t, 2, 16, reg)
	for i := 0; i < 5; i++ {
		if _, err := eng.Decide(context.Background(), testRecording(400+uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	s := eng.Snapshot()
	if s.Counters["serve.submitted.total"] != 5 || s.Counters["serve.completed.total"] != 5 {
		t.Fatalf("submitted/completed = %d/%d, want 5/5",
			s.Counters["serve.submitted.total"], s.Counters["serve.completed.total"])
	}
	if s.Histograms["serve.queue.wait"].Count != 5 || s.Histograms["serve.decision.latency"].Count != 5 {
		t.Fatal("latency histograms missing observations")
	}
	if s.Gauges["serve.queue.depth"] != 0 {
		t.Fatalf("queue depth after drain = %d, want 0", s.Gauges["serve.queue.depth"])
	}
	// The shared registry also carries the core system's counters.
	if s.Counters["headtalk.decisions.total"] != 5 {
		t.Fatalf("core decisions via shared registry = %d, want 5", s.Counters["headtalk.decisions.total"])
	}
}

// TestEngineConcurrentHammer mixes Submit, Decide, SetMode and
// SessionActive from many goroutines over one engine + system; with
// -race this is the serving layer's concurrency proof. The invariant
// checked: every accepted submission gets exactly one delivery.
func TestEngineConcurrentHammer(t *testing.T) {
	eng, sys := newTestEngine(t, 4, 8, nil)
	sys.SetMode(core.ModeHeadTalk) // nil models: preprocess runs, reject no_orientation

	var deliveries, acceptedSubs, rejectedSubs metricsCounter
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				switch i % 5 {
				case 0:
					sys.SetMode(core.ModeHeadTalk)
					sys.SessionActive()
				case 1:
					ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
					if _, err := eng.Decide(ctx, testRecording(uint64(w*1000+i))); err != nil &&
						!errors.Is(err, ErrClosed) && !errors.Is(err, context.DeadlineExceeded) {
						t.Error(err)
					}
					cancel()
				default:
					_, err := eng.Submit(context.Background(), Request{
						ID:        fmt.Sprintf("h-%d-%d", w, i),
						Recording: testRecording(uint64(w*1000 + i)),
						Callback:  func(Result) { deliveries.inc() },
					})
					switch {
					case err == nil:
						acceptedSubs.inc()
					case errors.Is(err, ErrQueueFull) || errors.Is(err, ErrClosed):
						rejectedSubs.inc()
					default:
						t.Error(err)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if deliveries.value() != acceptedSubs.value() {
		t.Fatalf("deliveries = %d, accepted submissions = %d", deliveries.value(), acceptedSubs.value())
	}
}

// metricsCounter is a tiny test-local atomic counter.
type metricsCounter struct {
	mu sync.Mutex
	n  int
}

func (c *metricsCounter) inc() { c.mu.Lock(); c.n++; c.mu.Unlock() }
func (c *metricsCounter) value() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}
