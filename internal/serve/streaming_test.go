package serve

import (
	"context"
	"errors"
	"math/rand/v2"
	"testing"
	"time"

	"headtalk/internal/core"
	"headtalk/internal/metrics"
	"headtalk/internal/speech"
	"headtalk/internal/stream"
	"headtalk/internal/trace"
	"headtalk/internal/va"
)

func testStreamSpotter(t testing.TB) *va.Spotter {
	t.Helper()
	s, err := va.NewSpotter(speech.WordComputer, 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// newStreamingEngine builds a started engine with the continuous
// ingest front end attached (Normal mode: spotted candidates are
// accepted fast).
func newStreamingEngine(t *testing.T, reg *metrics.Registry, traces *trace.Store) *Engine {
	t.Helper()
	sys, err := core.NewSystem(core.Config{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(Config{
		System:  sys,
		Workers: 2,
		Metrics: reg,
		Traces:  traces,
		Streaming: &stream.Config{
			SampleRate:   48000,
			Channels:     4,
			Spotter:      testStreamSpotter(t),
			JanitorEvery: -1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = eng.Close() })
	return eng
}

// streamWakeFeed synthesizes the wake word at 48 kHz with padding,
// replicated across channels.
func streamWakeFeed(t testing.TB, channels int) [][]float64 {
	t.Helper()
	rng := rand.New(rand.NewPCG(42, 0x5b07734))
	buf := speech.Synthesize(speech.WordComputer, speech.RandomVoice(rng), 48000, rng)
	pad := make([]float64, 9600)
	mono := append(append(append([]float64(nil), pad...), buf.Samples...), pad...)
	feed := make([][]float64, channels)
	for c := range feed {
		feed[c] = mono
	}
	return feed
}

// pushFeed streams feed into the engine in 10 ms chunks and returns
// all results.
func pushFeed(t testing.TB, eng *Engine, id string, feed [][]float64) []stream.PushResult {
	t.Helper()
	var out []stream.PushResult
	scratch := make([][]float64, len(feed))
	for start := 0; start < len(feed[0]); start += 480 {
		end := start + 480
		if end > len(feed[0]) {
			end = len(feed[0])
		}
		for c := range feed {
			scratch[c] = feed[c][start:end]
		}
		res, err := eng.PushFrames(context.Background(), id, scratch)
		if err != nil {
			t.Fatalf("push at %d: %v", start, err)
		}
		out = append(out, res)
	}
	return out
}

// TestEngineStreamingDecides: a chunked wake-word feed through
// PushFrames must produce exactly one engine decision — the spotted
// candidate — while every other push exits the cascade before the
// queue.
func TestEngineStreamingDecides(t *testing.T) {
	reg := metrics.NewRegistry()
	eng := newStreamingEngine(t, reg, nil)

	results := pushFeed(t, eng, "alice", streamWakeFeed(t, 4))
	var decided *stream.PushResult
	for i := range results {
		if results[i].Status == stream.StatusDecided {
			decided = &results[i]
			break
		}
	}
	if decided == nil {
		t.Fatal("no push reached a decision")
	}
	if decided.Err != nil {
		t.Fatalf("streamed decision error: %v", decided.Err)
	}
	if decided.Decision == nil || !decided.Decision.Accepted || decided.Decision.Reason != core.ReasonNormalMode {
		t.Fatalf("streamed decision %+v", decided.Decision)
	}
	// The acceptance invariant: only the spotted candidate entered the
	// engine — early-exit pushes never became submissions, so the
	// expensive pipeline ran exactly once for the whole feed.
	if got := reg.Counter("serve.submitted.total").Value(); got != 1 {
		t.Fatalf("serve.submitted.total=%d, want 1 (early exits must skip the pipeline)", got)
	}
	exits := reg.Counter("stream.exit.energy").Value() + reg.Counter("stream.exit.spotter").Value()
	if exits == 0 {
		t.Fatal("no push exited early: the cascade never gated anything")
	}
	if got := reg.Counter("stream.decisions").Value(); got != 1 {
		t.Fatalf("stream.decisions=%d, want 1", got)
	}
}

// TestEngineStreamingTraceSpans: a streamed decision's trace must
// carry the ingest and spot spans ahead of the engine's own stages.
func TestEngineStreamingTraceSpans(t *testing.T) {
	reg := metrics.NewRegistry()
	store := trace.NewStore(8, 0)
	store.SetEnabled(true)
	eng := newStreamingEngine(t, reg, store)

	pushFeed(t, eng, "alice", streamWakeFeed(t, 4))
	traces := store.Recent(8)
	if len(traces) != 1 {
		t.Fatalf("store holds %d traces, want 1", len(traces))
	}
	seen := map[trace.Stage]time.Duration{}
	for _, sp := range traces[0].Spans() {
		seen[sp.Stage] = sp.Duration
	}
	if _, ok := seen[trace.StageIngest]; !ok {
		t.Fatalf("trace has no ingest span: %v", traces[0].Spans())
	}
	if _, ok := seen[trace.StageSpot]; !ok {
		t.Fatalf("trace has no spot span: %v", traces[0].Spans())
	}
	if d := seen[trace.StageSpot]; d <= 0 {
		t.Fatalf("spot span %v, want > 0", d)
	}
}

// TestEngineWithoutStreaming: streaming methods on a plain engine fail
// with ErrNoStream.
func TestEngineWithoutStreaming(t *testing.T) {
	eng, _ := newTestEngine(t, 1, 4, nil)
	if eng.Streams() != nil {
		t.Fatal("plain engine has a session manager")
	}
	chunk := [][]float64{make([]float64, 480)}
	if _, err := eng.PushFrames(context.Background(), "s", chunk); !errors.Is(err, ErrNoStream) {
		t.Fatalf("PushFrames = %v, want ErrNoStream", err)
	}
	if _, err := eng.EndSession("s"); !errors.Is(err, ErrNoStream) {
		t.Fatalf("EndSession = %v, want ErrNoStream", err)
	}
}

// TestEngineDrainClosesStreams: draining the engine also closes the
// session manager, so pushes after drain fail with stream.ErrClosed.
func TestEngineDrainClosesStreams(t *testing.T) {
	eng := newStreamingEngine(t, nil, nil)
	chunk := make([][]float64, 4)
	for c := range chunk {
		chunk[c] = make([]float64, 480)
	}
	if _, err := eng.PushFrames(context.Background(), "s", chunk); err != nil {
		t.Fatal(err)
	}
	if err := eng.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.PushFrames(context.Background(), "s", chunk); !errors.Is(err, stream.ErrClosed) {
		t.Fatalf("push after drain = %v, want stream.ErrClosed", err)
	}
}

// TestEngineStreamingBadConfig: an invalid streaming config fails
// engine construction.
func TestEngineStreamingBadConfig(t *testing.T) {
	sys, err := core.NewSystem(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewEngine(Config{System: sys, Streaming: &stream.Config{}}); err == nil {
		t.Fatal("streaming config without a spotter should fail NewEngine")
	}
}
