package serve

import (
	"context"
	"fmt"
	"testing"

	"headtalk/internal/core"
	"headtalk/internal/fusion"
	"headtalk/internal/metrics"
)

// BenchmarkDecideFused records the fusion tax: a room-level decision
// over 1/2/4 arrays versus the single-array Decide baseline on the same
// engine. Per-array pipelines run concurrently, so the fused latency
// should track the slowest array, not the sum.
func BenchmarkDecideFused(b *testing.B) {
	reg := metrics.NewRegistry()
	sys, err := core.NewSystem(core.Config{Metrics: reg})
	if err != nil {
		b.Fatal(err)
	}
	eng, err := NewEngine(Config{System: sys, Workers: 4, QueueSize: 64, Metrics: reg})
	if err != nil {
		b.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		b.Fatal(err)
	}
	defer eng.Close()

	b.Run("decide-single", func(b *testing.B) {
		rec := testRecording(1)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Decide(context.Background(), rec); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, n := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("fused-%darray", n), func(b *testing.B) {
			arrays := make([]ArrayInput, n)
			for i := range arrays {
				arrays[i] = ArrayInput{ArrayID: fmt.Sprintf("array-%d", i), Recording: testRecording(uint64(i + 1))}
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := eng.DecideFused(context.Background(), arrays, fusion.Config{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
