package serve

// Lifecycle edge tests: the engine must answer every combination of
// Submit/Drain/Close with a typed error and bounded waiting — never a
// deadlock — because the pool leans on these semantics for
// drain-on-remove.

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"headtalk/internal/audio"
	"headtalk/internal/core"
)

// stallEngine builds a 1-worker engine whose pipeline blocks until
// release is closed, pinning submissions in flight on demand.
func stallEngine(t *testing.T, queueSize int) (eng *Engine, entered chan struct{}, release chan struct{}) {
	t.Helper()
	sys, err := core.NewSystem(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	entered = make(chan struct{}, queueSize+1)
	release = make(chan struct{})
	eng, err = NewEngine(Config{
		System: sys, Workers: 1, QueueSize: queueSize,
		FaultHook: func(rec *audio.Recording) *audio.Recording {
			entered <- struct{}{}
			<-release
			return rec
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	return eng, entered, release
}

// TestDrainCancelledContextReturnsTyped: Drain under an
// already-cancelled context with work pinned in flight must return
// promptly with the context error in its chain — and a later unbounded
// Close must still deliver the work exactly once.
func TestDrainCancelledContextReturnsTyped(t *testing.T) {
	eng, entered, release := stallEngine(t, 4)
	var delivered atomic.Int64
	if _, err := eng.Submit(context.Background(), Request{
		ID: "pinned", Recording: testRecording(1),
		Callback: func(Result) { delivered.Add(1) },
	}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("worker never picked up the pinned request")
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	err := eng.Drain(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("drain under cancelled ctx = %v, want context.Canceled in chain", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancelled drain took %v — it must not wait for in-flight work", elapsed)
	}
	// The engine is already closed (drain is stop-then-wait), so new
	// submissions fail typed even though the drain wait was abandoned.
	if _, err := eng.Submit(context.Background(), Request{ID: "late", Recording: testRecording(2)}); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after abandoned drain = %v, want ErrClosed", err)
	}
	close(release)
	if err := eng.Close(); err != nil {
		t.Fatalf("unbounded close after abandoned drain = %v", err)
	}
	if delivered.Load() != 1 {
		t.Fatalf("pinned request delivered %d times, want exactly 1", delivered.Load())
	}
}

// TestConcurrentDrainsAllComplete: racing Drain calls are all valid —
// each returns nil once the work finishes, none deadlocks.
func TestConcurrentDrainsAllComplete(t *testing.T) {
	eng, entered, release := stallEngine(t, 4)
	if _, err := eng.Submit(context.Background(), Request{ID: "work", Recording: testRecording(3)}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("worker never started")
	}

	const drains = 4
	errs := make(chan error, drains)
	var wg sync.WaitGroup
	for i := 0; i < drains; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- eng.Drain(context.Background())
		}()
	}
	// All drains are now blocked on the stalled worker; unstick it.
	time.Sleep(20 * time.Millisecond)
	close(release)

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("concurrent drains deadlocked")
	}
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("concurrent drain returned %v, want nil", err)
		}
	}
}

// TestDrainBeforeStart: draining a never-started engine is a clean
// close, and Start afterwards reports ErrClosed.
func TestDrainBeforeStart(t *testing.T) {
	sys, err := core.NewSystem(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(Config{System: sys})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Drain(context.Background()); err != nil {
		t.Fatalf("drain on new engine = %v", err)
	}
	if err := eng.Start(); !errors.Is(err, ErrClosed) {
		t.Fatalf("start after drain = %v, want ErrClosed", err)
	}
	if err := eng.Drain(context.Background()); err != nil {
		t.Fatalf("double drain = %v", err)
	}
}

// TestSubmitWhileDraining: a Submit racing an in-progress Drain gets a
// typed ErrClosed, never a hang or a lost callback.
func TestSubmitWhileDraining(t *testing.T) {
	eng, entered, release := stallEngine(t, 4)
	if _, err := eng.Submit(context.Background(), Request{ID: "w", Recording: testRecording(4)}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("worker never started")
	}
	drainDone := make(chan error, 1)
	go func() { drainDone <- eng.Drain(context.Background()) }()
	// Wait until the drain has flipped the state (submissions start
	// failing), then assert the failure is typed.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err := eng.Submit(context.Background(), Request{ID: "racer", Recording: testRecording(5)})
		if err != nil && !errors.Is(err, ErrQueueFull) {
			// The stalled queue may fill before the drain flips the
			// state; only the lifecycle error ends the wait.
			if !errors.Is(err, ErrClosed) {
				t.Fatalf("submit during drain = %v, want ErrClosed", err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("drain never started rejecting submissions")
		}
	}
	close(release)
	if err := <-drainDone; err != nil {
		t.Fatalf("drain = %v", err)
	}
}
