package serve

import (
	"context"
	"fmt"
	"sync"

	"headtalk/internal/audio"
	"headtalk/internal/fusion"
)

// ArrayInput is one array's capture of the same utterance for a fused
// room-level decision.
type ArrayInput struct {
	// ArrayID names the device ("kitchen", "tv-left", ...); empty IDs
	// get positional names ("array-0").
	ArrayID string
	// Recording is the array's multi-channel capture.
	Recording *audio.Recording
	// Weight, when > 0, overrides the health-derived fusion weight.
	Weight float64
}

// DecideFused runs the decision pipeline once per array — through the
// engine's normal serving path (queue, breaker, tracing, metrics) — and
// fuses the per-array posteriors into one room-level accept/reject. A
// single failed array degrades the fusion (its report carries the
// error and contributes no evidence) rather than failing the room; the
// fused decision itself fails closed when no array produced usable
// evidence. The per-array reports are returned for attribution.
func (e *Engine) DecideFused(ctx context.Context, arrays []ArrayInput, cfg fusion.Config) (fusion.RoomDecision, []fusion.ArrayReport, error) {
	if len(arrays) == 0 {
		return fusion.RoomDecision{}, nil, fmt.Errorf("serve: fused decision needs at least one array")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	reports := make([]fusion.ArrayReport, len(arrays))
	var wg sync.WaitGroup
	for i := range arrays {
		in := &arrays[i]
		r := &reports[i]
		r.ArrayID = in.ArrayID
		if r.ArrayID == "" {
			r.ArrayID = fmt.Sprintf("array-%d", i)
		}
		r.Weight = in.Weight
		if in.Recording == nil {
			r.Err = fmt.Errorf("serve: array %q has no recording", r.ArrayID)
			continue
		}
		r.Channels = len(in.Recording.Channels)
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.Decision, r.Err = e.Decide(ctx, in.Recording)
		}()
	}
	wg.Wait()
	room := fusion.Fuse(reports, cfg)
	e.cfg.Metrics.Counter("serve.fused.total").Inc()
	if room.Accepted {
		e.cfg.Metrics.Counter("serve.fused.accepted").Inc()
	} else {
		e.cfg.Metrics.Counter("serve.fused.rejected").Inc()
	}
	e.cfg.Metrics.Counter("serve.fused.reason." + room.Reason.Slug()).Inc()
	return room, reports, nil
}
