package serve

// Chaos tests: hammer the engine while internal/faultinject corrupts
// recordings, silences channels, stalls stages and induces panics, and
// assert the two invariants the serving layer promises under faults:
//
//  1. Exactly-once delivery — every accepted submission produces one
//     result, even when its pipeline run panicked.
//  2. Fail closed — no fault path ever yields an accepted decision.
//
// The system runs in HeadTalk mode with no trained gates, so even
// clean requests reject (ReasonNoOrientation); any accept at all is an
// invariant violation. Run with -race (make chaos does).

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"headtalk/internal/audio"
	"headtalk/internal/core"
	"headtalk/internal/faultinject"
	"headtalk/internal/metrics"
)

// newChaosEngine builds a started HeadTalk-mode engine wired to inj.
func newChaosEngine(t *testing.T, inj *faultinject.Injector, workers int) *Engine {
	t.Helper()
	reg := metrics.NewRegistry()
	sys, err := core.NewSystem(core.Config{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	sys.SetMode(core.ModeHeadTalk)
	eng, err := NewEngine(Config{
		System: sys, Workers: workers, QueueSize: 64, Metrics: reg,
		BreakerThreshold: -1, // keep every fault flowing to the pipeline
		FaultHook:        inj.Hook(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = eng.Close() })
	return eng
}

func TestChaosExactlyOnceAndFailClosed(t *testing.T) {
	inj := faultinject.New(faultinject.Config{
		PanicEvery:        7,
		CorruptEvery:      5,
		DropChannelsEvery: 3,
		DropChannels:      []int{1, 2, 3}, // leaves 1 healthy < MinChannels
		SlowEvery:         11,
		Delay:             time.Millisecond,
	})
	eng := newChaosEngine(t, inj, 4)

	const (
		producers = 4
		perProd   = 50
	)
	var (
		mu        sync.Mutex
		delivered = map[string]Result{}
		accepted  int
	)
	var wg sync.WaitGroup
	done := make(chan struct{}, producers*perProd)
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				id := string(rune('A'+p)) + "-" + string(rune('0'+i/10)) + string(rune('0'+i%10))
				req := Request{
					ID:        id,
					Recording: testRecording(uint64(p*1000 + i)),
					Callback: func(res Result) {
						mu.Lock()
						if _, dup := delivered[res.ID]; dup {
							t.Errorf("result for %s delivered twice", res.ID)
						}
						delivered[res.ID] = res
						mu.Unlock()
						done <- struct{}{}
					},
				}
				// Retry on backpressure: the slow fault can briefly fill
				// the queue; accepted-once is the invariant under test.
				for {
					if _, err := eng.Submit(context.Background(), req); err == nil {
						mu.Lock()
						accepted++
						mu.Unlock()
						break
					} else if !errors.Is(err, ErrQueueFull) {
						t.Errorf("submit %s: %v", id, err)
						return
					}
					time.Sleep(time.Millisecond)
				}
			}
		}(p)
	}
	wg.Wait()
	for i := 0; i < accepted; i++ {
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Fatalf("delivery stalled: %d of %d results", i, accepted)
		}
	}
	if len(delivered) != producers*perProd {
		t.Fatalf("delivered %d results, want %d", len(delivered), producers*perProd)
	}

	// Fail-closed invariant: not one accept, and every result's reason
	// is from the known reject set.
	var panicked, badInput, degraded, clean int
	for id, res := range delivered {
		if res.Decision.Accepted {
			t.Fatalf("FAIL-CLOSED VIOLATION: %s accepted under faults: %+v", id, res.Decision)
		}
		switch {
		case IsPanic(res.Err):
			panicked++
			if res.Decision.Reason != core.ReasonPanic {
				t.Fatalf("%s: panic result carries reason %q", id, res.Decision.Reason)
			}
		case res.Err != nil:
			be, ok := audio.AsBadInput(res.Err)
			if !ok {
				t.Fatalf("%s: unexpected error class %v", id, res.Err)
			}
			if be.Reason != audio.BadNonFinite {
				t.Fatalf("%s: bad-input reason %s, want non_finite", id, be.Reason)
			}
			badInput++
		case res.Decision.Reason == core.ReasonDegraded:
			degraded++
		case res.Decision.Reason == core.ReasonNoOrientation:
			clean++
		default:
			t.Fatalf("%s: unexpected clean-path reason %q", id, res.Decision.Reason)
		}
	}

	stats := inj.Stats()
	if uint64(panicked) != stats.Panics {
		t.Fatalf("panic results %d != induced panics %d", panicked, stats.Panics)
	}
	if badInput == 0 || degraded == 0 || clean == 0 {
		t.Fatalf("fault mix too narrow: badInput=%d degraded=%d clean=%d (stats %+v)",
			badInput, degraded, clean, stats)
	}

	// The engine must still serve after the storm.
	inj.SetEnabled(false)
	d, err := eng.Decide(context.Background(), testRecording(99999))
	if err != nil || d.Reason != core.ReasonNoOrientation {
		t.Fatalf("post-chaos decision %+v, err %v", d, err)
	}
	h := eng.HealthSnapshot()
	if !h.Healthy || h.Panics != stats.Panics {
		t.Fatalf("post-chaos health %+v (stats %+v)", h, stats)
	}
}

// TestChaosDegradedFailClosed pins the degraded-array path end to end:
// silencing 3 of 4 channels must reject with ReasonDegraded and report
// the degraded count, with no error (the decision is valid — it is the
// array that is not).
func TestChaosDegradedFailClosed(t *testing.T) {
	inj := faultinject.New(faultinject.Config{
		DropChannelsEvery: 1,
		DropChannels:      []int{0, 2, 3},
	})
	eng := newChaosEngine(t, inj, 1)
	d, err := eng.Decide(context.Background(), testRecording(7))
	if err != nil {
		t.Fatal(err)
	}
	if d.Accepted || d.Reason != core.ReasonDegraded {
		t.Fatalf("decision %+v, want ReasonDegraded reject", d)
	}
	if d.DegradedChannels != 3 {
		t.Fatalf("DegradedChannels = %d, want 3", d.DegradedChannels)
	}
}

// TestChaosPanicStormWithBreaker: with the breaker enabled, a sustained
// panic storm trips it; every result is still delivered exactly once,
// every decision still rejects, and once the storm passes the breaker's
// half-open probe restores service.
func TestChaosPanicStormWithBreaker(t *testing.T) {
	inj := faultinject.New(faultinject.Config{PanicEvery: 1})
	reg := metrics.NewRegistry()
	sys, err := core.NewSystem(core.Config{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	sys.SetMode(core.ModeHeadTalk)
	clk := newFakeClock()
	eng, err := NewEngine(Config{
		System: sys, Workers: 2, QueueSize: 32, Metrics: reg,
		BreakerThreshold: 4, BreakerCooldown: time.Second, Clock: clk.Now,
		FaultHook: inj.Hook(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = eng.Close() })

	sawBreakerReject := false
	for i := 0; i < 40; i++ {
		d, err := eng.Decide(context.Background(), testRecording(uint64(200+i)))
		if d.Accepted {
			t.Fatalf("request %d accepted during panic storm", i)
		}
		switch {
		case IsPanic(err):
		case errors.Is(err, ErrBreakerOpen):
			sawBreakerReject = true
		default:
			t.Fatalf("request %d: unexpected outcome err=%v d=%+v", i, err, d)
		}
	}
	if !sawBreakerReject {
		t.Fatal("breaker never opened under a sustained panic storm")
	}

	inj.SetEnabled(false)
	clk.Advance(time.Second)
	d, err := eng.Decide(context.Background(), testRecording(999))
	if err != nil || d.Reason != core.ReasonNoOrientation {
		t.Fatalf("post-storm decision %+v, err %v", d, err)
	}
	if h := eng.HealthSnapshot(); !h.Healthy {
		t.Fatalf("post-storm health %+v", h)
	}
}
