package serve

import (
	"sync"
	"time"

	"headtalk/internal/metrics"
)

// BreakerState is the circuit breaker's position.
type BreakerState int32

// Breaker states.
const (
	// BreakerClosed: traffic flows; consecutive pipeline failures are
	// counted.
	BreakerClosed BreakerState = iota
	// BreakerOpen: the engine rejects fast with ErrBreakerOpen until
	// the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: one probe request is in flight; its outcome
	// closes or re-opens the breaker.
	BreakerHalfOpen
)

// String returns the state name.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half_open"
	default:
		return "unknown"
	}
}

// Breaker is a consecutive-failure circuit breaker. The serving
// engine shares one across all its workers: pipeline failures (errors
// and panics — not per-request bad input, deadline expiries or
// full-queue rejections) increment a consecutive counter; at threshold
// the breaker opens and the engine rejects fast. After cooldown one
// probe request is let through half-open: success closes the breaker,
// failure re-opens it for another cooldown. The cluster layer reuses
// the same breaker per peer, where "failure" means a transport-level
// forward failure. All methods are safe for concurrent use.
type Breaker struct {
	threshold int
	cooldown  time.Duration
	clock     func() time.Time
	gauge     *metrics.Gauge // serve.breaker.state; may be nil in tests

	mu          sync.Mutex
	state       BreakerState
	consecutive int
	openedAt    time.Time
}

func NewBreaker(threshold int, cooldown time.Duration, clock func() time.Time, gauge *metrics.Gauge) *Breaker {
	if clock == nil {
		clock = time.Now
	}
	b := &Breaker{threshold: threshold, cooldown: cooldown, clock: clock, gauge: gauge}
	b.setStateLocked(BreakerClosed)
	return b
}

// disabled reports whether the breaker never trips (threshold < 0).
func (b *Breaker) Disabled() bool { return b.threshold < 0 }

func (b *Breaker) setStateLocked(s BreakerState) {
	b.state = s
	if b.gauge != nil {
		b.gauge.Set(int64(s))
	}
}

// allow reports whether a request may run the pipeline. probe is true
// when this request is the half-open probe; its outcome must be fed
// back via record(probe=true).
func (b *Breaker) Allow() (ok, probe bool) {
	if b.Disabled() {
		return true, false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true, false
	case BreakerOpen:
		if b.clock().Sub(b.openedAt) >= b.cooldown {
			b.setStateLocked(BreakerHalfOpen)
			return true, true
		}
		return false, false
	case BreakerHalfOpen:
		// A probe is already in flight; keep rejecting fast.
		return false, false
	}
	return true, false
}

// record feeds one pipeline outcome back. probe must be the value
// returned by the matching allow call.
func (b *Breaker) Record(success, probe bool) {
	if b.Disabled() {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if probe {
		if success {
			b.consecutive = 0
			b.setStateLocked(BreakerClosed)
		} else {
			b.openedAt = b.clock()
			b.setStateLocked(BreakerOpen)
		}
		return
	}
	if b.state != BreakerClosed {
		// A non-probe task finishing while open/half-open (it was
		// already past allow when the breaker tripped) must not flip
		// the state; only the probe decides.
		return
	}
	if success {
		b.consecutive = 0
		return
	}
	b.consecutive++
	if b.consecutive >= b.threshold {
		b.openedAt = b.clock()
		b.setStateLocked(BreakerOpen)
	}
}

// forceOpen trips the breaker as if the threshold had just been
// crossed (the cooldown starts now). Used by the operational
// TripBreaker control; no-op when disabled.
func (b *Breaker) ForceOpen() {
	if b.Disabled() {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.openedAt = b.clock()
	b.setStateLocked(BreakerOpen)
}

// forceClose closes the breaker and clears the failure streak. Used by
// the operational ResetBreaker control; no-op when disabled.
func (b *Breaker) ForceClose() {
	if b.Disabled() {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecutive = 0
	b.setStateLocked(BreakerClosed)
}

// snapshot returns the current state and consecutive-failure count.
func (b *Breaker) Snapshot() (BreakerState, int) {
	if b.Disabled() {
		return BreakerClosed, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state, b.consecutive
}
