package serve

import (
	"runtime/debug"
	"time"

	"headtalk/internal/core"
	"headtalk/internal/trace"
)

// batchGather is the per-worker scratch of the batch collector. All
// slices are reused batch to batch so a warm collector allocates
// nothing while gathering and dispatching.
type batchGather struct {
	tasks []*task
	waits []time.Duration

	// Admitted subset (past deadline and breaker checks), with the
	// parallel bookkeeping the post-run accounting needs.
	admitted []*task
	adWaits  []time.Duration
	adGather []time.Duration
	probes   []bool
	reqs     []core.BatchRequest
	outs     []core.BatchResult
}

// batchWorker drains the queue in gathered batches: after dequeuing one
// task it collects up to MaxBatch-1 more, waiting at most GatherDelay
// for stragglers, then dispatches the batch through the core pipeline's
// batched DSP schedule. Per-task admission (deadline expiry, breaker)
// and delivery semantics are identical to the sequential worker's.
func (e *Engine) batchWorker(p *core.Preprocessor) {
	var g batchGather
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	for t := range e.queue {
		e.ins.queueDepth.Add(-1)
		g.tasks = append(g.tasks[:0], t)
		g.waits = append(g.waits[:0], time.Since(t.enqueued))
		timer.Reset(e.cfg.GatherDelay)
		fired := false
	gather:
		for len(g.tasks) < e.cfg.MaxBatch {
			select {
			case t2, ok := <-e.queue:
				if !ok {
					// Queue closed mid-gather: serve what we have; the
					// outer range loop exits on its next receive.
					break gather
				}
				e.ins.queueDepth.Add(-1)
				g.tasks = append(g.tasks, t2)
				g.waits = append(g.waits, time.Since(t2.enqueued))
			case <-timer.C:
				fired = true
				break gather
			}
		}
		if !fired && !timer.Stop() {
			<-timer.C
		}
		p = e.processBatch(p, &g)
	}
}

// processBatch admits, runs and delivers one gathered batch. It returns
// the preprocessor to keep using — a fresh one when the batched
// pipeline panicked (the biquad cascade may have been interrupted
// mid-update).
func (e *Engine) processBatch(p *core.Preprocessor, g *batchGather) *core.Preprocessor {
	e.ins.batchSize.Observe(float64(len(g.tasks)))
	e.ins.batchFill.Set(int64(len(g.tasks)))

	// Admission, exactly as the sequential worker decides it per task:
	// a lapsed deadline is delivered without burning pipeline time, an
	// open breaker fails closed, everything else enters the batch run.
	gatherEnd := time.Now()
	g.admitted = g.admitted[:0]
	g.adWaits = g.adWaits[:0]
	g.adGather = g.adGather[:0]
	g.probes = g.probes[:0]
	g.reqs = g.reqs[:0]
	for i, t := range g.tasks {
		wait := g.waits[i]
		e.ins.queueWait.ObserveDuration(wait)
		tr := trace.FromContext(t.ctx)
		tr.Observe(trace.StageQueueWait, wait)
		gather := gatherEnd.Sub(t.enqueued) - wait
		if gather < 0 {
			gather = 0
		}
		tr.Observe(trace.StageBatchGather, gather)
		pickup := tr.Begin()
		if t.ctx.Err() != nil {
			res := Result{ID: t.req.ID, QueueWait: wait, Err: t.ctx.Err()}
			e.ins.expired.Inc()
			tr.SetOutcome("", false, "expired")
			e.deliver(t, res)
			continue
		}
		allowed, probe := e.breaker.Allow()
		if !allowed {
			res := Result{
				ID:        t.req.ID,
				QueueWait: wait,
				Decision:  core.Decision{Accepted: false, Reason: core.ReasonUnhealthy},
				Err:       ErrBreakerOpen,
			}
			e.ins.breakerFast.Inc()
			tr.SetOutcome("", false, core.ReasonUnhealthy.Slug())
			e.deliver(t, res)
			continue
		}
		tr.End(trace.StagePickup, pickup)
		g.admitted = append(g.admitted, t)
		g.adWaits = append(g.adWaits, wait)
		g.adGather = append(g.adGather, gather)
		g.probes = append(g.probes, probe)
		g.reqs = append(g.reqs, core.BatchRequest{Ctx: t.ctx, Rec: t.req.Recording})
	}
	if len(g.admitted) == 0 {
		return p
	}

	start := time.Now()
	results, panicked := e.runBatchPipeline(p, g)
	batchDur := time.Since(start)
	if panicked {
		p = e.cfg.System.NewPreprocessor()
	}
	for i, t := range g.admitted {
		br := results[i]
		res := Result{
			ID:        t.req.ID,
			Decision:  br.Decision,
			Err:       br.Err,
			QueueWait: g.adWaits[i],
			Total:     g.adWaits[i] + g.adGather[i] + batchDur,
		}
		e.ins.decisionLat.ObserveDuration(res.Total)
		if br.Err != nil {
			e.ins.failed.Inc()
		}
		if panicked {
			trace.FromContext(t.ctx).SetOutcome("", false, core.ReasonPanic.Slug())
		}
		e.breaker.Record(!breakerFailure(br.Err), g.probes[i])
		e.deliver(t, res)
	}
	return p
}

// runBatchPipeline executes one admitted batch with panic isolation. A
// recovered panic — from a fault hook or anywhere in the batched
// pipeline — fails every request of the batch closed with the same
// *ErrPipelinePanic; the worker survives, as in the sequential path,
// but a mid-batch panic costs the whole batch rather than one
// submission (per-item completion cannot be distinguished after the
// stack unwinds).
func (e *Engine) runBatchPipeline(p *core.Preprocessor, g *batchGather) (res []core.BatchResult, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			perr := &ErrPipelinePanic{Value: r, Stack: string(debug.Stack())}
			res = g.outs[:0]
			for range g.reqs {
				res = append(res, core.BatchResult{
					Decision: core.Decision{Accepted: false, Reason: core.ReasonPanic},
					Err:      perr,
				})
			}
			g.outs = res
			panicked = true
			e.ins.panics.Inc()
		}
	}()
	if e.cfg.FaultHook != nil {
		for i := range g.reqs {
			g.reqs[i].Rec = e.cfg.FaultHook(g.reqs[i].Rec)
		}
	}
	g.outs = e.cfg.System.ProcessWakeBatchWith(p, g.reqs, g.outs)
	return g.outs, false
}
