package liveness

import (
	"bytes"
	"math"
	"math/rand/v2"
	"testing"

	"headtalk/internal/dsp"
	"headtalk/internal/speech"
)

func TestFramesShape(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	x := make([]float64, 16000) // 1 s at 16 kHz
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	frames, err := Frames(x, 16000)
	if err != nil {
		t.Fatal(err)
	}
	// (16000-400)/160+1 = 98 frames.
	if len(frames) != 98 {
		t.Errorf("%d frames, want 98", len(frames))
	}
	for _, f := range frames {
		if len(f) != NumFilters {
			t.Fatalf("frame width %d, want %d", len(f), NumFilters)
		}
	}
}

func TestFramesResamples48k(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	x := make([]float64, 48000)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	frames, err := Frames(x, 48000)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) < 90 || len(frames) > 100 {
		t.Errorf("%d frames from 1 s at 48 kHz", len(frames))
	}
}

func TestFramesNormalized(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	x := make([]float64, 16000)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	frames, err := Frames(x, 16000)
	if err != nil {
		t.Fatal(err)
	}
	for f := 0; f < NumFilters; f++ {
		col := make([]float64, len(frames))
		for t2 := range frames {
			col[t2] = frames[t2][f]
		}
		if m := dsp.Mean(col); math.Abs(m) > 1e-9 {
			t.Fatalf("filter %d column mean %g, want 0", f, m)
		}
	}
}

func TestFramesAmplitudeInvariance(t *testing.T) {
	// Z-scoring the waveform + per-utterance normalization makes the
	// features level-invariant.
	rng := rand.New(rand.NewPCG(7, 8))
	x := make([]float64, 16000)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	loud := make([]float64, len(x))
	for i := range x {
		loud[i] = 100 * x[i]
	}
	a, err := Frames(x, 16000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Frames(loud, 16000)
	if err != nil {
		t.Fatal(err)
	}
	for ti := range a {
		for fi := range a[ti] {
			if math.Abs(a[ti][fi]-b[ti][fi]) > 1e-6 {
				t.Fatalf("amplitude leaked into features at (%d,%d)", ti, fi)
			}
		}
	}
}

func TestFramesErrors(t *testing.T) {
	if _, err := Frames(nil, 16000); err == nil {
		t.Error("expected error for empty waveform")
	}
	if _, err := Frames(make([]float64, 100), 16000); err == nil {
		t.Error("expected error for too-short waveform")
	}
}

// synthPair builds human and replayed utterances at 16 kHz.
func synthPair(n int, seed uint64) (waveforms [][]float64, labels []int) {
	rng := rand.New(rand.NewPCG(seed, 1))
	for i := 0; i < n; i++ {
		voice := speech.RandomVoice(rng)
		human := speech.Synthesize(speech.WordComputer, voice, 16000, rng)
		waveforms = append(waveforms, human.Samples)
		labels = append(labels, LabelHuman)
		profile := speech.ReplayProfiles()[i%3]
		replayed := speech.RenderMechanical(human, profile, rng)
		waveforms = append(waveforms, replayed.Samples)
		labels = append(labels, LabelSpoof)
	}
	return waveforms, labels
}

func TestDetectorSeparatesHumanFromReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("liveness training is slow")
	}
	trainW, trainY := synthPair(16, 11)
	det := NewDetector(1)
	det.Config().Epochs = 20
	if err := det.Train(trainW, 16000, trainY); err != nil {
		t.Fatal(err)
	}
	testW, testY := synthPair(10, 12)
	eer, _, acc, err := det.Evaluate(testW, 16000, testY)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.85 {
		t.Errorf("liveness accuracy %g", acc)
	}
	if eer > 0.2 {
		t.Errorf("liveness EER %g", eer)
	}
}

func TestDetectorAdaptDoesNotDegrade(t *testing.T) {
	if testing.Short() {
		t.Skip("liveness training is slow")
	}
	trainW, trainY := synthPair(12, 13)
	det := NewDetector(2)
	det.Config().Epochs = 15
	if err := det.Train(trainW, 16000, trainY); err != nil {
		t.Fatal(err)
	}
	moreW, moreY := synthPair(6, 14)
	if err := det.Adapt(moreW, 16000, moreY, 5); err != nil {
		t.Fatal(err)
	}
	testW, testY := synthPair(8, 15)
	_, _, acc, err := det.Evaluate(testW, 16000, testY)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.8 {
		t.Errorf("accuracy after adaptation %g", acc)
	}
}

func TestDetectorErrors(t *testing.T) {
	det := NewDetector(3)
	if err := det.Train([][]float64{{1}}, 16000, []int{0, 1}); err == nil {
		t.Error("expected length-mismatch error")
	}
	if err := det.Train([][]float64{make([]float64, 10)}, 16000, []int{0}); err == nil {
		t.Error("expected too-short-waveform error")
	}
}

func TestDetectorSaveLoadRoundTrip(t *testing.T) {
	trainW, trainY := synthPair(6, 17)
	det := NewDetector(4)
	det.Config().Epochs = 4
	if err := det.Train(trainW, 16000, trainY); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := det.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	probe := trainW[0]
	a, err := det.Score(probe, 16000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := loaded.Score(probe, 16000)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("score mismatch after reload: %g vs %g", a, b)
	}
	// Still adaptable after a reload.
	if err := loaded.Adapt(trainW[:2], 16000, trainY[:2], 1); err != nil {
		t.Fatal(err)
	}
}
