package liveness

import (
	"io"

	"headtalk/internal/ml"
)

// Typed load errors, shared with the ml package (the detector document
// IS a ConvNet document).
var (
	ErrUnsupportedVersion = ml.ErrUnsupportedVersion
	ErrCorruptModel       = ml.ErrCorruptModel
)

// Save writes the trained detector to w as versioned JSON so a
// deployment can enroll once and load at boot. The network remains
// adaptable after a reload (Adapt restarts the optimizer state).
func (d *Detector) Save(w io.Writer) error {
	return ml.SaveConvNet(w, d.net)
}

// Load reads a detector written by Save.
func Load(r io.Reader) (*Detector, error) {
	net, err := ml.LoadConvNet(r)
	if err != nil {
		return nil, err
	}
	return &Detector{net: net}, nil
}
