package liveness

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// TestDetectorRoundTripByteIdentical: serialize → deserialize →
// serialize must reproduce the exact bytes so snapshot checksums stay
// stable when a tenant migrates between cluster nodes.
func TestDetectorRoundTripByteIdentical(t *testing.T) {
	trainW, trainY := synthPair(6, 23)
	det := NewDetector(4)
	det.Config().Epochs = 2
	if err := det.Train(trainW, 16000, trainY); err != nil {
		t.Fatal(err)
	}
	var first bytes.Buffer
	if err := det.Save(&first); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := loaded.Save(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatal("detector round trip not byte-identical")
	}
}

// TestLoadTypedErrors: the detector document is a ConvNet document, so
// load failures surface the shared ml sentinels and never panic.
func TestLoadTypedErrors(t *testing.T) {
	trainW, trainY := synthPair(6, 29)
	det := NewDetector(5)
	det.Config().Epochs = 2
	if err := det.Train(trainW, 16000, trainY); err != nil {
		t.Fatal(err)
	}
	var valid bytes.Buffer
	if err := det.Save(&valid); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		doc  string
		want error
	}{
		{"empty", "", ErrCorruptModel},
		{"garbage", "{{{{", ErrCorruptModel},
		{"truncated", valid.String()[:valid.Len()/2], ErrCorruptModel},
		{"wrong_version", `{"version":9,"config":{}}`, ErrUnsupportedVersion},
		{"hostile_dims", `{"version":1,"config":{"InputDim":-1,"ConvChannels":[4],"KernelSize":5,"HiddenDim":8},"convs":[{"w":[],"b":[]}],"dense1":{},"dense2":{}}`, ErrCorruptModel},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d, err := Load(strings.NewReader(tc.doc))
			if d != nil || !errors.Is(err, tc.want) {
				t.Fatalf("Load(%s) = %v, %v; want errors.Is(err, %v)", tc.name, d, err, tc.want)
			}
		})
	}
}
