// Package liveness decides whether an utterance was produced by a live
// human or replayed through a mechanical speaker (paper §III-A). The
// paper fine-tunes a pretrained wav2vec2 on ASVspoof 2019 and then
// incrementally adapts it to its own replay data; this package plays
// the same role with a from-scratch convolutional network over log
// filterbank features of the 16 kHz downsampled utterance (see
// DESIGN.md for the substitution rationale). The discriminative signal
// is identical to the paper's Fig. 3: live speech shows exponential
// high-band decay above 4 kHz, replayed speech a flatter, noisier high
// band.
package liveness

import (
	"fmt"
	"math"
	"sync"

	"headtalk/internal/dsp"
)

// Frontend parameters: 16 kHz input, 25 ms frames, 10 ms hop, 24
// log-spaced triangular filters spanning 100 Hz – 7.6 kHz.
const (
	TargetRate  = 16000
	frameLen    = 400 // 25 ms at 16 kHz
	frameHop    = 160 // 10 ms
	fftSize     = 512
	NumFilters  = 24
	filterLoHz  = 100
	filterHiHz  = 7600
	logFloorEps = 1e-10
)

// filterbankOnce caches the filterbank: the filters depend only on
// package constants, so every Frames call shares one immutable copy.
var (
	filterbankOnce sync.Once
	filterbankTbl  [][]float64
)

func cachedFilterbank() [][]float64 {
	filterbankOnce.Do(func() { filterbankTbl = filterbank() })
	return filterbankTbl
}

// filterbank returns NumFilters triangular filters over fftSize/2+1
// bins at TargetRate, log-spaced in frequency.
func filterbank() [][]float64 {
	centers := make([]float64, NumFilters+2)
	logLo := math.Log(filterLoHz)
	logHi := math.Log(filterHiHz)
	for i := range centers {
		centers[i] = math.Exp(logLo + (logHi-logLo)*float64(i)/float64(NumFilters+1))
	}
	bins := fftSize/2 + 1
	binHz := float64(TargetRate) / fftSize
	fb := make([][]float64, NumFilters)
	for f := 0; f < NumFilters; f++ {
		fb[f] = make([]float64, bins)
		lo, mid, hi := centers[f], centers[f+1], centers[f+2]
		for b := 0; b < bins; b++ {
			freq := float64(b) * binHz
			switch {
			case freq <= lo || freq >= hi:
				// zero
			case freq <= mid:
				fb[f][b] = (freq - lo) / (mid - lo)
			default:
				fb[f][b] = (hi - freq) / (hi - mid)
			}
		}
	}
	return fb
}

// Frames converts a waveform at sample rate fs into normalized log
// filterbank frames (T × NumFilters), the liveness network's input.
// The waveform is resampled to 16 kHz and standardized to zero mean /
// unit variance first, mirroring wav2vec2's input convention.
func Frames(x []float64, fs float64) ([][]float64, error) {
	if len(x) == 0 {
		return nil, fmt.Errorf("liveness: empty waveform")
	}
	wav := x
	if fs != TargetRate {
		resampled, err := dsp.Resample(x, fs, TargetRate)
		if err != nil {
			return nil, fmt.Errorf("liveness: resampling %g Hz -> 16 kHz: %w", fs, err)
		}
		wav = resampled
	}
	wav = dsp.ZScore(wav)
	if len(wav) < frameLen {
		return nil, fmt.Errorf("liveness: waveform too short (%d samples at 16 kHz, need %d)", len(wav), frameLen)
	}

	fb := cachedFilterbank()
	win := dsp.Hann.Coefficients(frameLen)
	nFrames := (len(wav)-frameLen)/frameHop + 1
	frames := make([][]float64, 0, nFrames)
	backing := make([]float64, nFrames*NumFilters)
	buf := make([]float64, fftSize)
	spec := make([]complex128, fftSize/2+1)
	pow := make([]float64, fftSize/2+1)
	p := dsp.Plan(fftSize)
	for start := 0; start+frameLen <= len(wav); start += frameHop {
		for i := 0; i < frameLen; i++ {
			buf[i] = wav[start+i] * win[i]
		}
		// The zero tail beyond frameLen never changes.
		p.RFFT(spec, buf)
		dsp.PowerInto(pow, spec)
		fi := len(frames)
		frame := backing[fi*NumFilters : (fi+1)*NumFilters]
		for f := 0; f < NumFilters; f++ {
			var acc float64
			for b, w := range fb[f] {
				if w != 0 {
					acc += w * pow[b]
				}
			}
			frame[f] = math.Log(acc + logFloorEps)
		}
		frames = append(frames, frame)
	}
	if len(frames) == 0 {
		return nil, fmt.Errorf("liveness: no frames produced")
	}

	// Per-utterance feature normalization.
	for f := 0; f < NumFilters; f++ {
		col := make([]float64, len(frames))
		for t := range frames {
			col[t] = frames[t][f]
		}
		m := dsp.Mean(col)
		s := dsp.Std(col)
		if s < 1e-9 {
			s = 1
		}
		for t := range frames {
			frames[t][f] = (frames[t][f] - m) / s
		}
	}
	return frames, nil
}
