package liveness

import (
	"fmt"

	"headtalk/internal/audio"
)

// Ensemble fuses the two independent liveness signals — the spectral
// ConvNet detector over the mono mix and the array fingerprint over
// the raw multi-channel capture — into one fail-closed gate: audio is
// live only when BOTH gates pass, and a missing model rejects rather
// than waving the check through. Two physical signals make spoofing
// strictly harder: a replay must fool the high-band spectral detector
// AND reproduce the enrolled array's long-term coloration.
type Ensemble struct {
	// Spectral is the ConvNet human-vs-mechanical detector.
	Spectral *Detector
	// Fingerprint is the enrolled array signature gate.
	Fingerprint *ArrayFingerprint
	// SpectralThreshold is the minimum live score (default 0.5).
	SpectralThreshold float64
}

// EnsembleResult is one fused liveness check.
type EnsembleResult struct {
	// Live is the fused verdict: both gates passed.
	Live bool
	// SpectralScore / SpectralRan report the ConvNet gate.
	SpectralScore float64
	SpectralRan   bool
	// FingerprintScore / FingerprintRan report the array gate.
	FingerprintScore float64
	FingerprintRan   bool
}

// Check runs both gates over one capture. rec is the raw multi-channel
// recording (the fingerprint wants the array's full-band coloration);
// mono is the preprocessed mono mix at rate fs for the spectral
// detector. The ensemble fails closed: either model missing rejects
// with an error, and any gate error rejects.
func (e *Ensemble) Check(rec *audio.Recording, mono []float64, fs float64) (EnsembleResult, error) {
	var res EnsembleResult
	if e.Spectral == nil || e.Fingerprint == nil {
		return res, fmt.Errorf("liveness: ensemble is missing a gate model (spectral %v, fingerprint %v) — failing closed",
			e.Spectral != nil, e.Fingerprint != nil)
	}
	thr := e.SpectralThreshold
	if thr == 0 {
		thr = 0.5
	}
	fpOK, fpScore, err := e.Fingerprint.Check(rec)
	if err != nil {
		return res, err
	}
	res.FingerprintScore = fpScore
	res.FingerprintRan = true
	spScore, err := e.Spectral.Score(mono, fs)
	if err != nil {
		return res, err
	}
	res.SpectralScore = spScore
	res.SpectralRan = true
	res.Live = fpOK && spScore >= thr
	return res, nil
}
