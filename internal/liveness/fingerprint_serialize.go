package liveness

import (
	"encoding/json"
	"fmt"
	"io"
)

const fingerprintFormatVersion = 1

// fingerprintDTO is the on-disk form of a trained array fingerprint.
// Serialization is byte-stable: save → load → save yields identical
// bytes, the invariant the model registry's checksummed envelopes and
// the cluster snapshot discipline both rely on.
type fingerprintDTO struct {
	Version    int               `json:"version"`
	Config     FingerprintConfig `json:"config"`
	SampleRate float64           `json:"sample_rate"`
	Signature  []float64         `json:"signature"`
	Tolerance  []float64         `json:"tolerance"`
}

// Save writes the trained fingerprint to w as versioned JSON.
func (f *ArrayFingerprint) Save(w io.Writer) error {
	if len(f.signature) == 0 {
		return fmt.Errorf("liveness: array fingerprint is not trained")
	}
	dto := fingerprintDTO{
		Version:    fingerprintFormatVersion,
		Config:     f.cfg,
		SampleRate: f.sampleRate,
		Signature:  f.signature,
		Tolerance:  f.tolerance,
	}
	return json.NewEncoder(w).Encode(dto)
}

// LoadFingerprint reads a fingerprint written by Save. Version skew
// and structural damage surface as the package's typed load errors.
func LoadFingerprint(r io.Reader) (*ArrayFingerprint, error) {
	var dto fingerprintDTO
	if err := json.NewDecoder(r).Decode(&dto); err != nil {
		return nil, fmt.Errorf("liveness: decoding fingerprint: %w: %v", ErrCorruptModel, err)
	}
	if dto.Version != fingerprintFormatVersion {
		return nil, fmt.Errorf("liveness: %w: fingerprint version %d (want %d)", ErrUnsupportedVersion, dto.Version, fingerprintFormatVersion)
	}
	if len(dto.Signature) == 0 || len(dto.Signature) != len(dto.Tolerance) {
		return nil, fmt.Errorf("liveness: %w: fingerprint signature/tolerance lengths %d/%d", ErrCorruptModel, len(dto.Signature), len(dto.Tolerance))
	}
	if dto.Config.Bands != len(dto.Signature) {
		return nil, fmt.Errorf("liveness: %w: fingerprint bands %d vs signature %d", ErrCorruptModel, dto.Config.Bands, len(dto.Signature))
	}
	if dto.SampleRate <= 0 || dto.Config.FrameLen <= 0 {
		return nil, fmt.Errorf("liveness: %w: fingerprint sample rate %g / frame %d", ErrCorruptModel, dto.SampleRate, dto.Config.FrameLen)
	}
	for _, tol := range dto.Tolerance {
		if tol <= 0 {
			return nil, fmt.Errorf("liveness: %w: non-positive fingerprint tolerance", ErrCorruptModel)
		}
	}
	f := &ArrayFingerprint{
		cfg:        dto.Config,
		sampleRate: dto.SampleRate,
		signature:  dto.Signature,
		tolerance:  dto.Tolerance,
	}
	f.computeEdges()
	return f, nil
}
