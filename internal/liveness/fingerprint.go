package liveness

import (
	"fmt"
	"math"

	"headtalk/internal/audio"
	"headtalk/internal/dsp"
)

// FingerprintConfig tunes the array-fingerprint gate.
type FingerprintConfig struct {
	// Bands is the number of log-spaced analysis bands between MinHz
	// and MaxHz (default 48).
	Bands int `json:"bands"`
	// FrameLen is the Welch periodogram frame length (default 2048).
	FrameLen int `json:"frame_len"`
	// MinHz / MaxHz bound the analysis range (defaults 100 Hz and
	// 0.95 × Nyquist).
	MinHz float64 `json:"min_hz"`
	MaxHz float64 `json:"max_hz"`
	// ToleranceFloorDB floors the per-band enrollment tolerance so a
	// band the enrollment set happened to agree on exactly does not
	// become an impossible constraint (default 3 dB).
	ToleranceFloorDB float64 `json:"tolerance_floor_db"`
	// Threshold is the minimum similarity score Check accepts
	// (default 0.5).
	Threshold float64 `json:"threshold"`
	// Softness maps excess spectral distance to score decay: larger
	// values reject more gently (default 4).
	Softness float64 `json:"softness"`
}

func (c FingerprintConfig) withDefaults(fs float64) FingerprintConfig {
	if c.Bands == 0 {
		c.Bands = 48
	}
	if c.FrameLen == 0 {
		c.FrameLen = 2048
	}
	if c.MinHz == 0 {
		c.MinHz = 100
	}
	if c.MaxHz == 0 {
		c.MaxHz = 0.95 * fs / 2
	}
	if c.MaxHz > 0.95*fs/2 {
		c.MaxHz = 0.95 * fs / 2
	}
	if c.ToleranceFloorDB == 0 {
		c.ToleranceFloorDB = 3
	}
	if c.Threshold == 0 {
		c.Threshold = 0.5
	}
	if c.Softness == 0 {
		c.Softness = 4
	}
	return c
}

// ArrayFingerprint is the second liveness gate: the long-term spectral
// signature a microphone array imprints on everything it captures —
// its own hardware response plus the room coloration at its placement
// ("Your Microphone Array Retains Your Identity"). Live speech through
// the enrolled array stays inside the enrolled per-band tolerances;
// replayed speech arrives through an extra electro-acoustic chain
// (driver band-limiting, distortion products, playback noise floor)
// whose coloration the enrollment never saw, so its band profile
// deviates. The fingerprint is independent of the spectral ConvNet
// detector — two physical signals that a spoofer must defeat at once.
//
// An ArrayFingerprint is immutable after training and safe for
// concurrent use.
type ArrayFingerprint struct {
	cfg        FingerprintConfig
	sampleRate float64
	// signature is the enrolled mean band profile in dB, level- and
	// channel-normalized; tolerance is the per-band enrollment spread
	// (floored).
	signature []float64
	tolerance []float64
	// edges are the precomputed band bin ranges for the frame length.
	loBin, hiBin []int
}

// TrainArrayFingerprint learns the array's signature from live
// enrollment captures (multi-channel, all from the same array at its
// deployed placement). At least two captures are required so the
// per-band tolerance reflects real utterance-to-utterance variation.
func TrainArrayFingerprint(recs []*audio.Recording, cfg FingerprintConfig) (*ArrayFingerprint, error) {
	if len(recs) < 2 {
		return nil, fmt.Errorf("liveness: array fingerprint needs at least 2 enrollment captures, have %d", len(recs))
	}
	fs := recs[0].SampleRate
	cfg = cfg.withDefaults(fs)
	f := &ArrayFingerprint{cfg: cfg, sampleRate: fs}
	f.computeEdges()

	profiles := make([][]float64, 0, len(recs))
	for i, rec := range recs {
		if rec.SampleRate != fs {
			return nil, fmt.Errorf("liveness: enrollment capture %d at %g Hz, want %g", i, rec.SampleRate, fs)
		}
		p, err := f.bandProfile(rec)
		if err != nil {
			return nil, fmt.Errorf("liveness: enrollment capture %d: %w", i, err)
		}
		profiles = append(profiles, p)
	}
	nb := cfg.Bands
	f.signature = make([]float64, nb)
	f.tolerance = make([]float64, nb)
	for b := 0; b < nb; b++ {
		var mean float64
		for _, p := range profiles {
			mean += p[b]
		}
		mean /= float64(len(profiles))
		var varSum float64
		for _, p := range profiles {
			d := p[b] - mean
			varSum += d * d
		}
		std := math.Sqrt(varSum / float64(len(profiles)))
		if std < cfg.ToleranceFloorDB {
			std = cfg.ToleranceFloorDB
		}
		f.signature[b] = mean
		f.tolerance[b] = std
	}
	return f, nil
}

// computeEdges precomputes log-spaced band -> FFT-bin ranges.
func (f *ArrayFingerprint) computeEdges() {
	nb := f.cfg.Bands
	bins := f.cfg.FrameLen/2 + 1
	hzPerBin := f.sampleRate / float64(f.cfg.FrameLen)
	f.loBin = make([]int, nb)
	f.hiBin = make([]int, nb)
	logLo := math.Log(f.cfg.MinHz)
	logHi := math.Log(f.cfg.MaxHz)
	for b := 0; b < nb; b++ {
		lo := math.Exp(logLo + (logHi-logLo)*float64(b)/float64(nb))
		hi := math.Exp(logLo + (logHi-logLo)*float64(b+1)/float64(nb))
		loBin := int(lo / hzPerBin)
		hiBin := int(hi / hzPerBin)
		if hiBin <= loBin {
			hiBin = loBin + 1
		}
		if hiBin > bins {
			hiBin = bins
		}
		if loBin >= bins {
			loBin = bins - 1
		}
		f.loBin[b] = loBin
		f.hiBin[b] = hiBin
	}
}

// bandProfile computes the capture's level-normalized band profile in
// dB: per-channel Welch PSDs averaged across channels, folded into the
// log-spaced bands, converted to dB, with the mean level subtracted so
// capture gain cancels.
func (f *ArrayFingerprint) bandProfile(rec *audio.Recording) ([]float64, error) {
	if len(rec.Channels) == 0 {
		return nil, fmt.Errorf("fingerprint profile of empty recording")
	}
	bins := f.cfg.FrameLen/2 + 1
	acc := make([]float64, bins)
	counted := 0
	for _, ch := range rec.Channels {
		psd, err := dsp.WelchPSD(ch, f.cfg.FrameLen)
		if err != nil {
			return nil, err
		}
		for i, v := range psd {
			acc[i] += v
		}
		counted++
	}
	inv := 1 / float64(counted)
	for i := range acc {
		acc[i] *= inv
	}
	nb := f.cfg.Bands
	prof := make([]float64, nb)
	var mean float64
	for b := 0; b < nb; b++ {
		var e float64
		for i := f.loBin[b]; i < f.hiBin[b]; i++ {
			e += acc[i]
		}
		e /= float64(f.hiBin[b] - f.loBin[b])
		prof[b] = 10 * math.Log10(e+1e-20)
		mean += prof[b]
	}
	mean /= float64(nb)
	for b := range prof {
		prof[b] -= mean
	}
	return prof, nil
}

// Score returns a similarity score in (0, 1]: how well the capture's
// band profile matches the enrolled array signature. Live captures
// through the enrolled array score near 1; audio that crossed an extra
// playback chain scores low.
func (f *ArrayFingerprint) Score(rec *audio.Recording) (float64, error) {
	if rec == nil || len(rec.Channels) == 0 {
		return 0, fmt.Errorf("liveness: fingerprint scoring empty recording")
	}
	if rec.SampleRate != f.sampleRate {
		return 0, fmt.Errorf("liveness: fingerprint enrolled at %g Hz, capture is %g Hz", f.sampleRate, rec.SampleRate)
	}
	prof, err := f.bandProfile(rec)
	if err != nil {
		return 0, fmt.Errorf("liveness: fingerprint profile: %w", err)
	}
	var d float64
	for b, v := range prof {
		z := (v - f.signature[b]) / f.tolerance[b]
		d += z * z
	}
	d /= float64(len(prof))
	// Mean squared z of ~1 is exactly the enrolled spread: full score.
	// Excess distance decays the score; Softness sets how fast.
	excess := d - 1
	if excess < 0 {
		excess = 0
	}
	return 1 / (1 + excess/f.cfg.Softness), nil
}

// Check applies the configured accept threshold.
func (f *ArrayFingerprint) Check(rec *audio.Recording) (bool, float64, error) {
	s, err := f.Score(rec)
	if err != nil {
		return false, 0, err
	}
	return s >= f.cfg.Threshold, s, nil
}

// Threshold returns the configured accept threshold.
func (f *ArrayFingerprint) Threshold() float64 { return f.cfg.Threshold }

// Config returns the (defaulted) configuration the fingerprint was
// trained with.
func (f *ArrayFingerprint) Config() FingerprintConfig { return f.cfg }

// SampleRate returns the enrollment sample rate.
func (f *ArrayFingerprint) SampleRate() float64 { return f.sampleRate }
