package liveness

import (
	"bytes"
	"errors"
	"math/rand/v2"
	"testing"

	"headtalk/internal/audio"
)

// coloredCapture synthesizes a 4-channel recording of noise through a
// simple coloration filter: a moving average of length taps (taps=1 is
// white). Different tap counts give clearly different long-term band
// profiles — a stand-in for "same array" vs "through a playback chain".
func coloredCapture(seed uint64, taps, n int) *audio.Recording {
	rng := rand.New(rand.NewPCG(seed, 77))
	rec := audio.NewRecording(48000, 4, n)
	for c := range rec.Channels {
		raw := make([]float64, n+taps)
		for i := range raw {
			raw[i] = rng.NormFloat64()
		}
		for i := 0; i < n; i++ {
			var s float64
			for k := 0; k < taps; k++ {
				s += raw[i+k]
			}
			rec.Channels[c][i] = s / float64(taps)
		}
	}
	return rec
}

func trainedFingerprint(t *testing.T, taps int) *ArrayFingerprint {
	t.Helper()
	var recs []*audio.Recording
	for i := 0; i < 4; i++ {
		recs = append(recs, coloredCapture(uint64(100+i), taps, 24000))
	}
	fp, err := TrainArrayFingerprint(recs, FingerprintConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return fp
}

func TestFingerprintSeparatesColorations(t *testing.T) {
	fp := trainedFingerprint(t, 1)

	same, err := fp.Score(coloredCapture(500, 1, 24000))
	if err != nil {
		t.Fatal(err)
	}
	other, err := fp.Score(coloredCapture(501, 12, 24000))
	if err != nil {
		t.Fatal(err)
	}
	if same <= other {
		t.Fatalf("matching coloration scored %.3f, foreign %.3f — want matching higher", same, other)
	}
	okSame, _, err := fp.Check(coloredCapture(502, 1, 24000))
	if err != nil {
		t.Fatal(err)
	}
	if !okSame {
		t.Fatal("capture through the enrolled coloration should pass")
	}
	okOther, score, err := fp.Check(coloredCapture(503, 12, 24000))
	if err != nil {
		t.Fatal(err)
	}
	if okOther {
		t.Fatalf("capture through a foreign playback chain passed at %.3f", score)
	}
}

func TestFingerprintTrainingValidation(t *testing.T) {
	if _, err := TrainArrayFingerprint(nil, FingerprintConfig{}); err == nil {
		t.Fatal("training with no captures should fail")
	}
	if _, err := TrainArrayFingerprint([]*audio.Recording{coloredCapture(1, 1, 8000)}, FingerprintConfig{}); err == nil {
		t.Fatal("training with one capture should fail (no tolerance estimate)")
	}
	mixed := []*audio.Recording{coloredCapture(1, 1, 8000), audio.NewRecording(16000, 4, 8000)}
	if _, err := TrainArrayFingerprint(mixed, FingerprintConfig{}); err == nil {
		t.Fatal("mixed sample rates should fail")
	}

	fp := trainedFingerprint(t, 1)
	if _, err := fp.Score(audio.NewRecording(16000, 4, 8000)); err == nil {
		t.Fatal("scoring at a foreign sample rate should fail")
	}
	if _, err := fp.Score(nil); err == nil {
		t.Fatal("scoring nil should fail")
	}
}

func TestFingerprintSaveLoadByteStable(t *testing.T) {
	fp := trainedFingerprint(t, 1)
	var b1 bytes.Buffer
	if err := fp.Save(&b1); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFingerprint(bytes.NewReader(b1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var b2 bytes.Buffer
	if err := loaded.Save(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("save → load → save is not byte-stable")
	}

	// The reloaded model scores identically.
	rec := coloredCapture(600, 1, 24000)
	s1, err := fp.Score(rec)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := loaded.Score(rec)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Fatalf("reloaded fingerprint scores %.6f vs %.6f", s2, s1)
	}

	// Damage surfaces as typed errors.
	if _, err := LoadFingerprint(bytes.NewReader([]byte("{bad"))); !errors.Is(err, ErrCorruptModel) {
		t.Fatalf("garbage: %v, want ErrCorruptModel", err)
	}
	tampered := bytes.Replace(b1.Bytes(), []byte(`"version":1`), []byte(`"version":9`), 1)
	if _, err := LoadFingerprint(bytes.NewReader(tampered)); !errors.Is(err, ErrUnsupportedVersion) {
		t.Fatalf("future version: %v, want ErrUnsupportedVersion", err)
	}
}

func TestEnsembleFailsClosedOnMissingModel(t *testing.T) {
	fp := trainedFingerprint(t, 1)
	rec := coloredCapture(700, 1, 24000)
	mono := rec.Channels[0]

	for _, e := range []*Ensemble{
		{Spectral: nil, Fingerprint: fp},
		{Spectral: nil, Fingerprint: nil},
	} {
		res, err := e.Check(rec, mono, 48000)
		if err == nil {
			t.Fatalf("ensemble with missing model must reject, got %+v", res)
		}
		if res.Live {
			t.Fatal("fail-closed result must not be live")
		}
	}
}
