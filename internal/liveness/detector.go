package liveness

import (
	"fmt"

	"headtalk/internal/ml"
)

// Label values for liveness classification.
const (
	LabelSpoof = 0 // mechanical speaker
	LabelHuman = 1 // live human
)

// Detector classifies utterances as live-human or replayed. Train it
// once on a spoof corpus (the ASVspoof-like pretraining of §IV-A1),
// then Adapt it incrementally to new replay hardware.
type Detector struct {
	net *ml.ConvNet
}

// NewDetector returns a detector with the default network
// architecture and the given training seed.
func NewDetector(seed uint64) *Detector {
	cfg := ml.DefaultConvNetConfig(NumFilters)
	cfg.Seed = seed
	return &Detector{net: ml.NewConvNet(cfg)}
}

// Config exposes the underlying network configuration for tuning
// before Train is called.
func (d *Detector) Config() *ml.ConvNetConfig { return &d.net.Cfg }

// Train fits the network on waveforms at sample rate fs with labels
// (LabelHuman / LabelSpoof).
func (d *Detector) Train(waveforms [][]float64, fs float64, labels []int) error {
	if len(waveforms) != len(labels) {
		return fmt.Errorf("liveness: %d waveforms vs %d labels", len(waveforms), len(labels))
	}
	x, y, err := d.prepare(waveforms, fs, labels)
	if err != nil {
		return err
	}
	return d.net.Fit(x, y)
}

// Adapt continues training on new data for the given number of epochs
// without resetting weights — the incremental learning step the paper
// uses to recover accuracy on unseen replay devices (98.68% accuracy /
// 2.58% EER after 10 epochs on 20% new data).
func (d *Detector) Adapt(waveforms [][]float64, fs float64, labels []int, epochs int) error {
	x, y, err := d.prepare(waveforms, fs, labels)
	if err != nil {
		return err
	}
	return d.net.ContinueFit(x, y, epochs)
}

func (d *Detector) prepare(waveforms [][]float64, fs float64, labels []int) ([][][]float64, []int, error) {
	x := make([][][]float64, 0, len(waveforms))
	y := make([]int, 0, len(labels))
	for i, w := range waveforms {
		frames, err := Frames(w, fs)
		if err != nil {
			return nil, nil, fmt.Errorf("liveness: sample %d: %w", i, err)
		}
		x = append(x, frames)
		y = append(y, labels[i])
	}
	return x, y, nil
}

// Score returns the probability that the waveform is live human
// speech.
func (d *Detector) Score(waveform []float64, fs float64) (float64, error) {
	frames, err := Frames(waveform, fs)
	if err != nil {
		return 0, err
	}
	return d.net.PredictProba(frames)
}

// IsHuman applies the default 0.5 decision threshold.
func (d *Detector) IsHuman(waveform []float64, fs float64) (bool, error) {
	s, err := d.Score(waveform, fs)
	if err != nil {
		return false, err
	}
	return s >= 0.5, nil
}

// Evaluate scores a labeled set and returns the EER with its threshold
// plus accuracy at the 0.5 operating point.
func (d *Detector) Evaluate(waveforms [][]float64, fs float64, labels []int) (eer, threshold, accuracy float64, err error) {
	scores := make([]float64, len(waveforms))
	preds := make([]int, len(waveforms))
	for i, w := range waveforms {
		s, serr := d.Score(w, fs)
		if serr != nil {
			return 0, 0, 0, fmt.Errorf("liveness: scoring sample %d: %w", i, serr)
		}
		scores[i] = s
		if s >= 0.5 {
			preds[i] = LabelHuman
		} else {
			preds[i] = LabelSpoof
		}
	}
	eer, threshold, err = ml.EER(scores, labels)
	if err != nil {
		return 0, 0, 0, err
	}
	m, err := ml.EvaluateBinary(labels, preds)
	if err != nil {
		return 0, 0, 0, err
	}
	return eer, threshold, m.Accuracy(), nil
}
