package metrics

// Multi-tenant snapshot helpers. A serving pool gives every tenant its
// own Registry so one tenant's counters never mix with another's; the
// helpers here re-assemble those private registries into one view — a
// name-prefixed merge for the daemon's NDJSON metrics lines, and a
// label-carrying Prometheus rendering so scrapers see a proper
// `tenant="..."` dimension instead of mangled metric names.

import (
	"fmt"
	"io"
	"strings"
)

// Prefixed returns a copy of the snapshot with prefix prepended to
// every instrument name. The underlying histogram bound/count slices
// are shared (snapshots are read-only views).
func (s Snapshot) Prefixed(prefix string) Snapshot {
	out := Snapshot{
		Counters:   make(map[string]uint64, len(s.Counters)),
		Gauges:     make(map[string]int64, len(s.Gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(s.Histograms)),
	}
	for k, v := range s.Counters {
		out.Counters[prefix+k] = v
	}
	for k, v := range s.Gauges {
		out.Gauges[prefix+k] = v
	}
	for k, v := range s.Histograms {
		out.Histograms[prefix+k] = v
	}
	return out
}

// MergeSnapshots combines snapshots into one. Counters and gauges
// sharing a name are summed; histograms sharing a name are summed
// bucket-wise when their bounds match, otherwise the first occurrence
// wins (merging histograms with different layouts has no meaningful
// answer). Callers that need collision-free merges should Prefix each
// snapshot first.
func MergeSnapshots(snaps ...Snapshot) Snapshot {
	out := Snapshot{
		Counters:   make(map[string]uint64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	for _, s := range snaps {
		for k, v := range s.Counters {
			out.Counters[k] += v
		}
		for k, v := range s.Gauges {
			out.Gauges[k] += v
		}
		for k, v := range s.Histograms {
			prev, ok := out.Histograms[k]
			if !ok {
				out.Histograms[k] = v
				continue
			}
			if merged, ok := mergeHistograms(prev, v); ok {
				out.Histograms[k] = merged
			}
		}
	}
	return out
}

// mergeHistograms sums two snapshots with identical bucket layouts.
func mergeHistograms(a, b HistogramSnapshot) (HistogramSnapshot, bool) {
	if len(a.Bounds) != len(b.Bounds) || len(a.Counts) != len(b.Counts) {
		return a, false
	}
	for i := range a.Bounds {
		if a.Bounds[i] != b.Bounds[i] {
			return a, false
		}
	}
	m := HistogramSnapshot{
		Count:  a.Count + b.Count,
		Sum:    a.Sum + b.Sum,
		Bounds: a.Bounds,
		Counts: make([]uint64, len(a.Counts)),
	}
	for i := range a.Counts {
		m.Counts[i] = a.Counts[i] + b.Counts[i]
	}
	switch {
	case a.HasData && b.HasData:
		m.HasData = true
		m.Min, m.Max = a.Min, a.Max
		if b.Min < m.Min {
			m.Min = b.Min
		}
		if b.Max > m.Max {
			m.Max = b.Max
		}
	case a.HasData:
		m.HasData, m.Min, m.Max = true, a.Min, a.Max
	case b.HasData:
		m.HasData, m.Min, m.Max = true, b.Min, b.Max
	}
	return m, true
}

// WritePrometheusGrouped renders one snapshot per label value (e.g.
// tenant ID → snapshot) grouped by metric name, so each # TYPE header
// appears exactly once even when several tenants expose the same
// instrument — the exposition format forbids repeating a metadata line
// per metric. labelName names the distinguishing label ("tenant").
func WritePrometheusGrouped(w io.Writer, labelName string, snaps map[string]Snapshot) error {
	values := sortedKeys(snaps)
	lbl := func(v string) map[string]string { return map[string]string{labelName: v} }

	counterNames := map[string]bool{}
	gaugeNames := map[string]bool{}
	histNames := map[string]bool{}
	for _, v := range values {
		for k := range snaps[v].Counters {
			counterNames[k] = true
		}
		for k := range snaps[v].Gauges {
			gaugeNames[k] = true
		}
		for k := range snaps[v].Histograms {
			histNames[k] = true
		}
	}
	for _, k := range sortedKeys(counterNames) {
		n := promName(k)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n", n); err != nil {
			return err
		}
		for _, v := range values {
			if c, ok := snaps[v].Counters[k]; ok {
				if _, err := fmt.Fprintf(w, "%s{%s} %d\n", n, promLabels(lbl(v)), c); err != nil {
					return err
				}
			}
		}
	}
	for _, k := range sortedKeys(gaugeNames) {
		n := promName(k)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n", n); err != nil {
			return err
		}
		for _, v := range values {
			if g, ok := snaps[v].Gauges[k]; ok {
				if _, err := fmt.Fprintf(w, "%s{%s} %d\n", n, promLabels(lbl(v)), g); err != nil {
					return err
				}
			}
		}
	}
	for _, k := range sortedKeys(histNames) {
		n := promName(k)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", n); err != nil {
			return err
		}
		for _, v := range values {
			h, ok := snaps[v].Histograms[k]
			if !ok {
				continue
			}
			ls := promLabels(lbl(v))
			var cum uint64
			for i, bound := range h.Bounds {
				cum += h.Counts[i]
				if _, err := fmt.Fprintf(w, "%s_bucket{%s,le=%q} %d\n", n, ls, promFloat(bound), cum); err != nil {
					return err
				}
			}
			if len(h.Counts) > len(h.Bounds) {
				cum += h.Counts[len(h.Bounds)]
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{%s,le=\"+Inf\"} %d\n", n, ls, cum); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum{%s} %s\n%s_count{%s} %d\n", n, ls, promFloat(h.Sum), n, ls, cum); err != nil {
				return err
			}
		}
	}
	return nil
}

// promLabels renders a label set as `k1="v1",k2="v2"` with keys sorted
// and values escaped per the exposition format (backslash, quote,
// newline). Empty maps render as "".
func promLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := sortedKeys(labels)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(promName(k))
		b.WriteString(`="`)
		b.WriteString(promEscape(labels[k]))
		b.WriteByte('"')
	}
	return b.String()
}

// promEscape escapes a label value for the text exposition format.
func promEscape(v string) string {
	var b strings.Builder
	b.Grow(len(v))
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// WritePrometheusLabeled renders the snapshot like WritePrometheus but
// attaches the given label set to every sample — the shape a
// multi-tenant daemon wants, one scrape with `tenant="lab"` /
// `tenant="home"` series instead of per-tenant metric names. Histogram
// bucket samples combine the label set with their le label.
func (s Snapshot) WritePrometheusLabeled(w io.Writer, labels map[string]string) error {
	ls := promLabels(labels)
	brace := func() string {
		if ls == "" {
			return ""
		}
		return "{" + ls + "}"
	}()
	for _, k := range sortedKeys(s.Counters) {
		n := promName(k)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s%s %d\n", n, n, brace, s.Counters[k]); err != nil {
			return err
		}
	}
	for _, k := range sortedKeys(s.Gauges) {
		n := promName(k)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s%s %d\n", n, n, brace, s.Gauges[k]); err != nil {
			return err
		}
	}
	bucketLabels := func(le string) string {
		if ls == "" {
			return `{le="` + le + `"}`
		}
		return "{" + ls + `,le="` + le + `"}`
	}
	for _, k := range sortedKeys(s.Histograms) {
		n := promName(k)
		h := s.Histograms[k]
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", n); err != nil {
			return err
		}
		var cum uint64
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", n, bucketLabels(promFloat(bound)), cum); err != nil {
				return err
			}
		}
		if len(h.Counts) > len(h.Bounds) {
			cum += h.Counts[len(h.Bounds)]
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", n, bucketLabels("+Inf"), cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n%s_count%s %d\n", n, brace, promFloat(h.Sum), n, brace, cum); err != nil {
			return err
		}
	}
	return nil
}
