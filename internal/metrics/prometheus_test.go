package metrics

import (
	"strings"
	"testing"
)

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"serve.queue_wait":   "serve_queue_wait",
		"core.accepted":      "core_accepted",
		"plain":              "plain",
		"9lives":             "_9lives",
		"dash-and space":     "dash_and_space",
		"already_good:ratio": "already_good:ratio",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("serve.accepted").Add(7)
	r.Gauge("serve.queue_depth").Set(-3)
	h := r.Histogram("core.latency", []float64{0.001, 0.01, 0.1})
	h.Observe(0.0005) // bucket le=0.001
	h.Observe(0.005)  // bucket le=0.01
	h.Observe(0.005)
	h.Observe(5) // +Inf bucket

	var b strings.Builder
	if err := r.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, want := range []string{
		"# TYPE serve_accepted counter\nserve_accepted 7\n",
		"# TYPE serve_queue_depth gauge\nserve_queue_depth -3\n",
		"# TYPE core_latency histogram\n",
		`core_latency_bucket{le="0.001"} 1`,
		`core_latency_bucket{le="0.01"} 3`, // cumulative
		`core_latency_bucket{le="0.1"} 3`,  // still cumulative
		`core_latency_bucket{le="+Inf"} 4`, // total
		"core_latency_count 4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "core_latency_sum 5.0105") {
		t.Errorf("exposition sum wrong:\n%s", out)
	}
	// Counters sort before gauges before histograms, each alphabetized,
	// so scrape output is deterministic.
	if strings.Index(out, "serve_accepted") > strings.Index(out, "serve_queue_depth") {
		t.Error("counters should render before gauges")
	}
}

func TestWritePrometheusEmpty(t *testing.T) {
	var b strings.Builder
	if err := NewRegistry().Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Fatalf("empty registry rendered %q", b.String())
	}
}
