package metrics

import (
	"strings"
	"testing"
)

func snapshotFor(t *testing.T, fill func(*Registry)) Snapshot {
	t.Helper()
	r := NewRegistry()
	fill(r)
	return r.Snapshot()
}

func TestSnapshotPrefixed(t *testing.T) {
	s := snapshotFor(t, func(r *Registry) {
		r.Counter("serve.completed").Add(3)
		r.Gauge("serve.queue.depth").Set(2)
		r.Histogram("serve.latency", nil).Observe(0.01)
	})
	p := s.Prefixed("tenant.lab.")
	if p.Counters["tenant.lab.serve.completed"] != 3 {
		t.Fatalf("prefixed counters %v", p.Counters)
	}
	if p.Gauges["tenant.lab.serve.queue.depth"] != 2 {
		t.Fatalf("prefixed gauges %v", p.Gauges)
	}
	if h, ok := p.Histograms["tenant.lab.serve.latency"]; !ok || h.Count != 1 {
		t.Fatalf("prefixed histograms %v", p.Histograms)
	}
	if len(p.Counters) != 1 || len(s.Counters) != 1 {
		t.Fatal("prefixing must not grow or mutate the source")
	}
}

func TestMergeSnapshots(t *testing.T) {
	a := snapshotFor(t, func(r *Registry) {
		r.Counter("decisions").Add(2)
		r.Gauge("depth").Set(1)
		h := r.Histogram("lat", nil)
		h.Observe(0.001)
		h.Observe(0.002)
	})
	b := snapshotFor(t, func(r *Registry) {
		r.Counter("decisions").Add(5)
		r.Gauge("depth").Set(4)
		r.Histogram("lat", nil).Observe(0.5)
		r.Counter("only.b").Inc()
	})
	m := MergeSnapshots(a, b)
	if m.Counters["decisions"] != 7 || m.Counters["only.b"] != 1 {
		t.Fatalf("merged counters %v", m.Counters)
	}
	if m.Gauges["depth"] != 5 {
		t.Fatalf("merged gauges %v", m.Gauges)
	}
	h := m.Histograms["lat"]
	if h.Count != 3 {
		t.Fatalf("merged histogram count %d, want 3", h.Count)
	}
	if h.Min != 0.001 || h.Max != 0.5 {
		t.Fatalf("merged histogram min/max %g/%g", h.Min, h.Max)
	}
	if got := h.Sum; got < 0.502 || got > 0.504 {
		t.Fatalf("merged histogram sum %g", got)
	}
}

func TestMergeSnapshotsMismatchedBoundsKeepsFirst(t *testing.T) {
	a := snapshotFor(t, func(r *Registry) {
		r.Histogram("lat", []float64{1, 2}).Observe(0.5)
	})
	b := snapshotFor(t, func(r *Registry) {
		r.Histogram("lat", []float64{10, 20, 30}).Observe(15)
	})
	m := MergeSnapshots(a, b)
	if h := m.Histograms["lat"]; h.Count != 1 || len(h.Bounds) != 2 {
		t.Fatalf("mismatched merge %+v, want first snapshot kept", h)
	}
}

func TestWritePrometheusLabeled(t *testing.T) {
	s := snapshotFor(t, func(r *Registry) {
		r.Counter("serve.completed.total").Add(4)
		r.Gauge("serve.queue.depth").Set(1)
		r.Histogram("serve.latency", []float64{0.1, 1}).Observe(0.05)
	})
	var b strings.Builder
	if err := s.WritePrometheusLabeled(&b, map[string]string{"tenant": "lab"}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE serve_completed_total counter",
		`serve_completed_total{tenant="lab"} 4`,
		`serve_queue_depth{tenant="lab"} 1`,
		`serve_latency_bucket{tenant="lab",le="0.1"} 1`,
		`serve_latency_bucket{tenant="lab",le="+Inf"} 1`,
		`serve_latency_count{tenant="lab"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("labeled exposition missing %q:\n%s", want, out)
		}
	}
}

func TestWritePrometheusLabeledNilLabelsMatchesUnlabeled(t *testing.T) {
	s := snapshotFor(t, func(r *Registry) {
		r.Counter("c").Inc()
		r.Histogram("h", []float64{1}).Observe(0.5)
	})
	var labeled, plain strings.Builder
	if err := s.WritePrometheusLabeled(&labeled, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.WritePrometheus(&plain); err != nil {
		t.Fatal(err)
	}
	if labeled.String() != plain.String() {
		t.Fatalf("nil-label render differs:\n%s\nvs\n%s", labeled.String(), plain.String())
	}
}

func TestPromEscape(t *testing.T) {
	got := promEscape("a\"b\\c\nd")
	want := `a\"b\\c\nd`
	if got != want {
		t.Fatalf("promEscape = %q, want %q", got, want)
	}
}

func TestWritePrometheusGrouped(t *testing.T) {
	lab := snapshotFor(t, func(r *Registry) {
		r.Counter("serve.completed.total").Add(2)
		r.Histogram("serve.latency", []float64{1}).Observe(0.5)
	})
	home := snapshotFor(t, func(r *Registry) {
		r.Counter("serve.completed.total").Add(9)
		r.Gauge("serve.queue.depth").Set(3)
	})
	var b strings.Builder
	err := WritePrometheusGrouped(&b, "tenant", map[string]Snapshot{"lab": lab, "home": home})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if strings.Count(out, "# TYPE serve_completed_total counter") != 1 {
		t.Fatalf("TYPE header must appear exactly once:\n%s", out)
	}
	for _, want := range []string{
		`serve_completed_total{tenant="lab"} 2`,
		`serve_completed_total{tenant="home"} 9`,
		`serve_queue_depth{tenant="home"} 3`,
		`serve_latency_bucket{tenant="lab",le="+Inf"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("grouped exposition missing %q:\n%s", want, out)
		}
	}
	// Samples for one metric must directly follow its TYPE header.
	idx := strings.Index(out, "# TYPE serve_completed_total counter")
	rest := out[idx:]
	lines := strings.Split(rest, "\n")
	if !strings.HasPrefix(lines[1], `serve_completed_total{tenant="home"}`) ||
		!strings.HasPrefix(lines[2], `serve_completed_total{tenant="lab"}`) {
		t.Fatalf("samples not grouped under header:\n%s", rest)
	}
}
