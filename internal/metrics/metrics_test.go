package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("decisions.accepted")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("decisions.accepted") != c {
		t.Fatal("counter lookup did not return the same instrument")
	}
	g := r.Gauge("queue.depth")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 5, 10})
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) / 10) // 0.1 .. 10.0, uniform
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
	if math.Abs(s.Mean()-5.05) > 1e-9 {
		t.Fatalf("mean = %g, want 5.05", s.Mean())
	}
	if s.Min != 0.1 || s.Max != 10.0 {
		t.Fatalf("min/max = %g/%g, want 0.1/10", s.Min, s.Max)
	}
	// Uniform data: p50 should land near 5, within the containing
	// bucket's span (2, 5].
	p50 := s.Quantile(0.5)
	if p50 < 2 || p50 > 5.5 {
		t.Fatalf("p50 = %g, want within (2, 5.5]", p50)
	}
	// Quantiles must be monotone and clamped to the observed range.
	prev := s.Quantile(0)
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		v := s.Quantile(q)
		if v < prev-1e-12 {
			t.Fatalf("quantiles not monotone: q=%g gives %g < %g", q, v, prev)
		}
		if v < s.Min || v > s.Max {
			t.Fatalf("quantile %g = %g outside [%g, %g]", q, v, s.Min, s.Max)
		}
		prev = v
	}
}

func TestHistogramEmpty(t *testing.T) {
	s := NewHistogram(nil).Snapshot()
	if s.HasData || s.Count != 0 || s.Quantile(0.5) != 0 || s.Mean() != 0 {
		t.Fatalf("empty histogram snapshot not zero: %+v", s)
	}
}

func TestHistogramObserveDuration(t *testing.T) {
	h := NewHistogram(nil)
	h.ObserveDuration(42 * time.Millisecond)
	s := h.Snapshot()
	if math.Abs(s.Sum-0.042) > 1e-9 {
		t.Fatalf("sum = %g, want 0.042", s.Sum)
	}
}

func TestSnapshotText(t *testing.T) {
	r := NewRegistry()
	r.Counter("decisions.total").Add(3)
	r.Gauge("queue.depth").Set(2)
	r.Histogram("gate.liveness.latency", nil).Observe(0.042)
	text := r.Snapshot().String()
	for _, want := range []string{"decisions.total", "queue.depth", "gate.liveness.latency", "42.00ms"} {
		if !strings.Contains(text, want) {
			t.Fatalf("text rendering missing %q:\n%s", want, text)
		}
	}
}

func TestRegistryTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic registering gauge over counter name")
		}
	}()
	r.Gauge("x")
}

// TestConcurrentObserve hammers every instrument type from many
// goroutines; run under -race this is the package's thread-safety
// proof, and the final totals prove no observation is lost.
func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("c")
			g := r.Gauge("g")
			h := r.Histogram("h", []float64{0.5})
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%2) + 0.25) // 0.25 or 1.25
			}
		}(w)
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Counters["c"] != workers*perWorker {
		t.Fatalf("counter = %d, want %d", s.Counters["c"], workers*perWorker)
	}
	if s.Gauges["g"] != workers*perWorker {
		t.Fatalf("gauge = %d, want %d", s.Gauges["g"], workers*perWorker)
	}
	h := s.Histograms["h"]
	if h.Count != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", h.Count, workers*perWorker)
	}
	wantSum := float64(workers) * (500*0.25 + 500*1.25)
	if math.Abs(h.Sum-wantSum) > 1e-6 {
		t.Fatalf("histogram sum = %g, want %g (lost observations)", h.Sum, wantSum)
	}
	if h.Min != 0.25 || h.Max != 1.25 {
		t.Fatalf("min/max = %g/%g, want 0.25/1.25", h.Min, h.Max)
	}
}
