// Package metrics is a dependency-free instrumentation substrate for
// the serving layer: atomic counters and gauges, fixed-bucket latency
// histograms with quantile snapshots, and a named registry with a text
// rendering. It exists so the decision engine (internal/serve) and the
// core pipeline can report queue wait, per-gate latency and
// accept/reject counts without pulling an external metrics client into
// a stdlib-only build.
//
// All instruments are safe for concurrent use. The hot-path operations
// (Counter.Add, Gauge.Set, Histogram.Observe) are lock-free; only
// registry lookups that create a new instrument take a lock, so
// callers should hold on to instruments instead of re-resolving them
// per observation.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous signed value (queue depth, active
// workers).
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta (negative to decrement).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram accumulates observations into fixed buckets chosen at
// construction. Observations and snapshots are lock-free; the bucket
// layout is immutable after New so concurrent Observe calls never
// contend on anything but the target bucket's atomic add.
type Histogram struct {
	bounds []float64 // upper bounds, ascending; implicit +Inf last
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomicFloat
	min    *atomicExtreme
	max    *atomicExtreme
}

// atomicFloat accumulates a float64 sum with compare-and-swap.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) Value() float64 { return math.Float64frombits(f.bits.Load()) }

// atomicExtreme tracks a running min or max with compare-and-swap.
// Initialize with the neutral element (+Inf for min, -Inf for max).
type atomicExtreme struct {
	bits atomic.Uint64
}

func newExtreme(neutral float64) *atomicExtreme {
	e := &atomicExtreme{}
	e.bits.Store(math.Float64bits(neutral))
	return e
}

func (m *atomicExtreme) update(v float64, better func(a, b float64) bool) {
	for {
		old := m.bits.Load()
		if !better(v, math.Float64frombits(old)) {
			return
		}
		if m.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

func (m *atomicExtreme) value() float64 { return math.Float64frombits(m.bits.Load()) }

// DefaultLatencyBuckets spans 50 µs – 5 s in roughly geometric steps,
// wide enough for both gate latencies (tens of ms in the paper's
// §IV-B15 measurements) and queue waits under saturation. Values are
// seconds.
var DefaultLatencyBuckets = []float64{
	50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3,
	1, 2.5, 5,
}

// NewHistogram builds a histogram over the given ascending upper
// bounds (an implicit +Inf bucket is appended). Nil bounds select
// DefaultLatencyBuckets.
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefaultLatencyBuckets
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{
		bounds: b,
		counts: make([]atomic.Uint64, len(b)+1),
		min:    newExtreme(math.Inf(1)),
		max:    newExtreme(math.Inf(-1)),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	h.min.update(v, func(a, b float64) bool { return a < b })
	h.max.update(v, func(a, b float64) bool { return a > b })
}

// ObserveDuration records a time.Duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// HistogramSnapshot is a point-in-time copy of a histogram's state.
type HistogramSnapshot struct {
	Count   uint64
	Sum     float64
	Min     float64
	Max     float64
	Bounds  []float64 // upper bounds; Counts has one extra +Inf entry
	Counts  []uint64
	HasData bool
}

// Mean returns the average observation, or 0 with no data.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear
// interpolation within the containing bucket. Estimates are clamped to
// the observed [Min, Max] so sparse tails don't report a bucket edge
// beyond any real observation.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q <= 0 {
		return s.Min
	}
	if q >= 1 {
		return s.Max
	}
	rank := q * float64(s.Count)
	var seen float64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		if seen+float64(c) < rank {
			seen += float64(c)
			continue
		}
		lo := s.Min
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Max
		if i < len(s.Bounds) {
			hi = math.Min(s.Bounds[i], s.Max)
		}
		if hi < lo {
			hi = lo
		}
		frac := (rank - seen) / float64(c)
		v := lo + frac*(hi-lo)
		return math.Max(s.Min, math.Min(v, s.Max))
	}
	return s.Max
}

// Snapshot copies the histogram state. Concurrent Observe calls may
// land between field reads; totals are still self-consistent enough
// for reporting (this is a monitoring API, not an audit log).
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:  h.count.Load(),
		Sum:    h.sum.Value(),
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]uint64, len(h.counts)),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	if s.Count > 0 {
		s.Min = h.min.value()
		s.Max = h.max.value()
		s.HasData = true
	}
	return s
}

// Registry is a named collection of instruments. Lookups create on
// first use; the instrument type of an existing name must match or the
// lookup panics (a programming error, caught immediately in tests).
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	hbounds    map[string][]float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
		hbounds:    make(map[string][]float64),
	}
}

func (r *Registry) checkName(name string, want string) {
	if _, ok := r.counters[name]; ok && want != "counter" {
		panic(fmt.Sprintf("metrics: %q already registered as a counter", name))
	}
	if _, ok := r.gauges[name]; ok && want != "gauge" {
		panic(fmt.Sprintf("metrics: %q already registered as a gauge", name))
	}
	if _, ok := r.histograms[name]; ok && want != "histogram" {
		panic(fmt.Sprintf("metrics: %q already registered as a histogram", name))
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkName(name, "counter")
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkName(name, "gauge")
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bounds on first use (nil = DefaultLatencyBuckets). Later calls
// ignore bounds.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkName(name, "histogram")
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram(bounds)
		r.histograms[name] = h
		r.hbounds[name] = h.bounds
	}
	return h
}

// Snapshot is a point-in-time copy of every instrument in a registry.
type Snapshot struct {
	Counters   map[string]uint64
	Gauges     map[string]int64
	Histograms map[string]HistogramSnapshot
}

// Snapshot copies all instruments for programmatic scraping.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.histograms))
	for k, v := range r.histograms {
		hists[k] = v
	}
	r.mu.Unlock()

	s := Snapshot{
		Counters:   make(map[string]uint64, len(counters)),
		Gauges:     make(map[string]int64, len(gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(hists)),
	}
	for k, v := range counters {
		s.Counters[k] = v.Value()
	}
	for k, v := range gauges {
		s.Gauges[k] = v.Value()
	}
	for k, v := range hists {
		s.Histograms[k] = v.Snapshot()
	}
	return s
}

// WriteText renders the snapshot as sorted human-readable lines:
// counters and gauges one per line, histograms with count, mean and
// p50/p90/p99 quantiles. Latencies (any histogram observed in
// seconds) render with time units.
func (s Snapshot) WriteText(w io.Writer) error {
	names := make([]string, 0, len(s.Counters))
	for k := range s.Counters {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		if _, err := fmt.Fprintf(w, "%-44s %d\n", k, s.Counters[k]); err != nil {
			return err
		}
	}
	names = names[:0]
	for k := range s.Gauges {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		if _, err := fmt.Fprintf(w, "%-44s %d\n", k, s.Gauges[k]); err != nil {
			return err
		}
	}
	names = names[:0]
	for k := range s.Histograms {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		h := s.Histograms[k]
		if _, err := fmt.Fprintf(w, "%-44s count=%d mean=%s p50=%s p90=%s p99=%s max=%s\n",
			k, h.Count,
			formatSeconds(h.Mean()), formatSeconds(h.Quantile(0.5)),
			formatSeconds(h.Quantile(0.9)), formatSeconds(h.Quantile(0.99)),
			formatSeconds(h.Max)); err != nil {
			return err
		}
	}
	return nil
}

// String renders the snapshot via WriteText.
func (s Snapshot) String() string {
	var b strings.Builder
	_ = s.WriteText(&b)
	return b.String()
}

// formatSeconds renders a duration measured in seconds with a sensible
// unit (µs/ms/s).
func formatSeconds(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v < 1e-3:
		return fmt.Sprintf("%.0fµs", v*1e6)
	case v < 1:
		return fmt.Sprintf("%.2fms", v*1e3)
	default:
		return fmt.Sprintf("%.3fs", v)
	}
}
