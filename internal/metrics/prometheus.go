package metrics

// Prometheus text exposition (text/plain; version=0.0.4) for the
// daemon's debug listener. Kept separate from WriteText: that format is
// for humans tailing a terminal, this one is for scrapers, and the two
// evolve independently.

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// promName sanitizes an instrument name into a valid Prometheus metric
// name: runes outside [a-zA-Z0-9_:] (dots, dashes, spaces) become
// underscores, and a leading digit is prefixed with one.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat renders a float the way Prometheus clients do: shortest
// round-trippable decimal form.
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WritePrometheus renders the snapshot in the Prometheus text
// exposition format: counters and gauges as single samples, histograms
// as cumulative _bucket{le="..."} series plus _sum and _count. Metric
// names are sanitized with promName, so the registry's dotted names
// (serve.queue_wait) come out scrape-safe (serve_queue_wait).
func (s Snapshot) WritePrometheus(w io.Writer) error {
	for _, k := range sortedKeys(s.Counters) {
		n := promName(k)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", n, n, s.Counters[k]); err != nil {
			return err
		}
	}
	for _, k := range sortedKeys(s.Gauges) {
		n := promName(k)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", n, n, s.Gauges[k]); err != nil {
			return err
		}
	}
	for _, k := range sortedKeys(s.Histograms) {
		n := promName(k)
		h := s.Histograms[k]
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", n); err != nil {
			return err
		}
		// Buckets are cumulative per the exposition format; the +Inf
		// bucket and _count are the cumulative total so the series stays
		// self-consistent even if Counts raced with the Count field.
		var cum uint64
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", n, promFloat(bound), cum); err != nil {
				return err
			}
		}
		if len(h.Counts) > len(h.Bounds) {
			cum += h.Counts[len(h.Bounds)]
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", n, cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", n, promFloat(h.Sum), n, cum); err != nil {
			return err
		}
	}
	return nil
}
