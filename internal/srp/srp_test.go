package srp

import (
	"math"
	"math/rand/v2"
	"testing"

	"headtalk/internal/dsp"
	"headtalk/internal/geom"
)

// delayedPair returns two noise channels where a leads b by delay
// samples.
func delayedPair(n, delay int, seed uint64) (a, b []float64) {
	rng := rand.New(rand.NewPCG(seed, 1))
	src := make([]float64, n+delay)
	for i := range src {
		src[i] = rng.NormFloat64()
	}
	a = src[delay : n+delay] // a[n] = src[n+delay]: a hears it first
	b = src[:n]
	return a, b
}

func TestGCCPHATDelayPeak(t *testing.T) {
	for _, delay := range []int{0, 3, 9} {
		a, b := delayedPair(4096, delay, uint64(delay+1))
		r, err := GCCPHAT(a, b, 13)
		if err != nil {
			t.Fatal(err)
		}
		if len(r) != 27 {
			t.Fatalf("window length %d, want 27", len(r))
		}
		// a[n] = b[n+delay] => r[k]=Σ a[n+k] b[n] peaks at k with
		// a[n+k]=src[n+k+delay] aligning with b[n]=src[n] at k=-delay.
		peak := dsp.ArgMax(r) - 13
		if peak != -delay {
			t.Errorf("delay %d: peak at %d, want %d", delay, peak, -delay)
		}
	}
}

func TestGCCPHATPeakNormalized(t *testing.T) {
	a, b := delayedPair(4096, 5, 7)
	r, err := GCCPHAT(a, b, 13)
	if err != nil {
		t.Fatal(err)
	}
	peak := dsp.Max(r)
	if peak < 0.7 || peak > 1.1 {
		t.Errorf("coherent peak %g, want ~1", peak)
	}
}

func TestGCCPHATAmplitudeInvariance(t *testing.T) {
	// PHAT whitens magnitude: scaling a channel must not change the
	// curve materially.
	a, b := delayedPair(4096, 4, 9)
	r1, err := GCCPHAT(a, b, 10)
	if err != nil {
		t.Fatal(err)
	}
	scaled := make([]float64, len(a))
	for i := range a {
		scaled[i] = 100 * a[i]
	}
	r2, err := GCCPHAT(scaled, b, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1 {
		if math.Abs(r1[i]-r2[i]) > 1e-9 {
			t.Fatalf("PHAT not amplitude invariant at lag %d", i)
		}
	}
}

func TestGCCPHATBandLimitSharpensNoisyPeak(t *testing.T) {
	// Add out-of-band noise; the band-limited GCC should recover a
	// higher peak than the full-band one.
	rng := rand.New(rand.NewPCG(11, 12))
	n := 8192
	const fs = 48000.0
	// In-band source: low-passed noise.
	lp, err := dsp.NewButterworthLowPass(4, 6000, fs)
	if err != nil {
		t.Fatal(err)
	}
	src := make([]float64, n+5)
	for i := range src {
		src[i] = rng.NormFloat64()
	}
	src = lp.Apply(src)
	a := append([]float64{}, src[5:]...)
	b := src[:n]
	// Independent high-band noise on each channel.
	hp, err := dsp.NewButterworthHighPass(4, 10000, fs)
	if err != nil {
		t.Fatal(err)
	}
	na := make([]float64, n)
	nb := make([]float64, n)
	for i := range na {
		na[i] = rng.NormFloat64() * 2
		nb[i] = rng.NormFloat64() * 2
	}
	na = hp.Apply(na)
	nb = hp.Apply(nb)
	for i := range a {
		a[i] += na[i]
		b[i] += nb[i]
	}
	full, err := GCCPHAT(a, b, 13)
	if err != nil {
		t.Fatal(err)
	}
	banded, err := GCCPHATBand(a, b, 13, fs, 100, 8000)
	if err != nil {
		t.Fatal(err)
	}
	if dsp.Max(banded) <= dsp.Max(full) {
		t.Errorf("band-limited peak %g not sharper than full-band %g", dsp.Max(banded), dsp.Max(full))
	}
}

func TestGCCErrors(t *testing.T) {
	if _, err := GCCPHAT([]float64{1, 2}, []float64{1}, 3); err == nil {
		t.Error("expected length-mismatch error")
	}
	if _, err := GCCPHAT(nil, nil, 3); err == nil {
		t.Error("expected empty-channel error")
	}
	if _, err := GCCPHAT([]float64{1, 2}, []float64{1, 2}, -1); err == nil {
		t.Error("expected negative-lag error")
	}
}

func TestCrossCorrPHATlessDelayPeak(t *testing.T) {
	a, b := delayedPair(4096, 6, 13)
	r, err := CrossCorrPHATless(a, b, 13)
	if err != nil {
		t.Fatal(err)
	}
	if peak := dsp.ArgMax(r) - 13; peak != -6 {
		t.Errorf("peak at %d, want -6", peak)
	}
	if m := dsp.Max(r); m < 0.7 || m > 1.3 {
		t.Errorf("normalized peak %g, want ~1", m)
	}
}

func TestAllPairsCount(t *testing.T) {
	channels := make([][]float64, 4)
	rng := rand.New(rand.NewPCG(15, 16))
	for i := range channels {
		channels[i] = make([]float64, 1024)
		for j := range channels[i] {
			channels[i][j] = rng.NormFloat64()
		}
	}
	pairs, err := AllPairs(channels, PairOptions{MaxLag: 5, PHAT: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 6 {
		t.Fatalf("%d pairs for 4 channels, want 6", len(pairs))
	}
	seen := map[[2]int]bool{}
	for _, p := range pairs {
		if p.I >= p.J {
			t.Errorf("pair (%d,%d) not ordered", p.I, p.J)
		}
		seen[[2]int{p.I, p.J}] = true
		if len(p.R) != 11 {
			t.Errorf("pair window %d, want 11", len(p.R))
		}
		if p.TDoA < -5 || p.TDoA > 5 {
			t.Errorf("TDoA %d outside window", p.TDoA)
		}
	}
	if len(seen) != 6 {
		t.Error("duplicate pairs")
	}
}

// TestSelectedPairsDegradedSubset covers the degraded-array path: the
// pair set recomputed over surviving channels, original indices kept.
func TestSelectedPairsDegradedSubset(t *testing.T) {
	channels := make([][]float64, 4)
	rng := rand.New(rand.NewPCG(17, 18))
	for i := range channels {
		channels[i] = make([]float64, 1024)
		for j := range channels[i] {
			channels[i][j] = rng.NormFloat64()
		}
	}
	opt := PairOptions{MaxLag: 5, PHAT: true}
	// Channel 1 died: correlate only the survivors.
	pairs, err := SelectedPairs(channels, []int{0, 2, 3}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 3 {
		t.Fatalf("%d pairs for 3 survivors, want 3", len(pairs))
	}
	want := [][2]int{{0, 2}, {0, 3}, {2, 3}}
	for k, p := range pairs {
		if p.I != want[k][0] || p.J != want[k][1] {
			t.Fatalf("pair %d = (%d,%d), want (%d,%d) — original indices must survive", k, p.I, p.J, want[k][0], want[k][1])
		}
		if len(p.R) != 11 {
			t.Errorf("pair window %d, want 11", len(p.R))
		}
	}
	// The subset pair must match the same pair from the full set.
	all, err := AllPairs(channels, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range all {
		if a.I == 0 && a.J == 2 {
			for i, v := range pairs[0].R {
				if math.Abs(v-a.R[i]) > 1e-12 {
					t.Fatal("SelectedPairs(0,2) differs from AllPairs(0,2)")
				}
			}
		}
	}
}

func TestSelectedPairsRejectsBadSubsets(t *testing.T) {
	channels := [][]float64{make([]float64, 256), make([]float64, 256)}
	opt := PairOptions{MaxLag: 3}
	cases := map[string][]int{
		"too few":      {0},
		"out of range": {0, 5},
		"negative":     {-1, 0},
		"duplicate":    {0, 0},
	}
	for name, subset := range cases {
		if _, err := SelectedPairs(channels, subset, opt); err == nil {
			t.Errorf("%s subset %v: expected error", name, subset)
		}
	}
}

func TestSRPSumsPairs(t *testing.T) {
	pairs := []PairGCC{
		{R: []float64{1, 2, 3}},
		{R: []float64{10, 20, 30}},
	}
	got := SRP(pairs)
	want := []float64{11, 22, 33}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SRP[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	if SRP(nil) != nil {
		t.Error("SRP of no pairs should be nil")
	}
}

func TestSteeredPowerMapDoA(t *testing.T) {
	// Simulate a plane wave from a known azimuth over a 4-mic circular
	// array and verify SRP steering recovers the direction.
	const (
		fs = 48000.0
		c  = 340.0
	)
	radius := 0.0325
	positions := []geom.Vec3{
		{X: radius}, {Y: radius}, {X: -radius}, {Y: -radius},
	}
	trueAz := 30.0
	u := geom.HeadingVec(trueAz) // propagation: wave arrives FROM this azimuth
	rng := rand.New(rand.NewPCG(17, 18))
	n := 8192
	src := make([]float64, n+64)
	for i := range src {
		src[i] = rng.NormFloat64()
	}
	lp, err := dsp.NewButterworthLowPass(4, 6000, fs)
	if err != nil {
		t.Fatal(err)
	}
	src = lp.Apply(src)
	channels := make([][]float64, len(positions))
	for mi, p := range positions {
		// A mic further along u hears the wave earlier.
		adv := p.Dot(u) / c * fs
		channels[mi] = fractionalDelay(src, 32-adv)[:n]
	}
	maxLag := 10
	pairs, err := AllPairs(channels, PairOptions{MaxLag: maxLag, PHAT: true, SampleRate: fs, BandLo: 100, BandHi: 8000})
	if err != nil {
		t.Fatal(err)
	}
	est, pm := EstimateDoA(positions, pairs, maxLag, fs, c)
	if len(pm) != 360 {
		t.Fatalf("power map length %d", len(pm))
	}
	if diff := math.Abs(geom.NormalizeDeg(est - trueAz)); diff > 10 {
		t.Errorf("estimated DoA %g°, want %g±10°", est, trueAz)
	}
}

// fractionalDelay delays x by d samples with linear interpolation.
func fractionalDelay(x []float64, d float64) []float64 {
	out := make([]float64, len(x))
	for i := range out {
		pos := float64(i) - d
		lo := int(math.Floor(pos))
		frac := pos - float64(lo)
		if lo >= 0 && lo+1 < len(x) {
			out[i] = x[lo]*(1-frac) + x[lo+1]*frac
		}
	}
	return out
}

func TestInterpLagClamps(t *testing.T) {
	r := []float64{1, 2, 3}
	if got := interpLag(r, 1, -5); got != 1 {
		t.Errorf("below window: %g", got)
	}
	if got := interpLag(r, 1, 5); got != 3 {
		t.Errorf("above window: %g", got)
	}
	if got := interpLag(r, 1, -0.5); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("interpolated: %g, want 1.5", got)
	}
}
