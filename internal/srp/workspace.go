package srp

import (
	"fmt"
	"math/cmplx"

	"headtalk/internal/dsp"
)

// Workspace owns every scratch buffer the pair-correlation path needs:
// padded FFT input, per-channel spectra, cross-spectrum, circular
// correlation, lag windows and the PairGCC headers themselves. A
// workspace reused across calls performs no steady-state allocation —
// the shape the serving engine's per-worker arenas rely on.
//
// Results returned by workspace methods alias workspace-owned memory
// and are valid only until the next call on the same workspace. A
// Workspace is not safe for concurrent use; give each worker its own.
type Workspace struct {
	padded []float64
	flat   []complex128
	specs  [][]complex128
	rms    []float64
	cross  []complex128
	rbuf   []float64
	rback  []float64
	pairs  []PairGCC
	sets   [][]PairGCC
	srp    []float64
	allIdx []int
	// paddedLive counts the leading elements of padded that may hold
	// stale samples from the previous transform; everything past it is
	// known zero, so re-zeroing before each copy touches only the dirty
	// prefix instead of the whole FFT frame.
	paddedLive int

	oneItem   [1][][]float64
	oneSubset [1][]int
}

func growF(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growC(s []complex128, n int) []complex128 {
	if cap(s) < n {
		return make([]complex128, n)
	}
	return s[:n]
}

// AllPairs is srp.AllPairs running entirely on workspace scratch.
func (ws *Workspace) AllPairs(channels [][]float64, opt PairOptions) ([]PairGCC, error) {
	ws.oneItem[0] = channels
	ws.oneSubset[0] = nil
	sets, err := ws.pairsBatch(ws.oneItem[:], ws.oneSubset[:], opt)
	if err != nil {
		return nil, err
	}
	return sets[0], nil
}

// SelectedPairs is srp.SelectedPairs running entirely on workspace
// scratch. The duplicate check is a quadratic scan instead of a map —
// subsets are microphone counts, so the scan is both faster and
// allocation-free.
func (ws *Workspace) SelectedPairs(channels [][]float64, subset []int, opt PairOptions) ([]PairGCC, error) {
	if err := checkSubset(channels, subset); err != nil {
		return nil, err
	}
	ws.oneItem[0] = channels
	ws.oneSubset[0] = subset
	sets, err := ws.pairsBatch(ws.oneItem[:], ws.oneSubset[:], opt)
	if err != nil {
		return nil, err
	}
	return sets[0], nil
}

// checkSubset validates a SelectedPairs subset without allocating.
func checkSubset(channels [][]float64, subset []int) error {
	if len(subset) < 2 {
		return fmt.Errorf("srp: need at least 2 surviving channels, have %d", len(subset))
	}
	for i, c := range subset {
		if c < 0 || c >= len(channels) {
			return fmt.Errorf("srp: subset channel %d out of range [0,%d)", c, len(channels))
		}
		for _, prev := range subset[:i] {
			if prev == c {
				return fmt.Errorf("srp: duplicate subset channel %d", c)
			}
		}
	}
	return nil
}

// AllPairsBatch computes the pair sets of several captures in one
// batched sweep. All forward transforms — every channel of every
// same-FFT-size capture — run back to back over one shared plan before
// any pair inverse does, so the plan's twiddle and bit-reversal tables
// stay cache-hot across the whole batch instead of being evicted by
// per-request work in between. Captures whose FFT sizes differ are
// grouped into maximal same-size runs.
//
// Each returned pair set matches what AllPairs would return for the
// corresponding capture. The sets alias workspace memory: valid until
// the next workspace call.
func (ws *Workspace) AllPairsBatch(items [][][]float64, opt PairOptions) ([][]PairGCC, error) {
	return ws.pairsBatch(items, nil, opt)
}

// pairsBatch is the shared batch engine. subsets may be nil (all
// channels for every item) or per-item channel subsets (nil entries
// again meaning all channels).
func (ws *Workspace) pairsBatch(items [][][]float64, subsets [][]int, opt PairOptions) ([][]PairGCC, error) {
	if opt.MaxLag < 0 {
		return nil, fmt.Errorf("srp: negative maxLag %d", opt.MaxLag)
	}
	if cap(ws.sets) < len(items) {
		ws.sets = make([][]PairGCC, len(items))
	}
	ws.sets = ws.sets[:len(items)]

	// Validate every item up front and total the scratch demand, so one
	// bad capture fails the whole batch before any DSP runs.
	maxChans := 0
	totalPairs := 0
	for k, channels := range items {
		subset := subsetFor(subsets, k)
		nch := len(channels)
		if subset != nil {
			nch = len(subset)
		}
		if nch > maxChans {
			maxChans = nch
		}
		if nch >= 2 {
			totalPairs += nch * (nch - 1) / 2
		}
		if err := validateItem(channels, subset); err != nil {
			return nil, err
		}
	}
	if cap(ws.allIdx) < maxChans {
		ws.allIdx = make([]int, maxChans)
		for i := range ws.allIdx {
			ws.allIdx[i] = i
		}
	}
	want := 2*opt.MaxLag + 1
	ws.rback = growF(ws.rback, totalPairs*want)
	if cap(ws.pairs) < totalPairs {
		ws.pairs = make([]PairGCC, totalPairs)
	}
	ws.pairs = ws.pairs[:totalPairs]
	pairAt, rAt := 0, 0

	// Maximal runs of items sharing one FFT size are swept together.
	for start := 0; start < len(items); {
		n := itemLen(items[start], subsetFor(subsets, start))
		m := dsp.NextPow2(2 * n)
		end := start + 1
		for end < len(items) && dsp.NextPow2(2*itemLen(items[end], subsetFor(subsets, end))) == m {
			end++
		}
		if err := ws.sweepGroup(items[start:end], subsets, start, m, opt, &pairAt, &rAt, want); err != nil {
			return nil, err
		}
		start = end
	}
	return ws.sets, nil
}

// subsetFor returns the k-th subset, or nil for "all channels".
func subsetFor(subsets [][]int, k int) []int {
	if subsets == nil || k >= len(subsets) {
		return nil
	}
	return subsets[k]
}

// itemLen returns the per-channel sample count of one item (0 when the
// item has no usable channels).
func itemLen(channels [][]float64, subset []int) int {
	if subset != nil {
		if len(subset) == 0 {
			return 0
		}
		return len(channels[subset[0]])
	}
	if len(channels) == 0 {
		return 0
	}
	return len(channels[0])
}

// validateItem mirrors sharedPairs's input checks for one capture.
func validateItem(channels [][]float64, subset []int) error {
	if subset == nil {
		if len(channels) < 2 {
			return nil // empty pair set, like sharedPairs
		}
		n := len(channels[0])
		if n == 0 {
			return fmt.Errorf("srp: pair (0,1): srp: empty channels")
		}
		for c, ch := range channels[1:] {
			if len(ch) != n {
				return fmt.Errorf("srp: pair (%d,%d): srp: channel length mismatch %d != %d", 0, c+1, n, len(ch))
			}
		}
		return nil
	}
	if len(subset) < 2 {
		return nil
	}
	n := len(channels[subset[0]])
	if n == 0 {
		return fmt.Errorf("srp: pair (%d,%d): srp: empty channels", subset[0], subset[1])
	}
	for _, c := range subset[1:] {
		if len(channels[c]) != n {
			return fmt.Errorf("srp: pair (%d,%d): srp: channel length mismatch %d != %d",
				subset[0], c, n, len(channels[c]))
		}
	}
	return nil
}

// sweepGroup runs the two-phase batch over items[0:len], all sharing
// FFT size m: phase one transforms (and for PHAT whitens) every channel
// of every item over the shared plan; phase two runs each item's pair
// cross-spectra and inverses.
func (ws *Workspace) sweepGroup(items [][][]float64, subsets [][]int, base, m int, opt PairOptions, pairAt, rAt *int, want int) error {
	p := dsp.Plan(m)
	bins := m/2 + 1

	// Per-item spectrum offsets into one flat backing.
	totalSpecs := 0
	for k, channels := range items {
		subset := subsetFor(subsets, base+k)
		if subset != nil {
			totalSpecs += len(subset)
		} else {
			totalSpecs += len(channels)
		}
	}
	ws.flat = growC(ws.flat, totalSpecs*bins)
	if cap(ws.specs) < totalSpecs {
		ws.specs = make([][]complex128, totalSpecs)
	}
	ws.specs = ws.specs[:totalSpecs]
	ws.rms = growF(ws.rms, totalSpecs)
	if cap(ws.padded) < m {
		ws.padded = make([]float64, m) // freshly zeroed
		ws.paddedLive = 0
	} else {
		ws.padded = ws.padded[:m]
	}
	ws.cross = growC(ws.cross, bins)
	ws.rbuf = growF(ws.rbuf, m)

	// Phase one: every forward transform in the group, back to back.
	si := 0
	for k, channels := range items {
		subset := subsetFor(subsets, base+k)
		if subset == nil {
			subset = ws.allIdx[:len(channels)]
		}
		if len(subset) < 2 {
			continue
		}
		for _, c := range subset {
			n := copy(ws.padded, channels[c])
			live := ws.paddedLive
			if live > m {
				live = m
			}
			for i := n; i < live; i++ {
				ws.padded[i] = 0
			}
			if ws.paddedLive <= m {
				ws.paddedLive = n
			}
			spec := p.RFFT(ws.flat[si*bins:si*bins:(si+1)*bins], ws.padded)
			if opt.PHAT {
				whitenSpectrum(spec)
			} else {
				ws.rms[si] = dsp.RMS(channels[c])
			}
			ws.specs[si] = spec
			si++
		}
	}

	// Phase two: per-item pair inverses over the still-hot plan.
	si = 0
	for k, channels := range items {
		subset := subsetFor(subsets, base+k)
		if subset == nil {
			subset = ws.allIdx[:len(channels)]
		}
		if len(subset) < 2 {
			ws.sets[base+k] = nil
			continue
		}
		n := len(channels[subset[0]])
		loBin, hiBin := bandBins(m, opt.SampleRate, opt.BandLo, opt.BandHi)
		if !opt.PHAT {
			loBin, hiBin = 0, m/2
		}
		setStart := *pairAt
		for a := 0; a < len(subset); a++ {
			for b := a + 1; b < len(subset); b++ {
				for i := range ws.cross {
					ws.cross[i] = 0
				}
				var scale float64
				if opt.PHAT {
					var kept int
					wa, wb := ws.specs[si+a], ws.specs[si+b]
					for i := loBin; i <= hiBin; i++ {
						c := wa[i] * cmplx.Conj(wb[i])
						if c != 0 {
							ws.cross[i] = c
							kept++
						}
					}
					scale = 1.0
					if kept > 0 {
						scale = float64(m) / float64(2*kept)
					}
				} else {
					fa, fb := ws.specs[si+a], ws.specs[si+b]
					for i := range ws.cross {
						ws.cross[i] = fa[i] * cmplx.Conj(fb[i])
					}
					norm := ws.rms[si+a] * ws.rms[si+b] * float64(n)
					if norm == 0 {
						norm = 1
					}
					scale = 1 / norm
				}
				p.IRFFT(ws.rbuf, ws.cross)
				r := lagWindow(ws.rback[*rAt:*rAt:*rAt+want], ws.rbuf, opt.MaxLag, scale)
				*rAt += want
				ws.pairs[*pairAt] = PairGCC{
					I:    subset[a],
					J:    subset[b],
					R:    r,
					TDoA: dsp.ArgMax(r) - opt.MaxLag,
				}
				*pairAt++
			}
		}
		ws.sets[base+k] = ws.pairs[setStart:*pairAt:*pairAt]
		si += len(subset)
	}
	return nil
}

// SRP is srp.SRP accumulating into workspace scratch. The returned
// curve is valid until the next SRP call on the same workspace (other
// workspace methods do not touch it).
func (ws *Workspace) SRP(pairs []PairGCC) []float64 {
	if len(pairs) == 0 {
		return nil
	}
	ws.srp = growF(ws.srp, len(pairs[0].R))
	out := ws.srp
	for i := range out {
		out[i] = 0
	}
	for _, p := range pairs {
		for i, v := range p.R {
			out[i] += v
		}
	}
	return out
}
