package srp

import (
	"math"
	"math/rand/v2"
	"testing"
)

func synthChannels(r *rand.Rand, nch, n int) [][]float64 {
	chans := make([][]float64, nch)
	for c := range chans {
		chans[c] = make([]float64, n)
		for i := range chans[c] {
			chans[c][i] = math.Sin(2*math.Pi*float64(i)/37.0+float64(c)) + 0.1*r.NormFloat64()
		}
	}
	return chans
}

func pairsEqual(t *testing.T, want, got []PairGCC) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("pair count: want %d, got %d", len(want), len(got))
	}
	for k := range want {
		w, g := want[k], got[k]
		if w.I != g.I || w.J != g.J || w.TDoA != g.TDoA {
			t.Fatalf("pair %d: want (%d,%d) tdoa %d, got (%d,%d) tdoa %d",
				k, w.I, w.J, w.TDoA, g.I, g.J, g.TDoA)
		}
		if len(w.R) != len(g.R) {
			t.Fatalf("pair %d: lag window %d != %d", k, len(w.R), len(g.R))
		}
		for i := range w.R {
			if w.R[i] != g.R[i] {
				t.Fatalf("pair %d lag %d: want %g, got %g (not bit-identical)", k, i, w.R[i], g.R[i])
			}
		}
	}
}

// The workspace paths must reproduce the allocating paths bit for bit:
// they are the same arithmetic on reused buffers, not an approximation.
func TestWorkspacePairsMatchAllocatingPath(t *testing.T) {
	r := rand.New(rand.NewPCG(7, 0))
	chans := synthChannels(r, 4, 1000)
	for _, opt := range []PairOptions{
		{MaxLag: 27, PHAT: true},
		{MaxLag: 27, PHAT: true, SampleRate: 48000, BandLo: 100, BandHi: 8000},
		{MaxLag: 27, PHAT: false},
	} {
		want, err := AllPairs(chans, opt)
		if err != nil {
			t.Fatal(err)
		}
		var ws Workspace
		got, err := ws.AllPairs(chans, opt)
		if err != nil {
			t.Fatal(err)
		}
		pairsEqual(t, want, got)

		subset := []int{0, 2, 3}
		want, err = SelectedPairs(chans, subset, opt)
		if err != nil {
			t.Fatal(err)
		}
		got, err = ws.SelectedPairs(chans, subset, opt)
		if err != nil {
			t.Fatal(err)
		}
		pairsEqual(t, want, got)

		wantSRP := SRP(want)
		gotSRP := ws.SRP(got)
		for i := range wantSRP {
			if wantSRP[i] != gotSRP[i] {
				t.Fatalf("SRP[%d]: want %g, got %g", i, wantSRP[i], gotSRP[i])
			}
		}
	}
}

// A batch must return, per item, exactly the pair set the one-at-a-time
// path returns — including when the items' FFT sizes differ and the
// batch has to split into same-size groups.
func TestWorkspaceBatchMatchesSingles(t *testing.T) {
	r := rand.New(rand.NewPCG(11, 0))
	items := [][][]float64{
		synthChannels(r, 4, 1000),
		synthChannels(r, 3, 1000),
		synthChannels(r, 4, 5000), // bigger FFT: separate group
		synthChannels(r, 2, 900),  // same NextPow2(2n) as 1000
	}
	opt := PairOptions{MaxLag: 21, PHAT: true, SampleRate: 48000, BandLo: 100, BandHi: 8000}
	var ws Workspace
	sets, err := ws.AllPairsBatch(items, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != len(items) {
		t.Fatalf("set count: want %d, got %d", len(items), len(sets))
	}
	for k, chans := range items {
		want, err := AllPairs(chans, opt)
		if err != nil {
			t.Fatal(err)
		}
		pairsEqual(t, want, sets[k])
	}
}

func TestWorkspaceBatchValidation(t *testing.T) {
	var ws Workspace
	bad := [][][]float64{
		{{1, 2, 3}, {1, 2}}, // ragged
	}
	if _, err := ws.AllPairsBatch(bad, PairOptions{MaxLag: 1}); err == nil {
		t.Fatal("ragged channels: want error")
	}
	if _, err := ws.SelectedPairs([][]float64{{1}, {2}}, []int{0, 0}, PairOptions{MaxLag: 1}); err == nil {
		t.Fatal("duplicate subset: want error")
	}
	if _, err := ws.SelectedPairs([][]float64{{1}, {2}}, []int{0, 5}, PairOptions{MaxLag: 1}); err == nil {
		t.Fatal("out-of-range subset: want error")
	}
	if _, err := ws.SelectedPairs([][]float64{{1}, {2}}, []int{0}, PairOptions{MaxLag: 1}); err == nil {
		t.Fatal("short subset: want error")
	}
}

// Steady-state pair extraction through a warm workspace must not
// allocate: this is the pin the per-worker serving arenas rely on.
func TestWorkspaceAllPairsAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; pin holds in normal builds")
	}
	r := rand.New(rand.NewPCG(3, 0))
	chans := synthChannels(r, 4, 2000)
	opt := PairOptions{MaxLag: 27, PHAT: true, SampleRate: 48000, BandLo: 100, BandHi: 8000}
	var ws Workspace
	if _, err := ws.AllPairs(chans, opt); err != nil { // warm-up
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		pairs, err := ws.AllPairs(chans, opt)
		if err != nil {
			t.Fatal(err)
		}
		ws.SRP(pairs)
	})
	if allocs != 0 {
		t.Fatalf("warm workspace AllPairs+SRP allocated %.1f times per run, want 0", allocs)
	}
}
