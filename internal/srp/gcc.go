// Package srp implements Generalized Cross-Correlation with Phase
// Transform (GCC-PHAT, Knapp & Carter [40]) and Steered Response Power
// with Phase Transform (SRP-PHAT, DiBiase [23]) — the time-delay
// machinery behind HeadTalk's speaker-orientation features (paper
// §III-B3).
package srp

import (
	"fmt"
	"math/cmplx"

	"headtalk/internal/dsp"
)

// GCCPHAT returns the PHAT-weighted cross-correlation of channels a and
// b at lags -maxLag..+maxLag (2*maxLag+1 values, lag 0 in the middle).
// A positive peak lag means a leads b (the source is closer to a).
// The cross-spectrum is whitened over the full band; see GCCPHATBand
// for the band-limited variant used by the feature extractor.
func GCCPHAT(a, b []float64, maxLag int) ([]float64, error) {
	return GCCPHATBand(a, b, maxLag, 0, 0, 0)
}

// GCCPHATBand computes GCC-PHAT with the whitened cross-spectrum
// restricted to [loHz, hiHz] at sample rate fs. PHAT weighting makes
// every retained bin count equally, so excluding bins where speech has
// no energy (above ~8 kHz the utterance is noise-dominated) sharpens
// the coherent peak considerably. Passing fs == 0 disables the band
// limit.
func GCCPHATBand(a, b []float64, maxLag int, fs, loHz, hiHz float64) ([]float64, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("srp: channel length mismatch %d != %d", len(a), len(b))
	}
	if len(a) == 0 {
		return nil, fmt.Errorf("srp: empty channels")
	}
	if maxLag < 0 {
		return nil, fmt.Errorf("srp: negative maxLag %d", maxLag)
	}
	n := len(a)
	m := dsp.NextPow2(2 * n)
	fa := make([]complex128, m)
	fb := make([]complex128, m)
	for i := 0; i < n; i++ {
		fa[i] = complex(a[i], 0)
		fb[i] = complex(b[i], 0)
	}
	fa = dsp.FFT(fa)
	fb = dsp.FFT(fb)

	loBin, hiBin := 0, m/2
	var kept int
	if fs > 0 && hiHz > loHz {
		loBin = dsp.FreqBin(loHz, m, fs)
		hiBin = dsp.FreqBin(hiHz, m, fs)
		if hiBin > m/2 {
			hiBin = m / 2
		}
	}
	// Cross-power spectrum with PHAT whitening: keep only phase, only
	// inside the analysis band (conjugate-symmetric on the upper half).
	cross := make([]complex128, m)
	for i := loBin; i <= hiBin; i++ {
		c := fa[i] * cmplx.Conj(fb[i])
		mag := cmplx.Abs(c)
		if mag <= 1e-12 {
			continue
		}
		w := c / complex(mag, 0)
		cross[i] = w
		if i > 0 && i < m/2 {
			cross[m-i] = cmplx.Conj(w)
		}
		kept++
	}
	r := dsp.IFFT(cross)
	// Normalize so a perfectly coherent pair peaks at 1 regardless of
	// how many bins were retained.
	scale := 1.0
	if kept > 0 {
		scale = float64(m) / float64(2*kept)
	}
	out := make([]float64, 2*maxLag+1)
	for k := -maxLag; k <= maxLag; k++ {
		idx := k
		if idx < 0 {
			idx += m
		}
		out[k+maxLag] = real(r[idx]) * scale
	}
	return out, nil
}

// CrossCorrPHATless returns the plain (unwhitened) cross-correlation at
// lags -maxLag..+maxLag using the same FFT path, normalized by the
// channel energies. Used by the PHAT-weighting ablation.
func CrossCorrPHATless(a, b []float64, maxLag int) ([]float64, error) {
	if len(a) != len(b) || len(a) == 0 {
		return nil, fmt.Errorf("srp: invalid channels (len %d, %d)", len(a), len(b))
	}
	n := len(a)
	m := dsp.NextPow2(2 * n)
	fa := make([]complex128, m)
	fb := make([]complex128, m)
	for i := 0; i < n; i++ {
		fa[i] = complex(a[i], 0)
		fb[i] = complex(b[i], 0)
	}
	fa = dsp.FFT(fa)
	fb = dsp.FFT(fb)
	cross := make([]complex128, m)
	for i := range cross {
		cross[i] = fa[i] * cmplx.Conj(fb[i])
	}
	r := dsp.IFFT(cross)
	norm := dsp.RMS(a) * dsp.RMS(b) * float64(n)
	if norm == 0 {
		norm = 1
	}
	out := make([]float64, 2*maxLag+1)
	for k := -maxLag; k <= maxLag; k++ {
		idx := k
		if idx < 0 {
			idx += m
		}
		out[k+maxLag] = real(r[idx]) / norm
	}
	return out, nil
}

// PairGCC is the GCC of one microphone pair plus its TDoA estimate.
type PairGCC struct {
	I, J int       // channel indices
	R    []float64 // GCC at lags -maxLag..+maxLag
	TDoA int       // argmax lag in samples (positive: I leads J)
}

// PairOptions configures AllPairs.
type PairOptions struct {
	// MaxLag is the correlation half-window in samples.
	MaxLag int
	// PHAT selects phase-transform whitening (the paper's choice);
	// false computes plain cross-correlation (the ablation baseline).
	PHAT bool
	// SampleRate with BandLo/BandHi band-limits the whitened
	// cross-spectrum; SampleRate == 0 disables the limit.
	SampleRate     float64
	BandLo, BandHi float64
}

// AllPairs computes GCCs for every unordered channel pair of a
// multi-channel capture (C(n,2) pairs, e.g. 6 for a 4-mic array).
func AllPairs(channels [][]float64, opt PairOptions) ([]PairGCC, error) {
	var out []PairGCC
	for i := 0; i < len(channels); i++ {
		for j := i + 1; j < len(channels); j++ {
			p, err := pairGCC(channels, i, j, opt)
			if err != nil {
				return nil, err
			}
			out = append(out, p)
		}
	}
	return out, nil
}

// SelectedPairs recomputes the GCC pair set over a subset of surviving
// channels — the degraded-array path: when per-channel health marks
// elements dead or stuck, only pairs between trusted channels are
// worth correlating (one bad channel poisons every pair it joins).
// PairGCC.I/J keep the ORIGINAL channel indices so TDoAs stay
// attributable to physical microphones. The subset must list at least
// two distinct in-range indices; anything else is a typed error so
// the caller can fail closed rather than steer on a garbage pair set.
func SelectedPairs(channels [][]float64, subset []int, opt PairOptions) ([]PairGCC, error) {
	if len(subset) < 2 {
		return nil, fmt.Errorf("srp: need at least 2 surviving channels, have %d", len(subset))
	}
	seen := make(map[int]bool, len(subset))
	for _, c := range subset {
		if c < 0 || c >= len(channels) {
			return nil, fmt.Errorf("srp: subset channel %d out of range [0,%d)", c, len(channels))
		}
		if seen[c] {
			return nil, fmt.Errorf("srp: duplicate subset channel %d", c)
		}
		seen[c] = true
	}
	var out []PairGCC
	for a := 0; a < len(subset); a++ {
		for b := a + 1; b < len(subset); b++ {
			p, err := pairGCC(channels, subset[a], subset[b], opt)
			if err != nil {
				return nil, err
			}
			out = append(out, p)
		}
	}
	return out, nil
}

// pairGCC correlates one channel pair per opt.
func pairGCC(channels [][]float64, i, j int, opt PairOptions) (PairGCC, error) {
	var (
		r   []float64
		err error
	)
	if opt.PHAT {
		r, err = GCCPHATBand(channels[i], channels[j], opt.MaxLag, opt.SampleRate, opt.BandLo, opt.BandHi)
	} else {
		r, err = CrossCorrPHATless(channels[i], channels[j], opt.MaxLag)
	}
	if err != nil {
		return PairGCC{}, fmt.Errorf("srp: pair (%d,%d): %w", i, j, err)
	}
	return PairGCC{
		I:    i,
		J:    j,
		R:    r,
		TDoA: dsp.ArgMax(r) - opt.MaxLag,
	}, nil
}

// SRP sums the pair GCCs lag-wise: the paper's "weighted SRP" curve
// (Eq. 6, Fig. 6b). All pairs must share the same lag window.
func SRP(pairs []PairGCC) []float64 {
	if len(pairs) == 0 {
		return nil
	}
	out := make([]float64, len(pairs[0].R))
	for _, p := range pairs {
		for i, v := range p.R {
			out[i] += v
		}
	}
	return out
}
