// Package srp implements Generalized Cross-Correlation with Phase
// Transform (GCC-PHAT, Knapp & Carter [40]) and Steered Response Power
// with Phase Transform (SRP-PHAT, DiBiase [23]) — the time-delay
// machinery behind HeadTalk's speaker-orientation features (paper
// §III-B3).
package srp

import (
	"fmt"
	"math"
	"math/cmplx"

	"headtalk/internal/dsp"
)

// phatEps is the magnitude floor below which a bin is dropped from the
// whitened cross-spectrum instead of being blown up to unit magnitude.
const phatEps = 1e-12

// GCCPHAT returns the PHAT-weighted cross-correlation of channels a and
// b at lags -maxLag..+maxLag (2*maxLag+1 values, lag 0 in the middle).
// A positive peak lag means a leads b (the source is closer to a).
// The cross-spectrum is whitened over the full band; see GCCPHATBand
// for the band-limited variant used by the feature extractor.
func GCCPHAT(a, b []float64, maxLag int) ([]float64, error) {
	return GCCPHATBand(a, b, maxLag, 0, 0, 0)
}

// GCCPHATBand computes GCC-PHAT with the whitened cross-spectrum
// restricted to [loHz, hiHz] at sample rate fs. PHAT weighting makes
// every retained bin count equally, so excluding bins where speech has
// no energy (above ~8 kHz the utterance is noise-dominated) sharpens
// the coherent peak considerably. Passing fs == 0 disables the band
// limit.
//
// Both channels are transformed with the planned real FFT (half the
// work of the old pad-to-complex path) and the correlation comes back
// through the packed inverse real transform; the conjugate-symmetric
// upper half of the cross-spectrum is never materialized.
func GCCPHATBand(a, b []float64, maxLag int, fs, loHz, hiHz float64) ([]float64, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("srp: channel length mismatch %d != %d", len(a), len(b))
	}
	if len(a) == 0 {
		return nil, fmt.Errorf("srp: empty channels")
	}
	if maxLag < 0 {
		return nil, fmt.Errorf("srp: negative maxLag %d", maxLag)
	}
	n := len(a)
	m := dsp.NextPow2(2 * n)
	p := dsp.Plan(m)
	padded := make([]float64, m)
	copy(padded, a)
	fa := p.RFFT(nil, padded)
	copy(padded, b) // same length, so the zero tail is untouched
	fb := p.RFFT(nil, padded)

	loBin, hiBin := bandBins(m, fs, loHz, hiHz)
	// Cross-power spectrum with PHAT whitening: keep only phase, only
	// inside the analysis band (the upper half is implied by symmetry).
	cross := make([]complex128, m/2+1)
	var kept int
	for i := loBin; i <= hiBin; i++ {
		c := fa[i] * cmplx.Conj(fb[i])
		mag := cmplx.Abs(c)
		if mag <= phatEps {
			continue
		}
		cross[i] = c / complex(mag, 0)
		kept++
	}
	r := p.IRFFT(padded, cross)
	// Normalize so a perfectly coherent pair peaks at 1 regardless of
	// how many bins were retained.
	scale := 1.0
	if kept > 0 {
		scale = float64(m) / float64(2*kept)
	}
	return lagWindow(nil, r, maxLag, scale), nil
}

// bandBins converts a [loHz, hiHz] band at sample rate fs into
// inclusive half-spectrum bin bounds for a length-m transform; fs == 0
// (or an empty band) selects the full half-spectrum.
func bandBins(m int, fs, loHz, hiHz float64) (int, int) {
	loBin, hiBin := 0, m/2
	if fs > 0 && hiHz > loHz {
		loBin = dsp.FreqBin(loHz, m, fs)
		hiBin = dsp.FreqBin(hiHz, m, fs)
		if hiBin > m/2 {
			hiBin = m / 2
		}
	}
	return loBin, hiBin
}

// lagWindow extracts lags -maxLag..+maxLag from the circular
// correlation r (length m), scaling each value, into dst (grown if
// needed).
func lagWindow(dst, r []float64, maxLag int, scale float64) []float64 {
	m := len(r)
	want := 2*maxLag + 1
	if cap(dst) < want {
		dst = make([]float64, want)
	}
	dst = dst[:want]
	for k := -maxLag; k <= maxLag; k++ {
		idx := k
		if idx < 0 {
			idx += m
		}
		dst[k+maxLag] = r[idx] * scale
	}
	return dst
}

// CrossCorrPHATless returns the plain (unwhitened) cross-correlation at
// lags -maxLag..+maxLag using the same FFT path, normalized by the
// channel energies. Used by the PHAT-weighting ablation.
func CrossCorrPHATless(a, b []float64, maxLag int) ([]float64, error) {
	if len(a) != len(b) || len(a) == 0 {
		return nil, fmt.Errorf("srp: invalid channels (len %d, %d)", len(a), len(b))
	}
	if maxLag < 0 {
		return nil, fmt.Errorf("srp: negative maxLag %d", maxLag)
	}
	n := len(a)
	m := dsp.NextPow2(2 * n)
	p := dsp.Plan(m)
	padded := make([]float64, m)
	copy(padded, a)
	fa := p.RFFT(nil, padded)
	copy(padded, b)
	fb := p.RFFT(nil, padded)
	cross := make([]complex128, m/2+1)
	for i := range cross {
		cross[i] = fa[i] * cmplx.Conj(fb[i])
	}
	r := p.IRFFT(padded, cross)
	norm := dsp.RMS(a) * dsp.RMS(b) * float64(n)
	if norm == 0 {
		norm = 1
	}
	return lagWindow(nil, r, maxLag, 1/norm), nil
}

// PairGCC is the GCC of one microphone pair plus its TDoA estimate.
type PairGCC struct {
	I, J int       // channel indices
	R    []float64 // GCC at lags -maxLag..+maxLag
	TDoA int       // argmax lag in samples (positive: I leads J)
}

// PairOptions configures AllPairs.
type PairOptions struct {
	// MaxLag is the correlation half-window in samples.
	MaxLag int
	// PHAT selects phase-transform whitening (the paper's choice);
	// false computes plain cross-correlation (the ablation baseline).
	PHAT bool
	// SampleRate with BandLo/BandHi band-limits the whitened
	// cross-spectrum; SampleRate == 0 disables the limit.
	SampleRate     float64
	BandLo, BandHi float64
}

// AllPairs computes GCCs for every unordered channel pair of a
// multi-channel capture (C(n,2) pairs, e.g. 6 for a 4-mic array).
//
// Each channel is transformed — and, for PHAT, phase-normalized — once
// and the result shared across every pair it joins, so a C-channel
// capture costs C forward FFTs plus one inverse per pair instead of the
// 2·C(C,2) forward transforms of the per-pair path.
func AllPairs(channels [][]float64, opt PairOptions) ([]PairGCC, error) {
	idx := make([]int, len(channels))
	for i := range idx {
		idx[i] = i
	}
	return sharedPairs(channels, idx, opt)
}

// SelectedPairs recomputes the GCC pair set over a subset of surviving
// channels — the degraded-array path: when per-channel health marks
// elements dead or stuck, only pairs between trusted channels are
// worth correlating (one bad channel poisons every pair it joins).
// PairGCC.I/J keep the ORIGINAL channel indices so TDoAs stay
// attributable to physical microphones. The subset must list at least
// two distinct in-range indices; anything else is a typed error so
// the caller can fail closed rather than steer on a garbage pair set.
func SelectedPairs(channels [][]float64, subset []int, opt PairOptions) ([]PairGCC, error) {
	if len(subset) < 2 {
		return nil, fmt.Errorf("srp: need at least 2 surviving channels, have %d", len(subset))
	}
	seen := make(map[int]bool, len(subset))
	for _, c := range subset {
		if c < 0 || c >= len(channels) {
			return nil, fmt.Errorf("srp: subset channel %d out of range [0,%d)", c, len(channels))
		}
		if seen[c] {
			return nil, fmt.Errorf("srp: duplicate subset channel %d", c)
		}
		seen[c] = true
	}
	return sharedPairs(channels, subset, opt)
}

// sharedPairs correlates every unordered pair of the subset channels,
// computing each channel's forward spectrum exactly once.
func sharedPairs(channels [][]float64, subset []int, opt PairOptions) ([]PairGCC, error) {
	if len(subset) < 2 {
		return nil, nil
	}
	n := len(channels[subset[0]])
	if n == 0 {
		return nil, fmt.Errorf("srp: pair (%d,%d): srp: empty channels", subset[0], subset[1])
	}
	for _, c := range subset[1:] {
		if len(channels[c]) != n {
			return nil, fmt.Errorf("srp: pair (%d,%d): srp: channel length mismatch %d != %d",
				subset[0], c, n, len(channels[c]))
		}
	}
	if opt.MaxLag < 0 {
		return nil, fmt.Errorf("srp: negative maxLag %d", opt.MaxLag)
	}

	m := dsp.NextPow2(2 * n)
	p := dsp.Plan(m)
	bins := m/2 + 1

	// One forward real FFT per channel, into one flat backing array.
	// For PHAT the spectrum is phase-normalized here, so the per-pair
	// whitened cross-spectrum is a plain multiply: with ua = fa/|fa|,
	// ua·conj(ub) = fa·conj(fb)/|fa·conj(fb)|.
	specs := make([][]complex128, len(subset))
	flat := make([]complex128, len(subset)*bins)
	padded := make([]float64, m)
	var rms []float64
	if !opt.PHAT {
		rms = make([]float64, len(subset))
	}
	for si, c := range subset {
		copy(padded, channels[c]) // equal lengths keep the zero tail intact
		spec := p.RFFT(flat[si*bins:si*bins:(si+1)*bins], padded)
		if opt.PHAT {
			whitenSpectrum(spec)
		} else {
			rms[si] = dsp.RMS(channels[c])
		}
		specs[si] = spec
	}

	loBin, hiBin := bandBins(m, opt.SampleRate, opt.BandLo, opt.BandHi)
	if !opt.PHAT {
		loBin, hiBin = 0, m/2
	}

	cross := make([]complex128, bins)
	rbuf := make([]float64, m)
	out := make([]PairGCC, 0, len(subset)*(len(subset)-1)/2)
	for a := 0; a < len(subset); a++ {
		for b := a + 1; b < len(subset); b++ {
			for i := range cross {
				cross[i] = 0
			}
			var scale float64
			if opt.PHAT {
				var kept int
				wa, wb := specs[a], specs[b]
				for i := loBin; i <= hiBin; i++ {
					c := wa[i] * cmplx.Conj(wb[i])
					if c != 0 {
						cross[i] = c
						kept++
					}
				}
				scale = 1.0
				if kept > 0 {
					scale = float64(m) / float64(2*kept)
				}
			} else {
				fa, fb := specs[a], specs[b]
				for i := range cross {
					cross[i] = fa[i] * cmplx.Conj(fb[i])
				}
				norm := rms[a] * rms[b] * float64(n)
				if norm == 0 {
					norm = 1
				}
				scale = 1 / norm
			}
			p.IRFFT(rbuf, cross)
			r := lagWindow(nil, rbuf, opt.MaxLag, scale)
			out = append(out, PairGCC{
				I:    subset[a],
				J:    subset[b],
				R:    r,
				TDoA: dsp.ArgMax(r) - opt.MaxLag,
			})
		}
	}
	return out, nil
}

// whitenSpectrum normalizes every bin to unit magnitude in place,
// zeroing bins below the phatEps floor.
func whitenSpectrum(spec []complex128) {
	for i, v := range spec {
		re, im := real(v), imag(v)
		mag := math.Sqrt(re*re + im*im)
		if mag <= phatEps {
			spec[i] = 0
			continue
		}
		spec[i] = complex(re/mag, im/mag)
	}
}

// SRP sums the pair GCCs lag-wise: the paper's "weighted SRP" curve
// (Eq. 6, Fig. 6b). All pairs must share the same lag window.
func SRP(pairs []PairGCC) []float64 {
	if len(pairs) == 0 {
		return nil
	}
	out := make([]float64, len(pairs[0].R))
	for _, p := range pairs {
		for i, v := range p.R {
			out[i] += v
		}
	}
	return out
}
