package srp

import (
	"headtalk/internal/geom"
)

// SteeredPowerMap evaluates the far-field SRP-PHAT power for each
// candidate azimuth (degrees): for a plane wave from azimuth theta, the
// expected pair delay is (p_i - p_j)·u(theta)/c, and the steered power
// is the sum of each pair's GCC at that (fractionally interpolated)
// lag. positions are the microphone coordinates matching the channel
// indices used to build pairs; maxLag must be the pairs' lag window.
func SteeredPowerMap(positions []geom.Vec3, pairs []PairGCC, maxLag int, fs, c float64, azimuthsDeg []float64) []float64 {
	out := make([]float64, len(azimuthsDeg))
	for ai, az := range azimuthsDeg {
		u := geom.HeadingVec(az)
		var power float64
		for _, p := range pairs {
			// With channel i receiving s(t - d_i), the GCC
			// r[k] = sum_n ch_i[n+k]·ch_j[n] peaks at k = d_i - d_j.
			// A wave from azimuth az gives d_i = D - p_i·u/c, so the
			// expected peak lag is -(p_i - p_j)·u/c.
			d := positions[p.I].Sub(positions[p.J])
			lag := -d.Dot(u) / c * fs
			power += interpLag(p.R, maxLag, lag)
		}
		out[ai] = power
	}
	return out
}

// EstimateDoA returns the azimuth (degrees) with maximum steered power
// over a 1-degree grid, along with the power map.
func EstimateDoA(positions []geom.Vec3, pairs []PairGCC, maxLag int, fs, c float64) (float64, []float64) {
	azimuths := make([]float64, 360)
	for i := range azimuths {
		azimuths[i] = float64(i) - 180
	}
	pm := SteeredPowerMap(positions, pairs, maxLag, fs, c, azimuths)
	best := 0
	for i, v := range pm {
		if v > pm[best] {
			best = i
		}
	}
	return azimuths[best], pm
}

// interpLag reads a GCC curve (lags -maxLag..maxLag) at a fractional
// lag with linear interpolation, clamping to the window.
func interpLag(r []float64, maxLag int, lag float64) float64 {
	pos := lag + float64(maxLag)
	if pos <= 0 {
		return r[0]
	}
	if pos >= float64(len(r)-1) {
		return r[len(r)-1]
	}
	lo := int(pos)
	frac := pos - float64(lo)
	return r[lo]*(1-frac) + r[lo+1]*frac
}
