package srp

// GCC benchmarks at paper scale: 4 channels, a 32768-sample analysis
// window (~0.68 s at 48 kHz — the feature extractor's focus window),
// PHAT-whitened and band-limited to 100–8000 Hz. The pre-PR numbers
// are recorded in BENCH_pr3.json (tag "pr3-baseline").

import (
	"math/rand/v2"
	"testing"
)

func benchChannels(nch, n int) [][]float64 {
	rng := rand.New(rand.NewPCG(11, 13))
	src := make([]float64, n+nch)
	for i := range src {
		src[i] = rng.NormFloat64()
	}
	out := make([][]float64, nch)
	for c := range out {
		out[c] = src[c : c+n]
	}
	return out
}

// BenchmarkGCCAllPairs is the acceptance benchmark: all 6 pairs of a
// 4-channel capture through the shared-spectra path (4 forward real
// FFTs + 6 inverse real FFTs, vs 12 full complex forward + 6 full
// inverse pre-PR).
func BenchmarkGCCAllPairs(b *testing.B) {
	chans := benchChannels(4, 32768)
	opt := PairOptions{MaxLag: 13, PHAT: true, SampleRate: 48000, BandLo: 100, BandHi: 8000}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AllPairs(chans, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGCCPHATBand measures one pair through the planned
// real-transform path.
func BenchmarkGCCPHATBand(b *testing.B) {
	chans := benchChannels(2, 32768)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := GCCPHATBand(chans[0], chans[1], 13, 48000, 100, 8000); err != nil {
			b.Fatal(err)
		}
	}
}
