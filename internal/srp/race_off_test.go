//go:build !race

package srp

const raceEnabled = false
