package srp

import (
	"math"
	"math/rand/v2"
	"testing"
)

func randChannels(nch, n int, seed uint64) [][]float64 {
	rng := rand.New(rand.NewPCG(seed, seed+1))
	out := make([][]float64, nch)
	for c := range out {
		out[c] = make([]float64, n)
		for i := range out[c] {
			out[c][i] = rng.NormFloat64()
		}
	}
	return out
}

// TestAllPairsMatchesPairwiseGCC pins the shared-spectra rewrite to the
// per-pair reference: AllPairs computes each channel's whitened
// spectrum once, which must be numerically indistinguishable (1e-9)
// from whitening each pair's cross-spectrum separately.
func TestAllPairsMatchesPairwiseGCC(t *testing.T) {
	for _, n := range []int{1024, 1000} { // power-of-two and ragged input lengths
		channels := randChannels(4, n, 51)
		opt := PairOptions{MaxLag: 13, PHAT: true, SampleRate: 48000, BandLo: 100, BandHi: 8000}
		pairs, err := AllPairs(channels, opt)
		if err != nil {
			t.Fatal(err)
		}
		if len(pairs) != 6 {
			t.Fatalf("n=%d: %d pairs, want 6", n, len(pairs))
		}
		for _, p := range pairs {
			want, err := GCCPHATBand(channels[p.I], channels[p.J], opt.MaxLag, opt.SampleRate, opt.BandLo, opt.BandHi)
			if err != nil {
				t.Fatal(err)
			}
			for k := range want {
				if d := math.Abs(p.R[k] - want[k]); d > 1e-9 {
					t.Fatalf("n=%d pair (%d,%d) lag %d: shared %g vs pairwise %g (|Δ|=%g)",
						n, p.I, p.J, k-opt.MaxLag, p.R[k], want[k], d)
				}
			}
		}
	}
}

// TestAllPairsPHATlessMatchesPairwise does the same for the unwhitened
// ablation path.
func TestAllPairsPHATlessMatchesPairwise(t *testing.T) {
	channels := randChannels(3, 2048, 53)
	opt := PairOptions{MaxLag: 9}
	pairs, err := AllPairs(channels, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pairs {
		want, err := CrossCorrPHATless(channels[p.I], channels[p.J], opt.MaxLag)
		if err != nil {
			t.Fatal(err)
		}
		for k := range want {
			if d := math.Abs(p.R[k] - want[k]); d > 1e-9 {
				t.Fatalf("pair (%d,%d) lag %d: shared %g vs pairwise %g", p.I, p.J, k-opt.MaxLag, p.R[k], want[k])
			}
		}
	}
}

// TestAllPairsErrorCases preserves the pre-rewrite error contract.
func TestAllPairsErrorCases(t *testing.T) {
	if _, err := AllPairs([][]float64{{1, 2}, {1}}, PairOptions{MaxLag: 3}); err == nil {
		t.Error("expected length-mismatch error")
	}
	if _, err := AllPairs([][]float64{{}, {}}, PairOptions{MaxLag: 3}); err == nil {
		t.Error("expected empty-channel error")
	}
	if _, err := AllPairs([][]float64{{1, 2}, {3, 4}}, PairOptions{MaxLag: -1}); err == nil {
		t.Error("expected negative-lag error")
	}
	// Fewer than two channels: no pairs, no error (unchanged behavior).
	if pairs, err := AllPairs([][]float64{{1, 2}}, PairOptions{MaxLag: 3}); err != nil || len(pairs) != 0 {
		t.Errorf("single channel: pairs=%v err=%v, want empty and nil", pairs, err)
	}
}

// TestAllocsGCCPHATBand gates the steady-state allocation count of one
// banded GCC: padded input, two half-spectra, the cross-spectrum and
// the lag window — five allocations, down from seven (and ~2.1 MB down
// from ~6.3 MB at paper scale) on the pre-plan path. Headroom of one is
// left for the plan pool's pointer box.
func TestAllocsGCCPHATBand(t *testing.T) {
	channels := randChannels(2, 32768, 55)
	if _, err := GCCPHATBand(channels[0], channels[1], 13, 48000, 100, 8000); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(20, func() {
		if _, err := GCCPHATBand(channels[0], channels[1], 13, 48000, 100, 8000); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 6 {
		t.Errorf("GCCPHATBand allocates %.1f times per op, want <= 6", avg)
	}
}

// TestAllocsAllPairs gates the shared-spectra pair sweep: per-channel
// spectra plus per-pair lag windows, far below the old 2-FFTs-per-pair
// regime.
func TestAllocsAllPairs(t *testing.T) {
	channels := randChannels(4, 32768, 57)
	opt := PairOptions{MaxLag: 13, PHAT: true, SampleRate: 48000, BandLo: 100, BandHi: 8000}
	if _, err := AllPairs(channels, opt); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(10, func() {
		if _, err := AllPairs(channels, opt); err != nil {
			t.Fatal(err)
		}
	})
	// 4 shared spectra (1 flat backing + headers) + scratch + 6 lag
	// windows + the pair slice: comfortably under 20; the old path sat
	// at 46 with 36 of them full-size FFT buffers.
	if avg > 20 {
		t.Errorf("AllPairs allocates %.1f times per op, want <= 20", avg)
	}
}
