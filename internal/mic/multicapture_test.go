package mic

import (
	"math/rand/v2"
	"testing"

	"headtalk/internal/dsp"
	"headtalk/internal/geom"
	"headtalk/internal/room"
)

// TestCaptureMultiSuperposition pins the core property of the
// multi-source renderer: with pinned per-source tail seeds and no
// noise, a two-source capture equals the sample-wise sum of the two
// single-source captures, bit for bit.
func TestCaptureMultiSuperposition(t *testing.T) {
	scene, sim := testScene(16)
	scene.DisableSelfNoise = true
	uttA := testUtterance(sim, 31)
	uttB := testUtterance(sim, 32)
	a := SceneSource{
		Source:    room.Source{Pos: scene.ArrayPos.Add(geom.Vec3{X: 2}), Azimuth: 180},
		Utterance: uttA,
		SPL:       70,
		Seed:      101,
	}
	b := SceneSource{
		Source:    room.Source{Pos: scene.ArrayPos.Add(geom.Vec3{Y: 1.5}), Azimuth: 270},
		Utterance: uttB,
		SPL:       64,
		OnsetSec:  0.05,
		Seed:      102,
	}
	rng := func() *rand.Rand { return rand.New(rand.NewPCG(33, 33)) }
	both := scene.CaptureMulti([]SceneSource{a, b}, rng())
	onlyA := scene.CaptureMulti([]SceneSource{a}, rng())
	onlyB := scene.CaptureMulti([]SceneSource{b}, rng())

	if both.Len() < onlyA.Len() || both.Len() < onlyB.Len() {
		t.Fatalf("combined length %d shorter than singles %d/%d", both.Len(), onlyA.Len(), onlyB.Len())
	}
	for c := range both.Channels {
		for i, v := range both.Channels[c] {
			var want float64
			if i < onlyA.Len() {
				want += onlyA.Channels[c][i]
			}
			if i < onlyB.Len() {
				want += onlyB.Channels[c][i]
			}
			if v != want {
				t.Fatalf("ch %d sample %d: combined %g != sum %g", c, i, v, want)
			}
		}
	}
	if dsp.RMS(both.Channels[0]) == 0 {
		t.Fatal("silent combined capture")
	}
}

// TestCaptureMultiStationaryBitForBit: a "moving" source whose
// trajectory never moves must collapse onto the static render path and
// produce the identical recording.
func TestCaptureMultiStationaryBitForBit(t *testing.T) {
	scene, sim := testScene(16)
	scene.DisableSelfNoise = true
	utt := testUtterance(sim, 41)
	pose := room.Source{Pos: scene.ArrayPos.Add(geom.Vec3{X: 3}), Azimuth: 200}
	tr := room.Trajectory{Waypoints: []room.Source{pose, pose, pose}}
	moving := scene.CaptureMulti([]SceneSource{{
		Trajectory: &tr,
		Segments:   7,
		Utterance:  utt,
		SPL:        68,
		Seed:       55,
	}}, rand.New(rand.NewPCG(1, 1)))
	static := scene.CaptureMulti([]SceneSource{{
		Source:    pose,
		Utterance: utt,
		SPL:       68,
		Seed:      55,
	}}, rand.New(rand.NewPCG(2, 2)))
	if moving.Len() != static.Len() {
		t.Fatalf("length mismatch %d vs %d", moving.Len(), static.Len())
	}
	for c := range moving.Channels {
		for i := range moving.Channels[c] {
			if moving.Channels[c][i] != static.Channels[c][i] {
				t.Fatalf("ch %d sample %d: stationary trajectory %g != static %g",
					c, i, moving.Channels[c][i], static.Channels[c][i])
			}
		}
	}
}

// TestCaptureMultiOnset: a delayed source contributes nothing before
// its onset plus the direct-path delay.
func TestCaptureMultiOnset(t *testing.T) {
	scene, sim := testScene(-1)
	scene.DisableSelfNoise = true
	sim.ImageOrder = 0
	utt := testUtterance(sim, 51)
	const onset = 0.25
	rec := scene.CaptureMulti([]SceneSource{{
		Source:    room.Source{Pos: scene.ArrayPos.Add(geom.Vec3{X: 1}), Azimuth: 180, Dir: room.OmniDirectivity{}},
		Utterance: utt,
		SPL:       70,
		OnsetSec:  onset,
		Seed:      9,
	}}, rand.New(rand.NewPCG(3, 3)))
	onsetSamples := int(onset * rec.SampleRate)
	if rec.Len() < onsetSamples+utt.Length {
		t.Fatalf("capture %d too short for onset %d + utterance %d", rec.Len(), onsetSamples, utt.Length)
	}
	for c := range rec.Channels {
		if got := dsp.RMS(rec.Channels[c][:onsetSamples]); got != 0 {
			t.Errorf("ch %d: energy %g before onset", c, got)
		}
		if got := dsp.RMS(rec.Channels[c][onsetSamples:]); got == 0 {
			t.Errorf("ch %d: silent after onset", c)
		}
	}
}

// TestCaptureMultiInterference: adding a second, louder off-axis talker
// changes the mixture audibly (sanity: the renderer does not ignore
// extra sources) while the primary talker alone still dominates its
// own single-source capture.
func TestCaptureMultiInterference(t *testing.T) {
	scene, sim := testScene(16)
	scene.DisableSelfNoise = true
	utt := testUtterance(sim, 61)
	interf := testUtterance(sim, 62)
	primary := SceneSource{
		Source:    room.Source{Pos: scene.ArrayPos.Add(geom.Vec3{X: 1.5}), Azimuth: 180},
		Utterance: utt,
		SPL:       68,
		Seed:      71,
	}
	talker2 := SceneSource{
		Source:    room.Source{Pos: scene.ArrayPos.Add(geom.Vec3{X: -2, Y: 1}), Azimuth: 60},
		Utterance: interf,
		SPL:       74,
		Seed:      72,
	}
	clean := scene.CaptureMulti([]SceneSource{primary}, rand.New(rand.NewPCG(4, 4)))
	mixed := scene.CaptureMulti([]SceneSource{primary, talker2}, rand.New(rand.NewPCG(4, 4)))
	n := clean.Len()
	diff := make([]float64, n)
	for i := range diff {
		diff[i] = mixed.Channels[0][i] - clean.Channels[0][i]
	}
	if dsp.RMS(diff) == 0 {
		t.Fatal("interferer contributed nothing")
	}
	// The mixture is exactly the sum of the two solo renders.
	solo := scene.CaptureMulti([]SceneSource{talker2}, rand.New(rand.NewPCG(4, 4)))
	for i := range mixed.Channels[0] {
		var want float64
		if i < clean.Len() {
			want += clean.Channels[0][i]
		}
		if i < solo.Len() {
			want += solo.Channels[0][i]
		}
		if mixed.Channels[0][i] != want {
			t.Fatalf("sample %d: mixture %g != clean+solo %g", i, mixed.Channels[0][i], want)
		}
	}
}

// TestCaptureMultiMovingDiffers: a genuinely moving trajectory must not
// silently collapse onto the static path.
func TestCaptureMultiMovingDiffers(t *testing.T) {
	scene, sim := testScene(16)
	scene.DisableSelfNoise = true
	utt := testUtterance(sim, 81)
	start := room.Source{Pos: scene.ArrayPos.Add(geom.Vec3{X: 1}), Azimuth: 180, Dir: room.OmniDirectivity{}}
	end := room.Source{Pos: scene.ArrayPos.Add(geom.Vec3{X: 3.5}), Azimuth: 180, Dir: room.OmniDirectivity{}}
	tr := room.LineTrajectory(start, end)
	moving := scene.CaptureMulti([]SceneSource{{
		Trajectory: &tr, Segments: 5, Utterance: utt, SPL: 70, Seed: 13,
	}}, rand.New(rand.NewPCG(5, 5)))
	static := scene.CaptureMulti([]SceneSource{{
		Source: start, Utterance: utt, SPL: 70, Seed: 13,
	}}, rand.New(rand.NewPCG(5, 5)))
	same := true
	for i := range moving.Channels[0] {
		if moving.Channels[0][i] != static.Channels[0][i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("moving capture identical to static capture")
	}
}
