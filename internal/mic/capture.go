package mic

import (
	"math/rand/v2"

	"headtalk/internal/audio"
	"headtalk/internal/dsp"
	"headtalk/internal/geom"
	"headtalk/internal/room"
)

// Utterance is a dry (mouth-reference) source signal pre-split into the
// simulator's frequency bands. Band splitting is the expensive part of
// a capture, so one Utterance is prepared per synthesized waveform and
// reused across every angle/location/session it is captured at.
type Utterance struct {
	SampleRate float64
	Length     int
	Bands      [][]float64
	// RMS of the full-band dry signal, used for SPL calibration.
	RMS float64
}

// PrepareUtterance band-splits the dry buffer for use with a simulator
// configured with the same bands.
func PrepareUtterance(buf *audio.Buffer, bands []room.Band) *Utterance {
	return &Utterance{
		SampleRate: buf.SampleRate,
		Length:     len(buf.Samples),
		Bands:      room.SplitBands(buf.Samples, buf.SampleRate, bands),
		RMS:        buf.RMS(),
	}
}

// AmbientNoise is one ambient noise source at a given level.
type AmbientNoise struct {
	Kind audio.NoiseKind
	SPL  float64
}

// Scene binds a room simulator, a device and its placement, and the
// ambient noise condition — everything about a capture except the
// source.
type Scene struct {
	Sim      *room.Simulator
	Array    *Array
	ArrayPos geom.Vec3 // device center (Z = height above floor)
	// Ambients are the concurrent ambient noise sources (e.g. the
	// room's default floor plus an added white-noise or TV source for
	// the §IV-B10 experiment). Entries with SPL <= 0 are skipped.
	Ambients []AmbientNoise
	// DisableSelfNoise turns off microphone self-noise (for tests and
	// idealized analyses).
	DisableSelfNoise bool
}

// Capture renders the utterance spoken by src at sourceSPL dB SPL
// (measured at 1 m on-axis) into a multi-channel recording from the
// scene's array. rng drives the diffuse tails, ambient noise and mic
// self-noise.
func (sc *Scene) Capture(src room.Source, utter *Utterance, sourceSPL float64, rng *rand.Rand) *audio.Recording {
	fs := utter.SampleRate
	outLen := utter.Length + sc.Sim.MaxDelaySamples()
	mics := sc.Array.Place(sc.ArrayPos)
	rec := audio.NewRecording(fs, len(mics), outLen)

	// Source gain: calibrate dry-signal RMS to the requested SPL at
	// the 1 m directivity reference.
	gain := 1.0
	if utter.RMS > 0 {
		gain = audio.SPLToRMS(sourceSPL) / utter.RMS
	}

	for mi, mpos := range mics {
		taps, _ := sc.Sim.BandRIR(src, mpos, rng)
		dst := rec.Channels[mi]
		for bi, bandSig := range utter.Bands {
			scaled := make([]dsp.SparseTap, len(taps[bi]))
			for ti, t := range taps[bi] {
				scaled[ti] = dsp.SparseTap{Delay: t.Delay, Gain: t.Gain * gain}
			}
			dsp.ConvolveSparse(dst, bandSig, scaled)
		}
	}

	// Ambient noise: a diffuse field is partially coherent across the
	// small array, so mix a shared component with per-mic independent
	// components at equal power.
	for _, amb := range sc.Ambients {
		if amb.SPL <= 0 {
			continue
		}
		shared := audio.GenerateNoise(amb.Kind, outLen, fs, rng)
		audio.SetSPL(shared, amb.SPL)
		for mi := range rec.Channels {
			indep := audio.GenerateNoise(amb.Kind, outLen, fs, rng)
			audio.SetSPL(indep, amb.SPL)
			ch := rec.Channels[mi]
			for i := range ch {
				ch[i] += 0.7071*shared[i] + 0.7071*indep[i]
			}
		}
	}

	// Microphone self-noise at the device's typical SNR relative to
	// the captured speech level.
	if !sc.DisableSelfNoise {
		for mi := range rec.Channels {
			ch := rec.Channels[mi]
			sigRMS := dsp.RMS(ch)
			if sigRMS == 0 {
				continue
			}
			noiseRMS := sigRMS / audio.DBToGain(sc.Array.SelfNoiseSNRdB)
			for i := range ch {
				ch[i] += noiseRMS * rng.NormFloat64()
			}
		}
	}
	return rec
}

// CaptureMoving renders an utterance from a source that moves (and
// turns) during speech — the case the paper's §VI explicitly leaves
// uncovered. The trajectory is linear from start to end; the capture
// is approximated by rendering the full utterance at `segments`
// interpolated poses and crossfading between the renders, which is
// accurate for walking-speed motion (the pose changes little within a
// crossfade region). segments <= 1 degenerates to a static capture at
// the start pose.
func (sc *Scene) CaptureMoving(start, end room.Source, utter *Utterance, sourceSPL float64, segments int, rng *rand.Rand) *audio.Recording {
	if segments <= 1 {
		return sc.Capture(start, utter, sourceSPL, rng)
	}
	renders := make([]*audio.Recording, segments)
	for k := 0; k < segments; k++ {
		t := float64(k) / float64(segments-1)
		src := room.Source{
			Pos:     start.Pos.Add(end.Pos.Sub(start.Pos).Scale(t)),
			Azimuth: start.Azimuth + t*geom.NormalizeDeg(end.Azimuth-start.Azimuth),
			Dir:     start.Dir,
		}
		renders[k] = sc.Capture(src, utter, sourceSPL, rng)
	}
	out := audio.NewRecording(renders[0].SampleRate, len(renders[0].Channels), renders[0].Len())
	n := out.Len()
	segLen := float64(n) / float64(segments-1)
	for c := range out.Channels {
		dst := out.Channels[c]
		for i := range dst {
			pos := float64(i) / segLen
			k := int(pos)
			if k >= segments-1 {
				dst[i] = renders[segments-1].Channels[c][i]
				continue
			}
			frac := pos - float64(k)
			dst[i] = renders[k].Channels[c][i]*(1-frac) + renders[k+1].Channels[c][i]*frac
		}
	}
	return out
}
