package mic

import (
	"math/rand/v2"

	"headtalk/internal/audio"
	"headtalk/internal/dsp"
	"headtalk/internal/geom"
	"headtalk/internal/room"
)

// Utterance is a dry (mouth-reference) source signal pre-split into the
// simulator's frequency bands. Band splitting is the expensive part of
// a capture, so one Utterance is prepared per synthesized waveform and
// reused across every angle/location/session it is captured at.
type Utterance struct {
	SampleRate float64
	Length     int
	Bands      [][]float64
	// RMS of the full-band dry signal, used for SPL calibration.
	RMS float64
}

// PrepareUtterance band-splits the dry buffer for use with a simulator
// configured with the same bands.
func PrepareUtterance(buf *audio.Buffer, bands []room.Band) *Utterance {
	return &Utterance{
		SampleRate: buf.SampleRate,
		Length:     len(buf.Samples),
		Bands:      room.SplitBands(buf.Samples, buf.SampleRate, bands),
		RMS:        buf.RMS(),
	}
}

// AmbientNoise is one ambient noise source at a given level.
type AmbientNoise struct {
	Kind audio.NoiseKind
	SPL  float64
}

// Scene binds a room simulator, a device and its placement, and the
// ambient noise condition — everything about a capture except the
// source.
type Scene struct {
	Sim      *room.Simulator
	Array    *Array
	ArrayPos geom.Vec3 // device center (Z = height above floor)
	// Ambients are the concurrent ambient noise sources (e.g. the
	// room's default floor plus an added white-noise or TV source for
	// the §IV-B10 experiment). Entries with SPL <= 0 are skipped.
	Ambients []AmbientNoise
	// DisableSelfNoise turns off microphone self-noise (for tests and
	// idealized analyses).
	DisableSelfNoise bool
}

// Capture renders the utterance spoken by src at sourceSPL dB SPL
// (measured at 1 m on-axis) into a multi-channel recording from the
// scene's array. rng drives the diffuse tails, ambient noise and mic
// self-noise.
func (sc *Scene) Capture(src room.Source, utter *Utterance, sourceSPL float64, rng *rand.Rand) *audio.Recording {
	fs := utter.SampleRate
	outLen := utter.Length + sc.Sim.MaxDelaySamples()
	mics := sc.Array.Place(sc.ArrayPos)
	rec := audio.NewRecording(fs, len(mics), outLen)
	sc.renderStatic(rec, mics, src, utter, sourceSPL, rng)
	sc.addAmbient(rec, rng)
	sc.addSelfNoise(rec, rng)
	return rec
}

// renderStatic convolves the utterance through per-mic RIRs at one
// fixed pose, accumulating into rec's channels.
func (sc *Scene) renderStatic(rec *audio.Recording, mics []geom.Vec3, src room.Source, utter *Utterance, sourceSPL float64, rng *rand.Rand) {
	// Source gain: calibrate dry-signal RMS to the requested SPL at
	// the 1 m directivity reference.
	gain := 1.0
	if utter.RMS > 0 {
		gain = audio.SPLToRMS(sourceSPL) / utter.RMS
	}
	for mi, mpos := range mics {
		taps, _ := sc.Sim.BandRIR(src, mpos, rng)
		dst := rec.Channels[mi]
		for bi, bandSig := range utter.Bands {
			scaled := make([]dsp.SparseTap, len(taps[bi]))
			for ti, t := range taps[bi] {
				scaled[ti] = dsp.SparseTap{Delay: t.Delay, Gain: t.Gain * gain}
			}
			dsp.ConvolveSparse(dst, bandSig, scaled)
		}
	}
}

// addAmbient mixes the scene's ambient noise sources into rec. A
// diffuse field is partially coherent across the small array, so each
// source is a shared component plus per-mic independent components at
// equal power.
func (sc *Scene) addAmbient(rec *audio.Recording, rng *rand.Rand) {
	outLen := rec.Len()
	for _, amb := range sc.Ambients {
		if amb.SPL <= 0 {
			continue
		}
		shared := audio.GenerateNoise(amb.Kind, outLen, rec.SampleRate, rng)
		audio.SetSPL(shared, amb.SPL)
		for mi := range rec.Channels {
			indep := audio.GenerateNoise(amb.Kind, outLen, rec.SampleRate, rng)
			audio.SetSPL(indep, amb.SPL)
			ch := rec.Channels[mi]
			for i := range ch {
				ch[i] += 0.7071*shared[i] + 0.7071*indep[i]
			}
		}
	}
}

// addSelfNoise adds microphone self-noise at the device's typical SNR
// relative to the captured level.
func (sc *Scene) addSelfNoise(rec *audio.Recording, rng *rand.Rand) {
	if sc.DisableSelfNoise {
		return
	}
	for mi := range rec.Channels {
		ch := rec.Channels[mi]
		sigRMS := dsp.RMS(ch)
		if sigRMS == 0 {
			continue
		}
		noiseRMS := sigRMS / audio.DBToGain(sc.Array.SelfNoiseSNRdB)
		for i := range ch {
			ch[i] += noiseRMS * rng.NormFloat64()
		}
	}
}

// SceneSource is one talker (or interference source) in a multi-source
// capture: its own pose or motion trajectory, directivity (carried on
// the pose), utterance, level and onset.
type SceneSource struct {
	// Source is the pose for a static talker. Ignored when Trajectory
	// is set and non-stationary.
	Source room.Source
	// Trajectory, when set, moves the talker during the utterance:
	// the render samples the path at Segments poses and crossfades
	// between full-utterance renders (accurate for walking-speed
	// motion). A stationary trajectory collapses onto the static
	// render path exactly.
	Trajectory *room.Trajectory
	// Segments is the crossfade segment count for a moving source
	// (default 5; values <= 1 render statically at the start pose).
	Segments int
	// Utterance is the dry band-split signal. All sources of one
	// capture must share a sample rate.
	Utterance *Utterance
	// SPL is the source level in dB SPL at 1 m on-axis.
	SPL float64
	// OnsetSec delays the source's first sample relative to capture
	// start, letting talkers overlap partially rather than exactly.
	OnsetSec float64
	// Seed, when non-zero, pins the source's diffuse-tail randomness so
	// a source renders identically inside any capture (the superposition
	// property tests rely on this). Zero draws a seed from the capture
	// rng.
	Seed uint64
}

// pose returns the source's starting pose.
func (s *SceneSource) pose() room.Source {
	if s.Trajectory != nil && len(s.Trajectory.Waypoints) > 0 {
		return s.Trajectory.At(0)
	}
	return s.Source
}

// CaptureMulti renders several simultaneous sources — overlapping
// talkers, interference, moving speakers — into one multi-channel
// recording. Each source is rendered independently (its own RIRs,
// directivity, level, onset and tail seed) into a scratch buffer and
// summed, so the result obeys superposition exactly: a two-source
// capture is the sample-wise sum of the single-source captures with
// the same seeds. Ambient noise and mic self-noise are added once,
// after all sources.
func (sc *Scene) CaptureMulti(srcs []SceneSource, rng *rand.Rand) *audio.Recording {
	fs := sc.Sim.SampleRate
	if fs == 0 {
		fs = 48000
	}
	mics := sc.Array.Place(sc.ArrayPos)
	maxDelay := sc.Sim.MaxDelaySamples()
	outLen := maxDelay
	for i := range srcs {
		s := &srcs[i]
		if s.Utterance == nil {
			continue
		}
		fs = s.Utterance.SampleRate
		if end := s.onsetSamples(fs) + s.Utterance.Length + maxDelay; end > outLen {
			outLen = end
		}
	}
	rec := audio.NewRecording(fs, len(mics), outLen)
	for i := range srcs {
		s := &srcs[i]
		if s.Utterance == nil {
			continue
		}
		seed := s.Seed
		if seed == 0 {
			seed = rng.Uint64()
		}
		scratch := audio.NewRecording(fs, len(mics), s.Utterance.Length+maxDelay)
		sc.renderSource(scratch, mics, s, seed)
		onset := s.onsetSamples(fs)
		for c := range rec.Channels {
			dst := rec.Channels[c][onset:]
			src := scratch.Channels[c]
			if len(src) > len(dst) {
				src = src[:len(dst)]
			}
			for j, v := range src {
				dst[j] += v
			}
		}
	}
	sc.addAmbient(rec, rng)
	sc.addSelfNoise(rec, rng)
	return rec
}

func (s *SceneSource) onsetSamples(fs float64) int {
	if s.OnsetSec <= 0 {
		return 0
	}
	return int(s.OnsetSec * fs)
}

// renderSource renders one source — static or moving — into dst. The
// diffuse-tail randomness is derived from seed only, never from the
// capture rng, so a source's render is a pure function of (scene,
// source, seed).
func (sc *Scene) renderSource(dst *audio.Recording, mics []geom.Vec3, s *SceneSource, seed uint64) {
	segments := s.Segments
	if segments == 0 {
		segments = 5
	}
	if s.Trajectory == nil || s.Trajectory.Stationary() || segments <= 1 {
		sc.renderStatic(dst, mics, s.pose(), s.Utterance, s.SPL, rand.New(rand.NewPCG(seed, 0)))
		return
	}
	// Moving source: full render at each sampled pose, crossfaded.
	// Every segment reuses the same tail seed, so the velvet-noise tap
	// times stay frozen while the early reflections move — the diffuse
	// field does not jump between segments.
	renders := make([]*audio.Recording, segments)
	for k := 0; k < segments; k++ {
		t := float64(k) / float64(segments-1)
		seg := audio.NewRecording(dst.SampleRate, len(mics), dst.Len())
		sc.renderStatic(seg, mics, s.Trajectory.At(t), s.Utterance, s.SPL, rand.New(rand.NewPCG(seed, 0)))
		renders[k] = seg
	}
	n := dst.Len()
	segLen := float64(n) / float64(segments-1)
	for c := range dst.Channels {
		out := dst.Channels[c]
		for i := range out {
			pos := float64(i) / segLen
			k := int(pos)
			if k >= segments-1 {
				out[i] += renders[segments-1].Channels[c][i]
				continue
			}
			frac := pos - float64(k)
			out[i] += renders[k].Channels[c][i]*(1-frac) + renders[k+1].Channels[c][i]*frac
		}
	}
}

// CaptureMoving renders an utterance from a source that moves (and
// turns) during speech — the case the paper's §VI explicitly leaves
// uncovered. The trajectory is linear from start to end; the capture
// is approximated by rendering the full utterance at `segments`
// interpolated poses and crossfading between the renders, which is
// accurate for walking-speed motion (the pose changes little within a
// crossfade region). segments <= 1 degenerates to a static capture at
// the start pose. Arbitrary waypoint paths and overlapping talkers go
// through CaptureMulti directly.
func (sc *Scene) CaptureMoving(start, end room.Source, utter *Utterance, sourceSPL float64, segments int, rng *rand.Rand) *audio.Recording {
	if segments <= 1 {
		return sc.Capture(start, utter, sourceSPL, rng)
	}
	tr := room.LineTrajectory(start, end)
	return sc.CaptureMulti([]SceneSource{{
		Trajectory: &tr,
		Segments:   segments,
		Utterance:  utter,
		SPL:        sourceSPL,
	}}, rng)
}
