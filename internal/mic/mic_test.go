package mic

import (
	"math"
	"math/rand/v2"
	"testing"

	"headtalk/internal/audio"
	"headtalk/internal/dsp"
	"headtalk/internal/geom"
	"headtalk/internal/room"
	"headtalk/internal/speech"
)

func TestDeviceGeometries(t *testing.T) {
	cases := []struct {
		array    *Array
		channels int
		orthoCM  float64
	}{
		{DeviceD1(), 7, 8.5},
		{DeviceD2(), 6, 9.0},
		{DeviceD3(), 4, 6.5},
	}
	for _, c := range cases {
		if c.array.Channels() != c.channels {
			t.Errorf("%s: %d channels, want %d", c.array.DeviceID, c.array.Channels(), c.channels)
		}
		if math.Abs(c.array.OrthogonalDist*100-c.orthoCM) > 1e-9 {
			t.Errorf("%s: orthogonal distance %g cm", c.array.DeviceID, c.array.OrthogonalDist*100)
		}
		// Verify the opposite-mic distance actually matches the spec
		// for circular layouts (skip D1's center mic at index 0).
		pos := c.array.Positions
		start := 0
		if c.array.DeviceID == "D1" {
			start = 1
		}
		n := len(pos) - start
		if n%2 == 0 {
			a := pos[start]
			b := pos[start+n/2]
			if d := a.Dist(b); math.Abs(d-c.array.OrthogonalDist) > 1e-9 {
				t.Errorf("%s: opposite-mic distance %g m, want %g", c.array.DeviceID, d, c.array.OrthogonalDist)
			}
		}
	}
}

func TestMaxDelaySamplesMatchPaper(t *testing.T) {
	// Paper §III-B3: ±12, ±13, ±10 samples at 48 kHz for D1/D2/D3
	// (window sizes 25, 27, 21).
	if got := DeviceD1().MaxDelaySamples(48000, 340); got != 12 {
		t.Errorf("D1 max delay %d, want 12", got)
	}
	if got := DeviceD2().MaxDelaySamples(48000, 340); got != 13 {
		t.Errorf("D2 max delay %d, want 13", got)
	}
	if got := DeviceD3().MaxDelaySamples(48000, 340); got != 10 {
		t.Errorf("D3 max delay %d, want 10", got)
	}
}

func TestDeviceByID(t *testing.T) {
	for _, id := range []string{"D1", "D2", "D3"} {
		a, err := DeviceByID(id)
		if err != nil || a.DeviceID != id {
			t.Errorf("DeviceByID(%s) = %v, %v", id, a, err)
		}
	}
	if _, err := DeviceByID("D9"); err == nil {
		t.Error("expected error for unknown device")
	}
}

func TestDefaultSubsets(t *testing.T) {
	if got := DeviceD1().DefaultSubset(); len(got) != 4 {
		t.Errorf("D1 subset %v", got)
	}
	if got := DeviceD2().DefaultSubset(); len(got) != 4 {
		t.Errorf("D2 subset %v", got)
	}
	if got := DeviceD3().DefaultSubset(); len(got) != 4 {
		t.Errorf("D3 subset %v", got)
	}
	for _, a := range Devices() {
		for _, i := range a.DefaultSubset() {
			if i < 0 || i >= a.Channels() {
				t.Errorf("%s: subset index %d out of range", a.DeviceID, i)
			}
		}
	}
}

func TestPlace(t *testing.T) {
	a := DeviceD3()
	placed := a.Place(geom.Vec3{X: 1, Y: 2, Z: 0.74})
	if len(placed) != 4 {
		t.Fatal("wrong channel count")
	}
	for i, p := range placed {
		rel := p.Sub(geom.Vec3{X: 1, Y: 2, Z: 0.74})
		if rel.Dist(a.Positions[i]) > 1e-12 {
			t.Errorf("mic %d misplaced", i)
		}
	}
}

// testScene builds a quiet lab scene around D3.
func testScene(tailTaps int) (*Scene, *room.Simulator) {
	r := room.LabRoom()
	sim := room.NewSimulator(r)
	sim.TailTaps = tailTaps
	return &Scene{
		Sim:      sim,
		Array:    DeviceD3(),
		ArrayPos: geom.Vec3{X: 1, Y: 2.1, Z: 0.74},
	}, sim
}

func testUtterance(sim *room.Simulator, seed uint64) *Utterance {
	rng := rand.New(rand.NewPCG(seed, 1))
	buf := speech.Synthesize(speech.WordComputer, speech.DefaultVoice(), 48000, rng)
	return PrepareUtterance(buf, sim.Bands)
}

func TestCaptureShape(t *testing.T) {
	scene, sim := testScene(16)
	utt := testUtterance(sim, 1)
	rng := rand.New(rand.NewPCG(2, 2))
	src := room.Source{Pos: geom.Vec3{X: 4, Y: 2.1, Z: 1.65}, Azimuth: 180}
	rec := scene.Capture(src, utt, 70, rng)
	if len(rec.Channels) != 4 {
		t.Fatalf("%d channels", len(rec.Channels))
	}
	if rec.Len() != utt.Length+sim.MaxDelaySamples() {
		t.Errorf("capture length %d, want %d", rec.Len(), utt.Length+sim.MaxDelaySamples())
	}
	if rec.SampleRate != 48000 {
		t.Errorf("sample rate %g", rec.SampleRate)
	}
	for i, ch := range rec.Channels {
		if dsp.RMS(ch) == 0 {
			t.Errorf("channel %d silent", i)
		}
	}
}

func TestCaptureSPLCalibration(t *testing.T) {
	// At 1 m on-axis with no noise and no reverb, the captured level
	// should be close to the requested SPL.
	scene, sim := testScene(-1)
	scene.DisableSelfNoise = true
	sim.ImageOrder = 0
	utt := testUtterance(sim, 3)
	rng := rand.New(rand.NewPCG(4, 4))
	src := room.Source{
		Pos:     scene.ArrayPos.Add(geom.Vec3{X: 1, Z: 0.0}),
		Azimuth: 180,
		Dir:     room.OmniDirectivity{},
	}
	rec := scene.Capture(src, utt, 70, rng)
	got := audio.RMSToSPL(dsp.RMS(rec.Channels[0][:utt.Length]))
	if math.Abs(got-70) > 2 {
		t.Errorf("captured level %g dB SPL, want ~70", got)
	}
}

func TestCaptureDistanceLaw(t *testing.T) {
	scene, sim := testScene(-1)
	scene.DisableSelfNoise = true
	sim.ImageOrder = 0
	utt := testUtterance(sim, 5)
	rng := rand.New(rand.NewPCG(6, 6))
	level := func(d float64) float64 {
		src := room.Source{
			Pos:     scene.ArrayPos.Add(geom.Vec3{X: d}),
			Azimuth: 180,
			Dir:     room.OmniDirectivity{},
		}
		rec := scene.Capture(src, utt, 70, rng)
		return dsp.RMS(rec.Channels[0])
	}
	near := level(1)
	far := level(2)
	if ratio := near / far; math.Abs(ratio-2) > 0.25 {
		t.Errorf("1m/2m level ratio %g, want ~2 (1/d law)", ratio)
	}
}

func TestCaptureInterChannelDelay(t *testing.T) {
	// A source along +X reaches the +X microphone first; the
	// cross-correlation peak between opposite mics must match the
	// geometric delay.
	scene, sim := testScene(-1)
	scene.DisableSelfNoise = true
	sim.ImageOrder = 0
	utt := testUtterance(sim, 7)
	rng := rand.New(rand.NewPCG(8, 8))
	src := room.Source{
		Pos:     scene.ArrayPos.Add(geom.Vec3{X: 3}),
		Azimuth: 180,
		Dir:     room.OmniDirectivity{},
	}
	rec := scene.Capture(src, utt, 70, rng)
	// D3 mic 0 is at +X, mic 2 at -X; distance 6.5 cm => delay
	// ~9.2 samples at 48 kHz.
	r := dsp.CrossCorrelate(rec.Channels[0], rec.Channels[2], 15)
	peak := dsp.ArgMax(r) - 15
	// Channel 0 leads, so channel0[n] ≈ channel2[n + delay]:
	// r[k] = Σ ch0[n+k]·ch2[n] peaks at k = -delay.
	wantDelay := 0.065 / 340 * 48000
	if math.Abs(float64(peak)+wantDelay) > 1.5 {
		t.Errorf("inter-channel delay peak at %d, want ~%.1f", peak, -wantDelay)
	}
}

func TestCaptureSelfNoiseSNR(t *testing.T) {
	scene, sim := testScene(-1)
	sim.ImageOrder = 0
	utt := testUtterance(sim, 9)
	src := room.Source{
		Pos:     scene.ArrayPos.Add(geom.Vec3{X: 1}),
		Azimuth: 180,
		Dir:     room.OmniDirectivity{},
	}
	clean := scene.Capture(src, utt, 70, rand.New(rand.NewPCG(10, 10)))
	scene.DisableSelfNoise = true
	quiet := scene.Capture(src, utt, 70, rand.New(rand.NewPCG(10, 10)))
	// Noise = difference; SNR should approximate the device spec.
	noise := make([]float64, clean.Len())
	for i := range noise {
		noise[i] = clean.Channels[0][i] - quiet.Channels[0][i]
	}
	snr := audio.SNRdB(dsp.RMS(quiet.Channels[0]), dsp.RMS(noise))
	if math.Abs(snr-DeviceD3().SelfNoiseSNRdB) > 2 {
		t.Errorf("self-noise SNR %g dB, want ~%g", snr, DeviceD3().SelfNoiseSNRdB)
	}
}

func TestCaptureAmbientNoiseLevel(t *testing.T) {
	scene, sim := testScene(-1)
	scene.DisableSelfNoise = true
	scene.Ambients = []AmbientNoise{{Kind: audio.WhiteNoise, SPL: 45}}
	utt := testUtterance(sim, 11)
	// Capture silence (gain 0 source far away at tiny SPL) to measure
	// ambient level alone.
	src := room.Source{Pos: scene.ArrayPos.Add(geom.Vec3{X: 3}), Azimuth: 0}
	rec := scene.Capture(src, utt, 1, rand.New(rand.NewPCG(12, 12)))
	got := audio.RMSToSPL(dsp.RMS(rec.Channels[0]))
	if math.Abs(got-45) > 2.5 {
		t.Errorf("ambient level %g dB SPL, want ~45", got)
	}
}

func TestPrepareUtterance(t *testing.T) {
	sim := room.NewSimulator(room.LabRoom())
	utt := testUtterance(sim, 13)
	if len(utt.Bands) != len(sim.Bands) {
		t.Errorf("%d bands, want %d", len(utt.Bands), len(sim.Bands))
	}
	if utt.RMS <= 0 {
		t.Error("utterance RMS not recorded")
	}
	if utt.Length == 0 {
		t.Error("zero-length utterance")
	}
}

func TestCaptureMovingShapeAndMotion(t *testing.T) {
	scene, sim := testScene(16)
	utt := testUtterance(sim, 21)
	rng := rand.New(rand.NewPCG(22, 22))
	start := room.Source{Pos: scene.ArrayPos.Add(geom.Vec3{X: 1}), Azimuth: 180, Dir: room.OmniDirectivity{}}
	end := room.Source{Pos: scene.ArrayPos.Add(geom.Vec3{X: 4}), Azimuth: 180, Dir: room.OmniDirectivity{}}
	rec := scene.CaptureMoving(start, end, utt, 70, 5, rng)
	if rec.Len() != utt.Length+sim.MaxDelaySamples() {
		t.Fatalf("moving capture length %d", rec.Len())
	}
	// The source recedes (1 m -> 4 m), so the early part must be
	// louder than the late part.
	n := rec.Len()
	head := dsp.RMS(rec.Channels[0][:n/4])
	tail := dsp.RMS(rec.Channels[0][3*n/4:])
	if head <= tail*1.5 {
		t.Errorf("receding source should decay: head %g vs tail %g", head, tail)
	}
	// segments <= 1 degenerates to the static capture.
	static := scene.CaptureMoving(start, end, utt, 70, 1, rand.New(rand.NewPCG(23, 23)))
	direct := scene.Capture(start, utt, 70, rand.New(rand.NewPCG(23, 23)))
	for i := range static.Channels[0] {
		if static.Channels[0][i] != direct.Channels[0][i] {
			t.Fatal("segments=1 should match static capture")
		}
	}
}
