package mic

import (
	"math"
	"math/rand/v2"
	"testing"

	"headtalk/internal/audio"
)

// healthRecording builds a 6-channel recording with unit-RMS noise.
func healthRecording(n int, seed uint64) *audio.Recording {
	rng := rand.New(rand.NewPCG(seed, 5))
	rec := audio.NewRecording(48000, 6, n)
	for c := range rec.Channels {
		for i := range rec.Channels[c] {
			rec.Channels[c][i] = 0.3 * rng.NormFloat64()
		}
	}
	return rec
}

func statesOf(h ArrayHealth) []ChannelState {
	out := make([]ChannelState, len(h.Channels))
	for i, c := range h.Channels {
		out[i] = c.State
	}
	return out
}

func TestAssessHealthAllHealthy(t *testing.T) {
	h := AssessHealth(healthRecording(4800, 1), HealthConfig{})
	if h.Degraded() != 0 || len(h.Healthy) != 6 {
		t.Fatalf("healthy array assessed as %s", h)
	}
}

func TestAssessHealthDetectsDeadStuckLowSNR(t *testing.T) {
	rec := healthRecording(4800, 2)
	// Channel 1: dead (all zeros).
	for i := range rec.Channels[1] {
		rec.Channels[1][i] = 0
	}
	// Channel 3: stuck at a DC offset.
	for i := range rec.Channels[3] {
		rec.Channels[3][i] = 0.42
	}
	// Channel 4: alive but 40 dB down from its siblings.
	for i := range rec.Channels[4] {
		rec.Channels[4][i] *= 0.003
	}
	h := AssessHealth(rec, HealthConfig{})
	states := statesOf(h)
	want := []ChannelState{ChannelOK, ChannelDead, ChannelOK, ChannelStuck, ChannelLowSNR, ChannelOK}
	for i := range want {
		if states[i] != want[i] {
			t.Fatalf("channel %d state = %s, want %s (%s)", i, states[i], want[i], h)
		}
	}
	if got := h.Healthy; len(got) != 3 || got[0] != 0 || got[1] != 2 || got[2] != 5 {
		t.Fatalf("healthy = %v, want [0 2 5]", got)
	}
	if h.Degraded() != 3 {
		t.Fatalf("degraded = %d, want 3", h.Degraded())
	}
}

func TestAssessHealthNonFiniteChannelIsDead(t *testing.T) {
	rec := healthRecording(512, 3)
	for i := range rec.Channels[2] {
		rec.Channels[2][i] = math.NaN()
	}
	h := AssessHealth(rec, HealthConfig{})
	if h.Channels[2].State != ChannelDead {
		t.Fatalf("all-NaN channel state = %s, want dead", h.Channels[2].State)
	}
	// The NaN channel must not poison its siblings' scores.
	for _, i := range []int{0, 1, 3, 4, 5} {
		if h.Channels[i].State != ChannelOK {
			t.Fatalf("channel %d state = %s, want ok", i, h.Channels[i].State)
		}
	}
}

func TestAssessHealthLowSNRDisabled(t *testing.T) {
	rec := healthRecording(4800, 4)
	for i := range rec.Channels[0] {
		rec.Channels[0][i] *= 0.001
	}
	h := AssessHealth(rec, HealthConfig{LowSNRRatio: -1})
	if h.Channels[0].State != ChannelOK {
		t.Fatal("LowSNRRatio<0 should disable the relative check")
	}
	h = AssessHealth(rec, HealthConfig{})
	if h.Channels[0].State != ChannelLowSNR {
		t.Fatal("default config should flag the -60 dB channel")
	}
}

func TestChannelStateStrings(t *testing.T) {
	cases := map[ChannelState]string{
		ChannelOK: "ok", ChannelDead: "dead", ChannelStuck: "stuck",
		ChannelLowSNR: "low_snr", ChannelState(9): "unknown",
	}
	for s, want := range cases {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
}
