// Package mic models the prototype devices' microphone arrays (paper
// Table I / Fig. 7) and the capture pipeline that turns a simulated
// sound field into a multi-channel recording with realistic self-noise
// and ambient noise.
package mic

import (
	"fmt"
	"math"

	"headtalk/internal/geom"
)

// Array is a rigid microphone array. Positions are relative to the
// array center in meters (the device is assumed horizontal, mics in
// one plane).
type Array struct {
	Name      string
	DeviceID  string // D1, D2, D3
	Positions []geom.Vec3
	// SelfNoiseSNRdB is the typical speech-to-self-noise ratio the
	// device achieves (paper §IV-B4: 25.09 dB for D1, 24.25 dB for
	// D2).
	SelfNoiseSNRdB float64
	// OrthogonalDist is the distance in meters between "orthogonal"
	// (diametrically opposite) microphones, used to size the SRP/GCC
	// analysis windows (paper §III-B3: 8.5 / 9 / 6.5 cm).
	OrthogonalDist float64
}

// Channels returns the number of microphones.
func (a *Array) Channels() int { return len(a.Positions) }

// MaxDelaySamples returns the SRP/GCC window half-width in samples at
// the given sample rate: ceil(d * fs / c), matching the paper's
// ±25/27/21-sample windows at 48 kHz for D1/D2/D3.
func (a *Array) MaxDelaySamples(sampleRate, speedOfSound float64) int {
	// The tiny epsilon keeps exact integer delays (D1: 12.0) from
	// rounding up through floating-point noise.
	return int(math.Ceil(a.OrthogonalDist*sampleRate/speedOfSound - 1e-9))
}

// circle places n microphones evenly on a circle of the given radius,
// starting at +X and proceeding counterclockwise, at height 0 relative
// to the array center.
func circle(n int, radius float64) []geom.Vec3 {
	out := make([]geom.Vec3, n)
	for i := range out {
		theta := 2 * math.Pi * float64(i) / float64(n)
		out[i] = geom.Vec3{X: radius * math.Cos(theta), Y: radius * math.Sin(theta)}
	}
	return out
}

// DeviceD1 is the miniDSP UMA-8 USB array v2.0: 7 MEMS mics, six on a
// circle plus one center mic (XMOS XVF3000). Opposite-mic spacing is
// 8.5 cm.
func DeviceD1() *Array {
	pos := append([]geom.Vec3{{}}, circle(6, 0.0425)...)
	return &Array{
		Name:           "miniDSP UMA-8 USB mic array v2.0",
		DeviceID:       "D1",
		Positions:      pos,
		SelfNoiseSNRdB: 25.09,
		OrthogonalDist: 0.085,
	}
}

// DeviceD2 is the Seeed ReSpeaker Core v2.0: 6 mics on a circle,
// similar to an Amazon Echo Dot layout. Opposite-mic spacing is 9 cm.
func DeviceD2() *Array {
	return &Array{
		Name:           "Seeed ReSpeaker Core v2.0",
		DeviceID:       "D2",
		Positions:      circle(6, 0.045),
		SelfNoiseSNRdB: 24.25,
		OrthogonalDist: 0.09,
	}
}

// DeviceD3 is the Seeed ReSpeaker USB 4-mic array: 4 mics on a circle.
// Opposite-mic spacing is 6.5 cm.
func DeviceD3() *Array {
	return &Array{
		Name:           "Seeed ReSpeaker USB Mic Array",
		DeviceID:       "D3",
		Positions:      circle(4, 0.0325),
		SelfNoiseSNRdB: 23.50,
		OrthogonalDist: 0.065,
	}
}

// Devices returns all three prototype arrays in paper order.
func Devices() []*Array {
	return []*Array{DeviceD1(), DeviceD2(), DeviceD3()}
}

// DeviceByID returns the array with the given paper ID (D1/D2/D3).
func DeviceByID(id string) (*Array, error) {
	for _, d := range Devices() {
		if d.DeviceID == id {
			return d, nil
		}
	}
	return nil, fmt.Errorf("mic: unknown device %q", id)
}

// DefaultSubset returns the 4-microphone subset the paper evaluates
// with by default (§IV-A): {Mic2, Mic3, Mic5, Mic6} for D1, {Mic1,
// Mic2, Mic4, Mic5} for D2, all four for D3. Paper mic numbering is
// 1-based; returned indices are 0-based.
func (a *Array) DefaultSubset() []int {
	switch a.DeviceID {
	case "D1":
		return []int{1, 2, 4, 5}
	case "D2":
		return []int{0, 1, 3, 4}
	default:
		idx := make([]int, a.Channels())
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
}

// Place returns the absolute microphone positions for an array whose
// center sits at pos (the device's height above the floor is pos.Z).
func (a *Array) Place(pos geom.Vec3) []geom.Vec3 {
	out := make([]geom.Vec3, len(a.Positions))
	for i, p := range a.Positions {
		out[i] = pos.Add(p)
	}
	return out
}
