package mic

import (
	"fmt"
	"math"
	"sort"

	"headtalk/internal/audio"
)

// Channel health scoring for degraded-array operation. Deployed arrays
// lose microphones: MEMS elements die (flatline at zero), ADC channels
// stick (flatline at a DC offset), and individual capsules drift to a
// fraction of their siblings' sensitivity (low SNR). The paper's
// orientation features are computed across microphone *pairs*, so one
// bad channel poisons every pair it joins — the serving path must know
// which channels to trust before SRP-PHAT runs. AssessHealth is that
// check: cheap (one pass per channel), dependency-free, and suitable
// for running on every wake-word decision.

// ChannelState classifies one microphone channel.
type ChannelState int

// Channel states.
const (
	// ChannelOK carries plausible signal.
	ChannelOK ChannelState = iota
	// ChannelDead is silent (RMS at the noise floor of a disconnected
	// element).
	ChannelDead
	// ChannelStuck is pinned at a constant non-zero value (stuck ADC
	// code / railed DC offset).
	ChannelStuck
	// ChannelLowSNR carries signal far weaker than its siblings —
	// usable level lost, pair correlations unreliable.
	ChannelLowSNR
)

// String returns the state name.
func (s ChannelState) String() string {
	switch s {
	case ChannelOK:
		return "ok"
	case ChannelDead:
		return "dead"
	case ChannelStuck:
		return "stuck"
	case ChannelLowSNR:
		return "low_snr"
	default:
		return "unknown"
	}
}

// HealthConfig tunes AssessHealth. The zero value applies the defaults
// noted on each field.
type HealthConfig struct {
	// DeadRMS is the AC-coupled RMS below which a channel counts as
	// dead (default 1e-5 of full scale — far below any real room's
	// noise floor through a live microphone).
	DeadRMS float64
	// StuckRange is the peak-to-peak range below which a channel counts
	// as flatlined (default 1e-6).
	StuckRange float64
	// LowSNRRatio flags a channel whose AC RMS falls below this
	// fraction of the median live channel's RMS (default 0.05, i.e.
	// ~26 dB below the array median). Negative disables the check.
	LowSNRRatio float64
}

func (c HealthConfig) withDefaults() HealthConfig {
	if c.DeadRMS == 0 {
		c.DeadRMS = 1e-5
	}
	if c.StuckRange == 0 {
		c.StuckRange = 1e-6
	}
	if c.LowSNRRatio == 0 {
		c.LowSNRRatio = 0.05
	}
	return c
}

// ChannelHealth is the per-channel assessment.
type ChannelHealth struct {
	Index int
	State ChannelState
	// RMS is the AC-coupled (mean-removed) RMS level.
	RMS float64
	// Range is the peak-to-peak sample range.
	Range float64
}

// ArrayHealth is the whole-array assessment.
type ArrayHealth struct {
	Channels []ChannelHealth
	// Healthy lists the indices of ChannelOK channels, ascending.
	Healthy []int
	// live is reused scratch for the low-SNR median (AssessHealthInto).
	live []float64
}

// Degraded returns the number of non-OK channels.
func (h ArrayHealth) Degraded() int { return len(h.Channels) - len(h.Healthy) }

// String summarizes the assessment ("6 channels, 2 degraded: 1=dead 4=low_snr").
func (h ArrayHealth) String() string {
	if h.Degraded() == 0 {
		return fmt.Sprintf("%d channels, all healthy", len(h.Channels))
	}
	s := fmt.Sprintf("%d channels, %d degraded:", len(h.Channels), h.Degraded())
	for _, ch := range h.Channels {
		if ch.State != ChannelOK {
			s += fmt.Sprintf(" %d=%s", ch.Index, ch.State)
		}
	}
	return s
}

// AssessHealth scores every channel of a recording. Channels that are
// non-finite are treated as dead (the input-validation stage rejects
// those recordings anyway; health scoring must not propagate NaN into
// its own statistics).
func AssessHealth(rec *audio.Recording, cfg HealthConfig) ArrayHealth {
	var h ArrayHealth
	AssessHealthInto(&h, rec, cfg)
	return h
}

// AssessHealthInto is AssessHealth writing into h, reusing its slices.
// With a caller-owned h whose capacities cover the channel count it
// performs no allocation — the shape the serving path's per-worker
// arenas rely on, since health runs on every wake-word decision.
func AssessHealthInto(h *ArrayHealth, rec *audio.Recording, cfg HealthConfig) {
	cfg = cfg.withDefaults()
	if cap(h.Channels) < len(rec.Channels) {
		h.Channels = make([]ChannelHealth, len(rec.Channels))
	}
	h.Channels = h.Channels[:len(rec.Channels)]
	h.Healthy = h.Healthy[:0]
	for i, ch := range rec.Channels {
		h.Channels[i] = assessChannel(i, ch, cfg)
	}
	// Low-SNR detection is relative: compare each surviving channel to
	// the median RMS of all channels still alive after the dead/stuck
	// pass, so one loud channel cannot mask a quiet one and one dead
	// channel cannot drag the reference down.
	if cfg.LowSNRRatio > 0 {
		live := h.live[:0]
		for _, c := range h.Channels {
			if c.State == ChannelOK {
				live = append(live, c.RMS)
			}
		}
		h.live = live
		if len(live) >= 2 {
			sort.Float64s(live)
			median := live[len(live)/2]
			for i := range h.Channels {
				c := &h.Channels[i]
				if c.State == ChannelOK && c.RMS < cfg.LowSNRRatio*median {
					c.State = ChannelLowSNR
				}
			}
		}
	}
	for _, c := range h.Channels {
		if c.State == ChannelOK {
			h.Healthy = append(h.Healthy, c.Index)
		}
	}
}

// assessChannel computes one channel's mean, range and AC RMS in a
// single pass and applies the dead/stuck thresholds.
func assessChannel(idx int, ch []float64, cfg HealthConfig) ChannelHealth {
	out := ChannelHealth{Index: idx}
	if len(ch) == 0 {
		out.State = ChannelDead
		return out
	}
	// Both passes run four samples at a time: a block whose sum is
	// finite provably contains only finite samples (NaN and ±Inf are
	// absorbing under addition), so the common all-clean case skips the
	// per-sample finiteness checks. Suspect blocks — and the tail — fall
	// back to the exact per-sample scan. The running accumulators are
	// updated in sample order either way, so the statistics are bit
	// identical to the one-sample-at-a-time loop.
	lo, hi := math.Inf(1), math.Inf(-1)
	var sum float64
	finite := 0
	i := 0
	for ; i+4 <= len(ch); i += 4 {
		v0, v1, v2, v3 := ch[i], ch[i+1], ch[i+2], ch[i+3]
		if s := v0 + v1 + v2 + v3; s-s == 0 {
			finite += 4
			sum += v0
			sum += v1
			sum += v2
			sum += v3
			if v0 < lo {
				lo = v0
			}
			if v0 > hi {
				hi = v0
			}
			if v1 < lo {
				lo = v1
			}
			if v1 > hi {
				hi = v1
			}
			if v2 < lo {
				lo = v2
			}
			if v2 > hi {
				hi = v2
			}
			if v3 < lo {
				lo = v3
			}
			if v3 > hi {
				hi = v3
			}
			continue
		}
		for _, v := range ch[i : i+4] {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			finite++
			sum += v
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	for _, v := range ch[i:] {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		finite++
		sum += v
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if finite == 0 {
		out.State = ChannelDead
		return out
	}
	mean := sum / float64(finite)
	var acc float64
	i = 0
	for ; i+4 <= len(ch); i += 4 {
		v0, v1, v2, v3 := ch[i], ch[i+1], ch[i+2], ch[i+3]
		if s := v0 + v1 + v2 + v3; s-s == 0 {
			d0, d1, d2, d3 := v0-mean, v1-mean, v2-mean, v3-mean
			acc += d0 * d0
			acc += d1 * d1
			acc += d2 * d2
			acc += d3 * d3
			continue
		}
		for _, v := range ch[i : i+4] {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			d := v - mean
			acc += d * d
		}
	}
	for _, v := range ch[i:] {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		d := v - mean
		acc += d * d
	}
	out.RMS = math.Sqrt(acc / float64(finite))
	out.Range = hi - lo
	switch {
	case out.Range < cfg.StuckRange && math.Abs(mean) <= cfg.DeadRMS:
		out.State = ChannelDead // flat at zero: disconnected
	case out.Range < cfg.StuckRange:
		out.State = ChannelStuck // flat at an offset: stuck code
	case out.RMS < cfg.DeadRMS:
		out.State = ChannelDead
	default:
		out.State = ChannelOK
	}
	return out
}
