package mic

import (
	"fmt"
	"math"
	"sort"

	"headtalk/internal/audio"
)

// Channel health scoring for degraded-array operation. Deployed arrays
// lose microphones: MEMS elements die (flatline at zero), ADC channels
// stick (flatline at a DC offset), and individual capsules drift to a
// fraction of their siblings' sensitivity (low SNR). The paper's
// orientation features are computed across microphone *pairs*, so one
// bad channel poisons every pair it joins — the serving path must know
// which channels to trust before SRP-PHAT runs. AssessHealth is that
// check: cheap (one pass per channel), dependency-free, and suitable
// for running on every wake-word decision.

// ChannelState classifies one microphone channel.
type ChannelState int

// Channel states.
const (
	// ChannelOK carries plausible signal.
	ChannelOK ChannelState = iota
	// ChannelDead is silent (RMS at the noise floor of a disconnected
	// element).
	ChannelDead
	// ChannelStuck is pinned at a constant non-zero value (stuck ADC
	// code / railed DC offset).
	ChannelStuck
	// ChannelLowSNR carries signal far weaker than its siblings —
	// usable level lost, pair correlations unreliable.
	ChannelLowSNR
)

// String returns the state name.
func (s ChannelState) String() string {
	switch s {
	case ChannelOK:
		return "ok"
	case ChannelDead:
		return "dead"
	case ChannelStuck:
		return "stuck"
	case ChannelLowSNR:
		return "low_snr"
	default:
		return "unknown"
	}
}

// HealthConfig tunes AssessHealth. The zero value applies the defaults
// noted on each field.
type HealthConfig struct {
	// DeadRMS is the AC-coupled RMS below which a channel counts as
	// dead (default 1e-5 of full scale — far below any real room's
	// noise floor through a live microphone).
	DeadRMS float64
	// StuckRange is the peak-to-peak range below which a channel counts
	// as flatlined (default 1e-6).
	StuckRange float64
	// LowSNRRatio flags a channel whose AC RMS falls below this
	// fraction of the median live channel's RMS (default 0.05, i.e.
	// ~26 dB below the array median). Negative disables the check.
	LowSNRRatio float64
}

func (c HealthConfig) withDefaults() HealthConfig {
	if c.DeadRMS == 0 {
		c.DeadRMS = 1e-5
	}
	if c.StuckRange == 0 {
		c.StuckRange = 1e-6
	}
	if c.LowSNRRatio == 0 {
		c.LowSNRRatio = 0.05
	}
	return c
}

// ChannelHealth is the per-channel assessment.
type ChannelHealth struct {
	Index int
	State ChannelState
	// RMS is the AC-coupled (mean-removed) RMS level.
	RMS float64
	// Range is the peak-to-peak sample range.
	Range float64
}

// ArrayHealth is the whole-array assessment.
type ArrayHealth struct {
	Channels []ChannelHealth
	// Healthy lists the indices of ChannelOK channels, ascending.
	Healthy []int
}

// Degraded returns the number of non-OK channels.
func (h ArrayHealth) Degraded() int { return len(h.Channels) - len(h.Healthy) }

// String summarizes the assessment ("6 channels, 2 degraded: 1=dead 4=low_snr").
func (h ArrayHealth) String() string {
	if h.Degraded() == 0 {
		return fmt.Sprintf("%d channels, all healthy", len(h.Channels))
	}
	s := fmt.Sprintf("%d channels, %d degraded:", len(h.Channels), h.Degraded())
	for _, ch := range h.Channels {
		if ch.State != ChannelOK {
			s += fmt.Sprintf(" %d=%s", ch.Index, ch.State)
		}
	}
	return s
}

// AssessHealth scores every channel of a recording. Channels that are
// non-finite are treated as dead (the input-validation stage rejects
// those recordings anyway; health scoring must not propagate NaN into
// its own statistics).
func AssessHealth(rec *audio.Recording, cfg HealthConfig) ArrayHealth {
	cfg = cfg.withDefaults()
	h := ArrayHealth{Channels: make([]ChannelHealth, len(rec.Channels))}
	for i, ch := range rec.Channels {
		h.Channels[i] = assessChannel(i, ch, cfg)
	}
	// Low-SNR detection is relative: compare each surviving channel to
	// the median RMS of all channels still alive after the dead/stuck
	// pass, so one loud channel cannot mask a quiet one and one dead
	// channel cannot drag the reference down.
	if cfg.LowSNRRatio > 0 {
		var live []float64
		for _, c := range h.Channels {
			if c.State == ChannelOK {
				live = append(live, c.RMS)
			}
		}
		if len(live) >= 2 {
			sort.Float64s(live)
			median := live[len(live)/2]
			for i := range h.Channels {
				c := &h.Channels[i]
				if c.State == ChannelOK && c.RMS < cfg.LowSNRRatio*median {
					c.State = ChannelLowSNR
				}
			}
		}
	}
	for _, c := range h.Channels {
		if c.State == ChannelOK {
			h.Healthy = append(h.Healthy, c.Index)
		}
	}
	return h
}

// assessChannel computes one channel's mean, range and AC RMS in a
// single pass and applies the dead/stuck thresholds.
func assessChannel(idx int, ch []float64, cfg HealthConfig) ChannelHealth {
	out := ChannelHealth{Index: idx}
	if len(ch) == 0 {
		out.State = ChannelDead
		return out
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	var sum float64
	finite := 0
	for _, v := range ch {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		finite++
		sum += v
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if finite == 0 {
		out.State = ChannelDead
		return out
	}
	mean := sum / float64(finite)
	var acc float64
	for _, v := range ch {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		d := v - mean
		acc += d * d
	}
	out.RMS = math.Sqrt(acc / float64(finite))
	out.Range = hi - lo
	switch {
	case out.Range < cfg.StuckRange && math.Abs(mean) <= cfg.DeadRMS:
		out.State = ChannelDead // flat at zero: disconnected
	case out.Range < cfg.StuckRange:
		out.State = ChannelStuck // flat at an offset: stuck code
	case out.RMS < cfg.DeadRMS:
		out.State = ChannelDead
	default:
		out.State = ChannelOK
	}
	return out
}
