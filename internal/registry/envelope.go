// Package registry is the versioned model store behind every decision
// pipeline: an immutable, per-tenant catalog of trained model
// documents with atomic hot-swap, rollback, shadow evaluation of
// candidate versions, and online adaptation from accepted decisions.
// Decisions resolve their models through one atomic pointer load (a
// ModelSet is immutable once published), so a promote or rollback
// never exposes a torn set to an in-flight request and never requires
// draining the serving engine.
package registry

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
)

// EnvelopeVersion is the model envelope format this build reads and
// writes. It shares the cluster snapshot discipline: a format version,
// an FNV-64a checksum over exactly the payload bytes, and a raw
// payload whose serialization is byte-stable (save → load → save is
// identity), so an envelope re-sealed after a round trip carries the
// same checksum.
const EnvelopeVersion = 1

// Typed envelope errors. Enrollment artifacts, registry imports and
// anything else consuming sealed model documents fail with one of
// these (match with errors.Is), never a panic.
var (
	// ErrModelVersion: the envelope's format version is not one this
	// build reads.
	ErrModelVersion = errors.New("registry: unsupported model envelope version")
	// ErrModelCorrupt: the envelope failed to decode, its payload does
	// not match the recorded checksum, or it is internally
	// inconsistent.
	ErrModelCorrupt = errors.New("registry: corrupt model envelope")
)

// Envelope is one sealed model document: format version, the model
// family it belongs to, its registry version number, and a checksummed
// payload in the model's own serialization format.
type Envelope struct {
	Version int    `json:"version"`
	Kind    string `json:"kind"`
	// ModelVersion is the registry version number the payload was
	// sealed as (0 when sealed outside a registry).
	ModelVersion uint64 `json:"model_version,omitempty"`
	// Checksum is the FNV-64a hash of Payload, hex-encoded.
	Checksum string          `json:"checksum"`
	Payload  json.RawMessage `json:"payload"`
}

// checksum hashes payload bytes with FNV-64a, hex-encoded — the same
// discipline as the cluster snapshot envelope.
func checksum(b []byte) string {
	h := fnv.New64a()
	h.Write(b)
	return fmt.Sprintf("%016x", h.Sum64())
}

// Seal wraps a model document in a checksummed envelope.
func Seal(kind Kind, modelVersion uint64, payload []byte) *Envelope {
	return &Envelope{
		Version:      EnvelopeVersion,
		Kind:         string(kind),
		ModelVersion: modelVersion,
		Checksum:     checksum(payload),
		Payload:      payload,
	}
}

// Verify checks the envelope's format version and payload integrity
// without decoding the payload.
func (e *Envelope) Verify() error {
	if e == nil {
		return fmt.Errorf("%w: nil envelope", ErrModelCorrupt)
	}
	if e.Version != EnvelopeVersion {
		return fmt.Errorf("%w: version %d (want %d)", ErrModelVersion, e.Version, EnvelopeVersion)
	}
	if e.Kind == "" {
		return fmt.Errorf("%w: envelope names no model kind", ErrModelCorrupt)
	}
	if len(e.Payload) == 0 {
		return fmt.Errorf("%w: empty payload", ErrModelCorrupt)
	}
	if got := checksum(e.Payload); got != e.Checksum {
		return fmt.Errorf("%w: payload hashes to %s, envelope says %s", ErrModelCorrupt, got, e.Checksum)
	}
	return nil
}

// Open verifies the envelope and returns its payload bytes.
func (e *Envelope) Open() ([]byte, error) {
	if err := e.Verify(); err != nil {
		return nil, err
	}
	return e.Payload, nil
}

// WriteEnvelopeFile persists an envelope to path atomically (see
// AtomicWriteFile): a crash mid-write leaves either the previous file
// intact or the new one complete, never a torn document.
func WriteEnvelopeFile(path string, e *Envelope) error {
	data, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("registry: encoding envelope: %w", err)
	}
	return AtomicWriteFile(path, append(data, '\n'))
}

// ReadEnvelopeFile loads and verifies an envelope written by
// WriteEnvelopeFile. Damage surfaces as ErrModelCorrupt /
// ErrModelVersion, never a partial document.
func ReadEnvelopeFile(path string) (*Envelope, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var e Envelope
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, fmt.Errorf("%w: decoding %s: %v", ErrModelCorrupt, filepath.Base(path), err)
	}
	if err := e.Verify(); err != nil {
		return nil, fmt.Errorf("%s: %w", filepath.Base(path), err)
	}
	return &e, nil
}

// AtomicWriteFile writes data to path with full crash safety: the
// bytes go to a unique temp file in the same directory, are fsynced to
// stable storage, and only then renamed over path; the directory entry
// is fsynced last so the rename itself survives a crash. At every
// instant path either holds its previous complete content or the new
// complete content — a reader (or a reboot) can never observe a torn
// file, and a failed write leaves no temp litter behind.
func AtomicWriteFile(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("registry: creating temp file in %s: %w", dir, err)
	}
	tmpName := tmp.Name()
	cleanup := func() {
		tmp.Close()
		os.Remove(tmpName)
	}
	if _, err := tmp.Write(data); err != nil {
		cleanup()
		return fmt.Errorf("registry: writing %s: %w", tmpName, err)
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("registry: syncing %s: %w", tmpName, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("registry: closing %s: %w", tmpName, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("registry: renaming %s over %s: %w", tmpName, path, err)
	}
	// Fsync the directory so the rename is durable; best-effort on
	// filesystems that refuse directory fsync.
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}
