package registry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"headtalk/internal/liveness"
	"headtalk/internal/metrics"
	"headtalk/internal/orientation"
)

// Kind names a managed model family.
type Kind string

const (
	// KindOrientation is the GCC-PHAT/SRP feature → RBF-SVM facing
	// classifier (the paper's §III-C gate).
	KindOrientation Kind = "orientation"
	// KindLiveness is the spectral ConvNet human-vs-mechanical
	// detector.
	KindLiveness Kind = "liveness"
	// KindArrayFingerprint is the per-array spectral signature gate
	// that pairs with the spectral detector in the fused ensemble.
	KindArrayFingerprint Kind = "fingerprint"
)

// Kinds lists every model family a registry manages, in canonical
// order.
func Kinds() []Kind { return []Kind{KindOrientation, KindLiveness, KindArrayFingerprint} }

func validKind(k Kind) bool {
	switch k {
	case KindOrientation, KindLiveness, KindArrayFingerprint:
		return true
	}
	return false
}

// State is a version's position in the lifecycle:
// candidate → shadow → active → archived.
type State string

const (
	// StateCandidate: stored and validated, not yet serving or
	// shadow-scoring.
	StateCandidate State = "candidate"
	// StateShadow: scores every request alongside the active version;
	// never decides.
	StateShadow State = "shadow"
	// StateActive: the one version whose scores decide.
	StateActive State = "active"
	// StateArchived: superseded; retained for rollback until pruned.
	StateArchived State = "archived"
)

// ModelSet is one immutable, internally-consistent view of every model
// the decision pipeline needs. The registry publishes a new set behind
// an atomic pointer on every mutation; a decision loads the pointer
// once and works from that set for its whole lifetime, so hot-swap,
// rollback and shadow changes are atomic with respect to in-flight
// requests — no decision ever sees the orientation model from one
// version and the liveness model from another.
//
// A ModelSet and everything it references MUST be treated as
// read-only.
type ModelSet struct {
	// Orientation decides facing for captures on the default channel
	// subset; OrientationByChannels overrides by active-channel count
	// (degraded arrays).
	Orientation           *orientation.Model
	OrientationByChannels map[int]*orientation.Model
	// Liveness is the spectral ConvNet gate; nil disables it.
	Liveness *liveness.Detector
	// ArrayFingerprint is the enrolled array-signature gate; nil
	// disables it.
	ArrayFingerprint *liveness.ArrayFingerprint
	// RequireEnsemble makes the fused liveness ensemble mandatory:
	// with it set, a missing spectral or fingerprint model REJECTS
	// (fail closed) instead of skipping the gate.
	RequireEnsemble bool

	// Shadow is the candidate orientation model under shadow
	// evaluation, or nil. It scores every orientation-gated request;
	// its result never decides.
	Shadow *orientation.Model

	// Versions records the registry version number serving each kind
	// (0 = unversioned/static); ShadowVersion likewise for Shadow.
	Versions      map[Kind]uint64
	ShadowVersion uint64

	// Hooks, all optional and called synchronously on the decision
	// path (keep them cheap; the registry's own hooks only touch
	// atomics and a mutex-guarded slice append):
	//   OnScore    — every active-orientation score (drift detection).
	//   OnShadow   — every paired active/shadow score (divergence).
	//   OnAccepted — every fully-accepted decision; feats is only
	//                valid during the call and must be copied.
	OnScore    func(score float64)
	OnShadow   func(activePred, shadowPred int, activeScore, shadowScore float64)
	OnAccepted func(feats []float64, score float64)
}

// Version return the registry version number serving kind (0 when the
// set is static or the kind is unmanaged).
func (s *ModelSet) Version(k Kind) uint64 {
	if s == nil || s.Versions == nil {
		return 0
	}
	return s.Versions[k]
}

// Provider resolves the current ModelSet. Implementations must return
// an immutable set and may return a different set on each call (the
// registry swaps sets atomically); callers must resolve once per
// decision and not re-resolve mid-request.
type Provider interface {
	ModelSet() *ModelSet
}

// Static is the zero-machinery Provider: one fixed ModelSet, no
// versioning, no adaptation. It is the compatibility wrapper the
// deprecated core.Config.Orientation / OrientationByChannels /
// Liveness fields are folded into, and the cheapest way to run tests.
type Static struct{ set *ModelSet }

// NewStatic wraps a fixed model set (copied) in a Provider.
func NewStatic(set ModelSet) *Static {
	return &Static{set: &set}
}

// ModelSet returns the fixed set.
func (s *Static) ModelSet() *ModelSet { return s.set }

// Config tunes a Registry.
type Config struct {
	// Metrics receives registry instrumentation (swap/rollback
	// counters, shadow divergence, drift gauges). Optional.
	Metrics *metrics.Registry
	// MaxVersionsPerKind bounds retained versions per kind; the oldest
	// archived versions are pruned beyond it (never the active,
	// previous-active, or shadow version). Default 8.
	MaxVersionsPerKind int
	// Adapt tunes online adaptation from accepted decisions.
	Adapt AdaptConfig
	// Drift tunes the score-distribution drift detector.
	Drift DriftConfig
	// EnsembleMode arms the fused liveness ensemble: the published
	// ModelSet carries the fingerprint gate and RequireEnsemble, so
	// liveness fails closed when either gate's model is missing.
	EnsembleMode bool
}

func (c Config) withDefaults() Config {
	if c.MaxVersionsPerKind == 0 {
		c.MaxVersionsPerKind = 8
	}
	c.Adapt = c.Adapt.withDefaults()
	c.Drift = c.Drift.withDefaults()
	return c
}

// Version is one immutable stored model version.
type Version struct {
	Kind   Kind
	Number uint64
	// Checksum is the FNV-64a hex checksum of Bytes — what Status
	// reports and snapshots carry.
	Checksum string
	// State is the current lifecycle position.
	State State
	// Bytes is the canonical model document (the model's own
	// byte-stable serialization, no envelope). Promote and rollback
	// decode a fresh instance from these bytes, which is what makes
	// rollback byte-for-byte: the reactivated version serves exactly
	// the bytes it was stored with.
	Bytes []byte
}

// kindState tracks one model family's versions and lifecycle pointers.
type kindState struct {
	versions map[uint64]*Version
	// active / prevActive / shadow are version numbers (0 = none).
	active     uint64
	prevActive uint64
	shadow     uint64
}

// instruments is the registry's metrics surface.
type instruments struct {
	swaps      *metrics.Counter
	rollbacks  *metrics.Counter
	shadowRuns *metrics.Counter
	shadowDiv  *metrics.Counter
	adaptAccum *metrics.Counter
	adaptBuilt *metrics.Counter
	driftTrips *metrics.Counter
	driftShift *metrics.Gauge
}

func newInstruments(m *metrics.Registry) *instruments {
	if m == nil {
		return nil
	}
	return &instruments{
		swaps:      m.Counter("registry_swaps_total"),
		rollbacks:  m.Counter("registry_rollbacks_total"),
		shadowRuns: m.Counter("registry_shadow_scored_total"),
		shadowDiv:  m.Counter("registry_shadow_diverged_total"),
		adaptAccum: m.Counter("registry_adapt_accepted_total"),
		adaptBuilt: m.Counter("registry_adapt_candidates_total"),
		driftTrips: m.Counter("registry_drift_trips_total"),
		driftShift: m.Gauge("registry_drift_shift_millisigma"),
	}
}

// Registry is a versioned, per-tenant model store. All mutation goes
// through a mutex; the serving side reads one atomic pointer. Safe for
// concurrent use.
type Registry struct {
	cfg Config
	ins *instruments

	mu    sync.Mutex
	kinds map[Kind]*kindState
	// nextNum is the monotonically increasing version allocator,
	// shared across kinds so a version number is unique registry-wide.
	nextNum uint64

	set atomic.Pointer[ModelSet]

	adapt *adapter
	drift *driftDetector
}

// New builds an empty registry. The published ModelSet starts empty
// (every gate disabled) and updates on each Add/Promote/Rollback.
func New(cfg Config) *Registry {
	cfg = cfg.withDefaults()
	r := &Registry{
		cfg:   cfg,
		ins:   newInstruments(cfg.Metrics),
		kinds: make(map[Kind]*kindState),
	}
	r.drift = newDriftDetector(cfg.Drift, r.ins)
	r.adapt = newAdapter(r, cfg.Adapt)
	r.publishLocked()
	return r
}

// Config returns the registry's (defaulted) configuration.
func (r *Registry) Config() Config { return r.cfg }

// ModelSet implements Provider: one atomic load, immutable result.
func (r *Registry) ModelSet() *ModelSet { return r.set.Load() }

func (r *Registry) kind(k Kind) *kindState {
	ks := r.kinds[k]
	if ks == nil {
		ks = &kindState{versions: make(map[uint64]*Version)}
		r.kinds[k] = ks
	}
	return ks
}

// decodeModel validates payload as a model document of the given kind
// by decoding a fresh instance. The decoded value is returned as
// *orientation.Model, *liveness.Detector, or
// *liveness.ArrayFingerprint.
func decodeModel(k Kind, payload []byte) (any, error) {
	switch k {
	case KindOrientation:
		return orientation.Load(bytes.NewReader(payload))
	case KindLiveness:
		return liveness.Load(bytes.NewReader(payload))
	case KindArrayFingerprint:
		return liveness.LoadFingerprint(bytes.NewReader(payload))
	}
	return nil, fmt.Errorf("registry: unknown model kind %q", k)
}

// encodeModel serializes a live model into its canonical byte-stable
// document.
func encodeModel(k Kind, model any) ([]byte, error) {
	var buf bytes.Buffer
	var err error
	switch m := model.(type) {
	case *orientation.Model:
		err = m.Save(&buf)
	case *liveness.Detector:
		err = m.Save(&buf)
	case *liveness.ArrayFingerprint:
		err = m.Save(&buf)
	default:
		err = fmt.Errorf("registry: cannot serialize %T as %s", model, k)
	}
	if err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Add stores payload (the model's canonical serialized document) as a
// new candidate version of kind, validating it by decoding a fresh
// instance first. The new version does not serve until promoted.
func (r *Registry) Add(k Kind, payload []byte) (uint64, error) {
	if !validKind(k) {
		return 0, fmt.Errorf("registry: unknown model kind %q", k)
	}
	if _, err := decodeModel(k, payload); err != nil {
		return 0, fmt.Errorf("%w: %s candidate rejected: %v", ErrModelCorrupt, k, err)
	}
	// Canonicalize: strip surrounding whitespace (json.Encoder's
	// trailing newline) so the same document always stores — and
	// checksums — identically, wherever it came from.
	trimmed := bytes.TrimSpace(payload)
	stored := make([]byte, len(trimmed))
	copy(stored, trimmed)

	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextNum++
	num := r.nextNum
	ks := r.kind(k)
	ks.versions[num] = &Version{
		Kind:     k,
		Number:   num,
		Checksum: checksum(stored),
		State:    StateCandidate,
		Bytes:    stored,
	}
	r.pruneLocked(ks)
	return num, nil
}

// AddModel serializes a live model and stores it as a candidate.
func (r *Registry) AddModel(k Kind, model any) (uint64, error) {
	payload, err := encodeModel(k, model)
	if err != nil {
		return 0, err
	}
	return r.Add(k, payload)
}

// Install is Add + Promote in one step: store a live model and make it
// the active version immediately. It is how enrollment seeds a fresh
// registry.
func (r *Registry) Install(k Kind, model any) (uint64, error) {
	num, err := r.AddModel(k, model)
	if err != nil {
		return 0, err
	}
	if err := r.Promote(k, num); err != nil {
		return 0, err
	}
	return num, nil
}

// Promote makes version num of kind the active version, atomically
// hot-swapping the published ModelSet. The previously active version
// is archived and retained for Rollback. In-flight decisions keep the
// set they already resolved; new decisions see the new set — no drain,
// no torn state. If num is the current shadow version, the shadow slot
// is cleared (it graduated).
func (r *Registry) Promote(k Kind, num uint64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	ks := r.kind(k)
	v := ks.versions[num]
	if v == nil {
		return fmt.Errorf("registry: %s version %d not found", k, num)
	}
	if ks.active == num {
		return nil
	}
	if prev := ks.versions[ks.active]; prev != nil {
		prev.State = StateArchived
	}
	ks.prevActive = ks.active
	ks.active = num
	v.State = StateActive
	if ks.shadow == num {
		ks.shadow = 0
	}
	r.publishLocked()
	if r.ins != nil {
		r.ins.swaps.Inc()
	}
	if k == KindOrientation {
		r.drift.reset()
	}
	return nil
}

// Rollback reactivates the previously active version of kind. Because
// the registry always rebuilds serving models from stored canonical
// bytes, the restored version serves byte-for-byte what it served
// before — Status will show its original checksum unchanged.
func (r *Registry) Rollback(k Kind) (uint64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	ks := r.kind(k)
	if ks.prevActive == 0 {
		return 0, fmt.Errorf("registry: %s has no previous version to roll back to", k)
	}
	prev := ks.versions[ks.prevActive]
	if prev == nil {
		return 0, fmt.Errorf("registry: %s previous version %d was pruned", k, ks.prevActive)
	}
	if cur := ks.versions[ks.active]; cur != nil {
		cur.State = StateArchived
	}
	ks.active, ks.prevActive = ks.prevActive, ks.active
	prev.State = StateActive
	r.publishLocked()
	if r.ins != nil {
		r.ins.rollbacks.Inc()
	}
	if k == KindOrientation {
		r.drift.reset()
	}
	return ks.active, nil
}

// Shadow puts orientation version num under shadow evaluation: it
// scores every orientation-gated request alongside the active version,
// divergence is metered, and its result never decides. Only the
// orientation family shadow-scores (the liveness gates are binary and
// cheap to A/B offline).
func (r *Registry) Shadow(num uint64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	ks := r.kind(KindOrientation)
	v := ks.versions[num]
	if v == nil {
		return fmt.Errorf("registry: orientation version %d not found", num)
	}
	if ks.active == num {
		return fmt.Errorf("registry: orientation version %d is already active", num)
	}
	if old := ks.versions[ks.shadow]; old != nil && old.State == StateShadow {
		old.State = StateCandidate
	}
	ks.shadow = num
	v.State = StateShadow
	r.publishLocked()
	return nil
}

// ClearShadow stops shadow evaluation.
func (r *Registry) ClearShadow() {
	r.mu.Lock()
	defer r.mu.Unlock()
	ks := r.kind(KindOrientation)
	if v := ks.versions[ks.shadow]; v != nil && v.State == StateShadow {
		v.State = StateCandidate
	}
	ks.shadow = 0
	r.publishLocked()
}

// ImportActive installs payload as version num of kind and makes it
// active without allocating a new number — how snapshot restore
// reconstructs a registry so version numbers (and therefore Status and
// re-capture) survive the round trip.
func (r *Registry) ImportActive(k Kind, num uint64, payload []byte) error {
	if !validKind(k) {
		return fmt.Errorf("registry: unknown model kind %q", k)
	}
	if _, err := decodeModel(k, payload); err != nil {
		return fmt.Errorf("%w: %s import rejected: %v", ErrModelCorrupt, k, err)
	}
	if num == 0 {
		return fmt.Errorf("registry: import needs a nonzero version number")
	}
	trimmed := bytes.TrimSpace(payload)
	stored := make([]byte, len(trimmed))
	copy(stored, trimmed)

	r.mu.Lock()
	defer r.mu.Unlock()
	ks := r.kind(k)
	if prev := ks.versions[ks.active]; prev != nil {
		prev.State = StateArchived
	}
	ks.versions[num] = &Version{
		Kind:     k,
		Number:   num,
		Checksum: checksum(stored),
		State:    StateActive,
		Bytes:    stored,
	}
	if ks.active != 0 && ks.active != num {
		ks.prevActive = ks.active
	}
	ks.active = num
	if num > r.nextNum {
		r.nextNum = num
	}
	r.publishLocked()
	return nil
}

// ActiveBytes returns the active version's canonical model document
// and version number for kind (nil, 0 when none) — what snapshot
// capture embeds.
func (r *Registry) ActiveBytes(k Kind) ([]byte, uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	ks := r.kinds[k]
	if ks == nil || ks.active == 0 {
		return nil, 0
	}
	v := ks.versions[ks.active]
	if v == nil {
		return nil, 0
	}
	return v.Bytes, v.Number
}

// VersionInfo is one version's metadata (no payload) for Status.
type VersionInfo struct {
	Kind     Kind   `json:"kind"`
	Number   uint64 `json:"number"`
	Checksum string `json:"checksum"`
	State    State  `json:"state"`
}

// KindStatus summarizes one model family.
type KindStatus struct {
	Kind     Kind          `json:"kind"`
	Active   uint64        `json:"active"`
	Shadow   uint64        `json:"shadow,omitempty"`
	Previous uint64        `json:"previous,omitempty"`
	Versions []VersionInfo `json:"versions"`
}

// Status reports every kind's lifecycle state, versions sorted by
// number.
func (r *Registry) Status() []KindStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]KindStatus, 0, len(r.kinds))
	for _, k := range Kinds() {
		ks := r.kinds[k]
		if ks == nil || len(ks.versions) == 0 {
			continue
		}
		st := KindStatus{Kind: k, Active: ks.active, Shadow: ks.shadow, Previous: ks.prevActive}
		for _, v := range ks.versions {
			st.Versions = append(st.Versions, VersionInfo{Kind: v.Kind, Number: v.Number, Checksum: v.Checksum, State: v.State})
		}
		sort.Slice(st.Versions, func(i, j int) bool { return st.Versions[i].Number < st.Versions[j].Number })
		out = append(out, st)
	}
	return out
}

// ActiveVersions maps each kind to its active version number.
func (r *Registry) ActiveVersions() map[Kind]uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[Kind]uint64)
	for k, ks := range r.kinds {
		if ks.active != 0 {
			out[k] = ks.active
		}
	}
	return out
}

// AdaptNow synchronously folds any accumulated accepted decisions into
// a candidate orientation version (see AdaptConfig); it exists so
// tests and operators can force the normally batch-triggered build.
func (r *Registry) AdaptNow() (uint64, error) { return r.adapt.buildNow() }

// WaitAdapt blocks until any in-flight background adaptation build
// finishes — for deterministic tests.
func (r *Registry) WaitAdapt() { r.adapt.wait() }

// DriftState reports the drift detector's current baseline/rolling
// means and trip count.
func (r *Registry) DriftState() DriftState { return r.drift.state() }

// pruneLocked drops the oldest archived/candidate versions beyond
// MaxVersionsPerKind. The active, previous-active and shadow versions
// are never pruned.
func (r *Registry) pruneLocked(ks *kindState) {
	max := r.cfg.MaxVersionsPerKind
	if max <= 0 || len(ks.versions) <= max {
		return
	}
	nums := make([]uint64, 0, len(ks.versions))
	for n := range ks.versions {
		nums = append(nums, n)
	}
	sort.Slice(nums, func(i, j int) bool { return nums[i] < nums[j] })
	for _, n := range nums {
		if len(ks.versions) <= max {
			break
		}
		if n == ks.active || n == ks.prevActive || n == ks.shadow {
			continue
		}
		delete(ks.versions, n)
	}
}

// publishLocked rebuilds the served ModelSet from stored bytes and
// swaps it in atomically. Serving models are always decoded fresh from
// canonical bytes — never aliased to a caller's instance — so a stored
// version can never be mutated out from under the registry and
// rollback is byte-exact by construction. Called with r.mu held.
func (r *Registry) publishLocked() {
	set := &ModelSet{Versions: make(map[Kind]uint64)}
	load := func(k Kind) any {
		ks := r.kinds[k]
		if ks == nil || ks.active == 0 {
			return nil
		}
		v := ks.versions[ks.active]
		if v == nil {
			return nil
		}
		m, err := decodeModel(k, v.Bytes)
		if err != nil {
			// Can't happen: bytes were validated at Add/Import. Treat
			// as missing rather than serving a broken model.
			return nil
		}
		set.Versions[k] = v.Number
		return m
	}
	if m := load(KindOrientation); m != nil {
		set.Orientation = m.(*orientation.Model)
	}
	if m := load(KindLiveness); m != nil {
		set.Liveness = m.(*liveness.Detector)
	}
	if m := load(KindArrayFingerprint); m != nil {
		set.ArrayFingerprint = m.(*liveness.ArrayFingerprint)
	}
	if r.cfg.EnsembleMode {
		set.RequireEnsemble = true
	}
	if ks := r.kinds[KindOrientation]; ks != nil && ks.shadow != 0 {
		if v := ks.versions[ks.shadow]; v != nil {
			if m, err := decodeModel(KindOrientation, v.Bytes); err == nil {
				set.Shadow = m.(*orientation.Model)
				set.ShadowVersion = v.Number
			}
		}
	}
	// Wire the registry's own observation hooks.
	if !r.cfg.Drift.Disable {
		set.OnScore = r.drift.observe
	}
	if set.Shadow != nil {
		set.OnShadow = r.observeShadow
	}
	if !r.cfg.Adapt.Disable {
		set.OnAccepted = r.adapt.observe
	}
	r.set.Store(set)
}

// observeShadow meters paired active/shadow scoring.
func (r *Registry) observeShadow(activePred, shadowPred int, activeScore, shadowScore float64) {
	if r.ins == nil {
		return
	}
	r.ins.shadowRuns.Inc()
	if activePred != shadowPred {
		r.ins.shadowDiv.Inc()
	}
}

// MarshalStatus renders Status as JSON (for the daemon wire).
func (r *Registry) MarshalStatus() (json.RawMessage, error) {
	return json.Marshal(r.Status())
}
