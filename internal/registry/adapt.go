package registry

import (
	"fmt"
	"math"
	"sync"

	"headtalk/internal/orientation"
)

// AdaptConfig tunes online adaptation: the paper's §IV-A1 adapt phase,
// run continuously. Accepted decisions (both gates passed) accumulate;
// every BatchSize of them, the active orientation model is cloned from
// its stored bytes, the batch is folded in with
// orientation.IncrementalUpdate (self-training: only high-confidence
// pseudo-labels are absorbed), and the result is stored as a new
// CANDIDATE version — never auto-promoted. With AutoShadow it enters
// shadow evaluation so its divergence from the active model is metered
// before any human promotes it.
type AdaptConfig struct {
	// Disable turns online adaptation off entirely.
	Disable bool
	// BatchSize is how many accepted decisions trigger a candidate
	// build (default 32).
	BatchSize int
	// MinConfidence is passed to IncrementalUpdate: pseudo-labels
	// below it are not absorbed (default 0.8).
	MinConfidence float64
	// AutoShadow places each built candidate under shadow evaluation.
	AutoShadow bool
}

func (c AdaptConfig) withDefaults() AdaptConfig {
	if c.BatchSize == 0 {
		c.BatchSize = 32
	}
	if c.MinConfidence == 0 {
		c.MinConfidence = 0.8
	}
	return c
}

// adapter accumulates accepted-decision features and builds candidate
// versions in the background.
type adapter struct {
	reg *Registry
	cfg AdaptConfig

	mu      sync.Mutex
	pending [][]float64
	busy    bool

	wg sync.WaitGroup
}

func newAdapter(r *Registry, cfg AdaptConfig) *adapter {
	return &adapter{reg: r, cfg: cfg}
}

// observe is the ModelSet.OnAccepted hook: called synchronously on the
// decision path, so it only copies the feature vector and checks a
// counter. feats is only valid during the call (it aliases a pooled
// preprocessor arena) — the copy here is load-bearing.
func (a *adapter) observe(feats []float64, score float64) {
	cp := make([]float64, len(feats))
	copy(cp, feats)

	a.mu.Lock()
	a.pending = append(a.pending, cp)
	n := len(a.pending)
	launch := n >= a.cfg.BatchSize && !a.busy
	if launch {
		a.busy = true
	}
	a.mu.Unlock()

	if a.reg.ins != nil {
		a.reg.ins.adaptAccum.Inc()
	}
	if launch {
		a.wg.Add(1)
		go func() {
			defer a.wg.Done()
			a.build()
			a.mu.Lock()
			a.busy = false
			a.mu.Unlock()
		}()
	}
}

// buildNow forces a synchronous candidate build from whatever is
// pending (operator- and test-facing; the batch threshold is ignored).
func (a *adapter) buildNow() (uint64, error) {
	return a.build()
}

// wait blocks until the in-flight background build (if any) finishes.
func (a *adapter) wait() { a.wg.Wait() }

// build drains the pending batch and folds it into a clone of the
// active orientation model. The active version's stored bytes are the
// clone source, so the serving instance is never touched — the update
// lands as a brand-new candidate version.
func (a *adapter) build() (uint64, error) {
	a.mu.Lock()
	batch := a.pending
	a.pending = nil
	a.mu.Unlock()
	if len(batch) == 0 {
		return 0, fmt.Errorf("registry: no accepted decisions pending")
	}

	payload, activeNum := a.reg.ActiveBytes(KindOrientation)
	if payload == nil {
		return 0, fmt.Errorf("registry: no active orientation model to adapt")
	}
	model, err := decodeModel(KindOrientation, payload)
	if err != nil {
		return 0, fmt.Errorf("registry: cloning orientation v%d: %w", activeNum, err)
	}
	clone := model.(*orientation.Model)
	absorbed, err := clone.IncrementalUpdate(batch, a.cfg.MinConfidence)
	if err != nil {
		return 0, fmt.Errorf("registry: incremental update: %w", err)
	}
	if absorbed == 0 {
		return 0, fmt.Errorf("registry: no pending sample met the %.2f confidence floor", a.cfg.MinConfidence)
	}
	num, err := a.reg.AddModel(KindOrientation, clone)
	if err != nil {
		return 0, err
	}
	if a.reg.ins != nil {
		a.reg.ins.adaptBuilt.Inc()
	}
	if a.cfg.AutoShadow {
		if err := a.reg.Shadow(num); err != nil {
			return num, err
		}
	}
	return num, nil
}

// DriftConfig tunes the score-distribution drift detector. After every
// swap the detector learns a baseline (mean/std of the first
// MinBaseline active-orientation scores); it then keeps a rolling
// window and meters how far the window mean has wandered from the
// baseline, in baseline standard deviations. A shift beyond Threshold
// trips a counter — the operational signal that the room, the speaker
// population, or the hardware has moved out from under the model and a
// re-enrollment or adaptation candidate deserves a look.
type DriftConfig struct {
	// Disable turns drift detection off.
	Disable bool
	// MinBaseline is how many scores establish the post-swap baseline
	// (default 64).
	MinBaseline int
	// Window is the rolling window length compared against the
	// baseline (default 128).
	Window int
	// Threshold is the trip level in baseline standard deviations
	// (default 3).
	Threshold float64
}

func (c DriftConfig) withDefaults() DriftConfig {
	if c.MinBaseline == 0 {
		c.MinBaseline = 64
	}
	if c.Window == 0 {
		c.Window = 128
	}
	if c.Threshold == 0 {
		c.Threshold = 3
	}
	return c
}

// DriftState is the detector's observable state.
type DriftState struct {
	// BaselineReady reports whether the post-swap baseline is
	// established.
	BaselineReady bool    `json:"baseline_ready"`
	BaselineMean  float64 `json:"baseline_mean"`
	BaselineStd   float64 `json:"baseline_std"`
	// RollingMean is the current window mean (once the window has any
	// samples).
	RollingMean float64 `json:"rolling_mean"`
	// Shift is |rolling − baseline| in baseline standard deviations.
	Shift float64 `json:"shift_sigma"`
	// Tripped reports Shift ≥ Threshold right now; Trips counts
	// level-crossings since the last swap/reset.
	Tripped bool `json:"tripped"`
	Trips   int  `json:"trips"`
}

// driftDetector meters distribution shift of active orientation
// scores.
type driftDetector struct {
	cfg DriftConfig
	ins *instruments

	mu sync.Mutex
	// Baseline accumulation.
	baseN    int
	baseSum  float64
	baseSum2 float64
	baseMean float64
	baseStd  float64
	ready    bool
	// Rolling window (ring buffer).
	win     []float64
	winLen  int
	winPos  int
	winSum  float64
	tripped bool
	trips   int
}

func newDriftDetector(cfg DriftConfig, ins *instruments) *driftDetector {
	return &driftDetector{cfg: cfg, ins: ins, win: make([]float64, cfg.Window)}
}

// reset discards baseline and window — called on every promote or
// rollback, because a new model has a new score distribution.
func (d *driftDetector) reset() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.baseN, d.baseSum, d.baseSum2 = 0, 0, 0
	d.baseMean, d.baseStd = 0, 0
	d.ready = false
	d.winLen, d.winPos, d.winSum = 0, 0, 0
	d.tripped = false
	d.trips = 0
	if d.ins != nil {
		d.ins.driftShift.Set(0)
	}
}

// observe is the ModelSet.OnScore hook (decision path: one mutex, a
// few float ops).
func (d *driftDetector) observe(score float64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.ready {
		d.baseN++
		d.baseSum += score
		d.baseSum2 += score * score
		if d.baseN >= d.cfg.MinBaseline {
			n := float64(d.baseN)
			d.baseMean = d.baseSum / n
			v := d.baseSum2/n - d.baseMean*d.baseMean
			if v < 0 {
				v = 0
			}
			d.baseStd = math.Sqrt(v)
			// Floor so a freakishly tight baseline cannot make every
			// later fluctuation look like drift.
			if d.baseStd < 1e-3 {
				d.baseStd = 1e-3
			}
			d.ready = true
		}
		return
	}
	// Rolling window update.
	if d.winLen < len(d.win) {
		d.win[d.winPos] = score
		d.winSum += score
		d.winLen++
	} else {
		d.winSum += score - d.win[d.winPos]
		d.win[d.winPos] = score
	}
	d.winPos = (d.winPos + 1) % len(d.win)

	mean := d.winSum / float64(d.winLen)
	shift := math.Abs(mean-d.baseMean) / d.baseStd
	if d.ins != nil {
		// Gauges are integral; expose milli-sigma.
		d.ins.driftShift.Set(int64(shift * 1000))
	}
	nowTripped := shift >= d.cfg.Threshold
	if nowTripped && !d.tripped {
		d.trips++
		if d.ins != nil {
			d.ins.driftTrips.Inc()
		}
	}
	d.tripped = nowTripped
}

func (d *driftDetector) state() DriftState {
	d.mu.Lock()
	defer d.mu.Unlock()
	st := DriftState{
		BaselineReady: d.ready,
		BaselineMean:  d.baseMean,
		BaselineStd:   d.baseStd,
		Tripped:       d.tripped,
		Trips:         d.trips,
	}
	if d.winLen > 0 {
		st.RollingMean = d.winSum / float64(d.winLen)
		st.Shift = math.Abs(st.RollingMean-d.baseMean) / d.baseStd
	}
	return st
}
