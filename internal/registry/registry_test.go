package registry

import (
	"bytes"
	"errors"
	"math/rand/v2"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"headtalk/internal/metrics"
	"headtalk/internal/orientation"
)

// trainedModel builds a tiny orientation model on synthetic 4-d
// features: facing samples cluster at +shift on the first dimension,
// non-facing at -shift. Different seeds/shifts give models with
// different serialized bytes, which is what the version tests need.
func trainedModel(t *testing.T, seed uint64, shift float64) *orientation.Model {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, 17))
	var x [][]float64
	var y []int
	for i := 0; i < 40; i++ {
		facing := i%2 == 0
		f := make([]float64, 4)
		for j := range f {
			f[j] = 0.3 * rng.NormFloat64()
		}
		if facing {
			f[0] += shift
			y = append(y, orientation.LabelFacing)
		} else {
			f[0] -= shift
			y = append(y, orientation.LabelNonFacing)
		}
		x = append(x, f)
	}
	m, err := orientation.Train(x, y, orientation.ModelConfig{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func modelBytes(t *testing.T, m *orientation.Model) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestEnvelopeSealVerifyOpen(t *testing.T) {
	payload := []byte(`{"hello":"world"}`)
	env := Seal(KindOrientation, 3, payload)
	if env.Version != EnvelopeVersion || env.Kind != "orientation" || env.ModelVersion != 3 {
		t.Fatalf("envelope header %+v", env)
	}
	got, err := env.Open()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload %q, want %q", got, payload)
	}

	// Tampered payload must fail the checksum.
	bad := *env
	bad.Payload = []byte(`{"hello":"W0RLD"}`)
	if err := bad.Verify(); !errors.Is(err, ErrModelCorrupt) {
		t.Fatalf("tampered payload: %v, want ErrModelCorrupt", err)
	}

	// Future format version is a version error, not corruption.
	future := *env
	future.Version = EnvelopeVersion + 1
	if err := future.Verify(); !errors.Is(err, ErrModelVersion) {
		t.Fatalf("future version: %v, want ErrModelVersion", err)
	}

	var nilEnv *Envelope
	if err := nilEnv.Verify(); !errors.Is(err, ErrModelCorrupt) {
		t.Fatalf("nil envelope: %v, want ErrModelCorrupt", err)
	}
}

func TestEnvelopeFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.json")
	env := Seal(KindLiveness, 7, []byte(`{"v":1}`))
	if err := WriteEnvelopeFile(path, env); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEnvelopeFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != env.Kind || got.Checksum != env.Checksum || got.ModelVersion != 7 {
		t.Fatalf("round trip %+v, want %+v", got, env)
	}

	// A torn/garbage file surfaces as ErrModelCorrupt, never a panic.
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadEnvelopeFile(path); !errors.Is(err, ErrModelCorrupt) {
		t.Fatalf("garbage file: %v, want ErrModelCorrupt", err)
	}
}

func TestAtomicWriteFileLeavesNoLitter(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := AtomicWriteFile(path, []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := AtomicWriteFile(path, []byte("two")); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "two" {
		t.Fatalf("content %q, want %q", data, "two")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("temp litter left behind: %s", e.Name())
		}
	}
}

func TestInstallPromoteRollbackByteExact(t *testing.T) {
	reg := New(Config{})
	m1 := trainedModel(t, 1, 2.0)
	v1, err := reg.Install(KindOrientation, m1)
	if err != nil {
		t.Fatal(err)
	}
	set := reg.ModelSet()
	if set.Orientation == nil || set.Version(KindOrientation) != v1 {
		t.Fatalf("after install: set %+v", set.Versions)
	}
	b1, n1 := reg.ActiveBytes(KindOrientation)
	if n1 != v1 || len(b1) == 0 {
		t.Fatalf("ActiveBytes (%d bytes, v%d)", len(b1), n1)
	}

	m2 := trainedModel(t, 2, 3.0)
	v2, err := reg.AddModel(KindOrientation, m2)
	if err != nil {
		t.Fatal(err)
	}
	// A candidate must not serve.
	if got := reg.ModelSet().Version(KindOrientation); got != v1 {
		t.Fatalf("candidate leaked into serving set: v%d", got)
	}
	if err := reg.Promote(KindOrientation, v2); err != nil {
		t.Fatal(err)
	}
	if got := reg.ModelSet().Version(KindOrientation); got != v2 {
		t.Fatalf("after promote: serving v%d, want v%d", got, v2)
	}

	// Rollback restores the prior version byte for byte.
	restored, err := reg.Rollback(KindOrientation)
	if err != nil {
		t.Fatal(err)
	}
	if restored != v1 {
		t.Fatalf("rollback restored v%d, want v%d", restored, v1)
	}
	b1Again, n1Again := reg.ActiveBytes(KindOrientation)
	if n1Again != v1 || !bytes.Equal(b1, b1Again) {
		t.Fatalf("rollback not byte-exact: %d bytes v%d vs %d bytes v%d", len(b1), n1, len(b1Again), n1Again)
	}
	// The served model decodes from those same bytes.
	if reg.ModelSet().Version(KindOrientation) != v1 {
		t.Fatal("serving set disagrees with ActiveBytes after rollback")
	}

	// Rolling back again swaps forward to v2 (active/prev exchange).
	again, err := reg.Rollback(KindOrientation)
	if err != nil {
		t.Fatal(err)
	}
	if again != v2 {
		t.Fatalf("second rollback restored v%d, want v%d", again, v2)
	}
}

func TestRollbackWithoutHistoryFails(t *testing.T) {
	reg := New(Config{})
	if _, err := reg.Rollback(KindOrientation); err == nil {
		t.Fatal("rollback on empty registry should fail")
	}
	if _, err := reg.Install(KindOrientation, trainedModel(t, 3, 2.0)); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Rollback(KindOrientation); err == nil {
		t.Fatal("rollback with no previous version should fail")
	}
}

func TestShadowLifecycle(t *testing.T) {
	reg := New(Config{})
	if _, err := reg.Install(KindOrientation, trainedModel(t, 4, 2.0)); err != nil {
		t.Fatal(err)
	}
	cand, err := reg.AddModel(KindOrientation, trainedModel(t, 5, 3.0))
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Shadow(cand); err != nil {
		t.Fatal(err)
	}
	set := reg.ModelSet()
	if set.Shadow == nil || set.ShadowVersion != cand {
		t.Fatalf("shadow not published: version %d", set.ShadowVersion)
	}
	if set.OnShadow == nil {
		t.Fatal("shadow set without OnShadow hook")
	}

	// Promoting the shadow graduates it: shadow slot clears.
	if err := reg.Promote(KindOrientation, cand); err != nil {
		t.Fatal(err)
	}
	set = reg.ModelSet()
	if set.Shadow != nil || set.ShadowVersion != 0 {
		t.Fatal("promoted shadow should leave the shadow slot empty")
	}
	if set.Version(KindOrientation) != cand {
		t.Fatalf("promoted shadow not active: v%d", set.Version(KindOrientation))
	}

	// Shadowing the active version is an error.
	if err := reg.Shadow(cand); err == nil {
		t.Fatal("shadowing the active version should fail")
	}
}

func TestImportActivePreservesVersionNumbers(t *testing.T) {
	reg := New(Config{})
	v1, err := reg.Install(KindOrientation, trainedModel(t, 6, 2.0))
	if err != nil {
		t.Fatal(err)
	}
	payload, num := reg.ActiveBytes(KindOrientation)
	if num != v1 {
		t.Fatalf("ActiveBytes v%d, want v%d", num, v1)
	}

	// Reconstruct (what snapshot restore does) and compare checksums.
	restored := New(Config{})
	if err := restored.ImportActive(KindOrientation, num, payload); err != nil {
		t.Fatal(err)
	}
	b2, n2 := restored.ActiveBytes(KindOrientation)
	if n2 != num || !bytes.Equal(payload, b2) {
		t.Fatal("import did not preserve bytes/version")
	}
	st := restored.Status()
	if len(st) != 1 || st[0].Active != num || st[0].Versions[0].Checksum != reg.Status()[0].Versions[len(reg.Status()[0].Versions)-1].Checksum {
		t.Fatalf("restored status %+v", st)
	}

	// New versions added after an import allocate past the imported
	// number.
	v2, err := restored.AddModel(KindOrientation, trainedModel(t, 7, 3.0))
	if err != nil {
		t.Fatal(err)
	}
	if v2 <= num {
		t.Fatalf("post-import version %d not past imported %d", v2, num)
	}
}

func TestAddRejectsGarbage(t *testing.T) {
	reg := New(Config{})
	if _, err := reg.Add(KindOrientation, []byte("{")); !errors.Is(err, ErrModelCorrupt) {
		t.Fatalf("garbage payload: %v, want ErrModelCorrupt", err)
	}
	if _, err := reg.Add(Kind("bogus"), []byte("{}")); err == nil {
		t.Fatal("unknown kind should fail")
	}
	if err := reg.ImportActive(KindOrientation, 0, modelBytes(t, trainedModel(t, 8, 2.0))); err == nil {
		t.Fatal("import with version 0 should fail")
	}
}

func TestPruneNeverDropsLifecycleVersions(t *testing.T) {
	reg := New(Config{MaxVersionsPerKind: 3})
	var nums []uint64
	for i := 0; i < 6; i++ {
		n, err := reg.AddModel(KindOrientation, trainedModel(t, uint64(10+i), 2.0))
		if err != nil {
			t.Fatal(err)
		}
		nums = append(nums, n)
	}
	if err := reg.Promote(KindOrientation, nums[4]); err != nil {
		t.Fatal(err)
	}
	if err := reg.Promote(KindOrientation, nums[5]); err != nil {
		t.Fatal(err)
	}
	// Trip pruning once more.
	if _, err := reg.AddModel(KindOrientation, trainedModel(t, 20, 2.0)); err != nil {
		t.Fatal(err)
	}
	st := reg.Status()[0]
	if len(st.Versions) > 4 { // max 3 + the just-added candidate before next prune pass settles
		t.Fatalf("prune retained %d versions (max 3): %+v", len(st.Versions), st.Versions)
	}
	seen := map[uint64]bool{}
	for _, v := range st.Versions {
		seen[v.Number] = true
	}
	if !seen[st.Active] || (st.Previous != 0 && !seen[st.Previous]) {
		t.Fatalf("prune dropped a lifecycle version: %+v", st)
	}
}

// TestConcurrentHotSwapUnderLoad hammers promote/rollback from one set
// of goroutines while others resolve ModelSets and score through them.
// Run with -race; the invariant is that every resolved set is
// internally consistent (model present, version one of the two live
// ones) no matter how the swaps interleave.
func TestConcurrentHotSwapUnderLoad(t *testing.T) {
	reg := New(Config{Metrics: metrics.NewRegistry()})
	v1, err := reg.Install(KindOrientation, trainedModel(t, 30, 2.0))
	if err != nil {
		t.Fatal(err)
	}
	v2, err := reg.AddModel(KindOrientation, trainedModel(t, 31, 3.0))
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Promote(KindOrientation, v2); err != nil {
		t.Fatal(err)
	}

	const (
		swappers = 4
		readers  = 4
		rounds   = 200
	)
	var wg sync.WaitGroup
	errs := make(chan error, swappers+readers)
	for i := 0; i < swappers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for j := 0; j < rounds; j++ {
				if j%2 == 0 {
					_ = reg.Promote(KindOrientation, v1)
				} else {
					_, _ = reg.Rollback(KindOrientation)
				}
			}
		}(i)
	}
	feat := []float64{2, 0, 0, 0}
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			scratch := make([]float64, 0, 8)
			for j := 0; j < rounds; j++ {
				set := reg.ModelSet()
				if set.Orientation == nil {
					errs <- errors.New("resolved set lost its orientation model mid-swap")
					return
				}
				got := set.Version(KindOrientation)
				if got != v1 && got != v2 {
					errs <- errors.New("resolved set serves an unknown version")
					return
				}
				set.Orientation.PredictScore(feat, scratch)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// The registry must still be coherent after the storm.
	if set := reg.ModelSet(); set.Orientation == nil {
		t.Fatal("registry lost its model after concurrent swaps")
	}
}
