package registry

import (
	"math/rand/v2"
	"testing"

	"headtalk/internal/metrics"
)

// acceptedFeat fabricates a feature vector deep in the facing cluster
// the test models were trained on (trainedModel puts facing at +shift
// on the first dimension), so self-training confidence clears the
// adaptation floor.
func acceptedFeat(rng *rand.Rand) []float64 {
	f := make([]float64, 4)
	for j := range f {
		f[j] = 0.2 * rng.NormFloat64()
	}
	f[0] += 4.0
	return f
}

func TestAdaptNowBuildsCandidate(t *testing.T) {
	m := metrics.NewRegistry()
	reg := New(Config{
		Metrics: m,
		Adapt:   AdaptConfig{BatchSize: 64, MinConfidence: 0.55},
	})
	active, err := reg.Install(KindOrientation, trainedModel(t, 40, 2.0))
	if err != nil {
		t.Fatal(err)
	}

	set := reg.ModelSet()
	if set.OnAccepted == nil {
		t.Fatal("registry set should carry the adaptation hook")
	}
	rng := rand.New(rand.NewPCG(41, 1))
	for i := 0; i < 8; i++ {
		set.OnAccepted(acceptedFeat(rng), 1.0)
	}

	cand, err := reg.AdaptNow()
	if err != nil {
		t.Fatal(err)
	}
	if cand == active {
		t.Fatal("adaptation must land as a NEW version")
	}
	// The candidate never auto-promotes: the active version is
	// untouched.
	if got := reg.ModelSet().Version(KindOrientation); got != active {
		t.Fatalf("adaptation hot-swapped itself in: serving v%d, want v%d", got, active)
	}
	var found *VersionInfo
	for _, st := range reg.Status() {
		if st.Kind != KindOrientation {
			continue
		}
		for i := range st.Versions {
			if st.Versions[i].Number == cand {
				found = &st.Versions[i]
			}
		}
	}
	if found == nil || found.State != StateCandidate {
		t.Fatalf("built version %d not stored as candidate: %+v", cand, found)
	}

	snap := m.Snapshot()
	if snap.Counters["registry_adapt_accepted_total"] != 8 {
		t.Fatalf("accepted counter %d, want 8", snap.Counters["registry_adapt_accepted_total"])
	}
	if snap.Counters["registry_adapt_candidates_total"] != 1 {
		t.Fatalf("candidate counter %d, want 1", snap.Counters["registry_adapt_candidates_total"])
	}

	// Nothing pending anymore: a second forced build reports it.
	if _, err := reg.AdaptNow(); err == nil {
		t.Fatal("AdaptNow with nothing pending should fail")
	}
}

func TestAdaptBatchTriggersInBackground(t *testing.T) {
	reg := New(Config{
		Adapt: AdaptConfig{BatchSize: 4, MinConfidence: 0.55, AutoShadow: true},
	})
	if _, err := reg.Install(KindOrientation, trainedModel(t, 42, 2.0)); err != nil {
		t.Fatal(err)
	}
	set := reg.ModelSet()
	rng := rand.New(rand.NewPCG(43, 1))
	for i := 0; i < 4; i++ {
		set.OnAccepted(acceptedFeat(rng), 1.0)
	}
	reg.WaitAdapt()

	after := reg.ModelSet()
	if after.Shadow == nil {
		t.Fatal("AutoShadow candidate should be shadow-scoring after the batch build")
	}
	if after.Version(KindOrientation) == after.ShadowVersion {
		t.Fatal("shadow and active must be distinct versions")
	}
}

func TestAdaptWithoutActiveModelFails(t *testing.T) {
	reg := New(Config{Adapt: AdaptConfig{MinConfidence: 0.55}})
	rng := rand.New(rand.NewPCG(44, 1))
	reg.adapt.observe(acceptedFeat(rng), 1.0)
	if _, err := reg.AdaptNow(); err == nil {
		t.Fatal("adaptation with no active orientation model should fail")
	}
}

func TestDriftDetectorTripsOnShift(t *testing.T) {
	m := metrics.NewRegistry()
	reg := New(Config{
		Metrics: m,
		Drift:   DriftConfig{MinBaseline: 16, Window: 16, Threshold: 3},
	})
	v1, err := reg.Install(KindOrientation, trainedModel(t, 45, 2.0))
	if err != nil {
		t.Fatal(err)
	}
	set := reg.ModelSet()
	if set.OnScore == nil {
		t.Fatal("registry set should carry the drift hook")
	}

	// Baseline: scores around +1 with modest spread.
	rng := rand.New(rand.NewPCG(46, 1))
	for i := 0; i < 16; i++ {
		set.OnScore(1.0 + 0.1*rng.NormFloat64())
	}
	st := reg.DriftState()
	if !st.BaselineReady {
		t.Fatalf("baseline not established: %+v", st)
	}
	if st.Tripped {
		t.Fatalf("tripped during baseline: %+v", st)
	}

	// Stable traffic: no trip.
	for i := 0; i < 16; i++ {
		set.OnScore(1.0 + 0.1*rng.NormFloat64())
	}
	if st := reg.DriftState(); st.Tripped {
		t.Fatalf("stable distribution tripped: %+v", st)
	}

	// Synthetic shift: the score distribution collapses to -1.
	for i := 0; i < 16; i++ {
		set.OnScore(-1.0 + 0.1*rng.NormFloat64())
	}
	st = reg.DriftState()
	if !st.Tripped || st.Trips < 1 {
		t.Fatalf("shift did not trip the detector: %+v", st)
	}
	snap := m.Snapshot()
	if snap.Counters["registry_drift_trips_total"] < 1 {
		t.Fatal("drift trip not metered")
	}
	if snap.Gauges["registry_drift_shift_millisigma"] <= 0 {
		t.Fatal("drift shift gauge not exported")
	}

	// A promote resets the detector: new model, new distribution.
	v2, err := reg.AddModel(KindOrientation, trainedModel(t, 47, 3.0))
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Promote(KindOrientation, v2); err != nil {
		t.Fatal(err)
	}
	st = reg.DriftState()
	if st.BaselineReady || st.Tripped || st.Trips != 0 {
		t.Fatalf("promote did not reset drift state: %+v", st)
	}
	_ = v1
}

func TestShadowDivergenceMetered(t *testing.T) {
	m := metrics.NewRegistry()
	reg := New(Config{Metrics: m})
	if _, err := reg.Install(KindOrientation, trainedModel(t, 48, 2.0)); err != nil {
		t.Fatal(err)
	}
	cand, err := reg.AddModel(KindOrientation, trainedModel(t, 49, 3.0))
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Shadow(cand); err != nil {
		t.Fatal(err)
	}
	set := reg.ModelSet()
	set.OnShadow(1, 1, 0.9, 0.8)  // agree
	set.OnShadow(1, 0, 0.9, -0.2) // diverge
	set.OnShadow(0, 0, -0.5, -0.4)
	snap := m.Snapshot()
	if snap.Counters["registry_shadow_scored_total"] != 3 {
		t.Fatalf("shadow scored %d, want 3", snap.Counters["registry_shadow_scored_total"])
	}
	if snap.Counters["registry_shadow_diverged_total"] != 1 {
		t.Fatalf("shadow diverged %d, want 1", snap.Counters["registry_shadow_diverged_total"])
	}
}
