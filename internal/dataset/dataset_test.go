package dataset

import (
	"math"
	"testing"

	"headtalk/internal/audio"
	"headtalk/internal/dsp"
	"headtalk/internal/geom"
	"headtalk/internal/mic"
)

func TestLocationLabel(t *testing.T) {
	cases := []struct {
		radial, dist float64
		want         string
	}{
		{-15, 1, "L1"}, {0, 3, "M3"}, {15, 5, "R5"},
	}
	for _, c := range cases {
		if got := LocationLabel(c.radial, c.dist); got != c.want {
			t.Errorf("LocationLabel(%g, %g) = %s, want %s", c.radial, c.dist, got, c.want)
		}
	}
}

func TestConditionDefaults(t *testing.T) {
	c := Condition{}.withDefaults()
	if c.Room != "lab" || c.Device != "D2" || c.Word != "Computer" || c.Session != 1 ||
		c.Distance != 3 || c.Rep != 1 || c.SPL != 70 || c.Placement != "A" {
		t.Errorf("defaults %+v", c)
	}
}

func TestConditionString(t *testing.T) {
	c := Condition{AngleDeg: 90, Replay: "Sony SRS-X5"}
	s := c.String()
	if s == "" {
		t.Fatal("empty condition string")
	}
	if want := "replay:Sony SRS-X5"; !contains(s, want) {
		t.Errorf("condition string %q missing %q", s, want)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestDevicePlacements(t *testing.T) {
	for _, tc := range []struct {
		room, placement string
		wantZ           float64
	}{
		{"lab", "A", 0.74}, {"lab", "B", 0.45}, {"lab", "C", 0.75}, {"home", "A", 0.83},
	} {
		spec, err := devicePlacement(tc.room, tc.placement, false)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(spec.pos.Z-tc.wantZ) > 1e-9 {
			t.Errorf("%s/%s height %g, want %g", tc.room, tc.placement, spec.pos.Z, tc.wantZ)
		}
	}
	raised, err := devicePlacement("lab", "A", true)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(raised.pos.Z-0.888) > 1e-9 {
		t.Errorf("raised height %g, want 0.888", raised.pos.Z)
	}
	if _, err := devicePlacement("lab", "Z", false); err == nil {
		t.Error("expected error for unknown placement")
	}
	if _, err := devicePlacement("home", "B", false); err == nil {
		t.Error("expected error for home placement B")
	}
	if _, err := devicePlacement("garage", "A", false); err == nil {
		t.Error("expected error for unknown room")
	}
}

func TestSpeakerPositionsInsideRooms(t *testing.T) {
	// Every grid location in both rooms must fall inside the room.
	rooms := map[string]geom.Vec3{
		"lab":  {X: 6.10, Y: 4.27, Z: 3.05},
		"home": {X: 10.06, Y: 3.05, Z: 2.44},
	}
	for roomName, dims := range rooms {
		spec, err := devicePlacement(roomName, "A", false)
		if err != nil {
			t.Fatal(err)
		}
		for _, rad := range Radials {
			for _, dist := range Distances {
				c := Condition{Room: roomName, RadialDeg: rad, Distance: dist}.withDefaults()
				p := speakerPosition(spec, c)
				if p.X < 0 || p.X > dims.X || p.Y < 0 || p.Y > dims.Y || p.Z < 0 || p.Z > dims.Z {
					t.Errorf("%s %s: speaker at %+v outside room %+v", roomName, c.Location(), p, dims)
				}
			}
		}
	}
}

func TestSpeakerPositionPosture(t *testing.T) {
	spec, err := devicePlacement("lab", "A", false)
	if err != nil {
		t.Fatal(err)
	}
	standing := speakerPosition(spec, Condition{Distance: 3}.withDefaults())
	sitting := speakerPosition(spec, Condition{Distance: 3, Posture: Sitting}.withDefaults())
	if standing.Z <= sitting.Z {
		t.Error("standing mouth should be higher than sitting")
	}
	if math.Abs(standing.Z-1.65) > 1e-9 || math.Abs(sitting.Z-1.15) > 1e-9 {
		t.Errorf("mouth heights %g / %g", standing.Z, sitting.Z)
	}
}

func TestDatasetCountsSmall(t *testing.T) {
	// Reduced-scale counts: every axis retained, grid reduced to M
	// column with 1 repetition.
	if got := len(Dataset1(ScaleSmall)); got != 2*3*3*2*3*14 {
		t.Errorf("Dataset1 small = %d", got)
	}
	if got := len(Dataset2(ScaleSmall)); got != 2*2*3*14 {
		t.Errorf("Dataset2 small = %d", got)
	}
	if got := len(Dataset3(ScaleSmall)); got != 2*2*3*14 {
		t.Errorf("Dataset3 small = %d", got)
	}
	if got := len(Dataset4(ScaleSmall)); got != 2*3*14 {
		t.Errorf("Dataset4 small = %d", got)
	}
	if got := len(Dataset5(ScaleSmall)); got != 3*14 {
		t.Errorf("Dataset5 small = %d", got)
	}
	if got := len(Dataset6(ScaleSmall)); got != 2*3*14 {
		t.Errorf("Dataset6 small = %d", got)
	}
	if got := len(Dataset7(ScaleSmall)); got != 3*3*14 {
		t.Errorf("Dataset7 small = %d", got)
	}
	if got := len(Dataset8(ScaleSmall)); got != 10*3*8*2 {
		t.Errorf("Dataset8 small = %d", got)
	}
}

func TestDatasetCountsPaper(t *testing.T) {
	// Table II counts.
	if got := len(Dataset1(ScalePaper)); got != 9072 {
		t.Errorf("Dataset1 paper = %d, want 9072", got)
	}
	if got := len(Dataset2(ScalePaper)); got != 1008 {
		t.Errorf("Dataset2 paper = %d, want 1008", got)
	}
	if got := len(Dataset3(ScalePaper)); got != 336 {
		t.Errorf("Dataset3 paper = %d, want 336", got)
	}
	if got := len(Dataset4(ScalePaper)); got != 168 {
		t.Errorf("Dataset4 paper = %d, want 168", got)
	}
	if got := len(Dataset5(ScalePaper)); got != 84 {
		t.Errorf("Dataset5 paper = %d, want 84", got)
	}
	if got := len(Dataset6(ScalePaper)); got != 168 {
		t.Errorf("Dataset6 paper = %d, want 168", got)
	}
	if got := len(Dataset7(ScalePaper)); got != 252 {
		t.Errorf("Dataset7 paper = %d, want 252", got)
	}
	if got := len(Dataset8(ScalePaper)); got != 1440 {
		t.Errorf("Dataset8 paper = %d, want 1440", got)
	}
}

func TestSpoofCorpusBalanced(t *testing.T) {
	conds := SpoofCorpus(ScaleSmall)
	human, spoof := 0, 0
	for _, c := range conds {
		if LivenessLabel(c) == 1 {
			human++
		} else {
			spoof++
		}
	}
	if human != spoof {
		t.Errorf("spoof corpus imbalance: %d human vs %d spoof", human, spoof)
	}
	// Pretraining users are disjoint from Dataset-8 participants.
	for _, c := range conds {
		if c.UserID <= 10 {
			t.Fatalf("spoof corpus uses evaluation user %d", c.UserID)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	g1 := NewGenerator(7)
	g2 := NewGenerator(7)
	c := Condition{AngleDeg: 30}
	a, err := g1.Generate(c)
	if err != nil {
		t.Fatal(err)
	}
	b, err := g2.Generate(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Features) != len(b.Features) {
		t.Fatal("feature length mismatch")
	}
	for i := range a.Features {
		if a.Features[i] != b.Features[i] {
			t.Fatalf("non-deterministic feature %d", i)
		}
	}
}

func TestGenerateVariesAcrossRepsAndSeeds(t *testing.T) {
	g := NewGenerator(7)
	a, err := g.Generate(Condition{AngleDeg: 30, Rep: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.Generate(Condition{AngleDeg: 30, Rep: 2})
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a.Features {
		if a.Features[i] == b.Features[i] {
			same++
		}
	}
	if same == len(a.Features) {
		t.Error("different repetitions produced identical features")
	}
	gOther := NewGenerator(8)
	c, err := gOther.Generate(Condition{AngleDeg: 30, Rep: 1})
	if err != nil {
		t.Fatal(err)
	}
	same = 0
	for i := range a.Features {
		if a.Features[i] == c.Features[i] {
			same++
		}
	}
	if same == len(a.Features) {
		t.Error("different generator seeds produced identical features")
	}
}

func TestGenerateKeepWaveforms(t *testing.T) {
	g := NewGenerator(9)
	g.KeepWaveforms = true
	s, err := g.Generate(Condition{})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Waveform) == 0 {
		t.Fatal("waveform not kept")
	}
	if dsp.RMS(s.Waveform) == 0 {
		t.Error("silent waveform")
	}
	g2 := NewGenerator(9)
	s2, err := g2.Generate(Condition{})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Waveform != nil {
		t.Error("waveform kept without KeepWaveforms")
	}
}

func TestGenerateErrors(t *testing.T) {
	g := NewGenerator(1)
	if _, err := g.Generate(Condition{Device: "D9"}); err == nil {
		t.Error("expected error for unknown device")
	}
	if _, err := g.Generate(Condition{Room: "garage"}); err == nil {
		t.Error("expected error for unknown room")
	}
	if _, err := g.Generate(Condition{Word: "Alexa"}); err == nil {
		t.Error("expected error for unknown wake word")
	}
	if _, err := g.Generate(Condition{Obstacle: "wall"}); err == nil {
		t.Error("expected error for unknown obstacle")
	}
	if _, err := g.Generate(Condition{Replay: "boombox"}); err == nil {
		t.Error("expected error for unknown replay profile")
	}
}

func TestCaptureRecordingShape(t *testing.T) {
	g := NewGenerator(11)
	rec, err := CaptureRecording(g, Condition{Device: "D3"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Channels) != 4 {
		t.Errorf("%d channels, want the D3 default subset of 4", len(rec.Channels))
	}
	if rec.SampleRate != 48000 {
		t.Errorf("sample rate %g", rec.SampleRate)
	}
	for i, ch := range rec.Channels {
		if dsp.RMS(ch) == 0 {
			t.Errorf("channel %d silent", i)
		}
	}
}

func TestGenerateSubsetsConsistency(t *testing.T) {
	g := NewGenerator(13)
	subsets := [][]int{{0, 1}, {0, 1, 3, 4}}
	feats, err := g.GenerateSubsets(Condition{}, subsets)
	if err != nil {
		t.Fatal(err)
	}
	if len(feats) != 2 {
		t.Fatalf("%d feature sets", len(feats))
	}
	// 2 channels: 1 pair => 1×27+1+5+3+5+61 = 102 dims; 4 channels =>
	// 267 dims.
	if len(feats[0]) != 102 {
		t.Errorf("2-mic feature length %d, want 102", len(feats[0]))
	}
	if len(feats[1]) != 267 {
		t.Errorf("4-mic feature length %d, want 267", len(feats[1]))
	}
	if _, err := g.GenerateSubsets(Condition{}, [][]int{{0, 99}}); err == nil {
		t.Error("expected error for out-of-range channel")
	}
}

func TestTemporalDriftChangesRoom(t *testing.T) {
	g := NewGenerator(15)
	now, err := g.roomFor(Condition{Room: "lab"})
	if err != nil {
		t.Fatal(err)
	}
	month, err := g.roomFor(Condition{Room: "lab", Temporal: TemporalMonth})
	if err != nil {
		t.Fatal(err)
	}
	if now.EyringT60(1000) == month.EyringT60(1000) {
		t.Error("temporal drift did not change the room acoustics")
	}
}

func TestFeatureConfigFor(t *testing.T) {
	d2, err := micDeviceByID("D2")
	if err != nil {
		t.Fatal(err)
	}
	cfg := FeatureConfigFor(d2)
	if cfg.MaxLag != 13 {
		t.Errorf("D2 MaxLag %d, want 13", cfg.MaxLag)
	}
	if !cfg.UsePHAT {
		t.Error("PHAT should default on")
	}
}

func TestLivenessLabel(t *testing.T) {
	if LivenessLabel(Condition{}) != 1 {
		t.Error("live condition should label 1")
	}
	if LivenessLabel(Condition{Replay: "Sony SRS-X5"}) != 0 {
		t.Error("replay condition should label 0")
	}
}

func TestDefaultAmbientLevels(t *testing.T) {
	lab := defaultAmbient("lab")
	home := defaultAmbient("home")
	if lab.SPL != 33 || home.SPL != 43 {
		t.Errorf("ambient levels %g / %g, want 33 / 43", lab.SPL, home.SPL)
	}
	if lab.Kind != audio.PinkNoise {
		t.Error("default ambient should be pink")
	}
}

// micDeviceByID avoids importing mic with a name collision in tests.
func micDeviceByID(id string) (*mic.Array, error) { return mic.DeviceByID(id) }
