package dataset

import (
	"fmt"
	"hash/fnv"
	"math/rand/v2"
	"sync"

	"headtalk/internal/audio"
	"headtalk/internal/dsp"
	"headtalk/internal/features"
	"headtalk/internal/geom"
	"headtalk/internal/mic"
	"headtalk/internal/room"
	"headtalk/internal/speech"
)

// Sample is one generated corpus entry: the orientation feature vector
// for the captured, preprocessed recording, plus optionally the mono
// waveform for liveness experiments.
type Sample struct {
	Cond     Condition
	Features []float64
	// Waveform is the preprocessed mono capture downsampled to
	// 16 kHz; populated only when the Generator keeps waveforms.
	Waveform []float64
}

// Generator turns Conditions into Samples deterministically: the same
// (generator seed, condition) pair always yields the same sample.
// A Generator is safe for concurrent use.
type Generator struct {
	// Seed namespaces all randomness.
	Seed uint64
	// KeepWaveforms retains mono waveforms on samples (needed for
	// liveness experiments; off by default to save memory). Waveforms
	// are stored downsampled to 16 kHz, the liveness frontend's input
	// rate.
	KeepWaveforms bool
	// FeatureConfigFn, when set, rewrites the per-device feature
	// configuration before extraction (used by the PHAT and
	// feature-group ablations).
	FeatureConfigFn func(features.Config) features.Config
	// ImageOrder / TailTaps override simulator fidelity when > 0.
	ImageOrder int
	TailTaps   int
	// DisableDefaultAmbient turns off the per-room noise floor
	// (lab 33 dB / home 43 dB).
	DisableDefaultAmbient bool

	mu      sync.Mutex
	bpCache map[float64]*dsp.IIRFilter
}

// NewGenerator returns a generator with the default fidelity settings.
func NewGenerator(seed uint64) *Generator {
	return &Generator{Seed: seed}
}

// condRNG derives a deterministic RNG for a condition and purpose tag.
// The full condition struct is hashed: two conditions differing in ANY
// field (posture, ambient noise, placement, ...) must draw independent
// utterances and capture noise, otherwise a sensitivity experiment's
// test set would be a near-copy of the training captures.
func (g *Generator) condRNG(c Condition, tag string) *rand.Rand {
	h := fnv.New64a()
	fmt.Fprintf(h, "%+v|%s", c, tag)
	return rand.New(rand.NewPCG(g.Seed, h.Sum64()))
}

// voiceFor returns the speaker voice for a condition: user 0 is the
// primary experimenter (a fixed voice with mild per-session and
// temporal drift), users >= 1 are drawn per-user.
func (g *Generator) voiceFor(c Condition) speech.VoiceProfile {
	var v speech.VoiceProfile
	if c.UserID == 0 {
		v = speech.DefaultVoice()
	} else {
		h := fnv.New64a()
		fmt.Fprintf(h, "user-%d", c.UserID)
		v = speech.RandomVoice(rand.New(rand.NewPCG(g.Seed, h.Sum64())))
	}
	// Session-to-session human variation: nobody says a wake word the
	// same way twice.
	rng := g.condRNG(c, "voice")
	v.BasePitch *= 1 + 0.03*rng.NormFloat64()
	v.Rate *= 1 + 0.04*rng.NormFloat64()
	// Temporal drift: weeks later the voice and delivery have moved a
	// little more (colds, mood, speaking style).
	switch c.Temporal {
	case TemporalWeek:
		v.BasePitch *= 1 + 0.05*rng.NormFloat64()
		v.Breathiness *= 1.3
		v.HighBandGain += 1.5 * rng.NormFloat64()
	case TemporalMonth:
		v.BasePitch *= 1 + 0.07*rng.NormFloat64()
		v.Rate *= 1 + 0.06*rng.NormFloat64()
		v.HighBandGain += 2.5 * rng.NormFloat64()
	}
	return v
}

// utteranceFor synthesizes the band-split dry utterance for a
// condition. Every condition gets its own synthesis draw — a human
// never says the wake word the same way twice, and training on varied
// utterances is what makes the classifier utterance-invariant. Replay
// conditions render the synthesized voice through the named
// loudspeaker chain first.
func (g *Generator) utteranceFor(c Condition, bands []room.Band) (*mic.Utterance, error) {
	word, ok := speech.WakeWordByName(c.Word)
	if !ok {
		return nil, fmt.Errorf("dataset: unknown wake word %q", c.Word)
	}
	voice := g.voiceFor(c)
	buf := speech.Synthesize(word, voice, 48000, g.condRNG(c, "synth"))
	if c.Replay != "" {
		profile, err := replayProfile(c.Replay)
		if err != nil {
			return nil, err
		}
		buf = speech.RenderMechanical(buf, profile, g.condRNG(c, "replay"))
	}
	return mic.PrepareUtterance(buf, bands), nil
}

func replayProfile(name string) (speech.LoudspeakerProfile, error) {
	for _, p := range speech.ReplayProfiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return speech.LoudspeakerProfile{}, fmt.Errorf("dataset: unknown replay profile %q", name)
}

// roomFor returns the (possibly temporally drifted) room model.
func (g *Generator) roomFor(c Condition) (room.Room, error) {
	var r room.Room
	switch c.Room {
	case "lab":
		r = room.LabRoom()
	case "home":
		r = room.HomeRoom()
	default:
		return r, fmt.Errorf("dataset: unknown room %q", c.Room)
	}
	// Temporal drift: furniture moves, doors open — the effective
	// absorption changes slightly, shifting the reverberation pattern
	// the model was trained on.
	drift := 0.0
	switch c.Temporal {
	case TemporalWeek:
		drift = 0.3
	case TemporalMonth:
		drift = 0.5
	}
	if drift > 0 {
		rng := g.condRNG(Condition{Room: c.Room, Temporal: c.Temporal}, "roomdrift")
		for w := range r.Walls {
			scale := 1 + drift*(2*rng.Float64()-1)
			m := r.Walls[w]
			alphas := make([]float64, len(m.Alphas))
			for i, a := range m.Alphas {
				v := a * scale
				if v > 0.95 {
					v = 0.95
				}
				if v < 0.01 {
					v = 0.01
				}
				alphas[i] = v
			}
			m.Alphas = alphas
			r.Walls[w] = m
		}
	}
	return r, nil
}

// defaultAmbient returns the room's noise floor (lab 33 dB SPL, home
// 43 dB SPL, pink-ish household spectrum).
func defaultAmbient(roomName string) mic.AmbientNoise {
	if roomName == "home" {
		return mic.AmbientNoise{Kind: audio.PinkNoise, SPL: 43}
	}
	return mic.AmbientNoise{Kind: audio.PinkNoise, SPL: 33}
}

// FeatureConfigFor returns the paper's feature configuration for a
// device (the ±0.25/0.27/0.2 ms GCC windows of §III-B3).
func FeatureConfigFor(array *mic.Array) features.Config {
	return features.DefaultConfig(array.MaxDelaySamples(48000, 340), 48000)
}

// Generate renders one sample.
func (g *Generator) Generate(c Condition) (*Sample, error) {
	c = c.withDefaults()
	array, err := mic.DeviceByID(c.Device)
	if err != nil {
		return nil, fmt.Errorf("dataset: %s: %w", c, err)
	}
	recording, err := g.capture(c, array)
	if err != nil {
		return nil, err
	}
	// Preprocessing: the paper's 5th-order Butterworth 100–16000 Hz,
	// applied to the device's default 4-microphone subset.
	s, _, err := g.finish(c, array, recording, [][]int{array.DefaultSubset()})
	return s, err
}

// capture renders the raw multi-channel recording for a condition.
func (g *Generator) capture(c Condition, array *mic.Array) (*audio.Recording, error) {
	roomModel, err := g.roomFor(c)
	if err != nil {
		return nil, fmt.Errorf("dataset: %s: %w", c, err)
	}
	sim := room.NewSimulator(roomModel)
	if g.ImageOrder > 0 {
		sim.ImageOrder = g.ImageOrder
	}
	if g.TailTaps > 0 {
		sim.TailTaps = g.TailTaps
	} else {
		sim.TailTaps = 32
	}
	switch c.Obstacle {
	case "":
	case "partial":
		sim.Obstruction = room.PartialBlock
	case "full":
		sim.Obstruction = room.FullBlock
	default:
		return nil, fmt.Errorf("dataset: %s: unknown obstacle %q", c, c.Obstacle)
	}

	placement, err := devicePlacement(c.Room, c.Placement, c.Raised)
	if err != nil {
		return nil, fmt.Errorf("dataset: %s: %w", c, err)
	}
	// Temporal drift also moves the device a little: weeks later the
	// speaker has been nudged along the shelf, which is part of why
	// aged models degrade (§IV-B9).
	if c.Temporal != "" {
		shift := 0.1
		if c.Temporal == TemporalMonth {
			shift = 0.2
		}
		prng := g.condRNG(Condition{Room: c.Room, Temporal: c.Temporal}, "placedrift")
		placement.pos.X += shift * prng.NormFloat64()
		placement.pos.Y += shift * prng.NormFloat64()
	}

	utt, err := g.utteranceFor(c, sim.Bands)
	if err != nil {
		return nil, fmt.Errorf("dataset: %s: %w", c, err)
	}

	// Source geometry with human placement error: position jitter of a
	// few centimeters, angle error of a couple of degrees (paper
	// §VI acknowledges angle error in collection).
	rng := g.condRNG(c, "capture")
	pos := speakerPosition(placement, c)
	pos.X += 0.04 * rng.NormFloat64()
	pos.Y += 0.04 * rng.NormFloat64()
	pos.Z += 0.02 * rng.NormFloat64()
	toDevice := geomAzimuth(placement.pos, pos)
	angleErr := 2 * rng.NormFloat64()
	src := room.Source{
		Pos:     pos,
		Azimuth: toDevice + c.AngleDeg + angleErr,
	}
	if c.Replay != "" {
		src.Dir = room.LoudspeakerDirectivity{}
	} else {
		src.Dir = room.HumanDirectivity{}
	}

	scene := &mic.Scene{
		Sim:      sim,
		Array:    array,
		ArrayPos: placement.pos,
	}
	if !g.DisableDefaultAmbient {
		scene.Ambients = append(scene.Ambients, defaultAmbient(c.Room))
	}
	if c.AmbientSPL > 0 {
		scene.Ambients = append(scene.Ambients, mic.AmbientNoise{Kind: c.Ambient, SPL: c.AmbientSPL})
	}

	spl := c.SPL + 1.0*rng.NormFloat64() // humans don't hold 70 dB exactly
	return scene.Capture(src, utt, spl, rng), nil
}

// CaptureRecording renders the raw (unpreprocessed) multi-channel
// capture for a condition, restricted to the device's default
// microphone subset — the input a live HeadTalk system would see from
// its array. Demos and examples feed this to core.System.ProcessWake,
// which runs its own preprocessing.
func CaptureRecording(g *Generator, c Condition) (*audio.Recording, error) {
	c = c.withDefaults()
	array, err := mic.DeviceByID(c.Device)
	if err != nil {
		return nil, fmt.Errorf("dataset: %s: %w", c, err)
	}
	rec, err := g.capture(c, array)
	if err != nil {
		return nil, err
	}
	return rec.Select(array.DefaultSubset())
}

// GenerateSubsets captures the condition once with every device
// channel and extracts one feature vector per microphone subset (the
// §IV-B6 mic-count experiment). It returns the per-subset feature
// vectors in order.
func (g *Generator) GenerateSubsets(c Condition, subsets [][]int) ([][]float64, error) {
	c = c.withDefaults()
	array, err := mic.DeviceByID(c.Device)
	if err != nil {
		return nil, fmt.Errorf("dataset: %s: %w", c, err)
	}
	recording, err := g.capture(c, array)
	if err != nil {
		return nil, err
	}
	_, feats, err := g.finish(c, array, recording, subsets)
	return feats, err
}

// finish preprocesses a raw capture and extracts features for each
// channel subset. The returned Sample carries the first subset's
// features.
func (g *Generator) finish(c Condition, array *mic.Array, recording *audio.Recording, subsets [][]int) (*Sample, [][]float64, error) {
	bp, err := g.bandpass(recording.SampleRate)
	if err != nil {
		return nil, nil, fmt.Errorf("dataset: %s: %w", c, err)
	}
	filtered := make(map[int][]float64)
	channelFor := func(ci int) ([]float64, error) {
		if ch, ok := filtered[ci]; ok {
			return ch, nil
		}
		if ci < 0 || ci >= len(recording.Channels) {
			return nil, fmt.Errorf("dataset: %s: channel %d out of range", c, ci)
		}
		ch := bp.Apply(recording.Channels[ci])
		filtered[ci] = ch
		return ch, nil
	}

	cfg := FeatureConfigFor(array)
	if g.FeatureConfigFn != nil {
		cfg = g.FeatureConfigFn(cfg)
	}
	allFeats := make([][]float64, 0, len(subsets))
	var first *audio.Recording
	for _, subset := range subsets {
		pre := &audio.Recording{SampleRate: recording.SampleRate}
		for _, ci := range subset {
			ch, cerr := channelFor(ci)
			if cerr != nil {
				return nil, nil, cerr
			}
			pre.Channels = append(pre.Channels, ch)
		}
		if first == nil {
			first = pre
		}
		feats, ferr := features.Extract(pre, cfg)
		if ferr != nil {
			return nil, nil, fmt.Errorf("dataset: %s: extracting features: %w", c, ferr)
		}
		allFeats = append(allFeats, feats)
	}
	s := &Sample{Cond: c, Features: allFeats[0]}
	if g.KeepWaveforms {
		wav, werr := dsp.Resample(first.Mono(), first.SampleRate, 16000)
		if werr != nil {
			return nil, nil, fmt.Errorf("dataset: %s: downsampling waveform: %w", c, werr)
		}
		s.Waveform = wav
	}
	return s, allFeats, nil
}

// GenerateAll renders every condition, failing fast on the first
// error.
func (g *Generator) GenerateAll(conds []Condition) ([]*Sample, error) {
	out := make([]*Sample, 0, len(conds))
	for _, c := range conds {
		s, err := g.Generate(c)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// bandpass returns the cached preprocessing filter for a sample rate.
// Each caller gets its own state via Apply's internal reset, but the
// filter itself is shared, so guard construction only.
func (g *Generator) bandpass(fs float64) (*dsp.IIRFilter, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.bpCache == nil {
		g.bpCache = make(map[float64]*dsp.IIRFilter)
	}
	if f, ok := g.bpCache[fs]; ok {
		return f, nil
	}
	f, err := dsp.NewButterworthBandPass(5, 100, 16000, fs)
	if err != nil {
		return nil, err
	}
	g.bpCache[fs] = f
	return f, nil
}

// geomAzimuth returns the azimuth of the direction from `from` toward
// `to` in the horizontal plane, in degrees.
func geomAzimuth(to, from geom.Vec3) float64 {
	return geom.Azimuth(to.Sub(from))
}
