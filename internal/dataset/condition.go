// Package dataset reproduces the paper's data-collection protocol
// (§IV, Table II) on top of the synthesis and room-simulation
// substrates: wake words spoken (or replayed) at 14 angles, from nine
// grid locations at 1/3/5 m, across two rooms, three devices, three
// wake words, multiple sessions, ambient-noise conditions, loudness
// levels, postures, placements, surrounding objects, temporal drift
// and multiple users.
package dataset

import (
	"fmt"

	"headtalk/internal/audio"
	"headtalk/internal/geom"
)

// Collection-angle grid (paper: 14 angles spanning 360°, plus the ±75°
// borderline angles collected for the Table III verification).
var (
	// Angles14 is the standard collection grid.
	Angles14 = []float64{0, 15, -15, 30, -30, 45, -45, 60, -60, 90, -90, 135, -135, 180}
	// AnglesWithBorderline adds ±75°.
	AnglesWithBorderline = []float64{0, 15, -15, 30, -30, 45, -45, 60, -60, 75, -75, 90, -90, 135, -135, 180}
	// AnglesDoV is the Ahuja et al. 8-angle grid (45° steps) used by
	// the cross-user dataset.
	AnglesDoV = []float64{0, 45, -45, 90, -90, 135, -135, 180}
)

// Distances and radial directions of the nine grid locations.
var (
	Distances = []float64{1, 3, 5}
	Radials   = []float64{-15, 0, 15} // L, M, R
)

// LocationLabel returns the paper's grid label (e.g. "M3") for a
// radial direction and distance.
func LocationLabel(radialDeg, distance float64) string {
	var r string
	switch {
	case radialDeg < 0:
		r = "L"
	case radialDeg > 0:
		r = "R"
	default:
		r = "M"
	}
	return fmt.Sprintf("%s%d", r, int(distance))
}

// Temporal identifies when a sample was collected relative to
// enrollment (paper §IV-B9).
type Temporal string

// Temporal settings.
const (
	TemporalNow   Temporal = ""
	TemporalWeek  Temporal = "week"
	TemporalMonth Temporal = "month"
)

// Posture of the speaker.
type Posture int

// Postures.
const (
	Standing Posture = iota
	Sitting
)

// Mouth heights in meters.
const (
	standingMouthHeight = 1.65
	sittingMouthHeight  = 1.15
)

// Condition fully specifies one sample of the synthetic corpus. Zero
// values select the paper's defaults (lab room, device D2, "Computer",
// session 1, M3 grid point, 70 dB, standing, placement A).
type Condition struct {
	Room      string  // "lab" or "home"
	Device    string  // "D1", "D2", "D3"
	Word      string  // wake word name
	Session   int     // 1-based collection session
	Distance  float64 // meters (1, 3, 5)
	RadialDeg float64 // -15, 0, +15
	AngleDeg  float64 // speaker head angle relative to facing the device
	Rep       int     // repetition within a session (1-based)
	SPL       float64 // loudness at 1 m (dB SPL); 0 = 70 dB
	Posture   Posture
	Placement string   // "A", "B", "C"; "" = "A"
	Raised    bool     // device raised by 14.8 cm (§IV-B13)
	Obstacle  string   // "", "partial", "full"
	Temporal  Temporal // collection time relative to enrollment
	// Replay names a loudspeaker profile ("Sony SRS-X5", ...); empty
	// means a live human speaker.
	Replay string
	// UserID selects the speaker voice: 0 is the primary experimenter,
	// 1..N are the multi-user corpus participants.
	UserID int
	// Ambient overrides the room's default noise floor when
	// AmbientSPL > 0 (Dataset-4 plays white noise or a TV at 45 dB).
	Ambient    audio.NoiseKind
	AmbientSPL float64
}

// withDefaults resolves zero values to the paper's defaults.
func (c Condition) withDefaults() Condition {
	if c.Room == "" {
		c.Room = "lab"
	}
	if c.Device == "" {
		c.Device = "D2"
	}
	if c.Word == "" {
		c.Word = "Computer"
	}
	if c.Session == 0 {
		c.Session = 1
	}
	if c.Distance == 0 {
		c.Distance = 3
	}
	if c.Rep == 0 {
		c.Rep = 1
	}
	if c.SPL == 0 {
		c.SPL = 70
	}
	if c.Placement == "" {
		c.Placement = "A"
	}
	return c
}

// Location returns the grid label for the condition.
func (c Condition) Location() string {
	c = c.withDefaults()
	return LocationLabel(c.RadialDeg, c.Distance)
}

// String summarizes the condition compactly for logs and errors.
func (c Condition) String() string {
	c = c.withDefaults()
	src := "human"
	if c.Replay != "" {
		src = "replay:" + c.Replay
	}
	return fmt.Sprintf("%s/%s/%s/s%d/%s/%+.0f°/rep%d/%s", c.Room, c.Device, c.Word, c.Session, c.Location(), c.AngleDeg, c.Rep, src)
}

// placementSpec is a device mounting point with its outward axis.
type placementSpec struct {
	pos     geom.Vec3
	outward float64 // azimuth the device faces, degrees
}

// devicePlacement returns the mounting geometry for a room/placement
// pair. Heights follow the paper: lab study table 74 cm (A), coffee
// table 45 cm (B), work table 75 cm (C), home TV shelf 83 cm.
func devicePlacement(roomName, placement string, raised bool) (placementSpec, error) {
	var spec placementSpec
	switch roomName {
	case "lab":
		switch placement {
		case "A":
			spec = placementSpec{pos: geom.Vec3{X: 0.40, Y: 2.10, Z: 0.74}, outward: 0}
		case "B":
			spec = placementSpec{pos: geom.Vec3{X: 2.00, Y: 1.20, Z: 0.45}, outward: 0}
		case "C":
			spec = placementSpec{pos: geom.Vec3{X: 3.00, Y: 3.60, Z: 0.75}, outward: -90}
		default:
			return spec, fmt.Errorf("dataset: unknown lab placement %q", placement)
		}
	case "home":
		if placement != "A" {
			return spec, fmt.Errorf("dataset: home room only has placement A, got %q", placement)
		}
		spec = placementSpec{pos: geom.Vec3{X: 0.50, Y: 1.50, Z: 0.83}, outward: 0}
	default:
		return spec, fmt.Errorf("dataset: unknown room %q", roomName)
	}
	if raised {
		spec.pos.Z += 0.148
	}
	return spec, nil
}

// speakerPosition returns the mouth position for a condition given the
// device placement.
func speakerPosition(spec placementSpec, c Condition) geom.Vec3 {
	dir := geom.HeadingVec(spec.outward + c.RadialDeg)
	height := standingMouthHeight
	if c.Posture == Sitting {
		height = sittingMouthHeight
	}
	p := spec.pos.Add(dir.Scale(c.Distance))
	p.Z = height
	return p
}
