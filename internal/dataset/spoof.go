package dataset

// SpoofCorpus builds an ASVspoof-2019-PA-like pretraining corpus for
// the liveness detector: bona fide utterances from a pool of speakers
// plus replayed versions through every loudspeaker profile, across
// rooms, distances and angles. It substitutes for the ASVspoof corpus
// the paper pretrains wav2vec2 on (§IV-A1); the speaker pool (user IDs
// 101+) is disjoint from the Dataset-8 participants so liveness
// pretraining never sees evaluation voices.
func SpoofCorpus(s Scale) []Condition {
	users := 8
	repsHuman := 3
	repsSpoof := 1
	switch s {
	case ScalePaper:
		users = 16
		repsHuman = 6
		repsSpoof = 2
	case ScaleTiny:
		users = 2
	}
	profiles := []string{"Sony SRS-X5", "Samsung Galaxy S21 Ultra", "Smart TV"}
	angles := []float64{0, 45, 180}
	var out []Condition
	for u := 0; u < users; u++ {
		user := 101 + u
		roomName := RoomNames[u%len(RoomNames)]
		for _, dist := range Distances {
			for _, a := range angles {
				for rep := 1; rep <= repsHuman; rep++ {
					out = append(out, Condition{
						Room: roomName, Word: Words[(u+rep)%len(Words)],
						UserID: user, Distance: dist, AngleDeg: a, Rep: rep,
					})
				}
				for _, p := range profiles {
					for rep := 1; rep <= repsSpoof; rep++ {
						out = append(out, Condition{
							Room: roomName, Word: Words[(u+rep)%len(Words)],
							UserID: user, Distance: dist, AngleDeg: a, Rep: rep,
							Replay: p,
						})
					}
				}
			}
		}
	}
	return out
}

// LivenessLabel returns the liveness ground truth for a condition:
// 1 (human) for live conditions, 0 (spoof) for replays.
func LivenessLabel(c Condition) int {
	if c.Replay != "" {
		return 0
	}
	return 1
}
