package dataset

import "headtalk/internal/audio"

// This file encodes the paper's Table II datasets as condition
// enumerations. Scale selects between a reduced replica (fast enough
// for a single-core laptop run while preserving every experimental
// axis) and the paper's full counts.

// SampleWaveformRate is the rate of Sample.Waveform in Hz.
const SampleWaveformRate = 16000

// Scale selects corpus sizes.
type Scale int

// Scales.
const (
	// ScaleSmall keeps every variable axis but reduces grid locations
	// (M1/M3/M5) and repetitions.
	ScaleSmall Scale = iota
	// ScalePaper reproduces the paper's counts (9 locations, 2
	// repetitions).
	ScalePaper
	// ScaleTiny is the benchmark scale: a single grid location at 3 m
	// with one repetition, just enough structure for every experiment
	// to run end to end.
	ScaleTiny
)

// grid returns the (radial, distance) pairs and repetition count for a
// scale.
func (s Scale) grid() (radials, distances []float64, reps int) {
	switch s {
	case ScalePaper:
		return Radials, Distances, 2
	case ScaleTiny:
		return []float64{0}, []float64{3}, 1
	default:
		return []float64{0}, Distances, 1
	}
}

// Sessions is the number of collection sessions (both scales use the
// paper's two).
const Sessions = 2

// Words lists the paper's wake words in evaluation order.
var Words = []string{"Hey Assistant", "Computer", "Amazon"}

// DevicesIDs lists the prototype devices.
var DeviceIDs = []string{"D1", "D2", "D3"}

// RoomNames lists the two environments.
var RoomNames = []string{"lab", "home"}

// Dataset1 enumerates the main corpus: 2 rooms × 3 devices × 3 wake
// words × grid locations × 14 angles × reps × 2 sessions (paper:
// 9072 samples; small scale: 1512).
func Dataset1(s Scale) []Condition {
	radials, distances, reps := s.grid()
	var out []Condition
	for _, room := range RoomNames {
		for _, dev := range DeviceIDs {
			for _, word := range Words {
				for sess := 1; sess <= Sessions; sess++ {
					for _, rad := range radials {
						for _, dist := range distances {
							for _, a := range Angles14 {
								for rep := 1; rep <= reps; rep++ {
									out = append(out, Condition{
										Room: room, Device: dev, Word: word,
										Session: sess, RadialDeg: rad, Distance: dist,
										AngleDeg: a, Rep: rep,
									})
								}
							}
						}
					}
				}
			}
		}
	}
	return out
}

// Dataset1Slice enumerates the Dataset-1 cell for one room, device and
// word, with the standard 14 angles (or the extended angle set with
// ±75° when borderline is true, matching the Table III verification
// collection).
func Dataset1Slice(s Scale, roomName, device, word string, borderline bool) []Condition {
	radials, distances, reps := s.grid()
	angles := Angles14
	if borderline {
		angles = AnglesWithBorderline
	}
	var out []Condition
	for sess := 1; sess <= Sessions; sess++ {
		for _, rad := range radials {
			for _, dist := range distances {
				for _, a := range angles {
					for rep := 1; rep <= reps; rep++ {
						out = append(out, Condition{
							Room: roomName, Device: device, Word: word,
							Session: sess, RadialDeg: rad, Distance: dist,
							AngleDeg: a, Rep: rep,
						})
					}
				}
			}
		}
	}
	return out
}

// Dataset2 enumerates the replay corpus: the Sony loudspeaker playing
// two wake words over the grid (paper: 1008 samples).
func Dataset2(s Scale) []Condition {
	radials, distances, reps := s.grid()
	var out []Condition
	for _, word := range []string{"Computer", "Hey Assistant"} {
		for sess := 1; sess <= Sessions; sess++ {
			for _, rad := range radials {
				for _, dist := range distances {
					for _, a := range Angles14 {
						for rep := 1; rep <= reps; rep++ {
							out = append(out, Condition{
								Word: word, Session: sess, RadialDeg: rad,
								Distance: dist, AngleDeg: a, Rep: rep,
								Replay: "Sony SRS-X5",
							})
						}
					}
				}
			}
		}
	}
	return out
}

// Dataset3 enumerates the temporal corpus: "Computer" at M1/M3/M5 one
// week and one month after enrollment (paper: 336 samples).
func Dataset3(s Scale) []Condition {
	reps := 2
	if s != ScalePaper {
		reps = 1
	}
	var out []Condition
	for _, temporal := range []Temporal{TemporalWeek, TemporalMonth} {
		for sess := 1; sess <= Sessions; sess++ {
			for _, dist := range Distances {
				for _, a := range Angles14 {
					for rep := 1; rep <= reps; rep++ {
						out = append(out, Condition{
							Session: sess, Distance: dist, AngleDeg: a,
							Rep: rep, Temporal: temporal,
						})
					}
				}
			}
		}
	}
	return out
}

// Dataset4 enumerates the ambient-noise corpus: white noise and TV
// babble played at 45 dB SPL (paper: 168 samples).
func Dataset4(s Scale) []Condition {
	reps := 2
	if s != ScalePaper {
		reps = 1
	}
	var out []Condition
	for _, amb := range []AmbientSpec{{KindName: "white", SPL: 45}, {KindName: "tv", SPL: 45}} {
		for _, dist := range Distances {
			for _, a := range Angles14 {
				for rep := 1; rep <= reps; rep++ {
					c := Condition{Distance: dist, AngleDeg: a, Rep: rep, AmbientSPL: amb.SPL}
					c.Ambient = amb.kind()
					out = append(out, c)
				}
			}
		}
	}
	return out
}

// Dataset5 enumerates the sitting corpus (paper: 84 samples).
func Dataset5(s Scale) []Condition {
	reps := 2
	if s != ScalePaper {
		reps = 1
	}
	var out []Condition
	for _, dist := range Distances {
		for _, a := range Angles14 {
			for rep := 1; rep <= reps; rep++ {
				out = append(out, Condition{Distance: dist, AngleDeg: a, Rep: rep, Posture: Sitting})
			}
		}
	}
	return out
}

// Dataset6 enumerates the loudness corpus at 60 and 80 dB (paper: 168
// samples).
func Dataset6(s Scale) []Condition {
	reps := 2
	if s != ScalePaper {
		reps = 1
	}
	var out []Condition
	for _, spl := range []float64{60, 80} {
		for _, dist := range Distances {
			for _, a := range Angles14 {
				for rep := 1; rep <= reps; rep++ {
					out = append(out, Condition{Distance: dist, AngleDeg: a, Rep: rep, SPL: spl})
				}
			}
		}
	}
	return out
}

// Dataset7 enumerates the surrounding-object corpus: partially
// blocked, fully blocked and raised-device settings (paper: 252
// samples).
func Dataset7(s Scale) []Condition {
	reps := 2
	if s != ScalePaper {
		reps = 1
	}
	type setting struct {
		obstacle string
		raised   bool
	}
	var out []Condition
	for _, set := range []setting{{"partial", false}, {"full", false}, {"full", true}} {
		for _, dist := range Distances {
			for _, a := range Angles14 {
				for rep := 1; rep <= reps; rep++ {
					c := Condition{Distance: dist, AngleDeg: a, Rep: rep, Obstacle: set.obstacle, Raised: set.raised}
					if set.raised {
						// Raising the device above the obstacle clears
						// the direct path (paper: accuracy recovers to
						// 95%).
						c.Obstacle = ""
						c.Raised = true
					}
					out = append(out, c)
				}
			}
		}
	}
	return out
}

// Dataset8 enumerates the multi-user corpus mirroring the Ahuja et
// al. DoV collection: 10 participants, 9 grid locations, 8 angles at
// 45° steps, 2 repetitions (paper: 1440 samples).
func Dataset8(s Scale) []Condition {
	radials, distances, reps := Radials, Distances, 2
	if s != ScalePaper {
		// Keep both repetitions even at reduced scales: the DoV
		// baseline comparison trains on one repetition and tests on
		// the other.
		radials = []float64{0}
	}
	if s == ScaleTiny {
		distances = []float64{1, 3}
	}
	var out []Condition
	for user := 1; user <= 10; user++ {
		for _, rad := range radials {
			for _, dist := range distances {
				for _, a := range AnglesDoV {
					for rep := 1; rep <= reps; rep++ {
						out = append(out, Condition{
							Word: "Hey Assistant", UserID: user,
							RadialDeg: rad, Distance: dist, AngleDeg: a, Rep: rep,
						})
					}
				}
			}
		}
	}
	return out
}

// AmbientSpec names a noise kind for dataset building.
type AmbientSpec struct {
	KindName string
	SPL      float64
}

func (a AmbientSpec) kind() audio.NoiseKind {
	switch a.KindName {
	case "white":
		return audio.WhiteNoise
	case "tv":
		return audio.TVNoise
	default:
		return audio.PinkNoise
	}
}
