// Package trace is a dependency-free, allocation-conscious
// per-decision tracing subsystem: the live, per-request version of the
// paper's §IV-B15 pipeline latency table. A Trace carries an ID plus
// one span per pipeline stage (validate → channel-plan → preprocess →
// liveness → orientation → decide, with queue-wait and worker-pickup
// spans when a decision is served through an engine, and ingest/spot
// spans when it arrived through the streaming path), the channel plan
// chosen for the decision, the per-gate scores, and the final reason.
//
// Recording is built around a *Recorder that is safe to use as a nil
// pointer: every method is a no-op on nil, so instrumented code calls
// the recorder unconditionally and pays nothing — not even a clock
// read, and never an allocation — when tracing is off. When tracing is
// on, span recording writes into fixed per-stage slots inside the
// Trace, so the hot path stays allocation-free there too; only the
// annotations (channel plan) may allocate.
//
// Recorders travel by context (NewContext / FromContext); the serving
// engine propagates them from Submit/Decide through to its workers. A
// Recorder must not be used from more than one goroutine at a time —
// the serving engine guarantees this by construction (the submitter
// creates it, exactly one worker uses and finishes it).
package trace

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Stage identifies one pipeline stage of a decision. Stages are
// ordered as the pipeline runs them.
type Stage int

// Pipeline stages.
const (
	// StageIngest is the streaming ingest work that preceded a
	// streamed decision: ring-buffer pushes, frame validation and the
	// energy gate, accumulated across every PushFrames call since the
	// previous candidate.
	StageIngest Stage = iota
	// StageSpot is the online wake-word spotting work that preceded a
	// streamed decision: incremental STFT hops plus sliding-window
	// template scoring, accumulated like StageIngest.
	StageSpot
	// StageForward is the cross-node round trip for a decision the
	// local node did not own: serialization, the pooled-client network
	// exchange (including any retries and the hedged attempt) and
	// response decoding. It replaces the local pipeline stages when a
	// request is served by a federation peer.
	StageForward
	// StageQueueWait is the time a served request spent in the
	// submission queue before a worker dequeued it.
	StageQueueWait
	// StagePickup is the worker's dispatch overhead between dequeuing
	// the request and starting the pipeline (breaker check, plumbing).
	StagePickup
	// StageBatchGather is the time a dequeued request waited for the
	// serving engine's batch collector to fill (or give up on) its
	// batch before the pipeline started. Zero-length batches and
	// unbatched engines never record it.
	StageBatchGather
	// StageValidate is the input-hardening stage (audio.Validate and
	// optional repair).
	StageValidate
	// StageChannelPlan is the degraded-array policy: per-channel health
	// scoring and healthy-spare substitution.
	StageChannelPlan
	// StagePreprocess is the Butterworth band-pass stage.
	StagePreprocess
	// StageLiveness is the human-vs-mechanical gate.
	StageLiveness
	// StageFingerprint is the array-fingerprint liveness gate (the
	// enrolled array-signature check of the fused ensemble).
	StageFingerprint
	// StageOrientation is the facing/non-facing gate (GCC-PHAT feature
	// extraction plus SVM scoring).
	StageOrientation
	// StageDecide is the decision bookkeeping remainder: mode dispatch,
	// session handling, logging, and any wall time not attributed to an
	// explicit stage. It is computed at Finish so a trace's stage
	// durations always sum to its total.
	StageDecide

	numStages
)

// String returns the stage's machine-friendly name.
func (s Stage) String() string {
	switch s {
	case StageIngest:
		return "ingest"
	case StageSpot:
		return "spot"
	case StageForward:
		return "forward"
	case StageQueueWait:
		return "queue_wait"
	case StagePickup:
		return "pickup"
	case StageBatchGather:
		return "batch_gather"
	case StageValidate:
		return "validate"
	case StageChannelPlan:
		return "channel_plan"
	case StagePreprocess:
		return "preprocess"
	case StageLiveness:
		return "liveness"
	case StageFingerprint:
		return "fingerprint"
	case StageOrientation:
		return "orientation"
	case StageDecide:
		return "decide"
	default:
		return "unknown"
	}
}

// Stages lists every stage in pipeline order.
func Stages() []Stage {
	out := make([]Stage, numStages)
	for i := range out {
		out[i] = Stage(i)
	}
	return out
}

// Span is one recorded stage duration.
type Span struct {
	Stage    Stage
	Duration time.Duration
}

// MarshalJSON renders the span with a readable stage name and
// microsecond duration.
func (s Span) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Stage string `json:"stage"`
		DurUS int64  `json:"dur_us"`
	}{s.Stage.String(), s.Duration.Microseconds()})
}

// Trace is the finished record of one decision. Span durations live in
// fixed per-stage slots so recording never allocates; Spans() assembles
// the ordered view.
type Trace struct {
	// ID correlates the trace with the decision response that carried
	// it.
	ID string
	// Start is when the recorder was created (submission time for
	// served decisions).
	Start time.Time
	// Total is the wall time from Start to Finish. The per-stage
	// durations sum to Total (StageDecide absorbs the remainder).
	Total time.Duration
	// Mode, Accepted and Reason mirror the decision outcome (Reason is
	// the core.Reason slug).
	Mode     string
	Accepted bool
	Reason   string
	// Gate scores, valid when the matching gate ran.
	LiveScore   float64
	LiveRan     bool
	FacingScore float64
	FacingRan   bool
	// PlanChannels is the channel set the degraded-array policy chose
	// for the orientation gate (nil = all channels); PlanDegraded
	// counts channels the health check distrusted.
	PlanChannels []int
	PlanDegraded int

	durs [numStages]time.Duration
	has  [numStages]bool
}

// Span returns the duration recorded for stage s and whether the stage
// ran.
func (t *Trace) Span(s Stage) (time.Duration, bool) {
	if t == nil || s < 0 || s >= numStages {
		return 0, false
	}
	return t.durs[s], t.has[s]
}

// Spans returns the recorded spans in pipeline order.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	out := make([]Span, 0, numStages)
	for i := Stage(0); i < numStages; i++ {
		if t.has[i] {
			out = append(out, Span{Stage: i, Duration: t.durs[i]})
		}
	}
	return out
}

// MarshalJSON renders the trace for the debug endpoints and inline
// decision responses: microsecond durations, readable stage names.
func (t *Trace) MarshalJSON() ([]byte, error) {
	if t == nil {
		return []byte("null"), nil
	}
	w := struct {
		ID           string    `json:"id"`
		Start        time.Time `json:"start"`
		TotalUS      int64     `json:"total_us"`
		Mode         string    `json:"mode,omitempty"`
		Accepted     bool      `json:"accepted"`
		Reason       string    `json:"reason,omitempty"`
		LiveScore    *float64  `json:"live_score,omitempty"`
		FacingScore  *float64  `json:"facing_score,omitempty"`
		PlanChannels []int     `json:"plan_channels,omitempty"`
		PlanDegraded int       `json:"plan_degraded,omitempty"`
		Spans        []Span    `json:"spans"`
	}{
		ID:           t.ID,
		Start:        t.Start,
		TotalUS:      t.Total.Microseconds(),
		Mode:         t.Mode,
		Accepted:     t.Accepted,
		Reason:       t.Reason,
		PlanChannels: t.PlanChannels,
		PlanDegraded: t.PlanDegraded,
		Spans:        t.Spans(),
	}
	if t.LiveRan {
		w.LiveScore = &t.LiveScore
	}
	if t.FacingRan {
		w.FacingScore = &t.FacingScore
	}
	return json.Marshal(w)
}

// WriteTable renders the trace as the paper's §IV-B15 per-stage
// latency table: one row per recorded stage with its share of the
// total, then the total itself.
func (t *Trace) WriteTable(w io.Writer) error {
	if t == nil {
		return nil
	}
	if t.ID != "" {
		if _, err := fmt.Fprintf(w, "trace %s  (%s)\n", t.ID, t.Reason); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%-14s %12s %8s\n", "stage", "duration", "share"); err != nil {
		return err
	}
	for _, sp := range t.Spans() {
		share := 0.0
		if t.Total > 0 {
			share = 100 * float64(sp.Duration) / float64(t.Total)
		}
		if _, err := fmt.Fprintf(w, "%-14s %12s %7.1f%%\n",
			sp.Stage, formatDuration(sp.Duration), share); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%-14s %12s %7.1f%%\n", "total", formatDuration(t.Total), 100.0)
	return err
}

// formatDuration renders with µs/ms/s resolution matched to magnitude.
func formatDuration(d time.Duration) string {
	switch {
	case d < time.Millisecond:
		return fmt.Sprintf("%dµs", d.Microseconds())
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.3fs", d.Seconds())
	}
}

// Recorder accumulates one decision's trace. The zero of *Recorder —
// nil — is the "tracing off" recorder: every method is a cheap no-op
// that performs no clock reads and no allocations, so instrumented
// code never branches on a tracing flag.
type Recorder struct {
	t        Trace
	clock    func() time.Time
	finished bool
}

// NewRecorder starts a recorder (and its trace clock) now.
func NewRecorder(id string) *Recorder { return NewRecorderClock(id, time.Now) }

// NewRecorderClock is NewRecorder with an injected clock (tests).
func NewRecorderClock(id string, clock func() time.Time) *Recorder {
	if clock == nil {
		clock = time.Now
	}
	return &Recorder{t: Trace{ID: id, Start: clock()}, clock: clock}
}

// ID returns the trace ID ("" on nil).
func (r *Recorder) ID() string {
	if r == nil {
		return ""
	}
	return r.t.ID
}

// Begin returns the current time for a later End call. On a nil
// recorder it returns the zero time without reading the clock.
func (r *Recorder) Begin() time.Time {
	if r == nil {
		return time.Time{}
	}
	return r.clock()
}

// End records stage s as having run from start to now. Successive
// recordings of the same stage accumulate.
func (r *Recorder) End(s Stage, start time.Time) {
	if r == nil {
		return
	}
	r.Observe(s, r.clock().Sub(start))
}

// Observe records an externally measured duration for stage s.
func (r *Recorder) Observe(s Stage, d time.Duration) {
	if r == nil || s < 0 || s >= numStages {
		return
	}
	if d < 0 {
		d = 0
	}
	r.t.durs[s] += d
	r.t.has[s] = true
}

// SetPlan annotates the trace with the decision's channel plan.
func (r *Recorder) SetPlan(active []int, degraded int) {
	if r == nil {
		return
	}
	if len(active) > 0 {
		r.t.PlanChannels = append(r.t.PlanChannels[:0], active...)
	}
	r.t.PlanDegraded = degraded
}

// SetGates annotates the trace with the per-gate scores.
func (r *Recorder) SetGates(liveScore float64, liveRan bool, facingScore float64, facingRan bool) {
	if r == nil {
		return
	}
	r.t.LiveScore, r.t.LiveRan = liveScore, liveRan
	r.t.FacingScore, r.t.FacingRan = facingScore, facingRan
}

// SetOutcome annotates the trace with the decision outcome. Later
// calls overwrite earlier ones, so wrappers (the serving engine) may
// refine the outcome a panic or expiry produced.
func (r *Recorder) SetOutcome(mode string, accepted bool, reason string) {
	if r == nil {
		return
	}
	r.t.Mode, r.t.Accepted, r.t.Reason = mode, accepted, reason
}

// Finish seals the trace: Total is set to the wall time since Start
// and StageDecide absorbs whatever Total the explicit stages did not
// account for, so the stage durations always sum to Total. Finish is
// idempotent and returns the finished trace (nil on a nil recorder).
// The returned trace must not be mutated further.
func (r *Recorder) Finish() *Trace {
	if r == nil {
		return nil
	}
	if !r.finished {
		r.finished = true
		r.t.Total = r.clock().Sub(r.t.Start)
		if r.t.Total < 0 {
			r.t.Total = 0
		}
		var attributed time.Duration
		for i := range r.t.durs {
			if r.t.has[i] {
				attributed += r.t.durs[i]
			}
		}
		if rem := r.t.Total - attributed; rem > 0 {
			r.t.durs[StageDecide] += rem
			r.t.has[StageDecide] = true
		}
	}
	return &r.t
}

// ctxKey is the context key carrying a *Recorder. A zero-size key type
// keeps NewContext/FromContext allocation-free on the lookup side.
type ctxKey struct{}

// NewContext returns ctx carrying r. A nil recorder returns ctx
// unchanged so "tracing off" contexts stay untouched.
func NewContext(ctx context.Context, r *Recorder) context.Context {
	if r == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, r)
}

// FromContext returns the recorder carried by ctx, or nil — and nil is
// a fully usable no-op Recorder, so callers never need to branch.
func FromContext(ctx context.Context) *Recorder {
	if ctx == nil {
		return nil
	}
	r, _ := ctx.Value(ctxKey{}).(*Recorder)
	return r
}
