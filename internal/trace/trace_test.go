package trace

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// tick is a controllable clock for deterministic span math.
type tick struct{ now time.Time }

func (c *tick) Now() time.Time          { return c.now }
func (c *tick) Advance(d time.Duration) { c.now = c.now.Add(d) }
func newTick() *tick                    { return &tick{now: time.Unix(1000, 0)} }
func rec(c *tick, id string) *Recorder  { return NewRecorderClock(id, c.Now) }
func ms(n int) time.Duration            { return time.Duration(n) * time.Millisecond }
func span(t *testing.T, tr *Trace, s Stage) time.Duration {
	t.Helper()
	d, ok := tr.Span(s)
	if !ok {
		t.Fatalf("stage %s not recorded", s)
	}
	return d
}

func TestRecorderSpansAndDecideRemainder(t *testing.T) {
	c := newTick()
	r := rec(c, "t-1")

	st := r.Begin()
	c.Advance(ms(2))
	r.End(StageValidate, st)

	st = r.Begin()
	c.Advance(ms(5))
	r.End(StagePreprocess, st)

	r.Observe(StageLiveness, ms(40))
	c.Advance(ms(40)) // the gate itself took wall time too
	r.Observe(StageOrientation, ms(130))
	c.Advance(ms(130))

	c.Advance(ms(3)) // unattributed bookkeeping tail
	r.SetOutcome("headtalk", true, "accepted")
	tr := r.Finish()

	if tr.Total != ms(180) {
		t.Fatalf("total = %v, want 180ms", tr.Total)
	}
	if got := span(t, tr, StageValidate); got != ms(2) {
		t.Fatalf("validate = %v", got)
	}
	if got := span(t, tr, StageDecide); got != ms(3) {
		t.Fatalf("decide remainder = %v, want 3ms", got)
	}
	// The invariant the §IV-B15 table depends on: spans sum to total.
	var sum time.Duration
	for _, sp := range tr.Spans() {
		sum += sp.Duration
	}
	if sum != tr.Total {
		t.Fatalf("spans sum %v != total %v", sum, tr.Total)
	}
	if !tr.Accepted || tr.Reason != "accepted" || tr.Mode != "headtalk" {
		t.Fatalf("outcome not carried: %+v", tr)
	}
	// Finish is idempotent: a second call must not re-total.
	c.Advance(time.Hour)
	if tr2 := r.Finish(); tr2.Total != ms(180) {
		t.Fatalf("second Finish changed total: %v", tr2.Total)
	}
}

func TestSpansOrderedAndAccumulating(t *testing.T) {
	c := newTick()
	r := rec(c, "t-2")
	r.Observe(StageOrientation, ms(10))
	r.Observe(StageValidate, ms(1))
	r.Observe(StageValidate, ms(2)) // repeated stage accumulates
	tr := r.Finish()
	spans := tr.Spans()
	if len(spans) < 2 || spans[0].Stage != StageValidate || spans[1].Stage != StageOrientation {
		t.Fatalf("spans not in pipeline order: %+v", spans)
	}
	if spans[0].Duration != ms(3) {
		t.Fatalf("validate accumulated %v, want 3ms", spans[0].Duration)
	}
}

// TestNilRecorderIsFreeNoop is the tracing-off guarantee: every
// Recorder method on nil, and the context round-trip with no recorder,
// must allocate nothing (the PR-3 zero-alloc hot paths call these
// unconditionally).
func TestNilRecorderIsFreeNoop(t *testing.T) {
	var r *Recorder
	ctx := context.Background()
	if n := testing.AllocsPerRun(200, func() {
		r2 := FromContext(ctx)
		st := r2.Begin()
		r2.End(StageValidate, st)
		r2.Observe(StageLiveness, ms(1))
		r2.SetPlan(nil, 0)
		r2.SetGates(0, false, 0, false)
		r2.SetOutcome("", false, "")
		if r2.Finish() != nil {
			t.Fatal("nil recorder finished to a trace")
		}
	}); n != 0 {
		t.Fatalf("nil-recorder path allocates %v per run, want 0", n)
	}
	if got := r.Begin(); !got.IsZero() {
		t.Fatal("nil Begin read the clock")
	}
	if r.ID() != "" {
		t.Fatal("nil ID not empty")
	}
}

// TestActiveSpanRecordingZeroAlloc pins that recording spans into an
// active trace writes fixed slots only.
func TestActiveSpanRecordingZeroAlloc(t *testing.T) {
	r := NewRecorder("t-3")
	if n := testing.AllocsPerRun(200, func() {
		st := r.Begin()
		r.End(StagePreprocess, st)
		r.Observe(StageLiveness, ms(1))
		r.SetGates(0.5, true, 1, true)
		r.SetOutcome("headtalk", true, "accepted")
	}); n != 0 {
		t.Fatalf("active span recording allocates %v per run, want 0", n)
	}
}

func TestContextRoundTrip(t *testing.T) {
	r := NewRecorder("t-4")
	ctx := NewContext(context.Background(), r)
	if got := FromContext(ctx); got != r {
		t.Fatal("recorder lost in context")
	}
	if FromContext(context.Background()) != nil {
		t.Fatal("empty context returned a recorder")
	}
	if FromContext(nil) != nil { //nolint:staticcheck // nil-safety is the contract
		t.Fatal("nil context returned a recorder")
	}
	// A nil recorder must not taint the context.
	if got := NewContext(ctx, nil); got != ctx {
		t.Fatal("NewContext(nil) rewrapped the context")
	}
}

func TestStoreRingsAndSlowRetention(t *testing.T) {
	s := NewStore(4, ms(100))
	if s.Enabled() {
		t.Fatal("store starts enabled")
	}
	s.SetEnabled(true)
	if !s.Enabled() {
		t.Fatal("SetEnabled(true) did not stick")
	}

	add := func(id string, total time.Duration) {
		c := newTick()
		r := rec(c, id)
		c.Advance(total)
		s.Add(r.Finish())
	}
	add("slow-1", ms(150)) // above threshold: retained in both rings
	for i := 0; i < 6; i++ {
		add("fast", ms(1))
	}
	recent := s.Recent(0)
	if len(recent) != 4 {
		t.Fatalf("recent holds %d, want capacity 4", len(recent))
	}
	for _, tr := range recent {
		if tr.ID == "slow-1" {
			t.Fatal("slow trace should have been evicted from the recent ring by now")
		}
	}
	slow := s.Slow(0)
	if len(slow) != 1 || slow[0].ID != "slow-1" {
		t.Fatalf("slow ring %+v, want just slow-1", slow)
	}
	dropped, slowDropped := s.Dropped()
	if dropped != 3 || slowDropped != 0 {
		t.Fatalf("dropped = %d/%d, want 3/0", dropped, slowDropped)
	}
	// Newest first, bounded by max.
	if got := s.Recent(2); len(got) != 2 || got[0].ID != "fast" {
		t.Fatalf("Recent(2) = %+v", got)
	}
	// Disabling slow retention stops admissions.
	s.SetSlowThreshold(-1)
	add("slow-2", ms(500))
	if got := s.Slow(0); len(got) != 1 {
		t.Fatalf("slow ring grew while disabled: %+v", got)
	}
}

func TestStoreNewRecorderIDs(t *testing.T) {
	s := NewStore(0, 0)
	a, b := s.NewRecorder(), s.NewRecorder()
	if a.ID() == "" || a.ID() == b.ID() {
		t.Fatalf("ids not unique: %q %q", a.ID(), b.ID())
	}
	if s.SlowThreshold() != DefaultSlowThreshold {
		t.Fatalf("default slow threshold = %v", s.SlowThreshold())
	}
	// Nil store: all no-ops, nil recorder.
	var nilStore *Store
	if nilStore.NewRecorder() != nil || nilStore.Enabled() {
		t.Fatal("nil store misbehaved")
	}
	nilStore.Add(nil)
	nilStore.SetEnabled(true)
	if nilStore.Recent(1) != nil || nilStore.Slow(1) != nil {
		t.Fatal("nil store returned traces")
	}
}

func TestWriteTable(t *testing.T) {
	c := newTick()
	r := rec(c, "t-9")
	r.Observe(StageValidate, ms(1))
	r.Observe(StageLiveness, ms(42))
	r.Observe(StageOrientation, ms(136))
	c.Advance(ms(180))
	r.SetOutcome("headtalk", false, "not_facing")
	tr := r.Finish()

	var b strings.Builder
	if err := tr.WriteTable(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"validate", "liveness", "orientation", "decide", "total", "100.0%", "t-9", "not_facing"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

func TestTraceJSON(t *testing.T) {
	c := newTick()
	r := rec(c, "t-7")
	r.Observe(StageOrientation, ms(10))
	r.SetGates(0.9, true, -0.4, true)
	r.SetPlan([]int{0, 2, 3, 5}, 1)
	c.Advance(ms(12))
	r.SetOutcome("headtalk", false, "not_facing")
	data, err := json.Marshal(r.Finish())
	if err != nil {
		t.Fatal(err)
	}
	var w struct {
		ID           string  `json:"id"`
		TotalUS      int64   `json:"total_us"`
		Reason       string  `json:"reason"`
		LiveScore    float64 `json:"live_score"`
		PlanChannels []int   `json:"plan_channels"`
		Spans        []struct {
			Stage string `json:"stage"`
			DurUS int64  `json:"dur_us"`
		} `json:"spans"`
	}
	if err := json.Unmarshal(data, &w); err != nil {
		t.Fatal(err)
	}
	if w.ID != "t-7" || w.TotalUS != 12000 || w.Reason != "not_facing" || w.LiveScore != 0.9 {
		t.Fatalf("wire trace %+v from %s", w, data)
	}
	if len(w.PlanChannels) != 4 || len(w.Spans) != 2 || w.Spans[0].Stage != "orientation" {
		t.Fatalf("wire spans %+v", w)
	}
}
