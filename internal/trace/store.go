package trace

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Store retains finished traces in two fixed-capacity rings: a
// "recent" ring holding the last N decisions, and a "slow" ring that
// only admits traces at or above a configurable latency threshold —
// so a burst of fast decisions can never evict the tail-latency
// evidence the tracing exists to capture. Evictions are counted, like
// the core decision log.
//
// The Store also owns the tracing on/off switch and the trace ID
// sequence; a serving engine auto-creates recorders from its store
// while the switch is on, and callers may force one recorder through
// regardless (per-request tracing).
type Store struct {
	enabled atomic.Bool
	seq     atomic.Uint64
	slowNS  atomic.Int64

	mu          sync.Mutex
	recent      []*Trace
	recentStart int
	recentLen   int
	dropped     uint64

	slow        []*Trace
	slowStart   int
	slowLen     int
	slowDropped uint64
}

// DefaultCapacity is the recent-ring size when NewStore gets a
// non-positive capacity.
const DefaultCapacity = 256

// DefaultSlowThreshold marks decisions worth retaining unconditionally
// when NewStore gets a zero threshold.
const DefaultSlowThreshold = 250 * time.Millisecond

// NewStore sizes the rings. capacity <= 0 selects DefaultCapacity; the
// slow ring holds capacity/4 traces (at least 16). slowThreshold == 0
// selects DefaultSlowThreshold; negative disables slow retention.
// Tracing starts disabled — call SetEnabled(true) to turn it on.
func NewStore(capacity int, slowThreshold time.Duration) *Store {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	slowCap := capacity / 4
	if slowCap < 16 {
		slowCap = 16
	}
	if slowThreshold == 0 {
		slowThreshold = DefaultSlowThreshold
	}
	s := &Store{
		recent: make([]*Trace, capacity),
		slow:   make([]*Trace, slowCap),
	}
	s.slowNS.Store(int64(slowThreshold))
	return s
}

// SetEnabled flips automatic per-decision tracing on or off. Nil-safe.
func (s *Store) SetEnabled(on bool) {
	if s != nil {
		s.enabled.Store(on)
	}
}

// Enabled reports whether automatic tracing is on (false on nil).
func (s *Store) Enabled() bool { return s != nil && s.enabled.Load() }

// SlowThreshold returns the slow-decision retention threshold
// (negative = disabled).
func (s *Store) SlowThreshold() time.Duration {
	if s == nil {
		return -1
	}
	return time.Duration(s.slowNS.Load())
}

// SetSlowThreshold adjusts the slow-decision retention threshold at
// runtime; negative disables slow retention.
func (s *Store) SetSlowThreshold(d time.Duration) {
	if s != nil {
		s.slowNS.Store(int64(d))
	}
}

// NewRecorder starts a recorder with the store's next sequential ID.
// Nil-safe: a nil store returns a nil (no-op) recorder.
func (s *Store) NewRecorder() *Recorder {
	if s == nil {
		return nil
	}
	return NewRecorder(fmt.Sprintf("t-%06d", s.seq.Add(1)))
}

// Add retains a finished trace: always in the recent ring, and in the
// slow ring too when its Total meets the threshold. Nil store or nil
// trace is a no-op.
func (s *Store) Add(t *Trace) {
	if s == nil || t == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	pushRing(s.recent, &s.recentStart, &s.recentLen, &s.dropped, t)
	if thr := time.Duration(s.slowNS.Load()); thr >= 0 && t.Total >= thr {
		pushRing(s.slow, &s.slowStart, &s.slowLen, &s.slowDropped, t)
	}
}

// pushRing appends into a fixed ring, evicting (and counting) the
// oldest entry once full.
func pushRing(ring []*Trace, start, length *int, dropped *uint64, t *Trace) {
	if *length < len(ring) {
		ring[(*start+*length)%len(ring)] = t
		*length++
		return
	}
	ring[*start] = t
	*start = (*start + 1) % len(ring)
	*dropped++
}

// copyRing returns up to max entries, newest first.
func copyRing(ring []*Trace, start, length, max int) []*Trace {
	n := length
	if max > 0 && max < n {
		n = max
	}
	out := make([]*Trace, 0, n)
	for i := 0; i < n; i++ {
		// newest first: walk backwards from the last stored entry.
		idx := (start + length - 1 - i + len(ring)*2) % len(ring)
		out = append(out, ring[idx])
	}
	return out
}

// Recent returns up to max recent traces, newest first (max <= 0:
// all retained).
func (s *Store) Recent(max int) []*Trace {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return copyRing(s.recent, s.recentStart, s.recentLen, max)
}

// Slow returns up to max retained slow traces, newest first.
func (s *Store) Slow(max int) []*Trace {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return copyRing(s.slow, s.slowStart, s.slowLen, max)
}

// Dropped reports how many traces each ring has evicted.
func (s *Store) Dropped() (recent, slow uint64) {
	if s == nil {
		return 0, 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped, s.slowDropped
}
