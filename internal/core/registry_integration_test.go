package core

// Integration tests for the registry-backed model resolution path:
// fail-closed fused-ensemble arming, the array-fingerprint gate inside
// the decision pipeline, shadow evaluation, the adaptation hook, and
// atomic hot-swap under concurrent serving.

import (
	"context"
	"math/rand/v2"
	"sync"
	"testing"
	"time"

	"headtalk/internal/audio"
	"headtalk/internal/features"
	"headtalk/internal/liveness"
	"headtalk/internal/metrics"
	"headtalk/internal/registry"
)

// coloredRecording builds a 4-channel capture whose long-term spectrum
// is shaped by a moving-average low-pass of length taps — a stand-in
// for audio that crossed a playback chain the enrollment never saw
// (taps=1 is the "enrolled" white coloration markedRecording uses).
func coloredRecording(seed uint64, taps int) *audio.Recording {
	rng := rand.New(rand.NewPCG(seed, 123))
	n := 24000
	rec := audio.NewRecording(48000, 4, n)
	for c := range rec.Channels {
		raw := make([]float64, n+taps)
		for i := range raw {
			raw[i] = rng.NormFloat64()
		}
		for i := 0; i < n; i++ {
			var s float64
			for k := 0; k < taps; k++ {
				s += raw[i+k]
			}
			rec.Channels[c][i] = s / float64(taps)
		}
	}
	return rec
}

// trainedFingerprint enrolls an array fingerprint on the same
// white-ish coloration markedRecording produces, so marked recordings
// pass the gate and moving-average-colored ones do not.
func trainedFingerprint(t *testing.T) *liveness.ArrayFingerprint {
	t.Helper()
	var recs []*audio.Recording
	for i := 0; i < 4; i++ {
		recs = append(recs, markedRecording(i%2 == 0, uint64(400+i)))
	}
	fp, err := liveness.TrainArrayFingerprint(recs, liveness.FingerprintConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return fp
}

// registrySystem builds a System resolving models through the given
// provider, in HeadTalk mode.
func registrySystem(t *testing.T, provider registry.Provider) *System {
	t.Helper()
	featCfg := features.DefaultConfig(13, 48000)
	sys, err := NewSystem(Config{
		SessionTimeout: 10 * time.Second,
		Features:       featCfg,
		Models:         provider,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.SetMode(ModeHeadTalk)
	return sys
}

func TestRequireEnsembleFailsClosed(t *testing.T) {
	featCfg := features.DefaultConfig(13, 48000)
	m := trainedOrientation(t, featCfg)

	// Missing BOTH liveness models, and missing just one — every
	// combination short of a complete ensemble must reject.
	for name, set := range map[string]registry.ModelSet{
		"no-liveness-models": {Orientation: m, RequireEnsemble: true},
		"fingerprint-only":   {Orientation: m, RequireEnsemble: true, ArrayFingerprint: trainedFingerprint(t)},
	} {
		sys := registrySystem(t, registry.NewStatic(set))
		d, err := sys.ProcessWake(context.Background(), markedRecording(true, 41))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if d.Accepted || d.Reason != ReasonNoLiveness {
			t.Fatalf("%s: decision %+v, want fail-closed ReasonNoLiveness", name, d)
		}
	}
}

func TestFingerprintGateInPipeline(t *testing.T) {
	featCfg := features.DefaultConfig(13, 48000)
	set := registry.ModelSet{
		Orientation:      trainedOrientation(t, featCfg),
		ArrayFingerprint: trainedFingerprint(t),
	}
	sys := registrySystem(t, registry.NewStatic(set))

	// A facing capture through the enrolled coloration clears both the
	// fingerprint and orientation gates.
	d, err := sys.ProcessWake(context.Background(), markedRecording(true, 50))
	if err != nil {
		t.Fatal(err)
	}
	if !d.Accepted || !d.FingerprintRan || d.FingerprintScore < set.ArrayFingerprint.Threshold() {
		t.Fatalf("enrolled-coloration capture: %+v", d)
	}

	// The fingerprint gate is enforced even while that session is open:
	// a capture through a foreign playback chain cannot ride it.
	d, err = sys.ProcessWake(context.Background(), coloredRecording(51, 12))
	if err != nil {
		t.Fatal(err)
	}
	if d.Accepted || d.Reason != ReasonFingerprintMismatch || !d.FingerprintRan {
		t.Fatalf("foreign-coloration capture during session: %+v, want ReasonFingerprintMismatch", d)
	}
	if d.Reason.Slug() != "fingerprint_mismatch" {
		t.Fatalf("reason slug %q", d.Reason.Slug())
	}
}

func TestShadowEvaluationScoresAlongside(t *testing.T) {
	featCfg := features.DefaultConfig(13, 48000)
	active := trainedOrientation(t, featCfg)
	shadow := trainedOrientation(t, featCfg)

	var mu sync.Mutex
	var calls int
	var lastActive, lastShadow float64
	set := registry.ModelSet{
		Orientation: active,
		Shadow:      shadow,
		OnShadow: func(aPred, sPred int, aScore, sScore float64) {
			mu.Lock()
			calls++
			lastActive, lastShadow = aScore, sScore
			mu.Unlock()
		},
	}
	sys := registrySystem(t, registry.NewStatic(set))
	d, err := sys.ProcessWake(context.Background(), markedRecording(true, 60))
	if err != nil {
		t.Fatal(err)
	}
	if !d.Accepted || !d.ShadowRan {
		t.Fatalf("decision %+v, want accepted with shadow scored", d)
	}
	mu.Lock()
	defer mu.Unlock()
	if calls != 1 {
		t.Fatalf("OnShadow called %d times, want 1", calls)
	}
	if lastActive != d.FacingScore || lastShadow != d.ShadowScore {
		t.Fatalf("hook scores (%.4f, %.4f) vs decision (%.4f, %.4f)",
			lastActive, lastShadow, d.FacingScore, d.ShadowScore)
	}
	// The shadow's score must NOT decide: only the active model's does.
	if d.Reason != ReasonAccepted {
		t.Fatalf("reason %q", d.Reason)
	}
}

func TestOnAcceptedHookFiresWithFeatures(t *testing.T) {
	featCfg := features.DefaultConfig(13, 48000)
	var mu sync.Mutex
	var got []float64
	set := registry.ModelSet{
		Orientation: trainedOrientation(t, featCfg),
		OnAccepted: func(feats []float64, score float64) {
			cp := make([]float64, len(feats))
			copy(cp, feats)
			mu.Lock()
			got = cp
			mu.Unlock()
		},
	}
	sys := registrySystem(t, registry.NewStatic(set))
	d, err := sys.ProcessWake(context.Background(), markedRecording(true, 70))
	if err != nil {
		t.Fatal(err)
	}
	if !d.Accepted {
		t.Fatalf("decision %+v", d)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) == 0 {
		t.Fatal("OnAccepted did not fire with the decision's feature vector")
	}
	sys.EndSession()

	// Rejected decisions must not feed adaptation.
	got = nil
	if _, err := sys.ProcessWake(context.Background(), markedRecording(false, 71)); err != nil {
		t.Fatal(err)
	}
	if got != nil {
		t.Fatal("OnAccepted fired for a rejected decision")
	}
}

// TestHotSwapWhileServing promotes and rolls back orientation versions
// in a real registry while decisions stream through the system — the
// ISSUE's atomicity criterion, meant for -race. Every decision must
// resolve a complete, coherent set: no errors, no torn state.
func TestHotSwapWhileServing(t *testing.T) {
	featCfg := features.DefaultConfig(13, 48000)
	reg := registry.New(registry.Config{
		Metrics: metrics.NewRegistry(),
		Adapt:   registry.AdaptConfig{Disable: true},
	})
	v1, err := reg.Install(registry.KindOrientation, trainedOrientation(t, featCfg))
	if err != nil {
		t.Fatal(err)
	}
	v2, err := reg.AddModel(registry.KindOrientation, trainedOrientation(t, featCfg))
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Promote(registry.KindOrientation, v2); err != nil {
		t.Fatal(err)
	}
	sys := registrySystem(t, reg)

	const rounds = 30
	var wg sync.WaitGroup
	errs := make(chan error, 3)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			if i%2 == 0 {
				_ = reg.Promote(registry.KindOrientation, v1)
			} else {
				_, _ = reg.Rollback(registry.KindOrientation)
			}
		}
	}()
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				d, err := sys.ProcessWake(context.Background(), markedRecording(true, seed+uint64(i)))
				if err != nil {
					errs <- err
					return
				}
				if d.Reason == ReasonNoOrientation {
					errs <- context.DeadlineExceeded // any sentinel: a swap exposed a missing model
					return
				}
			}
		}(uint64(1000 * (w + 1)))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("decision failed during hot-swap storm: %v", err)
	}
}

func TestDeprecatedConfigFieldsStillServe(t *testing.T) {
	// The pre-registry configuration shape — raw Orientation/Liveness
	// fields, no Models provider — must keep deciding identically via
	// the static wrapper NewSystem installs.
	featCfg := features.DefaultConfig(13, 48000)
	m := trainedOrientation(t, featCfg)
	sys, err := NewSystem(Config{
		SessionTimeout: 10 * time.Second,
		Features:       featCfg,
		Orientation:    m,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.SetMode(ModeHeadTalk)
	if sys.ModelSet().Orientation != m {
		t.Fatal("legacy Orientation field not folded into the model set")
	}
	d, err := sys.ProcessWake(context.Background(), markedRecording(true, 80))
	if err != nil {
		t.Fatal(err)
	}
	if !d.Accepted {
		t.Fatalf("legacy-config decision %+v", d)
	}
}
