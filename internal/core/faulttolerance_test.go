package core

import (
	"context"
	"math"
	"testing"
	"time"

	"headtalk/internal/audio"
	"headtalk/internal/features"
	"headtalk/internal/orientation"
)

// Fail-closed fault-tolerance tests: every malformed or degraded input
// must surface as a *reject* with a typed reason — never an accept, in
// any mode. These pin the invariant the serving layer's chaos tests
// rely on.

// trainedFallback trains an orientation model on 3-channel features
// (channels 0-2 of the marked recordings) for the degraded-array
// fallback path.
func trainedFallback(t *testing.T, cfg features.Config, keep []int) *orientation.Model {
	t.Helper()
	var x [][]float64
	var y []int
	for i := 0; i < 14; i++ {
		facing := i%2 == 1
		rec := markedRecording(facing, uint64(i))
		sel, err := rec.Select(keep)
		if err != nil {
			t.Fatal(err)
		}
		f, err := features.Extract(sel, cfg)
		if err != nil {
			t.Fatal(err)
		}
		x = append(x, f)
		label := orientation.LabelNonFacing
		if facing {
			label = orientation.LabelFacing
		}
		y = append(y, label)
	}
	m, err := orientation.Train(x, y, orientation.ModelConfig{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestFailClosedOnBadInput(t *testing.T) {
	clipped := markedRecording(true, 31)
	for i, v := range clipped.Channels[0] {
		if v > 1 {
			clipped.Channels[0][i] = 1
		} else if v < -1 {
			clipped.Channels[0][i] = -1
		}
	}
	nan := markedRecording(true, 32)
	nan.Channels[1][100] = math.NaN()
	inf := markedRecording(true, 33)
	inf.Channels[2][200] = math.Inf(-1)
	ragged := markedRecording(true, 34)
	ragged.Channels[3] = ragged.Channels[3][:1000]
	wrongRate := markedRecording(true, 35)
	wrongRate.SampleRate = 44100

	cases := []struct {
		name string
		rec  *audio.Recording
		want audio.BadInputReason
	}{
		{"nil recording", nil, audio.BadNil},
		{"no channels", &audio.Recording{SampleRate: 48000}, audio.BadNoChannels},
		{"empty channels", audio.NewRecording(48000, 4, 0), audio.BadEmpty},
		{"ragged channels", ragged, audio.BadRagged},
		{"NaN samples", nan, audio.BadNonFinite},
		{"Inf samples", inf, audio.BadNonFinite},
		{"clipped channel", clipped, audio.BadClipped},
		{"truncated capture", audio.NewRecording(48000, 4, 100), audio.BadTooShort},
		{"wrong sample rate", wrongRate, audio.BadSampleRate},
	}
	clock := &fakeClock{now: time.Unix(1000, 0)}
	sys := testSystem(t, clock)
	for _, mode := range []Mode{ModeNormal, ModeMute, ModeHeadTalk} {
		sys.SetMode(mode)
		for _, tc := range cases {
			d, err := sys.ProcessWake(context.Background(), tc.rec)
			if d.Accepted {
				t.Fatalf("%s/%s: ACCEPTED malformed input %+v", mode, tc.name, d)
			}
			if d.Reason != ReasonBadInput {
				t.Fatalf("%s/%s: reason %q, want ReasonBadInput", mode, tc.name, d.Reason)
			}
			bad, ok := audio.AsBadInput(err)
			if !ok {
				t.Fatalf("%s/%s: err %v does not chain to ErrBadInput", mode, tc.name, err)
			}
			if bad.Reason != tc.want {
				t.Fatalf("%s/%s: bad-input reason %s, want %s", mode, tc.name, bad.Reason, tc.want)
			}
		}
	}
}

func TestDegradedBelowMinChannelsFailsClosed(t *testing.T) {
	clock := &fakeClock{now: time.Unix(1000, 0)}
	sys := testSystem(t, clock)
	sys.SetMode(ModeHeadTalk)

	// Sanity: the facing recording is accepted with a healthy array.
	rec := markedRecording(true, 40)
	d, err := sys.ProcessWake(context.Background(), rec)
	if err != nil || !d.Accepted {
		t.Fatalf("healthy-array facing decision %+v, err %v", d, err)
	}
	clock.Advance(time.Minute) // expire the session the accept opened

	// Kill 3 of 4 channels: 1 healthy survivor < MinChannels (2).
	for _, c := range []int{0, 2, 3} {
		for i := range rec.Channels[c] {
			rec.Channels[c][i] = 0
		}
	}
	d, err = sys.ProcessWake(context.Background(), rec)
	if err != nil {
		t.Fatal(err)
	}
	if d.Accepted || d.Reason != ReasonDegraded {
		t.Fatalf("degraded decision %+v, want ReasonDegraded reject", d)
	}
	if d.DegradedChannels != 3 {
		t.Fatalf("DegradedChannels = %d, want 3", d.DegradedChannels)
	}
}

func TestDegradedWithoutFallbackModelFailsClosed(t *testing.T) {
	clock := &fakeClock{now: time.Unix(1000, 0)}
	sys := testSystem(t, clock)
	sys.SetMode(ModeHeadTalk)

	// One dead channel: 3 healthy ≥ MinChannels, but the primary model
	// expects 4-channel features and no 3-channel fallback is enrolled.
	rec := markedRecording(true, 41)
	for i := range rec.Channels[1] {
		rec.Channels[1][i] = 0
	}
	d, err := sys.ProcessWake(context.Background(), rec)
	if err != nil {
		t.Fatal(err)
	}
	if d.Accepted || d.Reason != ReasonDegraded {
		t.Fatalf("decision %+v, want ReasonDegraded reject without fallback", d)
	}
	if d.DegradedChannels != 1 {
		t.Fatalf("DegradedChannels = %d, want 1", d.DegradedChannels)
	}
}

func TestDegradedFallbackModelKeepsDeciding(t *testing.T) {
	clock := &fakeClock{now: time.Unix(1000, 0)}
	featCfg := features.DefaultConfig(13, 48000)
	cfg := Config{
		SessionTimeout: 10 * time.Second,
		Clock:          clock.Now,
		Features:       featCfg,
		Orientation:    trainedOrientation(t, featCfg),
		OrientationByChannels: map[int]*orientation.Model{
			3: trainedFallback(t, featCfg, []int{0, 1, 2}),
		},
	}
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.SetMode(ModeHeadTalk)

	// Channel 3 dies; the 3-channel fallback must still separate facing
	// from non-facing instead of failing closed.
	facing := markedRecording(true, 43)
	for i := range facing.Channels[3] {
		facing.Channels[3][i] = 0
	}
	d, err := sys.ProcessWake(context.Background(), facing)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Accepted || d.Reason != ReasonAccepted {
		t.Fatalf("facing decision on degraded array %+v, want accept via fallback", d)
	}
	if d.DegradedChannels != 1 || !d.FacingRan {
		t.Fatalf("decision detail %+v", d)
	}
	clock.Advance(time.Minute) // expire the session the accept opened

	away := markedRecording(false, 44)
	for i := range away.Channels[3] {
		away.Channels[3][i] = 0
	}
	d, err = sys.ProcessWake(context.Background(), away)
	if err != nil {
		t.Fatal(err)
	}
	if d.Accepted || d.Reason != ReasonNotFacing {
		t.Fatalf("non-facing decision on degraded array %+v, want ReasonNotFacing", d)
	}
}

func TestRepairNonFiniteRecoversDecision(t *testing.T) {
	clock := &fakeClock{now: time.Unix(1000, 0)}
	featCfg := features.DefaultConfig(13, 48000)
	cfg := Config{
		SessionTimeout:  10 * time.Second,
		Clock:           clock.Now,
		Features:        featCfg,
		Orientation:     trainedOrientation(t, featCfg),
		RepairNonFinite: true,
	}
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.SetMode(ModeHeadTalk)

	rec := markedRecording(true, 45)
	for _, i := range []int{10, 500, 9000} {
		rec.Channels[0][i] = math.NaN()
	}
	rec.Channels[2][700] = math.Inf(1)
	d, err := sys.ProcessWake(context.Background(), rec)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Accepted {
		t.Fatalf("repaired facing decision %+v, want accept", d)
	}
	if d.RepairedSamples != 4 {
		t.Fatalf("RepairedSamples = %d, want 4", d.RepairedSamples)
	}
	// The caller's recording must be untouched (repair-on-copy).
	if !math.IsNaN(rec.Channels[0][10]) {
		t.Fatal("repair mutated the caller's recording")
	}
}
