package core

import (
	"context"
	"math"
	"testing"
	"time"

	"headtalk/internal/audio"
	"headtalk/internal/features"
)

// decisionsEqual compares everything about two decisions except the
// measured latencies (which are wall-clock and cannot match).
func decisionsEqual(t *testing.T, label string, want, got Decision) {
	t.Helper()
	if want.Accepted != got.Accepted || want.Reason != got.Reason ||
		want.LiveScore != got.LiveScore || want.LiveRan != got.LiveRan ||
		want.FacingScore != got.FacingScore || want.FacingRan != got.FacingRan ||
		want.DegradedChannels != got.DegradedChannels ||
		want.RepairedSamples != got.RepairedSamples {
		t.Fatalf("%s: sequential %+v, batch %+v", label, want, got)
	}
}

// A batch must decide every item exactly as back-to-back ProcessWake
// calls would — including session state evolving mid-batch when an
// accepted facing decision opens the session for the items after it.
func TestProcessWakeBatchMatchesSequential(t *testing.T) {
	recs := []*audio.Recording{
		markedRecording(false, 21),
		markedRecording(true, 22), // facing: opens the session mid-batch
		markedRecording(false, 23),
		markedRecording(true, 24),
	}

	clockA := &fakeClock{now: time.Unix(1000, 0)}
	seq := testSystem(t, clockA)
	seq.SetMode(ModeHeadTalk)
	clockB := &fakeClock{now: time.Unix(1000, 0)}
	bat := testSystem(t, clockB)
	bat.SetMode(ModeHeadTalk)

	var want []Decision
	for _, rec := range recs {
		d, err := seq.ProcessWake(context.Background(), rec)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, d)
	}

	reqs := make([]BatchRequest, len(recs))
	for i, rec := range recs {
		reqs[i] = BatchRequest{Ctx: context.Background(), Rec: rec}
	}
	results := bat.ProcessWakeBatch(reqs, nil)
	if len(results) != len(recs) {
		t.Fatalf("result count: want %d, got %d", len(recs), len(results))
	}
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("item %d: %v", i, res.Err)
		}
		decisionsEqual(t, "item", want[i], res.Decision)
	}
	// The facing accept at index 1 must have opened the session for the
	// non-facing follow-up at index 2, in the batch just as sequentially.
	if results[2].Decision.Reason != ReasonSessionActive {
		t.Fatalf("item 2 reason %q, want session shortcut", results[2].Decision.Reason)
	}
	if seq.SessionActive() != bat.SessionActive() {
		t.Fatal("session state diverged")
	}
}

// Mixed batches: bad input, muted mode and plain decisions all keep
// their per-item semantics.
func TestProcessWakeBatchMixedOutcomes(t *testing.T) {
	clock := &fakeClock{now: time.Unix(1000, 0)}
	sys := testSystem(t, clock)
	sys.SetMode(ModeHeadTalk)

	badRec := markedRecording(false, 31)
	badRec.Channels[0][10] = math.Inf(1) // fails validation

	reqs := []BatchRequest{
		{Ctx: context.Background(), Rec: badRec},
		{Ctx: context.Background(), Rec: markedRecording(false, 32)},
		{Ctx: context.Background(), Rec: markedRecording(true, 33)},
	}
	results := sys.ProcessWakeBatch(reqs, nil)
	if results[0].Err == nil || results[0].Decision.Reason != ReasonBadInput {
		t.Fatalf("bad input item: %+v", results[0])
	}
	if results[1].Err != nil || results[1].Decision.Reason != ReasonNotFacing {
		t.Fatalf("non-facing item: %+v", results[1])
	}
	if results[2].Err != nil || !results[2].Decision.Accepted {
		t.Fatalf("facing item: %+v", results[2])
	}
	if len(sys.History()) != 3 {
		t.Fatalf("history %d events, want 3", len(sys.History()))
	}

	sys.SetMode(ModeMute)
	results = sys.ProcessWakeBatch(reqs[1:], results)
	for i, res := range results {
		if res.Decision.Reason != ReasonMuted {
			t.Fatalf("muted item %d: %+v", i, res)
		}
	}
}

// An empty batch is a no-op.
func TestProcessWakeBatchEmpty(t *testing.T) {
	clock := &fakeClock{now: time.Unix(1000, 0)}
	sys := testSystem(t, clock)
	if got := sys.ProcessWakeBatch(nil, nil); len(got) != 0 {
		t.Fatalf("empty batch returned %d results", len(got))
	}
}

// Steady-state ProcessWake — an open session, warm per-worker arena —
// must not allocate at all. This is the pin the serving throughput
// work rests on: the validate + health + session bookkeeping path runs
// allocation-free end to end.
func TestProcessWakeSessionSteadyStateAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; pin holds in normal builds")
	}
	clock := &fakeClock{now: time.Unix(1000, 0)}
	sys := testSystem(t, clock)
	sys.SetMode(ModeHeadTalk)
	p := sys.NewPreprocessor()
	ctx := context.Background()

	// Open the session with a facing decision, then warm the arena.
	rec := markedRecording(true, 41)
	d, err := sys.ProcessWakeWith(ctx, p, rec)
	if err != nil || !d.Accepted {
		t.Fatalf("warm-up decision %+v, %v", d, err)
	}
	follow := markedRecording(false, 42)
	if d, err = sys.ProcessWakeWith(ctx, p, follow); err != nil || d.Reason != ReasonSessionActive {
		t.Fatalf("session follow-up %+v, %v", d, err)
	}

	allocs := testing.AllocsPerRun(10, func() {
		d, err := sys.ProcessWakeWith(ctx, p, follow)
		if err != nil || d.Reason != ReasonSessionActive {
			t.Fatalf("steady-state decision %+v, %v", d, err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state ProcessWake allocated %.1f times per run, want 0", allocs)
	}
}

// The full orientation path — band-pass, GCC/SRP features, SVM scoring
// — must also be allocation-free once the arena is warm. Sessions are
// disabled (negative timeout) so every decision runs the whole gate.
func TestProcessWakeOrientationPathAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; pin holds in normal builds")
	}
	clock := &fakeClock{now: time.Unix(1000, 0)}
	featCfg := features.DefaultConfig(13, 48000)
	sys, err := NewSystem(Config{
		SessionTimeout: -time.Second, // sessions expire instantly
		Clock:          clock.Now,
		Features:       featCfg,
		Orientation:    trainedOrientation(t, featCfg),
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.SetMode(ModeHeadTalk)
	p := sys.NewPreprocessor()
	ctx := context.Background()

	rec := markedRecording(true, 43)
	d, perr := sys.ProcessWakeWith(ctx, p, rec) // warm-up
	if perr != nil || !d.FacingRan {
		t.Fatalf("warm-up decision %+v, %v", d, perr)
	}
	allocs := testing.AllocsPerRun(10, func() {
		d, err := sys.ProcessWakeWith(ctx, p, rec)
		if err != nil || !d.FacingRan {
			t.Fatalf("orientation decision %+v, %v", d, err)
		}
	})
	if allocs != 0 {
		t.Fatalf("orientation-path ProcessWake allocated %.1f times per run, want 0", allocs)
	}
}

// The batched path reuses its arena too: after a warm-up batch, a
// repeat batch of the same shape must not allocate (beyond the
// session-state variance handled by disabling sessions).
func TestProcessWakeBatchAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; pin holds in normal builds")
	}
	clock := &fakeClock{now: time.Unix(1000, 0)}
	featCfg := features.DefaultConfig(13, 48000)
	sys, err := NewSystem(Config{
		SessionTimeout: -time.Second,
		Clock:          clock.Now,
		Features:       featCfg,
		Orientation:    trainedOrientation(t, featCfg),
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.SetMode(ModeHeadTalk)
	p := sys.NewPreprocessor()

	reqs := []BatchRequest{
		{Ctx: context.Background(), Rec: markedRecording(true, 51)},
		{Ctx: context.Background(), Rec: markedRecording(false, 52)},
		{Ctx: context.Background(), Rec: markedRecording(true, 53)},
	}
	results := sys.ProcessWakeBatchWith(p, reqs, nil) // warm-up
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("warm-up item %d: %v", i, res.Err)
		}
	}
	allocs := testing.AllocsPerRun(10, func() {
		results = sys.ProcessWakeBatchWith(p, reqs, results)
		if len(results) != len(reqs) {
			t.Fatal("short batch")
		}
	})
	if allocs != 0 {
		t.Fatalf("warm batch allocated %.1f times per run, want 0", allocs)
	}
}
