package core

import (
	"context"
	"math"
	"math/rand/v2"
	"testing"
	"time"

	"headtalk/internal/audio"
	"headtalk/internal/dsp"
	"headtalk/internal/features"
	"headtalk/internal/orientation"
)

// fakeClock is a controllable time source.
type fakeClock struct {
	now time.Time
}

func (c *fakeClock) Now() time.Time          { return c.now }
func (c *fakeClock) Advance(d time.Duration) { c.now = c.now.Add(d) }

// trainedOrientation builds a tiny model whose facing decision depends
// on a synthetic "marker": recordings built by markedRecording with
// facing=true produce a strong positive first GCC-feature pattern. We
// train on real extracted features from the two recording families so
// the full ProcessWake path runs.
func trainedOrientation(t *testing.T, cfg features.Config) *orientation.Model {
	t.Helper()
	var x [][]float64
	var y []int
	for i := 0; i < 14; i++ {
		facing := i%2 == 1
		rec := markedRecording(facing, uint64(i))
		f, err := features.Extract(rec, cfg)
		if err != nil {
			t.Fatal(err)
		}
		x = append(x, f)
		label := orientation.LabelNonFacing
		if facing {
			label = orientation.LabelFacing
		}
		y = append(y, label)
	}
	m, err := orientation.Train(x, y, orientation.ModelConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// markedRecording builds a 4-channel recording whose inter-channel
// coherence differs by class: "facing" recordings share one source
// across channels with small delays (strong GCC peak); "non-facing"
// recordings use independent noise (no coherent peak).
func markedRecording(facing bool, seed uint64) *audio.Recording {
	rng := rand.New(rand.NewPCG(seed, 99))
	n := 24000
	rec := audio.NewRecording(48000, 4, n)
	if facing {
		src := make([]float64, n+8)
		for i := range src {
			src[i] = rng.NormFloat64()
		}
		for c := 0; c < 4; c++ {
			copy(rec.Channels[c], src[c:c+n])
			for i := range rec.Channels[c] {
				rec.Channels[c][i] += 0.1 * rng.NormFloat64()
			}
		}
	} else {
		for c := 0; c < 4; c++ {
			for i := range rec.Channels[c] {
				rec.Channels[c][i] = rng.NormFloat64()
			}
		}
	}
	return rec
}

func testSystem(t *testing.T, clock *fakeClock) *System {
	t.Helper()
	cfg := Config{
		SessionTimeout: 10 * time.Second,
		Clock:          clock.Now,
	}
	featCfg := features.DefaultConfig(13, 48000)
	cfg.Features = featCfg
	cfg.Orientation = trainedOrientation(t, featCfg)
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestModeStrings(t *testing.T) {
	if ModeNormal.String() != "normal" || ModeMute.String() != "mute" || ModeHeadTalk.String() != "headtalk" {
		t.Error("mode names wrong")
	}
	if Mode(42).String() != "unknown" {
		t.Error("unknown mode should say so")
	}
}

func TestNewSystemValidation(t *testing.T) {
	if _, err := NewSystem(Config{SampleRate: 16000, BandpassHigh: 16000}); err == nil {
		t.Error("expected error for bandpass above Nyquist")
	}
	sys, err := NewSystem(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Mode() != ModeNormal {
		t.Error("new system should start in Normal mode")
	}
}

func TestNormalModeAcceptsEverything(t *testing.T) {
	clock := &fakeClock{now: time.Unix(1000, 0)}
	sys := testSystem(t, clock)
	d, err := sys.ProcessWake(context.Background(), markedRecording(false, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !d.Accepted || d.Reason != ReasonNormalMode {
		t.Errorf("normal mode decision %+v", d)
	}
}

func TestMuteModeRejectsEverything(t *testing.T) {
	clock := &fakeClock{now: time.Unix(1000, 0)}
	sys := testSystem(t, clock)
	sys.SetMode(ModeMute)
	d, err := sys.ProcessWake(context.Background(), markedRecording(true, 2))
	if err != nil {
		t.Fatal(err)
	}
	if d.Accepted || d.Reason != ReasonMuted {
		t.Errorf("mute mode decision %+v", d)
	}
}

func TestHeadTalkModeOrientationGate(t *testing.T) {
	clock := &fakeClock{now: time.Unix(1000, 0)}
	sys := testSystem(t, clock)
	sys.SetMode(ModeHeadTalk)

	d, err := sys.ProcessWake(context.Background(), markedRecording(true, 20))
	if err != nil {
		t.Fatal(err)
	}
	if !d.Accepted || d.Reason != ReasonAccepted {
		t.Fatalf("facing recording rejected: %+v", d)
	}
	if !d.FacingRan {
		t.Error("orientation gate did not run")
	}
	sys.EndSession()

	d, err = sys.ProcessWake(context.Background(), markedRecording(false, 21))
	if err != nil {
		t.Fatal(err)
	}
	if d.Accepted || d.Reason != ReasonNotFacing {
		t.Fatalf("non-facing recording accepted: %+v", d)
	}
}

func TestSessionSkipsFacingCheck(t *testing.T) {
	clock := &fakeClock{now: time.Unix(1000, 0)}
	sys := testSystem(t, clock)
	sys.SetMode(ModeHeadTalk)

	if _, err := sys.ProcessWake(context.Background(), markedRecording(true, 30)); err != nil {
		t.Fatal(err)
	}
	if !sys.SessionActive() {
		t.Fatal("session should open after a facing accept")
	}
	// A non-facing follow-up within the session is accepted.
	d, err := sys.ProcessWake(context.Background(), markedRecording(false, 31))
	if err != nil {
		t.Fatal(err)
	}
	if !d.Accepted || d.Reason != ReasonSessionActive {
		t.Errorf("in-session follow-up %+v", d)
	}
	// After the timeout, facing is required again.
	clock.Advance(11 * time.Second)
	if sys.SessionActive() {
		t.Error("session should expire")
	}
	d, err = sys.ProcessWake(context.Background(), markedRecording(false, 32))
	if err != nil {
		t.Fatal(err)
	}
	if d.Accepted {
		t.Errorf("post-expiry non-facing accepted: %+v", d)
	}
}

func TestSetModeClosesSession(t *testing.T) {
	clock := &fakeClock{now: time.Unix(1000, 0)}
	sys := testSystem(t, clock)
	sys.SetMode(ModeHeadTalk)
	if _, err := sys.ProcessWake(context.Background(), markedRecording(true, 40)); err != nil {
		t.Fatal(err)
	}
	sys.SetMode(ModeHeadTalk) // re-entering a mode resets the session
	if sys.SessionActive() {
		t.Error("SetMode should close the session")
	}
}

func TestNoOrientationModelRejects(t *testing.T) {
	clock := &fakeClock{now: time.Unix(1000, 0)}
	sys, err := NewSystem(Config{Clock: clock.Now})
	if err != nil {
		t.Fatal(err)
	}
	sys.SetMode(ModeHeadTalk)
	d, err := sys.ProcessWake(context.Background(), markedRecording(true, 50))
	if err != nil {
		t.Fatal(err)
	}
	if d.Accepted || d.Reason != ReasonNoOrientation {
		t.Errorf("decision without model %+v", d)
	}
}

func TestHistoryLog(t *testing.T) {
	clock := &fakeClock{now: time.Unix(1000, 0)}
	sys := testSystem(t, clock)
	for i := 0; i < 3; i++ {
		if _, err := sys.ProcessWake(context.Background(), markedRecording(true, uint64(60+i))); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(sys.History()); got != 3 {
		t.Errorf("history length %d", got)
	}
	sys.ClearHistory()
	if len(sys.History()) != 0 {
		t.Error("ClearHistory did not clear")
	}
}

func TestPreprocessBandpass(t *testing.T) {
	sys, err := NewSystem(Config{})
	if err != nil {
		t.Fatal(err)
	}
	// A 30 Hz rumble must be strongly attenuated while a 1 kHz tone
	// passes. Measure each component separately to avoid FFT leakage
	// confounds.
	level := func(freq float64) float64 {
		rec := audio.NewRecording(48000, 1, 48000)
		for i := range rec.Channels[0] {
			ti := float64(i) / 48000
			rec.Channels[0][i] = math.Sin(2 * math.Pi * freq * ti)
		}
		pre, err := sys.Preprocess(rec)
		if err != nil {
			t.Fatal(err)
		}
		// Skip the filter transient.
		return dsp.RMS(pre.Channels[0][12000:])
	}
	rumble := level(30)
	tone := level(1000)
	if db := 20 * math.Log10(rumble/tone); db > -35 {
		t.Errorf("30 Hz attenuated only %.1f dB relative to 1 kHz", db)
	}
}

func TestConcurrentAccess(t *testing.T) {
	clock := &fakeClock{now: time.Unix(1000, 0)}
	sys := testSystem(t, clock)
	sys.SetMode(ModeHeadTalk)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 10; i++ {
			sys.SetMode(ModeHeadTalk)
			sys.SessionActive()
			sys.History()
		}
	}()
	for i := 0; i < 5; i++ {
		if _, err := sys.ProcessWake(context.Background(), markedRecording(i%2 == 0, uint64(70+i))); err != nil {
			t.Fatal(err)
		}
	}
	<-done
}

// TestDeprecatedWakeWrappersDelegate pins the API consolidation: the
// old ProcessWakeCtx / ProcessWakeWithCtx names remain as thin
// wrappers over the context-first ProcessWake / ProcessWakeWith and
// produce identical decisions.
func TestDeprecatedWakeWrappersDelegate(t *testing.T) {
	clock := &fakeClock{now: time.Unix(1000, 0)}
	sys := testSystem(t, clock)
	sys.SetMode(ModeHeadTalk)
	ctx := context.Background()

	want, err := sys.ProcessWake(ctx, markedRecording(true, 90))
	if err != nil {
		t.Fatal(err)
	}
	sys.EndSession() // the accept opened a session; reset between calls

	got, err := sys.ProcessWakeCtx(ctx, markedRecording(true, 90))
	if err != nil {
		t.Fatal(err)
	}
	sys.EndSession()
	if got.Accepted != want.Accepted || got.Reason != want.Reason {
		t.Fatalf("ProcessWakeCtx = %+v, ProcessWake = %+v", got, want)
	}

	p := sys.NewPreprocessor()
	got, err = sys.ProcessWakeWithCtx(ctx, p, markedRecording(true, 90))
	if err != nil {
		t.Fatal(err)
	}
	if got.Accepted != want.Accepted || got.Reason != want.Reason {
		t.Fatalf("ProcessWakeWithCtx = %+v, ProcessWake = %+v", got, want)
	}
}
