// Package core implements the HeadTalk privacy control itself (paper
// Fig. 1 and Fig. 2): the preprocessing stage, the liveness gate, the
// orientation gate, the Normal/Mute/HeadTalk mode state machine and
// the face-once session semantics. The other internal packages are the
// substrates this one composes.
package core

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"headtalk/internal/audio"
	"headtalk/internal/dsp"
	"headtalk/internal/features"
	"headtalk/internal/liveness"
	"headtalk/internal/metrics"
	"headtalk/internal/mic"
	"headtalk/internal/orientation"
	"headtalk/internal/registry"
	"headtalk/internal/trace"
)

// Mode is the assistant's privacy mode (paper Fig. 1).
type Mode int

// Privacy modes.
const (
	// ModeNormal accepts every detected wake word, like a stock VA.
	ModeNormal Mode = iota
	// ModeMute rejects everything; the physical mute button.
	ModeMute
	// ModeHeadTalk accepts a wake word only from a live human facing
	// the device.
	ModeHeadTalk
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case ModeNormal:
		return "normal"
	case ModeMute:
		return "mute"
	case ModeHeadTalk:
		return "headtalk"
	default:
		return "unknown"
	}
}

// Reason explains a decision.
type Reason string

// Decision reasons.
const (
	ReasonAccepted       Reason = "accepted"
	ReasonMuted          Reason = "device muted"
	ReasonNotLive        Reason = "rejected: mechanical speaker detected"
	ReasonNotFacing      Reason = "rejected: speaker not facing the device"
	ReasonSessionActive  Reason = "accepted: session already active"
	ReasonNormalMode     Reason = "accepted: normal mode"
	ReasonNoOrientation  Reason = "rejected: no orientation model enrolled"
	ReasonNoLiveness     Reason = "rejected: no liveness model trained"
	ReasonProcessingFail Reason = "rejected: processing error"
	// ReasonBadInput: the recording failed input validation (NaN/Inf
	// samples, clipping, truncation, sample-rate mismatch). Applied in
	// every mode — a privacy control fails closed on garbage input.
	ReasonBadInput Reason = "rejected: malformed input"
	// ReasonDegraded: too few healthy microphone channels survived the
	// per-channel health check to make a trustworthy decision.
	ReasonDegraded Reason = "rejected: microphone array degraded below minimum channels"
	// ReasonPanic: the pipeline panicked mid-decision; the serving
	// layer converts the recovered panic into this fail-closed reject.
	ReasonPanic Reason = "rejected: pipeline panic"
	// ReasonFingerprintMismatch: the capture's spectral profile does
	// not match the enrolled array fingerprint — it crossed an
	// electro-acoustic chain (or a microphone array) the enrollment
	// never saw.
	ReasonFingerprintMismatch Reason = "rejected: capture does not match enrolled array fingerprint"
	// ReasonUnhealthy: the serving engine's circuit breaker is open
	// after repeated pipeline failures; decisions fail closed without
	// running the pipeline.
	ReasonUnhealthy Reason = "rejected: serving engine unhealthy"
)

// Slug returns a short machine-friendly identifier for the reason,
// used as a metrics label segment.
func (r Reason) Slug() string {
	switch r {
	case ReasonAccepted:
		return "accepted"
	case ReasonMuted:
		return "muted"
	case ReasonNotLive:
		return "not_live"
	case ReasonNotFacing:
		return "not_facing"
	case ReasonSessionActive:
		return "session_active"
	case ReasonNormalMode:
		return "normal_mode"
	case ReasonNoOrientation:
		return "no_orientation"
	case ReasonNoLiveness:
		return "no_liveness"
	case ReasonProcessingFail:
		return "processing_fail"
	case ReasonBadInput:
		return "bad_input"
	case ReasonDegraded:
		return "degraded"
	case ReasonPanic:
		return "panic"
	case ReasonFingerprintMismatch:
		return "fingerprint_mismatch"
	case ReasonUnhealthy:
		return "unhealthy"
	default:
		return "unknown"
	}
}

// Decision is the outcome of processing one wake-word utterance.
type Decision struct {
	Accepted bool
	Reason   Reason
	// LiveScore is the probability the audio is live human speech
	// (only meaningful when the liveness gate ran).
	LiveScore float64
	LiveRan   bool
	// FacingScore is the orientation classifier margin (positive =
	// facing) when the orientation gate ran.
	FacingScore float64
	FacingRan   bool
	// FingerprintScore is the array-fingerprint similarity in (0, 1]
	// when that liveness gate ran (fused ensemble).
	FingerprintScore float64
	FingerprintRan   bool
	// ShadowScore is the shadow (candidate) orientation model's margin
	// when a registry had a version under shadow evaluation. It never
	// affects Accepted.
	ShadowScore float64
	ShadowRan   bool
	// Latencies of the two gates (paper §IV-B15 reports 42 ms and
	// 136 ms on a PC).
	LivenessLatency    time.Duration
	OrientationLatency time.Duration
	// DegradedChannels counts microphone channels the health check
	// scored as dead/stuck/low-SNR (HeadTalk mode only).
	DegradedChannels int
	// RepairedSamples counts non-finite samples zeroed by input repair
	// before the decision ran (Config.RepairNonFinite).
	RepairedSamples int
}

// Config assembles a System.
type Config struct {
	// SampleRate of incoming recordings (default 48 kHz).
	SampleRate float64
	// BandpassLow/BandpassHigh bound the preprocessing filter
	// (defaults 100 Hz / 16 kHz; paper §III).
	BandpassLow, BandpassHigh float64
	// BandpassOrder is the Butterworth order (default 5).
	BandpassOrder int
	// SessionTimeout: once a facing wake word opens a session, further
	// commands within the window skip the facing check (the user "does
	// not need to continuously face the device for the remaining
	// session"). Default 30 s.
	SessionTimeout time.Duration
	// Models resolves the trained gates for every decision. This is
	// the model-attachment API: pass a *registry.Registry for
	// versioned models with hot-swap, rollback, shadow evaluation and
	// online adaptation, or registry.NewStatic for a fixed set. When
	// nil, NewSystem wraps the deprecated raw fields below into a
	// static single-version provider, so existing configurations keep
	// working unchanged.
	Models registry.Provider
	// Liveness and Orientation are the trained gates. Either may be
	// nil: a nil liveness detector skips the human/mechanical check, a
	// nil orientation model causes HeadTalk mode to reject with
	// ReasonNoOrientation.
	//
	// Deprecated: set Models instead. These fields are read only when
	// Models is nil, in which case NewSystem folds them (together with
	// OrientationByChannels) into a registry.Static provider.
	Liveness    *liveness.Detector
	Orientation *orientation.Model
	// LivenessThreshold is the minimum live score (default 0.5).
	LivenessThreshold float64
	// Features configures orientation feature extraction. A zero
	// MaxLag defaults to 13 samples (the D2 array at 48 kHz).
	Features features.Config
	// ChannelSubset selects which recording channels feed the
	// orientation gate (nil = all channels). The paper uses 4-mic
	// subsets by default.
	ChannelSubset []int
	// InputValidation tunes the pre-DSP input hardening stage (its
	// SampleRate defaults to this config's SampleRate). Recordings that
	// fail validation are rejected with ReasonBadInput in every mode.
	// DisableInputValidation turns the stage off (the system then fails
	// open on malformed input — test/bench use only).
	InputValidation        audio.ValidateOptions
	DisableInputValidation bool
	// RepairNonFinite, when true, zeroes isolated NaN/Inf samples (on a
	// copy) instead of rejecting the recording, provided they are the
	// only validation failure.
	RepairNonFinite bool
	// ChannelHealth tunes the per-channel dead/stuck/low-SNR scoring
	// that gates HeadTalk-mode decisions; DisableChannelHealth turns
	// degraded-array handling off.
	ChannelHealth        mic.HealthConfig
	DisableChannelHealth bool
	// MinChannels is the smallest healthy-channel count the orientation
	// gate will decide with (default 2); below it the decision fails
	// closed with ReasonDegraded.
	MinChannels int
	// OrientationByChannels maps a channel count to a fallback
	// orientation model trained for that count. When the array degrades
	// below the primary subset size but at least MinChannels survive,
	// the gate recomputes the GCC/SRP pair set over the surviving
	// channels and scores with the matching fallback model; with no
	// matching entry the decision fails closed with ReasonDegraded
	// (a model trained on k channels cannot score a k'-channel feature
	// vector).
	//
	// Deprecated: set Models instead (see Liveness/Orientation above).
	OrientationByChannels map[int]*orientation.Model
	// LogCapacity bounds the decision log. A long-running daemon
	// otherwise grows the log without limit; once full, the oldest
	// events are dropped and counted. Default 1024.
	LogCapacity int
	// Metrics, when non-nil, receives per-decision instrumentation:
	// accept/reject counters by Reason, per-gate latency histograms
	// and preprocessing latency. The registry may be shared with a
	// serving engine.
	Metrics *metrics.Registry
	// Clock abstracts time for session handling (tests inject a fake);
	// nil uses time.Now.
	Clock func() time.Time
}

// System is a HeadTalk privacy controller. It is safe for concurrent
// use.
type System struct {
	mu          sync.Mutex
	mode        Mode
	cfg         Config
	sessionOpen bool
	sessionEnd  time.Time

	// Decision log as a fixed-capacity ring: log has capacity
	// cfg.LogCapacity, logStart indexes the oldest event, logLen counts
	// stored events, dropped counts evicted ones.
	log      []Event
	logStart int
	logLen   int
	dropped  uint64

	// bp holds the Butterworth band-pass designed once at NewSystem;
	// its coefficients are immutable and cloned into per-goroutine
	// Preprocessors, so the hot path never redoes the design trig.
	bp      *dsp.IIRFilter
	prePool sync.Pool

	ins *instruments
}

// instruments caches the system's metric handles so the hot path
// never takes the registry lock.
type instruments struct {
	decisions  *metrics.Counter
	accepted   *metrics.Counter
	rejected   *metrics.Counter
	byReason   map[Reason]*metrics.Counter
	preprocess *metrics.Histogram
	liveGate   *metrics.Histogram
	fpGate     *metrics.Histogram
	orientGate *metrics.Histogram
	logDropped *metrics.Counter

	// Fault-health instrumentation: input rejections by validation
	// reason, repaired samples, and the degraded-channel count of the
	// most recent health check.
	inputRejected     map[audio.BadInputReason]*metrics.Counter
	inputRepaired     *metrics.Counter
	channelsDegraded  *metrics.Gauge
	degradedDecisions *metrics.Counter
}

func newInstruments(r *metrics.Registry) *instruments {
	ins := &instruments{
		decisions:         r.Counter("headtalk.decisions.total"),
		accepted:          r.Counter("headtalk.decisions.accepted"),
		rejected:          r.Counter("headtalk.decisions.rejected"),
		byReason:          make(map[Reason]*metrics.Counter),
		preprocess:        r.Histogram("headtalk.preprocess.latency", nil),
		liveGate:          r.Histogram("headtalk.gate.liveness.latency", nil),
		fpGate:            r.Histogram("headtalk.gate.fingerprint.latency", nil),
		orientGate:        r.Histogram("headtalk.gate.orientation.latency", nil),
		logDropped:        r.Counter("headtalk.log.dropped"),
		inputRejected:     make(map[audio.BadInputReason]*metrics.Counter),
		inputRepaired:     r.Counter("headtalk.input.repaired.samples"),
		channelsDegraded:  r.Gauge("headtalk.channels.degraded"),
		degradedDecisions: r.Counter("headtalk.degraded.decisions"),
	}
	for _, reason := range []Reason{
		ReasonAccepted, ReasonMuted, ReasonNotLive, ReasonNotFacing,
		ReasonSessionActive, ReasonNormalMode, ReasonNoOrientation,
		ReasonNoLiveness, ReasonProcessingFail,
		ReasonBadInput, ReasonDegraded, ReasonPanic, ReasonUnhealthy,
		ReasonFingerprintMismatch,
	} {
		ins.byReason[reason] = r.Counter("headtalk.decisions.reason." + reason.Slug())
	}
	for _, reason := range audio.BadInputReasons() {
		ins.inputRejected[reason] = r.Counter("headtalk.input.rejected." + string(reason))
	}
	return ins
}

// Event is one entry in the system's decision log (the paper's
// command-history privacy control).
type Event struct {
	Time     time.Time
	Mode     Mode
	Decision Decision
}

// NewSystem validates the configuration and returns a system in
// Normal mode.
func NewSystem(cfg Config) (*System, error) {
	if cfg.SampleRate == 0 {
		cfg.SampleRate = 48000
	}
	if cfg.BandpassLow == 0 {
		cfg.BandpassLow = 100
	}
	if cfg.BandpassHigh == 0 {
		cfg.BandpassHigh = 16000
	}
	if cfg.BandpassOrder == 0 {
		cfg.BandpassOrder = 5
	}
	if cfg.SessionTimeout == 0 {
		cfg.SessionTimeout = 30 * time.Second
	}
	if cfg.LivenessThreshold == 0 {
		cfg.LivenessThreshold = 0.5
	}
	if cfg.LogCapacity == 0 {
		cfg.LogCapacity = 1024
	}
	if cfg.LogCapacity < 1 {
		cfg.LogCapacity = 1
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if cfg.MinChannels == 0 {
		cfg.MinChannels = 2
	}
	if cfg.InputValidation.SampleRate == 0 {
		cfg.InputValidation.SampleRate = cfg.SampleRate
	}
	if cfg.BandpassHigh >= cfg.SampleRate/2 {
		return nil, fmt.Errorf("core: bandpass high %g Hz >= Nyquist %g", cfg.BandpassHigh, cfg.SampleRate/2)
	}
	if cfg.Features.MaxLag == 0 {
		cfg.Features = features.DefaultConfig(13, cfg.SampleRate)
	}
	bp, err := dsp.NewButterworthBandPass(cfg.BandpassOrder, cfg.BandpassLow, cfg.BandpassHigh, cfg.SampleRate)
	if err != nil {
		return nil, fmt.Errorf("core: designing bandpass: %w", err)
	}
	if cfg.Models == nil {
		// Compatibility: fold the deprecated raw model fields into a
		// static single-version provider so pre-registry configs keep
		// working byte-for-byte.
		cfg.Models = registry.NewStatic(registry.ModelSet{
			Orientation:           cfg.Orientation,
			OrientationByChannels: cfg.OrientationByChannels,
			Liveness:              cfg.Liveness,
		})
	}
	s := &System{mode: ModeNormal, cfg: cfg, bp: bp}
	s.prePool.New = func() any { return s.NewPreprocessor() }
	if cfg.Metrics != nil {
		s.ins = newInstruments(cfg.Metrics)
	}
	return s, nil
}

// Preprocessor owns the per-goroutine DSP state (the band-pass biquad
// cascade) and the scratch arena for the paper's preprocessing stage
// and downstream feature path. Each serving worker holds its own
// Preprocessor so concurrent decisions never contend on filter state
// or a lock, and so a warm worker's steady-state ProcessWake allocates
// nothing: the band-passed samples, channel-health scoring, channel
// plan, GCC/SRP workspace, feature vectors and standardized classifier
// input all live in buffers the Preprocessor reuses. A Preprocessor
// must not be used from more than one goroutine at a time.
type Preprocessor struct {
	bp  *dsp.IIRFilter
	ins *instruments

	// Arena: single-decision scratch.
	plan      planScratch
	preBack   []float64
	preChans  [][]float64
	preRec    audio.Recording
	selChans  [][]float64
	selRec    audio.Recording
	mono          []float64
	feats         features.Workspace
	mlScratch     []float64
	shadowScratch []float64

	// Arena: batch scratch (ProcessWakeBatchWith).
	batch batchScratch
}

// NewPreprocessor clones the system's designed band-pass into an
// independent preprocessing pipeline.
func (s *System) NewPreprocessor() *Preprocessor {
	return &Preprocessor{bp: s.bp.Clone(), ins: s.ins}
}

// Config returns a copy of the system's resolved configuration (every
// default filled in at NewSystem). The cluster snapshot layer reads it
// to capture a tenant's trained gates, thresholds and feature geometry
// for migration; the referenced models are shared, not cloned, and
// must be treated as read-only.
func (s *System) Config() Config { return s.cfg }

// Models returns the system's model provider (a *registry.Registry
// when one was attached, or the static wrapper NewSystem built from
// the deprecated raw config fields).
func (s *System) Models() registry.Provider { return s.cfg.Models }

// ModelSet resolves the current model set — the same one-atomic-load
// view the decision path uses. The returned set and its models are
// read-only.
func (s *System) ModelSet() *registry.ModelSet { return s.cfg.Models.ModelSet() }

// Apply runs the paper's fifth-order Butterworth band-pass
// (100 Hz – 16 kHz) over every channel, returning a new recording.
func (p *Preprocessor) Apply(rec *audio.Recording) *audio.Recording {
	start := time.Now()
	out := audio.NewRecording(rec.SampleRate, len(rec.Channels), rec.Len())
	for i, ch := range rec.Channels {
		p.bp.ApplyTo(out.Channels[i], ch)
	}
	if p.ins != nil {
		p.ins.preprocess.ObserveDuration(time.Since(start))
	}
	return out
}

// applyInto is Apply writing into the preprocessor's arena. The
// returned recording aliases p's backing store and is valid until the
// next applyInto call; a warm arena makes it allocation-free.
func (p *Preprocessor) applyInto(rec *audio.Recording) *audio.Recording {
	start := time.Now()
	n := rec.Len()
	nch := len(rec.Channels)
	if cap(p.preBack) < n*nch {
		p.preBack = make([]float64, n*nch)
	}
	if cap(p.preChans) < nch {
		p.preChans = make([][]float64, nch)
	}
	p.preChans = p.preChans[:nch]
	for i, ch := range rec.Channels {
		dst := p.preBack[i*n : (i+1)*n : (i+1)*n]
		p.bp.ApplyTo(dst, ch)
		p.preChans[i] = dst
	}
	p.preRec = audio.Recording{SampleRate: rec.SampleRate, Channels: p.preChans}
	if p.ins != nil {
		p.ins.preprocess.ObserveDuration(time.Since(start))
	}
	return &p.preRec
}

// selectInto mirrors audio.Recording.Select on arena-backed channel
// headers: the returned recording aliases p and the source channels and
// is valid until the next selectInto call.
func (p *Preprocessor) selectInto(src *audio.Recording, idx []int) (*audio.Recording, error) {
	if cap(p.selChans) < len(idx) {
		p.selChans = make([][]float64, 0, len(idx))
	}
	p.selChans = p.selChans[:0]
	for _, i := range idx {
		if i < 0 || i >= len(src.Channels) {
			return nil, fmt.Errorf("audio: channel %d out of range (have %d)", i, len(src.Channels))
		}
		p.selChans = append(p.selChans, src.Channels[i])
	}
	p.selRec = audio.Recording{SampleRate: src.SampleRate, Channels: p.selChans}
	return &p.selRec, nil
}

// Preprocess applies the band-pass preprocessing stage using a pooled
// Preprocessor; safe for concurrent use. The error return is kept for
// API compatibility and is always nil now that the filter design is
// validated at NewSystem.
func (s *System) Preprocess(rec *audio.Recording) (*audio.Recording, error) {
	p := s.prePool.Get().(*Preprocessor)
	defer s.prePool.Put(p)
	return p.Apply(rec), nil
}

// validateInput runs the input-hardening stage: validate, optionally
// repair isolated non-finite samples on a copy, and re-validate. It
// returns the (possibly repaired) recording, the repaired-sample count,
// and a typed *audio.ErrBadInput (wrapped) on rejection.
func (s *System) validateInput(rec *audio.Recording) (*audio.Recording, int, error) {
	err := audio.Validate(rec, s.cfg.InputValidation)
	if err == nil {
		return rec, 0, nil
	}
	bad, isBad := audio.AsBadInput(err)
	if isBad && bad.Reason == audio.BadNonFinite && s.cfg.RepairNonFinite {
		clean, n := audio.Repair(rec)
		if rerr := audio.Validate(clean, s.cfg.InputValidation); rerr == nil {
			if s.ins != nil {
				s.ins.inputRepaired.Add(uint64(n))
			}
			return clean, n, nil
		} else {
			err = rerr
			bad, isBad = audio.AsBadInput(rerr)
		}
	}
	if s.ins != nil && isBad {
		if c, ok := s.ins.inputRejected[bad.Reason]; ok {
			c.Inc()
		}
	}
	return nil, 0, fmt.Errorf("core: input validation: %w", err)
}

// channelPlan is the outcome of the degraded-array policy for one
// decision: which channels feed the gates, how degraded the array is,
// and which orientation model matches the surviving pair set.
type channelPlan struct {
	// active feeds the orientation gate (GCC/SRP pair set); nil means
	// all channels.
	active []int
	// healthy feeds the liveness mono mix; nil means all channels.
	healthy []int
	// degraded counts non-OK channels.
	degraded int
	// ok is false when the decision must fail closed (ReasonDegraded).
	ok bool
	// model scores the orientation features (primary or per-count
	// fallback); nil keeps the ReasonNoOrientation semantics.
	model *orientation.Model
}

// planScratch holds the channel-plan working set (health assessment,
// membership flags, the active list) so a per-worker arena can run the
// degraded-array policy without allocating.
type planScratch struct {
	health     mic.ArrayHealth
	healthySet []bool
	used       []bool
	active     []int
}

// planChannels scores channel health on the raw capture (band-passing
// would hide DC-stuck channels) and assembles the orientation channel
// set from healthy channels only. When a channel of the configured
// subset has died, a healthy spare is substituted so the pair-set
// cardinality — and with it the feature dimensionality the model was
// trained on — is preserved. Only when too few healthy channels remain
// does the plan fall back to a smaller per-count model, or fail closed.
func (s *System) planChannels(rec *audio.Recording) channelPlan {
	var scratch planScratch
	return s.planChannelsInto(&scratch, rec, s.cfg.Models.ModelSet())
}

// planChannelsInto is planChannels running on caller-owned scratch and
// an already-resolved model set (one resolution per decision keeps the
// plan and the gates on the same registry version). The returned
// plan's active and healthy slices alias the scratch and are valid
// until its next use.
func (s *System) planChannelsInto(ps *planScratch, rec *audio.Recording, set *registry.ModelSet) channelPlan {
	if s.cfg.DisableChannelHealth {
		return channelPlan{active: s.cfg.ChannelSubset, ok: true, model: set.Orientation}
	}
	mic.AssessHealthInto(&ps.health, rec, s.cfg.ChannelHealth)
	h := &ps.health
	plan := channelPlan{healthy: h.Healthy, degraded: h.Degraded()}

	// Target count = the feature dimensionality the primary model
	// expects: the configured subset size, or the full array.
	preferred := s.cfg.ChannelSubset
	target := len(rec.Channels)
	if len(preferred) > 0 {
		target = len(preferred)
	}
	nch := len(rec.Channels)
	if cap(ps.healthySet) < nch {
		ps.healthySet = make([]bool, nch)
		ps.used = make([]bool, nch)
	}
	healthySet := ps.healthySet[:nch]
	used := ps.used[:nch]
	for i := range healthySet {
		healthySet[i] = false
		used[i] = false
	}
	for _, i := range h.Healthy {
		healthySet[i] = true
	}
	active := ps.active[:0]
	if len(preferred) > 0 {
		for _, i := range preferred {
			if i >= 0 && i < nch && healthySet[i] && !used[i] {
				active = append(active, i)
				used[i] = true
			}
		}
	}
	for _, i := range h.Healthy {
		if len(active) >= target {
			break
		}
		if !used[i] {
			active = append(active, i)
			used[i] = true
		}
	}
	sort.Ints(active)
	ps.active = active
	plan.active = active

	switch {
	case len(active) < s.cfg.MinChannels:
		// Fewer healthy channels than the floor: fail closed.
	case len(active) == target:
		plan.ok = true
		plan.model = set.Orientation
	default:
		// Surviving pair set is smaller than the primary model's; only
		// a fallback trained for exactly this channel count can score
		// it.
		if m := set.OrientationByChannels[len(active)]; m != nil {
			plan.ok = true
			plan.model = m
		}
	}
	return plan
}

// Mode returns the current privacy mode.
func (s *System) Mode() Mode {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mode
}

// SetMode switches privacy modes ("Alexa, enter HeadTalk mode").
func (s *System) SetMode(m Mode) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mode = m
	s.sessionOpen = false
}

// SessionActive reports whether a facing-validated session is open.
func (s *System) SessionActive() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sessionActiveLocked()
}

func (s *System) sessionActiveLocked() bool {
	return s.sessionOpen && s.cfg.Clock().Before(s.sessionEnd)
}

// EndSession closes any open session immediately.
func (s *System) EndSession() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sessionOpen = false
}

// ProcessWake runs the full HeadTalk decision pipeline (paper Fig. 2)
// on a detected wake-word recording and logs the outcome. The
// recording should contain just the wake-word utterance from the
// device's microphone array.
//
// This is the canonical, context-first entry point: pass
// context.Background() when there is nothing to propagate. The context
// may carry a trace.Recorder (trace.NewContext), in which case every
// pipeline stage records a span; with no recorder the tracing hooks
// are free no-ops.
func (s *System) ProcessWake(ctx context.Context, rec *audio.Recording) (Decision, error) {
	p := s.prePool.Get().(*Preprocessor)
	defer s.prePool.Put(p)
	return s.ProcessWakeWith(ctx, p, rec)
}

// ProcessWakeCtx is the former name of the context-first entry point.
//
// Deprecated: ProcessWake itself is context-first now; call
// ProcessWake(ctx, rec) instead. This wrapper remains for source
// compatibility and delegates unchanged.
func (s *System) ProcessWakeCtx(ctx context.Context, rec *audio.Recording) (Decision, error) {
	return s.ProcessWake(ctx, rec)
}

// ProcessWakeWith is ProcessWake with caller-supplied preprocessing
// state. Serving workers call this with a Preprocessor they own so the
// DSP hot path runs without any shared mutable state; p must not be
// used concurrently from another goroutine.
func (s *System) ProcessWakeWith(ctx context.Context, p *Preprocessor, rec *audio.Recording) (Decision, error) {
	tr := trace.FromContext(ctx)
	s.mu.Lock()
	mode := s.mode
	s.mu.Unlock()

	// Input hardening runs in every mode, before any DSP: a privacy
	// control fails closed on malformed input rather than letting
	// garbage reach the feature path (or, in Normal mode, the cloud).
	repaired := 0
	if !s.cfg.DisableInputValidation {
		vStart := tr.Begin()
		clean, n, err := s.validateInput(rec)
		tr.End(trace.StageValidate, vStart)
		if err != nil {
			d := Decision{Reason: ReasonBadInput}
			s.logEvent(mode, d)
			tr.SetOutcome(mode.String(), false, d.Reason.Slug())
			return d, err
		}
		rec = clean
		repaired = n
	}

	var d Decision
	switch mode {
	case ModeMute:
		d = Decision{Accepted: false, Reason: ReasonMuted}
	case ModeNormal:
		d = Decision{Accepted: true, Reason: ReasonNormalMode}
	case ModeHeadTalk:
		var err error
		d, err = s.headTalkDecision(tr, p, rec)
		if err != nil {
			s.logEvent(mode, Decision{Reason: ReasonProcessingFail})
			tr.SetGates(d.LiveScore, d.LiveRan, d.FacingScore, d.FacingRan)
			tr.SetOutcome(mode.String(), false, ReasonProcessingFail.Slug())
			return Decision{Reason: ReasonProcessingFail}, err
		}
	}
	d.RepairedSamples = repaired
	s.logEvent(mode, d)
	tr.SetGates(d.LiveScore, d.LiveRan, d.FacingScore, d.FacingRan)
	tr.SetOutcome(mode.String(), d.Accepted, d.Reason.Slug())
	return d, nil
}

// ProcessWakeWithCtx is the former name of ProcessWakeWith.
//
// Deprecated: ProcessWakeWith itself is context-first now; call
// ProcessWakeWith(ctx, p, rec) instead. This wrapper remains for
// source compatibility and delegates unchanged.
func (s *System) ProcessWakeWithCtx(ctx context.Context, p *Preprocessor, rec *audio.Recording) (Decision, error) {
	return s.ProcessWakeWith(ctx, p, rec)
}

func (s *System) headTalkDecision(tr *trace.Recorder, p *Preprocessor, rec *audio.Recording) (Decision, error) {
	// Resolve the model set exactly once: everything downstream — the
	// channel plan, both liveness gates, the orientation score and any
	// shadow score — works from this one immutable set, so a registry
	// hot-swap mid-decision can never mix versions.
	set := s.cfg.Models.ModelSet()

	// Degraded-array policy first: channels the health check distrusts
	// must not feed either gate, and with too few survivors the
	// decision fails closed before any feature is computed.
	planStart := tr.Begin()
	plan := s.planChannelsInto(&p.plan, rec, set)
	tr.End(trace.StageChannelPlan, planStart)
	return s.decideWithPlan(tr, p, rec, plan, nil, nil, set)
}

// decideWithPlan runs the liveness and orientation gates for one
// already-planned recording. pre and feats, when non-nil, are the
// band-passed recording and orientation feature vector the batch path
// precomputed for this item (ProcessWakeBatchWith); they are used in
// place of recomputation, so a batch item's OrientationLatency covers
// only feature checking and classifier scoring — the shared extraction
// sweep is traced by the serving layer's batch span instead.
func (s *System) decideWithPlan(tr *trace.Recorder, p *Preprocessor, rec *audio.Recording, plan channelPlan, pre *audio.Recording, feats []float64, set *registry.ModelSet) (Decision, error) {
	var d Decision
	tr.SetPlan(plan.active, plan.degraded)
	d.DegradedChannels = plan.degraded
	if s.ins != nil && !s.cfg.DisableChannelHealth {
		s.ins.channelsDegraded.Set(int64(plan.degraded))
	}
	if !plan.ok {
		d.Reason = ReasonDegraded
		if s.ins != nil {
			s.ins.degradedDecisions.Inc()
		}
		return d, nil
	}

	// Session shortcut: a facing-validated session accepts follow-ups
	// without re-checking orientation, but liveness is still enforced
	// so a replay can't ride an open session.
	sessionActive := s.SessionActive()

	// The band-pass is computed lazily: a session-shortcut decision
	// with no liveness gate never consumes the preprocessed samples, so
	// the steady state of an open session skips the filter sweep (and
	// its arena write) entirely.
	preprocess := func() *audio.Recording {
		if pre == nil {
			preStart := tr.Begin()
			pre = p.applyInto(rec)
			tr.End(trace.StagePreprocess, preStart)
		}
		return pre
	}

	// Fused-ensemble arming: with RequireEnsemble set, liveness fails
	// closed — a missing spectral or fingerprint model rejects instead
	// of silently skipping a gate.
	if set.RequireEnsemble && (set.Liveness == nil || set.ArrayFingerprint == nil) {
		d.Reason = ReasonNoLiveness
		return d, nil
	}

	if set.Liveness != nil {
		// Liveness mixes down every *healthy* channel — a dead channel
		// would dilute the mono mix by its share.
		monoSrc := preprocess()
		if len(plan.healthy) > 0 && len(plan.healthy) < len(monoSrc.Channels) {
			sel, serr := p.selectInto(monoSrc, plan.healthy)
			if serr != nil {
				return d, fmt.Errorf("core: selecting healthy channels: %w", serr)
			}
			monoSrc = sel
		}
		start := time.Now()
		mono := monoSrc.MonoInto(p.mono)
		p.mono = mono
		score, lerr := set.Liveness.Score(mono, rec.SampleRate)
		d.LivenessLatency = time.Since(start)
		tr.Observe(trace.StageLiveness, d.LivenessLatency)
		if s.ins != nil {
			s.ins.liveGate.ObserveDuration(d.LivenessLatency)
		}
		if lerr != nil {
			return d, fmt.Errorf("core: liveness gate: %w", lerr)
		}
		d.LiveScore = score
		d.LiveRan = true
		if score < s.cfg.LivenessThreshold {
			d.Reason = ReasonNotLive
			return d, nil
		}
	}

	if set.ArrayFingerprint != nil {
		// Second liveness signal: the capture's long-term spectral
		// profile must match the enrolled array fingerprint. It runs on
		// the RAW healthy channels — band-passing would strip exactly
		// the out-of-band coloration (driver roll-off, playback noise
		// floor) the fingerprint keys on. Like the spectral gate, it is
		// enforced even on open sessions so a replay can't ride one.
		fpSrc := rec
		if len(plan.healthy) > 0 && len(plan.healthy) < len(rec.Channels) {
			sel, serr := p.selectInto(rec, plan.healthy)
			if serr != nil {
				return d, fmt.Errorf("core: fingerprint gate: %w", serr)
			}
			fpSrc = sel
		}
		start := time.Now()
		fpOK, fpScore, ferr := set.ArrayFingerprint.Check(fpSrc)
		fpDur := time.Since(start)
		tr.Observe(trace.StageFingerprint, fpDur)
		if s.ins != nil {
			s.ins.fpGate.ObserveDuration(fpDur)
		}
		if ferr != nil {
			return d, fmt.Errorf("core: fingerprint gate: %w", ferr)
		}
		d.FingerprintScore = fpScore
		d.FingerprintRan = true
		if !fpOK {
			d.Reason = ReasonFingerprintMismatch
			return d, nil
		}
	}

	if sessionActive {
		d.Accepted = true
		d.Reason = ReasonSessionActive
		s.extendSession()
		return d, nil
	}

	if plan.model == nil {
		d.Reason = ReasonNoOrientation
		return d, nil
	}
	// Band-pass and channel selection happen outside the orientation
	// timing window (matching the eager pipeline's stage attribution);
	// feature extraction and scoring are the gate's latency.
	var src *audio.Recording
	if feats == nil {
		src = preprocess()
		if len(plan.active) > 0 {
			sel, serr := p.selectInto(src, plan.active)
			if serr != nil {
				return d, fmt.Errorf("core: orientation features: %w", serr)
			}
			src = sel
		}
	}
	start := time.Now()
	if feats == nil {
		var ferr error
		feats, ferr = p.feats.Extract(src, s.cfg.Features)
		if ferr != nil {
			return d, fmt.Errorf("core: orientation features: %w", ferr)
		}
	}
	// A vector the model cannot score (dim mismatch after degradation,
	// non-finite feature from a DSP fault) must reject, not gamble.
	if cerr := plan.model.CheckFeatures(feats); cerr != nil {
		return d, fmt.Errorf("core: orientation features: %w", cerr)
	}
	pred, score, scratch := plan.model.PredictScore(feats, p.mlScratch)
	p.mlScratch = scratch
	d.FacingScore = score
	d.OrientationLatency = time.Since(start)
	tr.Observe(trace.StageOrientation, d.OrientationLatency)
	if s.ins != nil {
		s.ins.orientGate.ObserveDuration(d.OrientationLatency)
	}
	d.FacingRan = true
	if set.OnScore != nil {
		set.OnScore(score)
	}

	// Shadow evaluation: the candidate version scores the same feature
	// vector, outside the active gate's timing window; its result is
	// recorded and metered but never decides.
	if set.Shadow != nil {
		if cerr := set.Shadow.CheckFeatures(feats); cerr == nil {
			sPred, sScore, sScratch := set.Shadow.PredictScore(feats, p.shadowScratch)
			p.shadowScratch = sScratch
			d.ShadowScore = sScore
			d.ShadowRan = true
			if set.OnShadow != nil {
				set.OnShadow(pred, sPred, score, sScore)
			}
		}
	}

	if pred != orientation.LabelFacing {
		d.Reason = ReasonNotFacing
		return d, nil
	}
	d.Accepted = true
	d.Reason = ReasonAccepted
	if set.OnAccepted != nil {
		// feats aliases the preprocessor arena: the hook must copy what
		// it keeps (the registry's adaptation hook does).
		set.OnAccepted(feats, score)
	}
	s.openSession()
	return d, nil
}

func (s *System) openSession() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sessionOpen = true
	s.sessionEnd = s.cfg.Clock().Add(s.cfg.SessionTimeout)
}

func (s *System) extendSession() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sessionOpen {
		s.sessionEnd = s.cfg.Clock().Add(s.cfg.SessionTimeout)
	}
}

func (s *System) logEvent(mode Mode, d Decision) {
	if s.ins != nil {
		s.ins.decisions.Inc()
		if d.Accepted {
			s.ins.accepted.Inc()
		} else {
			s.ins.rejected.Inc()
		}
		if c, ok := s.ins.byReason[d.Reason]; ok {
			c.Inc()
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.log == nil {
		s.log = make([]Event, s.cfg.LogCapacity)
	}
	ev := Event{Time: s.cfg.Clock(), Mode: mode, Decision: d}
	if s.logLen < len(s.log) {
		s.log[(s.logStart+s.logLen)%len(s.log)] = ev
		s.logLen++
		return
	}
	// Ring full: overwrite the oldest event and count the eviction.
	s.log[s.logStart] = ev
	s.logStart = (s.logStart + 1) % len(s.log)
	s.dropped++
	if s.ins != nil {
		s.ins.logDropped.Inc()
	}
}

// History returns a copy of the decision log, oldest first. At most
// Config.LogCapacity events are retained; DroppedEvents counts the
// rest.
func (s *System) History() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Event, s.logLen)
	for i := 0; i < s.logLen; i++ {
		out[i] = s.log[(s.logStart+i)%len(s.log)]
	}
	return out
}

// DroppedEvents reports how many log events have been evicted from
// the bounded history since the last ClearHistory.
func (s *System) DroppedEvents() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// ClearHistory deletes the decision log (the paper's delete-history
// privacy control) and resets the dropped-event count.
func (s *System) ClearHistory() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.log = nil
	s.logStart = 0
	s.logLen = 0
	s.dropped = 0
}
