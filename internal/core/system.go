// Package core implements the HeadTalk privacy control itself (paper
// Fig. 1 and Fig. 2): the preprocessing stage, the liveness gate, the
// orientation gate, the Normal/Mute/HeadTalk mode state machine and
// the face-once session semantics. The other internal packages are the
// substrates this one composes.
package core

import (
	"fmt"
	"sync"
	"time"

	"headtalk/internal/audio"
	"headtalk/internal/dsp"
	"headtalk/internal/features"
	"headtalk/internal/liveness"
	"headtalk/internal/orientation"
)

// Mode is the assistant's privacy mode (paper Fig. 1).
type Mode int

// Privacy modes.
const (
	// ModeNormal accepts every detected wake word, like a stock VA.
	ModeNormal Mode = iota
	// ModeMute rejects everything; the physical mute button.
	ModeMute
	// ModeHeadTalk accepts a wake word only from a live human facing
	// the device.
	ModeHeadTalk
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case ModeNormal:
		return "normal"
	case ModeMute:
		return "mute"
	case ModeHeadTalk:
		return "headtalk"
	default:
		return "unknown"
	}
}

// Reason explains a decision.
type Reason string

// Decision reasons.
const (
	ReasonAccepted       Reason = "accepted"
	ReasonMuted          Reason = "device muted"
	ReasonNotLive        Reason = "rejected: mechanical speaker detected"
	ReasonNotFacing      Reason = "rejected: speaker not facing the device"
	ReasonSessionActive  Reason = "accepted: session already active"
	ReasonNormalMode     Reason = "accepted: normal mode"
	ReasonNoOrientation  Reason = "rejected: no orientation model enrolled"
	ReasonNoLiveness     Reason = "rejected: no liveness model trained"
	ReasonProcessingFail Reason = "rejected: processing error"
)

// Decision is the outcome of processing one wake-word utterance.
type Decision struct {
	Accepted bool
	Reason   Reason
	// LiveScore is the probability the audio is live human speech
	// (only meaningful when the liveness gate ran).
	LiveScore float64
	LiveRan   bool
	// FacingScore is the orientation classifier margin (positive =
	// facing) when the orientation gate ran.
	FacingScore float64
	FacingRan   bool
	// Latencies of the two gates (paper §IV-B15 reports 42 ms and
	// 136 ms on a PC).
	LivenessLatency    time.Duration
	OrientationLatency time.Duration
}

// Config assembles a System.
type Config struct {
	// SampleRate of incoming recordings (default 48 kHz).
	SampleRate float64
	// BandpassLow/BandpassHigh bound the preprocessing filter
	// (defaults 100 Hz / 16 kHz; paper §III).
	BandpassLow, BandpassHigh float64
	// BandpassOrder is the Butterworth order (default 5).
	BandpassOrder int
	// SessionTimeout: once a facing wake word opens a session, further
	// commands within the window skip the facing check (the user "does
	// not need to continuously face the device for the remaining
	// session"). Default 30 s.
	SessionTimeout time.Duration
	// Liveness and Orientation are the trained gates. Either may be
	// nil: a nil liveness detector skips the human/mechanical check, a
	// nil orientation model causes HeadTalk mode to reject with
	// ReasonNoOrientation.
	Liveness    *liveness.Detector
	Orientation *orientation.Model
	// LivenessThreshold is the minimum live score (default 0.5).
	LivenessThreshold float64
	// Features configures orientation feature extraction. A zero
	// MaxLag defaults to 13 samples (the D2 array at 48 kHz).
	Features features.Config
	// ChannelSubset selects which recording channels feed the
	// orientation gate (nil = all channels). The paper uses 4-mic
	// subsets by default.
	ChannelSubset []int
	// Clock abstracts time for session handling (tests inject a fake);
	// nil uses time.Now.
	Clock func() time.Time
}

// System is a HeadTalk privacy controller. It is safe for concurrent
// use.
type System struct {
	mu          sync.Mutex
	mode        Mode
	cfg         Config
	sessionOpen bool
	sessionEnd  time.Time
	log         []Event
}

// Event is one entry in the system's decision log (the paper's
// command-history privacy control).
type Event struct {
	Time     time.Time
	Mode     Mode
	Decision Decision
}

// NewSystem validates the configuration and returns a system in
// Normal mode.
func NewSystem(cfg Config) (*System, error) {
	if cfg.SampleRate == 0 {
		cfg.SampleRate = 48000
	}
	if cfg.BandpassLow == 0 {
		cfg.BandpassLow = 100
	}
	if cfg.BandpassHigh == 0 {
		cfg.BandpassHigh = 16000
	}
	if cfg.BandpassOrder == 0 {
		cfg.BandpassOrder = 5
	}
	if cfg.SessionTimeout == 0 {
		cfg.SessionTimeout = 30 * time.Second
	}
	if cfg.LivenessThreshold == 0 {
		cfg.LivenessThreshold = 0.5
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if cfg.BandpassHigh >= cfg.SampleRate/2 {
		return nil, fmt.Errorf("core: bandpass high %g Hz >= Nyquist %g", cfg.BandpassHigh, cfg.SampleRate/2)
	}
	if cfg.Features.MaxLag == 0 {
		cfg.Features = features.DefaultConfig(13, cfg.SampleRate)
	}
	return &System{mode: ModeNormal, cfg: cfg}, nil
}

// orientationFeatures extracts the facing/non-facing feature vector
// from a preprocessed recording, honoring the configured channel
// subset.
func (s *System) orientationFeatures(pre *audio.Recording) ([]float64, error) {
	rec := pre
	if len(s.cfg.ChannelSubset) > 0 {
		sel, err := pre.Select(s.cfg.ChannelSubset)
		if err != nil {
			return nil, err
		}
		rec = sel
	}
	return features.Extract(rec, s.cfg.Features)
}

// Mode returns the current privacy mode.
func (s *System) Mode() Mode {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mode
}

// SetMode switches privacy modes ("Alexa, enter HeadTalk mode").
func (s *System) SetMode(m Mode) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mode = m
	s.sessionOpen = false
}

// SessionActive reports whether a facing-validated session is open.
func (s *System) SessionActive() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sessionActiveLocked()
}

func (s *System) sessionActiveLocked() bool {
	return s.sessionOpen && s.cfg.Clock().Before(s.sessionEnd)
}

// EndSession closes any open session immediately.
func (s *System) EndSession() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sessionOpen = false
}

// Preprocess applies the paper's fifth-order Butterworth band-pass
// (100 Hz – 16 kHz) to every channel, returning a new recording.
func (s *System) Preprocess(rec *audio.Recording) (*audio.Recording, error) {
	bp, err := dsp.NewButterworthBandPass(s.cfg.BandpassOrder, s.cfg.BandpassLow, s.cfg.BandpassHigh, s.cfg.SampleRate)
	if err != nil {
		return nil, fmt.Errorf("core: designing bandpass: %w", err)
	}
	out := audio.NewRecording(rec.SampleRate, len(rec.Channels), rec.Len())
	for i, ch := range rec.Channels {
		copy(out.Channels[i], bp.Apply(ch))
	}
	return out, nil
}

// ProcessWake runs the full HeadTalk decision pipeline (paper Fig. 2)
// on a detected wake-word recording and logs the outcome. The
// recording should contain just the wake-word utterance from the
// device's microphone array.
func (s *System) ProcessWake(rec *audio.Recording) (Decision, error) {
	s.mu.Lock()
	mode := s.mode
	s.mu.Unlock()

	var d Decision
	switch mode {
	case ModeMute:
		d = Decision{Accepted: false, Reason: ReasonMuted}
	case ModeNormal:
		d = Decision{Accepted: true, Reason: ReasonNormalMode}
	case ModeHeadTalk:
		var err error
		d, err = s.headTalkDecision(rec)
		if err != nil {
			s.logEvent(mode, Decision{Reason: ReasonProcessingFail})
			return Decision{Reason: ReasonProcessingFail}, err
		}
	}
	s.logEvent(mode, d)
	return d, nil
}

func (s *System) headTalkDecision(rec *audio.Recording) (Decision, error) {
	var d Decision

	// Session shortcut: a facing-validated session accepts follow-ups
	// without re-checking orientation, but liveness is still enforced
	// so a replay can't ride an open session.
	sessionActive := s.SessionActive()

	pre, err := s.Preprocess(rec)
	if err != nil {
		return d, err
	}

	if s.cfg.Liveness != nil {
		start := time.Now()
		score, lerr := s.cfg.Liveness.Score(pre.Mono(), pre.SampleRate)
		d.LivenessLatency = time.Since(start)
		if lerr != nil {
			return d, fmt.Errorf("core: liveness gate: %w", lerr)
		}
		d.LiveScore = score
		d.LiveRan = true
		if score < s.cfg.LivenessThreshold {
			d.Reason = ReasonNotLive
			return d, nil
		}
	}

	if sessionActive {
		d.Accepted = true
		d.Reason = ReasonSessionActive
		s.extendSession()
		return d, nil
	}

	if s.cfg.Orientation == nil {
		d.Reason = ReasonNoOrientation
		return d, nil
	}
	start := time.Now()
	feats, ferr := s.orientationFeatures(pre)
	if ferr != nil {
		return d, fmt.Errorf("core: orientation features: %w", ferr)
	}
	pred := s.cfg.Orientation.Predict(feats)
	d.FacingScore = s.cfg.Orientation.Score(feats)
	d.OrientationLatency = time.Since(start)
	d.FacingRan = true
	if pred != orientation.LabelFacing {
		d.Reason = ReasonNotFacing
		return d, nil
	}
	d.Accepted = true
	d.Reason = ReasonAccepted
	s.openSession()
	return d, nil
}

func (s *System) openSession() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sessionOpen = true
	s.sessionEnd = s.cfg.Clock().Add(s.cfg.SessionTimeout)
}

func (s *System) extendSession() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sessionOpen {
		s.sessionEnd = s.cfg.Clock().Add(s.cfg.SessionTimeout)
	}
}

func (s *System) logEvent(mode Mode, d Decision) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.log = append(s.log, Event{Time: s.cfg.Clock(), Mode: mode, Decision: d})
}

// History returns a copy of the decision log.
func (s *System) History() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Event, len(s.log))
	copy(out, s.log)
	return out
}

// ClearHistory deletes the decision log (the paper's delete-history
// privacy control).
func (s *System) ClearHistory() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.log = nil
}
