// Package core implements the HeadTalk privacy control itself (paper
// Fig. 1 and Fig. 2): the preprocessing stage, the liveness gate, the
// orientation gate, the Normal/Mute/HeadTalk mode state machine and
// the face-once session semantics. The other internal packages are the
// substrates this one composes.
package core

import (
	"fmt"
	"sync"
	"time"

	"headtalk/internal/audio"
	"headtalk/internal/dsp"
	"headtalk/internal/features"
	"headtalk/internal/liveness"
	"headtalk/internal/metrics"
	"headtalk/internal/orientation"
)

// Mode is the assistant's privacy mode (paper Fig. 1).
type Mode int

// Privacy modes.
const (
	// ModeNormal accepts every detected wake word, like a stock VA.
	ModeNormal Mode = iota
	// ModeMute rejects everything; the physical mute button.
	ModeMute
	// ModeHeadTalk accepts a wake word only from a live human facing
	// the device.
	ModeHeadTalk
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case ModeNormal:
		return "normal"
	case ModeMute:
		return "mute"
	case ModeHeadTalk:
		return "headtalk"
	default:
		return "unknown"
	}
}

// Reason explains a decision.
type Reason string

// Decision reasons.
const (
	ReasonAccepted       Reason = "accepted"
	ReasonMuted          Reason = "device muted"
	ReasonNotLive        Reason = "rejected: mechanical speaker detected"
	ReasonNotFacing      Reason = "rejected: speaker not facing the device"
	ReasonSessionActive  Reason = "accepted: session already active"
	ReasonNormalMode     Reason = "accepted: normal mode"
	ReasonNoOrientation  Reason = "rejected: no orientation model enrolled"
	ReasonNoLiveness     Reason = "rejected: no liveness model trained"
	ReasonProcessingFail Reason = "rejected: processing error"
)

// Slug returns a short machine-friendly identifier for the reason,
// used as a metrics label segment.
func (r Reason) Slug() string {
	switch r {
	case ReasonAccepted:
		return "accepted"
	case ReasonMuted:
		return "muted"
	case ReasonNotLive:
		return "not_live"
	case ReasonNotFacing:
		return "not_facing"
	case ReasonSessionActive:
		return "session_active"
	case ReasonNormalMode:
		return "normal_mode"
	case ReasonNoOrientation:
		return "no_orientation"
	case ReasonNoLiveness:
		return "no_liveness"
	case ReasonProcessingFail:
		return "processing_fail"
	default:
		return "unknown"
	}
}

// Decision is the outcome of processing one wake-word utterance.
type Decision struct {
	Accepted bool
	Reason   Reason
	// LiveScore is the probability the audio is live human speech
	// (only meaningful when the liveness gate ran).
	LiveScore float64
	LiveRan   bool
	// FacingScore is the orientation classifier margin (positive =
	// facing) when the orientation gate ran.
	FacingScore float64
	FacingRan   bool
	// Latencies of the two gates (paper §IV-B15 reports 42 ms and
	// 136 ms on a PC).
	LivenessLatency    time.Duration
	OrientationLatency time.Duration
}

// Config assembles a System.
type Config struct {
	// SampleRate of incoming recordings (default 48 kHz).
	SampleRate float64
	// BandpassLow/BandpassHigh bound the preprocessing filter
	// (defaults 100 Hz / 16 kHz; paper §III).
	BandpassLow, BandpassHigh float64
	// BandpassOrder is the Butterworth order (default 5).
	BandpassOrder int
	// SessionTimeout: once a facing wake word opens a session, further
	// commands within the window skip the facing check (the user "does
	// not need to continuously face the device for the remaining
	// session"). Default 30 s.
	SessionTimeout time.Duration
	// Liveness and Orientation are the trained gates. Either may be
	// nil: a nil liveness detector skips the human/mechanical check, a
	// nil orientation model causes HeadTalk mode to reject with
	// ReasonNoOrientation.
	Liveness    *liveness.Detector
	Orientation *orientation.Model
	// LivenessThreshold is the minimum live score (default 0.5).
	LivenessThreshold float64
	// Features configures orientation feature extraction. A zero
	// MaxLag defaults to 13 samples (the D2 array at 48 kHz).
	Features features.Config
	// ChannelSubset selects which recording channels feed the
	// orientation gate (nil = all channels). The paper uses 4-mic
	// subsets by default.
	ChannelSubset []int
	// LogCapacity bounds the decision log. A long-running daemon
	// otherwise grows the log without limit; once full, the oldest
	// events are dropped and counted. Default 1024.
	LogCapacity int
	// Metrics, when non-nil, receives per-decision instrumentation:
	// accept/reject counters by Reason, per-gate latency histograms
	// and preprocessing latency. The registry may be shared with a
	// serving engine.
	Metrics *metrics.Registry
	// Clock abstracts time for session handling (tests inject a fake);
	// nil uses time.Now.
	Clock func() time.Time
}

// System is a HeadTalk privacy controller. It is safe for concurrent
// use.
type System struct {
	mu          sync.Mutex
	mode        Mode
	cfg         Config
	sessionOpen bool
	sessionEnd  time.Time

	// Decision log as a fixed-capacity ring: log has capacity
	// cfg.LogCapacity, logStart indexes the oldest event, logLen counts
	// stored events, dropped counts evicted ones.
	log      []Event
	logStart int
	logLen   int
	dropped  uint64

	// bp holds the Butterworth band-pass designed once at NewSystem;
	// its coefficients are immutable and cloned into per-goroutine
	// Preprocessors, so the hot path never redoes the design trig.
	bp      *dsp.IIRFilter
	prePool sync.Pool

	ins *instruments
}

// instruments caches the system's metric handles so the hot path
// never takes the registry lock.
type instruments struct {
	decisions  *metrics.Counter
	accepted   *metrics.Counter
	rejected   *metrics.Counter
	byReason   map[Reason]*metrics.Counter
	preprocess *metrics.Histogram
	liveGate   *metrics.Histogram
	orientGate *metrics.Histogram
	logDropped *metrics.Counter
}

func newInstruments(r *metrics.Registry) *instruments {
	ins := &instruments{
		decisions:  r.Counter("headtalk.decisions.total"),
		accepted:   r.Counter("headtalk.decisions.accepted"),
		rejected:   r.Counter("headtalk.decisions.rejected"),
		byReason:   make(map[Reason]*metrics.Counter),
		preprocess: r.Histogram("headtalk.preprocess.latency", nil),
		liveGate:   r.Histogram("headtalk.gate.liveness.latency", nil),
		orientGate: r.Histogram("headtalk.gate.orientation.latency", nil),
		logDropped: r.Counter("headtalk.log.dropped"),
	}
	for _, reason := range []Reason{
		ReasonAccepted, ReasonMuted, ReasonNotLive, ReasonNotFacing,
		ReasonSessionActive, ReasonNormalMode, ReasonNoOrientation,
		ReasonNoLiveness, ReasonProcessingFail,
	} {
		ins.byReason[reason] = r.Counter("headtalk.decisions.reason." + reason.Slug())
	}
	return ins
}

// Event is one entry in the system's decision log (the paper's
// command-history privacy control).
type Event struct {
	Time     time.Time
	Mode     Mode
	Decision Decision
}

// NewSystem validates the configuration and returns a system in
// Normal mode.
func NewSystem(cfg Config) (*System, error) {
	if cfg.SampleRate == 0 {
		cfg.SampleRate = 48000
	}
	if cfg.BandpassLow == 0 {
		cfg.BandpassLow = 100
	}
	if cfg.BandpassHigh == 0 {
		cfg.BandpassHigh = 16000
	}
	if cfg.BandpassOrder == 0 {
		cfg.BandpassOrder = 5
	}
	if cfg.SessionTimeout == 0 {
		cfg.SessionTimeout = 30 * time.Second
	}
	if cfg.LivenessThreshold == 0 {
		cfg.LivenessThreshold = 0.5
	}
	if cfg.LogCapacity == 0 {
		cfg.LogCapacity = 1024
	}
	if cfg.LogCapacity < 1 {
		cfg.LogCapacity = 1
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if cfg.BandpassHigh >= cfg.SampleRate/2 {
		return nil, fmt.Errorf("core: bandpass high %g Hz >= Nyquist %g", cfg.BandpassHigh, cfg.SampleRate/2)
	}
	if cfg.Features.MaxLag == 0 {
		cfg.Features = features.DefaultConfig(13, cfg.SampleRate)
	}
	bp, err := dsp.NewButterworthBandPass(cfg.BandpassOrder, cfg.BandpassLow, cfg.BandpassHigh, cfg.SampleRate)
	if err != nil {
		return nil, fmt.Errorf("core: designing bandpass: %w", err)
	}
	s := &System{mode: ModeNormal, cfg: cfg, bp: bp}
	s.prePool.New = func() any { return s.NewPreprocessor() }
	if cfg.Metrics != nil {
		s.ins = newInstruments(cfg.Metrics)
	}
	return s, nil
}

// Preprocessor owns the per-goroutine DSP state (the band-pass biquad
// cascade) for the paper's preprocessing stage. Each serving worker
// holds its own Preprocessor so concurrent decisions never contend on
// filter state or a lock. A Preprocessor must not be used from more
// than one goroutine at a time.
type Preprocessor struct {
	bp  *dsp.IIRFilter
	ins *instruments
}

// NewPreprocessor clones the system's designed band-pass into an
// independent preprocessing pipeline.
func (s *System) NewPreprocessor() *Preprocessor {
	return &Preprocessor{bp: s.bp.Clone(), ins: s.ins}
}

// Apply runs the paper's fifth-order Butterworth band-pass
// (100 Hz – 16 kHz) over every channel, returning a new recording.
func (p *Preprocessor) Apply(rec *audio.Recording) *audio.Recording {
	start := time.Now()
	out := audio.NewRecording(rec.SampleRate, len(rec.Channels), rec.Len())
	for i, ch := range rec.Channels {
		copy(out.Channels[i], p.bp.Apply(ch))
	}
	if p.ins != nil {
		p.ins.preprocess.ObserveDuration(time.Since(start))
	}
	return out
}

// Preprocess applies the band-pass preprocessing stage using a pooled
// Preprocessor; safe for concurrent use. The error return is kept for
// API compatibility and is always nil now that the filter design is
// validated at NewSystem.
func (s *System) Preprocess(rec *audio.Recording) (*audio.Recording, error) {
	p := s.prePool.Get().(*Preprocessor)
	defer s.prePool.Put(p)
	return p.Apply(rec), nil
}

// orientationFeatures extracts the facing/non-facing feature vector
// from a preprocessed recording, honoring the configured channel
// subset.
func (s *System) orientationFeatures(pre *audio.Recording) ([]float64, error) {
	rec := pre
	if len(s.cfg.ChannelSubset) > 0 {
		sel, err := pre.Select(s.cfg.ChannelSubset)
		if err != nil {
			return nil, err
		}
		rec = sel
	}
	return features.Extract(rec, s.cfg.Features)
}

// Mode returns the current privacy mode.
func (s *System) Mode() Mode {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mode
}

// SetMode switches privacy modes ("Alexa, enter HeadTalk mode").
func (s *System) SetMode(m Mode) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mode = m
	s.sessionOpen = false
}

// SessionActive reports whether a facing-validated session is open.
func (s *System) SessionActive() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sessionActiveLocked()
}

func (s *System) sessionActiveLocked() bool {
	return s.sessionOpen && s.cfg.Clock().Before(s.sessionEnd)
}

// EndSession closes any open session immediately.
func (s *System) EndSession() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sessionOpen = false
}

// ProcessWake runs the full HeadTalk decision pipeline (paper Fig. 2)
// on a detected wake-word recording and logs the outcome. The
// recording should contain just the wake-word utterance from the
// device's microphone array.
func (s *System) ProcessWake(rec *audio.Recording) (Decision, error) {
	p := s.prePool.Get().(*Preprocessor)
	defer s.prePool.Put(p)
	return s.ProcessWakeWith(p, rec)
}

// ProcessWakeWith is ProcessWake with caller-supplied preprocessing
// state. Serving workers call this with a Preprocessor they own so the
// DSP hot path runs without any shared mutable state; p must not be
// used concurrently from another goroutine.
func (s *System) ProcessWakeWith(p *Preprocessor, rec *audio.Recording) (Decision, error) {
	s.mu.Lock()
	mode := s.mode
	s.mu.Unlock()

	var d Decision
	switch mode {
	case ModeMute:
		d = Decision{Accepted: false, Reason: ReasonMuted}
	case ModeNormal:
		d = Decision{Accepted: true, Reason: ReasonNormalMode}
	case ModeHeadTalk:
		var err error
		d, err = s.headTalkDecision(p, rec)
		if err != nil {
			s.logEvent(mode, Decision{Reason: ReasonProcessingFail})
			return Decision{Reason: ReasonProcessingFail}, err
		}
	}
	s.logEvent(mode, d)
	return d, nil
}

func (s *System) headTalkDecision(p *Preprocessor, rec *audio.Recording) (Decision, error) {
	var d Decision

	// Session shortcut: a facing-validated session accepts follow-ups
	// without re-checking orientation, but liveness is still enforced
	// so a replay can't ride an open session.
	sessionActive := s.SessionActive()

	pre := p.Apply(rec)

	if s.cfg.Liveness != nil {
		start := time.Now()
		score, lerr := s.cfg.Liveness.Score(pre.Mono(), pre.SampleRate)
		d.LivenessLatency = time.Since(start)
		if s.ins != nil {
			s.ins.liveGate.ObserveDuration(d.LivenessLatency)
		}
		if lerr != nil {
			return d, fmt.Errorf("core: liveness gate: %w", lerr)
		}
		d.LiveScore = score
		d.LiveRan = true
		if score < s.cfg.LivenessThreshold {
			d.Reason = ReasonNotLive
			return d, nil
		}
	}

	if sessionActive {
		d.Accepted = true
		d.Reason = ReasonSessionActive
		s.extendSession()
		return d, nil
	}

	if s.cfg.Orientation == nil {
		d.Reason = ReasonNoOrientation
		return d, nil
	}
	start := time.Now()
	feats, ferr := s.orientationFeatures(pre)
	if ferr != nil {
		return d, fmt.Errorf("core: orientation features: %w", ferr)
	}
	pred := s.cfg.Orientation.Predict(feats)
	d.FacingScore = s.cfg.Orientation.Score(feats)
	d.OrientationLatency = time.Since(start)
	if s.ins != nil {
		s.ins.orientGate.ObserveDuration(d.OrientationLatency)
	}
	d.FacingRan = true
	if pred != orientation.LabelFacing {
		d.Reason = ReasonNotFacing
		return d, nil
	}
	d.Accepted = true
	d.Reason = ReasonAccepted
	s.openSession()
	return d, nil
}

func (s *System) openSession() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sessionOpen = true
	s.sessionEnd = s.cfg.Clock().Add(s.cfg.SessionTimeout)
}

func (s *System) extendSession() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sessionOpen {
		s.sessionEnd = s.cfg.Clock().Add(s.cfg.SessionTimeout)
	}
}

func (s *System) logEvent(mode Mode, d Decision) {
	if s.ins != nil {
		s.ins.decisions.Inc()
		if d.Accepted {
			s.ins.accepted.Inc()
		} else {
			s.ins.rejected.Inc()
		}
		if c, ok := s.ins.byReason[d.Reason]; ok {
			c.Inc()
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.log == nil {
		s.log = make([]Event, s.cfg.LogCapacity)
	}
	ev := Event{Time: s.cfg.Clock(), Mode: mode, Decision: d}
	if s.logLen < len(s.log) {
		s.log[(s.logStart+s.logLen)%len(s.log)] = ev
		s.logLen++
		return
	}
	// Ring full: overwrite the oldest event and count the eviction.
	s.log[s.logStart] = ev
	s.logStart = (s.logStart + 1) % len(s.log)
	s.dropped++
	if s.ins != nil {
		s.ins.logDropped.Inc()
	}
}

// History returns a copy of the decision log, oldest first. At most
// Config.LogCapacity events are retained; DroppedEvents counts the
// rest.
func (s *System) History() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Event, s.logLen)
	for i := 0; i < s.logLen; i++ {
		out[i] = s.log[(s.logStart+i)%len(s.log)]
	}
	return out
}

// DroppedEvents reports how many log events have been evicted from
// the bounded history since the last ClearHistory.
func (s *System) DroppedEvents() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// ClearHistory deletes the decision log (the paper's delete-history
// privacy control) and resets the dropped-event count.
func (s *System) ClearHistory() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.log = nil
	s.logStart = 0
	s.logLen = 0
	s.dropped = 0
}
