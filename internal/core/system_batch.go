package core

import (
	"context"
	"time"

	"headtalk/internal/audio"
	"headtalk/internal/orientation"
	"headtalk/internal/trace"
)

// BatchRequest couples one wake-word recording with its request
// context (which may carry a per-request trace.Recorder).
type BatchRequest struct {
	Ctx context.Context
	Rec *audio.Recording
}

// BatchResult is the per-item outcome of a batch: exactly what
// ProcessWake would have returned for the same recording.
type BatchResult struct {
	Decision Decision
	Err      error
}

// batchScratch is the per-worker arena for ProcessWakeBatchWith: the
// per-item bookkeeping, the band-passed samples of every item that
// reaches feature extraction, and the channel/subset headers fed to
// the batched GCC sweep. Slice contents are valid for one batch.
type batchScratch struct {
	items []batchItem
	// ints backs per-item copies of the channel plans' active/healthy
	// lists (the planning scratch is reused item to item, so the plans
	// must not alias it). Items store offsets because ints may be
	// regrown mid-phase.
	ints []int
	// Preprocessed samples and recording headers for extraction-
	// eligible items.
	preBack   []float64
	chanHeads [][]float64
	preRecs   []audio.Recording
	selHeads  [][]float64
	selRecs   []audio.Recording
	extract   []*audio.Recording
}

// batchItem carries one request through the batch phases.
type batchItem struct {
	mode     Mode
	rec      *audio.Recording // validated (possibly repaired) input
	repaired int
	done     bool // decision finalized in phase one
	d        Decision
	err      error

	// Channel plan with active/healthy stored as ints-arena offsets.
	planOK       bool
	planDegraded int
	model        *orientation.Model
	activeOff    int
	activeLen    int
	healthyOff   int
	healthyLen   int

	// Precomputed by the extraction phase (extraction-eligible items
	// only). extractIdx maps the item to its slot in the batched
	// feature sweep (-1 = not swept).
	pre        *audio.Recording
	feats      []float64
	extractIdx int
}

// ProcessWakeBatch runs the decision pipeline over several wake-word
// recordings with one pooled Preprocessor. See ProcessWakeBatchWith.
func (s *System) ProcessWakeBatch(reqs []BatchRequest, results []BatchResult) []BatchResult {
	p := s.prePool.Get().(*Preprocessor)
	defer s.prePool.Put(p)
	return s.ProcessWakeBatchWith(p, reqs, results)
}

// ProcessWakeBatchWith processes a batch of wake-word recordings with
// shared per-worker state, appending one BatchResult per request to
// results (reused if its capacity allows). Per-item decisions are
// identical to calling ProcessWakeWith once per request in order —
// including the session semantics: an accepted facing decision opens
// the session for the items after it.
//
// What batching buys is the DSP schedule: when several items need
// orientation features, every channel of every same-FFT-size item is
// forward-transformed and PHAT-whitened back to back over one shared
// plan (the features workspace's batched sweep) instead of
// interleaving transforms with scoring item by item. Items whose
// decision never consumes the features (a session opened mid-batch by
// an earlier item) waste their share of the sweep but still decide
// exactly as the sequential path would.
//
// Batches fall back to plain sequential processing when there is
// nothing to share: a single item, an already-open session (the
// steady state, which skips feature extraction entirely), or a
// configured liveness gate (whose reject would make speculative
// extraction pure waste).
func (s *System) ProcessWakeBatchWith(p *Preprocessor, reqs []BatchRequest, results []BatchResult) []BatchResult {
	results = results[:0]
	// One model-set resolution for the whole batch: every item plans
	// and decides against the same registry version, so a hot-swap
	// mid-batch can never split the batch across versions.
	set := s.cfg.Models.ModelSet()
	if len(reqs) <= 1 || set.Liveness != nil || set.ArrayFingerprint != nil || set.RequireEnsemble || s.SessionActive() {
		for _, rq := range reqs {
			d, err := s.ProcessWakeWith(rq.Ctx, p, rq.Rec)
			results = append(results, BatchResult{Decision: d, Err: err})
		}
		return results
	}

	b := &p.batch
	if cap(b.items) < len(reqs) {
		b.items = make([]batchItem, len(reqs))
	}
	b.items = b.items[:len(reqs)]
	b.ints = b.ints[:0]

	// Phase one: per-item input hardening, mode dispatch and channel
	// planning, in request order.
	for i, rq := range reqs {
		it := &b.items[i]
		*it = batchItem{extractIdx: -1}
		tr := trace.FromContext(rq.Ctx)
		s.mu.Lock()
		it.mode = s.mode
		s.mu.Unlock()
		it.rec = rq.Rec
		if !s.cfg.DisableInputValidation {
			vStart := tr.Begin()
			clean, n, err := s.validateInput(rq.Rec)
			tr.End(trace.StageValidate, vStart)
			if err != nil {
				it.d = Decision{Reason: ReasonBadInput}
				it.err = err
				it.done = true
				continue
			}
			it.rec = clean
			it.repaired = n
		}
		switch it.mode {
		case ModeMute:
			it.d = Decision{Accepted: false, Reason: ReasonMuted}
			it.done = true
		case ModeNormal:
			it.d = Decision{Accepted: true, Reason: ReasonNormalMode}
			it.done = true
		case ModeHeadTalk:
			planStart := tr.Begin()
			plan := s.planChannelsInto(&p.plan, it.rec, set)
			tr.End(trace.StageChannelPlan, planStart)
			it.planOK = plan.ok
			it.planDegraded = plan.degraded
			it.model = plan.model
			it.activeOff, it.activeLen = len(b.ints), len(plan.active)
			b.ints = append(b.ints, plan.active...)
			it.healthyOff, it.healthyLen = len(b.ints), len(plan.healthy)
			b.ints = append(b.ints, plan.healthy...)
		}
	}

	// Phase two: band-pass every extraction-eligible item into the
	// batch arena and run one batched feature sweep across all of them.
	s.extractBatch(p, reqs)

	// Phase three: per-item decisions, in request order, exactly as the
	// sequential path would make them.
	for i := range b.items {
		it := &b.items[i]
		tr := trace.FromContext(reqs[i].Ctx)
		if it.done {
			if it.err != nil {
				s.logEvent(it.mode, it.d)
				tr.SetOutcome(it.mode.String(), false, it.d.Reason.Slug())
				results = append(results, BatchResult{Decision: it.d, Err: it.err})
				continue
			}
			it.d.RepairedSamples = it.repaired
			s.logEvent(it.mode, it.d)
			tr.SetGates(it.d.LiveScore, it.d.LiveRan, it.d.FacingScore, it.d.FacingRan)
			tr.SetOutcome(it.mode.String(), it.d.Accepted, it.d.Reason.Slug())
			results = append(results, BatchResult{Decision: it.d})
			continue
		}
		plan := channelPlan{
			ok:       it.planOK,
			degraded: it.planDegraded,
			model:    it.model,
			active:   b.ints[it.activeOff : it.activeOff+it.activeLen],
			healthy:  b.ints[it.healthyOff : it.healthyOff+it.healthyLen],
		}
		d, err := s.decideWithPlan(tr, p, it.rec, plan, it.pre, it.feats, set)
		if err != nil {
			s.logEvent(it.mode, Decision{Reason: ReasonProcessingFail})
			tr.SetGates(d.LiveScore, d.LiveRan, d.FacingScore, d.FacingRan)
			tr.SetOutcome(it.mode.String(), false, ReasonProcessingFail.Slug())
			results = append(results, BatchResult{Decision: Decision{Reason: ReasonProcessingFail}, Err: err})
			continue
		}
		d.RepairedSamples = it.repaired
		s.logEvent(it.mode, d)
		tr.SetGates(d.LiveScore, d.LiveRan, d.FacingScore, d.FacingRan)
		tr.SetOutcome(it.mode.String(), d.Accepted, d.Reason.Slug())
		results = append(results, BatchResult{Decision: d})
	}
	return results
}

// extractBatch band-passes every extraction-eligible item of the
// current batch into the batch arena and computes their orientation
// feature vectors with one batched GCC/FFT sweep. On a sweep error the
// items are left without precomputed features and the decision phase
// falls back to per-item extraction, reproducing the error with the
// sequential path's wrapping.
func (s *System) extractBatch(p *Preprocessor, reqs []BatchRequest) {
	b := &p.batch
	// Eligibility and sizing pass. Only plans that can reach the
	// orientation gate extract: a failed plan rejects as degraded and a
	// nil model rejects as unenrolled, both before features.
	nEligible, totalSamples, totalChans, totalSel := 0, 0, 0, 0
	for i := range b.items {
		it := &b.items[i]
		if it.done || !it.planOK || it.model == nil {
			continue
		}
		nEligible++
		totalSamples += it.rec.Len() * len(it.rec.Channels)
		totalChans += len(it.rec.Channels)
		totalSel += it.activeLen
	}
	if nEligible == 0 {
		return
	}
	if cap(b.preBack) < totalSamples {
		b.preBack = make([]float64, totalSamples)
	}
	if cap(b.chanHeads) < totalChans {
		b.chanHeads = make([][]float64, totalChans)
	}
	if cap(b.preRecs) < nEligible {
		b.preRecs = make([]audio.Recording, nEligible)
	}
	if cap(b.selHeads) < totalSel {
		b.selHeads = make([][]float64, totalSel)
	}
	if cap(b.selRecs) < nEligible {
		b.selRecs = make([]audio.Recording, nEligible)
	}
	if cap(b.extract) < nEligible {
		b.extract = make([]*audio.Recording, nEligible)
	}
	b.preRecs = b.preRecs[:nEligible]
	b.selRecs = b.selRecs[:nEligible]
	b.extract = b.extract[:0]

	sampleAt, chanAt, selAt, recAt := 0, 0, 0, 0
	for i := range b.items {
		it := &b.items[i]
		if it.done || !it.planOK || it.model == nil {
			continue
		}
		tr := trace.FromContext(reqs[i].Ctx)
		n := it.rec.Len()
		preStart := tr.Begin()
		start := time.Now()
		chans := b.chanHeads[chanAt : chanAt : chanAt+len(it.rec.Channels)]
		for _, ch := range it.rec.Channels {
			dst := b.preBack[sampleAt : sampleAt+n : sampleAt+n]
			p.bp.ApplyTo(dst, ch)
			chans = append(chans, dst)
			sampleAt += n
		}
		chanAt += len(it.rec.Channels)
		if p.ins != nil {
			p.ins.preprocess.ObserveDuration(time.Since(start))
		}
		tr.End(trace.StagePreprocess, preStart)

		b.preRecs[recAt] = audio.Recording{SampleRate: it.rec.SampleRate, Channels: chans}
		it.pre = &b.preRecs[recAt]
		src := it.pre
		if it.activeLen > 0 {
			active := b.ints[it.activeOff : it.activeOff+it.activeLen]
			sel := b.selHeads[selAt : selAt : selAt+it.activeLen]
			valid := true
			for _, ci := range active {
				if ci < 0 || ci >= len(chans) {
					valid = false
					break
				}
				sel = append(sel, chans[ci])
			}
			if !valid {
				// Leave feats nil: the decision phase reproduces the
				// out-of-range error through the sequential path.
				recAt++
				continue
			}
			selAt += it.activeLen
			b.selRecs[recAt] = audio.Recording{SampleRate: it.rec.SampleRate, Channels: sel}
			src = &b.selRecs[recAt]
		}
		it.extractIdx = len(b.extract)
		b.extract = append(b.extract, src)
		recAt++
	}
	if len(b.extract) == 0 {
		return
	}
	vecs, err := p.feats.ExtractBatch(b.extract, s.cfg.Features)
	if err != nil {
		return
	}
	for i := range b.items {
		it := &b.items[i]
		if it.extractIdx >= 0 {
			it.feats = vecs[it.extractIdx]
		}
	}
}
