package core

// Tests for per-decision tracing through the core pipeline: every
// stage that runs gets a span, the spans sum to the trace total, and
// the trace carries the channel plan, gate scores and outcome.

import (
	"context"
	"testing"
	"time"

	"headtalk/internal/features"
	"headtalk/internal/trace"
)

func TestTraceSpansCoverPipeline(t *testing.T) {
	featCfg := features.DefaultConfig(13, 48000)
	sys, err := NewSystem(Config{
		Features:    featCfg,
		Orientation: trainedOrientation(t, featCfg),
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.SetMode(ModeHeadTalk)

	r := trace.NewRecorder("core-1")
	ctx := trace.NewContext(context.Background(), r)
	d, err := sys.ProcessWake(ctx, markedRecording(true, 11))
	if err != nil {
		t.Fatal(err)
	}
	if !d.Accepted {
		t.Fatalf("decision %+v, want accept", d)
	}
	tr := r.Finish()

	// Every stage that ran must have a span (no liveness detector is
	// configured, so no liveness span), and StageDecide absorbs the
	// remainder so the table sums to the total.
	for _, stage := range []trace.Stage{
		trace.StageValidate, trace.StageChannelPlan, trace.StagePreprocess,
		trace.StageOrientation, trace.StageDecide,
	} {
		if _, ok := tr.Span(stage); !ok {
			t.Fatalf("stage %s missing from trace: %+v", stage, tr.Spans())
		}
	}
	if _, ok := tr.Span(trace.StageLiveness); ok {
		t.Fatal("liveness span recorded with no liveness gate configured")
	}
	var sum time.Duration
	for _, sp := range tr.Spans() {
		sum += sp.Duration
	}
	if sum != tr.Total || tr.Total <= 0 {
		t.Fatalf("spans sum %v != total %v", sum, tr.Total)
	}
	// Orientation span mirrors the decision's gate latency.
	if got, _ := tr.Span(trace.StageOrientation); got != d.OrientationLatency {
		t.Fatalf("orientation span %v != decision latency %v", got, d.OrientationLatency)
	}
	if !tr.Accepted || tr.Reason != "accepted" || tr.Mode != "headtalk" {
		t.Fatalf("trace outcome %+v", tr)
	}
	if !tr.FacingRan || tr.FacingScore != d.FacingScore {
		t.Fatalf("trace gate scores %+v vs decision %+v", tr, d)
	}
	if len(tr.PlanChannels) != 4 {
		t.Fatalf("trace channel plan %v, want the 4-channel array", tr.PlanChannels)
	}
}

func TestTraceBadInputOutcome(t *testing.T) {
	sys, err := NewSystem(Config{})
	if err != nil {
		t.Fatal(err)
	}
	r := trace.NewRecorder("core-2")
	ctx := trace.NewContext(context.Background(), r)
	if _, err := sys.ProcessWake(ctx, nil); err == nil {
		t.Fatal("nil recording accepted")
	}
	tr := r.Finish()
	if tr.Accepted || tr.Reason != "bad_input" {
		t.Fatalf("trace outcome %+v, want bad_input reject", tr)
	}
	if _, ok := tr.Span(trace.StageValidate); !ok {
		t.Fatal("validate span missing on the reject path")
	}
}

// TestUntracedProcessWakeUnchanged pins that the tracing hooks are
// inert without a recorder: decisions and history behave exactly as
// before.
func TestUntracedProcessWakeUnchanged(t *testing.T) {
	sys, err := NewSystem(Config{})
	if err != nil {
		t.Fatal(err)
	}
	d, err := sys.ProcessWake(context.Background(), markedRecording(true, 12))
	if err != nil || !d.Accepted || d.Reason != ReasonNormalMode {
		t.Fatalf("untraced decision %+v, %v", d, err)
	}
	if len(sys.History()) != 1 {
		t.Fatal("decision not logged")
	}
}
