package core

// Tests for the serving-layer support added to the core system: the
// bounded decision-log ring, the cached band-pass design with
// per-goroutine Preprocessors, metrics wiring, and concurrent
// hammering (run with -race).

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"

	"headtalk/internal/dsp"
	"headtalk/internal/features"
	"headtalk/internal/metrics"
)

func TestBoundedHistoryRing(t *testing.T) {
	clock := &fakeClock{now: time.Unix(1000, 0)}
	sys, err := NewSystem(Config{Clock: clock.Now, LogCapacity: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Normal mode: every wake is accepted and logged.
	for i := 0; i < 10; i++ {
		clock.Advance(time.Second)
		if _, err := sys.ProcessWake(context.Background(), markedRecording(true, uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	hist := sys.History()
	if len(hist) != 4 {
		t.Fatalf("history length = %d, want capacity 4", len(hist))
	}
	if got := sys.DroppedEvents(); got != 6 {
		t.Fatalf("dropped = %d, want 6", got)
	}
	// Oldest-first ordering: the surviving events are the last four.
	for i := 1; i < len(hist); i++ {
		if !hist[i].Time.After(hist[i-1].Time) {
			t.Fatalf("history not chronological: %v then %v", hist[i-1].Time, hist[i].Time)
		}
	}
	want := time.Unix(1000, 0).Add(7 * time.Second)
	if !hist[0].Time.Equal(want) {
		t.Fatalf("oldest surviving event at %v, want %v", hist[0].Time, want)
	}
	sys.ClearHistory()
	if len(sys.History()) != 0 || sys.DroppedEvents() != 0 {
		t.Fatal("ClearHistory should reset both the ring and the dropped count")
	}
}

func TestPreprocessorMatchesFreshDesign(t *testing.T) {
	sys, err := NewSystem(Config{})
	if err != nil {
		t.Fatal(err)
	}
	rec := markedRecording(true, 7)
	// Reference: a freshly designed filter, as the old per-call path
	// built.
	bp, err := dsp.NewButterworthBandPass(5, 100, 16000, 48000)
	if err != nil {
		t.Fatal(err)
	}
	want := bp.Apply(rec.Channels[0])

	p := sys.NewPreprocessor()
	for round := 0; round < 2; round++ { // reuse must not leak state
		got := p.Apply(rec)
		for i := range want {
			if math.Abs(got.Channels[0][i]-want[i]) > 1e-12 {
				t.Fatalf("round %d: cached filter diverges at sample %d: %g vs %g", round, i, got.Channels[0][i], want[i])
			}
		}
	}
}

func TestMetricsWiring(t *testing.T) {
	clock := &fakeClock{now: time.Unix(1000, 0)}
	reg := metrics.NewRegistry()
	featCfg := features.DefaultConfig(13, 48000)
	sys, err := NewSystem(Config{
		Clock:       clock.Now,
		Metrics:     reg,
		Features:    featCfg,
		Orientation: trainedOrientation(t, featCfg),
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.SetMode(ModeHeadTalk)
	if _, err := sys.ProcessWake(context.Background(), markedRecording(true, 80)); err != nil {
		t.Fatal(err)
	}
	sys.EndSession()
	if _, err := sys.ProcessWake(context.Background(), markedRecording(false, 81)); err != nil {
		t.Fatal(err)
	}
	s := reg.Snapshot()
	if s.Counters["headtalk.decisions.total"] != 2 {
		t.Fatalf("decisions.total = %d, want 2", s.Counters["headtalk.decisions.total"])
	}
	if s.Counters["headtalk.decisions.accepted"] != 1 || s.Counters["headtalk.decisions.rejected"] != 1 {
		t.Fatalf("accepted/rejected = %d/%d, want 1/1",
			s.Counters["headtalk.decisions.accepted"], s.Counters["headtalk.decisions.rejected"])
	}
	if s.Counters["headtalk.decisions.reason.accepted"] != 1 || s.Counters["headtalk.decisions.reason.not_facing"] != 1 {
		t.Fatalf("reason counters wrong: %v", s.Counters)
	}
	if h := s.Histograms["headtalk.gate.orientation.latency"]; h.Count != 2 {
		t.Fatalf("orientation gate latency observations = %d, want 2", h.Count)
	}
	if h := s.Histograms["headtalk.preprocess.latency"]; h.Count != 2 {
		t.Fatalf("preprocess latency observations = %d, want 2", h.Count)
	}
}

// TestConcurrentHammer mixes ProcessWake, SetMode, SessionActive,
// History and Preprocess from many goroutines against one System; with
// -race this is the system's concurrency proof. Decision counts are
// checked against the log + dropped counter so no event vanishes.
func TestConcurrentHammer(t *testing.T) {
	clock := &fakeClock{now: time.Unix(1000, 0)}
	featCfg := features.DefaultConfig(13, 48000)
	sys, err := NewSystem(Config{
		Clock:       clock.Now,
		LogCapacity: 8,
		Features:    featCfg,
		Orientation: trainedOrientation(t, featCfg),
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.SetMode(ModeHeadTalk)

	const workers = 8
	const perWorker = 6
	recs := []struct{ facing bool }{{true}, {false}}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				switch (w + i) % 4 {
				case 0:
					sys.SetMode(ModeHeadTalk)
				case 1:
					sys.SessionActive()
					sys.History()
					sys.DroppedEvents()
				default:
					r := recs[(w+i)%len(recs)]
					if _, err := sys.ProcessWake(context.Background(), markedRecording(r.facing, uint64(w*100+i))); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	logged := uint64(len(sys.History())) + sys.DroppedEvents()
	var wantDecisions uint64
	for w := 0; w < workers; w++ {
		for i := 0; i < perWorker; i++ {
			if (w+i)%4 >= 2 {
				wantDecisions++
			}
		}
	}
	if logged != wantDecisions {
		t.Fatalf("log+dropped = %d, want %d decisions", logged, wantDecisions)
	}
}
