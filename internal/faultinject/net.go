package faultinject

import (
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Network-level fault servers for federation chaos tests. Each one
// impersonates a peer that is broken in a specific, realistic way:
//
//   - BlackHole: TCP-alive but wedged — accepts and reads, never
//     answers. The worst peer: connections succeed, requests vanish,
//     only the caller's deadline ends the wait.
//   - Drip: alive and talking, uselessly slowly — trickles bytes that
//     never complete a response line, defeating naive "got some bytes"
//     liveness checks.
//
// A plain dead peer needs no helper: close its listener and dials fail
// fast with connection-refused.

// BlackHole is a listener that accepts connections and consumes
// requests without ever responding.
type BlackHole struct {
	ln    net.Listener
	conns atomic.Int64
	wg    sync.WaitGroup
	done  chan struct{}
}

// NewBlackHole starts a black hole on addr ("127.0.0.1:0" for an
// ephemeral port).
func NewBlackHole(addr string) (*BlackHole, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	b := &BlackHole{ln: ln, done: make(chan struct{})}
	b.wg.Add(1)
	go b.accept()
	return b, nil
}

// Addr is the listen address to hand to the system under test.
func (b *BlackHole) Addr() string { return b.ln.Addr().String() }

// Conns reports how many connections have been swallowed.
func (b *BlackHole) Conns() int64 { return b.conns.Load() }

// Close stops the listener and hangs up every swallowed connection.
func (b *BlackHole) Close() error {
	select {
	case <-b.done:
		return nil
	default:
	}
	close(b.done)
	err := b.ln.Close()
	b.wg.Wait()
	return err
}

func (b *BlackHole) accept() {
	defer b.wg.Done()
	for {
		conn, err := b.ln.Accept()
		if err != nil {
			return
		}
		b.conns.Add(1)
		b.wg.Add(1)
		go func() {
			defer b.wg.Done()
			defer conn.Close()
			buf := make([]byte, 4096)
			for {
				select {
				case <-b.done:
					return
				default:
				}
				// Keep the peer's writes flowing so it blocks on the read,
				// not the write — the realistic wedge.
				_ = conn.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
				if _, err := conn.Read(buf); err != nil {
					if ne, ok := err.(net.Error); ok && ne.Timeout() {
						continue
					}
					return
				}
			}
		}()
	}
}

// Drip is a listener that answers every connection with an endless
// trickle of bytes that never forms a complete response line.
type Drip struct {
	ln       net.Listener
	interval time.Duration
	wg       sync.WaitGroup
	done     chan struct{}
}

// NewDrip starts a drip server on addr emitting one byte per interval.
func NewDrip(addr string, interval time.Duration) (*Drip, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	if interval <= 0 {
		interval = 10 * time.Millisecond
	}
	d := &Drip{ln: ln, interval: interval, done: make(chan struct{})}
	d.wg.Add(1)
	go d.accept()
	return d, nil
}

// Addr is the listen address to hand to the system under test.
func (d *Drip) Addr() string { return d.ln.Addr().String() }

// Close stops the listener and every drip in progress.
func (d *Drip) Close() error {
	select {
	case <-d.done:
		return nil
	default:
	}
	close(d.done)
	err := d.ln.Close()
	d.wg.Wait()
	return err
}

func (d *Drip) accept() {
	defer d.wg.Done()
	for {
		conn, err := d.ln.Accept()
		if err != nil {
			return
		}
		d.wg.Add(1)
		go func() {
			defer d.wg.Done()
			defer conn.Close()
			ticker := time.NewTicker(d.interval)
			defer ticker.Stop()
			for {
				select {
				case <-d.done:
					return
				case <-ticker.C:
					// A space is JSON whitespace: valid stream prefix, never a
					// complete line.
					if _, err := conn.Write([]byte(" ")); err != nil {
						return
					}
				}
			}
		}()
	}
}
