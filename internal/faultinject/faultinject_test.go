package faultinject

import (
	"math"
	"math/rand/v2"
	"strings"
	"testing"
	"time"

	"headtalk/internal/audio"
)

func noiseRec(seed uint64) *audio.Recording {
	rng := rand.New(rand.NewPCG(seed, 11))
	rec := audio.NewRecording(48000, 4, 1024)
	for c := range rec.Channels {
		for i := range rec.Channels[c] {
			rec.Channels[c][i] = rng.NormFloat64()
		}
	}
	return rec
}

func hasNaN(ch []float64) bool {
	for _, v := range ch {
		if math.IsNaN(v) {
			return true
		}
	}
	return false
}

func allZero(ch []float64) bool {
	for _, v := range ch {
		if v != 0 {
			return false
		}
	}
	return true
}

func TestCorruptionClonesInput(t *testing.T) {
	in := New(Config{CorruptEvery: 1})
	hook := in.Hook()
	orig := noiseRec(1)
	out := hook(orig)
	if out == orig {
		t.Fatal("corrupting hook must return a clone")
	}
	if hasNaN(orig.Channels[0]) {
		t.Fatal("hook mutated the caller's recording")
	}
	for c, ch := range out.Channels {
		if !hasNaN(ch) {
			t.Fatalf("channel %d not corrupted", c)
		}
	}
	if s := in.Stats(); s.Calls != 1 || s.Corrupted != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestDropChannelsSilences(t *testing.T) {
	in := New(Config{DropChannelsEvery: 2, DropChannels: []int{1, 3, 99}})
	hook := in.Hook()
	first := hook(noiseRec(2)) // call 1: 1%2 != 0, untouched
	if allZero(first.Channels[1]) {
		t.Fatal("fault fired on a non-multiple call")
	}
	second := hook(noiseRec(3)) // call 2: fires
	if !allZero(second.Channels[1]) || !allZero(second.Channels[3]) {
		t.Fatal("listed channels not silenced")
	}
	if allZero(second.Channels[0]) || allZero(second.Channels[2]) {
		t.Fatal("unlisted channels were touched")
	}
	if s := in.Stats(); s.Calls != 2 || s.Dropped != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestPanicFault(t *testing.T) {
	in := New(Config{PanicEvery: 1})
	hook := in.Hook()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("hook should have panicked")
		}
		if !strings.Contains(r.(string), "faultinject: induced panic") {
			t.Fatalf("panic value %v", r)
		}
		if s := in.Stats(); s.Panics != 1 {
			t.Fatalf("stats = %+v", s)
		}
	}()
	hook(noiseRec(4))
}

func TestSlowFault(t *testing.T) {
	in := New(Config{SlowEvery: 1, Delay: 20 * time.Millisecond})
	hook := in.Hook()
	start := time.Now()
	hook(noiseRec(5))
	if el := time.Since(start); el < 20*time.Millisecond {
		t.Fatalf("slow fault stalled only %v", el)
	}
	if s := in.Stats(); s.Slowed != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestDisabledPassesThrough(t *testing.T) {
	in := New(Config{CorruptEvery: 1})
	in.SetEnabled(false)
	hook := in.Hook()
	rec := noiseRec(6)
	if out := hook(rec); out != rec {
		t.Fatal("disabled injector must pass recordings through")
	}
	if s := in.Stats(); s.Calls != 0 {
		t.Fatalf("disabled injector counted calls: %+v", s)
	}
	in.SetEnabled(true)
	if out := hook(noiseRec(7)); out == nil || !hasNaN(out.Channels[0]) {
		t.Fatal("re-enabled injector should corrupt again")
	}
}

func TestCombinedFaultsOnSameCall(t *testing.T) {
	in := New(Config{CorruptEvery: 1, DropChannelsEvery: 1, DropChannels: []int{0}})
	out := in.Hook()(noiseRec(8))
	if !allZero(out.Channels[0]) {
		t.Fatal("drop fault missing")
	}
	if !hasNaN(out.Channels[1]) {
		t.Fatal("corrupt fault missing")
	}
	if s := in.Stats(); s.Corrupted != 1 || s.Dropped != 1 {
		t.Fatalf("stats = %+v", s)
	}
}
