// Package faultinject is a test-only fault injector for the HeadTalk
// serving stack. It produces a hook compatible with
// serve.Config.FaultHook that deterministically corrupts a configurable
// fraction of recordings in flight — NaN frames, dropped (silenced)
// channels, induced panics, slow stages — so chaos tests can assert the
// system's fail-closed invariants under -race: every fault must surface
// as a rejected decision or a typed error, never an accept, and never a
// lost submission or a dead worker.
//
// The injector never mutates the recording it is handed: faults that
// change samples are applied to a clone, because the same *Recording
// may be submitted concurrently by other goroutines.
package faultinject

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"headtalk/internal/audio"
)

// Config selects which faults fire and how often. Each Every field is a
// modulus over the injector's call counter: 0 disables the fault, N
// fires it on every Nth call (1 = every call). Faults are independent —
// a call number divisible by several moduli suffers several faults.
type Config struct {
	// PanicEvery induces a pipeline panic (after any other faults on
	// the same call have been applied).
	PanicEvery int
	// CorruptEvery overwrites a span of samples with NaN on every
	// channel — the shape of a DMA/transport glitch. Input validation
	// must reject (or repair) these.
	CorruptEvery int
	// DropChannelsEvery silences the channels listed in DropChannels
	// (flatline at zero — how a dead MEMS element presents). Channel
	// health must score them dead and degrade the array.
	DropChannelsEvery int
	// DropChannels are the channel indices DropChannelsEvery silences.
	// Indices out of range are ignored.
	DropChannels []int
	// SlowEvery stalls the hook for Delay — a slow stage, for deadline
	// and queue-backpressure behavior.
	SlowEvery int
	// Delay is the SlowEvery stall (default 10 ms).
	Delay time.Duration
}

// Stats counts what the injector has done.
type Stats struct {
	// Calls is how many recordings passed through the hook while
	// enabled (disabled calls are not counted).
	Calls uint64
	// Panics, Corrupted, Dropped and Slowed count applied faults.
	Panics    uint64
	Corrupted uint64
	Dropped   uint64
	Slowed    uint64
}

// Injector deterministically applies faults per Config. All methods are
// safe for concurrent use; the call counter makes the fault sequence
// reproducible for a fixed submission order.
type Injector struct {
	cfg     Config
	enabled atomic.Bool

	calls     atomic.Uint64
	panics    atomic.Uint64
	corrupted atomic.Uint64
	dropped   atomic.Uint64
	slowed    atomic.Uint64
}

// New builds an enabled injector.
func New(cfg Config) *Injector {
	if cfg.Delay == 0 {
		cfg.Delay = 10 * time.Millisecond
	}
	in := &Injector{cfg: cfg}
	in.enabled.Store(true)
	return in
}

// SetEnabled toggles fault injection; a disabled injector passes every
// recording through untouched and stops counting calls.
func (in *Injector) SetEnabled(on bool) { in.enabled.Store(on) }

// Stats snapshots the fault counters.
func (in *Injector) Stats() Stats {
	return Stats{
		Calls:     in.calls.Load(),
		Panics:    in.panics.Load(),
		Corrupted: in.corrupted.Load(),
		Dropped:   in.dropped.Load(),
		Slowed:    in.slowed.Load(),
	}
}

// fires reports whether a fault with modulus every fires on call n.
func fires(n uint64, every int) bool {
	return every > 0 && n%uint64(every) == 0
}

// Hook returns the fault-application function to install as
// serve.Config.FaultHook.
func (in *Injector) Hook() func(*audio.Recording) *audio.Recording {
	return func(rec *audio.Recording) *audio.Recording {
		if !in.enabled.Load() {
			return rec
		}
		n := in.calls.Add(1)
		if fires(n, in.cfg.SlowEvery) {
			in.slowed.Add(1)
			time.Sleep(in.cfg.Delay)
		}
		corrupt := fires(n, in.cfg.CorruptEvery)
		drop := fires(n, in.cfg.DropChannelsEvery) && len(in.cfg.DropChannels) > 0
		if (corrupt || drop) && rec != nil {
			rec = rec.Clone() // never mutate the caller's recording
			if corrupt {
				in.corrupted.Add(1)
				corruptFrames(rec)
			}
			if drop {
				in.dropped.Add(1)
				silenceChannels(rec, in.cfg.DropChannels)
			}
		}
		if fires(n, in.cfg.PanicEvery) {
			in.panics.Add(1)
			panic(fmt.Sprintf("faultinject: induced panic on call %d", n))
		}
		return rec
	}
}

// corruptFrames overwrites the middle eighth of every channel with NaN.
func corruptFrames(rec *audio.Recording) {
	for _, ch := range rec.Channels {
		if len(ch) == 0 {
			continue
		}
		lo := len(ch) / 2
		hi := lo + len(ch)/8 + 1
		if hi > len(ch) {
			hi = len(ch)
		}
		for i := lo; i < hi; i++ {
			ch[i] = math.NaN()
		}
	}
}

// silenceChannels flatlines the listed channels at zero.
func silenceChannels(rec *audio.Recording, idx []int) {
	for _, c := range idx {
		if c < 0 || c >= len(rec.Channels) {
			continue
		}
		ch := rec.Channels[c]
		for i := range ch {
			ch[i] = 0
		}
	}
}
