// Package geom provides the small amount of 3-D geometry used by the
// room simulator and microphone-array models: vectors, azimuth angles
// and rotations in the horizontal plane.
package geom

import "math"

// Vec3 is a point or direction in meters. X and Y span the horizontal
// plane; Z is height.
type Vec3 struct {
	X, Y, Z float64
}

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns v scaled by s.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{v.X * s, v.Y * s, v.Z * s} }

// Dot returns the dot product of v and w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Norm returns the Euclidean length of v.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Dist returns the Euclidean distance between v and w.
func (v Vec3) Dist(w Vec3) float64 { return v.Sub(w).Norm() }

// Unit returns v normalized to unit length; the zero vector is
// returned unchanged.
func (v Vec3) Unit() Vec3 {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// Deg2Rad converts degrees to radians.
func Deg2Rad(d float64) float64 { return d * math.Pi / 180 }

// Rad2Deg converts radians to degrees.
func Rad2Deg(r float64) float64 { return r * 180 / math.Pi }

// NormalizeDeg maps an angle in degrees to (-180, 180].
func NormalizeDeg(d float64) float64 {
	d = math.Mod(d, 360)
	if d > 180 {
		d -= 360
	}
	if d <= -180 {
		d += 360
	}
	return d
}

// HeadingVec returns the unit direction in the horizontal plane for an
// azimuth given in degrees, measured counterclockwise from +X.
func HeadingVec(azimuthDeg float64) Vec3 {
	r := Deg2Rad(azimuthDeg)
	return Vec3{X: math.Cos(r), Y: math.Sin(r)}
}

// Azimuth returns the horizontal-plane angle of v in degrees in
// (-180, 180], measured counterclockwise from +X. The zero vector maps
// to 0.
func Azimuth(v Vec3) float64 {
	if v.X == 0 && v.Y == 0 {
		return 0
	}
	return Rad2Deg(math.Atan2(v.Y, v.X))
}

// AngleBetweenDeg returns the unsigned horizontal-plane angle in
// degrees [0, 180] between direction dir and the direction from `from`
// toward `to`. This is the "off-axis" angle used by the directivity
// model: 0 means the source is pointed straight at the target.
func AngleBetweenDeg(dir Vec3, from, to Vec3) float64 {
	look := to.Sub(from)
	look.Z = 0
	dir.Z = 0
	ln, dn := look.Norm(), dir.Norm()
	if ln == 0 || dn == 0 {
		return 0
	}
	cos := dir.Dot(look) / (ln * dn)
	if cos > 1 {
		cos = 1
	}
	if cos < -1 {
		cos = -1
	}
	return Rad2Deg(math.Acos(cos))
}

// RotateZ rotates v around the vertical axis by deg degrees
// (counterclockwise when viewed from above).
func RotateZ(v Vec3, deg float64) Vec3 {
	r := Deg2Rad(deg)
	c, s := math.Cos(r), math.Sin(r)
	return Vec3{
		X: v.X*c - v.Y*s,
		Y: v.X*s + v.Y*c,
		Z: v.Z,
	}
}
