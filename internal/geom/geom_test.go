package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func vecAlmostEq(a, b Vec3, tol float64) bool {
	return math.Abs(a.X-b.X) <= tol && math.Abs(a.Y-b.Y) <= tol && math.Abs(a.Z-b.Z) <= tol
}

func TestVecArithmetic(t *testing.T) {
	a := Vec3{1, 2, 3}
	b := Vec3{4, -5, 6}
	if got := a.Add(b); got != (Vec3{5, -3, 9}) {
		t.Errorf("Add = %+v", got)
	}
	if got := a.Sub(b); got != (Vec3{-3, 7, -3}) {
		t.Errorf("Sub = %+v", got)
	}
	if got := a.Scale(2); got != (Vec3{2, 4, 6}) {
		t.Errorf("Scale = %+v", got)
	}
	if got := a.Dot(b); got != 4-10+18 {
		t.Errorf("Dot = %g", got)
	}
}

func TestNormDistUnit(t *testing.T) {
	v := Vec3{3, 4, 0}
	if v.Norm() != 5 {
		t.Errorf("Norm = %g", v.Norm())
	}
	if got := v.Dist(Vec3{0, 0, 0}); got != 5 {
		t.Errorf("Dist = %g", got)
	}
	u := v.Unit()
	if math.Abs(u.Norm()-1) > 1e-12 {
		t.Errorf("Unit norm = %g", u.Norm())
	}
	zero := Vec3{}
	if zero.Unit() != zero {
		t.Error("Unit of zero vector should be zero")
	}
}

func TestDegRadRoundTrip(t *testing.T) {
	for _, d := range []float64{0, 45, 90, -135, 180} {
		if got := Rad2Deg(Deg2Rad(d)); math.Abs(got-d) > 1e-12 {
			t.Errorf("round trip %g -> %g", d, got)
		}
	}
}

func TestNormalizeDeg(t *testing.T) {
	cases := map[float64]float64{
		0: 0, 180: 180, -180: 180, 181: -179, 360: 0, 540: 180, -90: -90, 720: 0, -541: 179,
	}
	for in, want := range cases {
		if got := NormalizeDeg(in); math.Abs(got-want) > 1e-9 {
			t.Errorf("NormalizeDeg(%g) = %g, want %g", in, got, want)
		}
	}
}

func TestNormalizeDegProperty(t *testing.T) {
	f := func(d float64) bool {
		if math.IsNaN(d) || math.IsInf(d, 0) || math.Abs(d) > 1e9 {
			return true
		}
		got := NormalizeDeg(d)
		return got > -180-1e-9 && got <= 180+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHeadingAzimuthInverse(t *testing.T) {
	for _, az := range []float64{0, 30, 90, -45, 135, 180} {
		v := HeadingVec(az)
		if got := Azimuth(v); math.Abs(NormalizeDeg(got-az)) > 1e-9 {
			t.Errorf("Azimuth(HeadingVec(%g)) = %g", az, got)
		}
	}
	if Azimuth(Vec3{}) != 0 {
		t.Error("azimuth of zero vector should be 0")
	}
}

func TestAngleBetweenDeg(t *testing.T) {
	origin := Vec3{}
	target := Vec3{X: 1}
	cases := []struct {
		facing float64
		want   float64
	}{
		{0, 0}, {90, 90}, {180, 180}, {-90, 90}, {45, 45},
	}
	for _, c := range cases {
		got := AngleBetweenDeg(HeadingVec(c.facing), origin, target)
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("facing %g°: off-axis %g, want %g", c.facing, got, c.want)
		}
	}
}

func TestAngleBetweenIgnoresHeight(t *testing.T) {
	// A target above the source should not change the horizontal
	// off-axis angle.
	got := AngleBetweenDeg(HeadingVec(0), Vec3{Z: 1.65}, Vec3{X: 3, Z: 0.74})
	if math.Abs(got) > 1e-9 {
		t.Errorf("height leaked into horizontal angle: %g", got)
	}
}

func TestAngleBetweenDegenerate(t *testing.T) {
	if got := AngleBetweenDeg(HeadingVec(0), Vec3{}, Vec3{}); got != 0 {
		t.Errorf("coincident points: %g, want 0", got)
	}
}

func TestRotateZ(t *testing.T) {
	v := Vec3{X: 1, Z: 5}
	got := RotateZ(v, 90)
	if !vecAlmostEq(got, Vec3{Y: 1, Z: 5}, 1e-12) {
		t.Errorf("RotateZ 90° = %+v", got)
	}
	// Rotation preserves norm.
	f := func(x, y, deg float64) bool {
		if math.IsNaN(x+y+deg) || math.IsInf(x+y+deg, 0) || math.Abs(x) > 1e6 || math.Abs(y) > 1e6 {
			return true
		}
		v := Vec3{X: x, Y: y}
		r := RotateZ(v, deg)
		return math.Abs(r.Norm()-v.Norm()) < 1e-6*(1+v.Norm())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
