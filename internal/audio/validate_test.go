package audio

import (
	"errors"
	"math"
	"math/rand/v2"
	"testing"
	"time"
)

// noiseRecording returns a healthy Gaussian recording: loud (sigma 1,
// peaks well past 1.0) but not clipped — amplitude alone must never
// trip the clip detector.
func noiseRecording(channels, n int, seed uint64) *Recording {
	rng := rand.New(rand.NewPCG(seed, 11))
	rec := NewRecording(48000, channels, n)
	for c := range rec.Channels {
		for i := range rec.Channels[c] {
			rec.Channels[c][i] = rng.NormFloat64()
		}
	}
	return rec
}

func reasonOf(t *testing.T, err error) BadInputReason {
	t.Helper()
	bad, ok := AsBadInput(err)
	if !ok {
		t.Fatalf("error %v is not *ErrBadInput", err)
	}
	return bad.Reason
}

func TestValidateAcceptsHealthyRecording(t *testing.T) {
	if err := Validate(noiseRecording(4, 4800, 1), ValidateOptions{SampleRate: 48000}); err != nil {
		t.Fatalf("healthy recording rejected: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	clipped := NewRecording(48000, 2, 4800)
	for c := range clipped.Channels {
		for i := range clipped.Channels[c] {
			// Hard-clipped square-ish wave: half the samples pinned at
			// the rail.
			if i%2 == 0 {
				clipped.Channels[c][i] = 1.0
			} else {
				clipped.Channels[c][i] = 0.1
			}
		}
	}
	nan := noiseRecording(2, 4800, 2)
	nan.Channels[1][100] = math.NaN()
	inf := noiseRecording(2, 4800, 3)
	inf.Channels[0][7] = math.Inf(1)
	ragged := noiseRecording(2, 4800, 4)
	ragged.Channels[1] = ragged.Channels[1][:100]
	wrongRate := noiseRecording(2, 4800, 5)
	wrongRate.SampleRate = 16000

	cases := []struct {
		name string
		rec  *Recording
		opt  ValidateOptions
		want BadInputReason
	}{
		{"nil", nil, ValidateOptions{}, BadNil},
		{"no channels", &Recording{SampleRate: 48000}, ValidateOptions{}, BadNoChannels},
		{"empty", NewRecording(48000, 2, 0), ValidateOptions{}, BadEmpty},
		{"ragged", ragged, ValidateOptions{}, BadRagged},
		{"zero rate", &Recording{Channels: [][]float64{{1}}}, ValidateOptions{}, BadSampleRate},
		{"nan rate", &Recording{SampleRate: math.NaN(), Channels: [][]float64{{1}}}, ValidateOptions{}, BadSampleRate},
		{"rate mismatch", wrongRate, ValidateOptions{SampleRate: 48000}, BadSampleRate},
		{"too short", noiseRecording(2, 100, 6), ValidateOptions{}, BadTooShort},
		{"too long", noiseRecording(1, 4800, 7), ValidateOptions{MaxDuration: time.Millisecond}, BadTooLong},
		{"nan samples", nan, ValidateOptions{}, BadNonFinite},
		{"inf samples", inf, ValidateOptions{}, BadNonFinite},
		{"clipped", clipped, ValidateOptions{}, BadClipped},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := Validate(c.rec, c.opt)
			if err == nil {
				t.Fatalf("Validate(%s) accepted bad input", c.name)
			}
			if got := reasonOf(t, err); got != c.want {
				t.Fatalf("reason = %s, want %s (err: %v)", got, c.want, err)
			}
		})
	}
}

func TestValidateDisabledChecks(t *testing.T) {
	short := noiseRecording(1, 10, 8)
	if err := Validate(short, ValidateOptions{MinDuration: -1}); err != nil {
		t.Fatalf("MinDuration<0 should disable the length check: %v", err)
	}
	if err := Validate(short, ValidateOptions{}); err == nil {
		t.Fatal("default options should reject a 10-sample recording")
	}
}

func TestValidateRateTolerance(t *testing.T) {
	rec := noiseRecording(2, 4800, 9)
	rec.SampleRate = 48010
	if err := Validate(rec, ValidateOptions{SampleRate: 48000}); err == nil {
		t.Fatal("exact-match rate check should reject 48010 Hz")
	}
	if err := Validate(rec, ValidateOptions{SampleRate: 48000, RateTolerance: 0.01}); err != nil {
		t.Fatalf("1%% tolerance should accept 48010 Hz: %v", err)
	}
}

func TestRepairFixesNonFinite(t *testing.T) {
	rec := noiseRecording(2, 4800, 10)
	rec.Channels[0][5] = math.NaN()
	rec.Channels[1][9] = math.Inf(-1)
	orig0 := rec.Channels[0][5]

	clean, n := Repair(rec)
	if n != 2 {
		t.Fatalf("repaired %d samples, want 2", n)
	}
	if clean.Channels[0][5] != 0 || clean.Channels[1][9] != 0 {
		t.Fatal("non-finite samples not zeroed in the copy")
	}
	if !math.IsNaN(orig0) || !math.IsNaN(rec.Channels[0][5]) {
		t.Fatal("Repair must not mutate its input")
	}
	if err := Validate(clean, ValidateOptions{SampleRate: 48000}); err != nil {
		t.Fatalf("repaired recording should validate: %v", err)
	}
}

func TestRepairNil(t *testing.T) {
	if r, n := Repair(nil); r != nil || n != 0 {
		t.Fatal("Repair(nil) should be a no-op")
	}
}

func TestErrBadInputMessage(t *testing.T) {
	err := &ErrBadInput{Reason: BadNonFinite, Detail: "3 NaN/Inf samples", Count: 3}
	if err.Error() == "" {
		t.Fatal("empty message")
	}
	var target *ErrBadInput
	if !errors.As(error(err), &target) || target.Count != 3 {
		t.Fatal("errors.As should surface the typed error")
	}
	if len(BadInputReasons()) != 9 {
		t.Fatalf("BadInputReasons() lists %d reasons, want 9", len(BadInputReasons()))
	}
}
