package audio

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// WAV I/O supports 16-bit PCM, the format the prototype devices record
// in. Multi-channel recordings are interleaved per the RIFF spec.

const (
	riffMagic = "RIFF"
	waveMagic = "WAVE"
	fmtChunk  = "fmt "
	dataChunk = "data"
)

// WriteWAV encodes rec as 16-bit PCM WAV. Samples are clipped to
// [-1, 1].
func WriteWAV(w io.Writer, rec *Recording) error {
	if len(rec.Channels) == 0 {
		return fmt.Errorf("audio: cannot write WAV with zero channels")
	}
	channels := len(rec.Channels)
	n := rec.Len()
	for i, ch := range rec.Channels {
		if len(ch) != n {
			return fmt.Errorf("audio: channel %d length %d != %d", i, len(ch), n)
		}
	}
	sampleRate := uint32(math.Round(rec.SampleRate))
	byteRate := sampleRate * uint32(channels) * 2
	blockAlign := uint16(channels * 2)
	dataSize := uint32(n * channels * 2)

	var header [44]byte
	copy(header[0:4], riffMagic)
	binary.LittleEndian.PutUint32(header[4:8], 36+dataSize)
	copy(header[8:12], waveMagic)
	copy(header[12:16], fmtChunk)
	binary.LittleEndian.PutUint32(header[16:20], 16)
	binary.LittleEndian.PutUint16(header[20:22], 1) // PCM
	binary.LittleEndian.PutUint16(header[22:24], uint16(channels))
	binary.LittleEndian.PutUint32(header[24:28], sampleRate)
	binary.LittleEndian.PutUint32(header[28:32], byteRate)
	binary.LittleEndian.PutUint16(header[32:34], blockAlign)
	binary.LittleEndian.PutUint16(header[34:36], 16)
	copy(header[36:40], dataChunk)
	binary.LittleEndian.PutUint32(header[40:44], dataSize)
	if _, err := w.Write(header[:]); err != nil {
		return fmt.Errorf("audio: writing WAV header: %w", err)
	}

	buf := make([]byte, n*channels*2)
	for i := 0; i < n; i++ {
		for c := 0; c < channels; c++ {
			v := rec.Channels[c][i]
			if v > 1 {
				v = 1
			}
			if v < -1 {
				v = -1
			}
			s := int16(math.Round(v * 32767))
			binary.LittleEndian.PutUint16(buf[(i*channels+c)*2:], uint16(s))
		}
	}
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("audio: writing WAV data: %w", err)
	}
	return nil
}

// ReadWAV decodes a 16-bit PCM WAV stream into a Recording.
func ReadWAV(r io.Reader) (*Recording, error) {
	var header [12]byte
	if _, err := io.ReadFull(r, header[:]); err != nil {
		return nil, fmt.Errorf("audio: reading RIFF header: %w", err)
	}
	if string(header[0:4]) != riffMagic || string(header[8:12]) != waveMagic {
		return nil, fmt.Errorf("audio: not a RIFF/WAVE stream")
	}
	var (
		channels   uint16
		sampleRate uint32
		bits       uint16
		data       []byte
	)
	for {
		var chunk [8]byte
		if _, err := io.ReadFull(r, chunk[:]); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				break
			}
			return nil, fmt.Errorf("audio: reading chunk header: %w", err)
		}
		id := string(chunk[0:4])
		size := binary.LittleEndian.Uint32(chunk[4:8])
		body := make([]byte, size)
		if _, err := io.ReadFull(r, body); err != nil {
			return nil, fmt.Errorf("audio: reading %q chunk: %w", id, err)
		}
		switch id {
		case fmtChunk:
			if size < 16 {
				return nil, fmt.Errorf("audio: fmt chunk too small (%d bytes)", size)
			}
			format := binary.LittleEndian.Uint16(body[0:2])
			if format != 1 {
				return nil, fmt.Errorf("audio: unsupported WAV format %d (want PCM)", format)
			}
			channels = binary.LittleEndian.Uint16(body[2:4])
			sampleRate = binary.LittleEndian.Uint32(body[4:8])
			bits = binary.LittleEndian.Uint16(body[14:16])
		case dataChunk:
			data = body
		}
		if size%2 == 1 {
			// Chunks are word-aligned; skip the pad byte.
			var pad [1]byte
			if _, err := io.ReadFull(r, pad[:]); err != nil && err != io.EOF {
				return nil, fmt.Errorf("audio: reading chunk padding: %w", err)
			}
		}
	}
	if channels == 0 || data == nil {
		return nil, fmt.Errorf("audio: missing fmt or data chunk")
	}
	if bits != 16 {
		return nil, fmt.Errorf("audio: unsupported bit depth %d (want 16)", bits)
	}
	frames := len(data) / (int(channels) * 2)
	rec := NewRecording(float64(sampleRate), int(channels), frames)
	for i := 0; i < frames; i++ {
		for c := 0; c < int(channels); c++ {
			raw := int16(binary.LittleEndian.Uint16(data[(i*int(channels)+c)*2:]))
			rec.Channels[c][i] = float64(raw) / 32767
		}
	}
	return rec, nil
}
