package audio

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// WAV I/O supports 16-bit PCM, the format the prototype devices record
// in. Multi-channel recordings are interleaved per the RIFF spec.
//
// ReadWAV is attacker-facing (the daemon decodes WAV paths named by
// network peers), so it must never panic, never allocate more than a
// bounded amount from header-declared sizes, and never emit samples
// outside [-1, 1]. Failures are typed (*ErrMalformedWAV) so callers
// can classify them without string matching.

const (
	riffMagic = "RIFF"
	waveMagic = "WAVE"
	fmtChunk  = "fmt "
	dataChunk = "data"
)

// Decode-hardening limits.
const (
	// DefaultMaxWAVBytes caps the total chunk payload ReadWAV will
	// consume (and in particular allocate) from one stream. A 12-byte
	// header claiming a 4 GiB data chunk must not make the daemon
	// allocate 4 GiB before the read fails; use ReadWAVLimit to raise
	// or lower the cap.
	DefaultMaxWAVBytes = 256 << 20
	// MaxWAVChannels bounds the fmt chunk's channel count. The largest
	// prototype array has 8 microphones; anything past this is a
	// corrupt or hostile header, not a recording.
	MaxWAVChannels = 64
	// MaxWAVSampleRate bounds the fmt chunk's sample rate (1.048 MHz —
	// an order of magnitude past any audio ADC this system meets).
	MaxWAVSampleRate = 1 << 20
)

// WAVReason classifies a malformed-WAV failure.
type WAVReason string

// Malformed-WAV reasons.
const (
	WAVNotRIFF      WAVReason = "not_riff"
	WAVTruncated    WAVReason = "truncated"
	WAVTooLarge     WAVReason = "too_large"
	WAVBadFormat    WAVReason = "bad_format"
	WAVBadRate      WAVReason = "bad_sample_rate"
	WAVBadChannels  WAVReason = "bad_channels"
	WAVMissingChunk WAVReason = "missing_chunk"
)

// ErrMalformedWAV is the typed error ReadWAV returns for any stream it
// rejects. Callers match it with errors.As (or AsMalformedWAV) and
// branch on Reason.
type ErrMalformedWAV struct {
	Reason WAVReason
	Detail string
}

// Error implements error.
func (e *ErrMalformedWAV) Error() string {
	if e.Detail == "" {
		return fmt.Sprintf("audio: malformed WAV (%s)", e.Reason)
	}
	return fmt.Sprintf("audio: malformed WAV (%s): %s", e.Reason, e.Detail)
}

// AsMalformedWAV unwraps err to an *ErrMalformedWAV if one is in its
// chain.
func AsMalformedWAV(err error) (*ErrMalformedWAV, bool) {
	var e *ErrMalformedWAV
	if errors.As(err, &e) {
		return e, true
	}
	return nil, false
}

// WriteWAV encodes rec as 16-bit PCM WAV. Samples are clipped to
// [-1, 1].
func WriteWAV(w io.Writer, rec *Recording) error {
	if len(rec.Channels) == 0 {
		return fmt.Errorf("audio: cannot write WAV with zero channels")
	}
	channels := len(rec.Channels)
	n := rec.Len()
	for i, ch := range rec.Channels {
		if len(ch) != n {
			return fmt.Errorf("audio: channel %d length %d != %d", i, len(ch), n)
		}
	}
	sampleRate := uint32(math.Round(rec.SampleRate))
	byteRate := sampleRate * uint32(channels) * 2
	blockAlign := uint16(channels * 2)
	dataSize := uint32(n * channels * 2)

	var header [44]byte
	copy(header[0:4], riffMagic)
	binary.LittleEndian.PutUint32(header[4:8], 36+dataSize)
	copy(header[8:12], waveMagic)
	copy(header[12:16], fmtChunk)
	binary.LittleEndian.PutUint32(header[16:20], 16)
	binary.LittleEndian.PutUint16(header[20:22], 1) // PCM
	binary.LittleEndian.PutUint16(header[22:24], uint16(channels))
	binary.LittleEndian.PutUint32(header[24:28], sampleRate)
	binary.LittleEndian.PutUint32(header[28:32], byteRate)
	binary.LittleEndian.PutUint16(header[32:34], blockAlign)
	binary.LittleEndian.PutUint16(header[34:36], 16)
	copy(header[36:40], dataChunk)
	binary.LittleEndian.PutUint32(header[40:44], dataSize)
	if _, err := w.Write(header[:]); err != nil {
		return fmt.Errorf("audio: writing WAV header: %w", err)
	}

	buf := make([]byte, n*channels*2)
	for i := 0; i < n; i++ {
		for c := 0; c < channels; c++ {
			v := rec.Channels[c][i]
			if v > 1 {
				v = 1
			}
			if v < -1 {
				v = -1
			}
			s := int16(math.Round(v * 32767))
			binary.LittleEndian.PutUint16(buf[(i*channels+c)*2:], uint16(s))
		}
	}
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("audio: writing WAV data: %w", err)
	}
	return nil
}

// ReadWAV decodes a 16-bit PCM WAV stream into a Recording with the
// default DefaultMaxWAVBytes payload cap.
func ReadWAV(r io.Reader) (*Recording, error) {
	return ReadWAVLimit(r, DefaultMaxWAVBytes)
}

// ReadWAVLimit is ReadWAV with an explicit cap on the total chunk
// payload (per-chunk and cumulative) the decoder will consume. The cap
// is enforced against the header-declared sizes *before* any
// allocation, so a tiny stream claiming a huge chunk fails with
// WAVTooLarge instead of allocating. maxBytes <= 0 selects
// DefaultMaxWAVBytes. Rejections are typed *ErrMalformedWAV.
func ReadWAVLimit(r io.Reader, maxBytes int64) (*Recording, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxWAVBytes
	}
	var header [12]byte
	if _, err := io.ReadFull(r, header[:]); err != nil {
		return nil, &ErrMalformedWAV{Reason: WAVTruncated, Detail: fmt.Sprintf("reading RIFF header: %v", err)}
	}
	if string(header[0:4]) != riffMagic || string(header[8:12]) != waveMagic {
		return nil, &ErrMalformedWAV{Reason: WAVNotRIFF, Detail: "not a RIFF/WAVE stream"}
	}
	var (
		haveFmt    bool
		channels   uint16
		sampleRate uint32
		bits       uint16
		data       []byte
		budget     = maxBytes
	)
	for {
		var chunk [8]byte
		if _, err := io.ReadFull(r, chunk[:]); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				break
			}
			return nil, &ErrMalformedWAV{Reason: WAVTruncated, Detail: fmt.Sprintf("reading chunk header: %v", err)}
		}
		id := string(chunk[0:4])
		size := int64(binary.LittleEndian.Uint32(chunk[4:8]))
		// Enforce the cap on the declared size before touching memory:
		// the size field is attacker-controlled and must never drive an
		// allocation larger than the budget.
		if size > budget {
			return nil, &ErrMalformedWAV{
				Reason: WAVTooLarge,
				Detail: fmt.Sprintf("%q chunk claims %d bytes with %d of the %d-byte budget left", id, size, budget, maxBytes),
			}
		}
		budget -= size
		switch id {
		case fmtChunk:
			if size < 16 {
				return nil, &ErrMalformedWAV{Reason: WAVBadFormat, Detail: fmt.Sprintf("fmt chunk too small (%d bytes)", size)}
			}
			body := make([]byte, size)
			if _, err := io.ReadFull(r, body); err != nil {
				return nil, &ErrMalformedWAV{Reason: WAVTruncated, Detail: fmt.Sprintf("reading fmt chunk: %v", err)}
			}
			format := binary.LittleEndian.Uint16(body[0:2])
			if format != 1 {
				return nil, &ErrMalformedWAV{Reason: WAVBadFormat, Detail: fmt.Sprintf("unsupported WAV format %d (want PCM)", format)}
			}
			channels = binary.LittleEndian.Uint16(body[2:4])
			sampleRate = binary.LittleEndian.Uint32(body[4:8])
			bits = binary.LittleEndian.Uint16(body[14:16])
			// A zero or absurd rate would produce a Recording whose
			// downstream framing math divides by zero or explodes;
			// reject at the source with a typed reason.
			if sampleRate == 0 || sampleRate > MaxWAVSampleRate {
				return nil, &ErrMalformedWAV{Reason: WAVBadRate, Detail: fmt.Sprintf("sample rate %d Hz outside (0, %d]", sampleRate, MaxWAVSampleRate)}
			}
			if channels == 0 || channels > MaxWAVChannels {
				return nil, &ErrMalformedWAV{Reason: WAVBadChannels, Detail: fmt.Sprintf("channel count %d outside [1, %d]", channels, MaxWAVChannels)}
			}
			haveFmt = true
		case dataChunk:
			data = make([]byte, size)
			if _, err := io.ReadFull(r, data); err != nil {
				return nil, &ErrMalformedWAV{Reason: WAVTruncated, Detail: fmt.Sprintf("reading data chunk: %v", err)}
			}
		default:
			// Unknown chunks (LIST, fact, ...) are streamed past, never
			// buffered.
			if _, err := io.CopyN(io.Discard, r, size); err != nil {
				return nil, &ErrMalformedWAV{Reason: WAVTruncated, Detail: fmt.Sprintf("skipping %q chunk: %v", id, err)}
			}
		}
		if size%2 == 1 {
			// Chunks are word-aligned; skip the pad byte.
			var pad [1]byte
			if _, err := io.ReadFull(r, pad[:]); err != nil && err != io.EOF {
				return nil, &ErrMalformedWAV{Reason: WAVTruncated, Detail: fmt.Sprintf("reading chunk padding: %v", err)}
			}
		}
	}
	if !haveFmt || data == nil {
		return nil, &ErrMalformedWAV{Reason: WAVMissingChunk, Detail: "missing fmt or data chunk"}
	}
	if bits != 16 {
		return nil, &ErrMalformedWAV{Reason: WAVBadFormat, Detail: fmt.Sprintf("unsupported bit depth %d (want 16)", bits)}
	}
	frames := len(data) / (int(channels) * 2)
	rec := NewRecording(float64(sampleRate), int(channels), frames)
	for i := 0; i < frames; i++ {
		for c := 0; c < int(channels); c++ {
			raw := int16(binary.LittleEndian.Uint16(data[(i*int(channels)+c)*2:]))
			// Decode with the same 32767 scale the encoder uses, clamped
			// so the full-scale negative sample (-32768) lands exactly on
			// -1 instead of ≈ -1.00003 — keeping every decoded sample
			// inside the documented [-1, 1] range and the encode→decode
			// round trip idempotent.
			v := float64(raw) / 32767
			if v < -1 {
				v = -1
			} else if v > 1 {
				v = 1
			}
			rec.Channels[c][i] = v
		}
	}
	return rec, nil
}
