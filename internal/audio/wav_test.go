package audio

// Regression tests for the WAV decode hardening: the malformed-WAV
// corpus (zero/absurd rates, hostile chunk sizes, truncation, odd-size
// padding), allocation bounding, decode clamping, and the
// encode→decode→encode idempotence property.

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand/v2"
	"runtime"
	"testing"
)

// wavChunk is one RIFF chunk for the corpus builder. DeclaredSize
// overrides the header size field when >= 0 (to lie about the body).
type wavChunk struct {
	id           string
	body         []byte
	declaredSize int64
}

// buildWAV assembles a raw RIFF/WAVE stream from chunks, honoring the
// word-alignment pad byte like a real encoder.
func buildWAV(chunks ...wavChunk) []byte {
	var b bytes.Buffer
	b.WriteString("RIFF")
	binary.Write(&b, binary.LittleEndian, uint32(0)) // RIFF size: unchecked
	b.WriteString("WAVE")
	for _, c := range chunks {
		b.WriteString(c.id)
		size := int64(len(c.body))
		if c.declaredSize >= 0 {
			size = c.declaredSize
		}
		binary.Write(&b, binary.LittleEndian, uint32(size))
		b.Write(c.body)
		if len(c.body)%2 == 1 && c.declaredSize < 0 {
			b.WriteByte(0)
		}
	}
	return b.Bytes()
}

// fmtBody builds a 16-byte PCM fmt chunk body.
func fmtBody(format, channels uint16, rate uint32, bits uint16) []byte {
	body := make([]byte, 16)
	binary.LittleEndian.PutUint16(body[0:2], format)
	binary.LittleEndian.PutUint16(body[2:4], channels)
	binary.LittleEndian.PutUint32(body[4:8], rate)
	binary.LittleEndian.PutUint32(body[8:12], rate*uint32(channels)*2)
	binary.LittleEndian.PutUint16(body[12:14], channels*2)
	binary.LittleEndian.PutUint16(body[14:16], bits)
	return body
}

func pcm(samples ...int16) []byte {
	out := make([]byte, 2*len(samples))
	for i, s := range samples {
		binary.LittleEndian.PutUint16(out[2*i:], uint16(s))
	}
	return out
}

func TestReadWAVMalformedCorpus(t *testing.T) {
	goodFmt := wavChunk{id: "fmt ", body: fmtBody(1, 1, 48000, 16), declaredSize: -1}
	goodData := wavChunk{id: "data", body: pcm(0, 100, -100, 32000), declaredSize: -1}

	cases := []struct {
		name   string
		stream []byte
		reason WAVReason
	}{
		{"zero sample rate",
			buildWAV(wavChunk{"fmt ", fmtBody(1, 1, 0, 16), -1}, goodData), WAVBadRate},
		{"absurd sample rate",
			buildWAV(wavChunk{"fmt ", fmtBody(1, 1, 96_000_000, 16), -1}, goodData), WAVBadRate},
		{"zero channels",
			buildWAV(wavChunk{"fmt ", fmtBody(1, 0, 48000, 16), -1}, goodData), WAVBadChannels},
		{"absurd channels",
			buildWAV(wavChunk{"fmt ", fmtBody(1, 1000, 48000, 16), -1}, goodData), WAVBadChannels},
		{"huge declared data chunk",
			buildWAV(goodFmt, wavChunk{"data", pcm(1, 2), 0xFFFF_FFF0}), WAVTooLarge},
		{"huge declared unknown chunk",
			buildWAV(goodFmt, wavChunk{"LIST", nil, 3 << 30}, goodData), WAVTooLarge},
		{"truncated data",
			buildWAV(goodFmt, wavChunk{"data", pcm(1, 2), 1 << 10}), WAVTruncated},
		{"truncated RIFF header",
			[]byte("RIFFxx"), WAVTruncated},
		{"not RIFF at all",
			[]byte("this is sixteen."), WAVNotRIFF},
		{"missing data chunk",
			buildWAV(goodFmt), WAVMissingChunk},
		{"missing fmt chunk",
			buildWAV(goodData), WAVMissingChunk},
		{"non-PCM format",
			buildWAV(wavChunk{"fmt ", fmtBody(3, 1, 48000, 16), -1}, goodData), WAVBadFormat},
		{"24-bit depth",
			buildWAV(wavChunk{"fmt ", fmtBody(1, 1, 48000, 24), -1}, goodData), WAVBadFormat},
		{"tiny fmt chunk",
			buildWAV(wavChunk{"fmt ", []byte{1, 0}, -1}, goodData), WAVBadFormat},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadWAV(bytes.NewReader(tc.stream))
			if err == nil {
				t.Fatal("malformed stream decoded without error")
			}
			mw, ok := AsMalformedWAV(err)
			if !ok {
				t.Fatalf("error %v is not a typed *ErrMalformedWAV", err)
			}
			if mw.Reason != tc.reason {
				t.Fatalf("reason = %q, want %q (%v)", mw.Reason, tc.reason, err)
			}
		})
	}
}

// TestReadWAVOddChunkPadding pins the positive case around the
// word-alignment rule: an odd-sized unknown chunk plus its pad byte
// must not desynchronize the parse.
func TestReadWAVOddChunkPadding(t *testing.T) {
	stream := buildWAV(
		wavChunk{"LIST", []byte{1, 2, 3}, -1}, // odd size → padded
		wavChunk{"fmt ", fmtBody(1, 2, 48000, 16), -1},
		wavChunk{"data", pcm(100, -100, 200, -200), -1},
	)
	rec, err := ReadWAV(bytes.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	if rec.SampleRate != 48000 || len(rec.Channels) != 2 || rec.Len() != 2 {
		t.Fatalf("decoded shape: %g Hz, %d ch, %d frames", rec.SampleRate, len(rec.Channels), rec.Len())
	}
}

// TestReadWAVHugeChunkDoesNotAllocate pins the allocation bound: a
// 30-byte stream whose data chunk claims 1 GiB must fail without the
// decoder ever allocating anything near the claimed size.
func TestReadWAVHugeChunkDoesNotAllocate(t *testing.T) {
	stream := buildWAV(
		wavChunk{"fmt ", fmtBody(1, 1, 48000, 16), -1},
		wavChunk{"data", pcm(1, 2), 1 << 30},
	)
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	if _, err := ReadWAV(bytes.NewReader(stream)); err == nil {
		t.Fatal("hostile chunk size decoded without error")
	}
	runtime.ReadMemStats(&after)
	if grew := after.TotalAlloc - before.TotalAlloc; grew > 1<<20 {
		t.Fatalf("decoder allocated %d bytes on a 1 GiB-claiming header", grew)
	}
	// The cap is configurable: the same claimed size passes a larger
	// budget check (and then fails as truncated, since the bytes are
	// absent).
	if _, err := ReadWAVLimit(bytes.NewReader(stream), 2<<30); err == nil {
		t.Fatal("truncated stream decoded")
	} else if mw, _ := AsMalformedWAV(err); mw == nil || mw.Reason != WAVTruncated {
		t.Fatalf("raised-budget error = %v, want truncated", err)
	}
}

// TestReadWAVFullScaleNegativeClamped: the raw int16 -32768 divided by
// 32767 is ≈ -1.00003, outside the documented range; decode must clamp
// it to exactly -1.
func TestReadWAVFullScaleNegativeClamped(t *testing.T) {
	stream := buildWAV(
		wavChunk{"fmt ", fmtBody(1, 1, 8000, 16), -1},
		wavChunk{"data", pcm(-32768, 32767, -32767), -1},
	)
	rec, err := ReadWAV(bytes.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	got := rec.Channels[0]
	if got[0] != -1 {
		t.Fatalf("decoded -32768 to %v, want exactly -1", got[0])
	}
	if got[1] != 1 || got[2] != -1.0 && math.Abs(got[2]+1) > 1e-9 {
		t.Fatalf("full-scale samples decoded to %v", got)
	}
	for _, v := range got {
		if v < -1 || v > 1 {
			t.Fatalf("decoded sample %v outside [-1, 1]", v)
		}
	}
}

// TestWAVEncodeDecodeEncodeIdempotent is the round-trip property test:
// for random recordings (including rail-pinned samples), the byte
// stream stabilizes after one encode — enc(dec(enc(x))) == enc(x) —
// and every decoded sample stays inside [-1, 1].
func TestWAVEncodeDecodeEncodeIdempotent(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 13))
	for trial := 0; trial < 20; trial++ {
		channels := 1 + rng.IntN(4)
		frames := 1 + rng.IntN(500)
		rec := NewRecording(48000, channels, frames)
		for c := range rec.Channels {
			for i := range rec.Channels[c] {
				switch rng.IntN(10) {
				case 0: // rail and beyond-rail values exercise the clip path
					rec.Channels[c][i] = -1.5 + 3*float64(rng.IntN(2))
				default:
					rec.Channels[c][i] = rng.Float64()*2.2 - 1.1
				}
			}
		}
		var first bytes.Buffer
		if err := WriteWAV(&first, rec); err != nil {
			t.Fatal(err)
		}
		decoded, err := ReadWAV(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		for c := range decoded.Channels {
			for i, v := range decoded.Channels[c] {
				if v < -1 || v > 1 {
					t.Fatalf("trial %d: decoded sample [%d][%d] = %v outside [-1, 1]", trial, c, i, v)
				}
			}
		}
		var second bytes.Buffer
		if err := WriteWAV(&second, decoded); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("trial %d: encode→decode→encode not idempotent (%d ch, %d frames)", trial, channels, frames)
		}
	}
}
