package audio

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// Input hardening for the serving path: recordings arrive from
// microphones, WAV files and network peers, and any of them can carry
// NaN/Inf samples, clipped waveforms, truncated captures or the wrong
// sample rate. HeadTalk is a privacy control, so a malformed recording
// must be rejected *before* DSP — garbage features reaching the SVM
// could flip a reject into an accept. Validate is that gate; Repair
// recovers the one fault class (isolated non-finite samples) that can
// be fixed without changing the decision surface.

// BadInputReason classifies why a recording failed validation. The
// values double as metrics label segments.
type BadInputReason string

// Validation failure reasons.
const (
	BadNil        BadInputReason = "nil_recording"
	BadNoChannels BadInputReason = "no_channels"
	BadEmpty      BadInputReason = "empty"
	BadRagged     BadInputReason = "ragged_channels"
	BadSampleRate BadInputReason = "sample_rate"
	BadTooShort   BadInputReason = "too_short"
	BadTooLong    BadInputReason = "too_long"
	BadNonFinite  BadInputReason = "non_finite"
	BadClipped    BadInputReason = "clipped"
)

// BadInputReasons lists every validation failure class (for metrics
// pre-registration and exhaustive tests).
func BadInputReasons() []BadInputReason {
	return []BadInputReason{
		BadNil, BadNoChannels, BadEmpty, BadRagged, BadSampleRate,
		BadTooShort, BadTooLong, BadNonFinite, BadClipped,
	}
}

// ErrBadInput is the typed error returned by Validate. Callers match it
// with errors.As and branch on Reason.
type ErrBadInput struct {
	Reason BadInputReason
	Detail string
	// Count is the number of offending samples for sample-level faults
	// (non-finite, clipped); zero for structural faults.
	Count int
}

// Error implements error.
func (e *ErrBadInput) Error() string {
	if e.Detail == "" {
		return fmt.Sprintf("audio: bad input (%s)", e.Reason)
	}
	return fmt.Sprintf("audio: bad input (%s): %s", e.Reason, e.Detail)
}

// AsBadInput unwraps err to an *ErrBadInput if one is in its chain.
func AsBadInput(err error) (*ErrBadInput, bool) {
	var e *ErrBadInput
	if errors.As(err, &e) {
		return e, true
	}
	return nil, false
}

// ValidateOptions tunes Validate. The zero value applies the defaults
// noted on each field; negative durations/fractions disable the
// corresponding check.
type ValidateOptions struct {
	// SampleRate is the expected rate; 0 accepts any positive rate.
	SampleRate float64
	// RateTolerance is the accepted fractional deviation from
	// SampleRate (default 0: exact match).
	RateTolerance float64
	// MinDuration rejects truncated captures (default 10 ms — shorter
	// than any wake word fragment worth scoring). Negative disables.
	MinDuration time.Duration
	// MaxDuration rejects runaway captures that would stall the DSP
	// path (default 30 s). Negative disables.
	MaxDuration time.Duration
	// ClipLevel is the amplitude treated as the converter rail
	// (default 0.999 of full scale).
	ClipLevel float64
	// MaxClippedFraction rejects recordings where more than this
	// fraction of samples sit pinned at the recording's own rail
	// (default 0.05). Clipping is detected as rail *concentration*,
	// not mere amplitude, so loud-but-healthy signals pass. Negative
	// disables.
	MaxClippedFraction float64
}

func (o ValidateOptions) withDefaults() ValidateOptions {
	if o.MinDuration == 0 {
		o.MinDuration = 10 * time.Millisecond
	}
	if o.MaxDuration == 0 {
		o.MaxDuration = 30 * time.Second
	}
	if o.ClipLevel == 0 {
		o.ClipLevel = 0.999
	}
	if o.MaxClippedFraction == 0 {
		o.MaxClippedFraction = 0.05
	}
	return o
}

// Validate checks a recording against opt and returns nil or an
// *ErrBadInput describing the first failure found. Checks run cheapest
// first so structurally-broken input never reaches the sample scan.
func Validate(rec *Recording, opt ValidateOptions) error {
	opt = opt.withDefaults()
	if rec == nil {
		return &ErrBadInput{Reason: BadNil, Detail: "nil recording"}
	}
	if len(rec.Channels) == 0 {
		return &ErrBadInput{Reason: BadNoChannels, Detail: "recording has no channels"}
	}
	if rec.SampleRate <= 0 || math.IsNaN(rec.SampleRate) || math.IsInf(rec.SampleRate, 0) {
		return &ErrBadInput{Reason: BadSampleRate, Detail: fmt.Sprintf("sample rate %g", rec.SampleRate)}
	}
	if opt.SampleRate > 0 {
		if diff := math.Abs(rec.SampleRate-opt.SampleRate) / opt.SampleRate; diff > opt.RateTolerance {
			return &ErrBadInput{
				Reason: BadSampleRate,
				Detail: fmt.Sprintf("sample rate %g Hz, want %g Hz", rec.SampleRate, opt.SampleRate),
			}
		}
	}
	n := len(rec.Channels[0])
	for i, ch := range rec.Channels {
		if len(ch) != n {
			return &ErrBadInput{
				Reason: BadRagged,
				Detail: fmt.Sprintf("channel %d has %d samples, channel 0 has %d", i, len(ch), n),
			}
		}
	}
	if n == 0 {
		return &ErrBadInput{Reason: BadEmpty, Detail: "zero-length channels"}
	}
	dur := time.Duration(float64(n) / rec.SampleRate * float64(time.Second))
	if opt.MinDuration > 0 && dur < opt.MinDuration {
		return &ErrBadInput{
			Reason: BadTooShort,
			Detail: fmt.Sprintf("duration %v < minimum %v", dur, opt.MinDuration),
		}
	}
	if opt.MaxDuration > 0 && dur > opt.MaxDuration {
		return &ErrBadInput{
			Reason: BadTooLong,
			Detail: fmt.Sprintf("duration %v > maximum %v", dur, opt.MaxDuration),
		}
	}

	// One pass over the samples: count non-finite values and, per
	// channel, samples pinned at the channel's own maximum amplitude.
	nonFinite := 0
	clipped := 0
	for _, ch := range rec.Channels {
		maxAbs, nf := scanChannel(ch)
		nonFinite += nf
		if maxAbs < opt.ClipLevel || opt.MaxClippedFraction < 0 {
			continue
		}
		rail := maxAbs * (1 - 1e-6)
		atRail := 0
		for _, v := range ch {
			if a := math.Abs(v); !math.IsNaN(a) && a >= rail && !math.IsInf(a, 0) {
				atRail++
			}
		}
		// A lone peak sample is not clipping; require a concentration
		// of at least a few samples at the rail.
		if atRail > 2 && float64(atRail)/float64(n) > opt.MaxClippedFraction {
			clipped += atRail
		}
	}
	if nonFinite > 0 {
		return &ErrBadInput{
			Reason: BadNonFinite,
			Detail: fmt.Sprintf("%d NaN/Inf samples", nonFinite),
			Count:  nonFinite,
		}
	}
	if clipped > 0 {
		return &ErrBadInput{
			Reason: BadClipped,
			Detail: fmt.Sprintf("%d samples pinned at the clip rail", clipped),
			Count:  clipped,
		}
	}
	return nil
}

// scanChannel returns the channel's maximum finite absolute amplitude
// and its NaN/Inf sample count. It is the validation hot loop — every
// sample of every request passes through it — so it runs four
// accumulators wide: a block whose sum is finite provably contains only
// finite samples (NaN and ±Inf are absorbing under addition), letting
// the common all-clean case skip per-sample finiteness checks entirely.
// A block whose sum is non-finite (or overflows to Inf) is re-scanned
// sample by sample, keeping the counts exact.
func scanChannel(ch []float64) (maxAbs float64, nonFinite int) {
	var m0, m1, m2, m3 float64
	i := 0
	for ; i+4 <= len(ch); i += 4 {
		v0, v1, v2, v3 := ch[i], ch[i+1], ch[i+2], ch[i+3]
		if s := v0 + v1 + v2 + v3; s-s != 0 {
			for _, v := range ch[i : i+4] {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					nonFinite++
				} else if a := math.Abs(v); a > m0 {
					m0 = a
				}
			}
			continue
		}
		if a := math.Abs(v0); a > m0 {
			m0 = a
		}
		if a := math.Abs(v1); a > m1 {
			m1 = a
		}
		if a := math.Abs(v2); a > m2 {
			m2 = a
		}
		if a := math.Abs(v3); a > m3 {
			m3 = a
		}
	}
	for _, v := range ch[i:] {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			nonFinite++
		} else if a := math.Abs(v); a > m0 {
			m0 = a
		}
	}
	if m1 > m0 {
		m0 = m1
	}
	if m2 > m0 {
		m0 = m2
	}
	if m3 > m0 {
		m0 = m3
	}
	return m0, nonFinite
}

// Repair returns a copy of rec with every NaN/Inf sample replaced by
// zero, plus the number of samples repaired. The input is never
// mutated, so a recording shared between concurrent submissions stays
// race-free. Repair fixes only non-finite samples; structural faults
// (ragged channels, wrong rate, clipping) are not repairable and still
// fail a subsequent Validate.
func Repair(rec *Recording) (*Recording, int) {
	if rec == nil {
		return nil, 0
	}
	out := &Recording{SampleRate: rec.SampleRate, Channels: make([][]float64, len(rec.Channels))}
	repaired := 0
	for i, ch := range rec.Channels {
		dst := make([]float64, len(ch))
		for j, v := range ch {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				repaired++
				continue // dst[j] stays 0
			}
			dst[j] = v
		}
		out.Channels[i] = dst
	}
	return out, repaired
}
