// Package audio provides sample buffers, multi-channel recordings, WAV
// file I/O, gain staging in dB SPL and the noise generators used to
// model ambient conditions in the paper's experiments.
package audio

import (
	"fmt"
	"math"
)

// Buffer is a mono floating-point signal at a known sample rate.
// Samples are nominally in [-1, 1] but intermediate processing may
// exceed that range.
type Buffer struct {
	SampleRate float64
	Samples    []float64
}

// NewBuffer returns a zeroed buffer of n samples at the given rate.
func NewBuffer(sampleRate float64, n int) *Buffer {
	return &Buffer{SampleRate: sampleRate, Samples: make([]float64, n)}
}

// Duration returns the buffer length in seconds.
func (b *Buffer) Duration() float64 {
	if b.SampleRate == 0 {
		return 0
	}
	return float64(len(b.Samples)) / b.SampleRate
}

// Clone returns a deep copy of the buffer.
func (b *Buffer) Clone() *Buffer {
	out := NewBuffer(b.SampleRate, len(b.Samples))
	copy(out.Samples, b.Samples)
	return out
}

// Gain scales all samples in place by g and returns the buffer.
func (b *Buffer) Gain(g float64) *Buffer {
	for i := range b.Samples {
		b.Samples[i] *= g
	}
	return b
}

// MixInto adds src (scaled by gain) into b starting at sample offset.
// Portions of src that fall outside b are ignored.
func (b *Buffer) MixInto(src []float64, offset int, gain float64) {
	for i, v := range src {
		j := offset + i
		if j < 0 || j >= len(b.Samples) {
			continue
		}
		b.Samples[j] += v * gain
	}
}

// RMS returns the root-mean-square level of the buffer.
func (b *Buffer) RMS() float64 {
	if len(b.Samples) == 0 {
		return 0
	}
	var acc float64
	for _, v := range b.Samples {
		acc += v * v
	}
	return math.Sqrt(acc / float64(len(b.Samples)))
}

// Recording is a multi-channel capture: one equal-length signal per
// microphone at a shared sample rate.
type Recording struct {
	SampleRate float64
	Channels   [][]float64
}

// NewRecording returns a zeroed recording with the given channel count
// and length.
func NewRecording(sampleRate float64, channels, n int) *Recording {
	r := &Recording{SampleRate: sampleRate, Channels: make([][]float64, channels)}
	for i := range r.Channels {
		r.Channels[i] = make([]float64, n)
	}
	return r
}

// Len returns the per-channel sample count (0 for no channels).
func (r *Recording) Len() int {
	if len(r.Channels) == 0 {
		return 0
	}
	return len(r.Channels[0])
}

// Channel returns channel i; it panics on out-of-range indices.
func (r *Recording) Channel(i int) []float64 {
	return r.Channels[i]
}

// Select returns a new Recording containing only the given channel
// indices (sharing the underlying sample slices). It reports an error
// for out-of-range indices.
func (r *Recording) Select(idx []int) (*Recording, error) {
	out := &Recording{SampleRate: r.SampleRate, Channels: make([][]float64, 0, len(idx))}
	for _, i := range idx {
		if i < 0 || i >= len(r.Channels) {
			return nil, fmt.Errorf("audio: channel %d out of range (have %d)", i, len(r.Channels))
		}
		out.Channels = append(out.Channels, r.Channels[i])
	}
	return out, nil
}

// Mono returns the average of all channels as a fresh slice; useful
// for single-channel analyses such as liveness detection.
func (r *Recording) Mono() []float64 {
	return r.MonoInto(make([]float64, r.Len()))
}

// MonoInto averages all channels into dst (grown if needed) and
// returns dst[:r.Len()]. With a caller-reused dst of sufficient
// capacity it performs no allocation.
func (r *Recording) MonoInto(dst []float64) []float64 {
	n := r.Len()
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	for i := range dst {
		dst[i] = 0
	}
	if len(r.Channels) == 0 {
		return dst
	}
	for _, ch := range r.Channels {
		for i, v := range ch {
			dst[i] += v
		}
	}
	inv := 1 / float64(len(r.Channels))
	for i := range dst {
		dst[i] *= inv
	}
	return dst
}

// Clone returns a deep copy of the recording.
func (r *Recording) Clone() *Recording {
	out := NewRecording(r.SampleRate, len(r.Channels), r.Len())
	for i, ch := range r.Channels {
		copy(out.Channels[i], ch)
	}
	return out
}
