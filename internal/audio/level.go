package audio

import "math"

// Reference pressure conventions for the simulated sound field. We map
// digital full scale so that an RMS of 1.0 corresponds to 94 dB SPL
// (1 Pa), the standard microphone calibration point. Speech at 70 dB
// SPL — the paper's collection loudness — then has an RMS around 0.06.
const fullScaleSPL = 94.0

// SPLToRMS converts a sound pressure level in dB SPL to the digital RMS
// amplitude under the 94 dB = 1.0 convention.
func SPLToRMS(spl float64) float64 {
	return math.Pow(10, (spl-fullScaleSPL)/20)
}

// RMSToSPL converts a digital RMS amplitude to dB SPL. Silence maps to
// -inf.
func RMSToSPL(rms float64) float64 {
	if rms <= 0 {
		return math.Inf(-1)
	}
	return fullScaleSPL + 20*math.Log10(rms)
}

// DBToGain converts a relative level in dB to a linear gain factor.
func DBToGain(db float64) float64 { return math.Pow(10, db/20) }

// GainToDB converts a linear gain factor to dB; non-positive gains map
// to -inf.
func GainToDB(g float64) float64 {
	if g <= 0 {
		return math.Inf(-1)
	}
	return 20 * math.Log10(g)
}

// SetSPL scales x in place so its RMS corresponds to the target dB SPL.
// Silent signals are returned unchanged.
func SetSPL(x []float64, spl float64) {
	var acc float64
	for _, v := range x {
		acc += v * v
	}
	if acc == 0 {
		return
	}
	rms := math.Sqrt(acc / float64(len(x)))
	g := SPLToRMS(spl) / rms
	for i := range x {
		x[i] *= g
	}
}

// SNRdB returns the signal-to-noise ratio in dB for the given signal
// and noise RMS levels.
func SNRdB(signalRMS, noiseRMS float64) float64 {
	if noiseRMS <= 0 {
		return math.Inf(1)
	}
	if signalRMS <= 0 {
		return math.Inf(-1)
	}
	return 20 * math.Log10(signalRMS/noiseRMS)
}
