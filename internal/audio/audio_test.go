package audio

import (
	"bytes"
	"math"
	"math/rand/v2"
	"testing"

	"headtalk/internal/dsp"
)

func TestBufferBasics(t *testing.T) {
	b := NewBuffer(48000, 4800)
	if b.Duration() != 0.1 {
		t.Errorf("duration = %g, want 0.1", b.Duration())
	}
	b.Samples[0] = 1
	c := b.Clone()
	c.Samples[0] = 2
	if b.Samples[0] != 1 {
		t.Error("Clone shares storage")
	}
	b.Gain(0.5)
	if b.Samples[0] != 0.5 {
		t.Errorf("Gain: %g", b.Samples[0])
	}
}

func TestBufferMixInto(t *testing.T) {
	b := NewBuffer(48000, 4)
	b.MixInto([]float64{1, 1, 1}, 2, 2)
	want := []float64{0, 0, 2, 2}
	for i := range want {
		if b.Samples[i] != want[i] {
			t.Fatalf("MixInto mismatch at %d", i)
		}
	}
	// Out-of-range portions are dropped silently.
	b.MixInto([]float64{1}, -5, 1)
	b.MixInto([]float64{1}, 100, 1)
}

func TestRecordingChannelOps(t *testing.T) {
	r := NewRecording(48000, 3, 10)
	if r.Len() != 10 {
		t.Errorf("Len = %d", r.Len())
	}
	r.Channels[1][0] = 3
	sel, err := r.Select([]int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Channels) != 2 || sel.Channels[0][0] != 3 {
		t.Error("Select returned wrong channels")
	}
	if _, err := r.Select([]int{5}); err == nil {
		t.Error("expected error for out-of-range channel")
	}
	mono := r.Mono()
	if mono[0] != 1 {
		t.Errorf("Mono[0] = %g, want mean 1", mono[0])
	}
}

func TestRecordingClone(t *testing.T) {
	r := NewRecording(48000, 2, 4)
	r.Channels[0][0] = 7
	c := r.Clone()
	c.Channels[0][0] = 9
	if r.Channels[0][0] != 7 {
		t.Error("Clone shares storage")
	}
}

func TestEmptyRecording(t *testing.T) {
	r := &Recording{SampleRate: 48000}
	if r.Len() != 0 {
		t.Error("empty recording length should be 0")
	}
	if len(r.Mono()) != 0 {
		t.Error("empty recording mono should be empty")
	}
}

func TestWAVRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	rec := NewRecording(48000, 4, 1000)
	for _, ch := range rec.Channels {
		for i := range ch {
			ch[i] = rng.Float64()*1.6 - 0.8
		}
	}
	var buf bytes.Buffer
	if err := WriteWAV(&buf, rec); err != nil {
		t.Fatal(err)
	}
	got, err := ReadWAV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.SampleRate != 48000 || len(got.Channels) != 4 || got.Len() != 1000 {
		t.Fatalf("shape mismatch: %g Hz, %d ch, %d samples", got.SampleRate, len(got.Channels), got.Len())
	}
	for c := range rec.Channels {
		for i := range rec.Channels[c] {
			if math.Abs(got.Channels[c][i]-rec.Channels[c][i]) > 1.0/32000 {
				t.Fatalf("sample mismatch ch %d idx %d: %g vs %g", c, i, got.Channels[c][i], rec.Channels[c][i])
			}
		}
	}
}

func TestWAVClipsOutOfRange(t *testing.T) {
	rec := NewRecording(8000, 1, 2)
	rec.Channels[0][0] = 5
	rec.Channels[0][1] = -5
	var buf bytes.Buffer
	if err := WriteWAV(&buf, rec); err != nil {
		t.Fatal(err)
	}
	got, err := ReadWAV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Channels[0][0] != 1 || got.Channels[0][1] != -1 {
		t.Errorf("clipping wrong: %g %g", got.Channels[0][0], got.Channels[0][1])
	}
}

func TestWAVErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteWAV(&buf, &Recording{SampleRate: 48000}); err == nil {
		t.Error("expected error for zero channels")
	}
	if _, err := ReadWAV(bytes.NewReader([]byte("not a wav file at all"))); err == nil {
		t.Error("expected error for garbage input")
	}
	// Ragged channels.
	bad := &Recording{SampleRate: 48000, Channels: [][]float64{make([]float64, 3), make([]float64, 5)}}
	if err := WriteWAV(&buf, bad); err == nil {
		t.Error("expected error for ragged channels")
	}
}

func TestSPLConversions(t *testing.T) {
	// 94 dB SPL is the 1.0 RMS calibration point.
	if got := SPLToRMS(94); math.Abs(got-1) > 1e-12 {
		t.Errorf("SPLToRMS(94) = %g", got)
	}
	if got := RMSToSPL(1); math.Abs(got-94) > 1e-12 {
		t.Errorf("RMSToSPL(1) = %g", got)
	}
	// 20 dB less is 10x smaller amplitude.
	if got := SPLToRMS(74); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("SPLToRMS(74) = %g", got)
	}
	if !math.IsInf(RMSToSPL(0), -1) {
		t.Error("RMSToSPL(0) should be -Inf")
	}
}

func TestSetSPL(t *testing.T) {
	x := make([]float64, 1000)
	for i := range x {
		x[i] = math.Sin(float64(i) / 10)
	}
	SetSPL(x, 70)
	if got := RMSToSPL(dsp.RMS(x)); math.Abs(got-70) > 0.01 {
		t.Errorf("SetSPL produced %g dB", got)
	}
	silent := make([]float64, 10)
	SetSPL(silent, 70) // must not panic or produce NaN
	for _, v := range silent {
		if v != 0 {
			t.Error("silence should stay silent")
		}
	}
}

func TestGainDB(t *testing.T) {
	if got := DBToGain(20); math.Abs(got-10) > 1e-12 {
		t.Errorf("DBToGain(20) = %g", got)
	}
	if got := GainToDB(10); math.Abs(got-20) > 1e-12 {
		t.Errorf("GainToDB(10) = %g", got)
	}
	if !math.IsInf(GainToDB(0), -1) {
		t.Error("GainToDB(0) should be -Inf")
	}
}

func TestSNRdB(t *testing.T) {
	if got := SNRdB(1, 0.1); math.Abs(got-20) > 1e-12 {
		t.Errorf("SNRdB = %g", got)
	}
	if !math.IsInf(SNRdB(1, 0), 1) {
		t.Error("zero noise should give +Inf SNR")
	}
}

func TestNoiseGeneratorsBasic(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for _, kind := range []NoiseKind{WhiteNoise, PinkNoise, TVNoise} {
		x := GenerateNoise(kind, 48000, 48000, rng)
		if len(x) != 48000 {
			t.Fatalf("%s: length %d", kind, len(x))
		}
		if r := dsp.RMS(x); r < 0.01 || r > 10 {
			t.Errorf("%s: RMS %g not unit-ish", kind, r)
		}
	}
}

func TestPinkNoiseSpectralSlope(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	pink := GenerateNoise(PinkNoise, 1<<16, 48000, rng)
	psd, err := dsp.WelchPSD(pink, 4096)
	if err != nil {
		t.Fatal(err)
	}
	// Pink noise: power per octave constant => band power declines
	// ~3 dB/octave. Compare 500-1k against 4k-8k: expect ~9 dB drop.
	low := bandPower(psd, 4096, 48000, 500, 1000)
	high := bandPower(psd, 4096, 48000, 4000, 8000)
	ratioDB := 10 * math.Log10(low/high)
	if ratioDB < 4 || ratioDB > 15 {
		t.Errorf("pink noise 500-1k vs 4k-8k per-bin power ratio = %.1f dB, want ~9", ratioDB)
	}
}

func bandPower(psd []float64, frameLen int, fs, lo, hi float64) float64 {
	loBin := dsp.FreqBin(lo, frameLen, fs)
	hiBin := dsp.FreqBin(hi, frameLen, fs)
	var acc float64
	count := 0
	for i := loBin; i <= hiBin && i < len(psd); i++ {
		acc += psd[i]
		count++
	}
	return acc / float64(count)
}

func TestTVNoiseHasLevelFluctuation(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 10))
	tv := GenerateNoise(TVNoise, 96000, 48000, rng)
	// Per-0.2s RMS should vary substantially (dialogue pacing).
	seg := 9600
	var levels []float64
	for start := 0; start+seg <= len(tv); start += seg {
		levels = append(levels, dsp.RMS(tv[start:start+seg]))
	}
	mean := dsp.Mean(levels)
	if mean == 0 {
		t.Fatal("silent TV noise")
	}
	if cv := dsp.Std(levels) / mean; cv < 0.1 {
		t.Errorf("TV noise level variation too small (cv=%g)", cv)
	}
}

func TestNoiseKindString(t *testing.T) {
	if WhiteNoise.String() != "white" || PinkNoise.String() != "pink" || TVNoise.String() != "tv" {
		t.Error("NoiseKind names wrong")
	}
	if NoiseKind(99).String() != "unknown" {
		t.Error("unknown NoiseKind should say so")
	}
}
