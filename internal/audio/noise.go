package audio

import (
	"math"
	"math/rand/v2"
)

// NoiseKind selects an ambient noise generator.
type NoiseKind int

// Supported ambient noise types. TVNoise models the paper's "TV playing
// a popular series" condition: speech-band babble with level
// fluctuations and occasional transients.
const (
	WhiteNoise NoiseKind = iota
	PinkNoise
	TVNoise
)

// String returns the noise kind's name.
func (k NoiseKind) String() string {
	switch k {
	case WhiteNoise:
		return "white"
	case PinkNoise:
		return "pink"
	case TVNoise:
		return "tv"
	default:
		return "unknown"
	}
}

// GenerateNoise returns n samples of the requested noise at unit-ish
// RMS (callers set the absolute level with SetSPL).
func GenerateNoise(kind NoiseKind, n int, sampleRate float64, rng *rand.Rand) []float64 {
	switch kind {
	case WhiteNoise:
		return whiteNoise(n, rng)
	case PinkNoise:
		return pinkNoise(n, rng)
	case TVNoise:
		return tvNoise(n, sampleRate, rng)
	default:
		return make([]float64, n)
	}
}

func whiteNoise(n int, rng *rand.Rand) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.NormFloat64()
	}
	return out
}

// pinkNoise uses Paul Kellet's economy filter: white noise through a
// bank of one-pole low-pass filters summed with staggered time
// constants, approximating a -3 dB/octave slope.
func pinkNoise(n int, rng *rand.Rand) []float64 {
	out := make([]float64, n)
	var b0, b1, b2, b3, b4, b5, b6 float64
	for i := range out {
		w := rng.NormFloat64()
		b0 = 0.99886*b0 + w*0.0555179
		b1 = 0.99332*b1 + w*0.0750759
		b2 = 0.96900*b2 + w*0.1538520
		b3 = 0.86650*b3 + w*0.3104856
		b4 = 0.55000*b4 + w*0.5329522
		b5 = -0.7616*b5 - w*0.0168980
		out[i] = (b0 + b1 + b2 + b3 + b4 + b5 + b6 + w*0.5362) * 0.11
		b6 = w * 0.115926
	}
	return out
}

// tvNoise approximates household TV audio: pink-ish broadband energy
// concentrated in the speech band, slow random level fluctuations
// (dialogue pacing) and sparse wideband transients (doors, laughter).
func tvNoise(n int, sampleRate float64, rng *rand.Rand) []float64 {
	base := pinkNoise(n, rng)
	out := make([]float64, n)
	// Slow amplitude envelope: random walk low-passed to ~1 Hz.
	env := 0.5
	envTarget := 0.5
	// Smoothing constant for a ~0.3 s time constant.
	alpha := 1 - math.Exp(-1/(0.3*sampleRate))
	segment := int(sampleRate * 0.4) // re-draw target every ~0.4 s
	if segment < 1 {
		segment = 1
	}
	for i := range out {
		if i%segment == 0 {
			envTarget = 0.15 + 0.85*rng.Float64()
		}
		env += alpha * (envTarget - env)
		out[i] = base[i] * env
	}
	// Sparse transients: short decaying white bursts.
	bursts := n / int(sampleRate*2+1)
	for b := 0; b <= bursts; b++ {
		start := rng.IntN(n)
		dur := int(sampleRate * (0.02 + 0.08*rng.Float64()))
		for j := 0; j < dur && start+j < n; j++ {
			decay := math.Exp(-4 * float64(j) / float64(dur))
			out[start+j] += rng.NormFloat64() * decay * 1.5
		}
	}
	return out
}
