package ml

import (
	"fmt"
	"math/rand/v2"
)

// CrossValidate runs k-fold cross-validation with fresh classifiers
// from factory and returns the mean accuracy across folds.
func CrossValidate(factory func() Classifier, x [][]float64, y []int, folds int, seed uint64) (float64, error) {
	if folds < 2 {
		return 0, fmt.Errorf("ml: cross-validation needs >= 2 folds, got %d", folds)
	}
	if len(x) < folds {
		return 0, fmt.Errorf("ml: %d samples cannot fill %d folds", len(x), folds)
	}
	n := len(x)
	perm := rand.New(rand.NewPCG(seed, 0xC0FFEE)).Perm(n)

	var totalCorrect, totalSeen int
	for f := 0; f < folds; f++ {
		var trainX [][]float64
		var trainY []int
		var testX [][]float64
		var testY []int
		for i, p := range perm {
			if i%folds == f {
				testX = append(testX, x[p])
				testY = append(testY, y[p])
			} else {
				trainX = append(trainX, x[p])
				trainY = append(trainY, y[p])
			}
		}
		clf := factory()
		if err := clf.Fit(trainX, trainY); err != nil {
			return 0, fmt.Errorf("ml: fold %d fit: %w", f, err)
		}
		for i, tx := range testX {
			if clf.Predict(tx) == testY[i] {
				totalCorrect++
			}
			totalSeen++
		}
	}
	if totalSeen == 0 {
		return 0, fmt.Errorf("ml: no test samples across folds")
	}
	return float64(totalCorrect) / float64(totalSeen), nil
}

// GroupedCrossValidate performs leave-one-group-out evaluation (e.g.
// leave-one-user-out, paper §IV-B14): for each distinct group label it
// trains on all other groups and tests on the held-out one. It returns
// per-group binary metrics keyed by group.
func GroupedCrossValidate(factory func() Classifier, x [][]float64, y, groups []int) (map[int]BinaryMetrics, error) {
	if len(x) != len(y) || len(x) != len(groups) {
		return nil, fmt.Errorf("ml: length mismatch x=%d y=%d groups=%d", len(x), len(y), len(groups))
	}
	distinct := make(map[int]bool)
	for _, g := range groups {
		distinct[g] = true
	}
	if len(distinct) < 2 {
		return nil, fmt.Errorf("ml: grouped CV needs >= 2 groups, have %d", len(distinct))
	}
	out := make(map[int]BinaryMetrics, len(distinct))
	for g := range distinct {
		var trainX [][]float64
		var trainY []int
		var testX [][]float64
		var testY []int
		for i := range x {
			if groups[i] == g {
				testX = append(testX, x[i])
				testY = append(testY, y[i])
			} else {
				trainX = append(trainX, x[i])
				trainY = append(trainY, y[i])
			}
		}
		clf := factory()
		if err := clf.Fit(trainX, trainY); err != nil {
			return nil, fmt.Errorf("ml: group %d fit: %w", g, err)
		}
		pred := make([]int, len(testX))
		for i, tx := range testX {
			pred[i] = clf.Predict(tx)
		}
		m, err := EvaluateBinary(testY, pred)
		if err != nil {
			return nil, err
		}
		out[g] = m
	}
	return out, nil
}
