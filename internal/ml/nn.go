package ml

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// adam is a per-parameter-slice Adam optimizer state.
type adam struct {
	m, v []float64
	t    int
	lr   float64
}

func newAdam(n int, lr float64) *adam {
	return &adam{m: make([]float64, n), v: make([]float64, n), lr: lr}
}

const (
	adamBeta1 = 0.9
	adamBeta2 = 0.999
	adamEps   = 1e-8
)

// step applies one Adam update to params given grads.
func (a *adam) step(params, grads []float64) {
	a.t++
	b1c := 1 - math.Pow(adamBeta1, float64(a.t))
	b2c := 1 - math.Pow(adamBeta2, float64(a.t))
	for i := range params {
		g := grads[i]
		a.m[i] = adamBeta1*a.m[i] + (1-adamBeta1)*g
		a.v[i] = adamBeta2*a.v[i] + (1-adamBeta2)*g*g
		params[i] -= a.lr * (a.m[i] / b1c) / (math.Sqrt(a.v[i]/b2c) + adamEps)
	}
}

// denseLayer is a fully connected layer (out = W·in + b).
type denseLayer struct {
	in, out int
	w, b    []float64 // w is out×in row-major
}

func newDense(in, out int, rng *rand.Rand) *denseLayer {
	l := &denseLayer{in: in, out: out, w: make([]float64, in*out), b: make([]float64, out)}
	scale := math.Sqrt(2 / float64(in)) // He init
	for i := range l.w {
		l.w[i] = rng.NormFloat64() * scale
	}
	return l
}

func (l *denseLayer) forward(x []float64) []float64 {
	out := make([]float64, l.out)
	for o := 0; o < l.out; o++ {
		acc := l.b[o]
		row := l.w[o*l.in : (o+1)*l.in]
		for i, v := range x {
			acc += row[i] * v
		}
		out[o] = acc
	}
	return out
}

// backward accumulates parameter grads and returns the input grad.
func (l *denseLayer) backward(x, gradOut, gw, gb []float64) []float64 {
	gradIn := make([]float64, l.in)
	for o := 0; o < l.out; o++ {
		g := gradOut[o]
		gb[o] += g
		row := l.w[o*l.in : (o+1)*l.in]
		grow := gw[o*l.in : (o+1)*l.in]
		for i := 0; i < l.in; i++ {
			grow[i] += g * x[i]
			gradIn[i] += g * row[i]
		}
	}
	return gradIn
}

func relu(x []float64) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		if v > 0 {
			out[i] = v
		}
	}
	return out
}

func reluGrad(pre, grad []float64) []float64 {
	out := make([]float64, len(grad))
	for i := range grad {
		if pre[i] > 0 {
			out[i] = grad[i]
		}
	}
	return out
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// MLPConfig configures an MLP classifier.
type MLPConfig struct {
	Hidden       []int // hidden layer widths
	LearningRate float64
	Epochs       int
	BatchSize    int
	Seed         uint64
}

// DefaultMLPConfig returns a small two-layer network.
func DefaultMLPConfig() MLPConfig {
	return MLPConfig{Hidden: []int{32, 16}, LearningRate: 1e-3, Epochs: 60, BatchSize: 16, Seed: 1}
}

// MLP is a feed-forward binary classifier with ReLU hidden layers and a
// sigmoid output trained with Adam on cross-entropy loss.
type MLP struct {
	Cfg    MLPConfig
	layers []*denseLayer
	opts   []*adam // one per layer weight slice, then bias slice
}

var (
	_ Classifier = (*MLP)(nil)
	_ Scorer     = (*MLP)(nil)
)

// NewMLP returns an untrained MLP.
func NewMLP(cfg MLPConfig) *MLP { return &MLP{Cfg: cfg} }

// Fit implements Classifier.
func (m *MLP) Fit(x [][]float64, y []int) error {
	if len(x) == 0 || len(x) != len(y) {
		return fmt.Errorf("ml: mlp: invalid training set (n=%d, labels=%d)", len(x), len(y))
	}
	rng := rand.New(rand.NewPCG(m.Cfg.Seed, 0xDEADBEEF))
	dims := append([]int{len(x[0])}, m.Cfg.Hidden...)
	dims = append(dims, 1)
	m.layers = nil
	m.opts = nil
	for i := 0; i+1 < len(dims); i++ {
		l := newDense(dims[i], dims[i+1], rng)
		m.layers = append(m.layers, l)
		m.opts = append(m.opts, newAdam(len(l.w), m.Cfg.LearningRate), newAdam(len(l.b), m.Cfg.LearningRate))
	}
	batch := m.Cfg.BatchSize
	if batch <= 0 {
		batch = 16
	}
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	for epoch := 0; epoch < m.Cfg.Epochs; epoch++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for start := 0; start < len(idx); start += batch {
			end := start + batch
			if end > len(idx) {
				end = len(idx)
			}
			m.trainBatch(x, y, idx[start:end])
		}
	}
	return nil
}

// trainBatch runs forward/backward over a minibatch and applies Adam.
func (m *MLP) trainBatch(x [][]float64, y []int, batch []int) {
	gw := make([][]float64, len(m.layers))
	gb := make([][]float64, len(m.layers))
	for li, l := range m.layers {
		gw[li] = make([]float64, len(l.w))
		gb[li] = make([]float64, len(l.b))
	}
	for _, i := range batch {
		// Forward, keeping pre-activations.
		acts := [][]float64{x[i]}
		pres := make([][]float64, len(m.layers))
		cur := x[i]
		for li, l := range m.layers {
			pre := l.forward(cur)
			pres[li] = pre
			if li < len(m.layers)-1 {
				cur = relu(pre)
			} else {
				cur = pre
			}
			acts = append(acts, cur)
		}
		p := sigmoid(pres[len(m.layers)-1][0])
		target := 0.0
		if y[i] == 1 {
			target = 1
		}
		grad := []float64{(p - target) / float64(len(batch))}
		// Backward.
		for li := len(m.layers) - 1; li >= 0; li-- {
			gin := m.layers[li].backward(acts[li], grad, gw[li], gb[li])
			if li > 0 {
				grad = reluGrad(pres[li-1], gin)
			}
		}
	}
	for li, l := range m.layers {
		m.opts[2*li].step(l.w, gw[li])
		m.opts[2*li+1].step(l.b, gb[li])
	}
}

// Score implements Scorer: the class-1 probability.
func (m *MLP) Score(x []float64) float64 {
	cur := x
	for li, l := range m.layers {
		pre := l.forward(cur)
		if li < len(m.layers)-1 {
			cur = relu(pre)
		} else {
			cur = pre
		}
	}
	if len(cur) == 0 {
		return 0
	}
	return sigmoid(cur[0])
}

// Predict implements Classifier.
func (m *MLP) Predict(x []float64) int {
	if m.Score(x) >= 0.5 {
		return 1
	}
	return 0
}

// convLayer is a 1-D valid convolution over a (time × channels)
// sequence.
type convLayer struct {
	inC, outC, k int
	w            []float64 // outC×inC×k
	b            []float64
}

func newConv(inC, outC, k int, rng *rand.Rand) *convLayer {
	l := &convLayer{inC: inC, outC: outC, k: k, w: make([]float64, outC*inC*k), b: make([]float64, outC)}
	scale := math.Sqrt(2 / float64(inC*k))
	for i := range l.w {
		l.w[i] = rng.NormFloat64() * scale
	}
	return l
}

// forward maps (T × inC) to ((T-k+1) × outC).
func (l *convLayer) forward(x [][]float64) [][]float64 {
	tOut := len(x) - l.k + 1
	if tOut < 1 {
		tOut = 0
	}
	out := make([][]float64, tOut)
	for t := 0; t < tOut; t++ {
		row := make([]float64, l.outC)
		for o := 0; o < l.outC; o++ {
			acc := l.b[o]
			for dk := 0; dk < l.k; dk++ {
				xr := x[t+dk]
				wr := l.w[(o*l.k+dk)*l.inC : (o*l.k+dk+1)*l.inC]
				for i := 0; i < l.inC; i++ {
					acc += wr[i] * xr[i]
				}
			}
			row[o] = acc
		}
		out[t] = row
	}
	return out
}

// backward accumulates grads and returns the input-sequence grad.
func (l *convLayer) backward(x, gradOut [][]float64, gw, gb []float64) [][]float64 {
	gradIn := make([][]float64, len(x))
	for t := range gradIn {
		gradIn[t] = make([]float64, l.inC)
	}
	for t := range gradOut {
		for o := 0; o < l.outC; o++ {
			g := gradOut[t][o]
			if g == 0 {
				continue
			}
			gb[o] += g
			for dk := 0; dk < l.k; dk++ {
				xr := x[t+dk]
				wr := l.w[(o*l.k+dk)*l.inC : (o*l.k+dk+1)*l.inC]
				gwr := gw[(o*l.k+dk)*l.inC : (o*l.k+dk+1)*l.inC]
				gir := gradIn[t+dk]
				for i := 0; i < l.inC; i++ {
					gwr[i] += g * xr[i]
					gir[i] += g * wr[i]
				}
			}
		}
	}
	return gradIn
}

// ConvNetConfig configures the sequence classifier.
type ConvNetConfig struct {
	InputDim     int   // features per frame
	ConvChannels []int // output channels per conv layer
	KernelSize   int
	PoolStride   int // temporal mean-pool stride between conv layers
	HiddenDim    int
	LearningRate float64
	Epochs       int
	BatchSize    int
	Seed         uint64
}

// DefaultConvNetConfig returns the liveness detector's architecture: a
// compact convolutional feature encoder over filterbank frames followed
// by a dense head — the structural stand-in for the paper's wav2vec2
// (see DESIGN.md on why a 95M-parameter pretrained transformer is
// substituted).
func DefaultConvNetConfig(inputDim int) ConvNetConfig {
	return ConvNetConfig{
		InputDim:     inputDim,
		ConvChannels: []int{16, 16},
		KernelSize:   5,
		PoolStride:   2,
		HiddenDim:    16,
		LearningRate: 2e-3,
		Epochs:       30,
		BatchSize:    16,
		Seed:         1,
	}
}

// ConvNet is a small 1-D convolutional binary classifier over
// variable-length frame sequences: conv+ReLU+pool blocks, global
// mean+max pooling, one hidden dense layer, sigmoid output.
type ConvNet struct {
	Cfg    ConvNetConfig
	convs  []*convLayer
	dense1 *denseLayer
	dense2 *denseLayer
	opts   []*adam
}

// NewConvNet returns an untrained ConvNet.
func NewConvNet(cfg ConvNetConfig) *ConvNet { return &ConvNet{Cfg: cfg} }

// init builds layers lazily (requires InputDim).
func (c *ConvNet) initLayers(rng *rand.Rand) {
	c.convs = nil
	inC := c.Cfg.InputDim
	for _, outC := range c.Cfg.ConvChannels {
		c.convs = append(c.convs, newConv(inC, outC, c.Cfg.KernelSize, rng))
		inC = outC
	}
	pooled := 2 * inC // global mean+max
	c.dense1 = newDense(pooled, c.Cfg.HiddenDim, rng)
	c.dense2 = newDense(c.Cfg.HiddenDim, 1, rng)
	c.opts = nil
	for _, l := range c.convs {
		c.opts = append(c.opts, newAdam(len(l.w), c.Cfg.LearningRate), newAdam(len(l.b), c.Cfg.LearningRate))
	}
	c.opts = append(c.opts,
		newAdam(len(c.dense1.w), c.Cfg.LearningRate), newAdam(len(c.dense1.b), c.Cfg.LearningRate),
		newAdam(len(c.dense2.w), c.Cfg.LearningRate), newAdam(len(c.dense2.b), c.Cfg.LearningRate))
}

// Fit trains on frame sequences (each sample: T × InputDim) with
// binary labels. Sequences may differ in length but must be long
// enough to survive the conv/pool stack (~KernelSize*2+PoolStride
// frames).
func (c *ConvNet) Fit(x [][][]float64, y []int) error {
	if len(x) == 0 || len(x) != len(y) {
		return fmt.Errorf("ml: convnet: invalid training set (n=%d, labels=%d)", len(x), len(y))
	}
	rng := randForInit(c.Cfg.Seed)
	c.initLayers(rng)
	batch := c.Cfg.BatchSize
	if batch <= 0 {
		batch = 16
	}
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	for epoch := 0; epoch < c.Cfg.Epochs; epoch++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for start := 0; start < len(idx); start += batch {
			end := start + batch
			if end > len(idx) {
				end = len(idx)
			}
			if err := c.trainBatch(x, y, idx[start:end]); err != nil {
				return err
			}
		}
	}
	return nil
}

// ContinueFit runs additional epochs on new data without re-initializing
// weights — the incremental-learning path of §IV-A1 and §IV-B9.
func (c *ConvNet) ContinueFit(x [][][]float64, y []int, epochs int) error {
	if c.dense2 == nil {
		return fmt.Errorf("ml: convnet: ContinueFit before Fit")
	}
	if len(x) == 0 || len(x) != len(y) {
		return fmt.Errorf("ml: convnet: invalid training set (n=%d, labels=%d)", len(x), len(y))
	}
	rng := rand.New(rand.NewPCG(c.Cfg.Seed+1, 0xFACEFEED))
	batch := c.Cfg.BatchSize
	if batch <= 0 {
		batch = 16
	}
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	for epoch := 0; epoch < epochs; epoch++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for start := 0; start < len(idx); start += batch {
			end := start + batch
			if end > len(idx) {
				end = len(idx)
			}
			if err := c.trainBatch(x, y, idx[start:end]); err != nil {
				return err
			}
		}
	}
	return nil
}

type convForward struct {
	convIn  [][][]float64 // input to each conv layer
	convPre [][][]float64 // pre-ReLU conv outputs
	poolIn  [][][]float64 // post-ReLU (pool input) per layer
	pooled  []float64     // global pooled vector
	maxIdx  []int         // argmax time per channel for max-pool grad
	d1pre   []float64
	d1act   []float64
	d2pre   []float64
	lastSeq [][]float64 // final sequence feeding global pool
}

// forwardSample runs the full network, retaining intermediates.
func (c *ConvNet) forwardSample(x [][]float64) (*convForward, error) {
	fw := &convForward{}
	seq := x
	for _, l := range c.convs {
		if len(seq) < l.k {
			return nil, fmt.Errorf("ml: convnet: sequence too short (%d frames < kernel %d)", len(seq), l.k)
		}
		fw.convIn = append(fw.convIn, seq)
		pre := l.forward(seq)
		fw.convPre = append(fw.convPre, pre)
		act := make([][]float64, len(pre))
		for t := range pre {
			act[t] = relu(pre[t])
		}
		fw.poolIn = append(fw.poolIn, act)
		seq = meanPool(act, c.Cfg.PoolStride)
	}
	fw.lastSeq = seq
	if len(seq) == 0 {
		return nil, fmt.Errorf("ml: convnet: sequence pooled to zero length")
	}
	ch := len(seq[0])
	fw.pooled = make([]float64, 2*ch)
	fw.maxIdx = make([]int, ch)
	for o := 0; o < ch; o++ {
		sum := 0.0
		maxV := math.Inf(-1)
		maxT := 0
		for t := range seq {
			v := seq[t][o]
			sum += v
			if v > maxV {
				maxV = v
				maxT = t
			}
		}
		fw.pooled[o] = sum / float64(len(seq))
		fw.pooled[ch+o] = maxV
		fw.maxIdx[o] = maxT
	}
	fw.d1pre = c.dense1.forward(fw.pooled)
	fw.d1act = relu(fw.d1pre)
	fw.d2pre = c.dense2.forward(fw.d1act)
	return fw, nil
}

func (c *ConvNet) trainBatch(x [][][]float64, y []int, batch []int) error {
	gws := make([][]float64, 0, len(c.opts))
	for _, l := range c.convs {
		gws = append(gws, make([]float64, len(l.w)), make([]float64, len(l.b)))
	}
	gws = append(gws,
		make([]float64, len(c.dense1.w)), make([]float64, len(c.dense1.b)),
		make([]float64, len(c.dense2.w)), make([]float64, len(c.dense2.b)))

	for _, i := range batch {
		fw, err := c.forwardSample(x[i])
		if err != nil {
			return err
		}
		p := sigmoid(fw.d2pre[0])
		target := 0.0
		if y[i] == 1 {
			target = 1
		}
		grad := []float64{(p - target) / float64(len(batch))}

		nConv := len(c.convs)
		g1 := c.dense2.backward(fw.d1act, grad, gws[2*nConv+2], gws[2*nConv+3])
		g1 = reluGrad(fw.d1pre, g1)
		gPooled := c.dense1.backward(fw.pooled, g1, gws[2*nConv], gws[2*nConv+1])

		// Global pool backward.
		seq := fw.lastSeq
		ch := len(seq[0])
		gSeq := make([][]float64, len(seq))
		for t := range gSeq {
			gSeq[t] = make([]float64, ch)
		}
		for o := 0; o < ch; o++ {
			gm := gPooled[o] / float64(len(seq))
			for t := range seq {
				gSeq[t][o] += gm
			}
			gSeq[fw.maxIdx[o]][o] += gPooled[ch+o]
		}

		// Conv stack backward.
		for li := nConv - 1; li >= 0; li-- {
			gAct := meanPoolGrad(gSeq, len(fw.poolIn[li]), c.Cfg.PoolStride)
			gPre := make([][]float64, len(gAct))
			for t := range gAct {
				gPre[t] = reluGrad(fw.convPre[li][t], gAct[t])
			}
			gSeq = c.convs[li].backward(fw.convIn[li], gPre, gws[2*li], gws[2*li+1])
		}
	}

	oi := 0
	for _, l := range c.convs {
		c.opts[oi].step(l.w, gws[oi])
		c.opts[oi+1].step(l.b, gws[oi+1])
		oi += 2
	}
	c.opts[oi].step(c.dense1.w, gws[oi])
	c.opts[oi+1].step(c.dense1.b, gws[oi+1])
	c.opts[oi+2].step(c.dense2.w, gws[oi+2])
	c.opts[oi+3].step(c.dense2.b, gws[oi+3])
	return nil
}

// PredictProba returns the class-1 probability for a frame sequence.
func (c *ConvNet) PredictProba(x [][]float64) (float64, error) {
	if c.dense2 == nil {
		return 0, fmt.Errorf("ml: convnet: predict before fit")
	}
	fw, err := c.forwardSample(x)
	if err != nil {
		return 0, err
	}
	return sigmoid(fw.d2pre[0]), nil
}

// meanPool averages non-overlapping groups of stride frames (stride
// <= 1 is a no-op).
func meanPool(x [][]float64, stride int) [][]float64 {
	if stride <= 1 || len(x) == 0 {
		return x
	}
	n := len(x) / stride
	if n == 0 {
		n = 1
	}
	ch := len(x[0])
	out := make([][]float64, n)
	for t := 0; t < n; t++ {
		row := make([]float64, ch)
		count := 0
		for s := 0; s < stride; s++ {
			ti := t*stride + s
			if ti >= len(x) {
				break
			}
			for o := 0; o < ch; o++ {
				row[o] += x[ti][o]
			}
			count++
		}
		for o := 0; o < ch; o++ {
			row[o] /= float64(count)
		}
		out[t] = row
	}
	return out
}

// meanPoolGrad up-samples pooled grads back to inLen frames.
func meanPoolGrad(gradOut [][]float64, inLen, stride int) [][]float64 {
	if stride <= 1 {
		return gradOut
	}
	if len(gradOut) == 0 {
		return nil
	}
	ch := len(gradOut[0])
	out := make([][]float64, inLen)
	for t := range out {
		out[t] = make([]float64, ch)
	}
	for t := range gradOut {
		// Count how many frames fed this pooled step.
		count := 0
		for s := 0; s < stride; s++ {
			if t*stride+s < inLen {
				count++
			}
		}
		if count == 0 {
			continue
		}
		for s := 0; s < stride; s++ {
			ti := t*stride + s
			if ti >= inLen {
				break
			}
			for o := 0; o < ch; o++ {
				out[ti][o] += gradOut[t][o] / float64(count)
			}
		}
	}
	return out
}

// randForInit builds the deterministic weight-init RNG for a seed,
// matching Fit's initialization path (used when deserializing).
func randForInit(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, 0xFACEFEED))
}
