package ml

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// RandomForest is a bagged ensemble of CART trees with per-split
// feature subsampling. The paper uses the Bagging algorithm with 200
// trees.
type RandomForest struct {
	NumTrees int
	MaxDepth int
	// FeatureSubset per split; 0 selects sqrt(d).
	FeatureSubset int
	Seed          uint64

	trees []*DecisionTree
}

var (
	_ Classifier = (*RandomForest)(nil)
	_ Scorer     = (*RandomForest)(nil)
)

// NewRandomForest returns a forest with the paper's 200 trees.
func NewRandomForest() *RandomForest {
	return &RandomForest{NumTrees: 200, MaxDepth: 12, Seed: 1}
}

// Fit implements Classifier.
func (f *RandomForest) Fit(x [][]float64, y []int) error {
	if len(x) == 0 || len(x) != len(y) {
		return fmt.Errorf("ml: forest: invalid training set (n=%d, labels=%d)", len(x), len(y))
	}
	if f.NumTrees <= 0 {
		f.NumTrees = 200
	}
	subset := f.FeatureSubset
	if subset <= 0 {
		subset = int(math.Sqrt(float64(len(x[0]))))
		if subset < 1 {
			subset = 1
		}
	}
	rng := rand.New(rand.NewPCG(f.Seed, 0xB5297A4D))
	f.trees = make([]*DecisionTree, 0, f.NumTrees)
	n := len(x)
	for t := 0; t < f.NumTrees; t++ {
		// Bootstrap sample.
		bx := make([][]float64, n)
		by := make([]int, n)
		for i := 0; i < n; i++ {
			j := rng.IntN(n)
			bx[i] = x[j]
			by[i] = y[j]
		}
		tree := &DecisionTree{
			MaxSplits:     0, // unbounded within depth cap
			MaxDepth:      f.MaxDepth,
			MinLeaf:       1,
			FeatureSubset: subset,
			Seed:          rng.Uint64(),
		}
		if err := tree.Fit(bx, by); err != nil {
			return fmt.Errorf("ml: forest tree %d: %w", t, err)
		}
		f.trees = append(f.trees, tree)
	}
	return nil
}

// Predict implements Classifier by majority vote.
func (f *RandomForest) Predict(x []float64) int {
	votes := make(map[int]int)
	for _, t := range f.trees {
		votes[t.Predict(x)]++
	}
	best, bestN := 0, -1
	for c, n := range votes {
		if n > bestN || (n == bestN && c < best) {
			best, bestN = c, n
		}
	}
	return best
}

// Score implements Scorer: the fraction of trees voting class 1.
func (f *RandomForest) Score(x []float64) float64 {
	if len(f.trees) == 0 {
		return 0
	}
	var ones int
	for _, t := range f.trees {
		if t.Predict(x) == 1 {
			ones++
		}
	}
	return float64(ones) / float64(len(f.trees))
}
