package ml

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
)

// DecisionTree is a CART classification tree with Gini impurity. The
// paper's DT baseline uses a maximum of 5 splits; MaxSplits = 0 means
// unbounded.
type DecisionTree struct {
	MaxSplits int
	MaxDepth  int
	// MinLeaf is the minimum samples per leaf (default 1).
	MinLeaf int
	// FeatureSubset > 0 restricts each split to a random subset of
	// that many features (used by RandomForest); Seed drives the
	// subset draw.
	FeatureSubset int
	Seed          uint64

	root     *treeNode
	nClasses int
}

var _ Classifier = (*DecisionTree)(nil)

type treeNode struct {
	feature  int
	thresh   float64
	left     *treeNode
	right    *treeNode
	class    int
	prob     float64 // fraction of class-1 samples at this node
	leafSize int
}

func (n *treeNode) isLeaf() bool { return n.left == nil }

// NewDecisionTree returns a tree limited to the paper's 5 splits.
func NewDecisionTree() *DecisionTree {
	return &DecisionTree{MaxSplits: 5, MinLeaf: 1, Seed: 1}
}

// Fit implements Classifier.
func (t *DecisionTree) Fit(x [][]float64, y []int) error {
	if len(x) == 0 || len(x) != len(y) {
		return fmt.Errorf("ml: tree: invalid training set (n=%d, labels=%d)", len(x), len(y))
	}
	t.nClasses = 0
	for _, l := range y {
		if l < 0 {
			return fmt.Errorf("ml: tree: negative label %d", l)
		}
		if l+1 > t.nClasses {
			t.nClasses = l + 1
		}
	}
	if t.MinLeaf < 1 {
		t.MinLeaf = 1
	}
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	rng := rand.New(rand.NewPCG(t.Seed, 0x9e3779b9))
	splits := 0
	t.root = t.grow(x, y, idx, 0, &splits, rng)
	return nil
}

func (t *DecisionTree) grow(x [][]float64, y []int, idx []int, depth int, splits *int, rng *rand.Rand) *treeNode {
	node := &treeNode{leafSize: len(idx)}
	counts := make([]int, t.nClasses)
	for _, i := range idx {
		counts[y[i]]++
	}
	best := 0
	for c, n := range counts {
		if n > counts[best] {
			best = c
		}
	}
	node.class = best
	if t.nClasses > 1 && len(idx) > 0 {
		node.prob = float64(counts[min(1, t.nClasses-1)]) / float64(len(idx))
	}

	pure := counts[best] == len(idx)
	depthCap := t.MaxDepth > 0 && depth >= t.MaxDepth
	splitCap := t.MaxSplits > 0 && *splits >= t.MaxSplits
	if pure || depthCap || splitCap || len(idx) < 2*t.MinLeaf {
		return node
	}

	feature, thresh, gain := t.bestSplit(x, y, idx, rng)
	if gain <= 0 {
		return node
	}
	var left, right []int
	for _, i := range idx {
		if x[i][feature] <= thresh {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < t.MinLeaf || len(right) < t.MinLeaf {
		return node
	}
	*splits++
	node.feature = feature
	node.thresh = thresh
	node.left = t.grow(x, y, left, depth+1, splits, rng)
	node.right = t.grow(x, y, right, depth+1, splits, rng)
	return node
}

// bestSplit scans candidate features for the Gini-optimal threshold.
func (t *DecisionTree) bestSplit(x [][]float64, y []int, idx []int, rng *rand.Rand) (feature int, thresh, gain float64) {
	d := len(x[0])
	features := make([]int, d)
	for i := range features {
		features[i] = i
	}
	if t.FeatureSubset > 0 && t.FeatureSubset < d {
		rng.Shuffle(d, func(i, j int) { features[i], features[j] = features[j], features[i] })
		features = features[:t.FeatureSubset]
	}

	parentGini := giniOf(y, idx, t.nClasses)
	bestGain := 0.0
	bestFeature, bestThresh := -1, 0.0

	type fv struct {
		v float64
		y int
	}
	vals := make([]fv, len(idx))
	leftCounts := make([]int, t.nClasses)
	rightCounts := make([]int, t.nClasses)

	for _, f := range features {
		for k, i := range idx {
			vals[k] = fv{x[i][f], y[i]}
		}
		sort.Slice(vals, func(a, b int) bool { return vals[a].v < vals[b].v })
		for c := range leftCounts {
			leftCounts[c] = 0
			rightCounts[c] = 0
		}
		for _, v := range vals {
			rightCounts[v.y]++
		}
		nLeft := 0
		nRight := len(vals)
		for k := 0; k < len(vals)-1; k++ {
			leftCounts[vals[k].y]++
			rightCounts[vals[k].y]--
			nLeft++
			nRight--
			if vals[k].v == vals[k+1].v {
				continue
			}
			gl := giniFromCounts(leftCounts, nLeft)
			gr := giniFromCounts(rightCounts, nRight)
			w := float64(nLeft)/float64(len(vals))*gl + float64(nRight)/float64(len(vals))*gr
			if g := parentGini - w; g > bestGain {
				bestGain = g
				bestFeature = f
				bestThresh = (vals[k].v + vals[k+1].v) / 2
			}
		}
	}
	if bestFeature < 0 {
		return 0, 0, 0
	}
	return bestFeature, bestThresh, bestGain
}

func giniOf(y []int, idx []int, k int) float64 {
	counts := make([]int, k)
	for _, i := range idx {
		counts[y[i]]++
	}
	return giniFromCounts(counts, len(idx))
}

func giniFromCounts(counts []int, n int) float64 {
	if n == 0 {
		return 0
	}
	g := 1.0
	for _, c := range counts {
		p := float64(c) / float64(n)
		g -= p * p
	}
	return g
}

// Predict implements Classifier.
func (t *DecisionTree) Predict(x []float64) int {
	node := t.root
	if node == nil {
		return 0
	}
	for !node.isLeaf() {
		if x[node.feature] <= node.thresh {
			node = node.left
		} else {
			node = node.right
		}
	}
	return node.class
}

// Score implements Scorer: the class-1 leaf fraction.
func (t *DecisionTree) Score(x []float64) float64 {
	node := t.root
	if node == nil {
		return 0
	}
	for !node.isLeaf() {
		if x[node.feature] <= node.thresh {
			node = node.left
		} else {
			node = node.right
		}
	}
	return node.prob
}

// Depth returns the tree's depth (0 for a stump/leaf-only tree).
func (t *DecisionTree) Depth() int { return depthOf(t.root) }

func depthOf(n *treeNode) int {
	if n == nil || n.isLeaf() {
		return 0
	}
	return 1 + int(math.Max(float64(depthOf(n.left)), float64(depthOf(n.right))))
}
