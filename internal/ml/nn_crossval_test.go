package ml

import (
	"math/rand/v2"
	"testing"
)

// sequenceData builds labeled frame sequences: class 1 has a rising
// temporal ramp in one channel, class 0 a falling one. Lengths vary.
func sequenceData(n int, seed uint64) ([][][]float64, []int) {
	rng := rand.New(rand.NewPCG(seed, 1))
	var x [][][]float64
	var y []int
	for i := 0; i < n; i++ {
		cls := i % 2
		frames := 24 + rng.IntN(16)
		seq := make([][]float64, frames)
		for t := 0; t < frames; t++ {
			f := make([]float64, 6)
			ramp := float64(t) / float64(frames)
			if cls == 0 {
				ramp = 1 - ramp
			}
			f[0] = ramp + 0.1*rng.NormFloat64()
			for d := 1; d < 6; d++ {
				f[d] = 0.1 * rng.NormFloat64()
			}
			seq[t] = f
		}
		x = append(x, seq)
		y = append(y, cls)
	}
	return x, y
}

func TestConvNetLearnsTemporalPattern(t *testing.T) {
	x, y := sequenceData(60, 2)
	cfg := ConvNetConfig{
		InputDim:     6,
		ConvChannels: []int{8},
		KernelSize:   5,
		PoolStride:   2,
		HiddenDim:    8,
		LearningRate: 5e-3,
		Epochs:       40,
		BatchSize:    8,
		Seed:         1,
	}
	net := NewConvNet(cfg)
	if err := net.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	tx, ty := sequenceData(40, 3)
	correct := 0
	for i := range tx {
		p, err := net.PredictProba(tx[i])
		if err != nil {
			t.Fatal(err)
		}
		pred := 0
		if p >= 0.5 {
			pred = 1
		}
		if pred == ty[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(tx)); acc < 0.85 {
		t.Errorf("ConvNet accuracy %g on temporal ramps", acc)
	}
}

func TestConvNetContinueFitImproves(t *testing.T) {
	x, y := sequenceData(40, 4)
	cfg := DefaultConvNetConfig(6)
	cfg.ConvChannels = []int{8}
	cfg.Epochs = 3 // deliberately undertrained
	net := NewConvNet(cfg)
	if err := net.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	evalAcc := func() float64 {
		tx, ty := sequenceData(40, 5)
		correct := 0
		for i := range tx {
			p, err := net.PredictProba(tx[i])
			if err != nil {
				t.Fatal(err)
			}
			if (p >= 0.5) == (ty[i] == 1) {
				correct++
			}
		}
		return float64(correct) / float64(len(tx))
	}
	before := evalAcc()
	if err := net.ContinueFit(x, y, 40); err != nil {
		t.Fatal(err)
	}
	after := evalAcc()
	if after < before-0.05 {
		t.Errorf("ContinueFit made things worse: %g -> %g", before, after)
	}
	if after < 0.8 {
		t.Errorf("accuracy after ContinueFit %g", after)
	}
}

func TestConvNetErrors(t *testing.T) {
	net := NewConvNet(DefaultConvNetConfig(4))
	if err := net.Fit(nil, nil); err == nil {
		t.Error("expected error on empty training set")
	}
	if err := net.ContinueFit(nil, nil, 1); err == nil {
		t.Error("expected error for ContinueFit before Fit")
	}
	if _, err := net.PredictProba([][]float64{{1, 2, 3, 4}}); err == nil {
		t.Error("expected error for predict before fit")
	}
	// Sequence shorter than the kernel.
	x, y := sequenceData(8, 6)
	if err := net.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	short := [][]float64{{0, 0, 0, 0, 0, 0}}
	if _, err := net.PredictProba(short); err == nil {
		t.Error("expected error for too-short sequence")
	}
}

func TestMeanPool(t *testing.T) {
	x := [][]float64{{1}, {3}, {5}, {7}, {9}}
	out := meanPool(x, 2)
	if len(out) != 2 {
		t.Fatalf("pooled length %d", len(out))
	}
	if out[0][0] != 2 || out[1][0] != 6 {
		t.Errorf("pooled values %v", out)
	}
	if got := meanPool(x, 1); len(got) != 5 {
		t.Error("stride 1 should be a no-op")
	}
}

func TestCrossValidate(t *testing.T) {
	x, y := blobs2D(30, 0.5, 7)
	factory := func() Classifier { return NewKNN() }
	acc, err := CrossValidate(factory, x, y, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.9 {
		t.Errorf("CV accuracy %g on separable blobs", acc)
	}
	if _, err := CrossValidate(factory, x, y, 1, 1); err == nil {
		t.Error("expected error for 1 fold")
	}
	if _, err := CrossValidate(factory, x[:2], y[:2], 5, 1); err == nil {
		t.Error("expected error for too few samples")
	}
}

func TestGroupedCrossValidate(t *testing.T) {
	// Three groups, data separable everywhere: every held-out group
	// should score well.
	var x [][]float64
	var y, groups []int
	rng := rand.New(rand.NewPCG(8, 8))
	for g := 0; g < 3; g++ {
		for i := 0; i < 20; i++ {
			cls := i % 2
			base := -2.0
			if cls == 1 {
				base = 2
			}
			x = append(x, []float64{base + 0.4*rng.NormFloat64(), base + 0.4*rng.NormFloat64()})
			y = append(y, cls)
			groups = append(groups, g)
		}
	}
	factory := func() Classifier { return NewKNN() }
	out, err := GroupedCrossValidate(factory, x, y, groups)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("%d groups scored, want 3", len(out))
	}
	for g, m := range out {
		if m.Accuracy() < 0.9 {
			t.Errorf("group %d accuracy %g", g, m.Accuracy())
		}
	}
	if _, err := GroupedCrossValidate(factory, x, y, make([]int, len(x))); err == nil {
		t.Error("expected error for single group")
	}
	if _, err := GroupedCrossValidate(factory, x, y, groups[:3]); err == nil {
		t.Error("expected error for length mismatch")
	}
}
