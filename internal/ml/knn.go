package ml

import (
	"fmt"
	"sort"
)

// KNN is a k-nearest-neighbors classifier with Euclidean distance. The
// paper's kNN baseline uses k = 3.
type KNN struct {
	K int

	x [][]float64
	y []int
}

var (
	_ Classifier = (*KNN)(nil)
	_ Scorer     = (*KNN)(nil)
)

// NewKNN returns a 3-NN classifier.
func NewKNN() *KNN { return &KNN{K: 3} }

// Fit implements Classifier (lazily: it stores the training set).
func (k *KNN) Fit(x [][]float64, y []int) error {
	if len(x) == 0 || len(x) != len(y) {
		return fmt.Errorf("ml: knn: invalid training set (n=%d, labels=%d)", len(x), len(y))
	}
	k.x = x
	k.y = y
	return nil
}

// neighbors returns the labels of the k nearest training points.
func (k *KNN) neighbors(x []float64) []int {
	kk := k.K
	if kk <= 0 {
		kk = 3
	}
	if kk > len(k.x) {
		kk = len(k.x)
	}
	type dl struct {
		d float64
		l int
	}
	ds := make([]dl, len(k.x))
	for i, xi := range k.x {
		var acc float64
		for j := range xi {
			d := xi[j] - x[j]
			acc += d * d
		}
		ds[i] = dl{acc, k.y[i]}
	}
	sort.Slice(ds, func(a, b int) bool { return ds[a].d < ds[b].d })
	out := make([]int, kk)
	for i := 0; i < kk; i++ {
		out[i] = ds[i].l
	}
	return out
}

// Predict implements Classifier by majority vote among neighbors.
func (k *KNN) Predict(x []float64) int {
	votes := make(map[int]int)
	for _, l := range k.neighbors(x) {
		votes[l]++
	}
	best, bestN := 0, -1
	for c, n := range votes {
		if n > bestN || (n == bestN && c < best) {
			best, bestN = c, n
		}
	}
	return best
}

// Score implements Scorer: the fraction of class-1 neighbors.
func (k *KNN) Score(x []float64) float64 {
	ns := k.neighbors(x)
	if len(ns) == 0 {
		return 0
	}
	var ones int
	for _, l := range ns {
		if l == 1 {
			ones++
		}
	}
	return float64(ones) / float64(len(ns))
}
