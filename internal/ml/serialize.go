package ml

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// Serialization uses versioned JSON documents so enrolled models
// survive process restarts (a real deployment enrolls once and loads
// at boot; re-enrolling on every start would defeat the paper's
// low-effort setup story).

const (
	svmFormatVersion     = 1
	convNetFormatVersion = 1
)

// Typed load errors. Every failure mode of LoadSVM/LoadConvNet chains
// to one of these — corruption and version skew must surface as
// matchable errors (never panics), because the cluster snapshot path
// feeds these decoders bytes that crossed the network.
var (
	// ErrUnsupportedVersion: the document's format version is not one
	// this build reads.
	ErrUnsupportedVersion = errors.New("ml: unsupported model format version")
	// ErrCorruptModel: the document failed to decode or is internally
	// inconsistent (truncated, shape mismatch, unknown kernel, ...).
	ErrCorruptModel = errors.New("ml: corrupt model document")
)

// svmDTO is the on-disk form of a trained SVM.
type svmDTO struct {
	Version        int         `json:"version"`
	C              float64     `json:"c"`
	KernelName     string      `json:"kernel"`
	Gamma          float64     `json:"gamma,omitempty"`
	SupportVectors [][]float64 `json:"support_vectors"`
	SupportLabels  []float64   `json:"support_labels"`
	Alphas         []float64   `json:"alphas"`
	Bias           float64     `json:"bias"`
	PlattA         float64     `json:"platt_a"`
	PlattB         float64     `json:"platt_b"`
	HasPlatt       bool        `json:"has_platt"`
}

// SaveSVM writes a trained SVM to w as versioned JSON.
func SaveSVM(w io.Writer, s *SVM) error {
	dto := svmDTO{
		Version:        svmFormatVersion,
		C:              s.C,
		SupportVectors: s.x,
		SupportLabels:  s.y,
		Alphas:         s.alpha,
		Bias:           s.b,
		PlattA:         s.plattA,
		PlattB:         s.plattB,
		HasPlatt:       s.hasPlatt,
	}
	switch k := s.Kernel.(type) {
	case LinearKernel:
		dto.KernelName = "linear"
	case RBFKernel:
		dto.KernelName = "rbf"
		dto.Gamma = k.Gamma
	default:
		return fmt.Errorf("ml: cannot serialize kernel %T", s.Kernel)
	}
	return json.NewEncoder(w).Encode(dto)
}

// LoadSVM reads a trained SVM written by SaveSVM.
func LoadSVM(r io.Reader) (*SVM, error) {
	var dto svmDTO
	if err := json.NewDecoder(r).Decode(&dto); err != nil {
		return nil, fmt.Errorf("%w: decoding SVM: %v", ErrCorruptModel, err)
	}
	if dto.Version != svmFormatVersion {
		return nil, fmt.Errorf("%w: SVM version %d (want %d)", ErrUnsupportedVersion, dto.Version, svmFormatVersion)
	}
	if len(dto.SupportVectors) != len(dto.Alphas) || len(dto.SupportVectors) != len(dto.SupportLabels) {
		return nil, fmt.Errorf("%w: inconsistent SVM document (%d vectors, %d alphas, %d labels)",
			ErrCorruptModel, len(dto.SupportVectors), len(dto.Alphas), len(dto.SupportLabels))
	}
	var kernel Kernel
	switch dto.KernelName {
	case "linear":
		kernel = LinearKernel{}
	case "rbf":
		kernel = RBFKernel{Gamma: dto.Gamma}
	default:
		return nil, fmt.Errorf("%w: unknown kernel %q", ErrCorruptModel, dto.KernelName)
	}
	s := NewSVM(dto.C, kernel)
	s.x = dto.SupportVectors
	s.y = dto.SupportLabels
	s.alpha = dto.Alphas
	s.b = dto.Bias
	s.plattA, s.plattB = dto.PlattA, dto.PlattB
	s.hasPlatt = dto.HasPlatt
	return s, nil
}

// maxConvNetDim caps each architecture dimension a loaded document may
// request. The budget is checked BEFORE any layer allocation so a
// hostile document cannot make LoadConvNet allocate gigabytes or hand
// a negative size to make (which would panic).
const maxConvNetDim = 1 << 16

// validateConvNetConfig rejects architecture parameters that would
// make initLayers panic or allocate absurdly.
func validateConvNetConfig(cfg ConvNetConfig) error {
	dims := []struct {
		name string
		v    int
	}{
		{"input_dim", cfg.InputDim},
		{"kernel_size", cfg.KernelSize},
		{"hidden_dim", cfg.HiddenDim},
	}
	for _, d := range dims {
		if d.v < 1 || d.v > maxConvNetDim {
			return fmt.Errorf("%w: ConvNet %s %d out of range [1, %d]", ErrCorruptModel, d.name, d.v, maxConvNetDim)
		}
	}
	if len(cfg.ConvChannels) > 64 {
		return fmt.Errorf("%w: ConvNet has %d conv layers (max 64)", ErrCorruptModel, len(cfg.ConvChannels))
	}
	for i, ch := range cfg.ConvChannels {
		if ch < 1 || ch > maxConvNetDim {
			return fmt.Errorf("%w: ConvNet conv layer %d channels %d out of range [1, %d]", ErrCorruptModel, i, ch, maxConvNetDim)
		}
	}
	return nil
}

// standardizerDTO is the on-disk form of a fitted Standardizer.
type standardizerDTO struct {
	Mean []float64 `json:"mean"`
	Std  []float64 `json:"std"`
}

// MarshalJSON implements json.Marshaler.
func (s *Standardizer) MarshalJSON() ([]byte, error) {
	return json.Marshal(standardizerDTO{Mean: s.mean, Std: s.std})
}

// UnmarshalJSON implements json.Unmarshaler.
func (s *Standardizer) UnmarshalJSON(data []byte) error {
	var dto standardizerDTO
	if err := json.Unmarshal(data, &dto); err != nil {
		return fmt.Errorf("ml: decoding standardizer: %w", err)
	}
	if len(dto.Mean) != len(dto.Std) {
		return fmt.Errorf("ml: inconsistent standardizer (%d means, %d stds)", len(dto.Mean), len(dto.Std))
	}
	s.mean, s.std = dto.Mean, dto.Std
	return nil
}

// convNetDTO is the on-disk form of a trained ConvNet.
type convNetDTO struct {
	Version int           `json:"version"`
	Cfg     ConvNetConfig `json:"config"`
	Convs   []layerDTO    `json:"convs"`
	Dense1  layerDTO      `json:"dense1"`
	Dense2  layerDTO      `json:"dense2"`
}

type layerDTO struct {
	W []float64 `json:"w"`
	B []float64 `json:"b"`
}

// SaveConvNet writes a trained network to w as versioned JSON.
func SaveConvNet(w io.Writer, c *ConvNet) error {
	if c.dense2 == nil {
		return fmt.Errorf("ml: cannot serialize an untrained ConvNet")
	}
	dto := convNetDTO{
		Version: convNetFormatVersion,
		Cfg:     c.Cfg,
		Dense1:  layerDTO{W: c.dense1.w, B: c.dense1.b},
		Dense2:  layerDTO{W: c.dense2.w, B: c.dense2.b},
	}
	for _, l := range c.convs {
		dto.Convs = append(dto.Convs, layerDTO{W: l.w, B: l.b})
	}
	return json.NewEncoder(w).Encode(dto)
}

// LoadConvNet reads a network written by SaveConvNet. The returned
// network can Predict immediately and ContinueFit for incremental
// adaptation (optimizer state restarts fresh).
func LoadConvNet(r io.Reader) (*ConvNet, error) {
	var dto convNetDTO
	if err := json.NewDecoder(r).Decode(&dto); err != nil {
		return nil, fmt.Errorf("%w: decoding ConvNet: %v", ErrCorruptModel, err)
	}
	if dto.Version != convNetFormatVersion {
		return nil, fmt.Errorf("%w: ConvNet version %d (want %d)", ErrUnsupportedVersion, dto.Version, convNetFormatVersion)
	}
	if len(dto.Convs) != len(dto.Cfg.ConvChannels) {
		return nil, fmt.Errorf("%w: ConvNet document has %d conv layers, config wants %d",
			ErrCorruptModel, len(dto.Convs), len(dto.Cfg.ConvChannels))
	}
	if err := validateConvNetConfig(dto.Cfg); err != nil {
		return nil, err
	}
	c := NewConvNet(dto.Cfg)
	// Build layers with the right shapes, then overwrite weights.
	rng := randForInit(dto.Cfg.Seed)
	c.initLayers(rng)
	for i, l := range c.convs {
		if len(dto.Convs[i].W) != len(l.w) || len(dto.Convs[i].B) != len(l.b) {
			return nil, fmt.Errorf("%w: conv layer %d shape mismatch", ErrCorruptModel, i)
		}
		copy(l.w, dto.Convs[i].W)
		copy(l.b, dto.Convs[i].B)
	}
	if len(dto.Dense1.W) != len(c.dense1.w) || len(dto.Dense2.W) != len(c.dense2.w) {
		return nil, fmt.Errorf("%w: dense layer shape mismatch", ErrCorruptModel)
	}
	copy(c.dense1.w, dto.Dense1.W)
	copy(c.dense1.b, dto.Dense1.B)
	copy(c.dense2.w, dto.Dense2.W)
	copy(c.dense2.b, dto.Dense2.B)
	return c, nil
}
