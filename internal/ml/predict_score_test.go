package ml

import (
	"math/rand/v2"
	"testing"
)

func trainedPipeline(t *testing.T) (*Pipeline, [][]float64) {
	t.Helper()
	r := rand.New(rand.NewPCG(2, 0))
	const n, d = 60, 8
	x := make([][]float64, n)
	y := make([]int, n)
	for i := range x {
		x[i] = make([]float64, d)
		shift := 0.0
		if i%2 == 1 {
			shift = 1.5
			y[i] = 1
		}
		for j := range x[i] {
			x[i][j] = r.NormFloat64() + shift
		}
	}
	p := NewPipeline(NewSVM(1, RBFKernel{Gamma: 1.0 / d}))
	if err := p.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	return p, x
}

func TestTransformIntoMatchesTransform(t *testing.T) {
	p, x := trainedPipeline(t)
	scratch := make([]float64, 0, len(x[0]))
	for _, xi := range x {
		want := p.scaler.Transform(xi)
		got := p.scaler.TransformInto(scratch, xi)
		if len(want) != len(got) {
			t.Fatalf("length: want %d, got %d", len(want), len(got))
		}
		for j := range want {
			if want[j] != got[j] {
				t.Fatalf("feature %d: want %g, got %g", j, want[j], got[j])
			}
		}
	}
	// Short vectors are truncated to the fitted dimensionality either way.
	short := x[0][:3]
	if got := p.scaler.TransformInto(nil, short); len(got) != 3 {
		t.Fatalf("short vector: want 3 features, got %d", len(got))
	}
}

// PredictScore must agree exactly with the two-call path it replaces.
func TestPredictScoreMatchesPredictAndScore(t *testing.T) {
	p, x := trainedPipeline(t)
	var scratch []float64
	for i, xi := range x {
		wantLabel := p.Predict(xi)
		wantScore := p.Score(xi)
		var gotLabel int
		var gotScore float64
		gotLabel, gotScore, scratch = p.PredictScore(xi, scratch)
		if gotLabel != wantLabel || gotScore != wantScore {
			t.Fatalf("sample %d: want (%d, %g), got (%d, %g)", i, wantLabel, wantScore, gotLabel, gotScore)
		}
	}
}

// thresholdClf is a minimal Classifier with no Score method, to
// exercise PredictScore's non-Scorer fallback.
type thresholdClf struct{}

func (thresholdClf) Fit(x [][]float64, y []int) error { return nil }
func (thresholdClf) Predict(x []float64) int {
	if len(x) > 0 && x[0] >= 0 {
		return 1
	}
	return 0
}

// A non-Scorer inner classifier falls back to the predicted label as
// the score, matching Score's own fallback.
func TestPredictScoreNonScorer(t *testing.T) {
	r := rand.New(rand.NewPCG(4, 0))
	const n, d = 40, 5
	x := make([][]float64, n)
	y := make([]int, n)
	for i := range x {
		x[i] = make([]float64, d)
		if i%2 == 1 {
			y[i] = 1
		}
		for j := range x[i] {
			x[i][j] = r.NormFloat64() + 2*float64(y[i])
		}
	}
	p := NewPipeline(thresholdClf{})
	if err := p.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	for _, xi := range x {
		wantLabel := p.Predict(xi)
		wantScore := p.Score(xi)
		gotLabel, gotScore, _ := p.PredictScore(xi, nil)
		if gotLabel != wantLabel || gotScore != wantScore {
			t.Fatalf("want (%d, %g), got (%d, %g)", wantLabel, wantScore, gotLabel, gotScore)
		}
	}
}

// Warm-scratch PredictScore must not allocate: the serving arenas pin
// the whole decision path at zero.
func TestPredictScoreAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; pin holds in normal builds")
	}
	p, x := trainedPipeline(t)
	_, _, scratch := p.PredictScore(x[0], nil) // warm-up
	allocs := testing.AllocsPerRun(10, func() {
		_, _, scratch = p.PredictScore(x[1], scratch)
	})
	if allocs != 0 {
		t.Fatalf("warm PredictScore allocated %.1f times per run, want 0", allocs)
	}
}
