package ml

import (
	"bytes"
	"strings"
	"testing"
)

func TestSVMSaveLoadRoundTrip(t *testing.T) {
	x, y := blobs2D(40, 0.5, 31)
	svm := NewSVM(1, RBFKernel{Gamma: 0.5})
	if err := svm.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveSVM(&buf, svm); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSVM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	tx, _ := blobs2D(20, 0.5, 32)
	for _, xi := range tx {
		if svm.Score(xi) != loaded.Score(xi) {
			t.Fatalf("score mismatch after reload")
		}
		if svm.PredictProba(xi) != loaded.PredictProba(xi) {
			t.Fatalf("probability mismatch after reload")
		}
	}
}

func TestSVMSaveLoadLinearKernel(t *testing.T) {
	x, y := blobs2D(20, 0.5, 33)
	svm := NewSVM(1, LinearKernel{})
	if err := svm.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveSVM(&buf, svm); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSVM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Predict(x[0]) != svm.Predict(x[0]) {
		t.Error("linear kernel reload mismatch")
	}
}

func TestLoadSVMRejectsBadDocuments(t *testing.T) {
	if _, err := LoadSVM(strings.NewReader("not json")); err == nil {
		t.Error("expected error for garbage")
	}
	if _, err := LoadSVM(strings.NewReader(`{"version":99}`)); err == nil {
		t.Error("expected error for unknown version")
	}
	if _, err := LoadSVM(strings.NewReader(`{"version":1,"kernel":"poly"}`)); err == nil {
		t.Error("expected error for unknown kernel")
	}
	if _, err := LoadSVM(strings.NewReader(`{"version":1,"kernel":"rbf","support_vectors":[[1]],"alphas":[]}`)); err == nil {
		t.Error("expected error for inconsistent document")
	}
}

func TestStandardizerJSONRoundTrip(t *testing.T) {
	var s Standardizer
	if err := s.Fit([][]float64{{1, 10}, {3, 30}}); err != nil {
		t.Fatal(err)
	}
	data, err := s.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Standardizer
	if err := back.UnmarshalJSON(data); err != nil {
		t.Fatal(err)
	}
	in := []float64{2, 20}
	a := s.Transform(in)
	b := back.Transform(in)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("standardizer reload mismatch")
		}
	}
	if err := back.UnmarshalJSON([]byte(`{"mean":[1],"std":[]}`)); err == nil {
		t.Error("expected error for inconsistent scaler")
	}
}

func TestConvNetSaveLoadRoundTrip(t *testing.T) {
	x, y := sequenceData(24, 34)
	cfg := DefaultConvNetConfig(6)
	cfg.ConvChannels = []int{8}
	cfg.Epochs = 10
	net := NewConvNet(cfg)
	if err := net.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveConvNet(&buf, net); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadConvNet(&buf)
	if err != nil {
		t.Fatal(err)
	}
	tx, _ := sequenceData(10, 35)
	for _, seq := range tx {
		a, err := net.PredictProba(seq)
		if err != nil {
			t.Fatal(err)
		}
		b, err := loaded.PredictProba(seq)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("probability mismatch after reload: %g vs %g", a, b)
		}
	}
	// Reloaded networks remain adaptable.
	if err := loaded.ContinueFit(x, y, 2); err != nil {
		t.Fatal(err)
	}
}

func TestSaveConvNetUntrained(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveConvNet(&buf, NewConvNet(DefaultConvNetConfig(4))); err == nil {
		t.Error("expected error for untrained network")
	}
}

func TestRestorePipeline(t *testing.T) {
	x, y := blobs2D(30, 0.5, 36)
	p := NewPipeline(NewKNN())
	if err := p.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	scalerJSON, err := p.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	// Restore: the inner classifier is serialized separately by its own
	// format; here we rebuild it by refitting on transformed data.
	inner := NewKNN()
	var scaler Standardizer
	if err := scaler.UnmarshalJSON(scalerJSON); err != nil {
		t.Fatal(err)
	}
	tx := make([][]float64, len(x))
	for i := range x {
		tx[i] = scaler.Transform(x[i])
	}
	if err := inner.Fit(tx, y); err != nil {
		t.Fatal(err)
	}
	restored, err := RestorePipeline(scalerJSON, inner)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if restored.Predict(x[i]) != p.Predict(x[i]) {
			t.Fatal("restored pipeline disagrees")
		}
	}
}
