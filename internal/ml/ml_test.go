package ml

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// blobs2D generates two Gaussian clusters: class 0 around (-2,-2),
// class 1 around (2,2).
func blobs2D(nPerClass int, spread float64, seed uint64) ([][]float64, []int) {
	rng := rand.New(rand.NewPCG(seed, 1))
	var x [][]float64
	var y []int
	for i := 0; i < nPerClass; i++ {
		x = append(x, []float64{-2 + spread*rng.NormFloat64(), -2 + spread*rng.NormFloat64()})
		y = append(y, 0)
		x = append(x, []float64{2 + spread*rng.NormFloat64(), 2 + spread*rng.NormFloat64()})
		y = append(y, 1)
	}
	return x, y
}

// xorData generates the XOR pattern: only non-linear models solve it.
func xorData(nPerQuadrant int, seed uint64) ([][]float64, []int) {
	rng := rand.New(rand.NewPCG(seed, 2))
	var x [][]float64
	var y []int
	for i := 0; i < nPerQuadrant; i++ {
		for _, q := range [][3]float64{{1, 1, 0}, {-1, -1, 0}, {1, -1, 1}, {-1, 1, 1}} {
			x = append(x, []float64{q[0] + 0.3*rng.NormFloat64(), q[1] + 0.3*rng.NormFloat64()})
			y = append(y, int(q[2]))
		}
	}
	return x, y
}

func accuracyOf(t *testing.T, clf Classifier, x [][]float64, y []int) float64 {
	t.Helper()
	preds := make([]int, len(x))
	for i := range x {
		preds[i] = clf.Predict(x[i])
	}
	m, err := EvaluateBinary(y, preds)
	if err != nil {
		t.Fatal(err)
	}
	return m.Accuracy()
}

func TestStandardizer(t *testing.T) {
	x := [][]float64{{1, 10}, {3, 30}, {5, 50}}
	var s Standardizer
	if err := s.Fit(x); err != nil {
		t.Fatal(err)
	}
	out := s.TransformAll(x)
	for j := 0; j < 2; j++ {
		var mean, varsum float64
		for i := range out {
			mean += out[i][j]
		}
		mean /= 3
		for i := range out {
			d := out[i][j] - mean
			varsum += d * d
		}
		if math.Abs(mean) > 1e-12 || math.Abs(varsum/3-1) > 1e-12 {
			t.Errorf("feature %d not standardized: mean=%g var=%g", j, mean, varsum/3)
		}
	}
}

func TestStandardizerConstantFeature(t *testing.T) {
	var s Standardizer
	if err := s.Fit([][]float64{{7, 1}, {7, 2}}); err != nil {
		t.Fatal(err)
	}
	out := s.Transform([]float64{7, 1.5})
	if math.IsNaN(out[0]) || math.IsInf(out[0], 0) {
		t.Error("constant feature produced NaN/Inf")
	}
}

func TestStandardizerErrors(t *testing.T) {
	var s Standardizer
	if err := s.Fit(nil); err == nil {
		t.Error("expected error on empty fit")
	}
	if err := s.Fit([][]float64{{1, 2}, {1}}); err == nil {
		t.Error("expected error on ragged matrix")
	}
}

func TestSVMLinearlySeparable(t *testing.T) {
	x, y := blobs2D(40, 0.5, 3)
	svm := NewSVM(1, LinearKernel{})
	if err := svm.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	tx, ty := blobs2D(40, 0.5, 4)
	if acc := accuracyOf(t, svm, tx, ty); acc < 0.97 {
		t.Errorf("linear SVM accuracy %g on separable blobs", acc)
	}
	if svm.NumSupportVectors() == 0 || svm.NumSupportVectors() >= len(x) {
		t.Errorf("support vector count %d implausible", svm.NumSupportVectors())
	}
}

func TestSVMRBFSolvesXOR(t *testing.T) {
	x, y := xorData(30, 5)
	svm := NewSVM(10, RBFKernel{Gamma: 1})
	if err := svm.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	tx, ty := xorData(30, 6)
	if acc := accuracyOf(t, svm, tx, ty); acc < 0.95 {
		t.Errorf("RBF SVM accuracy %g on XOR", acc)
	}
}

func TestSVMScoreSign(t *testing.T) {
	x, y := blobs2D(30, 0.4, 7)
	svm := NewSVM(1, RBFKernel{Gamma: 0.5})
	if err := svm.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if svm.Score([]float64{2, 2}) <= 0 {
		t.Error("positive-class score should be positive")
	}
	if svm.Score([]float64{-2, -2}) >= 0 {
		t.Error("negative-class score should be negative")
	}
}

func TestSVMPlattProbabilities(t *testing.T) {
	x, y := blobs2D(40, 0.6, 9)
	svm := NewSVM(1, RBFKernel{Gamma: 0.5})
	if err := svm.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	pPos := svm.PredictProba([]float64{2, 2})
	pNeg := svm.PredictProba([]float64{-2, -2})
	pMid := svm.PredictProba([]float64{0, 0})
	if pPos < 0.85 {
		t.Errorf("deep positive probability %g", pPos)
	}
	if pNeg > 0.15 {
		t.Errorf("deep negative probability %g", pNeg)
	}
	if pMid < 0.1 || pMid > 0.9 {
		t.Errorf("boundary probability %g should be uncertain", pMid)
	}
}

func TestSVMFitErrors(t *testing.T) {
	svm := NewSVM(1, LinearKernel{})
	if err := svm.Fit(nil, nil); err == nil {
		t.Error("expected error on empty training set")
	}
	if err := svm.Fit([][]float64{{1}}, []int{0, 1}); err == nil {
		t.Error("expected error on length mismatch")
	}
}

func TestKernelValues(t *testing.T) {
	if got := (LinearKernel{}).Eval([]float64{1, 2}, []float64{3, 4}); got != 11 {
		t.Errorf("linear kernel = %g", got)
	}
	rbf := RBFKernel{Gamma: 0.5}
	if got := rbf.Eval([]float64{1, 1}, []float64{1, 1}); got != 1 {
		t.Errorf("RBF self-similarity = %g, want 1", got)
	}
	if got := rbf.Eval([]float64{0, 0}, []float64{2, 0}); math.Abs(got-math.Exp(-2)) > 1e-12 {
		t.Errorf("RBF = %g, want e^-2", got)
	}
}

func TestGridSearchRBF(t *testing.T) {
	x, y := xorData(15, 11)
	c, g, acc, err := GridSearchRBF(x, y, []float64{0.1, 10}, []float64{0.01, 1}, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.8 {
		t.Errorf("best CV accuracy %g", acc)
	}
	if c == 0 || g == 0 {
		t.Error("grid search returned zero parameters")
	}
	if _, _, _, err := GridSearchRBF(x, y, []float64{1}, []float64{1}, 1, 1); err == nil {
		t.Error("expected error for < 2 folds")
	}
}

func TestDecisionTreeBlobs(t *testing.T) {
	x, y := blobs2D(40, 0.5, 13)
	tree := NewDecisionTree()
	if err := tree.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	tx, ty := blobs2D(40, 0.5, 14)
	if acc := accuracyOf(t, tree, tx, ty); acc < 0.95 {
		t.Errorf("tree accuracy %g", acc)
	}
}

func TestDecisionTreeMaxSplits(t *testing.T) {
	x, y := xorData(25, 15)
	stump := &DecisionTree{MaxSplits: 1, MinLeaf: 1, Seed: 1}
	if err := stump.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if d := stump.Depth(); d > 1 {
		t.Errorf("1-split tree depth %d", d)
	}
	// XOR cannot be solved by one split.
	if acc := accuracyOf(t, stump, x, y); acc > 0.8 {
		t.Errorf("stump should fail XOR, got %g", acc)
	}
	full := &DecisionTree{MaxSplits: 0, MaxDepth: 8, MinLeaf: 1, Seed: 1}
	if err := full.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if acc := accuracyOf(t, full, x, y); acc < 0.95 {
		t.Errorf("deep tree should fit XOR, got %g", acc)
	}
}

func TestDecisionTreeScore(t *testing.T) {
	x, y := blobs2D(30, 0.4, 17)
	tree := &DecisionTree{MaxDepth: 6, MinLeaf: 1, Seed: 1}
	if err := tree.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if s := tree.Score([]float64{2, 2}); s < 0.5 {
		t.Errorf("positive region score %g", s)
	}
	if s := tree.Score([]float64{-2, -2}); s > 0.5 {
		t.Errorf("negative region score %g", s)
	}
}

func TestDecisionTreeErrors(t *testing.T) {
	tree := NewDecisionTree()
	if err := tree.Fit(nil, nil); err == nil {
		t.Error("expected error on empty data")
	}
	if err := tree.Fit([][]float64{{1}}, []int{-1}); err == nil {
		t.Error("expected error on negative label")
	}
}

func TestRandomForestXOR(t *testing.T) {
	x, y := xorData(25, 19)
	f := NewRandomForest()
	f.NumTrees = 40
	if err := f.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	tx, ty := xorData(25, 20)
	if acc := accuracyOf(t, f, tx, ty); acc < 0.9 {
		t.Errorf("forest accuracy %g on XOR", acc)
	}
	if s := f.Score(tx[0]); s < 0 || s > 1 {
		t.Errorf("forest score %g outside [0,1]", s)
	}
}

func TestKNN(t *testing.T) {
	x, y := blobs2D(30, 0.5, 21)
	k := NewKNN()
	if err := k.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	tx, ty := blobs2D(30, 0.5, 22)
	if acc := accuracyOf(t, k, tx, ty); acc < 0.95 {
		t.Errorf("kNN accuracy %g", acc)
	}
	if s := k.Score([]float64{2, 2}); s != 1 {
		t.Errorf("deep positive 3-NN score %g, want 1", s)
	}
}

func TestKNNKLargerThanData(t *testing.T) {
	k := &KNN{K: 50}
	if err := k.Fit([][]float64{{0}, {1}}, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	// Must not panic; falls back to all points.
	k.Predict([]float64{0.4})
}

func TestMLPLearnsXOR(t *testing.T) {
	x, y := xorData(40, 23)
	cfg := DefaultMLPConfig()
	cfg.Epochs = 200
	m := NewMLP(cfg)
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	tx, ty := xorData(40, 24)
	if acc := accuracyOf(t, m, tx, ty); acc < 0.9 {
		t.Errorf("MLP accuracy %g on XOR", acc)
	}
}

func TestPipelineStandardizesForInner(t *testing.T) {
	// Features at wildly different scales: without standardization the
	// RBF kernel saturates. The pipeline should cope.
	rng := rand.New(rand.NewPCG(25, 26))
	var x [][]float64
	var y []int
	for i := 0; i < 60; i++ {
		cls := i % 2
		base := -1.0
		if cls == 1 {
			base = 1
		}
		x = append(x, []float64{base + 0.3*rng.NormFloat64(), 1e6 * (base + 0.3*rng.NormFloat64())})
		y = append(y, cls)
	}
	p := NewPipeline(NewSVM(10, RBFKernel{Gamma: 0.5}))
	if err := p.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := range x {
		if p.Predict(x[i]) == y[i] {
			correct++
		}
	}
	if float64(correct)/float64(len(x)) < 0.9 {
		t.Errorf("pipeline accuracy %d/%d on mixed-scale data", correct, len(x))
	}
}

func TestShuffleAndSplit(t *testing.T) {
	x := [][]float64{{0}, {1}, {2}, {3}, {4}, {5}, {6}, {7}}
	y := []int{0, 1, 2, 3, 4, 5, 6, 7}
	rng := rand.New(rand.NewPCG(27, 28))
	xs := make([][]float64, len(x))
	copy(xs, x)
	ys := append([]int{}, y...)
	Shuffle(xs, ys, rng)
	for i := range xs {
		if int(xs[i][0]) != ys[i] {
			t.Fatal("Shuffle broke x/y pairing")
		}
	}
	trX, trY, teX, teY := TrainTestSplit(x, y, 0.75, rng)
	if len(trX) != 6 || len(teX) != 2 || len(trY) != 6 || len(teY) != 2 {
		t.Errorf("split sizes %d/%d", len(trX), len(teX))
	}
}

func TestCountClasses(t *testing.T) {
	got := CountClasses([]int{0, 1, 1, 2})
	if got[0] != 1 || got[1] != 2 || got[2] != 1 {
		t.Errorf("CountClasses = %v", got)
	}
}

func TestSVMDeterministicWithSeed(t *testing.T) {
	x, y := blobs2D(30, 0.6, 29)
	run := func() []float64 {
		svm := NewSVM(1, RBFKernel{Gamma: 0.5})
		svm.Seed = 42
		if err := svm.Fit(x, y); err != nil {
			t.Fatal(err)
		}
		out := make([]float64, len(x))
		for i := range x {
			out[i] = svm.Score(x[i])
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("SVM training not deterministic under fixed seed")
		}
	}
}

func TestRBFKernelProperty(t *testing.T) {
	// 0 < K(a,b) <= 1 and K(a,a) = 1 for any finite inputs.
	f := func(a, b [3]float64) bool {
		av := []float64{clamp(a[0]), clamp(a[1]), clamp(a[2])}
		bv := []float64{clamp(b[0]), clamp(b[1]), clamp(b[2])}
		k := RBFKernel{Gamma: 0.1}
		v := k.Eval(av, bv)
		// v may underflow to exactly 0 for far-apart points.
		return v >= 0 && v <= 1+1e-12 && math.Abs(k.Eval(av, av)-1) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func clamp(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	if v > 100 {
		return 100
	}
	if v < -100 {
		return -100
	}
	return v
}
