//go:build !race

package ml

const raceEnabled = false
