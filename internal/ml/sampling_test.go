package ml

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// imbalanced builds a 2-class dataset with the given counts.
func imbalanced(nMinority, nMajority int, seed uint64) ([][]float64, []int) {
	rng := rand.New(rand.NewPCG(seed, 1))
	var x [][]float64
	var y []int
	for i := 0; i < nMinority; i++ {
		x = append(x, []float64{1 + 0.2*rng.NormFloat64(), 1 + 0.2*rng.NormFloat64()})
		y = append(y, 1)
	}
	for i := 0; i < nMajority; i++ {
		x = append(x, []float64{-1 + 0.2*rng.NormFloat64(), -1 + 0.2*rng.NormFloat64()})
		y = append(y, 0)
	}
	return x, y
}

func TestSMOTEBalances(t *testing.T) {
	x, y := imbalanced(10, 40, 1)
	rng := rand.New(rand.NewPCG(2, 2))
	bx, by, err := SMOTE(x, y, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	counts := CountClasses(by)
	if counts[0] != counts[1] {
		t.Errorf("SMOTE did not balance: %v", counts)
	}
	if len(bx) != len(by) {
		t.Error("x/y length mismatch after SMOTE")
	}
	// Originals preserved at the front.
	for i := range x {
		if &bx[i][0] != &x[i][0] {
			t.Fatal("SMOTE moved original samples")
		}
	}
}

func TestSMOTESyntheticWithinConvexHull(t *testing.T) {
	// SMOTE interpolates between minority points, so synthetic
	// minority samples must lie inside the minority bounding box.
	x, y := imbalanced(15, 50, 3)
	var lo, hi [2]float64
	lo = [2]float64{1e18, 1e18}
	hi = [2]float64{-1e18, -1e18}
	for i := range x {
		if y[i] != 1 {
			continue
		}
		for d := 0; d < 2; d++ {
			if x[i][d] < lo[d] {
				lo[d] = x[i][d]
			}
			if x[i][d] > hi[d] {
				hi[d] = x[i][d]
			}
		}
	}
	rng := rand.New(rand.NewPCG(4, 4))
	bx, by, err := SMOTE(x, y, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := len(x); i < len(bx); i++ {
		if by[i] != 1 {
			t.Fatalf("synthetic sample %d has majority label", i)
		}
		for d := 0; d < 2; d++ {
			if bx[i][d] < lo[d]-1e-9 || bx[i][d] > hi[d]+1e-9 {
				t.Fatalf("synthetic sample outside minority hull: %v", bx[i])
			}
		}
	}
}

func TestADASYNBalances(t *testing.T) {
	x, y := imbalanced(12, 48, 5)
	rng := rand.New(rand.NewPCG(6, 6))
	bx, by, err := ADASYN(x, y, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	counts := CountClasses(by)
	if counts[0] != counts[1] {
		t.Errorf("ADASYN did not balance: %v", counts)
	}
	if len(bx) != 96 {
		t.Errorf("total %d, want 96", len(bx))
	}
}

func TestADASYNFocusesHardRegion(t *testing.T) {
	// Minority points: one cluster deep in minority territory, one
	// point surrounded by majority. ADASYN should synthesize more near
	// the hard point.
	x := [][]float64{
		// Easy minority cluster.
		{5, 5}, {5.1, 5}, {5, 5.1}, {5.1, 5.1},
		// Hard minority point inside majority region.
		{0, 0},
	}
	y := []int{1, 1, 1, 1, 1}
	rng := rand.New(rand.NewPCG(7, 7))
	for i := 0; i < 25; i++ {
		x = append(x, []float64{0.3 * rng.NormFloat64(), 0.3 * rng.NormFloat64()})
		y = append(y, 0)
	}
	bx, by, err := ADASYN(x, y, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	nearHard, nearEasy := 0, 0
	for i := 30; i < len(bx); i++ {
		if by[i] != 1 {
			continue
		}
		dHard := bx[i][0]*bx[i][0] + bx[i][1]*bx[i][1]
		dEasy := (bx[i][0]-5)*(bx[i][0]-5) + (bx[i][1]-5)*(bx[i][1]-5)
		if dHard < dEasy {
			nearHard++
		} else {
			nearEasy++
		}
	}
	if nearHard <= nearEasy {
		t.Errorf("ADASYN synthesized %d near hard point vs %d near easy cluster", nearHard, nearEasy)
	}
}

func TestOversamplingNoOpWhenBalanced(t *testing.T) {
	x, y := imbalanced(20, 20, 8)
	rng := rand.New(rand.NewPCG(9, 9))
	bx, _, err := SMOTE(x, y, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(bx) != len(x) {
		t.Error("balanced data should pass through SMOTE unchanged")
	}
	bx, _, err = ADASYN(x, y, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(bx) != len(x) {
		t.Error("balanced data should pass through ADASYN unchanged")
	}
}

func TestOversamplingErrors(t *testing.T) {
	rng := rand.New(rand.NewPCG(10, 10))
	if _, _, err := SMOTE(nil, nil, 5, rng); err == nil {
		t.Error("expected error on empty data")
	}
	x := [][]float64{{1}, {2}, {3}}
	if _, _, err := SMOTE(x, []int{0, 0, 0}, 5, rng); err == nil {
		t.Error("expected error on single-class data")
	}
	if _, _, err := ADASYN(x, []int{0, 1, 2}, 5, rng); err == nil {
		t.Error("expected error on 3-class data")
	}
}

func TestMinorityLabel(t *testing.T) {
	if got := minorityLabel([]int{0, 0, 0, 1}); got != 1 {
		t.Errorf("minority = %d", got)
	}
	// Tie breaks toward smaller label.
	if got := minorityLabel([]int{0, 1}); got != 0 {
		t.Errorf("tie minority = %d", got)
	}
}

func TestInterpolateProperty(t *testing.T) {
	f := func(a, b [2]float64, tRaw float64) bool {
		tt := clamp(tRaw)
		tt = math.Abs(tt - math.Trunc(tt)) // fractional part in [0,1)
		av := []float64{clamp(a[0]), clamp(a[1])}
		bv := []float64{clamp(b[0]), clamp(b[1])}
		out := interpolate(av, bv, tt)
		for d := 0; d < 2; d++ {
			lo, hi := av[d], bv[d]
			if lo > hi {
				lo, hi = hi, lo
			}
			if out[d] < lo-1e-9 || out[d] > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
