package ml

import (
	"fmt"
	"math/rand/v2"
	"sort"
)

// Oversampling balances a binary dataset by synthesizing minority-class
// samples. The paper uses SMOTE and ADASYN for the imbalanced
// cross-user dataset (§IV-B14) and selects ADASYN.

// SMOTE (Chawla et al. [19]) synthesizes minority samples by linear
// interpolation toward random members of each sample's k nearest
// minority neighbors, until both classes have equal counts. It returns
// the augmented dataset (originals first).
func SMOTE(x [][]float64, y []int, k int, rng *rand.Rand) ([][]float64, []int, error) {
	minority, majority, err := splitClasses(x, y)
	if err != nil {
		return nil, nil, err
	}
	need := len(majority) - len(minority)
	if need <= 0 {
		return x, y, nil
	}
	if k < 1 {
		k = 5
	}
	minLabel := minorityLabel(y)
	neighbors := knnIndices(minority, k)
	outX := append([][]float64{}, x...)
	outY := append([]int{}, y...)
	for s := 0; s < need; s++ {
		i := rng.IntN(len(minority))
		nn := neighbors[i]
		j := nn[rng.IntN(len(nn))]
		outX = append(outX, interpolate(minority[i], minority[j], rng.Float64()))
		outY = append(outY, minLabel)
	}
	return outX, outY, nil
}

// ADASYN (He et al. [37]) is like SMOTE but allocates more synthetic
// samples to minority points whose neighborhoods are dominated by the
// majority class (the "hard" boundary region).
func ADASYN(x [][]float64, y []int, k int, rng *rand.Rand) ([][]float64, []int, error) {
	minority, majority, err := splitClasses(x, y)
	if err != nil {
		return nil, nil, err
	}
	need := len(majority) - len(minority)
	if need <= 0 {
		return x, y, nil
	}
	if k < 1 {
		k = 5
	}
	minLabel := minorityLabel(y)

	// Difficulty ratio r_i: fraction of majority samples among the k
	// nearest neighbors in the FULL dataset.
	ratios := make([]float64, len(minority))
	var ratioSum float64
	for i, m := range minority {
		nn := nearestInAll(m, x, y, k)
		var maj int
		for _, l := range nn {
			if l != minLabel {
				maj++
			}
		}
		ratios[i] = float64(maj) / float64(len(nn))
		ratioSum += ratios[i]
	}

	// Per-point synthesis budget proportional to difficulty. When all
	// ratios are zero (perfectly separable), fall back to uniform.
	counts := make([]int, len(minority))
	if ratioSum == 0 {
		for i := range counts {
			counts[i] = need / len(minority)
		}
		for i := 0; i < need%len(minority); i++ {
			counts[i]++
		}
	} else {
		assigned := 0
		for i := range counts {
			counts[i] = int(float64(need) * ratios[i] / ratioSum)
			assigned += counts[i]
		}
		for i := 0; assigned < need; i, assigned = i+1, assigned+1 {
			counts[i%len(counts)]++
		}
	}

	neighbors := knnIndices(minority, k)
	outX := append([][]float64{}, x...)
	outY := append([]int{}, y...)
	for i, c := range counts {
		nn := neighbors[i]
		for s := 0; s < c; s++ {
			j := nn[rng.IntN(len(nn))]
			outX = append(outX, interpolate(minority[i], minority[j], rng.Float64()))
			outY = append(outY, minLabel)
		}
	}
	return outX, outY, nil
}

// splitClasses separates a binary dataset into minority and majority
// sample sets.
func splitClasses(x [][]float64, y []int) (minority, majority [][]float64, err error) {
	if len(x) != len(y) || len(x) == 0 {
		return nil, nil, fmt.Errorf("ml: invalid dataset (n=%d, labels=%d)", len(x), len(y))
	}
	counts := CountClasses(y)
	if len(counts) != 2 {
		return nil, nil, fmt.Errorf("ml: oversampling requires exactly 2 classes, have %d", len(counts))
	}
	minLabel := minorityLabel(y)
	for i := range x {
		if y[i] == minLabel {
			minority = append(minority, x[i])
		} else {
			majority = append(majority, x[i])
		}
	}
	return minority, majority, nil
}

// minorityLabel returns the label with the fewest samples (ties break
// toward the smaller label).
func minorityLabel(y []int) int {
	counts := CountClasses(y)
	labels := make([]int, 0, len(counts))
	for l := range counts {
		labels = append(labels, l)
	}
	sort.Ints(labels)
	best := labels[0]
	for _, l := range labels[1:] {
		if counts[l] < counts[best] {
			best = l
		}
	}
	return best
}

// knnIndices returns, for each point, the indices of its k nearest
// other points within the same set.
func knnIndices(pts [][]float64, k int) [][]int {
	out := make([][]int, len(pts))
	for i := range pts {
		type di struct {
			d   float64
			idx int
		}
		ds := make([]di, 0, len(pts)-1)
		for j := range pts {
			if j == i {
				continue
			}
			ds = append(ds, di{sqDist(pts[i], pts[j]), j})
		}
		sort.Slice(ds, func(a, b int) bool { return ds[a].d < ds[b].d })
		kk := k
		if kk > len(ds) {
			kk = len(ds)
		}
		if kk == 0 {
			out[i] = []int{i} // degenerate single-point class
			continue
		}
		nn := make([]int, kk)
		for t := 0; t < kk; t++ {
			nn[t] = ds[t].idx
		}
		out[i] = nn
	}
	return out
}

// nearestInAll returns the labels of the k nearest points to p in the
// full dataset.
func nearestInAll(p []float64, x [][]float64, y []int, k int) []int {
	type di struct {
		d float64
		l int
	}
	ds := make([]di, len(x))
	for i := range x {
		ds[i] = di{sqDist(p, x[i]), y[i]}
	}
	sort.Slice(ds, func(a, b int) bool { return ds[a].d < ds[b].d })
	if k > len(ds) {
		k = len(ds)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = ds[i].l
	}
	return out
}

func sqDist(a, b []float64) float64 {
	var acc float64
	for i := range a {
		d := a[i] - b[i]
		acc += d * d
	}
	return acc
}

func interpolate(a, b []float64, t float64) []float64 {
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] + t*(b[i]-a[i])
	}
	return out
}
