// Package ml implements the machine-learning stack the paper relies
// on, from scratch on the standard library: an SMO-trained SVM with RBF
// kernel (the paper's orientation classifier), CART decision trees,
// bagged random forests, k-nearest neighbors, a small convolutional
// network (the wav2vec2 stand-in for liveness detection), SMOTE and
// ADASYN oversampling, cross-validation and the usual evaluation
// metrics including equal error rate.
package ml

import (
	"fmt"
	"math/rand/v2"
)

// Classifier is a trainable binary (or small multi-class) classifier
// over dense feature vectors. Labels are small non-negative ints; the
// orientation task uses 0 = non-facing, 1 = facing.
type Classifier interface {
	Fit(x [][]float64, y []int) error
	Predict(x []float64) int
}

// Scorer exposes a continuous decision score for class 1, used for
// EER computation and confidence-based incremental learning.
type Scorer interface {
	Score(x []float64) float64
}

// Standardizer scales features to zero mean / unit variance using
// statistics from the training set.
type Standardizer struct {
	mean, std []float64
}

// Fit computes per-feature statistics from x.
func (s *Standardizer) Fit(x [][]float64) error {
	if len(x) == 0 {
		return fmt.Errorf("ml: cannot fit standardizer on empty data")
	}
	d := len(x[0])
	s.mean = make([]float64, d)
	s.std = make([]float64, d)
	for _, row := range x {
		if len(row) != d {
			return fmt.Errorf("ml: ragged feature matrix (%d vs %d)", len(row), d)
		}
		for j, v := range row {
			s.mean[j] += v
		}
	}
	n := float64(len(x))
	for j := range s.mean {
		s.mean[j] /= n
	}
	for _, row := range x {
		for j, v := range row {
			d := v - s.mean[j]
			s.std[j] += d * d
		}
	}
	for j := range s.std {
		s.std[j] = sqrtf(s.std[j] / n)
		if s.std[j] < 1e-12 {
			s.std[j] = 1
		}
	}
	return nil
}

// Transform returns a standardized copy of one feature vector.
// Features beyond the fitted dimensionality are dropped.
func (s *Standardizer) Transform(x []float64) []float64 {
	return s.TransformInto(nil, x)
}

// TransformInto standardizes x into dst (grown if needed) and returns
// it. With a caller-reused dst of sufficient capacity it performs no
// allocation. Features beyond the fitted dimensionality are dropped.
func (s *Standardizer) TransformInto(dst, x []float64) []float64 {
	d := len(s.mean)
	if len(x) < d {
		d = len(x)
	}
	if cap(dst) < d {
		dst = make([]float64, d)
	}
	dst = dst[:d]
	for j := 0; j < d; j++ {
		dst[j] = (x[j] - s.mean[j]) / s.std[j]
	}
	return dst
}

// TransformAll standardizes a full matrix.
func (s *Standardizer) TransformAll(x [][]float64) [][]float64 {
	out := make([][]float64, len(x))
	for i, row := range x {
		out[i] = s.Transform(row)
	}
	return out
}

// Pipeline standardizes features before delegating to an inner
// classifier. The zero value is not usable; construct with
// NewPipeline.
type Pipeline struct {
	scaler Standardizer
	clf    Classifier
}

// NewPipeline wraps clf with feature standardization.
func NewPipeline(clf Classifier) *Pipeline {
	return &Pipeline{clf: clf}
}

var (
	_ Classifier = (*Pipeline)(nil)
)

// Fit implements Classifier.
func (p *Pipeline) Fit(x [][]float64, y []int) error {
	if err := p.scaler.Fit(x); err != nil {
		return err
	}
	return p.clf.Fit(p.scaler.TransformAll(x), y)
}

// Predict implements Classifier.
func (p *Pipeline) Predict(x []float64) int {
	return p.clf.Predict(p.scaler.Transform(x))
}

// Score implements Scorer when the inner classifier does.
func (p *Pipeline) Score(x []float64) float64 {
	if s, ok := p.clf.(Scorer); ok {
		return s.Score(p.scaler.Transform(x))
	}
	return float64(p.clf.Predict(p.scaler.Transform(x)))
}

// PredictScore returns the label and the continuous class-1 score from
// a single standardization pass, writing the standardized vector into
// scratch (grown if needed; the grown slice is returned for reuse).
// It is exactly Predict followed by Score, minus the duplicate
// standardization and — for an SVM inner classifier — the duplicate
// kernel sweep over the support set. With a warm scratch it performs no
// allocation, which is what the serving path's per-worker arenas rely
// on.
func (p *Pipeline) PredictScore(x, scratch []float64) (label int, score float64, z []float64) {
	z = p.scaler.TransformInto(scratch, x)
	if svm, ok := p.clf.(*SVM); ok {
		score = svm.Score(z)
		if score >= 0 {
			label = 1
		}
		return label, score, z
	}
	label = p.clf.Predict(z)
	score = float64(label)
	if s, ok := p.clf.(Scorer); ok {
		score = s.Score(z)
	}
	return label, score, z
}

// Inner returns the wrapped classifier (for inspection in tests).
func (p *Pipeline) Inner() Classifier { return p.clf }

// TransformFeature applies the fitted standardizer to one raw feature
// vector, for callers that need to talk to the inner classifier
// directly (e.g. Platt-calibrated confidence queries).
func (p *Pipeline) TransformFeature(x []float64) []float64 {
	return p.scaler.Transform(x)
}

// MarshalJSON serializes the pipeline's fitted scaler (the inner
// classifier is serialized separately by its own format).
func (p *Pipeline) MarshalJSON() ([]byte, error) {
	return p.scaler.MarshalJSON()
}

// RestorePipeline rebuilds a pipeline from a serialized scaler document
// and an already-deserialized inner classifier.
func RestorePipeline(scalerJSON []byte, clf Classifier) (*Pipeline, error) {
	p := NewPipeline(clf)
	if err := p.scaler.UnmarshalJSON(scalerJSON); err != nil {
		return nil, err
	}
	return p, nil
}

// Shuffle permutes x and y in place with a shared permutation.
func Shuffle(x [][]float64, y []int, rng *rand.Rand) {
	for i := len(x) - 1; i > 0; i-- {
		j := rng.IntN(i + 1)
		x[i], x[j] = x[j], x[i]
		y[i], y[j] = y[j], y[i]
	}
}

// TrainTestSplit shuffles and splits (x, y) with the given train
// fraction.
func TrainTestSplit(x [][]float64, y []int, trainFrac float64, rng *rand.Rand) (xTrain [][]float64, yTrain []int, xTest [][]float64, yTest []int) {
	xs := make([][]float64, len(x))
	ys := make([]int, len(y))
	copy(xs, x)
	copy(ys, y)
	Shuffle(xs, ys, rng)
	n := int(float64(len(xs)) * trainFrac)
	return xs[:n], ys[:n], xs[n:], ys[n:]
}

// CountClasses returns a map from label to count.
func CountClasses(y []int) map[int]int {
	out := make(map[int]int)
	for _, v := range y {
		out[v]++
	}
	return out
}
