//go:build race

package ml

// raceEnabled reports that this binary was built with -race, whose
// instrumentation allocates on paths that are allocation-free in a
// normal build; the AllocsPerRun pins skip themselves under it.
const raceEnabled = true
