package ml

import (
	"math"
	"testing"
)

func TestBinaryMetricsCounts(t *testing.T) {
	yTrue := []int{1, 1, 1, 0, 0, 0}
	yPred := []int{1, 1, 0, 0, 0, 1}
	m, err := EvaluateBinary(yTrue, yPred)
	if err != nil {
		t.Fatal(err)
	}
	if m.TP != 2 || m.FN != 1 || m.TN != 2 || m.FP != 1 {
		t.Fatalf("counts %+v", m)
	}
	if math.Abs(m.Accuracy()-4.0/6) > 1e-12 {
		t.Errorf("accuracy %g", m.Accuracy())
	}
	if math.Abs(m.Precision()-2.0/3) > 1e-12 {
		t.Errorf("precision %g", m.Precision())
	}
	if math.Abs(m.Recall()-2.0/3) > 1e-12 {
		t.Errorf("recall %g", m.Recall())
	}
	if math.Abs(m.F1()-2.0/3) > 1e-12 {
		t.Errorf("F1 %g", m.F1())
	}
	if math.Abs(m.FAR()-1.0/3) > 1e-12 {
		t.Errorf("FAR %g", m.FAR())
	}
	if math.Abs(m.FRR()-1.0/3) > 1e-12 {
		t.Errorf("FRR %g", m.FRR())
	}
}

func TestBinaryMetricsDegenerate(t *testing.T) {
	var m BinaryMetrics
	if m.Accuracy() != 0 || m.Precision() != 0 || m.Recall() != 0 || m.F1() != 0 || m.FAR() != 0 || m.FRR() != 0 {
		t.Error("zero-count metrics should all be 0")
	}
	if _, err := EvaluateBinary([]int{1}, []int{1, 0}); err == nil {
		t.Error("expected length-mismatch error")
	}
}

func TestEERPerfectSeparation(t *testing.T) {
	scores := []float64{0.1, 0.2, 0.3, 0.7, 0.8, 0.9}
	labels := []int{0, 0, 0, 1, 1, 1}
	eer, thr, err := EER(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	if eer > 1e-9 {
		t.Errorf("EER %g, want 0 for perfect separation", eer)
	}
	if thr <= 0.3 || thr > 0.7 {
		t.Errorf("threshold %g should fall in the separation gap", thr)
	}
}

func TestEERCompleteOverlap(t *testing.T) {
	// Reversed scores: positives score LOWER than negatives.
	scores := []float64{0.9, 0.8, 0.1, 0.2}
	labels := []int{0, 0, 1, 1}
	eer, _, err := EER(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	if eer < 0.5 {
		t.Errorf("EER %g, want >= 0.5 for anti-correlated scores", eer)
	}
}

func TestEERPartialOverlap(t *testing.T) {
	scores := []float64{0.1, 0.4, 0.45, 0.5, 0.55, 0.6, 0.9, 0.95}
	labels := []int{0, 0, 1, 0, 1, 0, 1, 1}
	eer, _, err := EER(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	if eer <= 0 || eer >= 0.5 {
		t.Errorf("EER %g for partial overlap, want in (0, 0.5)", eer)
	}
}

func TestEERErrors(t *testing.T) {
	if _, _, err := EER([]float64{1}, []int{1, 0}); err == nil {
		t.Error("expected length-mismatch error")
	}
	if _, _, err := EER([]float64{1, 2}, []int{1, 1}); err == nil {
		t.Error("expected single-class error")
	}
}

func TestConfusionMatrix(t *testing.T) {
	m, err := ConfusionMatrix([]int{0, 0, 1, 1, 1}, []int{0, 1, 1, 1, 0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m[0][0] != 1 || m[0][1] != 1 || m[1][0] != 1 || m[1][1] != 2 {
		t.Errorf("confusion %v", m)
	}
	if _, err := ConfusionMatrix([]int{5}, []int{0}, 2); err == nil {
		t.Error("expected out-of-range error")
	}
}

func TestMeanStd(t *testing.T) {
	mean, std := MeanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(mean-5) > 1e-12 {
		t.Errorf("mean %g", mean)
	}
	if math.Abs(std-2.138089935299395) > 1e-9 {
		t.Errorf("sample std %g", std)
	}
	if m, s := MeanStd(nil); m != 0 || s != 0 {
		t.Error("empty MeanStd should be 0,0")
	}
	if m, s := MeanStd([]float64{3}); m != 3 || s != 0 {
		t.Error("single-value MeanStd wrong")
	}
}

func TestConfidenceInterval95(t *testing.T) {
	if ci := ConfidenceInterval95([]float64{5}); ci != 0 {
		t.Errorf("single-sample CI %g", ci)
	}
	ci := ConfidenceInterval95([]float64{1, 2, 3, 4, 5})
	// std = sqrt(2.5), CI = 1.96*sqrt(2.5)/sqrt(5).
	want := 1.96 * math.Sqrt(2.5) / math.Sqrt(5)
	if math.Abs(ci-want) > 1e-12 {
		t.Errorf("CI %g, want %g", ci, want)
	}
}
