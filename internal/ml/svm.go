package ml

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// Kernel is an SVM kernel function.
type Kernel interface {
	Eval(a, b []float64) float64
	String() string
}

// LinearKernel is the inner-product kernel.
type LinearKernel struct{}

var _ Kernel = LinearKernel{}

// Eval implements Kernel.
func (LinearKernel) Eval(a, b []float64) float64 {
	var acc float64
	for i := range a {
		acc += a[i] * b[i]
	}
	return acc
}

func (LinearKernel) String() string { return "linear" }

// RBFKernel is the radial basis function kernel
// exp(-gamma * ||a-b||^2), the paper's choice for the orientation SVM.
type RBFKernel struct {
	Gamma float64
}

var _ Kernel = RBFKernel{}

// Eval implements Kernel.
func (k RBFKernel) Eval(a, b []float64) float64 {
	var acc float64
	for i := range a {
		d := a[i] - b[i]
		acc += d * d
	}
	return math.Exp(-k.Gamma * acc)
}

func (k RBFKernel) String() string { return fmt.Sprintf("rbf(gamma=%g)", k.Gamma) }

// SVM is a binary support vector machine trained with a simplified SMO
// algorithm (Platt 1998). Labels must be 0/1. Construct with NewSVM.
type SVM struct {
	C      float64
	Kernel Kernel
	// Tol is the KKT violation tolerance.
	Tol float64
	// MaxPasses is the number of consecutive no-change sweeps before
	// SMO stops.
	MaxPasses int
	// MaxSweeps bounds total training sweeps.
	MaxSweeps int
	// Seed drives SMO's random second-index choice.
	Seed uint64
	// FitPlatt enables probability calibration after training.
	FitPlatt bool

	// Learned state.
	x              [][]float64
	y              []float64 // ±1
	alpha          []float64
	b              float64
	plattA, plattB float64
	hasPlatt       bool
}

var (
	_ Classifier = (*SVM)(nil)
	_ Scorer     = (*SVM)(nil)
)

// NewSVM returns an SVM with the given regularization and kernel and
// sensible SMO defaults.
func NewSVM(c float64, kernel Kernel) *SVM {
	return &SVM{
		C:         c,
		Kernel:    kernel,
		Tol:       1e-3,
		MaxPasses: 3,
		MaxSweeps: 200,
		Seed:      1,
		FitPlatt:  true,
	}
}

// Fit implements Classifier. It trains on labels 0/1.
func (s *SVM) Fit(x [][]float64, y []int) error {
	if len(x) == 0 || len(x) != len(y) {
		return fmt.Errorf("ml: svm: invalid training set (n=%d, labels=%d)", len(x), len(y))
	}
	n := len(x)
	s.x = x
	s.y = make([]float64, n)
	for i, l := range y {
		if l == 1 {
			s.y[i] = 1
		} else {
			s.y[i] = -1
		}
	}
	s.alpha = make([]float64, n)
	s.b = 0
	rng := rand.New(rand.NewPCG(s.Seed, 0x5f3759df))

	// Kernel cache: full matrix for the dataset sizes in this repo.
	k := make([][]float64, n)
	for i := range k {
		k[i] = make([]float64, n)
		for j := 0; j <= i; j++ {
			v := s.Kernel.Eval(x[i], x[j])
			k[i][j] = v
			k[j][i] = v
		}
	}
	f := func(i int) float64 {
		var acc float64
		for t := 0; t < n; t++ {
			if s.alpha[t] != 0 {
				acc += s.alpha[t] * s.y[t] * k[t][i]
			}
		}
		return acc + s.b
	}

	passes := 0
	sweeps := 0
	for passes < s.MaxPasses && sweeps < s.MaxSweeps {
		changed := 0
		for i := 0; i < n; i++ {
			ei := f(i) - s.y[i]
			if !((s.y[i]*ei < -s.Tol && s.alpha[i] < s.C) || (s.y[i]*ei > s.Tol && s.alpha[i] > 0)) {
				continue
			}
			j := rng.IntN(n - 1)
			if j >= i {
				j++
			}
			ej := f(j) - s.y[j]
			ai, aj := s.alpha[i], s.alpha[j]
			var lo, hi float64
			if s.y[i] != s.y[j] {
				lo = math.Max(0, aj-ai)
				hi = math.Min(s.C, s.C+aj-ai)
			} else {
				lo = math.Max(0, ai+aj-s.C)
				hi = math.Min(s.C, ai+aj)
			}
			if lo == hi {
				continue
			}
			eta := 2*k[i][j] - k[i][i] - k[j][j]
			if eta >= 0 {
				continue
			}
			ajNew := aj - s.y[j]*(ei-ej)/eta
			if ajNew > hi {
				ajNew = hi
			}
			if ajNew < lo {
				ajNew = lo
			}
			if math.Abs(ajNew-aj) < 1e-6 {
				continue
			}
			aiNew := ai + s.y[i]*s.y[j]*(aj-ajNew)
			b1 := s.b - ei - s.y[i]*(aiNew-ai)*k[i][i] - s.y[j]*(ajNew-aj)*k[i][j]
			b2 := s.b - ej - s.y[i]*(aiNew-ai)*k[i][j] - s.y[j]*(ajNew-aj)*k[j][j]
			switch {
			case aiNew > 0 && aiNew < s.C:
				s.b = b1
			case ajNew > 0 && ajNew < s.C:
				s.b = b2
			default:
				s.b = (b1 + b2) / 2
			}
			s.alpha[i], s.alpha[j] = aiNew, ajNew
			changed++
		}
		if changed == 0 {
			passes++
		} else {
			passes = 0
		}
		sweeps++
	}

	// Compact to support vectors only.
	var sx [][]float64
	var sy, sa []float64
	for i := 0; i < n; i++ {
		if s.alpha[i] > 1e-9 {
			sx = append(sx, x[i])
			sy = append(sy, s.y[i])
			sa = append(sa, s.alpha[i])
		}
	}
	s.x, s.y, s.alpha = sx, sy, sa

	if s.FitPlatt {
		scores := make([]float64, len(x))
		labels := make([]int, len(y))
		for i := range x {
			scores[i] = s.decision(x[i])
			labels[i] = y[i]
		}
		s.plattA, s.plattB = fitPlatt(scores, labels)
		s.hasPlatt = true
	}
	return nil
}

// decision returns the raw SVM margin for x.
func (s *SVM) decision(x []float64) float64 {
	var acc float64
	for t := range s.x {
		acc += s.alpha[t] * s.y[t] * s.Kernel.Eval(s.x[t], x)
	}
	return acc + s.b
}

// NumSupportVectors returns the size of the learned support set.
func (s *SVM) NumSupportVectors() int { return len(s.x) }

// Predict implements Classifier.
func (s *SVM) Predict(x []float64) int {
	if s.decision(x) >= 0 {
		return 1
	}
	return 0
}

// Score implements Scorer: the raw decision margin.
func (s *SVM) Score(x []float64) float64 { return s.decision(x) }

// PredictProba returns the Platt-calibrated probability of class 1, or
// a logistic squash of the margin when calibration was disabled.
func (s *SVM) PredictProba(x []float64) float64 {
	d := s.decision(x)
	if s.hasPlatt {
		return 1 / (1 + math.Exp(s.plattA*d+s.plattB))
	}
	return 1 / (1 + math.Exp(-d))
}

// fitPlatt fits sigmoid parameters (A, B) for P(y=1|score) =
// 1/(1+exp(A*s+B)) by regularized maximum likelihood (Lin, Lin & Weng
// 2007 pseudocode, Newton with backtracking).
func fitPlatt(scores []float64, labels []int) (a, b float64) {
	n := len(scores)
	var prior1, prior0 float64
	for _, l := range labels {
		if l == 1 {
			prior1++
		} else {
			prior0++
		}
	}
	hiTarget := (prior1 + 1) / (prior1 + 2)
	loTarget := 1 / (prior0 + 2)
	t := make([]float64, n)
	for i, l := range labels {
		if l == 1 {
			t[i] = hiTarget
		} else {
			t[i] = loTarget
		}
	}
	a, b = 0, math.Log((prior0+1)/(prior1+1))
	const (
		maxIter = 100
		minStep = 1e-10
		sigma   = 1e-12
	)
	fval := plattObjective(scores, t, a, b)
	for iter := 0; iter < maxIter; iter++ {
		var h11, h22, h21, g1, g2 float64
		h11, h22 = sigma, sigma
		for i := 0; i < n; i++ {
			fApB := scores[i]*a + b
			var p, q float64
			if fApB >= 0 {
				e := math.Exp(-fApB)
				p = e / (1 + e)
				q = 1 / (1 + e)
			} else {
				e := math.Exp(fApB)
				p = 1 / (1 + e)
				q = e / (1 + e)
			}
			d2 := p * q
			h11 += scores[i] * scores[i] * d2
			h22 += d2
			h21 += scores[i] * d2
			d1 := t[i] - p
			g1 += scores[i] * d1
			g2 += d1
		}
		if math.Abs(g1) < 1e-5 && math.Abs(g2) < 1e-5 {
			break
		}
		det := h11*h22 - h21*h21
		dA := -(h22*g1 - h21*g2) / det
		dB := -(-h21*g1 + h11*g2) / det
		gd := g1*dA + g2*dB
		step := 1.0
		for step >= minStep {
			newA, newB := a+step*dA, b+step*dB
			newF := plattObjective(scores, t, newA, newB)
			if newF < fval+1e-4*step*gd {
				a, b, fval = newA, newB, newF
				break
			}
			step /= 2
		}
		if step < minStep {
			break
		}
	}
	return a, b
}

func plattObjective(scores, t []float64, a, b float64) float64 {
	var f float64
	for i := range scores {
		fApB := scores[i]*a + b
		if fApB >= 0 {
			f += t[i]*fApB + math.Log(1+math.Exp(-fApB))
		} else {
			f += (t[i]-1)*fApB + math.Log(1+math.Exp(fApB))
		}
	}
	return f
}

// GridSearchRBF selects (C, gamma) for an RBF SVM by k-fold
// cross-validated accuracy, mirroring the paper's LIBSVM grid search
// with 10-fold CV. It returns the best parameters and their CV
// accuracy.
func GridSearchRBF(x [][]float64, y []int, cs, gammas []float64, folds int, seed uint64) (bestC, bestGamma, bestAcc float64, err error) {
	if folds < 2 {
		return 0, 0, 0, fmt.Errorf("ml: grid search needs >= 2 folds, got %d", folds)
	}
	bestAcc = -1
	for _, c := range cs {
		for _, g := range gammas {
			factory := func() Classifier {
				svm := NewSVM(c, RBFKernel{Gamma: g})
				svm.FitPlatt = false
				svm.Seed = seed
				return svm
			}
			acc, cvErr := CrossValidate(factory, x, y, folds, seed)
			if cvErr != nil {
				return 0, 0, 0, fmt.Errorf("ml: grid search CV: %w", cvErr)
			}
			if acc > bestAcc {
				bestAcc, bestC, bestGamma = acc, c, g
			}
		}
	}
	return bestC, bestGamma, bestAcc, nil
}
