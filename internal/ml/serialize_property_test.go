package ml

import (
	"bytes"
	"errors"
	"math/rand/v2"
	"strings"
	"testing"
)

// tinySVM trains a small RBF SVM — enough support vectors to make the
// document non-trivial, cheap enough for a property test.
func tinySVM(t testing.TB) *SVM {
	t.Helper()
	rng := rand.New(rand.NewPCG(3, 9))
	x := make([][]float64, 16)
	y := make([]int, 16)
	for i := range x {
		x[i] = []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		if i%2 == 0 {
			x[i][0] += 3
			y[i] = 1
		} else {
			x[i][0] -= 3
			y[i] = 0
		}
	}
	s := NewSVM(1, RBFKernel{Gamma: 0.5})
	if err := s.Fit(x, y); err != nil {
		t.Fatalf("fitting tiny SVM: %v", err)
	}
	return s
}

// tinyConvNet trains a minimal network — one conv layer, a few short
// sequences, one epoch.
func tinyConvNet(t testing.TB) *ConvNet {
	t.Helper()
	rng := rand.New(rand.NewPCG(5, 11))
	cfg := ConvNetConfig{
		InputDim: 4, ConvChannels: []int{3}, KernelSize: 3, PoolStride: 2,
		HiddenDim: 4, LearningRate: 1e-3, Epochs: 1, BatchSize: 2, Seed: 2,
	}
	x := make([][][]float64, 6)
	y := make([]int, 6)
	for i := range x {
		seq := make([][]float64, 12)
		for f := range seq {
			seq[f] = []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		}
		x[i] = seq
		y[i] = i % 2
	}
	c := NewConvNet(cfg)
	if err := c.Fit(x, y); err != nil {
		t.Fatalf("fitting tiny ConvNet: %v", err)
	}
	return c
}

// TestSVMRoundTripByteIdentical is the snapshot-stability property:
// serialize → deserialize → serialize must reproduce the exact bytes,
// so a migrated model's checksum stays stable across cluster hops.
func TestSVMRoundTripByteIdentical(t *testing.T) {
	s := tinySVM(t)
	var first bytes.Buffer
	if err := SaveSVM(&first, s); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSVM(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := SaveSVM(&second, loaded); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatalf("SVM round trip not byte-identical:\nfirst:  %s\nsecond: %s", first.Bytes(), second.Bytes())
	}
}

func TestConvNetRoundTripByteIdentical(t *testing.T) {
	c := tinyConvNet(t)
	var first bytes.Buffer
	if err := SaveConvNet(&first, c); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadConvNet(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := SaveConvNet(&second, loaded); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatalf("ConvNet round trip not byte-identical")
	}
}

// TestLoadSVMTypedErrors: corrupted, truncated and version-skewed
// documents must return matchable errors, never panic.
func TestLoadSVMTypedErrors(t *testing.T) {
	var valid bytes.Buffer
	if err := SaveSVM(&valid, tinySVM(t)); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		doc  string
		want error
	}{
		{"empty", "", ErrCorruptModel},
		{"garbage", "not json at all", ErrCorruptModel},
		{"truncated", valid.String()[:valid.Len()/2], ErrCorruptModel},
		{"wrong_version", `{"version":99,"kernel":"linear"}`, ErrUnsupportedVersion},
		{"unknown_kernel", `{"version":1,"kernel":"quantum"}`, ErrCorruptModel},
		{"inconsistent", `{"version":1,"kernel":"linear","support_vectors":[[1,2]],"alphas":[],"support_labels":[1]}`, ErrCorruptModel},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, err := LoadSVM(strings.NewReader(tc.doc))
			if m != nil || !errors.Is(err, tc.want) {
				t.Fatalf("LoadSVM(%s) = %v, %v; want errors.Is(err, %v)", tc.name, m, err, tc.want)
			}
		})
	}
}

func TestLoadConvNetTypedErrors(t *testing.T) {
	var valid bytes.Buffer
	if err := SaveConvNet(&valid, tinyConvNet(t)); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		doc  string
		want error
	}{
		{"empty", "", ErrCorruptModel},
		{"truncated", valid.String()[:valid.Len()/3], ErrCorruptModel},
		{"wrong_version", `{"version":7,"config":{}}`, ErrUnsupportedVersion},
		{"layer_count", `{"version":1,"config":{"InputDim":4,"ConvChannels":[2,2],"KernelSize":3,"HiddenDim":4},"convs":[{"w":[],"b":[]}],"dense1":{},"dense2":{}}`, ErrCorruptModel},
		{"negative_dim", `{"version":1,"config":{"InputDim":-4,"ConvChannels":[2],"KernelSize":3,"HiddenDim":4},"convs":[{"w":[],"b":[]}],"dense1":{},"dense2":{}}`, ErrCorruptModel},
		{"absurd_dim", `{"version":1,"config":{"InputDim":4,"ConvChannels":[1073741824],"KernelSize":3,"HiddenDim":4},"convs":[{"w":[],"b":[]}],"dense1":{},"dense2":{}}`, ErrCorruptModel},
		{"shape_mismatch", `{"version":1,"config":{"InputDim":4,"ConvChannels":[2],"KernelSize":3,"HiddenDim":4},"convs":[{"w":[1],"b":[1]}],"dense1":{"w":[1],"b":[1]},"dense2":{"w":[1],"b":[1]}}`, ErrCorruptModel},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, err := LoadConvNet(strings.NewReader(tc.doc))
			if m != nil || !errors.Is(err, tc.want) {
				t.Fatalf("LoadConvNet(%s) = %v, %v; want errors.Is(err, %v)", tc.name, m, err, tc.want)
			}
		})
	}
}

// FuzzLoadSVM asserts the decoder's never-panic contract: arbitrary
// bytes either load a model that re-saves cleanly or fail with one of
// the two typed sentinels.
func FuzzLoadSVM(f *testing.F) {
	var valid bytes.Buffer
	if err := SaveSVM(&valid, tinySVM(f)); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:valid.Len()/2])
	f.Add([]byte(`{"version":99,"kernel":"linear"}`))
	f.Add([]byte(`{"version":1,"kernel":"rbf","gamma":1e308}`))
	f.Add([]byte("\x00\x01\x02"))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := LoadSVM(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrCorruptModel) && !errors.Is(err, ErrUnsupportedVersion) {
				t.Fatalf("untyped load error: %v", err)
			}
			return
		}
		if err := SaveSVM(&bytes.Buffer{}, m); err != nil {
			t.Fatalf("loaded model does not re-save: %v", err)
		}
	})
}

func FuzzLoadConvNet(f *testing.F) {
	var valid bytes.Buffer
	if err := SaveConvNet(&valid, tinyConvNet(f)); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:valid.Len()/2])
	f.Add([]byte(`{"version":7,"config":{}}`))
	f.Add([]byte(`{"version":1,"config":{"InputDim":-1,"ConvChannels":[2]},"convs":[{"w":[],"b":[]}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := LoadConvNet(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrCorruptModel) && !errors.Is(err, ErrUnsupportedVersion) {
				t.Fatalf("untyped load error: %v", err)
			}
			return
		}
		if err := SaveConvNet(&bytes.Buffer{}, m); err != nil {
			t.Fatalf("loaded network does not re-save: %v", err)
		}
	})
}
