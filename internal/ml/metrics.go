package ml

import (
	"fmt"
	"math"
	"sort"
)

func sqrtf(x float64) float64 { return math.Sqrt(x) }

// BinaryMetrics summarizes binary classification quality with the
// measures the paper reports: accuracy, precision, recall, F1, the
// true-positive rate, false-acceptance rate (FAR: non-facing accepted
// as facing) and false-rejection rate (FRR: facing rejected).
type BinaryMetrics struct {
	TP, FP, TN, FN int
}

// EvaluateBinary scores predictions against ground truth (label 1 is
// the positive class).
func EvaluateBinary(yTrue, yPred []int) (BinaryMetrics, error) {
	if len(yTrue) != len(yPred) {
		return BinaryMetrics{}, fmt.Errorf("ml: label length mismatch %d != %d", len(yTrue), len(yPred))
	}
	var m BinaryMetrics
	for i := range yTrue {
		switch {
		case yTrue[i] == 1 && yPred[i] == 1:
			m.TP++
		case yTrue[i] == 1 && yPred[i] != 1:
			m.FN++
		case yTrue[i] != 1 && yPred[i] == 1:
			m.FP++
		default:
			m.TN++
		}
	}
	return m, nil
}

// Total returns the number of scored samples.
func (m BinaryMetrics) Total() int { return m.TP + m.FP + m.TN + m.FN }

// Accuracy returns (TP+TN)/total.
func (m BinaryMetrics) Accuracy() float64 {
	t := m.Total()
	if t == 0 {
		return 0
	}
	return float64(m.TP+m.TN) / float64(t)
}

// Precision returns TP/(TP+FP), or 0 when undefined.
func (m BinaryMetrics) Precision() float64 {
	if m.TP+m.FP == 0 {
		return 0
	}
	return float64(m.TP) / float64(m.TP+m.FP)
}

// Recall (= TPR) returns TP/(TP+FN), or 0 when undefined.
func (m BinaryMetrics) Recall() float64 {
	if m.TP+m.FN == 0 {
		return 0
	}
	return float64(m.TP) / float64(m.TP+m.FN)
}

// F1 returns the harmonic mean of precision and recall.
func (m BinaryMetrics) F1() float64 {
	p, r := m.Precision(), m.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// FAR returns FP/(FP+TN): the rate at which negatives are accepted.
func (m BinaryMetrics) FAR() float64 {
	if m.FP+m.TN == 0 {
		return 0
	}
	return float64(m.FP) / float64(m.FP+m.TN)
}

// FRR returns FN/(TP+FN): the rate at which positives are rejected.
func (m BinaryMetrics) FRR() float64 {
	if m.TP+m.FN == 0 {
		return 0
	}
	return float64(m.FN) / float64(m.TP+m.FN)
}

// String formats the headline numbers.
func (m BinaryMetrics) String() string {
	return fmt.Sprintf("acc=%.2f%% prec=%.2f%% rec=%.2f%% f1=%.2f%% far=%.2f%% frr=%.2f%%",
		100*m.Accuracy(), 100*m.Precision(), 100*m.Recall(), 100*m.F1(), 100*m.FAR(), 100*m.FRR())
}

// EER computes the equal error rate from continuous scores (higher =
// more positive) and binary labels: the operating point where the
// false-acceptance and false-rejection rates cross, linearly
// interpolated. It also returns the threshold at which the EER occurs.
func EER(scores []float64, labels []int) (eer, threshold float64, err error) {
	if len(scores) != len(labels) {
		return 0, 0, fmt.Errorf("ml: score/label length mismatch %d != %d", len(scores), len(labels))
	}
	var pos, neg int
	for _, l := range labels {
		if l == 1 {
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		return 0, 0, fmt.Errorf("ml: EER requires both classes (pos=%d neg=%d)", pos, neg)
	}
	type sl struct {
		s float64
		l int
	}
	pairs := make([]sl, len(scores))
	for i := range scores {
		pairs[i] = sl{scores[i], labels[i]}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].s < pairs[j].s })

	// Sweep the threshold from below the minimum score upward. At
	// threshold t (accept score >= t): FRR = positives below t / pos,
	// FAR = negatives at or above t / neg.
	fnCount := 0
	fpCount := neg
	bestDiff := math.Inf(1)
	prevFAR, prevFRR, prevThr := 1.0, 0.0, pairs[0].s-1
	eer, threshold = 0.5, pairs[0].s-1
	for i := 0; i <= len(pairs); i++ {
		far := float64(fpCount) / float64(neg)
		frr := float64(fnCount) / float64(pos)
		var thr float64
		if i < len(pairs) {
			thr = pairs[i].s
		} else {
			thr = pairs[len(pairs)-1].s + 1
		}
		if far <= frr {
			// Crossed: interpolate between the previous and current
			// operating points.
			d1 := prevFRR - prevFAR // negative or zero
			d2 := frr - far         // positive or zero
			if d2-d1 != 0 {
				t := -d1 / (d2 - d1)
				eer = prevFAR + t*(far-prevFAR)
				threshold = prevThr + t*(thr-prevThr)
			} else {
				eer = (far + frr) / 2
				threshold = thr
			}
			return eer, threshold, nil
		}
		if diff := math.Abs(far - frr); diff < bestDiff {
			bestDiff = diff
			eer = (far + frr) / 2
			threshold = thr
		}
		prevFAR, prevFRR, prevThr = far, frr, thr
		if i < len(pairs) {
			if pairs[i].l == 1 {
				fnCount++
			} else {
				fpCount--
			}
		}
	}
	return eer, threshold, nil
}

// ConfusionMatrix counts yTrue (rows) versus yPred (columns) over
// labels 0..k-1.
func ConfusionMatrix(yTrue, yPred []int, k int) ([][]int, error) {
	if len(yTrue) != len(yPred) {
		return nil, fmt.Errorf("ml: label length mismatch %d != %d", len(yTrue), len(yPred))
	}
	m := make([][]int, k)
	for i := range m {
		m[i] = make([]int, k)
	}
	for i := range yTrue {
		if yTrue[i] < 0 || yTrue[i] >= k || yPred[i] < 0 || yPred[i] >= k {
			return nil, fmt.Errorf("ml: label out of range at %d (true=%d pred=%d k=%d)", i, yTrue[i], yPred[i], k)
		}
		m[yTrue[i]][yPred[i]]++
	}
	return m, nil
}

// MeanStd returns the mean and sample standard deviation of values.
func MeanStd(values []float64) (mean, std float64) {
	if len(values) == 0 {
		return 0, 0
	}
	for _, v := range values {
		mean += v
	}
	mean /= float64(len(values))
	if len(values) < 2 {
		return mean, 0
	}
	var acc float64
	for _, v := range values {
		d := v - mean
		acc += d * d
	}
	return mean, math.Sqrt(acc / float64(len(values)-1))
}

// ConfidenceInterval95 returns the half-width of the 95% confidence
// interval of the mean (normal approximation).
func ConfidenceInterval95(values []float64) float64 {
	if len(values) < 2 {
		return 0
	}
	_, std := MeanStd(values)
	return 1.96 * std / math.Sqrt(float64(len(values)))
}
