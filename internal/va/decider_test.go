package va

import (
	"context"
	"testing"
	"time"

	"headtalk/internal/audio"
	"headtalk/internal/core"
	"headtalk/internal/speech"
)

// countingDecider wraps a core.System and counts routed decisions —
// the shape a serve.Engine presents to an assistant.
type countingDecider struct {
	sys   *core.System
	calls int
}

func (d *countingDecider) ProcessWake(ctx context.Context, rec *audio.Recording) (core.Decision, error) {
	d.calls++
	return d.sys.ProcessWake(ctx, rec)
}

func TestAssistantUsesDecider(t *testing.T) {
	spotter, err := NewSpotter(speech.WordComputer, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.NewSystem(core.Config{SampleRate: 16000, BandpassHigh: 7500})
	if err != nil {
		t.Fatal(err)
	}
	clock := time.Unix(5000, 0)
	assistant, err := NewAssistant("routed", spotter, sys, func() time.Time { return clock })
	if err != nil {
		t.Fatal(err)
	}
	backend := &countingDecider{sys: sys}
	assistant.UseDecider(backend)

	rec := wordRecording(speech.WordComputer, 500)
	resp, err := assistant.Hear(rec, "owner")
	if err != nil {
		t.Fatal(err)
	}
	if !resp.WakeDetected || !resp.Uploaded {
		t.Fatalf("routed response %+v", resp)
	}
	if backend.calls != 1 {
		t.Fatalf("decider routed %d calls, want 1", backend.calls)
	}

	// Restoring the direct path bypasses the backend.
	assistant.UseDecider(nil)
	if _, err := assistant.Hear(rec, "owner"); err != nil {
		t.Fatal(err)
	}
	if backend.calls != 1 {
		t.Fatalf("decider called %d times after reset, want 1", backend.calls)
	}
}
