package va

import (
	"fmt"

	"headtalk/internal/audio"
)

// Listener turns a continuous multi-channel audio stream into gated
// wake events: it buffers incoming frames, scans a sliding window with
// the wake-word spotter, and on a hit hands the utterance segment to
// the assistant's HeadTalk pipeline. This is the shape a real
// deployment consumes audio in — fixed-size frames from an ALSA/I2S
// capture loop — rather than pre-segmented utterances.
type Listener struct {
	assistant *Assistant
	source    string

	sampleRate float64
	channels   int

	// windowLen is the analysis window scanned for the wake word;
	// hopLen is how often the scan runs (both in samples).
	windowLen int
	hopLen    int

	buf          *audio.Recording
	buffered     int
	sinceScan    int
	cooldownLeft int
}

// ListenerConfig sizes a Listener. Zero values select one-second
// windows scanned every 250 ms with a one-window cooldown after each
// detection.
type ListenerConfig struct {
	SampleRate float64
	Channels   int
	// WindowSeconds is the sliding analysis window (default 1.2 s —
	// long enough for every wake word in the inventory).
	WindowSeconds float64
	// HopSeconds is the scan interval (default 0.25 s).
	HopSeconds float64
	// Source tags this stream's upload-log entries.
	Source string
}

// NewListener wires a listener to an assistant.
func NewListener(assistant *Assistant, cfg ListenerConfig) (*Listener, error) {
	if assistant == nil {
		return nil, fmt.Errorf("va: listener needs an assistant")
	}
	if cfg.SampleRate <= 0 {
		return nil, fmt.Errorf("va: invalid sample rate %g", cfg.SampleRate)
	}
	if cfg.Channels <= 0 {
		return nil, fmt.Errorf("va: invalid channel count %d", cfg.Channels)
	}
	if cfg.WindowSeconds == 0 {
		cfg.WindowSeconds = 1.2
	}
	if cfg.HopSeconds == 0 {
		cfg.HopSeconds = 0.25
	}
	windowLen := int(cfg.WindowSeconds * cfg.SampleRate)
	hopLen := int(cfg.HopSeconds * cfg.SampleRate)
	if windowLen <= 0 || hopLen <= 0 {
		return nil, fmt.Errorf("va: window/hop too small (%gs / %gs)", cfg.WindowSeconds, cfg.HopSeconds)
	}
	return &Listener{
		assistant:  assistant,
		source:     cfg.Source,
		sampleRate: cfg.SampleRate,
		channels:   cfg.Channels,
		windowLen:  windowLen,
		hopLen:     hopLen,
		buf:        audio.NewRecording(cfg.SampleRate, cfg.Channels, windowLen),
	}, nil
}

// Feed appends one multi-channel frame (channels × samples) and runs
// any due wake-word scans. It returns the responses for windows in
// which the wake word fired (usually zero or one per call).
func (l *Listener) Feed(frame [][]float64) ([]Response, error) {
	if len(frame) != l.channels {
		return nil, fmt.Errorf("va: frame has %d channels, want %d", len(frame), l.channels)
	}
	n := len(frame[0])
	for c, ch := range frame {
		if len(ch) != n {
			return nil, fmt.Errorf("va: ragged frame (channel %d has %d samples, want %d)", c, len(ch), n)
		}
	}

	var responses []Response
	offset := 0
	for offset < n {
		// Copy up to the next scan boundary.
		step := l.hopLen - l.sinceScan
		if step > n-offset {
			step = n - offset
		}
		l.append(frame, offset, step)
		offset += step
		l.sinceScan += step
		if l.sinceScan < l.hopLen {
			break
		}
		l.sinceScan = 0
		if l.cooldownLeft > 0 {
			l.cooldownLeft--
			continue
		}
		if l.buffered < l.windowLen {
			continue
		}
		resp, err := l.scan()
		if err != nil {
			return nil, err
		}
		if resp != nil {
			responses = append(responses, *resp)
			// Suppress re-triggering on the same utterance.
			l.cooldownLeft = l.windowLen / l.hopLen
		}
	}
	return responses, nil
}

// append shifts the ring buffer left and copies step samples in.
func (l *Listener) append(frame [][]float64, offset, step int) {
	for c := 0; c < l.channels; c++ {
		ch := l.buf.Channels[c]
		copy(ch, ch[step:])
		copy(ch[l.windowLen-step:], frame[c][offset:offset+step])
	}
	l.buffered += step
	if l.buffered > l.windowLen {
		l.buffered = l.windowLen
	}
}

// scan runs the spotter + HeadTalk pipeline on the current window.
func (l *Listener) scan() (*Response, error) {
	window := l.buf.Clone()
	resp, err := l.assistant.Hear(window, l.source)
	if err != nil {
		return nil, fmt.Errorf("va: scanning window: %w", err)
	}
	if !resp.WakeDetected {
		return nil, nil
	}
	return &resp, nil
}
