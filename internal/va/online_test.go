package va

import (
	"math"
	"math/rand/v2"
	"testing"

	"headtalk/internal/speech"
)

// TestOnlineSpotterMatchesBatch: feeding the batch fingerprint's frames
// through the online scorer one hop at a time must reproduce the batch
// scan's best score — the online path reuses every transformed hop, it
// does not approximate.
func TestOnlineSpotterMatchesBatch(t *testing.T) {
	s, err := NewSpotter(speech.WordComputer, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(5, 6))
	buf := speech.Synthesize(speech.WordComputer, speech.RandomVoice(rng), SpotterSampleRate, rng)
	_, batchBest, _ := s.Detect(buf.Samples, SpotterSampleRate)

	fp, err := fingerprint(buf.Samples, SpotterSampleRate)
	if err != nil {
		t.Fatal(err)
	}
	frames := len(fp) / spotBands
	if frames < s.TemplateFrames() {
		t.Fatalf("synthesized word too short: %d frames < template %d", frames, s.TemplateFrames())
	}
	o := s.NewOnline()
	onlineBest := -1.0
	readyCount := 0
	for i := 0; i < frames; i++ {
		score, ready := o.PushFrame(fp[i*spotBands : (i+1)*spotBands])
		if ready {
			readyCount++
			if score > onlineBest {
				onlineBest = score
			}
		}
	}
	wantWindows := frames - s.TemplateFrames() + 1
	if readyCount != wantWindows {
		t.Fatalf("online scorer produced %d windows, want %d", readyCount, wantWindows)
	}
	if math.Abs(onlineBest-batchBest) > 1e-9 {
		t.Fatalf("online best %g != batch best %g", onlineBest, batchBest)
	}
}

// TestOnlineSpotterReset: after Reset the scorer must re-accumulate a
// full window before reporting ready.
func TestOnlineSpotterReset(t *testing.T) {
	s, err := NewSpotter(speech.WordComputer, 2, 12)
	if err != nil {
		t.Fatal(err)
	}
	o := s.NewOnline()
	frame := make([]float64, spotBands)
	for i := 0; i < s.TemplateFrames(); i++ {
		o.PushFrame(frame)
	}
	if !o.Ready() {
		t.Fatal("scorer not ready after a full window")
	}
	o.Reset()
	if o.Ready() {
		t.Fatal("scorer still ready after Reset")
	}
	if _, ready := o.PushFrame(frame); ready {
		t.Fatal("one frame after Reset reported ready")
	}
}

// TestFingerprinterMatchesBatch: Frame must reproduce the batch
// fingerprint's values hop by hop.
func TestFingerprinterMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	buf := speech.Synthesize(speech.WordComputer, speech.RandomVoice(rng), SpotterSampleRate, rng)
	want, err := fingerprint(buf.Samples, SpotterSampleRate)
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFingerprinter(SpotterSampleRate)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, f.Bands())
	idx := 0
	for start := 0; start+f.FrameLen() <= len(buf.Samples); start += f.Hop() {
		f.Frame(dst, buf.Samples[start:start+f.FrameLen()])
		for b, v := range dst {
			if math.Abs(v-want[idx*spotBands+b]) > 1e-12 {
				t.Fatalf("frame %d band %d = %g, want %g", idx, b, v, want[idx*spotBands+b])
			}
		}
		idx++
	}
}

// TestOnlineSpotterAllocs pins the streaming hot path: one fingerprint
// frame plus one online score must not allocate in steady state.
func TestOnlineSpotterAllocs(t *testing.T) {
	s, err := NewSpotter(speech.WordComputer, 2, 13)
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFingerprinter(SpotterSampleRate)
	if err != nil {
		t.Fatal(err)
	}
	o := s.NewOnline()
	samples := make([]float64, f.FrameLen())
	rng := rand.New(rand.NewPCG(9, 10))
	for i := range samples {
		samples[i] = rng.NormFloat64() * 0.1
	}
	dst := make([]float64, f.Bands())
	// Warm: fill the window so PushFrame runs the scoring branch.
	for i := 0; i <= s.TemplateFrames(); i++ {
		f.Frame(dst, samples)
		o.PushFrame(dst)
	}
	if avg := testing.AllocsPerRun(100, func() {
		f.Frame(dst, samples)
		o.PushFrame(dst)
	}); avg != 0 {
		t.Errorf("fingerprint+score hop allocates %.1f times per op, want 0", avg)
	}
}
