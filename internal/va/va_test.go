package va

import (
	"math/rand/v2"
	"testing"
	"time"

	"headtalk/internal/audio"
	"headtalk/internal/core"
	"headtalk/internal/speech"
)

func wordRecording(word speech.WakeWord, seed uint64) *audio.Recording {
	rng := rand.New(rand.NewPCG(seed, 1))
	voice := speech.RandomVoice(rng)
	buf := speech.Synthesize(word, voice, 16000, rng)
	rec := audio.NewRecording(16000, 1, len(buf.Samples))
	copy(rec.Channels[0], buf.Samples)
	return rec
}

func noiseRecording(n int, seed uint64) *audio.Recording {
	rng := rand.New(rand.NewPCG(seed, 2))
	rec := audio.NewRecording(16000, 1, n)
	for i := range rec.Channels[0] {
		rec.Channels[0][i] = 0.3 * rng.NormFloat64()
	}
	return rec
}

func TestSpotterDetectsOwnWord(t *testing.T) {
	spotter, err := NewSpotter(speech.WordComputer, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	const trials = 6
	for i := 0; i < trials; i++ {
		rec := wordRecording(speech.WordComputer, uint64(100+i))
		if ok, _, _ := spotter.Detect(rec.Channels[0], 16000); ok {
			hits++
		}
	}
	if hits < trials-1 {
		t.Errorf("spotter hit %d/%d genuine wake words", hits, trials)
	}
}

func TestSpotterRejectsNoise(t *testing.T) {
	spotter, err := NewSpotter(speech.WordComputer, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	false_ := 0
	const trials = 6
	for i := 0; i < trials; i++ {
		rec := noiseRecording(16000, uint64(200+i))
		if ok, _, _ := spotter.Detect(rec.Channels[0], 16000); ok {
			false_++
		}
	}
	if false_ > 1 {
		t.Errorf("spotter fired on %d/%d noise clips", false_, trials)
	}
}

func TestSpotterScoreOrdering(t *testing.T) {
	spotter, err := NewSpotter(speech.WordComputer, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, wordScore, _ := spotter.Detect(wordRecording(speech.WordComputer, 300).Channels[0], 16000)
	_, noiseScore, _ := spotter.Detect(noiseRecording(16000, 301).Channels[0], 16000)
	if wordScore <= noiseScore {
		t.Errorf("word score %g not above noise score %g", wordScore, noiseScore)
	}
}

func TestSpotterShortAudio(t *testing.T) {
	spotter, err := NewSpotter(speech.WordComputer, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Must not panic on audio shorter than the template.
	spotter.Detect(make([]float64, 2000), 16000)
}

func TestAssistantUploadGating(t *testing.T) {
	spotter, err := NewSpotter(speech.WordComputer, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.NewSystem(core.Config{SampleRate: 16000, BandpassHigh: 7500})
	if err != nil {
		t.Fatal(err)
	}
	clock := time.Unix(5000, 0)
	assistant, err := NewAssistant("test", spotter, sys, func() time.Time { return clock })
	if err != nil {
		t.Fatal(err)
	}

	// Normal mode: a detected wake word uploads.
	rec := wordRecording(speech.WordComputer, 400)
	resp, err := assistant.Hear(rec, "owner")
	if err != nil {
		t.Fatal(err)
	}
	if !resp.WakeDetected {
		t.Fatal("wake word not detected")
	}
	if !resp.Uploaded || resp.Speech != "How can I help you?" {
		t.Errorf("normal-mode response %+v", resp)
	}

	// Mute mode: detected but not uploaded.
	sys.SetMode(core.ModeMute)
	resp, err = assistant.Hear(rec, "owner")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Uploaded {
		t.Error("mute mode uploaded")
	}
	if resp.Speech != "Sorry, I didn't hear you." {
		t.Errorf("mute-mode speech %q", resp.Speech)
	}

	// Noise: no wake, no upload, no log entry.
	resp, err = assistant.Hear(noiseRecording(16000, 401), "tv")
	if err != nil {
		t.Fatal(err)
	}
	if resp.WakeDetected || resp.Uploaded {
		t.Errorf("noise response %+v", resp)
	}

	uploads := assistant.Uploads()
	if len(uploads) != 1 {
		t.Fatalf("%d uploads, want 1", len(uploads))
	}
	if uploads[0].Source != "owner" || !uploads[0].Time.Equal(clock) {
		t.Errorf("upload record %+v", uploads[0])
	}
	bySource := assistant.UploadsBySource()
	if bySource["owner"] != 1 || bySource["tv"] != 0 {
		t.Errorf("uploads by source %v", bySource)
	}
}

func TestNewAssistantValidation(t *testing.T) {
	if _, err := NewAssistant("x", nil, nil, nil); err == nil {
		t.Error("expected error for nil components")
	}
}

func TestFingerprintErrors(t *testing.T) {
	if _, err := fingerprint(make([]float64, 10), 16000); err == nil {
		t.Error("expected error for too-short audio")
	}
}

func TestListenerDetectsWakeWordInStream(t *testing.T) {
	spotter, err := NewSpotter(speech.WordComputer, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.NewSystem(core.Config{SampleRate: 16000, BandpassHigh: 7500})
	if err != nil {
		t.Fatal(err)
	}
	assistant, err := NewAssistant("stream", spotter, sys, nil)
	if err != nil {
		t.Fatal(err)
	}
	listener, err := NewListener(assistant, ListenerConfig{
		SampleRate: 16000, Channels: 1, Source: "stream-test",
	})
	if err != nil {
		t.Fatal(err)
	}

	// Stream: 1 s of quiet noise, the wake word, 1 s of quiet noise,
	// fed in 20 ms frames.
	rng := rand.New(rand.NewPCG(71, 72))
	word := speech.Synthesize(speech.WordComputer, speech.RandomVoice(rng), 16000, rng)
	var stream []float64
	quiet := func(n int) {
		for i := 0; i < n; i++ {
			stream = append(stream, 0.005*rng.NormFloat64())
		}
	}
	quiet(16000)
	stream = append(stream, word.Samples...)
	quiet(16000)

	var hits int
	const frame = 320 // 20 ms
	for start := 0; start+frame <= len(stream); start += frame {
		resps, err := listener.Feed([][]float64{stream[start : start+frame]})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range resps {
			if r.WakeDetected {
				hits++
			}
		}
	}
	if hits < 1 {
		t.Fatal("listener never detected the wake word in the stream")
	}
	if hits > 3 {
		t.Errorf("listener re-triggered %d times on one utterance", hits)
	}
	// Normal mode: the detection should have uploaded.
	if got := assistant.UploadsBySource()["stream-test"]; got < 1 {
		t.Error("no upload logged for the stream detection")
	}
}

func TestListenerValidation(t *testing.T) {
	spotter, err := NewSpotter(speech.WordComputer, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.NewSystem(core.Config{SampleRate: 16000, BandpassHigh: 7500})
	if err != nil {
		t.Fatal(err)
	}
	assistant, err := NewAssistant("x", spotter, sys, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewListener(nil, ListenerConfig{SampleRate: 16000, Channels: 1}); err == nil {
		t.Error("expected error for nil assistant")
	}
	if _, err := NewListener(assistant, ListenerConfig{Channels: 1}); err == nil {
		t.Error("expected error for zero sample rate")
	}
	l, err := NewListener(assistant, ListenerConfig{SampleRate: 16000, Channels: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Feed([][]float64{make([]float64, 100)}); err == nil {
		t.Error("expected error for wrong channel count")
	}
	if _, err := l.Feed([][]float64{make([]float64, 100), make([]float64, 99)}); err == nil {
		t.Error("expected error for ragged frame")
	}
}
