// Package va simulates a smart-home voice assistant around the
// HeadTalk core: a wake-word spotter, a cloud-upload log (the privacy
// surface HeadTalk protects) and scenario harnesses for replay attacks
// and accidental TV activations.
package va

import (
	"fmt"
	"math"
	"math/rand/v2"

	"headtalk/internal/dsp"
	"headtalk/internal/speech"
)

// Spotter is a lightweight template-matching wake-word detector. Real
// VAs run a small neural keyword spotter; for this repo the spotter
// correlates log-filterbank "fingerprints" of the incoming audio
// against synthesized reference templates of the wake word. It is
// deliberately speaker-independent — and therefore happy to fire on a
// replayed or TV-spoken wake word, which is exactly the misactivation
// HeadTalk exists to stop.
type Spotter struct {
	Word      speech.WakeWord
	Threshold float64
	templates [][]float64 // flattened fingerprint per template
	zscores   [][]float64 // z-scored templates at full length (cached)
	frames    int         // fingerprint frame count
}

// Spotter fingerprint parameters: 64 ms frames hopped by 32 ms, 12
// coarse log bands up to 6 kHz.
const (
	spotFrameSec = 0.064
	spotHopSec   = 0.032
	spotBands    = 12
	spotMaxHz    = 6000.0
)

// NewSpotter builds a spotter for the word from numTemplates
// synthesized speaker variants.
func NewSpotter(word speech.WakeWord, numTemplates int, seed uint64) (*Spotter, error) {
	if numTemplates < 1 {
		numTemplates = 4
	}
	rng := rand.New(rand.NewPCG(seed, 0x5b07734))
	s := &Spotter{Word: word, Threshold: 0.55}
	const fs = 16000
	for i := 0; i < numTemplates; i++ {
		voice := speech.RandomVoice(rng)
		buf := speech.Synthesize(word, voice, fs, rng)
		fp, err := fingerprint(buf.Samples, fs)
		if err != nil {
			return nil, fmt.Errorf("va: building template %d: %w", i, err)
		}
		if s.frames == 0 || len(fp)/spotBands < s.frames {
			s.frames = len(fp) / spotBands
		}
		s.templates = append(s.templates, fp)
	}
	// Truncate all templates to the shortest so offsets align, and
	// cache each template's z-score: the detection loop correlates the
	// same (constant) templates against every window offset, so
	// standardizing them once moves that work out of the hot path.
	for i, t := range s.templates {
		s.templates[i] = t[:s.frames*spotBands]
		s.zscores = append(s.zscores, dsp.ZScore(s.templates[i]))
	}
	return s, nil
}

// fingerprint computes the flattened log-band energy matrix of x. The
// per-frame loop runs on the planned real FFT with one reused windowed
// frame, spectrum and power buffer, and the band bin edges are resolved
// once up front.
func fingerprint(x []float64, fs float64) ([]float64, error) {
	frameLen := int(spotFrameSec * fs)
	hop := int(spotHopSec * fs)
	if len(x) < frameLen {
		return nil, fmt.Errorf("va: audio too short for fingerprint (%d samples)", len(x))
	}
	win := dsp.Hann.Coefficients(frameLen)
	bins := frameLen/2 + 1
	var edges [spotBands][2]int
	for b := 0; b < spotBands; b++ {
		lo := spotMaxHz * float64(b) / spotBands
		hi := spotMaxHz * float64(b+1) / spotBands
		loBin := dsp.FreqBin(lo, frameLen, fs)
		hiBin := dsp.FreqBin(hi, frameLen, fs)
		if hiBin >= bins {
			hiBin = bins - 1
		}
		edges[b] = [2]int{loBin, hiBin}
	}
	nFrames := (len(x)-frameLen)/hop + 1
	out := make([]float64, 0, nFrames*spotBands)
	scratch := make([]float64, frameLen)
	spec := make([]complex128, bins)
	pow := make([]float64, bins)
	p := dsp.Plan(frameLen)
	for start := 0; start+frameLen <= len(x); start += hop {
		for i := range scratch {
			scratch[i] = x[start+i] * win[i]
		}
		p.RFFT(spec, scratch)
		dsp.PowerInto(pow, spec)
		for b := 0; b < spotBands; b++ {
			var acc float64
			for i := edges[b][0]; i <= edges[b][1]; i++ {
				acc += pow[i]
			}
			out = append(out, math.Log(acc+1e-12))
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("va: no fingerprint frames")
	}
	return out, nil
}

// Detect scans mono audio for the wake word and returns whether any
// template matches above the threshold, the best normalized
// correlation score and the frame offset of the best match.
func (s *Spotter) Detect(x []float64, fs float64) (bool, float64, int) {
	wav := x
	if fs != 16000 {
		resampled, err := dsp.Resample(x, fs, 16000)
		if err != nil {
			return false, 0, 0
		}
		wav = resampled
	}
	fp, err := fingerprint(wav, 16000)
	if err != nil {
		return false, 0, 0
	}
	frames := len(fp) / spotBands
	if frames < s.frames {
		// Shorter than the template: compare what we have.
		best := s.bestScoreAt(fp, 0, frames)
		return best >= s.Threshold, best, 0
	}
	bestScore := -1.0
	bestOffset := 0
	for off := 0; off+s.frames <= frames; off++ {
		score := s.bestScoreAt(fp, off, s.frames)
		if score > bestScore {
			bestScore = score
			bestOffset = off
		}
	}
	return bestScore >= s.Threshold, bestScore, bestOffset
}

// bestScoreAt returns the max normalized correlation across templates
// for a window of the fingerprint.
func (s *Spotter) bestScoreAt(fp []float64, offset, frames int) float64 {
	window := fp[offset*spotBands : (offset+frames)*spotBands]
	wz := dsp.ZScore(window)
	best := -1.0
	for ti, t := range s.templates {
		var tz []float64
		if len(t) == len(wz) {
			tz = s.zscores[ti] // full-length match: cached z-score
		} else {
			tz = dsp.ZScore(t[:len(wz)])
		}
		var corr float64
		for i := range tz {
			corr += tz[i] * wz[i]
		}
		corr /= float64(len(tz))
		if corr > best {
			best = corr
		}
	}
	return best
}
