// Package va simulates a smart-home voice assistant around the
// HeadTalk core: a wake-word spotter, a cloud-upload log (the privacy
// surface HeadTalk protects) and scenario harnesses for replay attacks
// and accidental TV activations.
package va

import (
	"fmt"
	"math"
	"math/rand/v2"

	"headtalk/internal/dsp"
	"headtalk/internal/speech"
)

// Spotter is a lightweight template-matching wake-word detector. Real
// VAs run a small neural keyword spotter; for this repo the spotter
// correlates log-filterbank "fingerprints" of the incoming audio
// against synthesized reference templates of the wake word. It is
// deliberately speaker-independent — and therefore happy to fire on a
// replayed or TV-spoken wake word, which is exactly the misactivation
// HeadTalk exists to stop.
type Spotter struct {
	Word      speech.WakeWord
	Threshold float64
	templates [][]float64 // flattened fingerprint per template
	zscores   [][]float64 // z-scored templates at full length (cached)
	frames    int         // fingerprint frame count
}

// Spotter fingerprint parameters: 64 ms frames hopped by 32 ms, 12
// coarse log bands up to 6 kHz.
const (
	spotFrameSec = 0.064
	spotHopSec   = 0.032
	spotBands    = 12
	spotMaxHz    = 6000.0
)

// SpotterSampleRate is the rate the spotter's fingerprints are
// computed at; audio at other rates is resampled (batch Detect) or
// decimated (the streaming ingest path) down to it first.
const SpotterSampleRate = 16000.0

// SpotterBands returns the fingerprint band count per frame.
func SpotterBands() int { return spotBands }

// NewSpotter builds a spotter for the word from numTemplates
// synthesized speaker variants.
func NewSpotter(word speech.WakeWord, numTemplates int, seed uint64) (*Spotter, error) {
	if numTemplates < 1 {
		numTemplates = 4
	}
	rng := rand.New(rand.NewPCG(seed, 0x5b07734))
	s := &Spotter{Word: word, Threshold: 0.55}
	const fs = 16000
	for i := 0; i < numTemplates; i++ {
		voice := speech.RandomVoice(rng)
		buf := speech.Synthesize(word, voice, fs, rng)
		fp, err := fingerprint(buf.Samples, fs)
		if err != nil {
			return nil, fmt.Errorf("va: building template %d: %w", i, err)
		}
		if s.frames == 0 || len(fp)/spotBands < s.frames {
			s.frames = len(fp) / spotBands
		}
		s.templates = append(s.templates, fp)
	}
	// Truncate all templates to the shortest so offsets align, and
	// cache each template's z-score: the detection loop correlates the
	// same (constant) templates against every window offset, so
	// standardizing them once moves that work out of the hot path.
	for i, t := range s.templates {
		s.templates[i] = t[:s.frames*spotBands]
		s.zscores = append(s.zscores, dsp.ZScore(s.templates[i]))
	}
	return s, nil
}

// Fingerprinter computes the spotter's log-band energy fingerprint one
// frame at a time on the planned real FFT, with every buffer (windowed
// frame, spectrum, power) reused across calls — the per-hop unit the
// streaming ingest path runs with zero steady-state allocations. A
// Fingerprinter is not safe for concurrent use.
type Fingerprinter struct {
	fs       float64
	frameLen int
	hop      int
	win      []float64
	edges    [spotBands][2]int
	scratch  []float64
	spec     []complex128
	pow      []float64
	plan     *dsp.FFTPlan
}

// NewFingerprinter builds a fingerprinter for audio at fs (use
// SpotterSampleRate to match the spotter's templates).
func NewFingerprinter(fs float64) (*Fingerprinter, error) {
	frameLen := int(spotFrameSec * fs)
	hop := int(spotHopSec * fs)
	if frameLen < 2 || hop < 1 {
		return nil, fmt.Errorf("va: sample rate %g too low for fingerprint frames", fs)
	}
	bins := frameLen/2 + 1
	f := &Fingerprinter{
		fs:       fs,
		frameLen: frameLen,
		hop:      hop,
		win:      dsp.Hann.Coefficients(frameLen),
		scratch:  make([]float64, frameLen),
		spec:     make([]complex128, bins),
		pow:      make([]float64, bins),
		plan:     dsp.Plan(frameLen),
	}
	for b := 0; b < spotBands; b++ {
		lo := spotMaxHz * float64(b) / spotBands
		hi := spotMaxHz * float64(b+1) / spotBands
		loBin := dsp.FreqBin(lo, frameLen, fs)
		hiBin := dsp.FreqBin(hi, frameLen, fs)
		if hiBin >= bins {
			hiBin = bins - 1
		}
		f.edges[b] = [2]int{loBin, hiBin}
	}
	return f, nil
}

// FrameLen returns the analysis frame length in samples.
func (f *Fingerprinter) FrameLen() int { return f.frameLen }

// Hop returns the frame hop in samples.
func (f *Fingerprinter) Hop() int { return f.hop }

// Bands returns the band count per fingerprint frame.
func (f *Fingerprinter) Bands() int { return spotBands }

// Frame writes the log-band energies of one frame (len(x) ==
// FrameLen) into dst[:Bands()] and returns it. dst must have room for
// Bands() values; the call performs no allocations.
func (f *Fingerprinter) Frame(dst []float64, x []float64) []float64 {
	if len(x) != f.frameLen {
		panic(fmt.Sprintf("va: fingerprint frame has %d samples, want %d", len(x), f.frameLen))
	}
	for i := range f.scratch {
		f.scratch[i] = x[i] * f.win[i]
	}
	f.plan.RFFT(f.spec, f.scratch)
	dsp.PowerInto(f.pow, f.spec)
	dst = dst[:spotBands]
	for b := 0; b < spotBands; b++ {
		var acc float64
		for i := f.edges[b][0]; i <= f.edges[b][1]; i++ {
			acc += f.pow[i]
		}
		dst[b] = math.Log(acc + 1e-12)
	}
	return dst
}

// fingerprint computes the flattened log-band energy matrix of x by
// running a Fingerprinter over hopped frames.
func fingerprint(x []float64, fs float64) ([]float64, error) {
	f, err := NewFingerprinter(fs)
	if err != nil {
		return nil, err
	}
	if len(x) < f.frameLen {
		return nil, fmt.Errorf("va: audio too short for fingerprint (%d samples)", len(x))
	}
	nFrames := (len(x)-f.frameLen)/f.hop + 1
	out := make([]float64, 0, nFrames*spotBands)
	for start := 0; start+f.frameLen <= len(x); start += f.hop {
		out = out[:len(out)+spotBands]
		f.Frame(out[len(out)-spotBands:], x[start:start+f.frameLen])
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("va: no fingerprint frames")
	}
	return out, nil
}

// Detect scans mono audio for the wake word and returns whether any
// template matches above the threshold, the best normalized
// correlation score and the frame offset of the best match.
func (s *Spotter) Detect(x []float64, fs float64) (bool, float64, int) {
	wav := x
	if fs != 16000 {
		resampled, err := dsp.Resample(x, fs, 16000)
		if err != nil {
			return false, 0, 0
		}
		wav = resampled
	}
	fp, err := fingerprint(wav, 16000)
	if err != nil {
		return false, 0, 0
	}
	frames := len(fp) / spotBands
	if frames < s.frames {
		// Shorter than the template: compare what we have.
		best := s.bestScoreAt(fp, 0, frames)
		return best >= s.Threshold, best, 0
	}
	bestScore := -1.0
	bestOffset := 0
	for off := 0; off+s.frames <= frames; off++ {
		score := s.bestScoreAt(fp, off, s.frames)
		if score > bestScore {
			bestScore = score
			bestOffset = off
		}
	}
	return bestScore >= s.Threshold, bestScore, bestOffset
}

// TemplateFrames returns the fingerprint frame count of the spotter's
// (truncated, aligned) templates — the sliding-window length an online
// scorer must accumulate before scores are meaningful.
func (s *Spotter) TemplateFrames() int { return s.frames }

// NewOnline returns an online scorer over this spotter's templates.
// Where Detect re-fingerprints a whole buffered window per scan, the
// online spotter consumes one fingerprint frame per hop — each hop is
// transformed exactly once, window slide reuses every previously
// computed frame — and scores the template-length window ending at the
// newest frame. Scanning all offsets falls out for free: every offset
// is "the newest window" exactly once as frames arrive.
type OnlineSpotter struct {
	s      *Spotter
	ring   []float64 // frames*spotBands fingerprint ring
	start  int       // oldest frame slot
	filled int       // frames currently held
	win    []float64 // linearized window scratch
	wz     []float64 // z-scored window scratch
}

// NewOnline builds an online scorer; see OnlineSpotter.
func (s *Spotter) NewOnline() *OnlineSpotter {
	n := s.frames * spotBands
	return &OnlineSpotter{
		s:    s,
		ring: make([]float64, n),
		win:  make([]float64, n),
		wz:   make([]float64, n),
	}
}

// Reset discards accumulated frames (after a silence gap or an
// accepted detection, so a stale partial window cannot blend into the
// next utterance).
func (o *OnlineSpotter) Reset() {
	o.start = 0
	o.filled = 0
}

// Ready reports whether a full template-length window has accumulated.
func (o *OnlineSpotter) Ready() bool { return o.filled == o.s.frames }

// PushFrame appends one fingerprint frame (len == SpotterBands()) and,
// once a full window has accumulated, returns the best normalized
// template correlation for the window ending at this frame and
// ready=true. The call performs no allocations.
func (o *OnlineSpotter) PushFrame(frame []float64) (score float64, ready bool) {
	if len(frame) != spotBands {
		panic(fmt.Sprintf("va: fingerprint frame has %d bands, want %d", len(frame), spotBands))
	}
	frames := o.s.frames
	slot := (o.start + o.filled) % frames
	if o.filled == frames {
		// Window full: overwrite the oldest frame and slide.
		slot = o.start
		o.start = (o.start + 1) % frames
	} else {
		o.filled++
	}
	copy(o.ring[slot*spotBands:(slot+1)*spotBands], frame)
	if o.filled < frames {
		return 0, false
	}
	// Linearize oldest→newest, standardize, correlate against the
	// cached z-scored templates (always full length here, so the
	// truncate-and-rescore path of bestScoreAt never runs).
	head := (frames - o.start) * spotBands
	copy(o.win[:head], o.ring[o.start*spotBands:])
	copy(o.win[head:], o.ring[:o.start*spotBands])
	dsp.ZScoreInto(o.wz, o.win)
	best := -1.0
	for _, tz := range o.s.zscores {
		var corr float64
		for i := range tz {
			corr += tz[i] * o.wz[i]
		}
		corr /= float64(len(tz))
		if corr > best {
			best = corr
		}
	}
	return best, true
}

// bestScoreAt returns the max normalized correlation across templates
// for a window of the fingerprint.
func (s *Spotter) bestScoreAt(fp []float64, offset, frames int) float64 {
	window := fp[offset*spotBands : (offset+frames)*spotBands]
	wz := dsp.ZScore(window)
	best := -1.0
	for ti, t := range s.templates {
		var tz []float64
		if len(t) == len(wz) {
			tz = s.zscores[ti] // full-length match: cached z-score
		} else {
			tz = dsp.ZScore(t[:len(wz)])
		}
		var corr float64
		for i := range tz {
			corr += tz[i] * wz[i]
		}
		corr /= float64(len(tz))
		if corr > best {
			best = corr
		}
	}
	return best
}
