package va

import (
	"context"
	"fmt"
	"sync"
	"time"

	"headtalk/internal/audio"
	"headtalk/internal/core"
)

// Upload is one audio segment the assistant would have transmitted to
// its cloud service — the privacy event HeadTalk gates.
type Upload struct {
	Time     time.Time
	Duration float64 // seconds of audio shipped
	Source   string  // free-form scenario tag ("owner", "tv", "attacker")
}

// Response is the assistant's reaction to hearing audio.
type Response struct {
	WakeDetected bool
	SpotterScore float64
	Decision     core.Decision
	// Uploaded reports whether audio left the device.
	Uploaded bool
	// Speech is what the assistant says back (the user study's "How
	// can I help you?" vs "Sorry, I didn't hear you").
	Speech string
}

// Decider is the decision backend an assistant routes wake words
// through. core.System implements it directly; serve.Engine implements
// it by dispatching to its worker pool, letting many assistants (or
// listener streams) share one set of serving workers. The interface is
// context-first, matching the consolidated core API: the context bounds
// the decision and may carry a trace recorder.
type Decider interface {
	ProcessWake(ctx context.Context, rec *audio.Recording) (core.Decision, error)
}

// Assistant wires a wake-word spotter to a HeadTalk privacy
// controller and records every would-be cloud upload. It is safe for
// concurrent use.
type Assistant struct {
	Name    string
	spotter *Spotter
	sys     *core.System
	decider Decider

	mu      sync.Mutex
	uploads []Upload
	clock   func() time.Time
}

// NewAssistant builds an assistant. clock may be nil (time.Now).
func NewAssistant(name string, spotter *Spotter, sys *core.System, clock func() time.Time) (*Assistant, error) {
	if spotter == nil || sys == nil {
		return nil, fmt.Errorf("va: assistant needs both a spotter and a core system")
	}
	if clock == nil {
		clock = time.Now
	}
	return &Assistant{Name: name, spotter: spotter, sys: sys, decider: sys, clock: clock}, nil
}

// System exposes the underlying HeadTalk controller (to switch modes).
func (a *Assistant) System() *core.System { return a.sys }

// UseDecider reroutes wake-word decisions through d — typically a
// serve.Engine sharing its worker pool across streams — instead of
// calling the core system inline. Passing nil restores the direct
// path. Not safe to call concurrently with Hear.
func (a *Assistant) UseDecider(d Decider) {
	if d == nil {
		d = a.sys
	}
	a.decider = d
}

// Hear processes a microphone-array recording that may contain the
// wake word. source tags the scenario actor for the upload log. It is
// HearCtx with a background context.
func (a *Assistant) Hear(rec *audio.Recording, source string) (Response, error) {
	return a.HearCtx(context.Background(), rec, source)
}

// HearCtx is Hear with a caller context: the context bounds the wake
// decision (relevant when the decider is a serving engine with a
// bounded queue) and may carry a trace recorder.
func (a *Assistant) HearCtx(ctx context.Context, rec *audio.Recording, source string) (Response, error) {
	var resp Response
	detected, score, _ := a.spotter.Detect(rec.Mono(), rec.SampleRate)
	resp.WakeDetected = detected
	resp.SpotterScore = score
	if !detected {
		resp.Speech = ""
		return resp, nil
	}
	decision, err := a.decider.ProcessWake(ctx, rec)
	if err != nil {
		return resp, fmt.Errorf("va: processing wake word: %w", err)
	}
	resp.Decision = decision
	if decision.Accepted {
		resp.Uploaded = true
		resp.Speech = "How can I help you?"
		a.mu.Lock()
		a.uploads = append(a.uploads, Upload{
			Time:     a.clock(),
			Duration: float64(rec.Len()) / rec.SampleRate,
			Source:   source,
		})
		a.mu.Unlock()
	} else {
		resp.Speech = "Sorry, I didn't hear you."
	}
	return resp, nil
}

// Uploads returns a copy of the cloud-upload log.
func (a *Assistant) Uploads() []Upload {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]Upload, len(a.uploads))
	copy(out, a.uploads)
	return out
}

// UploadsBySource tallies uploads per scenario actor.
func (a *Assistant) UploadsBySource() map[string]int {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string]int)
	for _, u := range a.uploads {
		out[u.Source]++
	}
	return out
}
