package stream

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// silentFrame builds a valid all-zero chunk (creates sessions cheaply
// via the energy-floor exit).
func silentFrame(channels, n int) [][]float64 {
	f := make([][]float64, channels)
	for c := range f {
		f[c] = make([]float64, n)
	}
	return f
}

// TestChaosPushAfterEvictSurfaces pins the eviction race
// deterministically: a push that grabbed the session before
// End/EvictIdle unlinked it must fail with StatusEvicted, not silently
// mutate orphaned state, and the next push under the same ID must get a
// fresh session.
func TestChaosPushAfterEvictSurfaces(t *testing.T) {
	clk := newFakeClock()
	m, err := NewManager(Config{
		Channels:       2,
		Spotter:        testSpotter(t),
		SessionTimeout: time.Second,
		JanitorEvery:   -1,
		Clock:          clk.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	frame := silentFrame(2, 480)

	// End path.
	s, err := m.acquire("a")
	if err != nil {
		t.Fatal(err)
	}
	if !m.End("a") {
		t.Fatal("End should report the session existed")
	}
	res, err := s.push(context.Background(), frame)
	if res.Status != StatusEvicted || !errors.Is(err, ErrSessionEnded) {
		t.Fatalf("push after End: %v / %v, want StatusEvicted / ErrSessionEnded", res.Status, err)
	}

	// EvictIdle path.
	s, err = m.acquire("b")
	if err != nil {
		t.Fatal(err)
	}
	clk.Advance(2 * time.Second)
	if n := m.EvictIdle(); n != 1 {
		t.Fatalf("evicted %d sessions, want 1", n)
	}
	if res, err = s.push(context.Background(), frame); res.Status != StatusEvicted || !errors.Is(err, ErrSessionEnded) {
		t.Fatalf("push after EvictIdle: %v / %v", res.Status, err)
	}

	// The stale pointer must not resurrect: a fresh push under the same
	// ID creates a distinct session.
	if _, err := m.Push(context.Background(), "b", frame); err != nil {
		t.Fatalf("fresh push after eviction: %v", err)
	}
	m.mu.RLock()
	fresh := m.sessions["b"]
	m.mu.RUnlock()
	if fresh == s {
		t.Fatal("acquire resurrected the evicted session")
	}
	if fresh.ended.Load() {
		t.Fatal("fresh session born ended")
	}

	// Close path.
	m.Close()
	if res, err = fresh.push(context.Background(), frame); res.Status != StatusEvicted || !errors.Is(err, ErrSessionEnded) {
		t.Fatalf("push after Close: %v / %v", res.Status, err)
	}
}

// TestChaosConcurrentPushEvict hammers pushes against concurrent
// eviction under -race: every push either lands on a live session or
// surfaces the eviction; nothing panics, no push silently succeeds on
// an unlinked session and leaves the map inconsistent.
func TestChaosConcurrentPushEvict(t *testing.T) {
	clk := newFakeClock()
	m, err := NewManager(Config{
		Channels:       2,
		Spotter:        testSpotter(t),
		SessionTimeout: 50 * time.Millisecond,
		JanitorEvery:   -1,
		Clock:          clk.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	const (
		pushers  = 8
		rounds   = 60
		sessions = 4
	)
	frame := silentFrame(2, 480)
	var wg sync.WaitGroup
	errCh := make(chan error, pushers+1)
	for p := 0; p < pushers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			id := fmt.Sprintf("s%d", p%sessions)
			for r := 0; r < rounds; r++ {
				res, err := m.Push(context.Background(), id, frame)
				switch {
				case err == nil:
				case errors.Is(err, ErrSessionEnded):
					if res.Status != StatusEvicted {
						errCh <- fmt.Errorf("ErrSessionEnded with status %v", res.Status)
						return
					}
				default:
					errCh <- fmt.Errorf("push: %w", err)
					return
				}
			}
		}(p)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := 0; r < rounds; r++ {
			clk.Advance(60 * time.Millisecond)
			m.EvictIdle()
			m.End(fmt.Sprintf("s%d", r%sessions))
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

// TestChaosAcquireSingleSweep asserts the at-capacity path runs its
// idle sweep under the write lock exactly once when many creators race
// at the limit — not one redundant full sweep per creator.
func TestChaosAcquireSingleSweep(t *testing.T) {
	const capacity = 8
	clk := newFakeClock()
	m, err := NewManager(Config{
		Channels:       2,
		Spotter:        testSpotter(t),
		SessionTimeout: time.Second,
		MaxSessions:    capacity,
		JanitorEvery:   -1,
		Clock:          clk.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	frame := silentFrame(2, 480)

	// Fill to capacity, then let everything go idle.
	for i := 0; i < capacity; i++ {
		if _, err := m.Push(context.Background(), fmt.Sprintf("old%d", i), frame); err != nil {
			t.Fatal(err)
		}
	}
	clk.Advance(2 * time.Second)

	// capacity concurrent creators: the first to take the write lock
	// sweeps; the rest find room and must not sweep again.
	var wg sync.WaitGroup
	errCh := make(chan error, capacity)
	for i := 0; i < capacity; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := m.Push(context.Background(), fmt.Sprintf("new%d", i), frame); err != nil {
				errCh <- err
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Errorf("creator rejected: %v", err)
	}
	if got := m.sweeps.Load(); got != 1 {
		t.Errorf("%d capacity sweeps, want exactly 1", got)
	}
	if got := m.Len(); got != capacity {
		t.Errorf("%d live sessions, want %d", got, capacity)
	}
}
