package stream

import (
	"math/rand/v2"
	"testing"
)

// TestRingWrapAround is a property test: after any sequence of
// random-sized pushes, Snapshot must equal the last min(total, cap)
// samples of the concatenated feed, oldest first, on every channel.
func TestRingWrapAround(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 50; trial++ {
		channels := 1 + rng.IntN(4)
		capacity := 16 + rng.IntN(500)
		r := NewRing(channels, capacity)
		// Reference: the full concatenated feed per channel.
		ref := make([][]float64, channels)
		pushes := 1 + rng.IntN(20)
		for p := 0; p < pushes; p++ {
			// Occasionally push a chunk larger than the ring itself.
			n := 1 + rng.IntN(capacity+capacity/2)
			chunk := make([][]float64, channels)
			for c := range chunk {
				chunk[c] = make([]float64, n)
				for i := range chunk[c] {
					chunk[c][i] = rng.Float64()
				}
				ref[c] = append(ref[c], chunk[c]...)
			}
			r.Push(chunk)
		}
		total := len(ref[0])
		want := total
		if want > capacity {
			want = capacity
		}
		if r.Len() != want {
			t.Fatalf("trial %d: Len=%d, want %d", trial, r.Len(), want)
		}
		if r.Total() != uint64(total) {
			t.Fatalf("trial %d: Total=%d, want %d", trial, r.Total(), total)
		}
		snap := r.Snapshot(48000)
		if snap.SampleRate != 48000 || len(snap.Channels) != channels {
			t.Fatalf("trial %d: snapshot shape %gHz/%dch", trial, snap.SampleRate, len(snap.Channels))
		}
		for c := 0; c < channels; c++ {
			tail := ref[c][total-want:]
			if len(snap.Channels[c]) != want {
				t.Fatalf("trial %d ch %d: snapshot len %d, want %d", trial, c, len(snap.Channels[c]), want)
			}
			for i, v := range snap.Channels[c] {
				if v != tail[i] {
					t.Fatalf("trial %d ch %d sample %d: got %g, want %g", trial, c, i, v, tail[i])
				}
			}
		}
	}
}

// TestRingRejectsBadGeometry covers the constructor panics.
func TestRingRejectsBadGeometry(t *testing.T) {
	for _, tc := range []struct{ ch, capn int }{{0, 10}, {1, 0}, {-1, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewRing(%d, %d) did not panic", tc.ch, tc.capn)
				}
			}()
			NewRing(tc.ch, tc.capn)
		}()
	}
}

// TestRingEmptyPushAndSnapshot: zero-length chunks are no-ops and an
// empty ring snapshots to an empty recording.
func TestRingEmptyPushAndSnapshot(t *testing.T) {
	r := NewRing(2, 8)
	r.Push([][]float64{{}, {}})
	if r.Len() != 0 || r.Total() != 0 {
		t.Fatalf("empty push changed state: Len=%d Total=%d", r.Len(), r.Total())
	}
	snap := r.Snapshot(16000)
	if snap.Len() != 0 {
		t.Fatalf("empty snapshot has %d samples", snap.Len())
	}
}

// TestRingPushAllocs pins the push hot path at zero allocations.
func TestRingPushAllocs(t *testing.T) {
	r := NewRing(4, 4800)
	chunk := make([][]float64, 4)
	for c := range chunk {
		chunk[c] = make([]float64, 480)
		for i := range chunk[c] {
			chunk[c][i] = float64(i)
		}
	}
	if avg := testing.AllocsPerRun(200, func() { r.Push(chunk) }); avg != 0 {
		t.Errorf("Ring.Push allocates %.1f times per op, want 0", avg)
	}
}
