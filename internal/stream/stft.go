package stream

import (
	"fmt"

	"headtalk/internal/dsp"
)

// HopFramer turns an arbitrary-chunked sample feed into hopped
// analysis frames: it accumulates pushed samples, emits each complete
// frameLen-sample frame, then slides by hop — retaining the
// frameLen−hop overlap so overlapping frames are assembled without
// ever re-reading delivered samples. The emit callback receives a view
// into the framer's internal buffer valid only for the duration of the
// call. HopFramer is not safe for concurrent use.
type HopFramer struct {
	frameLen int
	hop      int
	buf      []float64
	n        int // valid samples in buf
}

// NewHopFramer builds a framer for frameLen-sample frames hopped by
// hop (0 < hop ≤ frameLen).
func NewHopFramer(frameLen, hop int) *HopFramer {
	if frameLen < 1 || hop < 1 || hop > frameLen {
		panic(fmt.Sprintf("stream: invalid framer geometry frameLen=%d hop=%d", frameLen, hop))
	}
	return &HopFramer{frameLen: frameLen, hop: hop, buf: make([]float64, frameLen)}
}

// FrameLen returns the frame length in samples.
func (h *HopFramer) FrameLen() int { return h.frameLen }

// Hop returns the hop in samples.
func (h *HopFramer) Hop() int { return h.hop }

// Reset discards buffered samples.
func (h *HopFramer) Reset() { h.n = 0 }

// Push feeds samples and calls emit once per completed frame. It
// performs no allocations (emit permitting) and returns the number of
// frames emitted.
func (h *HopFramer) Push(x []float64, emit func(frame []float64)) int {
	frames := 0
	for len(x) > 0 {
		take := h.frameLen - h.n
		if take > len(x) {
			take = len(x)
		}
		copy(h.buf[h.n:], x[:take])
		h.n += take
		x = x[take:]
		if h.n == h.frameLen {
			emit(h.buf)
			frames++
			// Slide: keep the frameLen−hop overlap for the next frame.
			copy(h.buf, h.buf[h.hop:])
			h.n = h.frameLen - h.hop
		}
	}
	return frames
}

// STFT is the incremental short-time Fourier transform: a HopFramer
// feeding each completed frame through a window and the planned real
// FFT. Every hop of the input is transformed exactly once — when the
// analysis window slides, the overlap is carried as samples by the
// framer rather than re-transformed — which is what makes the
// streaming path cheaper than re-running a batch STFT per push. The
// spectrum slice handed to the callback is reused across frames. STFT
// is not safe for concurrent use.
type STFT struct {
	framer  *HopFramer
	win     []float64
	scratch []float64
	spec    []complex128
	plan    *dsp.FFTPlan
	hops    uint64

	// emitSpec is bound once at construction so Push has no per-call
	// closure allocation; fn is stashed per Push.
	emitFrame func(frame []float64)
	fn        func(spec []complex128)
}

// NewSTFT builds an incremental STFT with frameLen-sample frames
// (rounded up to a power of two by the FFT plan is NOT done here:
// frameLen must already be a power of two, matching dsp.Plan), hop
// samples between frames, and the given window.
func NewSTFT(frameLen, hop int, win dsp.Window) *STFT {
	s := &STFT{
		framer:  NewHopFramer(frameLen, hop),
		win:     win.Coefficients(frameLen),
		scratch: make([]float64, frameLen),
		spec:    make([]complex128, frameLen/2+1),
		plan:    dsp.Plan(frameLen),
	}
	s.emitFrame = s.transform
	return s
}

// Hops returns the number of frames transformed so far.
func (s *STFT) Hops() uint64 { return s.hops }

// Reset discards buffered samples (the hop counter is retained).
func (s *STFT) Reset() { s.framer.Reset() }

func (s *STFT) transform(frame []float64) {
	for i := range s.scratch {
		s.scratch[i] = frame[i] * s.win[i]
	}
	s.plan.RFFT(s.spec, s.scratch)
	s.hops++
	if s.fn != nil {
		s.fn(s.spec)
	}
}

// Push feeds samples and calls fn once per completed frame with the
// frame's one-sided spectrum (reused storage — copy it to keep it).
// Returns the number of frames transformed. Zero allocations in steady
// state, fn permitting.
func (s *STFT) Push(x []float64, fn func(spec []complex128)) int {
	s.fn = fn
	n := s.framer.Push(x, s.emitFrame)
	s.fn = nil
	return n
}
