package stream

import (
	"fmt"
	"sync"
	"time"

	"headtalk/internal/audio"
	"headtalk/internal/core"
	"headtalk/internal/srp"
)

// TrackerConfig configures per-speaker tracking across utterances.
// Streaming clients rarely supply a speaker identity, so the tracker
// derives one from the candidate window itself: the vector of per-pair
// TDoA lags is a coarse position signature — two utterances from the
// same seat produce near-identical lag vectors, while a talker across
// the room produces a distant one.
type TrackerConfig struct {
	// MaxLag is the GCC half-window in samples at the full stream rate.
	// Default 16 (covers the largest supported array at 48 kHz).
	MaxLag int
	// Tolerance is the maximum mean per-pair lag distance (in samples)
	// for a candidate to join an existing track. Default 2.
	Tolerance float64
	// MaxTracks bounds concurrent tracks; at capacity the
	// longest-idle track is recycled. Default 32.
	MaxTracks int
	// TrackTimeout evicts tracks idle this long. Zero means four times
	// the manager's SessionTimeout.
	TrackTimeout time.Duration
	// HistoryLen bounds each track's facing-margin history. Default 16.
	HistoryLen int
}

func (c *TrackerConfig) applyDefaults(sessionTimeout time.Duration) {
	if c.MaxLag == 0 {
		c.MaxLag = 16
	}
	if c.Tolerance == 0 {
		c.Tolerance = 2
	}
	if c.MaxTracks == 0 {
		c.MaxTracks = 32
	}
	if c.TrackTimeout == 0 {
		c.TrackTimeout = 4 * sessionTimeout
	}
	if c.HistoryLen == 0 {
		c.HistoryLen = 16
	}
}

// SpeakerInfo is a caller-facing snapshot of one speaker track at the
// moment a candidate was attributed to it.
type SpeakerInfo struct {
	// ID is the tracker-assigned identity ("spk-1", "spk-2", ...).
	ID string
	// Utterances counts candidates attributed to this speaker,
	// including this one.
	Utterances int
	// Facing is the speaker's current facing state (from the latest
	// decision whose orientation stage ran).
	Facing bool
	// FacingScore is the latest orientation margin.
	FacingScore float64
	// MeanFacing is the mean margin over the retained history — the
	// cross-utterance orientation evidence for this speaker.
	MeanFacing float64
	// FirstSeen / LastSeen bound the track's lifetime.
	FirstSeen, LastSeen time.Time
}

// track is one speaker's mutable state.
type track struct {
	id        string
	sig       []float64 // EMA of per-pair TDoA lags
	firstSeen time.Time
	lastSeen  time.Time
	utters    int
	history   []float64 // facing margins, newest last, bounded
	facing    bool
	facingSet bool
	facingCur float64
}

func (t *track) info() SpeakerInfo {
	var mean float64
	for _, v := range t.history {
		mean += v
	}
	if len(t.history) > 0 {
		mean /= float64(len(t.history))
	}
	return SpeakerInfo{
		ID:          t.id,
		Utterances:  t.utters,
		Facing:      t.facing,
		FacingScore: t.facingCur,
		MeanFacing:  mean,
		FirstSeen:   t.firstSeen,
		LastSeen:    t.lastSeen,
	}
}

// Tracker clusters candidate utterances into speaker tracks by TDoA
// signature and carries orientation history and facing state across
// utterances. It has its own lock — signature matching never holds the
// manager's session-map lock.
type Tracker struct {
	cfg TrackerConfig

	mu     sync.Mutex
	tracks []*track
	nextID int
}

// NewTracker builds a tracker; cfg zero-values get defaults (with a
// 30 s session-timeout baseline when used standalone).
func NewTracker(cfg TrackerConfig) *Tracker {
	cfg.applyDefaults(30 * time.Second)
	return &Tracker{cfg: cfg}
}

// Len returns the live track count.
func (tk *Tracker) Len() int {
	tk.mu.Lock()
	defer tk.mu.Unlock()
	return len(tk.tracks)
}

// Signature derives the per-pair TDoA lag vector of a candidate
// window. The vector length is C(channels, 2).
func Signature(rec *audio.Recording, maxLag int) ([]int, error) {
	pairs, err := srp.AllPairs(rec.Channels, srp.PairOptions{
		MaxLag:     maxLag,
		PHAT:       true,
		SampleRate: rec.SampleRate,
		BandLo:     300,
		BandHi:     4000,
	})
	if err != nil {
		return nil, err
	}
	if len(pairs) == 0 {
		return nil, fmt.Errorf("stream: %d channels yield no GCC pairs", len(rec.Channels))
	}
	sig := make([]int, len(pairs))
	for i, p := range pairs {
		sig[i] = p.TDoA
	}
	return sig, nil
}

// sigDistance is the mean absolute per-pair lag difference.
func sigDistance(a []float64, b []int) float64 {
	var acc float64
	for i := range a {
		d := a[i] - float64(b[i])
		if d < 0 {
			d = -d
		}
		acc += d
	}
	return acc / float64(len(a))
}

// Observe attributes one candidate signature to a speaker track —
// matching the nearest track within tolerance, else opening a new one
// (recycling the longest-idle track at capacity) — and folds the
// decision's orientation evidence into the track. d may be nil (no
// decision pipeline configured); its orientation fields are used only
// when the facing stage ran. matched reports whether an existing track
// was reused.
func (tk *Tracker) Observe(sig []int, d *core.Decision, now time.Time) (SpeakerInfo, bool) {
	tk.mu.Lock()
	defer tk.mu.Unlock()

	var best *track
	bestDist := tk.cfg.Tolerance
	for _, t := range tk.tracks {
		if len(t.sig) != len(sig) {
			continue
		}
		if dist := sigDistance(t.sig, sig); dist <= bestDist {
			best, bestDist = t, dist
		}
	}
	matched := best != nil
	if best == nil {
		best = tk.open(sig, now)
	} else {
		// Fold the new observation into the stored signature so a slowly
		// shifting talker keeps their identity.
		const alpha = 0.3
		for i := range best.sig {
			best.sig[i] += alpha * (float64(sig[i]) - best.sig[i])
		}
	}
	best.lastSeen = now
	best.utters++
	if d != nil && d.FacingRan {
		best.facingCur = d.FacingScore
		best.facing = d.FacingScore > 0
		best.facingSet = true
		best.history = append(best.history, d.FacingScore)
		if len(best.history) > tk.cfg.HistoryLen {
			best.history = best.history[len(best.history)-tk.cfg.HistoryLen:]
		}
	}
	return best.info(), matched
}

// open creates a track, recycling the longest-idle one at capacity.
func (tk *Tracker) open(sig []int, now time.Time) *track {
	if len(tk.tracks) >= tk.cfg.MaxTracks {
		oldest := 0
		for i, t := range tk.tracks {
			if t.lastSeen.Before(tk.tracks[oldest].lastSeen) {
				oldest = i
			}
		}
		tk.tracks = append(tk.tracks[:oldest], tk.tracks[oldest+1:]...)
	}
	tk.nextID++
	t := &track{
		id:        fmt.Sprintf("spk-%d", tk.nextID),
		sig:       make([]float64, len(sig)),
		firstSeen: now,
	}
	for i, v := range sig {
		t.sig[i] = float64(v)
	}
	tk.tracks = append(tk.tracks, t)
	return t
}

// EvictIdle drops tracks idle longer than TrackTimeout and returns how
// many were dropped.
func (tk *Tracker) EvictIdle(now time.Time) int {
	cutoff := now.Add(-tk.cfg.TrackTimeout)
	tk.mu.Lock()
	defer tk.mu.Unlock()
	kept := tk.tracks[:0]
	n := 0
	for _, t := range tk.tracks {
		if t.lastSeen.Before(cutoff) {
			n++
			continue
		}
		kept = append(kept, t)
	}
	for i := len(kept); i < len(tk.tracks); i++ {
		tk.tracks[i] = nil
	}
	tk.tracks = kept
	return n
}

// attributeSpeaker folds one candidate's TDoA signature into the
// speaker tracker and returns the track snapshot. Called from the
// session push path at candidate rate only (never per chunk). A nil
// tracker or failed signature yields nil — the push result simply
// carries no speaker.
func (m *Manager) attributeSpeaker(sig []int, d *core.Decision) *SpeakerInfo {
	if m.speakers == nil || len(sig) == 0 {
		return nil
	}
	info, matched := m.speakers.Observe(sig, d, m.now())
	if matched {
		m.ins.speakerMatched.Inc()
	} else {
		m.ins.speakerCreated.Inc()
	}
	m.ins.speakerActive.Set(int64(m.speakers.Len()))
	return &info
}
