package stream

import (
	"math"
	"math/rand/v2"
	"testing"

	"headtalk/internal/dsp"
)

// TestHopFramerMatchesBatch: feeding a signal through the framer in
// random-sized chunks must emit exactly the hopped frames a batch scan
// produces, regardless of how the chunks split the signal.
func TestHopFramerMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	const frameLen, hop = 64, 16
	x := make([]float64, 1000)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	var want [][]float64
	for start := 0; start+frameLen <= len(x); start += hop {
		want = append(want, append([]float64(nil), x[start:start+frameLen]...))
	}
	for trial := 0; trial < 20; trial++ {
		f := NewHopFramer(frameLen, hop)
		var got [][]float64
		rest := x
		for len(rest) > 0 {
			n := 1 + rng.IntN(200)
			if n > len(rest) {
				n = len(rest)
			}
			f.Push(rest[:n], func(frame []float64) {
				got = append(got, append([]float64(nil), frame...))
			})
			rest = rest[n:]
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d frames, want %d", trial, len(got), len(want))
		}
		for i := range want {
			for j := range want[i] {
				if got[i][j] != want[i][j] {
					t.Fatalf("trial %d frame %d sample %d: got %g, want %g", trial, i, j, got[i][j], want[i][j])
				}
			}
		}
	}
}

// TestHopFramerReset: after Reset, partial samples are discarded and
// framing restarts cleanly.
func TestHopFramerReset(t *testing.T) {
	f := NewHopFramer(8, 4)
	emitted := 0
	f.Push(make([]float64, 5), func([]float64) { emitted++ })
	f.Reset()
	f.Push(make([]float64, 7), func([]float64) { emitted++ })
	if emitted != 0 {
		t.Fatalf("emitted %d frames from partial feeds, want 0", emitted)
	}
	f.Push(make([]float64, 1), func([]float64) { emitted++ })
	if emitted != 1 {
		t.Fatalf("emitted %d frames after completing one, want 1", emitted)
	}
}

// TestSTFTMatchesBatch: the incremental STFT over chunked pushes must
// reproduce dsp.STFT's spectra hop for hop — the streaming path reuses
// overlap, it does not approximate.
func TestSTFTMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	const frameLen, hop = 256, 64
	x := make([]float64, 4096)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want, err := dsp.STFT(x, frameLen, hop, dsp.Hann)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSTFT(frameLen, hop, dsp.Hann)
	var got [][]complex128
	rest := x
	for len(rest) > 0 {
		n := 1 + rng.IntN(500)
		if n > len(rest) {
			n = len(rest)
		}
		s.Push(rest[:n], func(spec []complex128) {
			got = append(got, append([]complex128(nil), spec...))
		})
		rest = rest[n:]
	}
	if len(got) != len(want) {
		t.Fatalf("%d hops, want %d", len(got), len(want))
	}
	if s.Hops() != uint64(len(want)) {
		t.Fatalf("Hops()=%d, want %d", s.Hops(), len(want))
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("hop %d: %d bins, want %d", i, len(got[i]), len(want[i]))
		}
		for j := range want[i] {
			if d := cmplxAbs(got[i][j] - want[i][j]); d > 1e-9 {
				t.Fatalf("hop %d bin %d: |Δ|=%g", i, j, d)
			}
		}
	}
}

func cmplxAbs(c complex128) float64 {
	return math.Hypot(real(c), imag(c))
}

// TestSTFTHopAllocs pins the incremental-STFT hop at zero allocations
// in steady state.
func TestSTFTHopAllocs(t *testing.T) {
	const frameLen, hop = 256, 64
	s := NewSTFT(frameLen, hop, dsp.Hann)
	chunk := make([]float64, hop)
	for i := range chunk {
		chunk[i] = math.Sin(float64(i) / 3)
	}
	var sink complex128
	fn := func(spec []complex128) { sink = spec[1] }
	// Warm until the first frame completes.
	for i := 0; i < frameLen/hop+1; i++ {
		s.Push(chunk, fn)
	}
	if avg := testing.AllocsPerRun(200, func() { s.Push(chunk, fn) }); avg != 0 {
		t.Errorf("STFT.Push hop allocates %.1f times per op, want 0", avg)
	}
	_ = sink
}
