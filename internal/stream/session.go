package stream

import (
	"context"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"headtalk/internal/audio"
	"headtalk/internal/core"
	"headtalk/internal/va"
)

// Status classifies what a push did — in particular, which early-exit
// gate (if any) stopped the cascade before the expensive decision
// pipeline ran.
type Status int

const (
	// StatusInvalid: the chunk failed shape/finiteness validation and
	// was discarded before touching the ring.
	StatusInvalid Status = iota
	// StatusBuffered: samples were ingested but the spotter has not yet
	// accumulated a full template-length window, so no score exists.
	StatusBuffered
	// StatusSilent: the chunk was below the energy floor past the
	// hangover; fingerprinting and spotting were skipped entirely.
	StatusSilent
	// StatusNoWake: the spotter scored at least one full window and the
	// best score stayed below the threshold — the cascade exited before
	// the decision pipeline.
	StatusNoWake
	// StatusSpotted: the wake word was spotted but no decision function
	// is configured; the caller gets the candidate score only.
	StatusSpotted
	// StatusDecided: the wake word was spotted and the decision
	// pipeline ran on the candidate window.
	StatusDecided
	// StatusEvicted: the push raced with End/EvictIdle/Close — the
	// session was unlinked from the manager before the push ran, so the
	// chunk was discarded. Retrying the same ID starts a fresh session.
	StatusEvicted
)

// String returns the wire name of the status.
func (s Status) String() string {
	switch s {
	case StatusInvalid:
		return "invalid"
	case StatusBuffered:
		return "buffered"
	case StatusSilent:
		return "silent"
	case StatusNoWake:
		return "no_wake"
	case StatusSpotted:
		return "spotted"
	case StatusDecided:
		return "decided"
	case StatusEvicted:
		return "evicted"
	}
	return "unknown"
}

// SpanDurations carries the streaming-side stage timings of the push
// that produced a candidate, so the decision layer can record ingest
// and spot trace spans alongside its own stages.
type SpanDurations struct {
	Ingest time.Duration // validation, ring write, decimation
	Spot   time.Duration // fingerprinting and online template scoring
}

// PushResult reports what one push accomplished.
type PushResult struct {
	Status    Status
	SpotScore float64        // best window score this push (valid unless StatusBuffered/StatusInvalid/StatusSilent)
	Decision  *core.Decision // set only for StatusDecided
	Err       error          // decision pipeline error, if any (StatusDecided with nil Decision)
	// Speaker identifies the tracked speaker this candidate was
	// attributed to (StatusSpotted/StatusDecided with Config.Speakers
	// enabled; nil otherwise).
	Speaker *SpeakerInfo
}

// DecideFunc runs the full decision pipeline on a spotted candidate
// window. The recording is a fresh snapshot owned by the callee.
type DecideFunc func(ctx context.Context, rec *audio.Recording, spans SpanDurations) (core.Decision, error)

// session is one client's streaming state. Its mutex serializes pushes
// and is never required by the manager's janitor or map operations, so
// a session stalled inside the decision pipeline cannot block other
// sessions or eviction.
type session struct {
	mu sync.Mutex

	id  string
	mgr *Manager

	ring   *Ring
	framer *HopFramer // 16 kHz hopped analysis frames
	fp     *va.Fingerprinter
	online *va.OnlineSpotter

	factor  int       // decimation factor SampleRate/16k
	mono    []float64 // decimated mono scratch, grown to max chunk
	fpFrame []float64 // one fingerprint frame
	emitFn  func(frame []float64)

	decimAcc   float64 // boxcar accumulator spanning chunk boundaries
	decimCount int

	silentSamples int // continuous sub-floor samples so far
	cooldown      int // hops to ignore after a candidate fires

	// Per-push spotting state written by emitFn.
	pushBest  float64
	pushReady bool

	lastTouched atomic.Int64 // unix nanos; read lock-free by the janitor
	// ended is set under the manager's map lock when the session is
	// unlinked (End, EvictIdle, Close). A push that acquired the session
	// pointer before the unlink observes the tombstone under s.mu and
	// fails with StatusEvicted instead of silently mutating orphaned
	// state that a later acquire of the same ID can never see.
	ended atomic.Bool
}

func (m *Manager) newSession(id string) (*session, error) {
	fp, err := va.NewFingerprinter(va.SpotterSampleRate)
	if err != nil {
		return nil, err
	}
	s := &session{
		id:      id,
		mgr:     m,
		ring:    NewRing(m.cfg.Channels, m.windowSamples),
		framer:  NewHopFramer(fp.FrameLen(), fp.Hop()),
		fp:      fp,
		online:  m.cfg.Spotter.NewOnline(),
		factor:  int(m.cfg.SampleRate / va.SpotterSampleRate),
		fpFrame: make([]float64, fp.Bands()),
	}
	s.emitFn = s.spotFrame
	s.lastTouched.Store(m.now().UnixNano())
	return s, nil
}

// spotFrame is the per-hop unit: fingerprint one analysis frame and
// feed it to the online scorer. Bound once so HopFramer.Push needs no
// per-call closure.
func (s *session) spotFrame(frame []float64) {
	s.fp.Frame(s.fpFrame, frame)
	score, ready := s.online.PushFrame(s.fpFrame)
	if s.cooldown > 0 {
		s.cooldown--
		return
	}
	if ready {
		s.pushReady = true
		if score > s.pushBest {
			s.pushBest = score
		}
	}
}

// validate checks chunk shape and finiteness and returns the
// per-channel sample count and chunk energy (mean square across all
// channels), or ok=false.
func (s *session) validate(frame [][]float64) (n int, energy float64, ok bool) {
	if len(frame) != s.ring.Channels() {
		return 0, 0, false
	}
	n = len(frame[0])
	if n == 0 || n > s.ring.Cap() {
		return 0, 0, false
	}
	var acc float64
	for _, ch := range frame {
		if len(ch) != n {
			return 0, 0, false
		}
		for _, v := range ch {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0, 0, false
			}
			acc += v * v
		}
	}
	return n, acc / float64(n*len(frame)), true
}

// decimate averages the chunk across channels and boxcar-decimates by
// factor into s.mono, carrying partial boxcars across chunk
// boundaries. Returns the decimated slice (reused storage).
func (s *session) decimate(frame [][]float64, n int) []float64 {
	want := (n + s.decimCount + s.factor - 1) / s.factor
	if cap(s.mono) < want {
		s.mono = make([]float64, want)
	}
	out := s.mono[:0]
	inv := 1.0 / float64(len(frame))
	for i := 0; i < n; i++ {
		var m float64
		for _, ch := range frame {
			m += ch[i]
		}
		s.decimAcc += m * inv
		s.decimCount++
		if s.decimCount == s.factor {
			out = append(out, s.decimAcc/float64(s.factor))
			s.decimAcc = 0
			s.decimCount = 0
		}
	}
	s.mono = out
	return out
}

// push runs the early-exit cascade on one chunk:
//
//	validate → ring write → energy floor → fingerprint+spot → decide
//
// Each gate that fails ends the push immediately — in particular a
// rejection at the energy or spotter gate never reaches the decision
// pipeline (and therefore never runs GCC over microphone pairs).
func (s *session) push(ctx context.Context, frame [][]float64) (PushResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()

	m := s.mgr
	if s.ended.Load() {
		m.ins.exitEvicted.Inc()
		return PushResult{Status: StatusEvicted}, ErrSessionEnded
	}
	t0 := m.now()
	s.lastTouched.Store(t0.UnixNano())
	m.ins.pushTotal.Inc()

	n, energy, ok := s.validate(frame)
	if !ok {
		m.ins.exitValidate.Inc()
		return PushResult{Status: StatusInvalid}, ErrBadFrame
	}
	m.ins.pushSamples.Add(uint64(n))
	s.ring.Push(frame)

	if energy < m.cfg.EnergyThreshold {
		s.silentSamples += n
		if s.silentSamples > m.hangoverSamples {
			// Deep silence: drop partial analysis state so a stale
			// half-window cannot blend into the next utterance, and skip
			// the spectral work entirely.
			s.framer.Reset()
			s.online.Reset()
			s.decimAcc = 0
			s.decimCount = 0
			m.ins.exitEnergy.Inc()
			return PushResult{Status: StatusSilent}, nil
		}
	} else {
		s.silentSamples = 0
	}

	tIngest := m.now()
	s.pushBest = math.Inf(-1)
	s.pushReady = false
	s.framer.Push(s.decimate(frame, n), s.emitFn)
	tSpot := m.now()

	if !s.pushReady {
		return PushResult{Status: StatusBuffered}, nil
	}
	if s.pushBest < m.spotThreshold {
		m.ins.exitSpotter.Inc()
		return PushResult{Status: StatusNoWake, SpotScore: s.pushBest}, nil
	}

	// Candidate: suppress re-triggering on the same utterance, then hand
	// the retained window to the decision pipeline.
	m.ins.candidates.Inc()
	s.cooldown = m.cfg.Spotter.TemplateFrames()
	s.online.Reset()
	res := PushResult{Status: StatusSpotted, SpotScore: s.pushBest}
	// The speaker signature is computed before the decision pipeline
	// runs: Decide owns its snapshot and may mutate it.
	var sig []int
	if m.speakers != nil {
		if v, err := Signature(s.ring.Snapshot(m.cfg.SampleRate), m.speakers.cfg.MaxLag); err == nil {
			sig = v
		}
	}
	if m.cfg.Decide == nil {
		res.Speaker = m.attributeSpeaker(sig, nil)
		return res, nil
	}
	spans := SpanDurations{Ingest: tIngest.Sub(t0), Spot: tSpot.Sub(tIngest)}
	d, err := m.cfg.Decide(ctx, s.ring.Snapshot(m.cfg.SampleRate), spans)
	res.Status = StatusDecided
	if err != nil {
		res.Err = err
		res.Speaker = m.attributeSpeaker(sig, nil)
		return res, nil
	}
	m.ins.decisions.Inc()
	res.Decision = &d
	res.Speaker = m.attributeSpeaker(sig, &d)
	return res, nil
}
