package stream

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"headtalk/internal/metrics"
	"headtalk/internal/va"
)

// Sentinel errors returned by Manager.Push.
var (
	// ErrClosed: the manager has been closed.
	ErrClosed = errors.New("stream: manager closed")
	// ErrSessionLimit: creating the session would exceed MaxSessions
	// and no idle session could be evicted to make room.
	ErrSessionLimit = errors.New("stream: session limit reached")
	// ErrBadFrame: the pushed chunk failed shape or finiteness
	// validation.
	ErrBadFrame = errors.New("stream: bad frame")
	// ErrSessionEnded: the push raced with End/EvictIdle/Close and the
	// session was unlinked before the push ran. The chunk was discarded;
	// retrying the same ID starts a fresh session.
	ErrSessionEnded = errors.New("stream: session ended")
)

// Config configures a session manager.
type Config struct {
	// SampleRate is the full-rate sample rate of pushed frames. It must
	// be an integer multiple of the spotter rate (16 kHz). Default 48000.
	SampleRate float64
	// Channels is the microphone count of pushed frames. Default 4.
	Channels int
	// WindowSeconds is the per-session retention window candidate
	// snapshots are cut from. Default 1.5.
	WindowSeconds float64
	// Spotter scores candidate windows; required.
	Spotter *va.Spotter
	// SpotThreshold overrides the spotter's own threshold when > 0.
	SpotThreshold float64
	// EnergyThreshold is the mean-square chunk energy below which a
	// push counts as silent. Default 1e-4.
	EnergyThreshold float64
	// SilenceHangover is how long continuous sub-floor audio is still
	// fully processed before the session goes dormant. It must outlast
	// intra-word gaps — stop-consonant closures in the wake word are
	// near-silent for up to ~100 ms, and resetting the spotter inside
	// one would split the utterance — while staying short enough that
	// real silence stops burning FFTs quickly. Default 250ms.
	SilenceHangover time.Duration
	// SessionTimeout evicts sessions idle this long. Default 30s.
	SessionTimeout time.Duration
	// MaxSessions bounds concurrent sessions. Default 64.
	MaxSessions int
	// JanitorEvery is the background eviction sweep period. Zero means
	// SessionTimeout/4; negative disables the janitor (callers may
	// still sweep via EvictIdle).
	JanitorEvery time.Duration
	// Metrics, when set, receives stream.* counters and gauges.
	Metrics *metrics.Registry
	// Clock overrides time.Now (tests).
	Clock func() time.Time
	// Decide runs the decision pipeline on spotted candidates. Nil is
	// allowed: pushes then stop at StatusSpotted.
	Decide DecideFunc
	// Speakers, when set, enables per-speaker tracking: every spotted
	// candidate is attributed to a speaker track by its TDoA signature,
	// and push results carry the track's identity, orientation history
	// and facing state. Tracks are evicted on their own timeout by the
	// same janitor that sweeps sessions.
	Speakers *TrackerConfig
}

// instruments holds pre-resolved metrics so the push hot path never
// touches the registry's maps. All fields are non-nil (a throwaway
// registry backs them when Config.Metrics is nil).
type instruments struct {
	active       *metrics.Gauge
	created      *metrics.Counter
	evicted      *metrics.Counter
	ended        *metrics.Counter
	rejected     *metrics.Counter
	pushTotal    *metrics.Counter
	pushSamples  *metrics.Counter
	exitValidate *metrics.Counter
	exitEnergy   *metrics.Counter
	exitSpotter  *metrics.Counter
	exitEvicted  *metrics.Counter
	candidates   *metrics.Counter
	decisions    *metrics.Counter

	speakerActive  *metrics.Gauge
	speakerCreated *metrics.Counter
	speakerMatched *metrics.Counter
	speakerEvicted *metrics.Counter
}

func newInstruments(reg *metrics.Registry) instruments {
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	return instruments{
		active:       reg.Gauge("stream.sessions.active"),
		created:      reg.Counter("stream.sessions.created"),
		evicted:      reg.Counter("stream.sessions.evicted"),
		ended:        reg.Counter("stream.sessions.ended"),
		rejected:     reg.Counter("stream.sessions.rejected"),
		pushTotal:    reg.Counter("stream.push.total"),
		pushSamples:  reg.Counter("stream.push.samples"),
		exitValidate: reg.Counter("stream.exit.validate"),
		exitEnergy:   reg.Counter("stream.exit.energy"),
		exitSpotter:  reg.Counter("stream.exit.spotter"),
		exitEvicted:  reg.Counter("stream.exit.evicted"),
		candidates:   reg.Counter("stream.candidates"),
		decisions:    reg.Counter("stream.decisions"),

		speakerActive:  reg.Gauge("stream.speakers.active"),
		speakerCreated: reg.Counter("stream.speakers.created"),
		speakerMatched: reg.Counter("stream.speakers.matched"),
		speakerEvicted: reg.Counter("stream.speakers.evicted"),
	}
}

// Manager owns the streaming sessions of one tenant: get-or-create on
// push, bounded count with evict-idle-then-reject at capacity, and a
// janitor that sweeps idle sessions on a timeout. The manager's lock
// guards only the session map — never a session's push path — so one
// stalled session cannot starve the rest.
type Manager struct {
	cfg             Config
	spotThreshold   float64
	windowSamples   int
	hangoverSamples int
	ins             instruments

	mu       sync.RWMutex
	sessions map[string]*session
	closed   bool
	// sweeps counts at-capacity eviction sweeps triggered by acquire —
	// a test hook asserting that concurrent creators at the limit share
	// one sweep instead of each running their own.
	sweeps atomic.Uint64

	// speakers is non-nil when Config.Speakers enables cross-utterance
	// speaker tracking.
	speakers *Tracker

	janitorStop chan struct{}
	janitorDone chan struct{}
}

// NewManager validates cfg, applies defaults, and starts the janitor
// (unless disabled).
func NewManager(cfg Config) (*Manager, error) {
	if cfg.Spotter == nil {
		return nil, fmt.Errorf("stream: Config.Spotter is required")
	}
	if cfg.SampleRate == 0 {
		cfg.SampleRate = 48000
	}
	factor := cfg.SampleRate / va.SpotterSampleRate
	if factor < 1 || factor != float64(int(factor)) {
		return nil, fmt.Errorf("stream: sample rate %g is not an integer multiple of the %g Hz spotter rate", cfg.SampleRate, va.SpotterSampleRate)
	}
	if cfg.Channels == 0 {
		cfg.Channels = 4
	}
	if cfg.Channels < 1 {
		return nil, fmt.Errorf("stream: channel count %d < 1", cfg.Channels)
	}
	if cfg.WindowSeconds == 0 {
		cfg.WindowSeconds = 1.5
	}
	if cfg.WindowSeconds <= 0 {
		return nil, fmt.Errorf("stream: window %g s must be positive", cfg.WindowSeconds)
	}
	if cfg.EnergyThreshold == 0 {
		cfg.EnergyThreshold = 1e-4
	}
	if cfg.SilenceHangover == 0 {
		cfg.SilenceHangover = 250 * time.Millisecond
	}
	if cfg.SessionTimeout == 0 {
		cfg.SessionTimeout = 30 * time.Second
	}
	if cfg.MaxSessions == 0 {
		cfg.MaxSessions = 64
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	m := &Manager{
		cfg:             cfg,
		spotThreshold:   cfg.SpotThreshold,
		windowSamples:   int(cfg.WindowSeconds * cfg.SampleRate),
		hangoverSamples: int(cfg.SilenceHangover.Seconds() * cfg.SampleRate),
		ins:             newInstruments(cfg.Metrics),
		sessions:        make(map[string]*session),
	}
	if m.spotThreshold == 0 {
		m.spotThreshold = cfg.Spotter.Threshold
	}
	if cfg.Speakers != nil {
		tc := *cfg.Speakers
		tc.applyDefaults(cfg.SessionTimeout)
		m.speakers = &Tracker{cfg: tc}
	}
	if m.windowSamples < 1 {
		return nil, fmt.Errorf("stream: window %g s holds no samples at %g Hz", cfg.WindowSeconds, cfg.SampleRate)
	}
	every := cfg.JanitorEvery
	if every == 0 {
		every = cfg.SessionTimeout / 4
	}
	if every > 0 {
		m.janitorStop = make(chan struct{})
		m.janitorDone = make(chan struct{})
		go m.janitor(every)
	}
	return m, nil
}

func (m *Manager) now() time.Time { return m.cfg.Clock() }

func (m *Manager) janitor(every time.Duration) {
	defer close(m.janitorDone)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-m.janitorStop:
			return
		case <-t.C:
			m.EvictIdle()
		}
	}
}

// Len returns the live session count.
func (m *Manager) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.sessions)
}

// Push routes one multichannel chunk (frame[c] is channel c's samples)
// into the named session, creating it if needed, and runs the
// early-exit cascade. See Status for the possible outcomes.
func (m *Manager) Push(ctx context.Context, sessionID string, frame [][]float64) (PushResult, error) {
	s, err := m.acquire(sessionID)
	if err != nil {
		return PushResult{Status: StatusInvalid}, err
	}
	return s.push(ctx, frame)
}

// acquire returns the named session, creating it under the map lock if
// missing. The returned session is used outside the lock — eviction
// only unlinks a session, it does not invalidate in-flight pushes.
func (m *Manager) acquire(id string) (*session, error) {
	m.mu.RLock()
	s, ok := m.sessions[id]
	closed := m.closed
	m.mu.RUnlock()
	if closed {
		return nil, ErrClosed
	}
	if ok {
		return s, nil
	}
	if len(id) == 0 || len(id) > 128 {
		return nil, fmt.Errorf("%w: session id length %d", ErrBadFrame, len(id))
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrClosed
	}
	if s, ok := m.sessions[id]; ok {
		return s, nil
	}
	// At capacity, sweep idle sessions before rejecting — under the
	// write lock, so concurrent creators at the limit share one sweep
	// (the first holds the lock and evicts; the rest re-check and find
	// room) and the sweep can never interleave with Close.
	if len(m.sessions) >= m.cfg.MaxSessions {
		m.evictIdleLocked()
		m.sweeps.Add(1)
	}
	if len(m.sessions) >= m.cfg.MaxSessions {
		m.ins.rejected.Inc()
		return nil, ErrSessionLimit
	}
	s, err := m.newSession(id)
	if err != nil {
		return nil, err
	}
	m.sessions[id] = s
	m.ins.created.Inc()
	m.ins.active.Set(int64(len(m.sessions)))
	return s, nil
}

// End removes the named session, reporting whether it existed. An
// in-flight push that raced the removal observes the tombstone and
// returns StatusEvicted rather than silently mutating orphaned state.
func (m *Manager) End(sessionID string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.sessions[sessionID]
	if !ok {
		return false
	}
	s.ended.Store(true)
	delete(m.sessions, sessionID)
	m.ins.ended.Inc()
	m.ins.active.Set(int64(len(m.sessions)))
	return true
}

// EvictIdle removes sessions idle longer than SessionTimeout and
// returns how many were evicted. Idleness is read from a lock-free
// per-session timestamp, so a session stalled mid-push neither blocks
// the sweep nor counts as idle. When speaker tracking is enabled, idle
// speaker tracks are swept on their own timeout as well.
func (m *Manager) EvictIdle() int {
	m.mu.Lock()
	n := m.evictIdleLocked()
	m.mu.Unlock()
	if m.speakers != nil {
		if tn := m.speakers.EvictIdle(m.now()); tn > 0 {
			m.ins.speakerEvicted.Add(uint64(tn))
			m.ins.speakerActive.Set(int64(m.speakers.Len()))
		}
	}
	return n
}

// evictIdleLocked is the sweep body; the caller holds m.mu.
func (m *Manager) evictIdleLocked() int {
	cutoff := m.now().Add(-m.cfg.SessionTimeout).UnixNano()
	n := 0
	for id, s := range m.sessions {
		if s.lastTouched.Load() < cutoff {
			s.ended.Store(true)
			delete(m.sessions, id)
			n++
		}
	}
	if n > 0 {
		m.ins.evicted.Add(uint64(n))
		m.ins.active.Set(int64(len(m.sessions)))
	}
	return n
}

// Close stops the janitor and drops all sessions. Further pushes
// return ErrClosed; in-flight pushes complete.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	n := len(m.sessions)
	for _, s := range m.sessions {
		s.ended.Store(true)
	}
	m.sessions = make(map[string]*session)
	m.ins.active.Set(0)
	if n > 0 {
		m.ins.ended.Add(uint64(n))
	}
	stop := m.janitorStop
	m.mu.Unlock()
	if stop != nil {
		close(stop)
		<-m.janitorDone
	}
}
